// Package itscs implements I(TS,CS), a joint faulty-data detection and
// missing-value reconstruction framework for mobile-crowdsensing location
// data, reproducing Wang et al., "I(TS,CS): Detecting Faulty Location Data
// in Mobile Crowdsensing" (IEEE ICDCS 2018) — and grows it into a
// production-shaped streaming system around the algorithm.
//
// # Problem
//
// A location-focused mobile crowdsensing system collects per-participant
// coordinates in fixed time slots. The resulting coordinate matrices suffer
// from missing values (participants go dark) and faulty data (sensor
// glitches, transmission errors, malicious uploads). Because location data
// is unique to each participant, faults cannot be voted away by comparing
// redundant observations of the same quantity: detection has to come from
// the structure of the data itself.
//
// # Approach
//
// I(TS,CS) iterates a DETECT-and-CORRECT loop:
//
//   - DETECT: a time-series local-median outlier detector with a
//     velocity-adaptive tolerance flags everything suspicious, driving the
//     false-negative rate to near zero at the cost of false positives.
//   - CORRECT: the flagged and missing cells are re-estimated by low-rank
//     matrix completion (compressive sensing) over the trusted cells,
//     strengthened by a velocity-informed temporal-stability term.
//   - CHECK: flags are reconciled against the reconstruction — cleared
//     where the observation now agrees, raised where it strongly disagrees
//     — and the loop repeats until the flag set stabilizes.
//
// The alternation sidesteps the classic precision/recall trade-off: the
// detector can over-flag freely because the reconstruction wins back the
// misjudged cells.
//
// # Usage
//
//	ds := itscs.Dataset{X: xs, Y: ys, VX: vxs, VY: vys} // NaN marks missing
//	res, err := itscs.Run(ds)
//	if err != nil { ... }
//	// res.Faulty[i][j] — detection verdicts
//	// res.X[i][j], res.Y[i][j] — repaired trajectories
//
// RunScalar applies the same loop to a single matrix of generic sensory
// data (temperature, pollution, …) — the paper's claim that the framework
// extends beyond location data.
//
// The itscs/synthetic subpackage generates urban taxi-fleet workloads with
// controlled corruption for testing and benchmarking.
//
// # Architecture
//
// This root package is the pure algorithm; the repository layers a
// deployable system around it (see DESIGN.md for the full rationale):
//
//   - internal/core runs the DETECT→CORRECT→CHECK loop over one sliding
//     window, with warm-started factor chains between windows; internal/mat,
//     internal/tsdetect, internal/csrecon and internal/stat are its numeric
//     kernels.
//   - internal/pipeline shards fleets onto a bounded worker pool and turns
//     a live report stream (internal/mcs line protocol) into per-window
//     results with conservation-checked counters.
//   - internal/wal makes ingest durable: a segmented write-ahead log with
//     pluggable fsync policy, versioned checkpoints and crash recovery by
//     restore-plus-replay.
//   - internal/reputation folds each window's verdict matrix into a
//     per-participant trust ledger with exponentially decayed evidence,
//     Wilson confidence bounds and a hysteresis quarantine state machine.
//     The paper brackets reputation out because location readings are not
//     multiply observed; the ledger builds it back on top of the per-window
//     verdicts instead, scoring participants by how often their own cells
//     are flagged, missing, flip under CHECK, or sit far from the
//     reconstruction. Quarantine tags — it never drops a report, because
//     removing rows would change the matrices the detector runs on.
//   - internal/cluster + cmd/itscs-router shard a deployment by fleet over
//     a consistent-hash ring with scatter-gather reads, keeping results
//     bit-identical to single-node runs.
//   - internal/obs (logging, metrics, tracing) and internal/sim (the
//     deterministic fault-injection harness) make the whole stack
//     observable and crash-testable; cmd/itscs-serve is the single-node
//     daemon binding all of the above.
package itscs

// Package itscs implements I(TS,CS), a joint faulty-data detection and
// missing-value reconstruction framework for mobile-crowdsensing location
// data, reproducing Wang et al., "I(TS,CS): Detecting Faulty Location Data
// in Mobile Crowdsensing" (IEEE ICDCS 2018).
//
// # Problem
//
// A location-focused mobile crowdsensing system collects per-participant
// coordinates in fixed time slots. The resulting coordinate matrices suffer
// from missing values (participants go dark) and faulty data (sensor
// glitches, transmission errors, malicious uploads). Because location data
// is unique to each participant, the reputation and multi-observation
// techniques used for other sensing modalities do not apply.
//
// # Approach
//
// I(TS,CS) iterates a DETECT-and-CORRECT loop:
//
//   - DETECT: a time-series local-median outlier detector with a
//     velocity-adaptive tolerance flags everything suspicious, driving the
//     false-negative rate to near zero at the cost of false positives.
//   - CORRECT: the flagged and missing cells are re-estimated by low-rank
//     matrix completion (compressive sensing) over the trusted cells,
//     strengthened by a velocity-informed temporal-stability term.
//   - CHECK: flags are reconciled against the reconstruction — cleared
//     where the observation now agrees, raised where it strongly disagrees
//     — and the loop repeats until the flag set stabilizes.
//
// The alternation sidesteps the classic precision/recall trade-off: the
// detector can over-flag freely because the reconstruction wins back the
// misjudged cells.
//
// # Usage
//
//	ds := itscs.Dataset{X: xs, Y: ys, VX: vxs, VY: vys} // NaN marks missing
//	res, err := itscs.Run(ds)
//	if err != nil { ... }
//	// res.Faulty[i][j] — detection verdicts
//	// res.X[i][j], res.Y[i][j] — repaired trajectories
//
// RunScalar applies the same loop to a single matrix of generic sensory
// data (temperature, pollution, …) — the paper's claim that the framework
// extends beyond location data.
//
// The itscs/synthetic subpackage generates urban taxi-fleet workloads with
// controlled corruption for testing and benchmarking.
package itscs

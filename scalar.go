package itscs

import (
	"errors"
	"fmt"
	"math"

	"itscs/internal/core"
	"itscs/internal/mat"
)

// ScalarResult reports RunScalar's findings.
type ScalarResult struct {
	// Faulty marks the observed cells judged faulty.
	Faulty [][]bool
	// Missing marks the cells that carried no observation (NaN input).
	Missing [][]bool
	// Values holds the repaired series: reconstruction at missing and
	// faulty cells, the observed values elsewhere.
	Values [][]float64
	// Reconstructed holds the raw low-rank reconstruction at every cell.
	Reconstructed [][]float64
	// Iterations counts the DETECT→CORRECT→CHECK rounds executed.
	Iterations int
	// Converged reports whether the flag set stabilized.
	Converged bool
}

// RunScalar executes the I(TS,CS) framework over a single matrix of
// generic sensory data — one row per participant, one column per time
// slot, NaN marking missing observations. This is the paper's §I claim
// that the framework "can be easily extended to other kinds of sensory
// data", made concrete.
//
// rates optionally reports the sensed quantity's instantaneous rate of
// change (units per second), the scalar analogue of velocity; pass nil
// when unavailable and the framework falls back to the pure
// temporal-stability objective.
//
// Thresholds (WithCheckThresholds, WithToleranceFloor) are interpreted in
// the data's own units rather than meters; adjust them to the sensed
// quantity's scale.
func RunScalar(values [][]float64, rates [][]float64, opts ...Option) (*ScalarResult, error) {
	o := options{cfg: core.DefaultConfig(), variant: VariantFull}
	for _, apply := range opts {
		if err := apply(&o); err != nil {
			return nil, err
		}
	}
	variant, err := o.variant.toInternal()
	if err != nil {
		return nil, err
	}
	o.cfg.Reconstruct.Variant = variant

	in, err := toScalarInput(values, rates)
	if err != nil {
		return nil, err
	}
	out, err := core.RunScalar(o.cfg, *in)
	if err != nil {
		return nil, err
	}
	return toScalarResult(values, in, out), nil
}

func toScalarInput(values, rates [][]float64) (*core.ScalarInput, error) {
	n := len(values)
	if n == 0 {
		return nil, errors.New("itscs: dataset has no participants")
	}
	t := len(values[0])
	if t == 0 {
		return nil, errors.New("itscs: dataset has no time slots")
	}
	in := core.ScalarInput{
		S:         mat.New(n, t),
		Existence: mat.New(n, t),
	}
	if rates != nil {
		if len(rates) != n {
			return nil, fmt.Errorf("itscs: rates has %d rows, want %d", len(rates), n)
		}
		in.Rate = mat.New(n, t)
	}
	for i := 0; i < n; i++ {
		if len(values[i]) != t {
			return nil, fmt.Errorf("itscs: values row %d has %d slots, want %d", i, len(values[i]), t)
		}
		for j := 0; j < t; j++ {
			v := values[i][j]
			if math.IsNaN(v) {
				continue
			}
			in.S.Set(i, j, v)
			in.Existence.Set(i, j, 1)
		}
		if rates != nil {
			if len(rates[i]) != t {
				return nil, fmt.Errorf("itscs: rates row %d has %d slots, want %d", i, len(rates[i]), t)
			}
			for j := 0; j < t; j++ {
				r := rates[i][j]
				if math.IsNaN(r) {
					r = 0
				}
				in.Rate.Set(i, j, r)
			}
		}
	}
	return &in, nil
}

func toScalarResult(values [][]float64, in *core.ScalarInput, out *core.ScalarOutput) *ScalarResult {
	n, t := in.S.Dims()
	res := &ScalarResult{
		Faulty:        make([][]bool, n),
		Missing:       make([][]bool, n),
		Values:        make([][]float64, n),
		Reconstructed: make([][]float64, n),
		Iterations:    out.Iterations,
		Converged:     out.Converged,
	}
	for i := 0; i < n; i++ {
		res.Faulty[i] = make([]bool, t)
		res.Missing[i] = make([]bool, t)
		res.Values[i] = make([]float64, t)
		res.Reconstructed[i] = make([]float64, t)
		for j := 0; j < t; j++ {
			faulty := out.Detection.At(i, j) != 0
			missing := in.Existence.At(i, j) == 0
			res.Faulty[i][j] = faulty
			res.Missing[i][j] = missing
			res.Reconstructed[i][j] = out.SHat.At(i, j)
			if faulty || missing {
				res.Values[i][j] = out.SHat.At(i, j)
			} else {
				res.Values[i][j] = values[i][j]
			}
		}
	}
	return res
}

package synthetic

import (
	"math"
	"testing"
	"time"
)

func smallFleet(t *testing.T) *Fleet {
	t.Helper()
	cfg := DefaultFleetConfig()
	cfg.Participants = 10
	cfg.Slots = 40
	fleet, err := GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestDefaultFleetConfig(t *testing.T) {
	cfg := DefaultFleetConfig()
	if cfg.Participants != 158 || cfg.Slots != 240 || cfg.SlotDuration != 30*time.Second {
		t.Fatalf("default config diverged from paper scale: %+v", cfg)
	}
}

func TestGenerateFleetShapes(t *testing.T) {
	fleet := smallFleet(t)
	for name, rows := range map[string][][]float64{"X": fleet.X, "Y": fleet.Y, "VX": fleet.VX, "VY": fleet.VY} {
		if len(rows) != 10 {
			t.Fatalf("%s has %d rows", name, len(rows))
		}
		for i, r := range rows {
			if len(r) != 40 {
				t.Fatalf("%s row %d has %d slots", name, i, len(r))
			}
		}
	}
}

func TestGenerateFleetInvalidConfig(t *testing.T) {
	if _, err := GenerateFleet(FleetConfig{Participants: 0, Slots: 10}); err == nil {
		t.Fatal("want error for zero participants")
	}
}

func TestDatasetIsDeepCopy(t *testing.T) {
	fleet := smallFleet(t)
	ds := fleet.Dataset()
	ds.X[0][0] = 123456
	if fleet.X[0][0] == 123456 {
		t.Fatal("Dataset must not alias fleet storage")
	}
}

func TestCorruptRatios(t *testing.T) {
	fleet := smallFleet(t)
	cor, err := fleet.Corrupt(Corruption{MissingRatio: 0.25, FaultyRatio: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 10 * 40
	var missing, faulty, nan int
	for i := range cor.TruthMissing {
		for j := range cor.TruthMissing[i] {
			if cor.TruthMissing[i][j] {
				missing++
				if !math.IsNaN(cor.Dataset.X[i][j]) || !math.IsNaN(cor.Dataset.Y[i][j]) {
					t.Fatal("missing cells must hold NaN")
				}
			}
			if math.IsNaN(cor.Dataset.X[i][j]) {
				nan++
			}
			if cor.TruthFaulty[i][j] {
				faulty++
				dev := math.Abs(cor.Dataset.X[i][j] - fleet.X[i][j])
				if dev < 1000 {
					t.Fatalf("faulty bias only %v m", dev)
				}
			}
		}
	}
	if missing != nan {
		t.Fatalf("NaN count %d != missing count %d", nan, missing)
	}
	wantEach := int(0.25 * float64(total))
	if missing < wantEach-10 || missing > wantEach+10 {
		t.Fatalf("missing = %d, want ~%d", missing, wantEach)
	}
	if faulty < wantEach-10 || faulty > wantEach+10 {
		t.Fatalf("faulty = %d, want ~%d", faulty, wantEach)
	}
}

func TestCorruptCustomBias(t *testing.T) {
	fleet := smallFleet(t)
	cor, err := fleet.Corrupt(Corruption{
		FaultyRatio:   0.2,
		BiasMinMeters: 30_000,
		BiasMaxMeters: 40_000,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cor.TruthFaulty {
		for j := range cor.TruthFaulty[i] {
			if cor.TruthFaulty[i][j] {
				dev := math.Abs(cor.Dataset.X[i][j] - fleet.X[i][j])
				if dev < 30_000 || dev > 40_000 {
					t.Fatalf("bias %v outside custom bounds", dev)
				}
			}
		}
	}
}

func TestCorruptVelocityFaults(t *testing.T) {
	fleet := smallFleet(t)
	cor, err := fleet.Corrupt(Corruption{VelocityFaultRatio: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var changed int
	for i := range cor.Dataset.VX {
		for j := range cor.Dataset.VX[i] {
			if cor.Dataset.VX[i][j] != fleet.VX[i][j] {
				changed++
			}
		}
	}
	want := int(0.3 * 400)
	if changed < want-30 || changed > want+30 {
		t.Fatalf("changed %d velocity cells, want ~%d", changed, want)
	}
}

func TestCorruptValidation(t *testing.T) {
	fleet := smallFleet(t)
	bad := []Corruption{
		{MissingRatio: -0.1},
		{FaultyRatio: 1.2},
		{MissingRatio: 0.6, FaultyRatio: 0.6},
		{VelocityFaultRatio: 1.0},
	}
	for i, c := range bad {
		if _, err := fleet.Corrupt(c); err == nil {
			t.Fatalf("corruption %d should be rejected", i)
		}
	}
}

func TestCorruptDeterministic(t *testing.T) {
	fleet := smallFleet(t)
	a, err := fleet.Corrupt(Corruption{MissingRatio: 0.2, FaultyRatio: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.Corrupt(Corruption{MissingRatio: 0.2, FaultyRatio: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dataset.X {
		for j := range a.Dataset.X[i] {
			av, bv := a.Dataset.X[i][j], b.Dataset.X[i][j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatal("same seed must reproduce the corruption")
			}
		}
	}
}

func TestCorruptDoesNotMutateFleet(t *testing.T) {
	fleet := smallFleet(t)
	before := fleet.X[0][0]
	if _, err := fleet.Corrupt(Corruption{MissingRatio: 0.3, FaultyRatio: 0.3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if fleet.X[0][0] != before {
		t.Fatal("Corrupt must not mutate the fleet")
	}
}

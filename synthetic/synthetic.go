// Package synthetic generates urban taxi-fleet location workloads with
// controlled corruption, standing in for the SUVnet Shanghai trace the
// paper evaluated on (the original dataset is no longer distributed).
//
// The generator reproduces the structural properties I(TS,CS) exploits —
// approximately low-rank coordinate matrices and velocity-bounded temporal
// stability — so detection and reconstruction behaviour carries over.
package synthetic

import (
	"fmt"
	"math"
	"time"

	"itscs"
	"itscs/internal/corrupt"
	"itscs/internal/mat"
	"itscs/internal/trace"
)

// FleetConfig sizes a synthetic fleet. The zero value is invalid; use
// DefaultFleetConfig for the paper-scale setup.
type FleetConfig struct {
	// Participants is the number of vehicles.
	Participants int
	// Slots is the number of time slots.
	Slots int
	// SlotDuration is the sampling period τ.
	SlotDuration time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultFleetConfig mirrors the paper's evaluation scale: 158 taxis
// observed over 240 slots of 30 s (2 hours) in a Shanghai-sized region.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Participants: 158,
		Slots:        240,
		SlotDuration: 30 * time.Second,
		Seed:         1,
	}
}

// Fleet is a generated ground-truth fleet.
type Fleet struct {
	// X, Y are true coordinates in meters (participants × slots).
	X, Y [][]float64
	// VX, VY are the reported instantaneous velocity components (m/s).
	VX, VY [][]float64

	cfg FleetConfig
}

// GenerateFleet simulates a fleet.
func GenerateFleet(cfg FleetConfig) (*Fleet, error) {
	tc := trace.DefaultConfig()
	tc.Participants = cfg.Participants
	tc.Slots = cfg.Slots
	if cfg.SlotDuration != 0 {
		tc.SlotDuration = cfg.SlotDuration
	}
	tc.Seed = cfg.Seed
	fl, err := trace.Generate(tc)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	return &Fleet{
		X:   toRows(fl.X),
		Y:   toRows(fl.Y),
		VX:  toRows(fl.VX),
		VY:  toRows(fl.VY),
		cfg: cfg,
	}, nil
}

// Dataset returns the clean fleet as an itscs.Dataset (no missing values).
func (f *Fleet) Dataset() itscs.Dataset {
	return itscs.Dataset{
		X:  copyRows(f.X),
		Y:  copyRows(f.Y),
		VX: copyRows(f.VX),
		VY: copyRows(f.VY),
	}
}

// Corruption describes an injected failure pattern.
type Corruption struct {
	// MissingRatio is the fraction α of cells whose observations are lost.
	MissingRatio float64
	// FaultyRatio is the fraction β of cells biased by a large error.
	FaultyRatio float64
	// VelocityFaultRatio is the fraction γ of velocity cells replaced by a
	// ±100 % error (paper §IV-D).
	VelocityFaultRatio float64
	// BiasMinMeters / BiasMaxMeters bound the injected position bias.
	// Zeros select the defaults (2–15 km, the paper's "kilometers away").
	BiasMinMeters float64
	BiasMaxMeters float64
	// Seed makes the draw deterministic.
	Seed int64
}

// Corrupted is a corrupted view of a fleet plus its ground truth.
type Corrupted struct {
	// Dataset is the corrupted input for itscs.Run: NaN at missing cells,
	// biased coordinates at faulty cells, corrupted velocities if requested.
	Dataset itscs.Dataset
	// TruthFaulty marks the cells that actually carry an injected bias.
	TruthFaulty [][]bool
	// TruthMissing marks the cells whose observations were dropped.
	TruthMissing [][]bool
}

// Corrupt applies the corruption pattern to the fleet.
func (f *Fleet) Corrupt(c Corruption) (*Corrupted, error) {
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = c.MissingRatio
	plan.FaultyRatio = c.FaultyRatio
	plan.Seed = c.Seed
	if c.BiasMinMeters != 0 {
		plan.BiasMinMeters = c.BiasMinMeters
	}
	if c.BiasMaxMeters != 0 {
		plan.BiasMaxMeters = c.BiasMaxMeters
	}
	x, err := fromRows(f.X)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	y, err := fromRows(f.Y)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	res, err := corrupt.Apply(plan, x, y)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}

	vx, err := fromRows(f.VX)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	vy, err := fromRows(f.VY)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	if c.VelocityFaultRatio > 0 {
		vx, vy, err = corrupt.CorruptVelocity(vx, vy, c.VelocityFaultRatio, c.Seed)
		if err != nil {
			return nil, fmt.Errorf("synthetic: %w", err)
		}
	}

	n, t := res.SX.Dims()
	out := &Corrupted{
		Dataset: itscs.Dataset{
			X:  toRows(res.SX),
			Y:  toRows(res.SY),
			VX: toRows(vx),
			VY: toRows(vy),
		},
		TruthFaulty:  make([][]bool, n),
		TruthMissing: make([][]bool, n),
	}
	for i := 0; i < n; i++ {
		out.TruthFaulty[i] = make([]bool, t)
		out.TruthMissing[i] = make([]bool, t)
		for j := 0; j < t; j++ {
			out.TruthFaulty[i][j] = res.Faulty.At(i, j) == 1
			if res.Existence.At(i, j) == 0 {
				out.TruthMissing[i][j] = true
				out.Dataset.X[i][j] = math.NaN()
				out.Dataset.Y[i][j] = math.NaN()
			}
		}
	}
	return out, nil
}

// toRows converts a dense matrix to a fresh slice-of-rows.
func toRows(m *mat.Dense) [][]float64 {
	n, _ := m.Dims()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.Row(i)
	}
	return out
}

// fromRows converts slice-of-rows data to a dense matrix.
func fromRows(rows [][]float64) (*mat.Dense, error) {
	return mat.NewFromRows(rows)
}

// copyRows deep-copies a slice of rows.
func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = make([]float64, len(r))
		copy(out[i], r)
	}
	return out
}

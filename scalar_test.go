package itscs_test

import (
	"math"
	"testing"

	"itscs"
)

// scalarField builds a low-rank sensor field (shared diurnal cycle per
// sensor) with one missing and several spiked cells.
func scalarField(n, t int) (values, rates [][]float64, spikes map[[2]int]bool) {
	values = make([][]float64, n)
	rates = make([][]float64, n)
	spikes = map[[2]int]bool{}
	for i := 0; i < n; i++ {
		values[i] = make([]float64, t)
		rates[i] = make([]float64, t)
		offset := 20 + float64(i)
		for j := 0; j < t; j++ {
			values[i][j] = offset + 5*math.Sin(2*math.Pi*float64(j)/float64(t))
			if j > 0 {
				rates[i][j] = (values[i][j] - values[i][j-1]) / 30
			}
		}
	}
	// Faults: +50 spikes on a few cells.
	for _, cell := range [][2]int{{0, 10}, {2, 25}, {4, 33}} {
		values[cell[0]][cell[1]] += 50
		spikes[cell] = true
	}
	// One missing observation.
	values[1][5] = math.NaN()
	return values, rates, spikes
}

func scalarOpts() []itscs.Option {
	return []itscs.Option{
		itscs.WithToleranceFloor(3),
		itscs.WithCheckThresholds(2, 10),
		itscs.WithDetectionWindow(9),
	}
}

func TestRunScalarDetectsSpikes(t *testing.T) {
	values, rates, spikes := scalarField(8, 60)
	res, err := itscs.RunScalar(values, rates, scalarOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for cell := range spikes {
		if !res.Faulty[cell[0]][cell[1]] {
			t.Fatalf("spike at %v not detected", cell)
		}
	}
	if !res.Missing[1][5] {
		t.Fatal("missing cell not reported")
	}
	if math.IsNaN(res.Values[1][5]) {
		t.Fatal("missing cell not repaired")
	}
	// Repaired spike should land near the clean diurnal value.
	clean := 20.0 + 0 + 5*math.Sin(2*math.Pi*10/60)
	if diff := math.Abs(res.Values[0][10] - clean); diff > 3 {
		t.Fatalf("spike repaired %.1f degrees off", diff)
	}
}

func TestRunScalarWithoutRates(t *testing.T) {
	values, _, spikes := scalarField(8, 60)
	res, err := itscs.RunScalar(values, nil, scalarOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for cell := range spikes {
		if !res.Faulty[cell[0]][cell[1]] {
			t.Fatalf("spike at %v not detected without rates", cell)
		}
	}
}

func TestRunScalarValidation(t *testing.T) {
	if _, err := itscs.RunScalar(nil, nil); err == nil {
		t.Fatal("empty dataset should be rejected")
	}
	if _, err := itscs.RunScalar([][]float64{{}}, nil); err == nil {
		t.Fatal("zero slots should be rejected")
	}
	if _, err := itscs.RunScalar([][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Fatal("ragged rows should be rejected")
	}
	if _, err := itscs.RunScalar([][]float64{{1, 2}}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("rate row mismatch should be rejected")
	}
	if _, err := itscs.RunScalar([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Fatal("rate slot mismatch should be rejected")
	}
	if _, err := itscs.RunScalar([][]float64{{1, 2}}, nil, itscs.WithXi(-1)); err == nil {
		t.Fatal("bad option should be rejected")
	}
}

func TestRunScalarPreservesCleanCells(t *testing.T) {
	values, rates, _ := scalarField(8, 60)
	res, err := itscs.RunScalar(values, rates, scalarOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		for j := range values[i] {
			if res.Faulty[i][j] || res.Missing[i][j] {
				continue
			}
			if res.Values[i][j] != values[i][j] {
				t.Fatalf("clean cell (%d,%d) modified", i, j)
			}
		}
	}
}

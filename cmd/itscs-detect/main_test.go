package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itscs/internal/mat"
)

// writeFixture builds a small-fleet scenario with one missing and one
// faulty cell on the first vehicle, returning the input file paths.
func writeFixture(t *testing.T, dir string) (x, y, vx, vy string) {
	t.Helper()
	const vehicles, slots = 5, 30
	xs := mat.New(vehicles, slots)
	ys := mat.New(vehicles, slots)
	vxs := mat.New(vehicles, slots)
	vys := mat.New(vehicles, slots)
	for i := 0; i < vehicles; i++ {
		speed := 8 + 2*float64(i) // m/s east
		for j := 0; j < slots; j++ {
			xs.Set(i, j, 1000*float64(i+1)+speed*30*float64(j))
			ys.Set(i, j, 2000*float64(i+1))
			vxs.Set(i, j, speed)
		}
	}
	xs.Set(0, 5, math.NaN())
	ys.Set(0, 5, math.NaN())
	xs.Add(0, 15, 5000) // 5 km fault

	paths := map[string]*mat.Dense{"x.csv": xs, "y.csv": ys, "vx.csv": vxs, "vy.csv": vys}
	for name, m := range paths {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := mat.WriteCSV(f, m); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "x.csv"), filepath.Join(dir, "y.csv"),
		filepath.Join(dir, "vx.csv"), filepath.Join(dir, "vy.csv")
}

func TestRunDetectsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	x, y, vx, vy := writeFixture(t, dir)
	out := filepath.Join(dir, "out")
	err := run([]string{"-x", x, "-y", y, "-vx", vx, "-vy", vy, "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	faulty := readMatrix(t, filepath.Join(out, "faulty.csv"))
	if faulty.At(0, 15) != 1 {
		t.Fatal("injected fault not detected")
	}
	repaired := readMatrix(t, filepath.Join(out, "x-repaired.csv"))
	// The missing cell and the faulty cell must be repaired near the track.
	if math.IsNaN(repaired.At(0, 5)) {
		t.Fatal("missing cell not repaired")
	}
	if diff := math.Abs(repaired.At(0, 15) - (1000 + 8*30*15)); diff > 500 {
		t.Fatalf("faulty cell repaired %.0f m off track", diff)
	}
}

func TestRunVariants(t *testing.T) {
	dir := t.TempDir()
	x, y, vx, vy := writeFixture(t, dir)
	for _, v := range []string{"full", "nov", "novt"} {
		out := filepath.Join(dir, "out-"+v)
		err := run([]string{"-x", x, "-y", y, "-vx", vx, "-vy", vy, "-out", out, "-variant", v})
		if err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
	}
	out := filepath.Join(dir, "out-bad")
	err := run([]string{"-x", x, "-y", y, "-vx", vx, "-vy", vy, "-out", out, "-variant", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown variant") {
		t.Fatalf("bad variant should fail, got %v", err)
	}
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing required flags should fail")
	}
}

func TestRunMissingInputFile(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-x", filepath.Join(dir, "nope.csv"), "-y", "a", "-vx", "b", "-vy", "c", "-out", dir})
	if err == nil {
		t.Fatal("nonexistent input should fail")
	}
}

func readMatrix(t *testing.T, path string) *mat.Dense {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mat.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

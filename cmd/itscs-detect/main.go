// Command itscs-detect runs the I(TS,CS) framework over CSV matrices and
// writes the detection mask and repaired trajectories.
//
// Usage:
//
//	itscs-detect -x sx.csv -y sy.csv -vx vx.csv -vy vy.csv -out DIR
//	             [-tau 30s] [-variant full|nov|novt] [-max-iter 10]
//
// Input matrices are participants × slots; NaN cells in the coordinate
// files mark missing observations (as written by tracegen). Output files:
// faulty.csv (0/1 detection mask), x-repaired.csv, y-repaired.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"itscs"
	"itscs/internal/mat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("itscs-detect", flag.ContinueOnError)
	xPath := fs.String("x", "", "X coordinate CSV (required)")
	yPath := fs.String("y", "", "Y coordinate CSV (required)")
	vxPath := fs.String("vx", "", "X velocity CSV (required)")
	vyPath := fs.String("vy", "", "Y velocity CSV (required)")
	outDir := fs.String("out", "", "output directory (required)")
	tau := fs.Duration("tau", 30*time.Second, "slot duration")
	variantName := fs.String("variant", "full", "reconstruction variant: full, nov (no velocity), novt (plain CS)")
	maxIter := fs.Int("max-iter", 10, "maximum DETECT/CORRECT iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]string{"-x": *xPath, "-y": *yPath, "-vx": *vxPath, "-vy": *vyPath, "-out": *outDir} {
		if v == "" {
			return fmt.Errorf("%s is required", name)
		}
	}
	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}

	ds := itscs.Dataset{}
	for _, item := range []struct {
		path string
		dst  *[][]float64
	}{
		{*xPath, &ds.X}, {*yPath, &ds.Y}, {*vxPath, &ds.VX}, {*vyPath, &ds.VY},
	} {
		rows, err := readCSV(item.path)
		if err != nil {
			return err
		}
		*item.dst = rows
	}

	res, err := itscs.Run(ds,
		itscs.WithSlotDuration(*tau),
		itscs.WithVariant(variant),
		itscs.WithMaxIterations(*maxIter),
	)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	outputs := map[string][][]float64{
		"faulty.csv":     boolRows(res.Faulty),
		"x-repaired.csv": res.X,
		"y-repaired.csv": res.Y,
	}
	for name, rows := range outputs {
		if err := writeCSV(filepath.Join(*outDir, name), rows); err != nil {
			return err
		}
	}

	var flagged, missing int
	for i := range res.Faulty {
		for j := range res.Faulty[i] {
			if res.Faulty[i][j] {
				flagged++
			}
			if res.Missing[i][j] {
				missing++
			}
		}
	}
	fmt.Printf("%d participants x %d slots: %d cells flagged faulty, %d missing, converged=%v in %d iterations\n",
		len(res.Faulty), len(res.Faulty[0]), flagged, missing, res.Converged, res.Iterations)
	return nil
}

func parseVariant(name string) (itscs.Variant, error) {
	switch name {
	case "full":
		return itscs.VariantFull, nil
	case "nov":
		return itscs.VariantNoVelocity, nil
	case "novt":
		return itscs.VariantPlainCS, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", name)
	}
}

func boolRows(rows [][]bool) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = make([]float64, len(r))
		for j, v := range r {
			if v {
				out[i][j] = 1
			}
		}
	}
	return out
}

func readCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	m, err := mat.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	rows := make([][]float64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows, nil
}

func writeCSV(path string, rows [][]float64) error {
	m, err := mat.NewFromRows(rows)
	if err != nil {
		return fmt.Errorf("assemble %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := mat.WriteCSV(f, m); err != nil {
		_ = f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

// Command itscs-bench regenerates every table and figure of the paper's
// evaluation (§IV) as text tables, annotated with the shape the paper
// reports so measured values can be compared at a glance.
//
// Usage:
//
//	itscs-bench [-scale quick|paper] [-fig all|1|4a|4b|5|6|7|8] [-seed N] [-workers N]
//
// The quick scale (60×120) preserves the qualitative shapes and finishes
// in minutes on a laptop core; the paper scale (158×240) reproduces the
// evaluation dimensions exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"itscs/internal/experiment"
	"itscs/internal/mat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("itscs-bench", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "workload scale: quick (60x120) or paper (158x240)")
	fig := fs.String("fig", "all", "figure to regenerate: all, 1, 4a, 4b, 5, 6, 7, 8")
	seed := fs.Int64("seed", 1, "experiment seed")
	workers := fs.Int("workers", 0, "worker goroutines for the matrix kernels (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mat.SetParallelism(*workers)

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale
	case "paper":
		scale = experiment.PaperScale
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	cfg := experiment.DefaultConfig(scale)
	cfg.Seed = *seed

	figures := map[string]func(experiment.Config) error{
		"1":  fig1,
		"4a": fig4a,
		"4b": fig4b,
		"5":  fig5,
		"6":  fig6,
		"7":  fig7,
		"8":  fig8,
	}
	order := []string{"1", "4a", "4b", "5", "6", "7", "8"}

	fmt.Printf("I(TS,CS) evaluation harness — scale %dx%d, seed %d, workers %d\n\n",
		scale.Participants, scale.Slots, *seed, mat.Parallelism())

	if *fig != "all" {
		f, ok := figures[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		return f(cfg)
	}
	for _, name := range order {
		if err := figures[name](cfg); err != nil {
			return fmt.Errorf("figure %s: %w", name, err)
		}
	}
	return nil
}

func header(title, shape string) {
	fmt.Println(strings.Repeat("=", 76))
	fmt.Println(title)
	fmt.Println("paper shape:", shape)
	fmt.Println(strings.Repeat("-", 76))
}

func fig1(cfg experiment.Config) error {
	header("Figure 1 — faulty data and missing values in a corrupted trace",
		"faulty points jump kilometers off-route; clean steps stay sub-km")
	start := time.Now()
	stats, err := experiment.Fig1(cfg, 0.11, 0.28)
	if err != nil {
		return err
	}
	fmt.Printf("requested: alpha=%.2f beta=%.2f   realized: missing=%.3f faulty=%.3f\n",
		stats.Alpha, stats.Beta, stats.RealizedMissing, stats.RealizedFaulty)
	fmt.Printf("mean injected bias: %.0f m (paper: \"typically at least kilometers\")\n", stats.MeanBiasMeters)
	fmt.Printf("clean step p95: %.0f m   corrupted max step: %.0f m\n",
		stats.CleanStepP95, stats.MaxStepMeters)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig4a(cfg experiment.Config) error {
	header("Figure 4(a) — singular-value energy CDF of the coordinate matrices",
		"top ~9-11% of singular values carry 95% of the energy")
	start := time.Now()
	points, err := experiment.Fig4a(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-10s %-10s\n", "normalized index", "X energy", "Y energy")
	var doneX, doneY bool
	for _, p := range points {
		// Print a compact sweep plus the 95% crossings.
		if p.NormalizedIndex <= 0.25 || int(p.NormalizedIndex*100)%20 == 0 {
			if p.NormalizedIndex <= 0.05 || int(p.NormalizedIndex*1000)%25 == 0 {
				fmt.Printf("%-18.3f %-10.4f %-10.4f\n", p.NormalizedIndex, p.EnergyX, p.EnergyY)
			}
		}
		if !doneX && p.EnergyX >= 0.95 {
			fmt.Printf("X reaches 95%% energy at %.1f%% of the spectrum\n", p.NormalizedIndex*100)
			doneX = true
		}
		if !doneY && p.EnergyY >= 0.95 {
			fmt.Printf("Y reaches 95%% energy at %.1f%% of the spectrum\n", p.NormalizedIndex*100)
			doneY = true
		}
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig4b(cfg experiment.Config) error {
	header("Figure 4(b) — temporal stability, raw vs velocity-improved",
		"95th percentile drops from ~410 m to ~210 m with velocity")
	start := time.Now()
	rows, err := experiment.Fig4b(cfg, []float64{0.5, 0.75, 0.9, 0.95, 0.99})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s\n", "quantile", "|Δx| m", "|Δy| m", "|Δvx| m", "|Δvy| m")
	for _, r := range rows {
		fmt.Printf("%-10.2f %-10.0f %-10.0f %-10.0f %-10.0f\n", r.Quantile, r.DX, r.DY, r.DVX, r.DVY)
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig5(cfg experiment.Config) error {
	header("Figure 5 — faulty-data detection precision & recall",
		"TMM degrades with alpha/beta; all I(TS,CS) variants stay >95% even at 40/40")
	start := time.Now()
	points, err := experiment.Fig5(cfg,
		[]float64{0, 0.2, 0.4},
		[]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %-18s %-11s %-9s %s\n", "alpha", "beta", "method", "precision", "recall", "iters")
	for _, p := range points {
		iters := "-"
		if p.Iterations > 0 {
			iters = fmt.Sprintf("%d", p.Iterations)
		}
		fmt.Printf("%-6.2f %-6.2f %-18s %-11.4f %-9.4f %s\n",
			p.Alpha, p.Beta, p.Method, p.Precision, p.Recall, iters)
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig6(cfg experiment.Config) error {
	header("Figure 6 — reconstruction error (MAE, meters)",
		"plain CS blows past 1200 m as beta grows; I(TS,CS) stays ~200 m; w/o VT ~2x full; w/o V ~10-18% worse")
	start := time.Now()
	points, err := experiment.Fig6(cfg,
		[]float64{0.1, 0.2, 0.3},
		[]float64{0, 0.1, 0.2, 0.3, 0.4})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %-18s %s\n", "alpha", "beta", "method", "MAE (m)")
	for _, p := range points {
		fmt.Printf("%-6.2f %-6.2f %-18s %.1f\n", p.Alpha, p.Beta, p.Method, p.MAE)
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig7(cfg experiment.Config) error {
	header("Figure 7 — impact of faulty velocity data",
		"gamma<=20% barely moves MAE; even 40% only slightly; dropping velocity is worse")
	start := time.Now()
	points, err := experiment.Fig7(cfg,
		[]float64{0.2, 0.4},
		[]float64{0.1, 0.2, 0.3, 0.4},
		[]float64{0, 0.2, 0.4})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %-6s %-18s %s\n", "alpha", "beta", "gamma", "method", "MAE (m)")
	for _, p := range points {
		fmt.Printf("%-6.2f %-6.2f %-6.2f %-18s %.1f\n", p.Alpha, p.Beta, p.Gamma, p.Method, p.MAE)
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fig8(cfg experiment.Config) error {
	header("Figure 8 — convergence of I(TS,CS)",
		"large gain from iteration 1 to 2, stable within ~4 iterations even at 40/40")
	start := time.Now()
	points, err := experiment.Fig8(cfg, []struct{ Alpha, Beta float64 }{
		{0.2, 0.2}, {0.2, 0.4}, {0.4, 0.2}, {0.4, 0.4},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %-5s %-11s %-9s %-10s %s\n",
		"alpha", "beta", "iter", "precision", "recall", "MAE (m)", "changed flags")
	for _, p := range points {
		fmt.Printf("%-6.2f %-6.2f %-5d %-11.4f %-9.4f %-10.1f %d\n",
			p.Alpha, p.Beta, p.Iteration, p.Precision, p.Recall, p.MAE, p.Changed)
	}
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

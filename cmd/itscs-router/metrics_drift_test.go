package main

import (
	"flag"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/obs/obstest"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metric-name list")

// TestMetricsDrift is the CI gate against silent metric renames and drops
// on the router's exposition, the mirror of itscs-serve's gate: a payload
// with every map populated renders every series the binary can export, and
// the sorted fingerprint must match testdata/metric_names.txt. Intentional
// changes update the golden with
//
//	go test ./cmd/itscs-router/ -run TestMetricsDrift -update
//
// and the golden diff is reviewed like any other contract change.
func TestMetricsDrift(t *testing.T) {
	hist := pipeline.HistogramSnapshot{Count: 1, SumMS: 5, Buckets: map[int64]uint64{-1: 1}}
	payload := metricsPayload{
		Forwarder: cluster.ForwarderStats{
			Backends: map[string]mcs.ClientStats{"b0": {}},
		},
		Backends: []cluster.BackendStatus{
			{Backend: cluster.Backend{Name: "b0"}, Ready: true},
		},
		Cluster: cluster.ClusterMetrics{
			Backends: []cluster.BackendMetrics{{Backend: "b0"}},
			Aggregate: pipeline.Stats{
				PhaseLatency:   map[string]pipeline.HistogramSnapshot{"run": hist},
				AgeAtClose:     hist,
				IngestToResult: hist,
			},
		},
		Reputation: cluster.ClusterReputation{
			Stats: reputation.LedgerStats{
				States:      map[string]int{},
				Transitions: []reputation.TransitionCount{{From: "clean", To: "probation", Count: 1}},
			},
		},
	}
	body := renderProm(payload, time.Second, obs.NewRuntime())
	if err := obs.LintExposition(body); err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	if err := obstest.CheckGoldenSeries("testdata/metric_names.txt", body, *updateGolden); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"runtime"
	rdebug "runtime/debug"
	"sort"
	"time"

	"itscs/internal/metrics"
	"itscs/internal/obs"
	"itscs/internal/reputation"
)

// renderProm flattens the router's metrics payload into Prometheus text
// exposition format 0.0.4. Router-local series carry the itscs_router_
// prefix; the cluster-wide aggregates of the backends' engine stats carry
// itscs_cluster_, so one scrape of the router graphs the whole deployment.
// Per-backend series are labeled backend="<ingest addr>" and emitted in
// stable (configured) order.
func renderProm(p metricsPayload, uptime time.Duration, rt *obs.Runtime) []byte {
	b := obs.NewProm()

	b.Gauge("itscs_router_build_info",
		"Build identity of the running router; the value is always 1.",
		1, buildInfoLabels()...)
	b.Gauge("itscs_router_uptime_seconds", "Seconds since the router started.", uptime.Seconds())

	// Data plane.
	f := p.Forwarder
	b.Counter("itscs_router_reports_forwarded_total", "Reports accepted into a backend client's send buffer.", float64(f.Forwarded))
	b.Counter("itscs_router_reports_unroutable_total", "Reports refused because the fleet's owner was ejected.", float64(f.Unroutable))
	b.Counter("itscs_router_reports_non_finite_total", "Reports refused at the router for NaN or infinite values.", float64(f.NonFinite))
	b.Counter("itscs_router_reports_invalid_identity_total", "Reports refused at the router for an empty fleet or negative participant.", float64(f.InvalidIdentity))

	names := f.SortedBackends()
	emitPerBackend := func(name, help string, value func(string) float64, counter bool) {
		for _, backend := range names {
			label := obs.Label{Name: "backend", Value: backend}
			if counter {
				b.Counter(name, help, value(backend), label)
			} else {
				b.Gauge(name, help, value(backend), label)
			}
		}
	}
	emitPerBackend("itscs_router_client_enqueued_total", "Reports handed to this backend's client.",
		func(n string) float64 { return float64(f.Backends[n].Enqueued) }, true)
	emitPerBackend("itscs_router_client_dropped_total", "Reports evicted from this backend's full send buffer or abandoned at close.",
		func(n string) float64 { return float64(f.Backends[n].Dropped) }, true)
	emitPerBackend("itscs_router_client_sent_total", "Wire writes to this backend, retries included.",
		func(n string) float64 { return float64(f.Backends[n].Sent) }, true)
	emitPerBackend("itscs_router_client_acked_total", "Reports this backend acknowledged ok.",
		func(n string) float64 { return float64(f.Backends[n].Acked) }, true)
	emitPerBackend("itscs_router_client_rejected_total", "Reports this backend refused (err ack).",
		func(n string) float64 { return float64(f.Backends[n].Rejected) }, true)
	emitPerBackend("itscs_router_client_retries_total", "Re-sends after a transport failure mid-report.",
		func(n string) float64 { return float64(f.Backends[n].Retries) }, true)
	emitPerBackend("itscs_router_client_dials_total", "Connection attempts to this backend.",
		func(n string) float64 { return float64(f.Backends[n].Dials) }, true)
	emitPerBackend("itscs_router_client_dial_failures_total", "Failed connection attempts to this backend.",
		func(n string) float64 { return float64(f.Backends[n].DialFailures) }, true)
	emitPerBackend("itscs_router_client_reconnects_total", "Established connections to this backend torn down and replaced.",
		func(n string) float64 { return float64(f.Backends[n].Reconnects) }, true)
	emitPerBackend("itscs_router_client_queue_depth", "Reports buffered for this backend right now.",
		func(n string) float64 { return float64(f.Backends[n].QueueDepth) }, false)
	emitPerBackend("itscs_router_client_queue_capacity", "This backend's send buffer capacity.",
		func(n string) float64 { return float64(f.Backends[n].QueueCapacity) }, false)

	// Health view.
	ready := 0
	for _, st := range p.Backends {
		if st.Ready {
			ready++
		}
	}
	b.Gauge("itscs_cluster_backends", "Backends configured on the placement ring.", float64(len(p.Backends)))
	b.Gauge("itscs_cluster_backends_ready", "Backends currently admitted by the prober.", float64(ready))
	for _, st := range p.Backends {
		label := obs.Label{Name: "backend", Value: st.Backend.Name}
		up := 0.0
		if st.Ready {
			up = 1
		}
		b.Gauge("itscs_cluster_backend_ready", "Whether this backend is admitted (1) or ejected (0).", up, label)
	}
	for _, st := range p.Backends {
		b.Counter("itscs_cluster_backend_probes_total", "Readiness probes sent to this backend.",
			float64(st.Probes), obs.Label{Name: "backend", Value: st.Backend.Name})
	}
	for _, st := range p.Backends {
		b.Counter("itscs_cluster_backend_ejections_total", "Times this backend was ejected from rotation.",
			float64(st.Ejections), obs.Label{Name: "backend", Value: st.Backend.Name})
	}
	for _, st := range p.Backends {
		b.Counter("itscs_cluster_backend_readmissions_total", "Times this backend was readmitted after an ejection.",
			float64(st.Readmissions), obs.Label{Name: "backend", Value: st.Backend.Name})
	}

	// Aggregated cluster engine stats (sum over backends that answered the
	// metrics fan-out this scrape).
	answered := 0
	for _, bm := range p.Cluster.Backends {
		if bm.Err == "" {
			answered++
		}
	}
	b.Gauge("itscs_cluster_backends_scraped", "Backends whose engine stats this scrape aggregates.", float64(answered))
	agg := p.Cluster.Aggregate
	b.Counter("itscs_cluster_reports_ingested_total", "Reports accepted across all backend engines.", float64(agg.Ingested))
	b.Counter("itscs_cluster_reports_replayed_total", "Accepted reports that arrived via WAL recovery across the cluster.", float64(agg.Replayed))
	b.Counter("itscs_cluster_reports_rejected_total", "Reports refused at ingest across the cluster.", float64(agg.Rejected))
	b.Counter("itscs_cluster_reports_late_total", "Rejected reports below their fleet's retention horizon.", float64(agg.Late))
	b.Counter("itscs_cluster_reports_duplicate_total", "Rejected reports targeting an already-filled cell.", float64(agg.Duplicates))
	b.Counter("itscs_cluster_reports_non_finite_total", "Rejected reports carrying NaN or infinite values.", float64(agg.NonFinite))
	b.Counter("itscs_cluster_reports_stamped_total", "Ingested reports carrying an ingest freshness stamp, summed across backends.", float64(agg.ReportsStamped))
	b.Counter("itscs_cluster_reports_unstamped_total", "Ingested reports without a freshness stamp, summed across backends.", float64(agg.ReportsUnstamped))
	// Admission-gate breakdown: the three sum to ingested — tagged reports
	// are admitted, never dropped.
	b.Counter("itscs_cluster_reports_admitted_clean_total", "Ingested reports from participants in good standing across the cluster.", float64(agg.AdmittedClean))
	b.Counter("itscs_cluster_reports_tagged_quarantined_total", "Ingested reports tagged as coming from quarantined participants.", float64(agg.TaggedQuarantined))
	b.Counter("itscs_cluster_reports_tagged_probation_total", "Ingested reports tagged as coming from participants on probation.", float64(agg.TaggedProbation))
	b.Counter("itscs_cluster_windows_closed_total", "Windows cut from the streams across the cluster.", float64(agg.WindowsClosed))
	b.Counter("itscs_cluster_windows_empty_total", "Closed windows discarded for holding no observations.", float64(agg.WindowsEmpty))
	b.Counter("itscs_cluster_windows_skipped_total", "Windows jumped over to catch up after a slot gap.", float64(agg.WindowsSkipped))
	b.Counter("itscs_cluster_windows_dropped_total", "Windows evicted from full dispatch queues (drop-oldest).", float64(agg.WindowsDropped))
	b.Counter("itscs_cluster_windows_processed_total", "Windows that ran the detection loop to completion.", float64(agg.WindowsProcessed))
	b.Counter("itscs_cluster_windows_failed_total", "Windows whose detection loop returned an error.", float64(agg.WindowsFailed))
	b.Counter("itscs_cluster_warm_starts_total", "Processed windows that reused the previous window's factorization.", float64(agg.WarmStarts))
	b.Counter("itscs_cluster_cold_starts_total", "Processed windows that started CORRECT from scratch.", float64(agg.ColdStarts))
	b.Gauge("itscs_cluster_queue_depth", "Windows waiting in dispatch queues across the cluster.", float64(agg.QueueDepth))
	b.Gauge("itscs_cluster_fleets", "Fleet shards materialized across the cluster.", float64(agg.Fleets))
	for _, phase := range sortedKeys(agg.PhaseLatency) {
		b.Histogram("itscs_cluster_phase_latency_seconds",
			"Wall-clock latency by pipeline phase, summed across backends.",
			agg.PhaseLatency[phase], obs.Label{Name: "phase", Value: phase})
	}
	// Cluster-wide freshness: the backends' histograms merge bucket-wise
	// (fleets shard whole, so no observation is double-counted).
	b.HistogramBounds("itscs_cluster_freshness_age_at_close_seconds",
		"Report age at window close, summed across backends.",
		metrics.AgeBuckets, agg.AgeAtClose)
	b.HistogramBounds("itscs_cluster_freshness_ingest_to_result_seconds",
		"Ingest-to-result latency, summed across backends.",
		metrics.AgeBuckets, agg.IngestToResult)

	// Merged reputation ledgers (fleets shard whole, so the union over
	// backends double-counts nothing). Every state is emitted even at zero
	// so dashboards see the full census from the first scrape.
	rep := p.Reputation.Stats
	b.Gauge("itscs_cluster_reputation_fleets", "Fleets with trust state across the cluster.", float64(rep.Fleets))
	for _, state := range reputation.StateNames() {
		b.Gauge("itscs_cluster_reputation_participants", "Participants by trust state across the cluster.",
			float64(rep.States[state]), obs.Label{Name: "state", Value: state})
	}
	b.Counter("itscs_cluster_reputation_windows_folded_total", "Window results folded into trust ledgers across the cluster.", float64(rep.Folded))
	b.Counter("itscs_cluster_reputation_folds_skipped_total", "Window folds skipped as already applied (replay overlap) across the cluster.", float64(rep.Skipped))
	for _, tr := range rep.Transitions {
		b.Counter("itscs_cluster_reputation_transitions_total", "Trust state transitions across the cluster.",
			float64(tr.Count), obs.Label{Name: "from", Value: tr.From}, obs.Label{Name: "to", Value: tr.To})
	}
	rt.Emit(b, "itscs_router_")
	return b.Bytes()
}

// buildInfoLabels extracts the identity labels for itscs_router_build_info.
func buildInfoLabels() []obs.Label {
	labels := []obs.Label{{Name: "go_version", Value: runtime.Version()}}
	if bi, ok := rdebug.ReadBuildInfo(); ok {
		labels = append(labels, obs.Label{Name: "module", Value: bi.Main.Path})
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				labels = append(labels, obs.Label{Name: "revision", Value: s.Value})
			}
		}
	}
	return labels
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

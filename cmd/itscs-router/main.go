// Command itscs-router fronts a fleet-sharded cluster of itscs-serve
// backends. Participants upload location reports to the router's mcs TCP
// ingest exactly as they would to a single backend; the router places each
// fleet on one backend with a consistent-hash ring and streams its reports
// there over a reconnecting mcs client, so every fleet's sliding windows —
// and therefore its DETECT→CORRECT→CHECK results — are computed whole on
// one engine, identical to a single-node run.
//
// A health prober sweeps every backend's GET /readyz on a fixed cadence:
// backends recovering their WAL answer 503 and stay out of rotation until
// recovery completes. An ejected backend's fleets are NOT remapped — their
// window state lives only on the owner — so their new reports are refused
// with an "err" ack and counted until the owner readmits. The HTTP side is
// a scatter-gather query plane: fleet reads proxy to the owner, cluster
// reads fan out to every backend and merge.
//
// Usage:
//
//	itscs-router -backends 10.0.0.1:7070=10.0.0.1:8080,10.0.0.2:7070=10.0.0.2:8080
//	             [-ingest 127.0.0.1:7071] [-http 127.0.0.1:8081]
//	             [-vnodes 64] [-probe-interval 2s] [-probe-timeout 1s]
//	             [-fail-after 1] [-rise-after 1]
//	             [-client-queue 1024] [-idle-timeout 2m]
//	             [-log-format text|json] [-log-level info]
//
// HTTP endpoints:
//
//	GET /healthz         router liveness (JSON)
//	GET /readyz          200 while at least one backend is admitted, else 503
//	GET /backends        per-backend health and probe counters (JSON)
//	GET /results         union of every backend's fleets (JSON)
//	GET /results/{fleet} proxied to the fleet's owner (503 while ejected)
//	GET /reputation      merged trust ledgers of every backend (JSON)
//	GET /reputation/{fleet}               proxied to the fleet's owner
//	GET /reputation/{fleet}/{participant} proxied to the fleet's owner
//	GET /trace/{fleet}   scatter-gather trace lookup: every backend's
//	                     /trace/{fleet} answer, attributed by backend;
//	                     ?id={trace-id} passes the trace-ID lookup through
//	GET /status          cluster overview (JSON): backends, ring ownership,
//	                     per-fleet freshness quantiles and window lag,
//	                     every backend's own /status attributed by name
//	GET /metrics         Prometheus text exposition of the router and the
//	                     aggregated cluster; JSON with Accept:
//	                     application/json or ?format=json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-router:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal or a listener failure. The
// stop channel substitutes for signals in tests; nil means OS signals.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("itscs-router", flag.ContinueOnError)
	ingestAddr := fs.String("ingest", "127.0.0.1:7071", "TCP address for participant report ingest")
	httpAddr := fs.String("http", "127.0.0.1:8081", "HTTP address for health, metrics and query fan-out")
	backendsFlag := fs.String("backends", "", "comma-separated ingest=http backend pairs (required)")
	vnodes := fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per backend on the placement ring")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "backend /readyz probe cadence")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "per-probe timeout")
	failAfter := fs.Int("fail-after", 1, "consecutive probe failures that eject a backend")
	riseAfter := fs.Int("rise-after", 1, "consecutive probe successes that readmit a backend")
	clientQueue := fs.Int("client-queue", 1024, "per-backend send buffer depth (drop-oldest beyond)")
	idle := fs.Duration("idle-timeout", mcs.DefaultIdleTimeout, "ingest connection idle limit (0 disables)")
	logFormat := fs.String("log-format", obs.LogText, "log output format: text or json")
	logLevel := fs.String("log-level", "info", "log level floor: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backends, err := cluster.ParseBackends(*backendsFlag)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(out, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	// Startup banner: build identity and topology, first line in the log.
	banner := make([]any, 0, 8)
	for _, a := range obs.BuildInfoAttrs() {
		banner = append(banner, a)
	}
	banner = append(banner, "backends", len(backends), "vnodes", *vnodes)
	logger.Info("itscs-router starting", banner...)

	r, err := newRouter(routerOptions{
		ingestAddr:    *ingestAddr,
		httpAddr:      *httpAddr,
		backends:      backends,
		vnodes:        *vnodes,
		probeInterval: *probeInterval,
		probeTimeout:  *probeTimeout,
		failAfter:     *failAfter,
		riseAfter:     *riseAfter,
		clientQueue:   *clientQueue,
		idle:          *idle,
		log:           logger,
	})
	if err != nil {
		return err
	}
	r.serve()
	logger.Info("routing",
		"ingest", r.ingestAddr.String(),
		"http", r.httpBound.String(),
		"backends", len(backends),
		"vnodes", *vnodes)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case s := <-sig:
			logger.Info("draining", "signal", s.String())
		case err := <-r.fatal:
			_ = r.close()
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-r.fatal:
			_ = r.close()
			return err
		}
	}
	return r.close()
}

// routerOptions collects the wiring newRouter needs. probe and onChange
// are test seams for deterministic health transitions.
type routerOptions struct {
	ingestAddr    string
	httpAddr      string
	backends      []cluster.Backend
	vnodes        int
	probeInterval time.Duration
	probeTimeout  time.Duration
	failAfter     int
	riseAfter     int
	clientQueue   int
	idle          time.Duration
	log           *slog.Logger
	probe         cluster.ProbeFunc
	onChange      func(cluster.Backend, bool)
}

// router wires the data plane (mcs ingest → forwarder), the control plane
// (prober), and the query plane (HTTP fan-out) together.
type router struct {
	log        *slog.Logger
	backends   []cluster.Backend
	ring       *cluster.Ring
	prober     *cluster.Prober
	fwd        *cluster.Forwarder
	query      *cluster.Query
	ingest     *mcs.Server
	ingestAddr net.Addr
	http       *http.Server
	httpLn     net.Listener
	httpBound  net.Addr
	started    time.Time
	runtime    *obs.Runtime
	fatal      chan error
}

// flushTimeout bounds the graceful-shutdown drain of the forward buffers.
// With a backend down its client would retry forever; after the timeout
// the remaining reports are abandoned and counted as dropped.
const flushTimeout = 5 * time.Second

func newRouter(opt routerOptions) (*router, error) {
	logger := opt.log
	if logger == nil {
		logger = obs.Discard()
	}
	r := &router{
		log:      logger,
		backends: opt.backends,
		ring:     cluster.NewRing(opt.vnodes),
		started:  time.Now(),
		runtime:  obs.NewRuntime(),
		fatal:    make(chan error, 2),
	}
	r.prober = cluster.NewProber(opt.backends, cluster.ProberOptions{
		Interval:  opt.probeInterval,
		Timeout:   opt.probeTimeout,
		FailAfter: opt.failAfter,
		RiseAfter: opt.riseAfter,
		Probe:     opt.probe,
		OnChange:  opt.onChange,
		Log:       logger,
	})
	r.fwd = cluster.NewForwarder(opt.backends, r.ring, cluster.ForwarderOptions{
		Client: mcs.ClientOptions{QueueDepth: opt.clientQueue},
		Ready:  r.prober.Ready,
		Log:    logger,
	})
	r.query = cluster.NewQuery(opt.backends, r.ring, r.prober.Ready, nil)
	r.ingest = mcs.NewServer(r.fwd)
	r.ingest.IdleTimeout = opt.idle
	var err error
	if r.ingestAddr, err = r.ingest.Listen(opt.ingestAddr); err != nil {
		_ = r.fwd.Close()
		return nil, err
	}
	if r.httpLn, err = net.Listen("tcp", opt.httpAddr); err != nil {
		_ = r.ingest.Close()
		_ = r.fwd.Close()
		return nil, fmt.Errorf("http listen: %w", err)
	}
	r.httpBound = r.httpLn.Addr()
	r.http = &http.Server{
		Handler:           r.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return r, nil
}

// serve starts the prober and the listeners; failures surface on r.fatal.
func (r *router) serve() {
	r.prober.Start()
	go func() {
		if err := r.ingest.Serve(); err != nil {
			r.fatal <- fmt.Errorf("ingest: %w", err)
		}
	}()
	go func() {
		if err := r.http.Serve(r.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			r.fatal <- fmt.Errorf("http: %w", err)
		}
	}()
}

// close shuts the transport down first so no report arrives after the
// forward buffers drain, flushes what it can within flushTimeout, and
// closes the clients (counting whatever could not be delivered).
func (r *router) close() error {
	err := r.ingest.Close()
	if herr := r.http.Close(); err == nil {
		err = herr
	}
	r.prober.Close()
	ctx, cancel := context.WithTimeout(context.Background(), flushTimeout)
	defer cancel()
	if ferr := r.fwd.Flush(ctx); ferr != nil {
		r.log.Warn("shutdown flush incomplete, abandoning queued reports", "err", ferr)
	}
	if cerr := r.fwd.Close(); err == nil {
		err = cerr
	}
	return err
}

func (r *router) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(r.started).Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		ready := r.prober.ReadyCount()
		status := http.StatusOK
		if ready == 0 {
			// No admitted backend: every report would be refused, so tell
			// load balancers to look elsewhere.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ready_backends": ready,
			"backends":       len(r.backends),
		})
	})
	mux.HandleFunc("GET /backends", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"backends": r.prober.Snapshot()})
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.query.Fleets(req.Context()))
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, req *http.Request) {
		resp, err := r.query.Result(req.Context(), req.PathValue("fleet"))
		relayOwner(w, resp, err)
	})
	mux.HandleFunc("GET /reputation", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.query.Reputation(req.Context()))
	})
	mux.HandleFunc("GET /reputation/{fleet}", func(w http.ResponseWriter, req *http.Request) {
		resp, err := r.query.ReputationFleet(req.Context(), req.PathValue("fleet"))
		relayOwner(w, resp, err)
	})
	mux.HandleFunc("GET /reputation/{fleet}/{participant}", func(w http.ResponseWriter, req *http.Request) {
		resp, err := r.query.ReputationParticipant(req.Context(),
			req.PathValue("fleet"), req.PathValue("participant"))
		relayOwner(w, resp, err)
	})
	mux.HandleFunc("GET /trace/{fleet}", func(w http.ResponseWriter, req *http.Request) {
		// Scatter-gather rather than owner-proxy: after a ring change (or an
		// operator misremembering placement) the trace may live on a backend
		// that no longer owns the fleet, and each answer stays attributed.
		writeJSON(w, http.StatusOK,
			r.query.TraceFleet(req.Context(), req.PathValue("fleet"), req.URL.RawQuery))
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.statusPayload(req))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		payload := metricsPayload{
			Forwarder:  r.fwd.Stats(),
			Backends:   r.prober.Snapshot(),
			Cluster:    r.query.Metrics(req.Context()),
			Reputation: r.query.Reputation(req.Context()),
		}
		if obs.WantsJSON(req) {
			writeJSON(w, http.StatusOK, payload)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(renderProm(payload, time.Since(r.started), r.runtime))
	})
	return mux
}

// statusPayload assembles the router's /status cluster overview: the
// prober's health view, per-fleet ring ownership and freshness (quantiles
// and window lag from the aggregated engine stats), and every backend's
// own /status answer, attributed by name.
func (r *router) statusPayload(req *http.Request) map[string]any {
	ctx := req.Context()
	cm := r.query.Metrics(ctx)
	fleets := map[string]any{}
	for fleet, ff := range cm.Aggregate.Freshness {
		owner, _ := r.fwd.Owner(fleet)
		fleets[fleet] = map[string]any{
			"owner":            owner,
			"watermark_slot":   ff.WatermarkSlot,
			"window_lag":       ff.NextSeq - 1 - ff.LatestSeq,
			"age_at_close":     pipeline.SummarizeFreshness(ff.AgeAtClose),
			"ingest_to_result": pipeline.SummarizeFreshness(ff.IngestToResult),
		}
	}
	fwd := r.fwd.Stats()
	return map[string]any{
		"status":         "ok",
		"uptime_s":       time.Since(r.started).Seconds(),
		"ready_backends": r.prober.ReadyCount(),
		"backends":       r.prober.Snapshot(),
		"forwarder": map[string]any{
			"forwarded":        fwd.Forwarded,
			"unroutable":       fwd.Unroutable,
			"non_finite":       fwd.NonFinite,
			"invalid_identity": fwd.InvalidIdentity,
		},
		"freshness": map[string]any{
			"age_at_close":     pipeline.SummarizeFreshness(cm.Aggregate.AgeAtClose),
			"ingest_to_result": pipeline.SummarizeFreshness(cm.Aggregate.IngestToResult),
			"by_fleet":         fleets,
		},
		"engine": map[string]any{
			"ingested":          cm.Aggregate.Ingested,
			"reports_stamped":   cm.Aggregate.ReportsStamped,
			"reports_unstamped": cm.Aggregate.ReportsUnstamped,
			"windows_closed":    cm.Aggregate.WindowsClosed,
			"windows_processed": cm.Aggregate.WindowsProcessed,
		},
		"backend_status": r.query.Status(ctx),
	}
}

// metricsPayload is the router's /metrics JSON: its own data plane, the
// health view, the aggregated cluster engine stats, and the merged
// reputation ledgers.
type metricsPayload struct {
	Forwarder  cluster.ForwarderStats    `json:"forwarder"`
	Backends   []cluster.BackendStatus   `json:"backends"`
	Cluster    cluster.ClusterMetrics    `json:"cluster"`
	Reputation cluster.ClusterReputation `json:"reputation"`
}

// relayOwner writes a proxied owner answer verbatim (200 result, 204 no
// window yet, 404 unknown fleet or participant, 400 malformed id), mapping
// an ejected owner to 503 and any other proxy failure to 502.
func relayOwner(w http.ResponseWriter, resp *cluster.ProxyResponse, err error) {
	switch {
	case errors.Is(err, cluster.ErrNoBackend):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
	default:
		if resp.ContentType != "" {
			w.Header().Set("Content-Type", resp.ContentType)
		}
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

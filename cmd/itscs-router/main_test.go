package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/cluster/clustertest"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/sim"
)

// testScenario shapes every fleet stream in these tests; distinct fleets
// get distinct seeds derived from it.
func testScenario(seed int64) sim.Scenario {
	return sim.Scenario{Seed: seed}
}

func startBackends(t *testing.T, n int) []*clustertest.Backend {
	t.Helper()
	rep := reputation.DefaultConfig()
	backends := make([]*clustertest.Backend, n)
	for i := range backends {
		b, err := clustertest.Start(clustertest.Options{
			Config:     sim.EngineConfig(testScenario(1)),
			Reputation: &rep,
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = b
		t.Cleanup(func() { _ = b.Close() })
	}
	return backends
}

func backendsFlag(backends []*clustertest.Backend) string {
	parts := make([]string, len(backends))
	for i, b := range backends {
		parts[i] = b.IngestAddr() + "=" + b.HTTPAddr()
	}
	return strings.Join(parts, ",")
}

// startRouter boots a router over the backends with fast probes and a
// change-notification channel, sweeping once so live backends are admitted
// before the test sends traffic.
func startRouter(t *testing.T, backends []*clustertest.Backend, interval time.Duration) (*router, chan string) {
	t.Helper()
	specs, err := cluster.ParseBackends(backendsFlag(backends))
	if err != nil {
		t.Fatal(err)
	}
	changes := make(chan string, 64)
	r, err := newRouter(routerOptions{
		ingestAddr:    "127.0.0.1:0",
		httpAddr:      "127.0.0.1:0",
		backends:      specs,
		vnodes:        64,
		probeInterval: interval,
		probeTimeout:  time.Second,
		clientQueue:   4096,
		idle:          time.Minute,
		onChange: func(b cluster.Backend, ready bool) {
			changes <- fmt.Sprintf("%s=%v", b.Name, ready)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.serve()
	t.Cleanup(func() { _ = r.close() })
	waitChange(t, changes, len(backends)) // initial admissions
	return r, changes
}

func waitChange(t *testing.T, changes chan string, n int) []string {
	t.Helper()
	got := make([]string, 0, n)
	for len(got) < n {
		select {
		case c := <-changes:
			got = append(got, c)
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for health changes, have %v", got)
		}
	}
	return got
}

// TestRouterEndToEnd is the acceptance E2E: several fleet workloads
// streamed through a router over 3 backends must yield, window for window,
// flags and F1 bitwise identical to each fleet's single-node golden run.
func TestRouterEndToEnd(t *testing.T) {
	backends := startBackends(t, 3)
	r, _ := startRouter(t, backends, 200*time.Millisecond)

	// Subscribe to every backend engine before any report flows.
	type sub struct {
		ch     <-chan *pipeline.WindowResult
		cancel func()
	}
	subs := make([]sub, len(backends))
	for i, b := range backends {
		ch, cancel := b.Engine().Subscribe(256)
		subs[i] = sub{ch, cancel}
		defer cancel()
	}

	fleets := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	golden := map[string]map[int]sim.WindowOutcome{}
	truth := map[string]*sim.FleetWorkload{}
	owners := map[string]bool{}
	var all []mcs.Report
	for i, fleet := range fleets {
		sc := testScenario(int64(100 + i))
		w, err := sim.BuildWorkload(fleet, sc)
		if err != nil {
			t.Fatal(err)
		}
		truth[fleet] = w
		if golden[fleet], err = sim.GoldenRun(w, sc); err != nil {
			t.Fatal(err)
		}
		all = append(all, w.Reports...)
		owner, ok := r.fwd.Owner(fleet)
		if !ok {
			t.Fatalf("no owner for %s", fleet)
		}
		owners[owner] = true
	}
	if len(owners) < 2 {
		t.Fatalf("all %d fleets landed on one backend; placement is not spreading", len(fleets))
	}

	// Stream everything through the router's public ingest via the client.
	cl := mcs.NewClient(r.ingestAddr.String(), mcs.ClientOptions{QueueDepth: len(all)})
	defer cl.Close()
	for _, rep := range all {
		if err := cl.Send(rep); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.Acked != uint64(len(all)) {
		t.Fatalf("router acked %d of %d reports: %+v", st.Acked, len(all), st)
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Drain: close each backend gracefully (flushes open partial windows,
	// exactly as the golden run's engine.Close does) and collect results.
	got := map[string]map[int]sim.WindowOutcome{}
	for i, b := range backends {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		for res := range subs[i].ch {
			w, ok := truth[res.Fleet]
			if !ok {
				t.Fatalf("result for unknown fleet %q", res.Fleet)
			}
			out, err := sim.Outcome(res, w.Truth)
			if err != nil {
				t.Fatal(err)
			}
			if got[res.Fleet] == nil {
				got[res.Fleet] = map[int]sim.WindowOutcome{}
			}
			got[res.Fleet][out.Seq] = out
		}
	}

	for _, fleet := range fleets {
		if violations := sim.VerifyWindows(golden[fleet], got[fleet]); len(violations) > 0 {
			t.Errorf("fleet %s diverges from single-node run:\n  %s",
				fleet, strings.Join(violations, "\n  "))
		}
	}
}

// TestRouterEjectsAndReadmits is the failure-path acceptance: killing a
// backend ejects it within one probe interval, its fleets' new reports are
// refused and counted (not silently dropped, not remapped), and the
// backend readmits once its /readyz recovers.
func TestRouterEjectsAndReadmits(t *testing.T) {
	const interval = 150 * time.Millisecond
	backends := startBackends(t, 3)
	r, changes := startRouter(t, backends, interval)

	// Find one fleet per backend so we can tell victims from survivors.
	fleetOn := map[string]string{} // backend name -> a fleet it owns
	for i := 0; len(fleetOn) < len(backends); i++ {
		fleet := fmt.Sprintf("fleet-%d", i)
		owner, _ := r.fwd.Owner(fleet)
		if _, ok := fleetOn[owner]; !ok {
			fleetOn[owner] = fleet
		}
	}
	victim := backends[0]
	victimName := victim.Spec().Name
	victimFleet := fleetOn[victimName]
	survivorFleet := ""
	for name, fleet := range fleetOn {
		if name != victimName {
			survivorFleet = fleet
			break
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	send := func(fleet string, slot int) (acked int) {
		t.Helper()
		acked, err := mcs.SendReports(ctx, r.ingestAddr.String(), []mcs.Report{
			{Fleet: fleet, Participant: 0, Slot: slot, X: 1, Y: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return acked
	}
	if send(victimFleet, 0) != 1 || send(survivorFleet, 0) != 1 {
		t.Fatal("healthy cluster refused reports")
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the victim and time the ejection.
	killed := time.Now()
	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}
	ejected := waitChange(t, changes, 1)
	if elapsed := time.Since(killed); elapsed > interval+time.Second {
		t.Errorf("ejection took %v, want within one probe interval (%v) plus probe slack", elapsed, interval)
	}
	if ejected[0] != victimName+"=false" {
		t.Fatalf("health change %v, want %s=false", ejected, victimName)
	}

	// The victim's fleet is refused — an err ack, counted — while the
	// survivor's flows untouched.
	before := r.fwd.Stats()
	if got := send(victimFleet, 1); got != 0 {
		t.Fatalf("ejected owner's fleet was acked %d, want 0", got)
	}
	if got := send(survivorFleet, 1); got != 1 {
		t.Fatalf("survivor fleet acked %d, want 1", got)
	}
	after := r.fwd.Stats()
	if after.Unroutable != before.Unroutable+1 {
		t.Fatalf("unroutable went %d -> %d, want +1", before.Unroutable, after.Unroutable)
	}
	// Nothing was remapped: the victim's fleet still belongs to the victim.
	if owner, _ := r.fwd.Owner(victimFleet); owner != victimName {
		t.Fatalf("fleet %s remapped to %s during the outage", victimFleet, owner)
	}

	// Router /readyz stays 200 with two backends up.
	if code := httpGet(t, r.httpBound.String(), "/readyz"); code != 200 {
		t.Fatalf("router readyz = %d with survivors up", code)
	}

	// Restart the victim on its old addresses, still recovering: /readyz
	// 503 keeps it ejected.
	reborn, err := clustertest.Start(clustertest.Options{
		Config:       sim.EngineConfig(testScenario(1)),
		IngestAddr:   victim.IngestAddr(),
		HTTPAddr:     victim.HTTPAddr(),
		StartUnready: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	time.Sleep(3 * interval) // several sweeps of 503
	if r.prober.Ready(victimName) {
		t.Fatal("recovering backend admitted before /readyz turned 200")
	}

	// Recovery completes: readmitted, and the fleet flows again.
	reborn.SetReady(true)
	readmitted := waitChange(t, changes, 1)
	if readmitted[0] != victimName+"=true" {
		t.Fatalf("health change %v, want %s=true", readmitted, victimName)
	}
	if got := send(victimFleet, 2); got != 1 {
		t.Fatalf("readmitted owner's fleet acked %d, want 1", got)
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n := reborn.Engine().Stats().Ingested; n != 1 {
		t.Fatalf("reborn backend ingested %d reports, want 1", n)
	}
}

func httpGet(t *testing.T, addr, path string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestMetricsExposition scrapes the router's Prometheus endpoint under
// load and lints the exposition; CI runs this by name.
func TestMetricsExposition(t *testing.T) {
	backends := startBackends(t, 2)
	r, _ := startRouter(t, backends, 200*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var reports []mcs.Report
	for s := 0; s < 30; s++ {
		reports = append(reports, mcs.Report{Fleet: "metrics", Participant: 0, Slot: s, X: 1, Y: 1})
	}
	if acked, err := mcs.SendReports(ctx, r.ingestAddr.String(), reports); err != nil || acked != len(reports) {
		t.Fatalf("seeded %d/%d reports, err %v", acked, len(reports), err)
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + r.httpBound.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q", ct)
	}
	if err := obs.LintExposition(body); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"itscs_router_reports_forwarded_total 30",
		"itscs_router_reports_invalid_identity_total 0",
		"itscs_router_client_acked_total{backend=",
		"itscs_cluster_backends_ready 2",
		"itscs_cluster_reports_ingested_total 30",
		"itscs_cluster_reports_admitted_clean_total 30",
		"itscs_cluster_phase_latency_seconds_bucket",
		"itscs_cluster_reputation_fleets",
		`itscs_cluster_reputation_participants{state="quarantined"}`,
		"itscs_cluster_reputation_windows_folded_total",
		"itscs_cluster_reputation_folds_skipped_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRouterHTTPSurface covers the query fan-out endpoints end to end.
func TestRouterHTTPSurface(t *testing.T) {
	backends := startBackends(t, 2)
	r, _ := startRouter(t, backends, 200*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	w, err := sim.BuildWorkload("surface", testScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := mcs.SendReports(ctx, r.ingestAddr.String(), w.Reports); err != nil || acked != len(w.Reports) {
		t.Fatalf("streamed %d/%d, err %v", acked, len(w.Reports), err)
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	if code := httpGet(t, r.httpBound.String(), "/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code := httpGet(t, r.httpBound.String(), "/backends"); code != 200 {
		t.Fatalf("backends = %d", code)
	}
	resp, err := http.Get("http://" + r.httpBound.String() + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"surface"`) {
		t.Fatalf("/results = %s, want the streamed fleet", body)
	}
	// The owner has windows by now (engine still open: poll until the
	// first closes).
	deadline := time.Now().Add(30 * time.Second)
	for {
		code := httpGet(t, r.httpBound.String(), "/results/surface")
		if code == 200 {
			break
		}
		if code != 204 || time.Now().After(deadline) {
			t.Fatalf("/results/surface = %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := httpGet(t, r.httpBound.String(), "/results/nobody"); code != 404 {
		t.Fatalf("/results/nobody = %d, want 404 passthrough", code)
	}

	// The reputation surface: the merged view lists the fleet once a window
	// has folded, and the owner-proxied routes relay the backend's answers
	// (including error shapes) verbatim.
	deadline = time.Now().Add(30 * time.Second)
	for {
		if code := httpGet(t, r.httpBound.String(), "/reputation/surface"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/reputation/surface never turned 200")
		}
		time.Sleep(10 * time.Millisecond)
	}
	repResp, err := http.Get("http://" + r.httpBound.String() + "/reputation")
	if err != nil {
		t.Fatal(err)
	}
	repBody, _ := io.ReadAll(repResp.Body)
	repResp.Body.Close()
	if repResp.StatusCode != 200 || !strings.Contains(string(repBody), `"surface"`) {
		t.Fatalf("/reputation = %d %s, want the streamed fleet", repResp.StatusCode, repBody)
	}
	if code := httpGet(t, r.httpBound.String(), "/reputation/surface/0"); code != 200 {
		t.Fatalf("/reputation/surface/0 = %d", code)
	}
	if code := httpGet(t, r.httpBound.String(), "/reputation/nobody"); code != 404 {
		t.Fatalf("/reputation/nobody = %d, want 404 passthrough", code)
	}
	if code := httpGet(t, r.httpBound.String(), "/reputation/surface/xyz"); code != 400 {
		t.Fatalf("/reputation/surface/xyz = %d, want 400 passthrough", code)
	}
}

// TestRunFlagValidation: the binary refuses to start without backends.
func TestRunFlagValidation(t *testing.T) {
	err := run([]string{"-backends", ""}, io.Discard, make(chan struct{}))
	if err == nil {
		t.Fatal("run accepted an empty backend list")
	}
}

// TestRunLifecycle boots the full binary against live backends and shuts
// it down through the stop channel.
func TestRunLifecycle(t *testing.T) {
	backends := startBackends(t, 2)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-ingest", "127.0.0.1:0",
			"-http", "127.0.0.1:0",
			"-backends", backendsFlag(backends),
			"-probe-interval", "100ms",
			"-log-format", "json",
		}, io.Discard, stop)
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not stop")
	}
}

package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/obs/obstest"
	"itscs/internal/pipeline"
	"itscs/internal/sim"
)

// TestMetricsConformance runs the shared content-negotiation contract
// against the router — the identical checker itscs-serve's suite runs, so
// the two daemons cannot drift apart on the /metrics surface.
func TestMetricsConformance(t *testing.T) {
	backends := startBackends(t, 2)
	r, _ := startRouter(t, backends, 200*time.Millisecond)
	if err := obstest.CheckMetricsConformance("http://" + r.httpBound.String()); err != nil {
		t.Fatal(err)
	}
}

// tracePayload mirrors the backends' /trace/{fleet} JSON shape for decoding
// the router's attributed scatter-gather answer.
type tracePayload struct {
	Fleet  string      `json:"fleet"`
	Traces []obs.Trace `json:"traces"`
}

// TestClusterTraceAndStatus is the freshness-plane acceptance E2E: a report
// ingested at the router is traceable by its trace ID through the forwarder
// stamp, the backend window close, and detection, all from the router's
// /trace endpoint; the router's /status shows sane freshness quantiles.
func TestClusterTraceAndStatus(t *testing.T) {
	backends := startBackends(t, 2)
	r, _ := startRouter(t, backends, 200*time.Millisecond)
	base := "http://" + r.httpBound.String()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	w, err := sim.BuildWorkload("tracey", testScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := mcs.SendReports(ctx, r.ingestAddr.String(), w.Reports); err != nil || acked != len(w.Reports) {
		t.Fatalf("streamed %d/%d, err %v", acked, len(w.Reports), err)
	}
	if err := r.fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// The bounded trace ring keeps the newest reports, which sit in the final
	// partial window — flush the owner so that window closes and its retained
	// traces acquire the full hop chain.
	owner, _ := r.fwd.Owner("tracey")
	for _, b := range backends {
		if b.Spec().Name == owner {
			if err := b.Engine().Flush("tracey"); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Poll the router's scatter-gather trace view until the owner has closed
	// and detected a window, then pick one fully-linked trace as the probe.
	var (
		exemplar obs.Trace
		holder   string
	)
	deadline := time.Now().Add(30 * time.Second)
	for exemplar.ID == "" {
		if time.Now().After(deadline) {
			t.Fatal("no backend ever reported a detected trace for the fleet")
		}
		var ct struct {
			Fleet    string `json:"fleet"`
			Backends []struct {
				Backend string          `json:"backend"`
				Err     string          `json:"err,omitempty"`
				Payload json.RawMessage `json:"payload,omitempty"`
			} `json:"backends"`
		}
		if status, err := getRouterJSON(base+"/trace/tracey", &ct); err != nil || status != http.StatusOK {
			t.Fatalf("/trace/tracey: status %d err %v", status, err)
		}
		if ct.Fleet != "tracey" {
			t.Fatalf("trace fan-out answered for fleet %q", ct.Fleet)
		}
		for _, b := range ct.Backends {
			if b.Err != "" {
				continue // non-owner backends 404, reported not fatal
			}
			var tp tracePayload
			if err := json.Unmarshal(b.Payload, &tp); err != nil {
				t.Fatalf("backend %s trace payload: %v", b.Backend, err)
			}
			for _, tr := range tp.Traces {
				if tr.WindowSeq >= 0 && hasStage(tr, "detect") {
					exemplar, holder = tr, b.Backend
					break
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The report entered through the router's door, so its trace records the
	// router stamp and the full hop chain.
	if exemplar.Origin != mcs.OriginRouter.String() {
		t.Errorf("trace origin = %q, want router", exemplar.Origin)
	}
	for _, stage := range []string{"ingest", "window_close", "detect"} {
		if !hasStage(exemplar, stage) {
			t.Errorf("trace %s missing stage %q: %+v", exemplar.ID, stage, exemplar.Stages)
		}
	}
	if holder != owner {
		t.Errorf("trace held by %s, ring owner is %s", holder, owner)
	}

	// Point lookup by ID through the router: exactly the holding backend
	// answers, with the same trace.
	var byID struct {
		Backends []struct {
			Backend string          `json:"backend"`
			Err     string          `json:"err,omitempty"`
			Payload json.RawMessage `json:"payload,omitempty"`
		} `json:"backends"`
	}
	if status, err := getRouterJSON(base+"/trace/tracey?id="+exemplar.ID, &byID); err != nil || status != http.StatusOK {
		t.Fatalf("/trace/tracey?id=: status %d err %v", status, err)
	}
	found := 0
	for _, b := range byID.Backends {
		if b.Err != "" {
			continue
		}
		var tp tracePayload
		if err := json.Unmarshal(b.Payload, &tp); err != nil {
			t.Fatal(err)
		}
		if len(tp.Traces) != 1 || tp.Traces[0].ID != exemplar.ID {
			t.Fatalf("backend %s answered id lookup with %+v", b.Backend, tp.Traces)
		}
		if b.Backend != holder {
			t.Errorf("id lookup answered by %s, trace lives on %s", b.Backend, holder)
		}
		found++
	}
	if found != 1 {
		t.Fatalf("id lookup found the trace on %d backends, want exactly 1", found)
	}

	// /status: one JSON overview with both backends admitted and freshness
	// quantiles that are populated and ordered.
	var st struct {
		Status        string `json:"status"`
		ReadyBackends int    `json:"ready_backends"`
		Engine        struct {
			Ingested       uint64 `json:"ingested"`
			ReportsStamped uint64 `json:"reports_stamped"`
		} `json:"engine"`
		Freshness struct {
			AgeAtClose pipeline.FreshnessSummary `json:"age_at_close"`
			ByFleet    map[string]struct {
				Owner      string                    `json:"owner"`
				AgeAtClose pipeline.FreshnessSummary `json:"age_at_close"`
			} `json:"by_fleet"`
		} `json:"freshness"`
	}
	if status, err := getRouterJSON(base+"/status", &st); err != nil || status != http.StatusOK {
		t.Fatalf("/status: status %d err %v", status, err)
	}
	if st.Status != "ok" || st.ReadyBackends != 2 {
		t.Fatalf("status = %q ready_backends = %d, want ok/2", st.Status, st.ReadyBackends)
	}
	if st.Engine.Ingested != uint64(len(w.Reports)) || st.Engine.ReportsStamped != uint64(len(w.Reports)) {
		t.Errorf("engine ingested %d stamped %d, want %d of each",
			st.Engine.Ingested, st.Engine.ReportsStamped, len(w.Reports))
	}
	agg := st.Freshness.AgeAtClose
	if agg.Count == 0 {
		t.Fatal("aggregate age_at_close quantiles empty after a closed window")
	}
	if agg.P50MS < 0 || agg.P50MS > agg.P90MS || agg.P90MS > agg.P99MS {
		t.Errorf("aggregate quantiles not sane: %+v", agg)
	}
	ff, ok := st.Freshness.ByFleet["tracey"]
	if !ok {
		t.Fatal("status by_fleet missing the streamed fleet")
	}
	if ff.Owner != owner {
		t.Errorf("status owner = %q, ring owner is %q", ff.Owner, owner)
	}
	if ff.AgeAtClose.Count == 0 {
		t.Error("fleet age_at_close quantiles empty after a closed window")
	}
}

func hasStage(tr obs.Trace, name string) bool {
	for _, s := range tr.Stages {
		if s.Name == name {
			return true
		}
	}
	return false
}

func getRouterJSON(url string, v any) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

package main

import (
	"runtime"
	rdebug "runtime/debug"
	"sort"
	"time"

	"itscs/internal/metrics"
	"itscs/internal/obs"
	"itscs/internal/reputation"
)

// renderProm flattens the daemon's whole metrics payload into Prometheus
// text exposition format 0.0.4. Every counter in pipeline.Stats, the WAL
// and checkpointer state, the recovery summary, the freshness histograms,
// the Go runtime self-metrics, and the per-phase latency histograms appear;
// maps are emitted in sorted key order so consecutive scrapes are
// byte-stable for identical state.
func renderProm(p metricsPayload, uptime time.Duration, rt *obs.Runtime) []byte {
	b := obs.NewProm()

	b.Gauge("itscs_build_info",
		"Build identity of the running binary; the value is always 1.",
		1, buildInfoLabels()...)
	b.Gauge("itscs_uptime_seconds", "Seconds since the daemon started.", uptime.Seconds())

	// Ingest counters.
	b.Counter("itscs_reports_ingested_total", "Reports accepted into the engine.", float64(p.Ingested))
	b.Counter("itscs_reports_replayed_total", "Accepted reports that arrived via WAL recovery, not the live transport.", float64(p.Replayed))
	b.Counter("itscs_reports_rejected_total", "Reports refused at ingest.", float64(p.Rejected))
	b.Counter("itscs_reports_late_total", "Rejected reports below their fleet's retention horizon.", float64(p.Late))
	b.Counter("itscs_reports_duplicate_total", "Rejected reports targeting an already-filled cell.", float64(p.Duplicates))
	b.Counter("itscs_reports_non_finite_total", "Rejected reports carrying NaN or infinite values.", float64(p.NonFinite))
	b.Counter("itscs_reports_invalid_identity_total", "Reports refused at the ingest door for an empty fleet or negative participant.", float64(p.InvalidIdentity))
	// Freshness partition: stamped + unstamped == ingested, always — replay
	// must never re-stamp, so the split survives crash/recovery intact.
	b.Counter("itscs_reports_stamped_total", "Ingested reports carrying an ingest freshness stamp.", float64(p.ReportsStamped))
	b.Counter("itscs_reports_unstamped_total", "Ingested reports without a freshness stamp (pre-upgrade frames, direct engine feeds).", float64(p.ReportsUnstamped))

	// Admission-gate counters. The gate tags, it never drops:
	// admitted_clean + tagged_quarantined + tagged_probation == ingested.
	b.Counter("itscs_reports_admitted_clean_total", "Ingested reports from participants in good standing.", float64(p.AdmittedClean))
	b.Counter("itscs_reports_tagged_quarantined_total", "Ingested reports tagged as coming from quarantined participants.", float64(p.TaggedQuarantined))
	b.Counter("itscs_reports_tagged_probation_total", "Ingested reports tagged as coming from probation participants.", float64(p.TaggedProbation))

	// Window lifecycle counters.
	b.Counter("itscs_windows_closed_total", "Windows cut from the streams.", float64(p.WindowsClosed))
	b.Counter("itscs_windows_empty_total", "Closed windows discarded for holding no observations.", float64(p.WindowsEmpty))
	b.Counter("itscs_windows_skipped_total", "Windows jumped over to catch up after a slot gap.", float64(p.WindowsSkipped))
	b.Counter("itscs_windows_dropped_total", "Windows evicted from the full dispatch queue (drop-oldest).", float64(p.WindowsDropped))
	b.Counter("itscs_windows_processed_total", "Windows that ran the detection loop to completion.", float64(p.WindowsProcessed))
	b.Counter("itscs_windows_failed_total", "Windows whose detection loop returned an error.", float64(p.WindowsFailed))
	for _, fleet := range sortedKeys(p.WindowsDroppedByFleet) {
		b.Counter("itscs_fleet_windows_dropped_total",
			"Windows dropped under backpressure, by fleet.",
			float64(p.WindowsDroppedByFleet[fleet]), obs.Label{Name: "fleet", Value: fleet})
	}
	b.Counter("itscs_warm_starts_total", "Processed windows that reused the previous window's factorization.", float64(p.WarmStarts))
	b.Counter("itscs_cold_starts_total", "Processed windows that started CORRECT from scratch.", float64(p.ColdStarts))
	b.Counter("itscs_subscriber_drops_total", "Results a slow subscriber failed to receive.", float64(p.SubscriberDrops))

	// Instantaneous engine state.
	b.Gauge("itscs_queue_depth", "Windows waiting in the dispatch queue right now.", float64(p.QueueDepth))
	b.Gauge("itscs_queue_capacity", "Dispatch queue capacity.", float64(p.QueueCapacity))
	b.Gauge("itscs_fleets", "Fleet shards currently materialized.", float64(p.Fleets))

	// Per-phase latency histograms share one metric name with a phase label.
	for _, phase := range sortedKeys(p.PhaseLatency) {
		b.Histogram("itscs_phase_latency_seconds",
			"Wall-clock latency by pipeline phase: detect, correct, check, run (whole loop), wait (queue residence).",
			p.PhaseLatency[phase], obs.Label{Name: "phase", Value: phase})
	}

	// End-to-end freshness histograms, engine-wide and by fleet. Both run on
	// the wide AgeBuckets scheme (50 ms – 4 h): report age legitimately spans
	// most of a window length, and recovery replay surfaces hours-old stamps.
	b.HistogramBounds("itscs_freshness_age_at_close_seconds",
		"Age of each stamped report when its window closed (window close time minus ingest stamp).",
		metrics.AgeBuckets, p.AgeAtClose)
	b.HistogramBounds("itscs_freshness_ingest_to_result_seconds",
		"Ingest-to-result latency of each stamped report (detection completion minus ingest stamp).",
		metrics.AgeBuckets, p.IngestToResult)
	for _, fleet := range sortedKeys(p.Freshness) {
		ff := p.Freshness[fleet]
		lbl := obs.Label{Name: "fleet", Value: fleet}
		b.HistogramBounds("itscs_fleet_freshness_age_at_close_seconds",
			"Report age at window close, by fleet.", metrics.AgeBuckets, ff.AgeAtClose, lbl)
		b.HistogramBounds("itscs_fleet_freshness_ingest_to_result_seconds",
			"Ingest-to-result latency, by fleet.", metrics.AgeBuckets, ff.IngestToResult, lbl)
		b.Gauge("itscs_fleet_watermark_slot",
			"Highest slot the fleet's stream has reached.", float64(ff.WatermarkSlot), lbl)
		b.Gauge("itscs_fleet_window_lag",
			"Windows closed but not yet completed for the fleet.",
			float64(ff.NextSeq-1-ff.LatestSeq), lbl)
	}

	if p.WAL != nil {
		w := p.WAL
		b.Counter("itscs_wal_records_total", "Records appended to the write-ahead log.", float64(w.Records))
		b.Counter("itscs_wal_bytes_appended_total", "Frame bytes appended to the write-ahead log.", float64(w.Bytes))
		b.Counter("itscs_wal_batches_total", "Group commits to the write-ahead log.", float64(w.Batches))
		b.Counter("itscs_wal_fsyncs_total", "File syncs issued by the write-ahead log.", float64(w.Fsyncs))
		b.Histogram("itscs_wal_fsync_latency_seconds", "Write-ahead log fsync latency.", w.FsyncLatency)
		b.Gauge("itscs_wal_segments", "Live write-ahead log segments.", float64(w.Segments))
		b.Counter("itscs_wal_rotations_total", "Log segments opened after the first.", float64(w.Rotations))
		b.Counter("itscs_wal_compacted_segments_total", "Log segments removed by compaction.", float64(w.Compacted))
		b.Counter("itscs_wal_corrupt_segments_total", "Segments whose damaged remainder recovery or replay skipped.", float64(w.CorruptSegments))
		b.Counter("itscs_wal_truncated_bytes_total", "Torn-tail bytes cut off the final segment at open.", float64(w.TruncatedBytes))
		b.Counter("itscs_wal_replayed_records_total", "Records replayed from the log at startup.", float64(w.Replayed))
		b.Counter("itscs_wal_replay_skipped_records_total", "Records lost inside damaged regions during replay.", float64(w.ReplaySkipped))
		// Recency pair: how stale the durable tail could be. 0 until the
		// first append (or fsync) after start.
		b.Gauge("itscs_wal_last_append_timestamp_seconds",
			"Unix time of the newest record appended to the write-ahead log.",
			float64(w.LastAppendUnixMicro)/1e6)
		b.Gauge("itscs_wal_last_fsync_timestamp_seconds",
			"Unix time of the write-ahead log's newest completed fsync.",
			float64(w.LastFsyncUnixMicro)/1e6)
	}
	if p.Checkpoints != nil {
		b.Counter("itscs_checkpoints_written_total", "Shard checkpoints persisted.", float64(p.Checkpoints.Written))
		b.Counter("itscs_checkpoint_errors_total", "Checkpoint attempts that failed.", float64(p.Checkpoints.Errors))
		b.Gauge("itscs_checkpoint_last_timestamp_seconds",
			"Unix time the newest checkpoint finished (0 before the first).",
			float64(p.Checkpoints.LastUnixMicro)/1e6)
	}
	if p.Reputation != nil {
		rep := p.Reputation
		b.Gauge("itscs_reputation_fleets", "Fleets with at least one trust row.", float64(rep.Fleets))
		// Every state appears even at zero, so a scrape always sees the full
		// census and rate() never starts from a missing series.
		for _, state := range reputation.StateNames() {
			b.Gauge("itscs_reputation_participants",
				"Participants with folded evidence, by quarantine state.",
				float64(rep.States[state]), obs.Label{Name: "state", Value: state})
		}
		b.Counter("itscs_reputation_windows_folded_total", "Completed windows folded into the trust ledger.", float64(rep.Folded))
		b.Counter("itscs_reputation_folds_skipped_total", "Window folds skipped as duplicates behind a fleet's sequence frontier.", float64(rep.Skipped))
		for _, tr := range rep.Transitions {
			b.Counter("itscs_reputation_transitions_total",
				"Quarantine state-machine transitions, by edge.",
				float64(tr.Count),
				obs.Label{Name: "from", Value: tr.From}, obs.Label{Name: "to", Value: tr.To})
		}
	}
	if p.Recovery != nil {
		r := p.Recovery
		b.Gauge("itscs_recovery_checkpoint_index", "Log index of the checkpoint restored at startup.", float64(r.CheckpointIndex))
		b.Gauge("itscs_recovery_checkpoints_skipped", "Corrupt checkpoints skipped while picking one to restore.", float64(r.CheckpointsSkipped))
		b.Gauge("itscs_recovery_fleets", "Fleet shards restored from the checkpoint.", float64(r.Fleets))
		b.Gauge("itscs_recovery_log_records", "Records the log held when recovery began.", float64(r.LogRecords))
		b.Gauge("itscs_recovery_replayed_records", "Records replayed through the engine at startup.", float64(r.ReplayedRecords))
		b.Gauge("itscs_recovery_replay_rejected", "Replayed records the engine refused.", float64(r.ReplayRejected))
		b.Gauge("itscs_recovery_duration_seconds", "Wall-clock time recovery took.", r.DurationS)
	}
	rt.Emit(b, "itscs_")
	return b.Bytes()
}

// buildInfoLabels extracts the identity labels for itscs_build_info.
func buildInfoLabels() []obs.Label {
	labels := []obs.Label{{Name: "go_version", Value: runtime.Version()}}
	if bi, ok := rdebug.ReadBuildInfo(); ok {
		labels = append(labels, obs.Label{Name: "module", Value: bi.Main.Path})
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				labels = append(labels, obs.Label{Name: "revision", Value: s.Value})
			}
		}
	}
	return labels
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
	"itscs/internal/trace"
	"itscs/internal/wal"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-window", "0"},
		{"-hop", "300"}, // exceeds default window
		{"-tau", "0s"},
		{"-participants", "-3"},
		{"-not-a-flag"},
	} {
		if err := run(args, io.Discard, make(chan struct{})); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestDaemonEndToEnd boots the daemon on ephemeral ports, streams a small
// corrupted fleet through the TCP ingest, and reads the detection result
// back over HTTP.
func TestDaemonEndToEnd(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	cfg := pipeline.DefaultConfig()
	cfg.Participants = n
	cfg.WindowSlots = w
	cfg.HopSlots = h
	cfg.Workers = 1
	d, err := newDaemon(cfg, daemonOptions{ingestAddr: "127.0.0.1:0", httpAddr: "127.0.0.1:0", idle: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	d.serve()
	waitReady(t, d)
	defer func() {
		if err := d.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	tcfg := trace.DefaultConfig()
	tcfg.Participants = n
	tcfg.Slots = w + 2*h + 1
	fleet, err := trace.Generate(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = 0.1
	plan.FaultyRatio = 0.1
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		t.Fatal(err)
	}
	var reports []mcs.Report
	for s := 0; s < tcfg.Slots; s++ {
		for i := 0; i < n; i++ {
			if res.Existence.At(i, s) == 0 {
				continue
			}
			reports = append(reports, mcs.Report{
				Fleet: "cab", Participant: i, Slot: s,
				X: res.SX.At(i, s), Y: res.SY.At(i, s),
				VX: fleet.VX.At(i, s), VY: fleet.VY.At(i, s),
			})
		}
	}
	// Subscribe before streaming: the first published window is then an
	// event to wait on, not a condition to poll for. The engine stores the
	// latest result before publishing, so once the subscription fires the
	// HTTP endpoint is guaranteed to serve it.
	results, cancel := d.engine.Subscribe(16)
	defer cancel()

	acked, err := mcs.SendReports(context.Background(), d.ingestAddr.String(), reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked != len(reports) {
		t.Fatalf("acked %d of %d reports", acked, len(reports))
	}

	base := "http://" + d.httpBound.String()

	select {
	case <-results:
	case <-time.After(2 * time.Minute):
		t.Fatal("no window result published")
	}
	var wr pipeline.WindowResult
	if status, err := getJSON(base+"/results/cab", &wr); err != nil || status != http.StatusOK {
		t.Fatalf("results after publish: status %d err %v", status, err)
	}
	if wr.Fleet != "cab" || wr.EndSlot-wr.StartSlot != w || wr.Observed == 0 {
		t.Errorf("window result = %+v", wr)
	}
	if wr.Flagged != len(wr.Flags) {
		t.Errorf("flagged %d != len(flags) %d", wr.Flagged, len(wr.Flags))
	}

	var health struct {
		Status string `json:"status"`
	}
	if status, err := getJSON(base+"/healthz", &health); err != nil || status != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: status %d err %v body %+v", status, err, health)
	}

	var stats pipeline.Stats
	if status, err := getJSON(base+"/metrics?format=json", &stats); err != nil || status != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", status, err)
	}
	if stats.Ingested != uint64(len(reports)) {
		t.Errorf("metrics ingested = %d, want %d", stats.Ingested, len(reports))
	}
	if stats.WindowsProcessed < 1 {
		t.Errorf("metrics windows_processed = %d, want >= 1", stats.WindowsProcessed)
	}

	var fleets struct {
		Fleets []string `json:"fleets"`
	}
	if status, err := getJSON(base+"/results", &fleets); err != nil || status != http.StatusOK {
		t.Fatalf("results index: status %d err %v", status, err)
	}
	if len(fleets.Fleets) != 1 || fleets.Fleets[0] != "cab" {
		t.Errorf("fleets = %v, want [cab]", fleets.Fleets)
	}

	var errBody struct {
		Error string `json:"error"`
	}
	if status, err := getJSON(base+"/results/none", &errBody); err != nil || status != http.StatusNotFound {
		t.Errorf("unknown fleet: status %d err %v", status, err)
	}

	// The processed windows must have left trace spans with real timings.
	var tr struct {
		Spans []obs.Span `json:"spans"`
	}
	if status, err := getJSON(base+"/trace/cab", &tr); err != nil || status != http.StatusOK {
		t.Fatalf("trace: status %d err %v", status, err)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("no trace spans after a processed window")
	}
	sp := tr.Spans[0]
	if sp.Fleet != "cab" || sp.RunMS <= 0 || sp.DetectMS <= 0 || sp.CorrectMS <= 0 || sp.QueueWaitMS < 0 {
		t.Errorf("span = %+v", sp)
	}
	if sp.Sweeps <= 0 || sp.Observed == 0 {
		t.Errorf("span missing sweep/observation counts: %+v", sp)
	}

	// The default /metrics form is Prometheus text and must lint.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
		t.Errorf("prom content type = %q", got)
	}
	if err := obs.LintExposition(prom); err != nil {
		t.Errorf("exposition failed lint: %v", err)
	}
}

// TestDaemonDurableRestart boots a durable daemon, streams half a fleet,
// shuts it down gracefully, and restarts on the same directory: the final
// checkpoint must make the restart replay nothing, and the restored stream
// state must merge with the second half into a full window result.
func TestDaemonDurableRestart(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	dir := t.TempDir()
	newDur := func() *durability {
		opt := wal.DefaultOptions()
		opt.Sync = wal.SyncInterval
		return &durability{dir: dir, opt: opt, every: 2}
	}
	cfg := pipeline.DefaultConfig()
	cfg.Participants = n
	cfg.WindowSlots = w
	cfg.HopSlots = h
	cfg.Workers = 1

	tcfg := trace.DefaultConfig()
	tcfg.Participants = n
	tcfg.Slots = w + 2*h + 1
	fleet, err := trace.Generate(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = 0.1
	plan.FaultyRatio = 0.1
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		t.Fatal(err)
	}
	reports := func(from, to int) []mcs.Report {
		var out []mcs.Report
		for s := from; s < to; s++ {
			for i := 0; i < n; i++ {
				if res.Existence.At(i, s) == 0 {
					continue
				}
				out = append(out, mcs.Report{
					Fleet: "cab", Participant: i, Slot: s,
					X: res.SX.At(i, s), Y: res.SY.At(i, s),
					VX: fleet.VX.At(i, s), VY: fleet.VY.At(i, s),
				})
			}
		}
		return out
	}

	// First life: stream the first 50 slots, then shut down gracefully.
	d1, err := newDaemon(cfg, daemonOptions{ingestAddr: "127.0.0.1:0", httpAddr: "127.0.0.1:0", idle: time.Minute, dur: newDur()})
	if err != nil {
		t.Fatal(err)
	}
	d1.serve()
	waitReady(t, d1)
	first := reports(0, 50)
	if acked, err := mcs.SendReports(context.Background(), d1.ingestAddr.String(), first); err != nil || acked != len(first) {
		t.Fatalf("first life acked %d of %d, err %v", acked, len(first), err)
	}
	if err := d1.close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the shutdown checkpoint covers every logged record, so a
	// clean restart restores the fleet and replays nothing.
	d2, err := newDaemon(cfg, daemonOptions{ingestAddr: "127.0.0.1:0", httpAddr: "127.0.0.1:0", idle: time.Minute, dur: newDur()})
	if err != nil {
		t.Fatal(err)
	}
	d2.serve()
	waitReady(t, d2)
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	rec := d2.recoveryState()
	if rec == nil {
		t.Fatal("restart reported no recovery")
	}
	if rec.Fleets != 1 || rec.ReplayedRecords != 0 || rec.ReplayRejected != 0 {
		t.Fatalf("recovery = %+v, want 1 fleet and no replay after clean shutdown", rec)
	}

	// Subscribe before streaming the second life so the window that spans
	// the restart — ring state from the checkpoint plus fresh slots — is an
	// event, not a polling target.
	results, cancel := d2.engine.Subscribe(16)
	defer cancel()

	rest := reports(50, tcfg.Slots)
	if acked, err := mcs.SendReports(context.Background(), d2.ingestAddr.String(), rest); err != nil || acked != len(rest) {
		t.Fatalf("second life acked %d of %d, err %v", acked, len(rest), err)
	}

	base := "http://" + d2.httpBound.String()
	select {
	case <-results:
	case <-time.After(2 * time.Minute):
		t.Fatal("no window result published after restart")
	}
	var wr pipeline.WindowResult
	if status, err := getJSON(base+"/results/cab", &wr); err != nil || status != http.StatusOK {
		t.Fatalf("results after restart: status %d err %v", status, err)
	}
	if wr.EndSlot-wr.StartSlot != w || wr.Observed == 0 {
		t.Errorf("post-restart window = %+v", wr)
	}

	var m struct {
		pipeline.Stats
		WAL      *wal.Stats    `json:"wal"`
		Recovery *recoveryInfo `json:"recovery"`
	}
	if status, err := getJSON(base+"/metrics?format=json", &m); err != nil || status != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", status, err)
	}
	if m.WAL == nil || m.WAL.Records != uint64(len(rest)) {
		t.Errorf("wal metrics = %+v, want %d records this life", m.WAL, len(rest))
	}
	if m.Recovery == nil || m.Recovery.Fleets != 1 {
		t.Errorf("recovery metrics = %+v", m.Recovery)
	}
}

// waitReady blocks until the daemon's startup phase (recovery included)
// has completed and ingest is accepting.
func waitReady(t *testing.T, d *daemon) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for !d.ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadyzGatesOnRecovery pins the liveness/readiness split: while
// startup recovery runs, /healthz answers 200 but /readyz answers 503;
// once recovery completes, /readyz flips to 200 and ingest accepts.
func TestReadyzGatesOnRecovery(t *testing.T) {
	opt := wal.DefaultOptions()
	opt.Sync = wal.SyncInterval
	gate := make(chan struct{})
	cfg := pipeline.DefaultConfig()
	cfg.Participants = 8
	cfg.WindowSlots = 16
	cfg.HopSlots = 8
	cfg.Workers = 1
	d, err := newDaemon(cfg, daemonOptions{
		ingestAddr:  "127.0.0.1:0",
		httpAddr:    "127.0.0.1:0",
		idle:        time.Minute,
		dur:         &durability{dir: t.TempDir(), opt: opt, every: 2},
		startupGate: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.serve()
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer func() {
		release()
		if err := d.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	base := "http://" + d.httpBound.String()
	var health struct {
		Status string `json:"status"`
	}
	if status, err := getJSON(base+"/healthz", &health); err != nil || status != http.StatusOK {
		t.Fatalf("healthz during recovery: status %d err %v", status, err)
	}
	var readiness struct {
		Status string `json:"status"`
	}
	status, err := getJSON(base+"/readyz", &readiness)
	if err != nil || status != http.StatusServiceUnavailable || readiness.Status != "recovering" {
		t.Fatalf("readyz during recovery: status %d body %+v err %v", status, readiness, err)
	}

	release()
	waitReady(t, d)
	if status, err := getJSON(base+"/readyz", &readiness); err != nil || status != http.StatusOK || readiness.Status != "ready" {
		t.Fatalf("readyz after recovery: status %d body %+v err %v", status, readiness, err)
	}
	acked, err := mcs.SendReports(context.Background(), d.ingestAddr.String(),
		[]mcs.Report{{Fleet: "cab", Participant: 0, Slot: 0, X: 1, Y: 2}})
	if err != nil || acked != 1 {
		t.Fatalf("post-ready ingest: acked %d err %v", acked, err)
	}
}

func getJSON(url string, v any) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

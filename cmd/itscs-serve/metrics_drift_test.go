package main

import (
	"flag"
	"testing"
	"time"

	"itscs/internal/metrics"
	"itscs/internal/obs"
	"itscs/internal/obs/obstest"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metric-name list")

// TestMetricsDrift is the CI gate against silent metric renames and drops:
// it renders the exposition from a payload with every optional block and
// map populated — so every series the binary can export appears — and
// compares the sorted series fingerprint against testdata/metric_names.txt.
// An intentional metrics change updates the golden with
//
//	go test ./cmd/itscs-serve/ -run TestMetricsDrift -update
//
// and the golden diff is reviewed like any other contract change.
func TestMetricsDrift(t *testing.T) {
	hist := pipeline.HistogramSnapshot{Count: 1, SumMS: 5, Buckets: map[int64]uint64{-1: 1}}
	payload := metricsPayload{
		Stats: pipeline.Stats{
			WindowsDroppedByFleet: map[string]uint64{"cab": 1},
			PhaseLatency:          map[string]pipeline.HistogramSnapshot{"run": hist},
			AgeAtClose:            hist,
			IngestToResult:        hist,
			Freshness: map[string]pipeline.FleetFreshness{
				"cab": {AgeAtClose: hist, IngestToResult: hist},
			},
		},
		WAL:         &wal.Stats{FsyncLatency: metrics.HistogramSnapshot{Count: 1, SumMS: 1, Buckets: map[int64]uint64{-1: 1}}},
		Checkpoints: &checkpointStats{Written: 1},
		Recovery:    &recoveryInfo{},
		Reputation: &reputation.LedgerStats{
			States:      map[string]int{},
			Transitions: []reputation.TransitionCount{{From: "clean", To: "probation", Count: 1}},
		},
	}
	body := renderProm(payload, time.Second, obs.NewRuntime())
	if err := obs.LintExposition(body); err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	if err := obstest.CheckGoldenSeries("testdata/metric_names.txt", body, *updateGolden); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/obs/obstest"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/wal"
)

// bootDaemon starts a small daemon and registers its shutdown.
func bootDaemon(t *testing.T, opt daemonOptions) *daemon {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Participants = 8
	cfg.WindowSlots = 16
	cfg.HopSlots = 8
	cfg.Workers = 1
	if opt.ingestAddr == "" {
		opt.ingestAddr = "127.0.0.1:0"
	}
	if opt.httpAddr == "" {
		opt.httpAddr = "127.0.0.1:0"
	}
	if opt.idle == 0 {
		opt.idle = time.Minute
	}
	d, err := newDaemon(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	d.serve()
	waitReady(t, d)
	t.Cleanup(func() {
		if err := d.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return d
}

// TestMetricsExposition is the scrape-and-lint gate CI runs by name: it
// boots a durable daemon, scrapes /metrics in its default Prometheus text
// form, and validates the exposition with the format linter. A regression
// in metric naming, TYPE ordering, histogram bucket math, or label
// escaping fails here before any scraper sees it.
func TestMetricsExposition(t *testing.T) {
	opt := wal.DefaultOptions()
	opt.Sync = wal.SyncInterval
	rep := reputation.DefaultConfig()
	d := bootDaemon(t, daemonOptions{
		dur: &durability{dir: t.TempDir(), opt: opt, every: 2},
		rep: &rep,
	})
	if err := d.engine.Ingest(mcs.Report{Fleet: "cab", Participant: 0, Slot: 0, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + d.httpBound.String()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.LintExposition(body); err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"itscs_reports_ingested_total 1",
		"itscs_reports_invalid_identity_total",
		"itscs_reports_admitted_clean_total 1",
		"itscs_queue_capacity",
		"itscs_phase_latency_seconds_bucket",
		"itscs_wal_records_total",
		"itscs_checkpoints_written_total",
		"itscs_reputation_fleets",
		`itscs_reputation_participants{state="quarantined"}`,
		"itscs_reputation_windows_folded_total",
		"itscs_reputation_folds_skipped_total",
		"itscs_build_info",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The JSON form stays reachable for humans and the existing tests.
	for _, hdr := range []bool{false, true} {
		req, _ := http.NewRequest(http.MethodGet, base+"/metrics?format=json", nil)
		if hdr {
			req, _ = http.NewRequest(http.MethodGet, base+"/metrics", nil)
			req.Header.Set("Accept", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if ct != "application/json" {
			t.Errorf("JSON negotiation (header=%v): content type = %q", hdr, ct)
		}
	}
}

// TestMetricsConformance runs the shared negotiation contract against the
// daemon — the same checker the router's suite runs, so the two /metrics
// endpoints cannot drift apart on Content-Type handling.
func TestMetricsConformance(t *testing.T) {
	d := bootDaemon(t, daemonOptions{})
	if err := obstest.CheckMetricsConformance("http://" + d.httpBound.String()); err != nil {
		t.Fatal(err)
	}
}

// TestStatusEndpoint checks the one-call health overview: always JSON,
// always 200 while serving, engine counters and the freshness block present
// and coherent with what was ingested.
func TestStatusEndpoint(t *testing.T) {
	opt := wal.DefaultOptions()
	opt.Sync = wal.SyncInterval
	d := bootDaemon(t, daemonOptions{
		dur: &durability{dir: t.TempDir(), opt: opt, every: 2},
	})
	base := "http://" + d.httpBound.String()
	if err := d.engine.Ingest(mcs.Report{Fleet: "cab", Participant: 0, Slot: 0, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}

	var st struct {
		Status  string  `json:"status"`
		Ready   bool    `json:"ready"`
		UptimeS float64 `json:"uptime_s"`
		Build   struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Engine struct {
			Ingested         uint64 `json:"ingested"`
			ReportsStamped   uint64 `json:"reports_stamped"`
			ReportsUnstamped uint64 `json:"reports_unstamped"`
		} `json:"engine"`
		Freshness struct {
			AgeAtClose pipeline.FreshnessSummary `json:"age_at_close"`
			ByFleet    map[string]any            `json:"by_fleet"`
		} `json:"freshness"`
		Durability struct {
			DataDir     string `json:"data_dir"`
			FsyncPolicy string `json:"fsync_policy"`
		} `json:"durability"`
	}
	if status, err := getJSON(base+"/status", &st); err != nil || status != http.StatusOK {
		t.Fatalf("/status: status %d err %v", status, err)
	}
	if st.Status != "ok" || !st.Ready || st.UptimeS < 0 {
		t.Errorf("status header block = %+v", st)
	}
	if st.Build.GoVersion == "" {
		t.Error("status missing build info")
	}
	if st.Engine.Ingested != 1 {
		t.Errorf("engine.ingested = %d, want 1", st.Engine.Ingested)
	}
	// The direct engine feed bypasses every stamping door, so the report
	// counts as unstamped — the partition must still hold.
	if st.Engine.ReportsStamped+st.Engine.ReportsUnstamped != st.Engine.Ingested {
		t.Errorf("stamped %d + unstamped %d != ingested %d",
			st.Engine.ReportsStamped, st.Engine.ReportsUnstamped, st.Engine.Ingested)
	}
	if st.Freshness.ByFleet == nil {
		t.Error("status missing freshness.by_fleet")
	}
	if st.Durability.DataDir == "" || st.Durability.FsyncPolicy == "" {
		t.Errorf("durability block = %+v", st.Durability)
	}
}

// TestResultsNoContentBeforeFirstWindow pins the fix for the silent
// (nil, nil) path: a fleet the engine knows about but has not finished a
// window for answers 204, clearly distinct from both a result (200) and
// an unknown fleet (404).
func TestResultsNoContentBeforeFirstWindow(t *testing.T) {
	d := bootDaemon(t, daemonOptions{})
	if err := d.engine.Ingest(mcs.Report{Fleet: "cab", Participant: 0, Slot: 0, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + d.httpBound.String()
	resp, err := http.Get(base + "/results/cab")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("known fleet, no window: status = %d, want 204", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("204 carried a body: %q", body)
	}

	if resp, err = http.Get(base + "/results/none"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fleet: status = %d, want 404", resp.StatusCode)
	}

	// Trace mirrors the split: known fleet yields an empty span list,
	// unknown fleet 404s.
	var tr struct {
		Fleet string     `json:"fleet"`
		Spans []obs.Span `json:"spans"`
	}
	if status, err := getJSON(base+"/trace/cab", &tr); err != nil || status != http.StatusOK {
		t.Fatalf("trace known fleet: status %d err %v", status, err)
	}
	if len(tr.Spans) != 0 {
		t.Errorf("spans before any window = %d, want 0", len(tr.Spans))
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if status, err := getJSON(base+"/trace/none", &errBody); err != nil || status != http.StatusNotFound {
		t.Errorf("trace unknown fleet: status %d err %v", status, err)
	}
}

// TestDebugListener checks that -debug-addr exposes pprof and build info
// on its own listener and that the public sidecar does not serve them.
func TestDebugListener(t *testing.T) {
	d := bootDaemon(t, daemonOptions{debugAddr: "127.0.0.1:0"})
	if d.debugBound == nil {
		t.Fatal("debug listener not bound")
	}
	debug := "http://" + d.debugBound.String()

	var bi map[string]any
	if status, err := getJSON(debug+"/debug/buildinfo", &bi); err != nil || status != http.StatusOK {
		t.Fatalf("buildinfo: status %d err %v", status, err)
	}
	if bi["go_version"] == "" || bi["uptime_s"] == nil {
		t.Errorf("buildinfo = %v", bi)
	}

	resp, err := http.Get(debug + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof goroutine: status %d body %.80q", resp.StatusCode, body)
	}

	// The public sidecar must not leak the profiler.
	resp, err = http.Get("http://" + d.httpBound.String() + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof on public mux: status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPServerTimeouts pins the slowloris defenses. The daemon's
// public server must carry both timeouts, and a server built with short
// values must actually disconnect a client that stalls mid-header and an
// idle keep-alive connection.
func TestHTTPServerTimeouts(t *testing.T) {
	d := bootDaemon(t, daemonOptions{})
	if d.http.ReadHeaderTimeout != defaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", d.http.ReadHeaderTimeout, defaultReadHeaderTimeout)
	}
	if d.http.IdleTimeout != defaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", d.http.IdleTimeout, defaultIdleTimeout)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), 150*time.Millisecond, 150*time.Millisecond)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	// Slowloris: open a connection, send half a request line, stall. The
	// server must hang up instead of waiting forever.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: stall")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("stalled-header connection still open after ReadHeaderTimeout")
	}

	// Idle keep-alive: complete one request, then go quiet. The server
	// must close the connection once IdleTimeout elapses.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("GET / HTTP/1.1\r\nHost: idle\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(buf); err != nil {
		t.Fatalf("first response never arrived: %v", err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(buf); err == nil {
		t.Error("idle keep-alive connection still open after IdleTimeout")
	}
}

package main

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/trace"
	"itscs/internal/wal"
)

// faultyFleetReports generates a realistic fleet trace and concentrates
// kilometers-scale faults in the tail participants (rows faultyFrom and
// up, 80 % of their cells) — the per-device fault model the reputation
// ledger is built to catch.
func faultyFleetReports(t *testing.T, fleet string, n, slots, faultyFrom int) []mcs.Report {
	t.Helper()
	tcfg := trace.DefaultConfig()
	tcfg.Participants = n
	tcfg.Slots = slots
	gen, err := trace.Generate(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := corrupt.DefaultParticipantPlan()
	plan.Rates = map[int]float64{}
	for i := faultyFrom; i < n; i++ {
		plan.Rates[i] = 0.8
	}
	res, err := corrupt.ApplyParticipants(plan, gen.X, gen.Y)
	if err != nil {
		t.Fatal(err)
	}
	var out []mcs.Report
	for s := 0; s < slots; s++ {
		for i := 0; i < n; i++ {
			if res.Existence.At(i, s) == 0 {
				continue
			}
			out = append(out, mcs.Report{
				Fleet: fleet, Participant: i, Slot: s,
				X: res.SX.At(i, s), Y: res.SY.At(i, s),
				VX: gen.VX.At(i, s), VY: gen.VY.At(i, s),
			})
		}
	}
	return out
}

// repDaemonConfig returns a small pipeline config shared by the tests here.
func repDaemonConfig(n, w, h int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Participants = n
	cfg.WindowSlots = w
	cfg.HopSlots = h
	cfg.Workers = 1
	return cfg
}

// waitWindows blocks until the engine has processed at least want windows.
func waitWindows(t *testing.T, e *pipeline.Engine, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for e.Stats().WindowsProcessed < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d windows processed", e.Stats().WindowsProcessed, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReputationEndpointsE2E streams a fleet with persistently faulty
// participants through the TCP door and reads the trust ledger back over
// every /reputation route.
func TestReputationEndpointsE2E(t *testing.T) {
	const (
		n, w, h    = 24, 60, 20
		slots      = 60 + 20*8
		faultyFrom = 22
	)
	rep := reputation.DefaultConfig()
	d2, err := newDaemon(repDaemonConfig(n, w, h), daemonOptions{
		ingestAddr: "127.0.0.1:0", httpAddr: "127.0.0.1:0", idle: time.Minute, rep: &rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2.serve()
	waitReady(t, d2)
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	reports := faultyFleetReports(t, "cab", n, slots, faultyFrom)
	acked, err := mcs.SendReports(context.Background(), d2.ingestAddr.String(), reports)
	if err != nil || acked != len(reports) {
		t.Fatalf("acked %d of %d, err %v", acked, len(reports), err)
	}
	waitWindows(t, d2.engine, uint64((slots-w)/h))

	base := "http://" + d2.httpBound.String()
	var snap reputation.Snapshot
	if status, err := getJSON(base+"/reputation", &snap); err != nil || status != http.StatusOK {
		t.Fatalf("/reputation: status %d err %v", status, err)
	}
	if len(snap.Fleets) != 1 || snap.Fleets[0].Fleet != "cab" {
		t.Fatalf("snapshot fleets = %+v", snap.Fleets)
	}
	if snap.Stats.Folded == 0 {
		t.Fatal("no windows folded into the ledger")
	}

	var fs reputation.FleetSnapshot
	if status, err := getJSON(base+"/reputation/cab", &fs); err != nil || status != http.StatusOK {
		t.Fatalf("/reputation/cab: status %d err %v", status, err)
	}
	if len(fs.Participants) != n {
		t.Fatalf("fleet snapshot has %d participants, want %d", len(fs.Participants), n)
	}
	// The consequential split: injected-faulty rows end quarantined, and no
	// clean row is ever quarantined (suspect is an advisory state a clean
	// row may brush against while evidence mass is still small).
	for _, ps := range fs.Participants {
		if ps.Participant >= faultyFrom {
			if ps.State != "quarantined" {
				t.Errorf("faulty participant %d not quarantined: %s (score %.3f lower %.3f)",
					ps.Participant, ps.State, ps.Score, ps.LowerBound)
			}
		} else if ps.State == "quarantined" || ps.State == "probation" {
			t.Errorf("clean participant %d reached %s (score %.3f)",
				ps.Participant, ps.State, ps.Score)
		}
	}

	var ps reputation.ParticipantSnapshot
	if status, err := getJSON(base+"/reputation/cab/23", &ps); err != nil || status != http.StatusOK {
		t.Fatalf("/reputation/cab/23: status %d err %v", status, err)
	}
	if ps.Participant != 23 || ps.Windows == 0 {
		t.Fatalf("participant snapshot = %+v", ps)
	}

	// Error shapes: unknown fleet, unknown participant, malformed id.
	var errBody struct {
		Error string `json:"error"`
	}
	if status, _ := getJSON(base+"/reputation/none", &errBody); status != http.StatusNotFound {
		t.Errorf("unknown fleet: status %d", status)
	}
	if status, _ := getJSON(base+"/reputation/cab/99", &errBody); status != http.StatusNotFound {
		t.Errorf("unknown participant: status %d", status)
	}
	if status, _ := getJSON(base+"/reputation/cab/xyz", &errBody); status != http.StatusBadRequest {
		t.Errorf("malformed participant id: status %d", status)
	}

	// The gate conservation law holds on the live counters.
	st := d2.engine.Stats()
	if st.AdmittedClean+st.TaggedQuarantined+st.TaggedProbation != st.Ingested {
		t.Errorf("gate counters do not conserve: clean %d + quarantined %d + probation %d != ingested %d",
			st.AdmittedClean, st.TaggedQuarantined, st.TaggedProbation, st.Ingested)
	}
	// With faulty rows quarantined mid-stream, some reports must have been
	// tagged rather than dropped.
	if st.TaggedQuarantined == 0 {
		t.Error("no report was ever tagged quarantined despite quarantined participants")
	}
}

// TestReputationDisabled pins the -reputation=false shape: every
// /reputation route 404s with an explanatory error.
func TestReputationDisabled(t *testing.T) {
	d := bootDaemon(t, daemonOptions{})
	base := "http://" + d.httpBound.String()
	var errBody struct {
		Error string `json:"error"`
	}
	for _, path := range []string{"/reputation", "/reputation/cab", "/reputation/cab/0"} {
		if status, err := getJSON(base+path, &errBody); err != nil || status != http.StatusNotFound {
			t.Errorf("%s with ledger disabled: status %d err %v", path, status, err)
		}
		if errBody.Error == "" {
			t.Errorf("%s 404 carried no error message", path)
		}
	}
}

// TestInvalidIdentityRefusedAtDoor sends reports without a routable
// identity through the TCP transport: they are nacked, counted, and never
// reach the engine.
func TestInvalidIdentityRefusedAtDoor(t *testing.T) {
	d := bootDaemon(t, daemonOptions{})
	good := mcs.Report{Fleet: "cab", Participant: 0, Slot: 0, X: 1, Y: 2}
	bad := []mcs.Report{
		{Fleet: "", Participant: 0, Slot: 1, X: 1, Y: 2},
		{Fleet: "cab", Participant: -1, Slot: 2, X: 1, Y: 2},
	}
	acked, err := mcs.SendReports(context.Background(), d.ingestAddr.String(),
		append([]mcs.Report{good}, bad...))
	if err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acked %d, want only the valid report", acked)
	}
	if got := d.invalidIdentity.Load(); got != uint64(len(bad)) {
		t.Fatalf("invalid_identity = %d, want %d", got, len(bad))
	}
	if st := d.engine.Stats(); st.Ingested != 1 {
		t.Fatalf("engine ingested %d, want 1 — an invalid identity leaked through", st.Ingested)
	}

	// The refusal surfaces in both metrics forms.
	var m struct {
		InvalidIdentity uint64 `json:"reports_invalid_identity"`
	}
	base := "http://" + d.httpBound.String()
	if status, err := getJSON(base+"/metrics?format=json", &m); err != nil || status != http.StatusOK {
		t.Fatalf("metrics: status %d err %v", status, err)
	}
	if m.InvalidIdentity != uint64(len(bad)) {
		t.Errorf("json metrics invalid_identity = %d, want %d", m.InvalidIdentity, len(bad))
	}
}

// TestDaemonRestartPreservesLedger shuts a durable reputation-enabled
// daemon down cleanly and restarts it on the same directory: the restored
// ledger must be bit-identical to the one the first life carried.
func TestDaemonRestartPreservesLedger(t *testing.T) {
	const (
		n, w, h    = 12, 24, 8
		slots      = 24 + 8*6
		faultyFrom = 10
	)
	dir := t.TempDir()
	newOpts := func() daemonOptions {
		opt := wal.DefaultOptions()
		opt.Sync = wal.SyncInterval
		rep := reputation.DefaultConfig()
		return daemonOptions{
			ingestAddr: "127.0.0.1:0", httpAddr: "127.0.0.1:0", idle: time.Minute,
			dur: &durability{dir: dir, opt: opt, every: 2},
			rep: &rep,
		}
	}

	d1, err := newDaemon(repDaemonConfig(n, w, h), newOpts())
	if err != nil {
		t.Fatal(err)
	}
	d1.serve()
	waitReady(t, d1)
	reports := faultyFleetReports(t, "cab", n, slots, faultyFrom)
	if acked, err := mcs.SendReports(context.Background(), d1.ingestAddr.String(), reports); err != nil || acked != len(reports) {
		t.Fatalf("acked %d of %d, err %v", acked, len(reports), err)
	}
	waitWindows(t, d1.engine, uint64((slots-w)/h))
	if err := d1.close(); err != nil {
		t.Fatal(err)
	}
	want, err := d1.ledger.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if d1.ledger.Stats().Folded == 0 {
		t.Fatal("first life folded nothing — the comparison would be vacuous")
	}

	d2, err := newDaemon(repDaemonConfig(n, w, h), newOpts())
	if err != nil {
		t.Fatal(err)
	}
	d2.serve()
	waitReady(t, d2)
	defer func() {
		if err := d2.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	got, err := d2.ledger.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("restored ledger differs from the one checkpointed at shutdown:\nwant %d bytes %x…\ngot  %d bytes %x…",
			len(want), want[:16], len(got), got[:16])
	}
}

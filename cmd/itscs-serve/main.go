// Command itscs-serve runs the I(TS,CS) framework as a long-lived
// streaming service: participants upload location reports over the mcs TCP
// transport, the pipeline engine slices each fleet's stream into sliding
// windows and runs DETECT→CORRECT→CHECK on every window as it closes, and
// an HTTP sidecar exposes health, metrics, and the newest per-fleet result.
//
// With -data-dir set the daemon is durable: every accepted report is
// framed into a write-ahead log before it is acknowledged (fsync policy
// selectable via -fsync), shard state is checkpointed every
// -checkpoint-every closed windows, and on startup the newest checkpoint
// is restored and the log tail replayed, so a crash loses at most what the
// fsync policy permits.
//
// Usage:
//
//	itscs-serve [-ingest 127.0.0.1:7070] [-http 127.0.0.1:8080]
//	            [-participants 158] [-window 240] [-hop 60] [-tau 30s]
//	            [-workers 2] [-queue 16] [-max-fleets 64]
//	            [-idle-timeout 2m] [-cold-start]
//	            [-data-dir /var/lib/itscs] [-fsync always|interval|never]
//	            [-fsync-interval 100ms] [-checkpoint-every 4]
//
// HTTP endpoints:
//
//	GET /healthz         liveness probe
//	GET /metrics         engine + durability counters and histograms (JSON)
//	GET /results         fleets with at least one report, sorted
//	GET /results/{fleet} newest completed window result for the fleet
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal or a listener failure. The
// stop channel substitutes for signals in tests; nil means OS signals.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("itscs-serve", flag.ContinueOnError)
	ingestAddr := fs.String("ingest", "127.0.0.1:7070", "TCP address for participant report ingest")
	httpAddr := fs.String("http", "127.0.0.1:8080", "HTTP address for health, metrics and results")
	participants := fs.Int("participants", 158, "participants per fleet (matrix rows)")
	window := fs.Int("window", 240, "detection window width in slots")
	hop := fs.Int("hop", 60, "window stride in slots")
	tau := fs.Duration("tau", 30*time.Second, "slot duration")
	workers := fs.Int("workers", 2, "detection worker pool size")
	queue := fs.Int("queue", 16, "dispatch queue depth (drop-oldest beyond)")
	maxFleets := fs.Int("max-fleets", 64, "maximum live fleet shards")
	idle := fs.Duration("idle-timeout", mcs.DefaultIdleTimeout, "ingest connection idle limit (0 disables)")
	coldStart := fs.Bool("cold-start", false, "disable cross-window warm starts")
	dataDir := fs.String("data-dir", "", "durability directory for the WAL and checkpoints (empty = in-memory only)")
	fsyncPolicy := fs.String("fsync", "always", "WAL fsync policy: always, interval or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "flush cadence under -fsync interval")
	checkpointEvery := fs.Int("checkpoint-every", 4, "checkpoint shard state every N closed windows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tau <= 0 {
		return fmt.Errorf("slot duration must be positive, got %v", *tau)
	}
	if *checkpointEvery < 1 {
		return fmt.Errorf("checkpoint cadence must be >= 1 window, got %d", *checkpointEvery)
	}

	cfg := pipeline.DefaultConfig()
	cfg.Participants = *participants
	cfg.WindowSlots = *window
	cfg.HopSlots = *hop
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.MaxFleets = *maxFleets
	cfg.DisableWarmStart = *coldStart
	cfg.Core.Detect.Tau = *tau
	cfg.Core.Reconstruct.Tau = *tau

	var dur *durability
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		opt := wal.DefaultOptions()
		opt.Sync = policy
		opt.SyncEvery = *fsyncInterval
		dur = &durability{dir: *dataDir, opt: opt, every: uint64(*checkpointEvery)}
	}

	d, err := newDaemon(cfg, *ingestAddr, *httpAddr, *idle, dur)
	if err != nil {
		return err
	}
	if d.recovery != nil {
		fmt.Fprintf(out, "itscs-serve: recovered %d fleet(s) from %s: replayed %d of %d logged records in %.3fs (checkpoint at index %d%s)\n",
			d.recovery.Fleets, *dataDir, d.recovery.ReplayedRecords, d.recovery.LogRecords,
			d.recovery.DurationS, d.recovery.CheckpointIndex, d.recovery.note())
	}
	d.serve()
	fmt.Fprintf(out, "itscs-serve: ingesting on %s, serving HTTP on %s\n", d.ingestAddr, d.httpBound)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case s := <-sig:
			fmt.Fprintf(out, "itscs-serve: received %v, draining\n", s)
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	}
	return d.close()
}

// durability bundles the daemon's persistent state: the write-ahead log,
// the checkpoint directory, and the background checkpointer.
type durability struct {
	dir   string
	opt   wal.Options
	every uint64 // checkpoint every N closed windows

	log *wal.Log

	// kick is signaled by the engine's OnWindowClose hook; the checkpointer
	// goroutine owns everything below.
	kick        chan struct{}
	stop        chan struct{}
	wg          sync.WaitGroup
	mu          sync.Mutex
	lastCkpt    uint64 // windowsClosed at the last checkpoint
	windowsSeen uint64
	ckpts       uint64
	ckptErrs    uint64
	lastErr     string
}

// recoveryInfo summarizes what startup restored; it is reported once on
// stdout and permanently under /metrics.
type recoveryInfo struct {
	CheckpointIndex    uint64  `json:"checkpoint_index"`
	CheckpointsSkipped int     `json:"checkpoints_skipped_corrupt"`
	Fleets             int     `json:"fleets"`
	LogRecords         uint64  `json:"log_records"`
	ReplayedRecords    uint64  `json:"replayed_records"`
	ReplayRejected     uint64  `json:"replay_rejected"`
	DurationS          float64 `json:"duration_s"`
}

func (r *recoveryInfo) note() string {
	if r.CheckpointsSkipped > 0 {
		return fmt.Sprintf(", %d corrupt checkpoint(s) skipped", r.CheckpointsSkipped)
	}
	return ""
}

// checkpointStats snapshots the checkpointer's counters for /metrics.
type checkpointStats struct {
	Written   uint64 `json:"written"`
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
}

// daemon wires the engine to its two listeners and, when durable, to the
// WAL and checkpointer.
type daemon struct {
	engine     *pipeline.Engine
	ingest     *mcs.Server
	ingestAddr net.Addr
	http       *http.Server
	httpLn     net.Listener
	httpBound  net.Addr
	started    time.Time
	fatal      chan error
	dur        *durability
	recovery   *recoveryInfo
}

func newDaemon(cfg pipeline.Config, ingestAddr, httpAddr string, idle time.Duration, dur *durability) (*daemon, error) {
	var recovery *recoveryInfo
	if dur != nil {
		log, err := wal.Open(dur.dir, dur.opt)
		if err != nil {
			return nil, err
		}
		dur.log = log
		dur.kick = make(chan struct{}, 1)
		dur.stop = make(chan struct{})
		cfg.Log = log
		cfg.OnWindowClose = func(total uint64) {
			select {
			case dur.kick <- struct{}{}:
			default:
			}
		}
	}
	engine, err := pipeline.New(cfg)
	if err != nil {
		if dur != nil {
			_ = dur.log.Close()
		}
		return nil, err
	}
	if dur != nil {
		recovery, err = recover_(engine, dur)
		if err != nil {
			engine.Abort()
			_ = dur.log.Close()
			return nil, err
		}
	}
	d := &daemon{
		engine:   engine,
		ingest:   mcs.NewServer(engine),
		started:  time.Now(),
		fatal:    make(chan error, 2),
		dur:      dur,
		recovery: recovery,
	}
	d.ingest.IdleTimeout = idle
	if d.ingestAddr, err = d.ingest.Listen(ingestAddr); err != nil {
		engine.Close()
		if dur != nil {
			_ = dur.log.Close()
		}
		return nil, err
	}
	if d.httpLn, err = net.Listen("tcp", httpAddr); err != nil {
		_ = d.ingest.Close()
		engine.Close()
		if dur != nil {
			_ = dur.log.Close()
		}
		return nil, fmt.Errorf("http listen: %w", err)
	}
	d.httpBound = d.httpLn.Addr()
	d.http = &http.Server{Handler: d.mux(), ReadHeaderTimeout: 10 * time.Second}
	if dur != nil {
		dur.wg.Add(1)
		go dur.checkpointer(d.engine)
	}
	return d, nil
}

// recover_ restores the newest checkpoint into the engine and replays the
// log tail through it. A missing checkpoint just means replay-from-zero.
func recover_(engine *pipeline.Engine, dur *durability) (*recoveryInfo, error) {
	began := time.Now()
	info := &recoveryInfo{LogRecords: dur.log.AppendedIndex()}
	ck, skipped, err := wal.LatestCheckpoint(dur.dir)
	info.CheckpointsSkipped = skipped
	switch {
	case err == nil:
		if rerr := engine.Restore(ck); rerr != nil {
			return nil, fmt.Errorf("restore checkpoint: %w", rerr)
		}
		info.CheckpointIndex = ck.LogIndex
		info.Fleets = len(ck.Shards)
	case errors.Is(err, wal.ErrNoCheckpoint):
		// Cold directory or checkpoints all corrupt: replay everything.
	default:
		return nil, err
	}
	replayed, err := dur.log.Replay(info.CheckpointIndex, func(_ uint64, r mcs.Report) error {
		if ierr := engine.Replay(r); ierr != nil {
			info.ReplayRejected++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("replay log: %w", err)
	}
	info.ReplayedRecords = replayed
	info.DurationS = time.Since(began).Seconds()
	dur.mu.Lock()
	dur.windowsSeen = 0
	dur.mu.Unlock()
	return info, nil
}

// checkpointer writes a checkpoint every `every` closed windows, prunes
// old checkpoints, and compacts log segments wholly behind the newest one.
func (dur *durability) checkpointer(engine *pipeline.Engine) {
	defer dur.wg.Done()
	for {
		select {
		case <-dur.stop:
			return
		case <-dur.kick:
		}
		closed := engine.Stats().WindowsClosed
		dur.mu.Lock()
		due := closed >= dur.lastCkpt+dur.every
		dur.mu.Unlock()
		if !due {
			continue
		}
		if err := dur.checkpointOnce(engine, closed); err != nil {
			dur.mu.Lock()
			dur.ckptErrs++
			dur.lastErr = err.Error()
			dur.mu.Unlock()
		}
	}
}

// checkpointOnce snapshots, persists, prunes, and compacts.
func (dur *durability) checkpointOnce(engine *pipeline.Engine, closed uint64) error {
	ck, err := engine.Checkpoint()
	if err != nil {
		return err
	}
	if _, err := wal.WriteCheckpoint(dur.dir, ck); err != nil {
		return err
	}
	if _, err := wal.PruneCheckpoints(dur.dir, 2); err != nil {
		return err
	}
	if _, err := dur.log.Compact(ck.LogIndex); err != nil {
		return err
	}
	dur.mu.Lock()
	dur.lastCkpt = closed
	dur.ckpts++
	dur.mu.Unlock()
	return nil
}

// stats snapshots the checkpointer counters.
func (dur *durability) stats() checkpointStats {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	return checkpointStats{Written: dur.ckpts, Errors: dur.ckptErrs, LastError: dur.lastErr}
}

// serve starts both listeners; failures surface on d.fatal.
func (d *daemon) serve() {
	go func() {
		if err := d.ingest.Serve(); err != nil {
			d.fatal <- fmt.Errorf("ingest: %w", err)
		}
	}()
	go func() {
		if err := d.http.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.fatal <- fmt.Errorf("http: %w", err)
		}
	}()
}

// close shuts the transport down first so no report arrives after the
// engine stops, then drains the engine (Close flushes every open partial
// window through detection), writes a final checkpoint, and closes the log.
func (d *daemon) close() error {
	err := d.ingest.Close()
	if herr := d.http.Close(); err == nil {
		err = herr
	}
	if d.dur != nil {
		close(d.dur.stop)
		d.dur.wg.Wait()
	}
	d.engine.Close()
	if d.dur != nil {
		// Final checkpoint after the drain: every logged record has been
		// applied and every open window flushed, so a clean restart
		// restores this snapshot and replays nothing.
		if ckErr := d.dur.checkpointOnce(d.engine, d.engine.Stats().WindowsClosed); ckErr != nil && err == nil {
			err = ckErr
		}
		if lerr := d.dur.log.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(d.started).Seconds(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		payload := metricsPayload{Stats: d.engine.Stats()}
		if d.dur != nil {
			ws := d.dur.log.Stats()
			payload.WAL = &ws
			cs := d.dur.stats()
			payload.Checkpoints = &cs
		}
		payload.Recovery = d.recovery
		writeJSON(w, http.StatusOK, payload)
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"fleets": d.engine.Fleets()})
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		fleet := r.PathValue("fleet")
		res, err := d.engine.Latest(fleet)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		if res == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": fmt.Sprintf("fleet %q has no completed window yet", fleet),
			})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return mux
}

// metricsPayload embeds the engine stats (flat, as before durability) and
// adds the WAL, checkpointer, and recovery sections when durable.
type metricsPayload struct {
	pipeline.Stats
	WAL         *wal.Stats       `json:"wal,omitempty"`
	Checkpoints *checkpointStats `json:"checkpoints,omitempty"`
	Recovery    *recoveryInfo    `json:"recovery,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

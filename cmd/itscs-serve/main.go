// Command itscs-serve runs the I(TS,CS) framework as a long-lived
// streaming service: participants upload location reports over the mcs TCP
// transport, the pipeline engine slices each fleet's stream into sliding
// windows and runs DETECT→CORRECT→CHECK on every window as it closes, and
// an HTTP sidecar exposes health, metrics, traces, and the newest
// per-fleet result.
//
// With -data-dir set the daemon is durable: every accepted report is
// framed into a write-ahead log before it is acknowledged (fsync policy
// selectable via -fsync), shard state is checkpointed every
// -checkpoint-every closed windows, and on startup the newest checkpoint
// is restored and the log tail replayed, so a crash loses at most what the
// fsync policy permits.
//
// A participant reputation ledger (on by default, -reputation=false to
// disable) folds every completed window's verdicts into per-participant
// trust scores and drives the trusted → suspect → quarantined → probation
// quarantine state machine. Reports from quarantined or probation
// participants are admitted and tagged, never dropped; the ledger is
// queryable under /reputation, serialized into every checkpoint, and
// rebuilt deterministically by WAL replay. Reports without a routable
// identity (empty fleet name, negative participant) are refused at the
// ingest door with a counted invalid_identity rejection.
//
// All diagnostics are structured logs (log/slog) on stdout; -log-format
// selects text or json and -log-level the floor. Slow windows, dropped
// windows, failed windows, WAL recovery damage and checkpoint failures all
// surface there — none of them is silent. With -debug-addr set a second
// listener serves net/http/pprof and build info, kept off the public
// sidecar so profiling is never exposed by accident.
//
// Usage:
//
//	itscs-serve [-ingest 127.0.0.1:7070] [-http 127.0.0.1:8080]
//	            [-participants 158] [-window 240] [-hop 60] [-tau 30s]
//	            [-workers 2] [-queue 16] [-max-fleets 64]
//	            [-idle-timeout 2m] [-cold-start]
//	            [-data-dir /var/lib/itscs] [-fsync always|interval|never]
//	            [-fsync-interval 100ms] [-checkpoint-every 4]
//	            [-log-format text|json] [-log-level info]
//	            [-slow-window 30s] [-trace-depth 64]
//	            [-debug-addr 127.0.0.1:6060]
//	            [-reputation] [-rep-decay 0.9] [-rep-suspect-below 0.70]
//	            [-rep-quarantine-below 0.45] [-rep-probation-above 0.55]
//	            [-rep-readmit-above 0.75] [-rep-min-weight 3]
//
// HTTP endpoints:
//
//	GET /healthz         liveness probe (JSON)
//	GET /readyz          readiness probe: 503 while startup recovery
//	                     (checkpoint restore + WAL replay) is running,
//	                     200 once ingest is accepting reports
//	GET /metrics         Prometheus text exposition; JSON with
//	                     Accept: application/json or ?format=json
//	GET /status          operational overview (JSON): readiness, build,
//	                     engine counters, freshness quantiles per fleet,
//	                     reputation census, WAL/checkpoint recency
//	GET /results         fleets with at least one report, sorted
//	GET /results/{fleet} newest completed window result for the fleet
//	                     (204 when the fleet exists but no window closed)
//	GET /trace/{fleet}   recent per-window trace spans plus the retained
//	                     end-to-end freshness traces, newest first;
//	                     ?id={trace-id} looks one stamped report's
//	                     ingest→publish stage record up by trace ID
//	GET /reputation      the whole trust ledger: per-fleet participant
//	                     scores, states, and aggregate counters
//	GET /reputation/{fleet}                one fleet's ledger (404 unknown)
//	GET /reputation/{fleet}/{participant}  one participant's trust row
//
// Debug endpoints (only with -debug-addr):
//
//	GET /debug/pprof/...  CPU, heap, goroutine, block, mutex profiles
//	GET /debug/buildinfo  module, VCS revision, Go version, uptime
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	rdebug "runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal or a listener failure. The
// stop channel substitutes for signals in tests; nil means OS signals.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("itscs-serve", flag.ContinueOnError)
	ingestAddr := fs.String("ingest", "127.0.0.1:7070", "TCP address for participant report ingest")
	httpAddr := fs.String("http", "127.0.0.1:8080", "HTTP address for health, metrics and results")
	debugAddr := fs.String("debug-addr", "", "HTTP address for pprof and build info (empty = disabled)")
	participants := fs.Int("participants", 158, "participants per fleet (matrix rows)")
	window := fs.Int("window", 240, "detection window width in slots")
	hop := fs.Int("hop", 60, "window stride in slots")
	tau := fs.Duration("tau", 30*time.Second, "slot duration")
	workers := fs.Int("workers", 2, "detection worker pool size")
	queue := fs.Int("queue", 16, "dispatch queue depth (drop-oldest beyond)")
	maxFleets := fs.Int("max-fleets", 64, "maximum live fleet shards")
	idle := fs.Duration("idle-timeout", mcs.DefaultIdleTimeout, "ingest connection idle limit (0 disables)")
	coldStart := fs.Bool("cold-start", false, "disable cross-window warm starts")
	dataDir := fs.String("data-dir", "", "durability directory for the WAL and checkpoints (empty = in-memory only)")
	fsyncPolicy := fs.String("fsync", "always", "WAL fsync policy: always, interval or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "flush cadence under -fsync interval")
	checkpointEvery := fs.Int("checkpoint-every", 4, "checkpoint shard state every N closed windows")
	logFormat := fs.String("log-format", obs.LogText, "log output format: text or json")
	logLevel := fs.String("log-level", "info", "log level floor: debug, info, warn or error")
	slowWindow := fs.Duration("slow-window", 30*time.Second, "window wall-clock above which processing logs at warn")
	traceDepth := fs.Int("trace-depth", 64, "per-fleet trace spans retained for /trace (0 = default, negative disables)")
	repDefaults := reputation.DefaultConfig()
	repEnabled := fs.Bool("reputation", true, "maintain the participant trust ledger and quarantine state machine")
	repDecay := fs.Float64("rep-decay", repDefaults.Decay, "per-window decay of the trust evidence masses, in (0,1)")
	repSuspect := fs.Float64("rep-suspect-below", repDefaults.SuspectBelow, "trust lower bound below which a trusted participant turns suspect")
	repQuarantine := fs.Float64("rep-quarantine-below", repDefaults.QuarantineBelow, "trust lower bound below which a suspect (or probation) participant is quarantined")
	repProbation := fs.Float64("rep-probation-above", repDefaults.ProbationAbove, "trust lower bound at which a quarantined participant enters probation")
	repReadmit := fs.Float64("rep-readmit-above", repDefaults.ReadmitAbove, "trust lower bound at which a suspect or probation participant is readmitted as trusted")
	repMinWeight := fs.Float64("rep-min-weight", repDefaults.MinWeight, "minimum decayed evidence mass before any state transition fires")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tau <= 0 {
		return fmt.Errorf("slot duration must be positive, got %v", *tau)
	}
	if *checkpointEvery < 1 {
		return fmt.Errorf("checkpoint cadence must be >= 1 window, got %d", *checkpointEvery)
	}
	logger, err := obs.NewLogger(out, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	// Startup banner: who this binary is and how it will persist, first
	// line in the log whatever happens next. -log-format selects whether it
	// renders as text or JSON, like every other record.
	banner := make([]any, 0, 12)
	for _, a := range obs.BuildInfoAttrs() {
		banner = append(banner, a)
	}
	if *dataDir != "" {
		banner = append(banner, "data_dir", *dataDir, "fsync", *fsyncPolicy,
			"fsync_interval", fsyncInterval.String(), "checkpoint_every", *checkpointEvery)
	} else {
		banner = append(banner, "data_dir", "(in-memory)")
	}
	logger.Info("itscs-serve starting", banner...)

	cfg := pipeline.DefaultConfig()
	cfg.Participants = *participants
	cfg.WindowSlots = *window
	cfg.HopSlots = *hop
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.MaxFleets = *maxFleets
	cfg.DisableWarmStart = *coldStart
	cfg.TraceDepth = *traceDepth
	cfg.Core.Detect.Tau = *tau
	cfg.Core.Reconstruct.Tau = *tau

	var dur *durability
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		opt := wal.DefaultOptions()
		opt.Sync = policy
		opt.SyncEvery = *fsyncInterval
		dur = &durability{dir: *dataDir, opt: opt, every: uint64(*checkpointEvery)}
	}

	var repCfg *reputation.Config
	if *repEnabled {
		rc := repDefaults
		rc.Decay = *repDecay
		rc.SuspectBelow = *repSuspect
		rc.QuarantineBelow = *repQuarantine
		rc.ProbationAbove = *repProbation
		rc.ReadmitAbove = *repReadmit
		rc.MinWeight = *repMinWeight
		repCfg = &rc
	}

	d, err := newDaemon(cfg, daemonOptions{
		ingestAddr: *ingestAddr,
		httpAddr:   *httpAddr,
		debugAddr:  *debugAddr,
		idle:       *idle,
		dur:        dur,
		rep:        repCfg,
		log:        logger,
		slowWindow: *slowWindow,
	})
	if err != nil {
		return err
	}
	d.serve()
	attrs := []any{"ingest", d.ingestAddr.String(), "http", d.httpBound.String()}
	if d.debugBound != nil {
		attrs = append(attrs, "debug", d.debugBound.String())
	}
	logger.Info("serving", attrs...)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case s := <-sig:
			logger.Info("draining", "signal", s.String())
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	}
	return d.close()
}

// durability bundles the daemon's persistent state: the write-ahead log,
// the checkpoint directory, and the background checkpointer.
type durability struct {
	dir   string
	opt   wal.Options
	every uint64 // checkpoint every N closed windows

	log    *wal.Log
	slg    *slog.Logger
	ledger *reputation.Ledger // serialized into checkpoints when non-nil

	// kick is signaled by the engine's OnWindowClose hook; the checkpointer
	// goroutine owns everything below.
	kick        chan struct{}
	stop        chan struct{}
	wg          sync.WaitGroup
	mu          sync.Mutex
	lastCkpt    uint64 // windowsClosed at the last checkpoint
	lastCkptAt  time.Time
	windowsSeen uint64
	ckpts       uint64
	ckptErrs    uint64
	lastErr     string
}

func (dur *durability) logger() *slog.Logger {
	if dur.slg != nil {
		return dur.slg
	}
	return obs.Discard()
}

// fs returns the durability filesystem seam: whatever the WAL options carry
// (the fault harness injects there), defaulting to the real OS.
func (dur *durability) fs() fault.FS {
	if dur.opt.FS != nil {
		return dur.opt.FS
	}
	return fault.OS()
}

// recoveryInfo summarizes what startup restored; it is reported once in
// the log and permanently under /metrics.
type recoveryInfo struct {
	CheckpointIndex    uint64  `json:"checkpoint_index"`
	CheckpointsSkipped int     `json:"checkpoints_skipped_corrupt"`
	Fleets             int     `json:"fleets"`
	LogRecords         uint64  `json:"log_records"`
	ReplayedRecords    uint64  `json:"replayed_records"`
	ReplayRejected     uint64  `json:"replay_rejected"`
	DurationS          float64 `json:"duration_s"`
}

// checkpointStats snapshots the checkpointer's counters for /metrics.
type checkpointStats struct {
	Written   uint64 `json:"written"`
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// LastUnixMicro is when the newest checkpoint finished (0 before the
	// first): the recency signal /status pairs with the WAL's, bounding how
	// much log a restart would replay.
	LastUnixMicro int64 `json:"last_unix_us,omitempty"`
}

// daemonOptions collects the wiring newDaemon needs beyond the engine
// config: addresses, timeouts, durability, and observability.
type daemonOptions struct {
	ingestAddr string
	httpAddr   string
	debugAddr  string // empty disables the pprof/buildinfo listener
	idle       time.Duration
	dur        *durability
	rep        *reputation.Config // nil disables the trust ledger
	log        *slog.Logger       // nil silences the daemon
	slowWindow time.Duration      // 0 means never escalate to warn

	// startupGate, when non-nil, is a test seam: the startup goroutine
	// waits on it before running recovery, so tests can observe the
	// not-ready state deterministically.
	startupGate <-chan struct{}
}

// daemon wires the engine to its listeners and, when durable, to the WAL
// and checkpointer.
//
// Startup is two-phase: the HTTP sidecar answers immediately (so probers
// and operators can watch /readyz during a long recovery), while ingest
// accept and the checkpointer start only after the startup goroutine has
// restored the newest checkpoint and replayed the log tail — Restore
// requires an engine that has ingested nothing, so no report may arrive
// before recovery finishes.
type daemon struct {
	engine      *pipeline.Engine
	log         *slog.Logger
	ingest      *mcs.Server
	ingestAddr  net.Addr
	http        *http.Server
	httpLn      net.Listener
	httpBound   net.Addr
	debug       *http.Server
	debugLn     net.Listener
	debugBound  net.Addr
	started     time.Time
	fatal       chan error
	dur         *durability
	ledger      *reputation.Ledger // nil when -reputation=false
	runtime     *obs.Runtime
	startupGate <-chan struct{}

	// invalidIdentity counts reports the ingest door refused for an empty
	// fleet or negative participant id — before they could reach the
	// engine as unroutable, unattributable rows.
	invalidIdentity atomic.Uint64

	ready       atomic.Bool   // flips once, after recovery succeeds
	startupDone chan struct{} // closed when the startup goroutine exits
	recMu       sync.Mutex
	recovery    *recoveryInfo
}

// recoveryState returns what startup restored, or nil while recovery is
// still running (or for an in-memory daemon).
func (d *daemon) recoveryState() *recoveryInfo {
	d.recMu.Lock()
	defer d.recMu.Unlock()
	return d.recovery
}

func newDaemon(cfg pipeline.Config, opt daemonOptions) (*daemon, error) {
	logger := opt.log
	if logger == nil {
		logger = obs.Discard()
	}
	if cfg.Obs == nil {
		cfg.Obs = &obs.LogObserver{Log: logger, SlowWindow: opt.slowWindow}
	}
	var ledger *reputation.Ledger
	if opt.rep != nil {
		var err error
		if ledger, err = reputation.New(*opt.rep); err != nil {
			return nil, err
		}
		cfg.Gate = ledger
		cfg.OnResult = ledger.Fold
	}
	dur := opt.dur
	if dur != nil {
		dur.slg = logger
		dur.opt.Logger = logger
		dur.ledger = ledger
		log, err := wal.Open(dur.dir, dur.opt)
		if err != nil {
			return nil, err
		}
		dur.log = log
		dur.kick = make(chan struct{}, 1)
		dur.stop = make(chan struct{})
		cfg.Log = log
		cfg.OnWindowClose = func(total uint64) {
			select {
			case dur.kick <- struct{}{}:
			default:
			}
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = fault.RealClock()
	}
	engine, err := pipeline.New(cfg)
	if err != nil {
		if dur != nil {
			_ = dur.log.Close()
		}
		return nil, err
	}
	d := &daemon{
		engine:      engine,
		log:         logger,
		started:     time.Now(),
		fatal:       make(chan error, 3),
		dur:         dur,
		ledger:      ledger,
		runtime:     obs.NewRuntime(),
		startupGate: opt.startupGate,
		startupDone: make(chan struct{}),
	}
	// The TCP door fronts the engine with the identity check: a report with
	// no routable identity is refused (and counted) before it can occupy a
	// default-fleet shard no cluster router would ever query. It is also
	// the freshness door: every admitted report gets its ingest stamp here,
	// unless a router upstream already stamped it.
	d.ingest = mcs.NewServer(&identityGate{next: engine, invalid: &d.invalidIdentity, clock: cfg.Clock})
	d.ingest.IdleTimeout = opt.idle
	if d.ingestAddr, err = d.ingest.Listen(opt.ingestAddr); err != nil {
		d.teardown()
		return nil, err
	}
	if d.httpLn, err = net.Listen("tcp", opt.httpAddr); err != nil {
		d.teardown()
		return nil, fmt.Errorf("http listen: %w", err)
	}
	d.httpBound = d.httpLn.Addr()
	d.http = newHTTPServer(d.mux(), defaultReadHeaderTimeout, defaultIdleTimeout)
	if opt.debugAddr != "" {
		if d.debugLn, err = net.Listen("tcp", opt.debugAddr); err != nil {
			d.teardown()
			return nil, fmt.Errorf("debug listen: %w", err)
		}
		d.debugBound = d.debugLn.Addr()
		// pprof's CPU profile and trace handlers stream for their whole
		// -seconds argument, so the debug server gets the header timeout
		// but no idle cap beyond the generous default.
		d.debug = newHTTPServer(d.debugMux(), defaultReadHeaderTimeout, defaultIdleTimeout)
	}
	return d, nil
}

// identityGate fronts the engine on the TCP ingest path: mcs.Report
// identity fields are validated before the engine (or the WAL) sees the
// report, so the refusal is counted and acked instead of admitting an
// unroutable row.
type identityGate struct {
	next    mcs.Ingestor
	invalid *atomic.Uint64
	clock   fault.Clock
}

func (g *identityGate) Ingest(r mcs.Report) error {
	if err := r.CheckIdentity(); err != nil {
		g.invalid.Add(1)
		return err
	}
	// Stamp at the door. StampIngest no-ops on a report a router already
	// stamped, so freshness always measures from first contact.
	mcs.StampIngest(&r, g.clock.Now(), mcs.OriginDirect)
	return g.next.Ingest(r)
}

// teardown releases everything newDaemon acquired before a later step
// failed, in reverse order of acquisition.
func (d *daemon) teardown() {
	if d.httpLn != nil {
		_ = d.httpLn.Close()
	}
	if d.ingestAddr != nil {
		_ = d.ingest.Close()
	}
	d.engine.Close()
	if d.dur != nil {
		_ = d.dur.log.Close()
	}
}

// Default HTTP server timeouts. ReadHeaderTimeout bounds how long a
// connection may dribble its request header; IdleTimeout reclaims
// keep-alive connections that send nothing. Together they stop a
// slowloris-style client from pinning sockets open indefinitely.
const (
	defaultReadHeaderTimeout = 10 * time.Second
	defaultIdleTimeout       = 2 * time.Minute
)

// newHTTPServer builds an http.Server with the anti-slowloris timeouts
// applied; tests pass short values to observe the disconnect.
func newHTTPServer(h http.Handler, readHeader, idle time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeader,
		IdleTimeout:       idle,
	}
}

// recover_ restores the newest checkpoint into the engine and replays the
// log tail through it. A missing checkpoint just means replay-from-zero.
func recover_(engine *pipeline.Engine, dur *durability) (*recoveryInfo, error) {
	began := time.Now()
	info := &recoveryInfo{LogRecords: dur.log.AppendedIndex()}
	ck, skipped, err := wal.LatestCheckpointFS(dur.fs(), dur.dir)
	info.CheckpointsSkipped = skipped
	if skipped > 0 {
		dur.logger().Warn("skipped corrupt checkpoint(s) during recovery",
			"dir", dur.dir, "skipped", skipped)
	}
	switch {
	case err == nil:
		if rerr := engine.Restore(ck); rerr != nil {
			return nil, fmt.Errorf("restore checkpoint: %w", rerr)
		}
		if dur.ledger != nil {
			// A version-1 checkpoint carries no blob; Restore(nil) resets the
			// ledger and the replayed tail rebuilds what it can.
			if rerr := dur.ledger.Restore(ck.Reputation); rerr != nil {
				return nil, fmt.Errorf("restore reputation ledger: %w", rerr)
			}
		}
		info.CheckpointIndex = ck.LogIndex
		info.Fleets = len(ck.Shards)
	case errors.Is(err, wal.ErrNoCheckpoint):
		// Cold directory or checkpoints all corrupt: replay everything.
		if dur.ledger != nil {
			if rerr := dur.ledger.Restore(nil); rerr != nil {
				return nil, fmt.Errorf("reset reputation ledger: %w", rerr)
			}
		}
	default:
		return nil, err
	}
	replayed, err := dur.log.Replay(info.CheckpointIndex, func(_ uint64, r mcs.Report) error {
		if ierr := engine.Replay(r); ierr != nil {
			info.ReplayRejected++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("replay log: %w", err)
	}
	info.ReplayedRecords = replayed
	info.DurationS = time.Since(began).Seconds()
	dur.mu.Lock()
	dur.windowsSeen = 0
	dur.mu.Unlock()
	return info, nil
}

// checkpointer writes a checkpoint every `every` closed windows, prunes
// old checkpoints, and compacts log segments wholly behind the newest one.
func (dur *durability) checkpointer(engine *pipeline.Engine) {
	defer dur.wg.Done()
	for {
		select {
		case <-dur.stop:
			return
		case <-dur.kick:
		}
		closed := engine.Stats().WindowsClosed
		dur.mu.Lock()
		due := closed >= dur.lastCkpt+dur.every
		dur.mu.Unlock()
		if !due {
			continue
		}
		if err := dur.checkpointOnce(engine, closed); err != nil {
			dur.mu.Lock()
			dur.ckptErrs++
			dur.lastErr = err.Error()
			errs := dur.ckptErrs
			dur.mu.Unlock()
			dur.logger().Error("checkpoint failed",
				"err", err, "windows_closed", closed, "consecutive_errors", errs)
		}
	}
}

// checkpointOnce snapshots, persists, prunes, and compacts.
func (dur *durability) checkpointOnce(engine *pipeline.Engine, closed uint64) error {
	ck, err := engine.Checkpoint()
	if err != nil {
		return err
	}
	if dur.ledger != nil {
		// Checkpoint drained the engine first, so every window the snapshot
		// covers has already been folded (OnResult fires before the window
		// counts as processed) and the blob is consistent with the shards.
		if ck.Reputation, err = dur.ledger.MarshalBinary(); err != nil {
			return err
		}
	}
	if _, err := wal.WriteCheckpointFS(dur.fs(), dur.dir, ck); err != nil {
		return err
	}
	if _, err := wal.PruneCheckpointsFS(dur.fs(), dur.dir, 2); err != nil {
		return err
	}
	if _, err := dur.log.Compact(ck.LogIndex); err != nil {
		return err
	}
	dur.mu.Lock()
	dur.lastCkpt = closed
	dur.lastCkptAt = time.Now()
	dur.ckpts++
	dur.lastErr = ""
	dur.mu.Unlock()
	return nil
}

// stats snapshots the checkpointer counters.
func (dur *durability) stats() checkpointStats {
	dur.mu.Lock()
	defer dur.mu.Unlock()
	s := checkpointStats{Written: dur.ckpts, Errors: dur.ckptErrs, LastError: dur.lastErr}
	if !dur.lastCkptAt.IsZero() {
		s.LastUnixMicro = dur.lastCkptAt.UnixMicro()
	}
	return s
}

// serve starts the HTTP listeners immediately — /readyz answers 503 while
// startup runs — and launches the startup goroutine, which performs
// recovery (checkpoint restore + log replay) and only then opens the
// ingest accept loop and the checkpointer. A recovery failure surfaces on
// d.fatal like a listener failure.
func (d *daemon) serve() {
	go func() {
		if err := d.http.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.fatal <- fmt.Errorf("http: %w", err)
		}
	}()
	if d.debug != nil {
		go func() {
			if err := d.debug.Serve(d.debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.fatal <- fmt.Errorf("debug http: %w", err)
			}
		}()
	}
	go d.startup()
}

// startup runs the recovery phase and flips the daemon ready.
func (d *daemon) startup() {
	defer close(d.startupDone)
	if d.startupGate != nil {
		<-d.startupGate
	}
	if d.dur != nil {
		info, err := recover_(d.engine, d.dur)
		if err != nil {
			d.fatal <- fmt.Errorf("recovery: %w", err)
			return
		}
		d.recMu.Lock()
		d.recovery = info
		d.recMu.Unlock()
		d.log.Info("recovered durable state",
			"dir", d.dur.dir,
			"fleets", info.Fleets,
			"replayed_records", info.ReplayedRecords,
			"log_records", info.LogRecords,
			"replay_rejected", info.ReplayRejected,
			"checkpoint_index", info.CheckpointIndex,
			"checkpoints_skipped_corrupt", info.CheckpointsSkipped,
			"duration_s", info.DurationS)
		d.dur.wg.Add(1)
		go d.dur.checkpointer(d.engine)
	}
	d.ready.Store(true)
	go func() {
		if err := d.ingest.Serve(); err != nil {
			d.fatal <- fmt.Errorf("ingest: %w", err)
		}
	}()
}

// close waits for the startup goroutine (recovery must not race the
// drain), shuts the transport down first so no report arrives after the
// engine stops, then drains the engine (Close flushes every open partial
// window through detection), writes a final checkpoint, and closes the log.
func (d *daemon) close() error {
	<-d.startupDone
	ready := d.ready.Load()
	err := d.ingest.Close()
	if herr := d.http.Close(); err == nil {
		err = herr
	}
	if d.debug != nil {
		if derr := d.debug.Close(); err == nil {
			err = derr
		}
	}
	if d.dur != nil {
		close(d.dur.stop)
		d.dur.wg.Wait()
	}
	if !ready {
		// Startup failed: the engine may hold a half-restored state. Abort
		// instead of draining it and leave the log alone — the next start
		// recovers from what is durable, exactly as after a crash.
		d.engine.Abort()
		if d.dur != nil {
			if lerr := d.dur.log.Close(); err == nil {
				err = lerr
			}
		}
		return err
	}
	d.engine.Close()
	if d.dur != nil {
		// Final checkpoint after the drain: every logged record has been
		// applied and every open window flushed, so a clean restart
		// restores this snapshot and replays nothing.
		if ckErr := d.dur.checkpointOnce(d.engine, d.engine.Stats().WindowsClosed); ckErr != nil {
			d.log.Error("final checkpoint failed", "err", ckErr)
			if err == nil {
				err = ckErr
			}
		}
		if lerr := d.dur.log.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(d.started).Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness (/healthz) says "the process runs"; readiness says "the
		// ingest accepts reports". During startup recovery the daemon is
		// alive but must not receive traffic — the cluster router's prober
		// keys off exactly this distinction.
		if !d.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "recovering",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ready",
			"uptime_s": time.Since(d.started).Seconds(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		payload := metricsPayload{Stats: d.engine.Stats()}
		if d.dur != nil {
			ws := d.dur.log.Stats()
			payload.WAL = &ws
			cs := d.dur.stats()
			payload.Checkpoints = &cs
		}
		payload.Recovery = d.recoveryState()
		payload.InvalidIdentity = d.invalidIdentity.Load()
		if d.ledger != nil {
			rs := d.ledger.Stats()
			payload.Reputation = &rs
		}
		if obs.WantsJSON(r) {
			writeJSON(w, http.StatusOK, payload)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(renderProm(payload, time.Since(d.started), d.runtime))
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.statusPayload())
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"fleets": d.engine.Fleets()})
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		fleet := r.PathValue("fleet")
		res, err := d.engine.Latest(fleet)
		switch {
		case errors.Is(err, pipeline.ErrNoResult):
			// The fleet exists but no window has completed: not an error,
			// just nothing yet. 204 keeps "200 means a result" true.
			w.WriteHeader(http.StatusNoContent)
		case err != nil:
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		default:
			writeJSON(w, http.StatusOK, res)
		}
	})
	mux.HandleFunc("GET /trace/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		fleet := r.PathValue("fleet")
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			// Trace-ID lookup: one stamped report's end-to-end stage record.
			id, err := obs.ParseTraceID(idStr)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
				return
			}
			tr, ok := d.engine.FindTrace(fleet, id)
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"error": fmt.Sprintf("no retained trace %s for fleet %q", idStr, fleet),
				})
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"fleet": fleet, "traces": []obs.Trace{tr}})
			return
		}
		spans, err := d.engine.Trace(fleet)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		traces, _ := d.engine.Traces(fleet)
		writeJSON(w, http.StatusOK, map[string]any{"fleet": fleet, "spans": spans, "traces": traces})
	})
	mux.HandleFunc("GET /reputation", func(w http.ResponseWriter, r *http.Request) {
		if d.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		writeJSON(w, http.StatusOK, d.ledger.Snapshot())
	})
	mux.HandleFunc("GET /reputation/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		if d.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		fleet := r.PathValue("fleet")
		fs, ok := d.ledger.Fleet(fleet)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown fleet: " + fleet})
			return
		}
		writeJSON(w, http.StatusOK, fs)
	})
	mux.HandleFunc("GET /reputation/{fleet}/{participant}", func(w http.ResponseWriter, r *http.Request) {
		if d.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		fleet := r.PathValue("fleet")
		part, err := strconv.Atoi(r.PathValue("participant"))
		if err != nil || part < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "participant must be a non-negative integer"})
			return
		}
		ps, ok := d.ledger.Participant(fleet, part)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": fmt.Sprintf("no trust row for participant %d of fleet %q", part, fleet),
			})
			return
		}
		writeJSON(w, http.StatusOK, ps)
	})
	return mux
}

// statusPayload assembles the /status operational overview: identity and
// uptime, engine and freshness summary (quantiles, per-fleet lag), the
// reputation gate census, and the durability recency signals.
func (d *daemon) statusPayload() map[string]any {
	st := d.engine.Stats()
	byFleet := make(map[string]any, len(st.Freshness))
	for name, ff := range st.Freshness {
		byFleet[name] = map[string]any{
			"watermark_slot":   ff.WatermarkSlot,
			"window_lag":       ff.NextSeq - 1 - ff.LatestSeq,
			"age_at_close":     pipeline.SummarizeFreshness(ff.AgeAtClose),
			"ingest_to_result": pipeline.SummarizeFreshness(ff.IngestToResult),
		}
	}
	payload := map[string]any{
		"status":   "ok",
		"ready":    d.ready.Load(),
		"uptime_s": time.Since(d.started).Seconds(),
		"build":    buildInfo(time.Since(d.started)),
		"engine": map[string]any{
			"ingested":          st.Ingested,
			"rejected":          st.Rejected,
			"reports_stamped":   st.ReportsStamped,
			"reports_unstamped": st.ReportsUnstamped,
			"windows_closed":    st.WindowsClosed,
			"windows_processed": st.WindowsProcessed,
			"queue_depth":       st.QueueDepth,
			"queue_capacity":    st.QueueCapacity,
			"fleets":            st.Fleets,
		},
		"freshness": map[string]any{
			"age_at_close":     pipeline.SummarizeFreshness(st.AgeAtClose),
			"ingest_to_result": pipeline.SummarizeFreshness(st.IngestToResult),
			"by_fleet":         byFleet,
		},
	}
	if d.ledger != nil {
		rs := d.ledger.Stats()
		payload["reputation"] = map[string]any{
			"fleets":         rs.Fleets,
			"states":         rs.States,
			"windows_folded": rs.Folded,
		}
	}
	if d.dur != nil {
		ws := d.dur.log.Stats()
		cs := d.dur.stats()
		payload["durability"] = map[string]any{
			"data_dir":           d.dur.dir,
			"fsync_policy":       d.dur.opt.Sync.String(),
			"wal_last_append_us": ws.LastAppendUnixMicro,
			"wal_last_fsync_us":  ws.LastFsyncUnixMicro,
			"checkpoints":        cs,
		}
		if rec := d.recoveryState(); rec != nil {
			payload["recovery"] = rec
		}
	}
	return payload
}

// debugMux serves pprof and build info on the -debug-addr listener only,
// never on the public sidecar.
func (d *daemon) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildInfo(time.Since(d.started)))
	})
	return mux
}

// buildInfo assembles the /debug/buildinfo payload: module identity, VCS
// state when the binary was built from a checkout, toolchain, and uptime.
func buildInfo(uptime time.Duration) map[string]any {
	info := map[string]any{
		"go_version": runtime.Version(),
		"uptime_s":   uptime.Seconds(),
	}
	if bi, ok := rdebug.ReadBuildInfo(); ok {
		info["module"] = bi.Main.Path
		if bi.Main.Version != "" {
			info["version"] = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				info[s.Key] = s.Value
			}
		}
	}
	return info
}

// metricsPayload embeds the engine stats (flat, as before durability) and
// adds the WAL, checkpointer, and recovery sections when durable.
type metricsPayload struct {
	pipeline.Stats
	InvalidIdentity uint64                  `json:"reports_invalid_identity"`
	WAL             *wal.Stats              `json:"wal,omitempty"`
	Checkpoints     *checkpointStats        `json:"checkpoints,omitempty"`
	Recovery        *recoveryInfo           `json:"recovery,omitempty"`
	Reputation      *reputation.LedgerStats `json:"reputation,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Command itscs-serve runs the I(TS,CS) framework as a long-lived
// streaming service: participants upload location reports over the mcs TCP
// transport, the pipeline engine slices each fleet's stream into sliding
// windows and runs DETECT→CORRECT→CHECK on every window as it closes, and
// an HTTP sidecar exposes health, metrics, and the newest per-fleet result.
//
// Usage:
//
//	itscs-serve [-ingest 127.0.0.1:7070] [-http 127.0.0.1:8080]
//	            [-participants 158] [-window 240] [-hop 60] [-tau 30s]
//	            [-workers 2] [-queue 16] [-max-fleets 64]
//	            [-idle-timeout 2m] [-cold-start]
//
// HTTP endpoints:
//
//	GET /healthz         liveness probe
//	GET /metrics         engine counters and latency histograms (JSON)
//	GET /results         fleets with at least one report, sorted
//	GET /results/{fleet} newest completed window result for the fleet
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"itscs/internal/mcs"
	"itscs/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "itscs-serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until a signal or a listener failure. The
// stop channel substitutes for signals in tests; nil means OS signals.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("itscs-serve", flag.ContinueOnError)
	ingestAddr := fs.String("ingest", "127.0.0.1:7070", "TCP address for participant report ingest")
	httpAddr := fs.String("http", "127.0.0.1:8080", "HTTP address for health, metrics and results")
	participants := fs.Int("participants", 158, "participants per fleet (matrix rows)")
	window := fs.Int("window", 240, "detection window width in slots")
	hop := fs.Int("hop", 60, "window stride in slots")
	tau := fs.Duration("tau", 30*time.Second, "slot duration")
	workers := fs.Int("workers", 2, "detection worker pool size")
	queue := fs.Int("queue", 16, "dispatch queue depth (drop-oldest beyond)")
	maxFleets := fs.Int("max-fleets", 64, "maximum live fleet shards")
	idle := fs.Duration("idle-timeout", mcs.DefaultIdleTimeout, "ingest connection idle limit (0 disables)")
	coldStart := fs.Bool("cold-start", false, "disable cross-window warm starts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tau <= 0 {
		return fmt.Errorf("slot duration must be positive, got %v", *tau)
	}

	cfg := pipeline.DefaultConfig()
	cfg.Participants = *participants
	cfg.WindowSlots = *window
	cfg.HopSlots = *hop
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.MaxFleets = *maxFleets
	cfg.DisableWarmStart = *coldStart
	cfg.Core.Detect.Tau = *tau
	cfg.Core.Reconstruct.Tau = *tau

	d, err := newDaemon(cfg, *ingestAddr, *httpAddr, *idle)
	if err != nil {
		return err
	}
	d.serve()
	fmt.Fprintf(out, "itscs-serve: ingesting on %s, serving HTTP on %s\n", d.ingestAddr, d.httpBound)

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case s := <-sig:
			fmt.Fprintf(out, "itscs-serve: received %v, shutting down\n", s)
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	} else {
		select {
		case <-stop:
		case err := <-d.fatal:
			_ = d.close()
			return err
		}
	}
	return d.close()
}

// daemon wires the engine to its two listeners.
type daemon struct {
	engine     *pipeline.Engine
	ingest     *mcs.Server
	ingestAddr net.Addr
	http       *http.Server
	httpLn     net.Listener
	httpBound  net.Addr
	started    time.Time
	fatal      chan error
}

func newDaemon(cfg pipeline.Config, ingestAddr, httpAddr string, idle time.Duration) (*daemon, error) {
	engine, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		engine:  engine,
		ingest:  mcs.NewServer(engine),
		started: time.Now(),
		fatal:   make(chan error, 2),
	}
	d.ingest.IdleTimeout = idle
	if d.ingestAddr, err = d.ingest.Listen(ingestAddr); err != nil {
		engine.Close()
		return nil, err
	}
	if d.httpLn, err = net.Listen("tcp", httpAddr); err != nil {
		_ = d.ingest.Close()
		engine.Close()
		return nil, fmt.Errorf("http listen: %w", err)
	}
	d.httpBound = d.httpLn.Addr()
	d.http = &http.Server{Handler: d.mux(), ReadHeaderTimeout: 10 * time.Second}
	return d, nil
}

// serve starts both listeners; failures surface on d.fatal.
func (d *daemon) serve() {
	go func() {
		if err := d.ingest.Serve(); err != nil {
			d.fatal <- fmt.Errorf("ingest: %w", err)
		}
	}()
	go func() {
		if err := d.http.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.fatal <- fmt.Errorf("http: %w", err)
		}
	}()
}

// close shuts the transport down first so no report arrives after the
// engine stops, then drains the engine's queued windows.
func (d *daemon) close() error {
	err := d.ingest.Close()
	if herr := d.http.Close(); err == nil {
		err = herr
	}
	d.engine.Close()
	return err
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(d.started).Seconds(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.engine.Stats())
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"fleets": d.engine.Fleets()})
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		fleet := r.PathValue("fleet")
		res, err := d.engine.Latest(fleet)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		if res == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": fmt.Sprintf("fleet %q has no completed window yet", fleet),
			})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"itscs/internal/mat"
)

func TestRunGeneratesMatrices(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-participants", "6", "-slots", "20", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x.csv", "y.csv", "vx.csv", "vy.csv"} {
		m := readMatrix(t, filepath.Join(dir, name))
		if m.Rows() != 6 || m.Cols() != 20 {
			t.Fatalf("%s is %dx%d", name, m.Rows(), m.Cols())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "sx.csv")); !os.IsNotExist(err) {
		t.Fatal("no corruption requested, sx.csv should not exist")
	}
}

func TestRunWithCorruption(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-participants", "8", "-slots", "25",
		"-missing", "0.2", "-faulty", "0.2"})
	if err != nil {
		t.Fatal(err)
	}
	sx := readMatrix(t, filepath.Join(dir, "sx.csv"))
	truthMissing := readMatrix(t, filepath.Join(dir, "truth-missing.csv"))
	truthFaulty := readMatrix(t, filepath.Join(dir, "truth-faulty.csv"))
	var nanCount, missCount int
	for i := 0; i < 8; i++ {
		for j := 0; j < 25; j++ {
			if math.IsNaN(sx.At(i, j)) {
				nanCount++
				if truthMissing.At(i, j) != 1 {
					t.Fatal("NaN cell not marked missing in truth")
				}
			}
			if truthMissing.At(i, j) == 1 {
				missCount++
			}
		}
	}
	if nanCount != missCount || nanCount == 0 {
		t.Fatalf("NaN cells %d vs truth-missing %d", nanCount, missCount)
	}
	if truthFaulty.Sum() == 0 {
		t.Fatal("no faults recorded")
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out should fail")
	}
}

func TestRunRejectsBadRatios(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-missing", "0.9", "-faulty", "0.9"}); err == nil {
		t.Fatal("impossible corruption should fail")
	}
}

func readMatrix(t *testing.T, path string) *mat.Dense {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mat.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

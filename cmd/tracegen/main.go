// Command tracegen generates a synthetic taxi-fleet trace and writes the
// coordinate and velocity matrices as CSV files, optionally applying the
// paper's corruption model so the output can be fed straight into
// itscs-detect.
//
// Usage:
//
//	tracegen -out DIR [-participants N] [-slots T] [-seed S]
//	         [-missing A] [-faulty B]
//
// Output files: x.csv, y.csv, vx.csv, vy.csv and, when corruption is
// requested, sx.csv, sy.csv (sensory matrices with NaN at missing cells)
// plus truth-faulty.csv / truth-missing.csv ground-truth masks.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"itscs/internal/corrupt"
	"itscs/internal/mat"
	"itscs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	outDir := fs.String("out", "", "output directory (required)")
	participants := fs.Int("participants", 158, "number of vehicles")
	slots := fs.Int("slots", 240, "number of time slots")
	seed := fs.Int64("seed", 1, "generation seed")
	missing := fs.Float64("missing", 0, "missing-value ratio alpha in [0,1)")
	faulty := fs.Float64("faulty", 0, "faulty-data ratio beta in [0,1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("-out is required")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	cfg := trace.DefaultConfig()
	cfg.Participants = *participants
	cfg.Slots = *slots
	cfg.Seed = *seed
	fleet, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	files := map[string]*mat.Dense{
		"x.csv":  fleet.X,
		"y.csv":  fleet.Y,
		"vx.csv": fleet.VX,
		"vy.csv": fleet.VY,
	}

	if *missing > 0 || *faulty > 0 {
		plan := corrupt.DefaultPlan()
		plan.MissingRatio = *missing
		plan.FaultyRatio = *faulty
		plan.Seed = *seed
		res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
		if err != nil {
			return err
		}
		files["sx.csv"] = withNaN(res.SX, res.Existence)
		files["sy.csv"] = withNaN(res.SY, res.Existence)
		files["truth-faulty.csv"] = res.Faulty
		files["truth-missing.csv"] = res.Existence.Map(func(v float64) float64 { return 1 - v })
	}

	for name, m := range files {
		if err := writeCSV(filepath.Join(*outDir, name), m); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d matrices (%dx%d) to %s\n", len(files), *participants, *slots, *outDir)
	return nil
}

// withNaN returns s with NaN at unobserved cells so downstream tools can
// distinguish missing from a legitimate zero coordinate.
func withNaN(s, existence *mat.Dense) *mat.Dense {
	out := s.Clone()
	out.Apply(func(i, j int, v float64) float64 {
		if existence.At(i, j) == 0 {
			return math.NaN()
		}
		return v
	})
	return out
}

func writeCSV(path string, m *mat.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := mat.WriteCSV(f, m); err != nil {
		_ = f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

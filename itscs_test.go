package itscs_test

import (
	"math"
	"testing"
	"time"

	"itscs"
	"itscs/synthetic"
)

// smallCorrupted builds a small corrupted synthetic workload.
func smallCorrupted(t *testing.T, alpha, beta float64) (*synthetic.Fleet, *synthetic.Corrupted) {
	t.Helper()
	cfg := synthetic.DefaultFleetConfig()
	cfg.Participants = 20
	cfg.Slots = 80
	fleet, err := synthetic.GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cor, err := fleet.Corrupt(synthetic.Corruption{
		MissingRatio: alpha,
		FaultyRatio:  beta,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fleet, cor
}

// prf computes precision and recall of res against truth.
func prf(res *itscs.Result, cor *synthetic.Corrupted) (precision, recall float64) {
	var tp, fp, fn int
	for i := range res.Faulty {
		for j := range res.Faulty[i] {
			if cor.TruthMissing[i][j] {
				continue
			}
			switch {
			case res.Faulty[i][j] && cor.TruthFaulty[i][j]:
				tp++
			case res.Faulty[i][j]:
				fp++
			case cor.TruthFaulty[i][j]:
				fn++
			}
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

func TestRunDetectsInjectedFaults(t *testing.T) {
	_, cor := smallCorrupted(t, 0.2, 0.2)
	res, err := itscs.Run(cor.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	p, r := prf(res, cor)
	if p < 0.9 || r < 0.9 {
		t.Fatalf("P=%.3f R=%.3f below floor", p, r)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
}

func TestRunRepairsTrajectories(t *testing.T) {
	fleet, cor := smallCorrupted(t, 0.2, 0.1)
	res, err := itscs.Run(cor.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// Repaired output: observed clean cells keep their values, missing and
	// faulty cells are replaced by finite reconstructions.
	var repairedErr, repairedCnt float64
	for i := range res.X {
		for j := range res.X[i] {
			if math.IsNaN(res.X[i][j]) || math.IsNaN(res.Y[i][j]) {
				t.Fatalf("repaired output contains NaN at (%d,%d)", i, j)
			}
			if cor.TruthMissing[i][j] {
				if !res.Missing[i][j] {
					t.Fatalf("missing cell (%d,%d) not reported", i, j)
				}
				dx := res.X[i][j] - fleet.X[i][j]
				dy := res.Y[i][j] - fleet.Y[i][j]
				repairedErr += math.Hypot(dx, dy)
				repairedCnt++
			} else if !res.Faulty[i][j] {
				if res.X[i][j] != cor.Dataset.X[i][j] {
					t.Fatalf("clean observed cell (%d,%d) was modified", i, j)
				}
			}
		}
	}
	if repairedCnt == 0 {
		t.Fatal("no missing cells exercised")
	}
	if mae := repairedErr / repairedCnt; mae > 600 {
		t.Fatalf("repair MAE = %.1f m", mae)
	}
}

func TestRunVariants(t *testing.T) {
	_, cor := smallCorrupted(t, 0.2, 0.2)
	for _, v := range []itscs.Variant{itscs.VariantFull, itscs.VariantNoVelocity, itscs.VariantPlainCS} {
		res, err := itscs.Run(cor.Dataset, itscs.WithVariant(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		p, r := prf(res, cor)
		if p < 0.85 || r < 0.85 {
			t.Fatalf("%v: P=%.3f R=%.3f below floor", v, p, r)
		}
	}
}

func TestRunOptionValidation(t *testing.T) {
	_, cor := smallCorrupted(t, 0.1, 0.1)
	bad := [][]itscs.Option{
		{itscs.WithSlotDuration(0)},
		{itscs.WithVariant(itscs.Variant(99))},
		{itscs.WithDetectionWindow(4)},
		{itscs.WithXi(-1)},
		{itscs.WithToleranceFloor(-5)},
		{itscs.WithRank(-1)},
		{itscs.WithLambdas(-1, 0)},
		{itscs.WithCheckThresholds(500, 100)},
		{itscs.WithMaxIterations(0)},
	}
	for i, opts := range bad {
		if _, err := itscs.Run(cor.Dataset, opts...); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
}

func TestRunDatasetValidation(t *testing.T) {
	cases := []itscs.Dataset{
		{},
		{X: [][]float64{{}}, Y: [][]float64{{}}, VX: [][]float64{{}}, VY: [][]float64{{}}},
		{X: [][]float64{{1, 2}}, Y: [][]float64{{1, 2}, {3, 4}}, VX: [][]float64{{0, 0}}, VY: [][]float64{{0, 0}}},
		{X: [][]float64{{1, 2}}, Y: [][]float64{{1}}, VX: [][]float64{{0, 0}}, VY: [][]float64{{0, 0}}},
	}
	for i, ds := range cases {
		if _, err := itscs.Run(ds); err == nil {
			t.Fatalf("dataset %d should be rejected", i)
		}
	}
}

func TestRunCustomOptionsWork(t *testing.T) {
	_, cor := smallCorrupted(t, 0.1, 0.1)
	res, err := itscs.Run(cor.Dataset,
		itscs.WithSlotDuration(30*time.Second),
		itscs.WithDetectionWindow(7),
		itscs.WithXi(2.0),
		itscs.WithToleranceFloor(80),
		itscs.WithRank(12),
		itscs.WithLambdas(1e-6, 0.5),
		itscs.WithCheckThresholds(250, 900),
		itscs.WithMaxIterations(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	p, r := prf(res, cor)
	if p < 0.85 || r < 0.85 {
		t.Fatalf("custom options degraded detection: P=%.3f R=%.3f", p, r)
	}
}

func TestVariantString(t *testing.T) {
	cases := map[itscs.Variant]string{
		itscs.VariantFull:       "I(TS,CS)",
		itscs.VariantNoVelocity: "I(TS,CS) without V",
		itscs.VariantPlainCS:    "I(TS,CS) without VT",
		itscs.Variant(9):        "Variant(9)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("Variant.String() = %q, want %q", v.String(), want)
		}
	}
}

func TestMissingMarkedByNaNEitherAxis(t *testing.T) {
	// A NaN in just one coordinate must mark the whole cell missing.
	ds := itscs.Dataset{
		X:  [][]float64{{1, math.NaN(), 3, 4, 5, 6, 7, 8, 9, 10}},
		Y:  [][]float64{{1, 2, math.NaN(), 4, 5, 6, 7, 8, 9, 10}},
		VX: [][]float64{{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		VY: [][]float64{{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	res, err := itscs.Run(ds, itscs.WithDetectionWindow(5), itscs.WithRank(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missing[0][1] || !res.Missing[0][2] {
		t.Fatal("NaN in either axis must mark the cell missing")
	}
	if res.Missing[0][0] {
		t.Fatal("observed cell wrongly marked missing")
	}
}

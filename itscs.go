package itscs

import (
	"errors"
	"fmt"
	"math"
	"time"

	"itscs/internal/core"
	"itscs/internal/csrecon"
	"itscs/internal/mat"
)

// Variant selects the reconstruction objective used in the CORRECT phase.
type Variant int

const (
	// VariantFull is the complete I(TS,CS) objective with the
	// velocity-improved temporal-stability term (paper Eq. 23).
	VariantFull Variant = iota + 1
	// VariantNoVelocity keeps the temporal-stability term but drops the
	// velocity target ("I(TS,CS) without V").
	VariantNoVelocity
	// VariantPlainCS uses plain regularized matrix completion
	// ("I(TS,CS) without VT").
	VariantPlainCS
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "I(TS,CS)"
	case VariantNoVelocity:
		return "I(TS,CS) without V"
	case VariantPlainCS:
		return "I(TS,CS) without VT"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

func (v Variant) toInternal() (csrecon.Variant, error) {
	switch v {
	case VariantFull:
		return csrecon.VariantVelocityTemporal, nil
	case VariantNoVelocity:
		return csrecon.VariantTemporal, nil
	case VariantPlainCS:
		return csrecon.VariantBasic, nil
	default:
		return 0, fmt.Errorf("itscs: unknown variant %d", int(v))
	}
}

// Dataset is the input to the framework: one row per participant, one
// column per time slot. A NaN in X (and Y) marks a missing observation;
// both coordinates of a slot are treated as missing when either is NaN,
// matching the paper's model where x and y are lost together.
//
// VX and VY are the participants' reported instantaneous velocity
// components in meters/second. They drive the detector's adaptive
// tolerance and the full variant's reconstruction target. Velocities may
// themselves be noisy or partially faulty — the framework is robust to
// that (paper §IV-D).
type Dataset struct {
	X, Y   [][]float64
	VX, VY [][]float64
}

// Result reports the framework's findings.
type Result struct {
	// Faulty marks the observed cells judged faulty.
	Faulty [][]bool
	// Missing marks the cells that carried no observation (NaN input).
	Missing [][]bool
	// X, Y are the repaired trajectories: reconstruction at missing and
	// faulty cells, the observed values elsewhere.
	X, Y [][]float64
	// ReconstructedX, ReconstructedY are the raw low-rank reconstructions
	// at every cell.
	ReconstructedX, ReconstructedY [][]float64
	// Iterations is the number of DETECT→CORRECT→CHECK rounds executed.
	Iterations int
	// Converged reports whether the flag set stabilized before the
	// iteration cap.
	Converged bool
}

// options collects the tunable knobs; construct with Option functions.
type options struct {
	cfg     core.Config
	variant Variant
}

// Option customizes Run.
type Option func(*options) error

// WithSlotDuration sets the sampling period τ (default 30 s).
func WithSlotDuration(tau time.Duration) Option {
	return func(o *options) error {
		if tau <= 0 {
			return fmt.Errorf("itscs: slot duration must be positive, got %v", tau)
		}
		o.cfg.Detect.Tau = tau
		o.cfg.Reconstruct.Tau = tau
		return nil
	}
}

// WithVariant selects the reconstruction objective (default VariantFull).
func WithVariant(v Variant) Option {
	return func(o *options) error {
		if _, err := v.toInternal(); err != nil {
			return err
		}
		o.variant = v
		return nil
	}
}

// WithDetectionWindow sets the local-median window size (odd, default 13).
func WithDetectionWindow(w int) Option {
	return func(o *options) error {
		o.cfg.Detect.Window = w
		return nil
	}
}

// WithXi sets the detector's tolerance coefficient ξ (default 1.5).
func WithXi(xi float64) Option {
	return func(o *options) error {
		o.cfg.Detect.Xi = xi
		return nil
	}
}

// WithToleranceFloor sets the minimum detection tolerance in meters,
// guarding idle participants against GPS noise (default 60 m).
func WithToleranceFloor(meters float64) Option {
	return func(o *options) error {
		o.cfg.Detect.MinToleranceMeters = meters
		return nil
	}
}

// WithRank fixes the completion rank; 0 (the default) selects it
// automatically from the data's singular-value spectrum.
func WithRank(r int) Option {
	return func(o *options) error {
		o.cfg.Reconstruct.Rank = r
		return nil
	}
}

// WithLambdas sets the reconstruction trade-off weights λ₁ (rank
// surrogate) and λ₂ (temporal/velocity stability).
func WithLambdas(lambda1, lambda2 float64) Option {
	return func(o *options) error {
		o.cfg.Reconstruct.Lambda1 = lambda1
		o.cfg.Reconstruct.Lambda2 = lambda2
		return nil
	}
}

// WithCheckThresholds sets Algorithm 3's clear/raise thresholds in meters
// (defaults 300 and 600).
func WithCheckThresholds(low, high float64) Option {
	return func(o *options) error {
		o.cfg.CheckLowMeters = low
		o.cfg.CheckHighMeters = high
		return nil
	}
}

// WithMaxIterations bounds the outer loop (default 15).
func WithMaxIterations(n int) Option {
	return func(o *options) error {
		o.cfg.MaxIterations = n
		return nil
	}
}

// WithAdaptiveCheck toggles the adaptive raise threshold in the CHECK
// phase (default on): when enabled, the threshold widens to sit above the
// reconstruction's own residual level so datasets with a high low-rank
// truncation floor are not flooded with false positives.
func WithAdaptiveCheck(enabled bool) Option {
	return func(o *options) error {
		o.cfg.DisableAdaptiveCheck = !enabled
		return nil
	}
}

// Run executes the I(TS,CS) framework over the dataset.
func Run(ds Dataset, opts ...Option) (*Result, error) {
	o := options{cfg: core.DefaultConfig(), variant: VariantFull}
	for _, apply := range opts {
		if err := apply(&o); err != nil {
			return nil, err
		}
	}
	variant, err := o.variant.toInternal()
	if err != nil {
		return nil, err
	}
	o.cfg.Reconstruct.Variant = variant

	in, err := toInput(ds)
	if err != nil {
		return nil, err
	}
	out, err := core.Run(o.cfg, *in)
	if err != nil {
		return nil, err
	}
	return toResult(ds, in, out), nil
}

// toInput validates the dataset and converts it to the internal form.
func toInput(ds Dataset) (*core.Input, error) {
	n := len(ds.X)
	if n == 0 {
		return nil, errors.New("itscs: dataset has no participants")
	}
	t := len(ds.X[0])
	if t == 0 {
		return nil, errors.New("itscs: dataset has no time slots")
	}
	for name, rows := range map[string][][]float64{"Y": ds.Y, "VX": ds.VX, "VY": ds.VY} {
		if len(rows) != n {
			return nil, fmt.Errorf("itscs: %s has %d rows, want %d", name, len(rows), n)
		}
	}
	in := core.Input{
		SX:        mat.New(n, t),
		SY:        mat.New(n, t),
		Existence: mat.New(n, t),
		VX:        mat.New(n, t),
		VY:        mat.New(n, t),
	}
	for i := 0; i < n; i++ {
		for name, rows := range map[string][][]float64{"X": ds.X, "Y": ds.Y, "VX": ds.VX, "VY": ds.VY} {
			if len(rows[i]) != t {
				return nil, fmt.Errorf("itscs: %s row %d has %d slots, want %d", name, i, len(rows[i]), t)
			}
		}
		for j := 0; j < t; j++ {
			x, y := ds.X[i][j], ds.Y[i][j]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue // missing: E stays 0, S stays 0
			}
			in.SX.Set(i, j, x)
			in.SY.Set(i, j, y)
			in.Existence.Set(i, j, 1)
		}
		for j := 0; j < t; j++ {
			vx, vy := ds.VX[i][j], ds.VY[i][j]
			if math.IsNaN(vx) {
				vx = 0
			}
			if math.IsNaN(vy) {
				vy = 0
			}
			in.VX.Set(i, j, vx)
			in.VY.Set(i, j, vy)
		}
	}
	return &in, nil
}

// toResult converts the internal output to the public form.
func toResult(ds Dataset, in *core.Input, out *core.Output) *Result {
	n, t := in.SX.Dims()
	res := &Result{
		Faulty:         make([][]bool, n),
		Missing:        make([][]bool, n),
		X:              make([][]float64, n),
		Y:              make([][]float64, n),
		ReconstructedX: make([][]float64, n),
		ReconstructedY: make([][]float64, n),
		Iterations:     out.Iterations,
		Converged:      out.Converged,
	}
	for i := 0; i < n; i++ {
		res.Faulty[i] = make([]bool, t)
		res.Missing[i] = make([]bool, t)
		res.X[i] = make([]float64, t)
		res.Y[i] = make([]float64, t)
		res.ReconstructedX[i] = make([]float64, t)
		res.ReconstructedY[i] = make([]float64, t)
		for j := 0; j < t; j++ {
			faulty := out.Detection.At(i, j) != 0
			missing := in.Existence.At(i, j) == 0
			res.Faulty[i][j] = faulty
			res.Missing[i][j] = missing
			res.ReconstructedX[i][j] = out.XHat.At(i, j)
			res.ReconstructedY[i][j] = out.YHat.At(i, j)
			if faulty || missing {
				res.X[i][j] = out.XHat.At(i, j)
				res.Y[i][j] = out.YHat.At(i, j)
			} else {
				res.X[i][j] = ds.X[i][j]
				res.Y[i][j] = ds.Y[i][j]
			}
		}
	}
	return res
}

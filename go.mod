module itscs

go 1.22

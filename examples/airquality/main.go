// Airquality: the framework on non-location sensory data.
//
// The paper notes I(TS,CS) "can be easily extended to other kinds of
// sensory data" (§I). This example applies RunScalar to a simulated
// city-wide PM2.5 crowdsensing campaign: 40 stations share a diurnal
// pollution cycle modulated by per-station exposure, some uploads are
// lost, and a handful of sensors spike (a failure mode of cheap optical
// particle counters). The framework flags the spikes and fills the gaps.
//
//	go run ./examples/airquality
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"itscs"
)

func main() {
	const stations, slots = 40, 144 // one day at 10-minute resolution
	rng := rand.New(rand.NewSource(3))

	// Ground truth: shared diurnal cycle (traffic peaks) scaled by
	// per-station exposure plus mild sensor noise — an approximately
	// rank-2 field, exactly the structure CS completion exploits.
	truth := make([][]float64, stations)
	for i := range truth {
		truth[i] = make([]float64, slots)
		base := 20 + 30*rng.Float64()   // µg/m³ background
		exposure := 0.5 + rng.Float64() // roadside vs park
		for j := 0; j < slots; j++ {
			hour := float64(j) * 24 / slots
			rush := math.Exp(-sq(hour-8)/8) + math.Exp(-sq(hour-18)/8)
			truth[i][j] = base + exposure*40*rush + rng.NormFloat64()*0.8
		}
	}

	// Observed data: 10% uploads lost, 5% of cells spiked by 100-300 µg/m³.
	values := make([][]float64, stations)
	type cell struct{ i, j int }
	var spiked []cell
	for i := range truth {
		values[i] = append([]float64(nil), truth[i]...)
		for j := range values[i] {
			switch {
			case rng.Float64() < 0.10:
				values[i][j] = math.NaN()
			case rng.Float64() < 0.05:
				values[i][j] += 100 + 200*rng.Float64()
				spiked = append(spiked, cell{i, j})
			}
		}
	}

	res, err := itscs.RunScalar(values, nil,
		itscs.WithToleranceFloor(12),     // µg/m³: above sensor noise, below spikes
		itscs.WithCheckThresholds(8, 40), // clear within 8, re-flag beyond 40
	)
	if err != nil {
		log.Fatal(err)
	}

	caught := 0
	for _, c := range spiked {
		if res.Faulty[c.i][c.j] {
			caught++
		}
	}
	var missSum, missCnt float64
	for i := range values {
		for j := range values[i] {
			if res.Missing[i][j] {
				missSum += math.Abs(res.Values[i][j] - truth[i][j])
				missCnt++
			}
		}
	}
	fmt.Printf("stations=%d slots=%d converged=%v in %d iterations\n",
		stations, slots, res.Converged, res.Iterations)
	fmt.Printf("spike detection: %d/%d caught\n", caught, len(spiked))
	fmt.Printf("gap filling: MAE %.1f µg/m³ over %.0f lost uploads\n", missSum/missCnt, missCnt)
}

func sq(v float64) float64 { return v * v }

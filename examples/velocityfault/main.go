// Velocityfault: robustness to faulty velocity data (paper §IV-D).
//
// The full I(TS,CS) variant leans on reported velocities for both its
// detection tolerance and its reconstruction target — so what happens when
// the velocities themselves are wrong? This example corrupts a growing
// fraction γ of the velocity data with ±100% errors and compares the
// resulting reconstruction error against the variant that ignores velocity
// entirely.
//
//	go run ./examples/velocityfault
package main

import (
	"fmt"
	"log"
	"math"

	"itscs"
	"itscs/synthetic"
)

func main() {
	cfg := synthetic.DefaultFleetConfig()
	cfg.Participants = 60
	cfg.Slots = 120
	fleet, err := synthetic.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const alpha, beta = 0.2, 0.2
	fmt.Printf("fleet %dx%d, alpha=%.0f%%, beta=%.0f%%\n\n",
		cfg.Participants, cfg.Slots, alpha*100, beta*100)
	fmt.Printf("%-28s %-10s %s\n", "configuration", "MAE (m)", "verdict")

	// Reference: no velocity at all.
	ref, err := runOnce(fleet, alpha, beta, 0, itscs.VariantNoVelocity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %-10.1f %s\n", "without velocity", ref, "(reference)")

	for _, gamma := range []float64{0, 0.1, 0.2, 0.4} {
		mae, err := runOnce(fleet, alpha, beta, gamma, itscs.VariantFull)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "velocity still helps"
		if mae >= ref {
			verdict = "velocity no longer helps"
		}
		fmt.Printf("full, %3.0f%% faulty velocity%s %-10.1f %s\n",
			gamma*100, "   ", mae, verdict)
	}
	fmt.Println("\npaper reference (Fig. 7): 20% faulty velocity is indistinguishable")
	fmt.Println("from clean velocity; even 40% only slightly increases the error,")
	fmt.Println("while dropping velocity entirely costs noticeably more.")
}

// runOnce corrupts the fleet (with velocity fault ratio gamma), runs the
// framework, and returns the reconstruction MAE over repaired cells.
func runOnce(fleet *synthetic.Fleet, alpha, beta, gamma float64, v itscs.Variant) (float64, error) {
	cor, err := fleet.Corrupt(synthetic.Corruption{
		MissingRatio:       alpha,
		FaultyRatio:        beta,
		VelocityFaultRatio: gamma,
		Seed:               11,
	})
	if err != nil {
		return 0, err
	}
	res, err := itscs.Run(cor.Dataset, itscs.WithVariant(v))
	if err != nil {
		return 0, err
	}
	var sum float64
	var cnt int
	for i := range res.X {
		for j := range res.X[i] {
			if !cor.TruthMissing[i][j] && !res.Faulty[i][j] {
				continue
			}
			dx := res.X[i][j] - fleet.X[i][j]
			dy := res.Y[i][j] - fleet.Y[i][j]
			sum += math.Hypot(dx, dy)
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}

// Streaming: a live mobile-crowdsensing pipeline.
//
// This example wires together the full system the paper assumes: a fleet
// of taxis streams location reports over TCP to a collection server with
// 15% transport loss; the server slots reports into sensory matrices; and
// once the window closes, the batch is handed to I(TS,CS) for fault
// detection and repair.
//
// It demonstrates the bundled collection substrate (internal/mcs) together
// with the public detection API.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"itscs"
	"itscs/internal/mat"
	"itscs/internal/mcs"
	"itscs/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const participants, slots = 40, 120

	// Simulated fleet (the "devices").
	tc := trace.DefaultConfig()
	tc.Participants = participants
	tc.Slots = slots
	tc.Seed = 7
	fleet, err := trace.Generate(tc)
	if err != nil {
		return err
	}

	// Collection backend.
	collector, err := mcs.NewCollector(participants, slots)
	if err != nil {
		return err
	}
	server := mcs.NewServer(collector)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.Serve() }()
	fmt.Printf("collection server listening on %s\n", addr)

	// Fleet upload with 15% transport loss — the source of missing values.
	streamer, err := mcs.NewStreamer(fleet.X, fleet.Y, fleet.VX, fleet.VY, mcs.StreamPlan{
		LossRatio: 0.15,
		Seed:      7,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	reports := streamer.Reports()
	acked, err := mcs.SendReports(ctx, addr.String(), reports)
	if err != nil {
		return err
	}
	fmt.Printf("fleet uploaded %d reports (%d acknowledged), missing ratio %.1f%%\n",
		len(reports), acked, collector.MissingRatio()*100)

	if err := server.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}

	// Window closed: snapshot the batch and repair it.
	batch := collector.Snapshot()
	ds := itscs.Dataset{
		X:  toRowsWithNaN(batch.SX, batch.Existence),
		Y:  toRowsWithNaN(batch.SY, batch.Existence),
		VX: toRows(batch.VX),
		VY: toRows(batch.VY),
	}
	res, err := itscs.Run(ds)
	if err != nil {
		return err
	}

	// Score the repair of the dropped reports against the fleet's truth.
	var maeSum float64
	var repaired int
	for i := 0; i < participants; i++ {
		for j := 0; j < slots; j++ {
			if !res.Missing[i][j] {
				continue
			}
			dx := res.X[i][j] - fleet.X.At(i, j)
			dy := res.Y[i][j] - fleet.Y.At(i, j)
			maeSum += math.Hypot(dx, dy)
			repaired++
		}
	}
	fmt.Printf("repaired %d dropped reports, MAE %.1f m (converged=%v, %d iterations)\n",
		repaired, maeSum/float64(repaired), res.Converged, res.Iterations)
	return nil
}

func toRows(m *mat.Dense) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func toRowsWithNaN(m, existence *mat.Dense) [][]float64 {
	out := toRows(m)
	for i := range out {
		for j := range out[i] {
			if existence.At(i, j) == 0 {
				out[i][j] = math.NaN()
			}
		}
	}
	return out
}

// Streaming: continuous sliding-window fault detection.
//
// This example wires up the always-on service that the itscs-serve daemon
// runs: a fleet of taxis uploads corrupted location reports over TCP into
// the pipeline engine, which slices the stream into overlapping sliding
// windows (window W, hop H), runs DETECT→CORRECT→CHECK on every window as
// it closes — warm-starting CORRECT from the previous window's
// factorization — and publishes each result to a subscription, where it is
// scored against the ground-truth corruption.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/metrics"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
	"itscs/internal/trace"
)

// params sizes the scenario; the smoke test shrinks it.
type params struct {
	participants int
	slots        int // total streamed slots
	window       int // W: slots per detection window
	hop          int // H: stride between windows
	missing      float64
	faulty       float64
}

func main() {
	p := params{
		participants: 40,
		slots:        240,
		window:       120,
		hop:          40,
		missing:      0.15,
		faulty:       0.1,
	}
	if err := run(p, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(p params, out io.Writer) error {
	// Simulated fleet with transport loss and kilometer-scale faults.
	tc := trace.DefaultConfig()
	tc.Participants = p.participants
	tc.Slots = p.slots
	tc.Seed = 7
	fleet, err := trace.Generate(tc)
	if err != nil {
		return err
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = p.missing
	plan.FaultyRatio = p.faulty
	corrupted, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		return err
	}

	// The streaming engine: one worker keeps windows in order, so every
	// window after the first can warm-start from its predecessor.
	cfg := pipeline.DefaultConfig()
	cfg.Participants = p.participants
	cfg.WindowSlots = p.window
	cfg.HopSlots = p.hop
	cfg.Workers = 1
	// Observability, as itscs-serve wires it: anything that goes wrong
	// (dropped, failed, or slow windows) surfaces as a structured warning,
	// and every processed window leaves a trace span, printed at the end.
	logger, err := obs.NewLogger(out, obs.LogText, "warn")
	if err != nil {
		return err
	}
	cfg.Obs = &obs.LogObserver{Log: logger, SlowWindow: time.Minute}
	engine, err := pipeline.New(cfg)
	if err != nil {
		return err
	}
	// The buffer must hold every expected window: results are read only
	// after the stream ends.
	results, cancel := engine.Subscribe(p.slots / p.hop)
	defer cancel()

	// The TCP ingest front end, as run by itscs-serve.
	server := mcs.NewServer(engine)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.Serve() }()
	fmt.Fprintf(out, "ingest server listening on %s (window %d slots, hop %d)\n",
		addr, p.window, p.hop)

	// The fleet uploads every surviving report in slot order.
	var reports []mcs.Report
	for s := 0; s < p.slots; s++ {
		for i := 0; i < p.participants; i++ {
			if corrupted.Existence.At(i, s) == 0 {
				continue
			}
			reports = append(reports, mcs.Report{
				Fleet: "taxi", Participant: i, Slot: s,
				X: corrupted.SX.At(i, s), Y: corrupted.SY.At(i, s),
				VX: fleet.VX.At(i, s), VY: fleet.VY.At(i, s),
			})
		}
	}
	// Upload through the production mcs.Client — the same transport the
	// cluster router's forwarder uses: a bounded send buffer, automatic
	// reconnect with backoff, and per-report ok/err acknowledgements.
	client := mcs.NewClient(addr.String(), mcs.ClientOptions{QueueDepth: len(reports)})
	for _, r := range reports {
		if err := client.Send(r); err != nil {
			return err
		}
	}
	ctx, cancelSend := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelSend()
	if err := client.Flush(ctx); err != nil {
		return err
	}
	cst := client.Stats()
	if err := client.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet uploaded %d reports (%d acknowledged, %d dials, %d retries)\n",
		len(reports), cst.Acked, cst.Dials, cst.Retries)

	if err := server.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	// The stream has ended: force the tail window out, then let the engine
	// drain its queue; Close also ends the subscription, terminating the
	// loop below once the buffered results are consumed.
	if err := engine.Flush("taxi"); err != nil {
		return err
	}
	engine.Close()

	// Score each window against the ground-truth corruption. A flushed tail
	// window may extend past the generated timeline; score only the slots
	// that were actually streamed (the rest are all-missing anyway).
	for r := range results {
		end := r.EndSlot
		if end > p.slots {
			end = p.slots
		}
		d, err := r.Output.Detection.Slice(0, p.participants, 0, end-r.StartSlot)
		if err != nil {
			return err
		}
		f, err := corrupted.Faulty.Slice(0, p.participants, r.StartSlot, end)
		if err != nil {
			return err
		}
		e, err := corrupted.Existence.Slice(0, p.participants, r.StartSlot, end)
		if err != nil {
			return err
		}
		conf, err := metrics.Compare(d, f, e)
		if err != nil {
			return err
		}
		start := "cold"
		if r.WarmStarted {
			start = "warm"
		}
		fmt.Fprintf(out,
			"window %d [%4d,%4d): %4d flagged, precision %.3f, recall %.3f, %s start, %d iterations, %.0f ms\n",
			r.Seq, r.StartSlot, r.EndSlot, r.Flagged,
			conf.Precision(), conf.Recall(), start, r.Iterations, r.RunMS)
	}

	st := engine.Stats()
	fmt.Fprintf(out, "processed %d windows (%d warm-started, %d dropped under backpressure)\n",
		st.WindowsProcessed, st.WarmStarts, st.WindowsDropped)

	// The trace ring keeps a per-phase breakdown of the recent windows —
	// the same records itscs-serve exposes at GET /trace/{fleet}.
	spans, err := engine.Trace("taxi")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "trace (newest first):")
	for _, sp := range spans {
		fmt.Fprintf(out,
			"  window %d: wait %6.1f ms, detect %4.0f + correct %4.0f + check %4.0f ms, %d ASD sweeps\n",
			sp.Seq, sp.QueueWaitMS, sp.DetectMS, sp.CorrectMS, sp.CheckMS, sp.Sweeps)
	}
	return nil
}

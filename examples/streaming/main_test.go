package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamingExampleSmoke runs the example end to end on a shrunken
// fleet; it is sized to stay fast enough for -short CI runs.
func TestStreamingExampleSmoke(t *testing.T) {
	p := params{
		participants: 24,
		slots:        101,
		window:       60,
		hop:          20,
		missing:      0.1,
		faulty:       0.1,
	}
	var buf bytes.Buffer
	if err := run(p, &buf); err != nil {
		t.Fatalf("example failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"fleet uploaded",
		"window 0 [   0,  60)",
		"warm start",
		"processed",
		"trace (newest first):",
		"ASD sweeps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0 windows") {
		t.Errorf("no windows processed:\n%s", out)
	}
}

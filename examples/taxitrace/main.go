// Taxitrace: the paper's headline scenario end to end.
//
// Generate a paper-scale synthetic Shanghai taxi fleet (158 vehicles × 240
// slots), corrupt it with 20% missing values and 20% kilometers-scale
// faults, run I(TS,CS), and score detection precision/recall and
// reconstruction MAE against the known ground truth.
//
//	go run ./examples/taxitrace [-participants N] [-slots T] [-missing A] [-faulty B]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"itscs"
	"itscs/synthetic"
)

func main() {
	participants := flag.Int("participants", 158, "fleet size")
	slots := flag.Int("slots", 240, "time slots")
	missing := flag.Float64("missing", 0.2, "missing ratio alpha")
	faulty := flag.Float64("faulty", 0.2, "faulty ratio beta")
	flag.Parse()

	cfg := synthetic.DefaultFleetConfig()
	cfg.Participants = *participants
	cfg.Slots = *slots
	fleet, err := synthetic.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cor, err := fleet.Corrupt(synthetic.Corruption{
		MissingRatio: *missing,
		FaultyRatio:  *faulty,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := itscs.Run(cor.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Score against ground truth.
	var tp, fp, fn int
	var maeSum float64
	var maeCnt int
	for i := range res.Faulty {
		for j := range res.Faulty[i] {
			if !cor.TruthMissing[i][j] {
				switch {
				case res.Faulty[i][j] && cor.TruthFaulty[i][j]:
					tp++
				case res.Faulty[i][j]:
					fp++
				case cor.TruthFaulty[i][j]:
					fn++
				}
			}
			if cor.TruthMissing[i][j] || res.Faulty[i][j] {
				dx := res.X[i][j] - fleet.X[i][j]
				dy := res.Y[i][j] - fleet.Y[i][j]
				maeSum += math.Hypot(dx, dy)
				maeCnt++
			}
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	mae := maeSum / float64(maeCnt)

	fmt.Printf("fleet: %d taxis x %d slots, alpha=%.0f%% beta=%.0f%%\n",
		*participants, *slots, *missing*100, *faulty*100)
	fmt.Printf("framework: converged=%v in %d iterations (%.1fs)\n",
		res.Converged, res.Iterations, elapsed.Seconds())
	fmt.Printf("detection: precision=%.4f recall=%.4f (TP=%d FP=%d FN=%d)\n",
		precision, recall, tp, fp, fn)
	fmt.Printf("reconstruction: MAE=%.1f m over %d repaired cells\n", mae, maeCnt)
	fmt.Println("\npaper reference: >95% precision & recall even at alpha=beta=40%,")
	fmt.Println("MAE ~200 m at alpha<=30%, beta<=20% (SUVnet trace)")
}

// Quickstart: detect injected faults in a tiny hand-built trajectory.
//
// A single vehicle drives east at a steady 10 m/s. We delete two
// observations and corrupt two others with multi-kilometer jumps, then let
// I(TS,CS) find the faults and repair the track.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"itscs"
)

func main() {
	const slots = 40
	const speed = 10.0 // m/s east
	const tau = 30.0   // seconds per slot

	x := make([]float64, slots)
	y := make([]float64, slots)
	vx := make([]float64, slots)
	vy := make([]float64, slots)
	for j := 0; j < slots; j++ {
		x[j] = 1_000 + speed*tau*float64(j)
		y[j] = 5_000
		vx[j] = speed
	}

	// Two dropped reports and two kilometers-scale faults.
	x[7], y[7] = math.NaN(), math.NaN()
	x[23], y[23] = math.NaN(), math.NaN()
	x[12] += 4_500
	y[30] -= 6_200

	res, err := itscs.Run(
		itscs.Dataset{X: [][]float64{x}, Y: [][]float64{y}, VX: [][]float64{vx}, VY: [][]float64{vy}},
		itscs.WithDetectionWindow(7),
		itscs.WithRank(2),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d iterations\n\n", res.Iterations)
	fmt.Println("slot  status    observed x      repaired x")
	for j := 0; j < slots; j++ {
		status := "ok"
		switch {
		case res.Missing[0][j]:
			status = "missing"
		case res.Faulty[0][j]:
			status = "FAULTY"
		}
		observed := fmt.Sprintf("%10.0f", x[j])
		if math.IsNaN(x[j]) {
			observed = "        --"
		}
		if status == "ok" {
			continue // print only the interesting slots
		}
		fmt.Printf("%4d  %-8s %s      %10.0f\n", j, status, observed, res.X[0][j])
	}
}

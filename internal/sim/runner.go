package sim

import (
	"errors"
	"fmt"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/wal"
)

// runner owns the stormy half of a scenario: one engine "life" at a time,
// crashed and recovered on schedule and on injected WAL failures. All fault
// decisions flow through the single run goroutine, which is what keeps the
// injector's operation order — and so the whole storm — deterministic.
type runner struct {
	sc      Scenario
	dir     string
	reports []mcs.Report
	truth   *corrupt.Result

	in     *fault.Injector
	fsys   fault.FS
	walOpt wal.Options

	log     *wal.Log
	engine  *pipeline.Engine
	ledger  *reputation.Ledger // this life's trust ledger (nil unless sc.Reputation)
	results <-chan *pipeline.WindowResult
	cancel  func()

	recovered map[int]WindowOutcome
	collected int    // results received this life
	attempts  uint64 // ingest+replay calls this life
	lastCkpt  uint64 // WindowsClosed at the last checkpoint, this life

	acked    uint64 // cumulative successful WAL appends (ack semantics)
	lives    int
	crashes  int
	ckptErrs int

	finalEngine      pipeline.Stats
	finalWAL         wal.Stats
	finalLedger      []byte // the last life's serialized ledger
	finalLedgerStats *reputation.LedgerStats

	violations []string
}

// run drives the whole storm: open a life, stream with retries, crash on
// schedule and on injected append failures, and close gracefully.
func (r *runner) run() error {
	if err := r.openLife(); err != nil {
		return err
	}
	crashAt := map[int]bool{}
	for _, i := range r.sc.CrashAt {
		if i >= 0 && i < len(r.reports) {
			crashAt[i] = true
		}
	}
	for i, rep := range r.reports {
		if crashAt[i] {
			if err := r.crash(); err != nil {
				return err
			}
		}
		for {
			r.attempts++
			err := r.engine.Ingest(rep)
			if err == nil || errors.Is(err, pipeline.ErrLateReport) || errors.Is(err, mcs.ErrDuplicateReport) {
				// Late and duplicate rejections happen after the WAL append,
				// so all three are acknowledgements: the report is durable
				// (or already reflected in the stream).
				r.acked++
				break
			}
			if errors.Is(err, fault.ErrInjected) {
				// The log refused the write. A production daemon dies on a
				// failing WAL disk; the participant retries after recovery.
				if err := r.crash(); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("ingest report %d: %w", i, err)
		}
		if err := r.maybeCheckpoint(); err != nil {
			return err
		}
	}
	r.engine.Close()
	if err := r.drainClosed(); err != nil {
		return err
	}
	r.checkLife("final close")
	r.finalEngine = r.engine.Stats()
	if r.ledger != nil {
		blob, err := r.ledger.MarshalBinary()
		if err != nil {
			return fmt.Errorf("marshal final ledger: %w", err)
		}
		r.finalLedger = blob
		st := r.ledger.Stats()
		r.finalLedgerStats = &st
	}
	if err := r.log.Close(); err != nil && !errors.Is(err, fault.ErrInjected) {
		return fmt.Errorf("close wal: %w", err)
	}
	r.finalWAL = r.log.Stats()
	return nil
}

// openLife opens (or reopens) the log, rebuilds the engine from the newest
// checkpoint plus a log-tail replay, and checks the no-acked-loss
// invariant. Injected faults during the reopen are the storm continuing
// through the reboot; the machine just boots again.
func (r *runner) openLife() error {
	var log *wal.Log
	var err error
	for attempt := 0; ; attempt++ {
		log, err = wal.Open(r.dir, r.walOpt)
		if err == nil {
			break
		}
		if !errors.Is(err, fault.ErrInjected) || attempt >= 100 {
			return fmt.Errorf("reopen wal (life %d): %w", r.lives+1, err)
		}
	}
	r.lives++
	if got := log.AppendedIndex(); got < r.acked {
		r.violations = append(r.violations, fmt.Sprintf(
			"life %d: acked-report loss: log holds %d records, %d were acked", r.lives, got, r.acked))
	}
	cfg := engineConfig(r.sc, log)
	var ledger *reputation.Ledger
	if r.sc.Reputation {
		// A crash kills the in-memory ledger with the process; each life
		// builds a fresh one and restores it from the checkpoint blob, just
		// like the daemon.
		if ledger, err = reputation.New(reputation.DefaultConfig()); err != nil {
			log.Close()
			return err
		}
		cfg.Gate = ledger
		cfg.OnResult = ledger.Fold
	}
	engine, err := pipeline.New(cfg)
	if err != nil {
		log.Close()
		return err
	}
	from := uint64(0)
	ck, _, err := wal.LatestCheckpointFS(r.fsys, r.dir)
	switch {
	case err == nil:
		if rerr := engine.Restore(ck); rerr != nil {
			engine.Abort()
			log.Close()
			return fmt.Errorf("restore checkpoint (life %d): %w", r.lives, rerr)
		}
		if ledger != nil {
			if rerr := ledger.Restore(ck.Reputation); rerr != nil {
				engine.Abort()
				log.Close()
				return fmt.Errorf("restore ledger (life %d): %w", r.lives, rerr)
			}
		}
		from = ck.LogIndex
	case errors.Is(err, wal.ErrNoCheckpoint):
		// Cold start: replay the whole log.
	default:
		engine.Abort()
		log.Close()
		return fmt.Errorf("latest checkpoint (life %d): %w", r.lives, err)
	}
	if _, err := log.Replay(from, func(_ uint64, rep mcs.Report) error {
		r.attempts++
		// Duplicate and late rejections are expected: records below the
		// checkpoint's horizon replay as no-ops.
		_ = engine.Replay(rep)
		return nil
	}); err != nil {
		engine.Abort()
		log.Close()
		return fmt.Errorf("replay log (life %d): %w", r.lives, err)
	}
	r.log, r.engine, r.ledger = log, engine, ledger
	r.results, r.cancel = engine.Subscribe(256)
	r.collected = 0
	r.lastCkpt = engine.Stats().WindowsClosed
	return nil
}

// crash kills the current life the way SIGKILL would — no flush, queued
// windows discarded — and boots the next one from disk.
func (r *runner) crash() error {
	r.crashes++
	r.engine.Abort()
	if err := r.drainClosed(); err != nil {
		return err
	}
	r.checkLife(fmt.Sprintf("crash %d", r.crashes))
	_ = r.log.Close() // a failing final fsync is part of the crash
	return r.openLife()
}

// maybeCheckpoint writes a checkpoint when enough windows have closed. The
// dispatch queue is drained first so the newest warm factors are always in
// the snapshot; injected persistence failures are absorbed and counted, as
// the daemon absorbs them.
func (r *runner) maybeCheckpoint() error {
	st := r.engine.Stats()
	if st.WindowsClosed-r.lastCkpt < r.sc.CheckpointEvery {
		return nil
	}
	if err := r.waitFor(int(st.WindowsClosed - st.WindowsEmpty)); err != nil {
		return err
	}
	ck, err := r.engine.Checkpoint()
	if err != nil {
		if errors.Is(err, fault.ErrInjected) {
			r.ckptErrs++
			return nil
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	if r.ledger != nil {
		// waitFor drained every non-empty closed window, and folds land
		// before WindowsProcessed moves, so the blob is consistent with the
		// shard state captured above.
		if ck.Reputation, err = r.ledger.MarshalBinary(); err != nil {
			return fmt.Errorf("marshal ledger: %w", err)
		}
	}
	if _, err := wal.WriteCheckpointFS(r.fsys, r.dir, ck); err != nil {
		if errors.Is(err, fault.ErrInjected) {
			r.ckptErrs++
			return nil
		}
		return fmt.Errorf("write checkpoint: %w", err)
	}
	if _, err := wal.PruneCheckpointsFS(r.fsys, r.dir, 2); err != nil {
		if !errors.Is(err, fault.ErrInjected) {
			return fmt.Errorf("prune checkpoints: %w", err)
		}
		r.ckptErrs++
	}
	if _, err := r.log.Compact(ck.LogIndex); err != nil {
		if !errors.Is(err, fault.ErrInjected) {
			return fmt.Errorf("compact: %w", err)
		}
		r.ckptErrs++
	}
	r.lastCkpt = st.WindowsClosed
	return nil
}

// waitFor blocks until `expected` results have been received this life.
func (r *runner) waitFor(expected int) error {
	deadline := time.After(r.sc.Timeout)
	for r.collected < expected {
		select {
		case res, ok := <-r.results:
			if !ok {
				return fmt.Errorf("result stream closed with %d of %d windows", r.collected, expected)
			}
			if err := r.take(res); err != nil {
				return err
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for window %d of %d", r.collected+1, expected)
		}
	}
	return nil
}

// drainClosed collects every result still buffered after the engine has
// shut down and its subscription channel closed.
func (r *runner) drainClosed() error {
	deadline := time.After(r.sc.Timeout)
	for {
		select {
		case res, ok := <-r.results:
			if !ok {
				return nil
			}
			if err := r.take(res); err != nil {
				return err
			}
		case <-deadline:
			return errors.New("timed out draining results")
		}
	}
}

// take scores one window and records it. A window re-processed after a
// crash overwrites its first outcome; determinism makes them identical,
// and verifyWindows compares the survivor against the golden run.
func (r *runner) take(res *pipeline.WindowResult) error {
	out, err := outcome(res, r.truth)
	if err != nil {
		return err
	}
	r.recovered[out.Seq] = out
	r.collected++
	return nil
}

// checkLife asserts the metrics-conservation invariants on the life that
// just ended: every ingest attempt landed in exactly one of
// ingested/rejected, and every closed window in exactly one terminal state.
func (r *runner) checkLife(stage string) {
	st := r.engine.Stats()
	if st.Ingested+st.Rejected != r.attempts {
		r.violations = append(r.violations, fmt.Sprintf(
			"%s (life %d): ingested %d + rejected %d != %d attempts",
			stage, r.lives, st.Ingested, st.Rejected, r.attempts))
	}
	if st.WindowsClosed != st.WindowsEmpty+st.WindowsDropped+st.WindowsProcessed+st.WindowsFailed {
		r.violations = append(r.violations, fmt.Sprintf(
			"%s (life %d): windows closed %d != empty %d + dropped %d + processed %d + failed %d",
			stage, r.lives, st.WindowsClosed, st.WindowsEmpty, st.WindowsDropped,
			st.WindowsProcessed, st.WindowsFailed))
	}
	if st.ReportsStamped+st.ReportsUnstamped != st.Ingested {
		r.violations = append(r.violations, fmt.Sprintf(
			"%s (life %d): stamped %d + unstamped %d != ingested %d — freshness partition broken (replay re-stamp?)",
			stage, r.lives, st.ReportsStamped, st.ReportsUnstamped, st.Ingested))
	}
	r.attempts = 0
}

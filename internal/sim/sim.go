// Package sim is the deterministic fault-injection simulation harness: it
// drives full ingest → WAL → detect → checkpoint → crash → recover loops
// under seeded fault plans and checks the system's durability invariants
// after every run.
//
// A Scenario describes one storm: the fleet shape, the corruption ratios,
// a seeded fault.Plan for the filesystem, and a schedule of process
// crashes. Run replays the scenario twice in spirit — once fault-free (the
// golden run) and once through the weather — and then verifies:
//
//   - No acked report is lost: every report the WAL acknowledged before a
//     crash is present in the reopened log (the no-acked-loss invariant).
//   - Metrics conserve: every ingest attempt lands in exactly one of
//     ingested/rejected, and every closed window in exactly one of
//     empty/dropped/processed/failed, in every life including crashed ones.
//   - Detection is unharmed: after any number of crashes and recoveries,
//     every window's flag set and F1 equal the golden run's, window for
//     window.
//
// Determinism is the point: the same Scenario (same seeds) replays the
// same fault sequence, the same crash points, and the same post-recovery
// state, so a chaos failure reproduces from a single integer. The runner
// keeps every fault decision on one goroutine — ingestion is
// single-threaded, the engine runs one worker, and checkpoints are taken
// inline after the dispatch queue drains — which is what makes the
// injector's operation order (and therefore its RNG stream) stable.
package sim

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/metrics"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/trace"
	"itscs/internal/wal"
)

// Scenario is one seeded chaos run. The zero value plus a Seed is a valid
// fault-free scenario; fillDefaults supplies the shape.
type Scenario struct {
	// Name labels the scenario in failures and reports.
	Name string
	// Seed drives every random choice: trace generation, corruption, and
	// (unless Faults.Seed is set) the fault schedule.
	Seed int64

	// Participants, WindowSlots, HopSlots and Slots shape the stream
	// (defaults 10, 24, 8, WindowSlots+3·HopSlots). Slots−WindowSlots must
	// be a multiple of HopSlots so the final flushed window stays inside
	// the ground-truth matrices.
	Participants int
	WindowSlots  int
	HopSlots     int
	Slots        int

	// MissingRatio and FaultyRatio parameterize the corruption (defaults
	// 0.15 each).
	MissingRatio float64
	FaultyRatio  float64

	// Faults is the filesystem fault plan. Injected WAL-append failures
	// crash the process (a real daemon panics on EIO from its log);
	// injected checkpoint failures are absorbed, as the daemon absorbs
	// them. A zero plan injects nothing.
	Faults fault.Plan

	// CrashAt schedules process crashes before the i-th acked report, on
	// top of whatever crashes the fault plan provokes. Out-of-range
	// entries are ignored.
	CrashAt []int

	// CheckpointEvery writes a checkpoint after this many closed windows
	// (default 1). The runner drains the dispatch queue first so warm
	// factors land in the checkpoint deterministically.
	CheckpointEvery uint64

	// Reputation wires a trust ledger into both runs (admission gate plus
	// window-fold observer, checkpointed and restored like shard state).
	// Run then verifies a fourth invariant: after any number of crashes
	// the stormy ledger is bit-identical to the golden run's.
	Reputation bool

	// Sync selects the stormy run's WAL fsync policy (the zero value is
	// SyncAlways). SyncInterval models the daemon's -fsync interval mode:
	// a process crash still loses nothing because close flushes, so every
	// invariant must hold under it too.
	Sync wal.SyncPolicy

	// Timeout bounds every wait on the result stream (default 2 minutes);
	// it is a liveness backstop, not a tuning knob.
	Timeout time.Duration
}

func (sc *Scenario) fillDefaults() {
	if sc.Participants <= 0 {
		sc.Participants = 10
	}
	if sc.WindowSlots <= 0 {
		sc.WindowSlots = 24
	}
	if sc.HopSlots <= 0 {
		sc.HopSlots = 8
	}
	if sc.Slots <= 0 {
		sc.Slots = sc.WindowSlots + 3*sc.HopSlots
	}
	if sc.MissingRatio == 0 {
		sc.MissingRatio = 0.15
	}
	if sc.FaultyRatio == 0 {
		sc.FaultyRatio = 0.15
	}
	if sc.Faults.Seed == 0 {
		sc.Faults.Seed = sc.Seed
	}
	if sc.CheckpointEvery == 0 {
		sc.CheckpointEvery = 1
	}
	if sc.Timeout <= 0 {
		sc.Timeout = 2 * time.Minute
	}
}

// WindowOutcome is one window's detection verdict, comparable across runs.
type WindowOutcome struct {
	Seq       int
	StartSlot int
	EndSlot   int
	Flags     []pipeline.CellFlag
	F1        float64
}

// Result is everything a chaos run produced, for reporting and for
// comparing two runs of the same scenario bit for bit.
type Result struct {
	Name string
	Seed int64

	// Golden and Recovered map window sequence numbers to outcomes for the
	// fault-free and the stormy run respectively.
	Golden    map[int]WindowOutcome
	Recovered map[int]WindowOutcome

	// Faults is the injected-fault log, in injection order.
	Faults []fault.Record

	// Lives counts engine incarnations (1 = never crashed); Crashes counts
	// scheduled plus fault-provoked crashes; CheckpointErrs counts
	// checkpoint/prune/compact attempts absorbed after injected failures.
	Lives          int
	Crashes        int
	CheckpointErrs int

	// Acked counts reports the WAL acknowledged across all lives.
	Acked uint64

	// Engine and WAL snapshot the final life's instrumentation.
	Engine pipeline.Stats
	WAL    wal.Stats

	// Reputation snapshots the stormy run's final trust ledger (nil unless
	// Scenario.Reputation).
	Reputation *reputation.LedgerStats
}

// DefaultScenarios is the standing chaos suite: one scenario per fault
// family, all derived from a single base seed.
func DefaultScenarios(seed int64) []Scenario {
	return []Scenario{
		{Name: "clean-crash", Seed: seed, Reputation: true, CrashAt: []int{97}},
		{Name: "double-crash", Seed: seed, Reputation: true, CrashAt: []int{60, 180}},
		{Name: "interval-fsync", Seed: seed, Reputation: true, Sync: wal.SyncInterval,
			CrashAt: []int{80, 200}},
		{Name: "torn-writes", Seed: seed, Reputation: true,
			Faults: fault.Plan{PWriteErr: 0.02, PTornWrite: 0.75, After: 25, MaxFaults: 4}},
		{Name: "sync-errors", Seed: seed, Reputation: true,
			Faults: fault.Plan{PSyncErr: 0.03, After: 25, MaxFaults: 4}},
		{Name: "checkpoint-chaos", Seed: seed, Reputation: true, CrashAt: []int{120},
			Faults: fault.Plan{PRenameErr: 0.3, PRemoveErr: 0.2, After: 10, MaxFaults: 6}},
		{Name: "mixed-weather", Seed: seed, Reputation: true, CrashAt: []int{140},
			Faults: fault.Plan{PWriteErr: 0.01, PTornWrite: 0.5, PSyncErr: 0.01,
				PRenameErr: 0.1, After: 30, MaxFaults: 5}},
	}
}

// Run executes one scenario in dir (which must be empty) and verifies the
// harness invariants. It returns the Result alongside any invariant
// violations, which are joined into the error.
func Run(dir string, sc Scenario) (*Result, error) {
	sc.fillDefaults()
	if (sc.Slots-sc.WindowSlots)%sc.HopSlots != 0 {
		return nil, fmt.Errorf("sim: slots %d not aligned to window %d + k·hop %d",
			sc.Slots, sc.WindowSlots, sc.HopSlots)
	}
	reports, truth, err := buildStream(sc)
	if err != nil {
		return nil, err
	}
	res := &Result{Name: sc.Name, Seed: sc.Seed}
	var goldenLedger []byte
	res.Golden, goldenLedger, err = goldenRun(sc, reports, truth)
	if err != nil {
		return nil, fmt.Errorf("sim: golden run: %w", err)
	}
	r := &runner{
		sc:        sc,
		dir:       dir,
		reports:   reports,
		truth:     truth,
		in:        fault.NewInjector(sc.Faults),
		recovered: map[int]WindowOutcome{},
	}
	r.fsys = fault.Inject(fault.OS(), r.in)
	r.walOpt = wal.DefaultOptions()
	r.walOpt.FS = r.fsys
	r.walOpt.Sync = sc.Sync
	if err := r.run(); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	res.Recovered = r.recovered
	res.Faults = r.in.Faults()
	res.Lives = r.lives
	res.Crashes = r.crashes
	res.CheckpointErrs = r.ckptErrs
	res.Acked = r.acked
	res.Engine = r.finalEngine
	res.WAL = r.finalWAL
	res.Reputation = r.finalLedgerStats

	violations := append(r.violations, verifyWindows(res.Golden, res.Recovered)...)
	if sc.Reputation && !bytes.Equal(goldenLedger, r.finalLedger) {
		violations = append(violations, fmt.Sprintf(
			"reputation ledger diverges from golden after recovery: %d vs %d bytes",
			len(r.finalLedger), len(goldenLedger)))
	}
	if len(violations) > 0 {
		return res, fmt.Errorf("sim: %s: invariants violated:\n  %s",
			sc.Name, strings.Join(violations, "\n  "))
	}
	return res, nil
}

// buildStream generates the seeded fleet, corrupts it, and flattens the
// observed cells into slot-ordered reports as the transport would deliver
// them.
func buildStream(sc Scenario) ([]mcs.Report, *corrupt.Result, error) {
	tcfg := trace.DefaultConfig()
	tcfg.Participants = sc.Participants
	tcfg.Slots = sc.Slots
	tcfg.Seed = sc.Seed
	fleet, err := trace.Generate(tcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: generate fleet: %w", err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = sc.MissingRatio
	plan.FaultyRatio = sc.FaultyRatio
	plan.Seed = sc.Seed
	truth, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: corrupt fleet: %w", err)
	}
	var reports []mcs.Report
	for s := 0; s < sc.Slots; s++ {
		for i := 0; i < sc.Participants; i++ {
			if truth.Existence.At(i, s) == 0 {
				continue
			}
			reports = append(reports, mcs.Report{
				Fleet:       "sim",
				Participant: i,
				Slot:        s,
				X:           truth.SX.At(i, s),
				Y:           truth.SY.At(i, s),
				VX:          fleet.VX.At(i, s),
				VY:          fleet.VY.At(i, s),
			})
		}
	}
	return reports, truth, nil
}

// engineConfig shapes the streaming engine for a scenario. One worker and a
// roomy queue keep window processing in dispatch order with no drops, which
// is what makes warm-start chains — and therefore results — deterministic.
func engineConfig(sc Scenario, log pipeline.ReportLog) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Participants = sc.Participants
	cfg.WindowSlots = sc.WindowSlots
	cfg.HopSlots = sc.HopSlots
	cfg.Workers = 1
	cfg.QueueDepth = 64
	cfg.Log = log
	return cfg
}

// goldenRun streams every report through an undamaged, log-free engine and
// records each window's outcome: the reference the stormy run must match.
// With Scenario.Reputation it also folds every window into a fresh trust
// ledger and returns its serialized form, the reference the stormy ledger
// must match bit for bit.
func goldenRun(sc Scenario, reports []mcs.Report, truth *corrupt.Result) (map[int]WindowOutcome, []byte, error) {
	cfg := engineConfig(sc, nil)
	var ledger *reputation.Ledger
	if sc.Reputation {
		var err error
		if ledger, err = reputation.New(reputation.DefaultConfig()); err != nil {
			return nil, nil, err
		}
		cfg.Gate = ledger
		cfg.OnResult = ledger.Fold
	}
	engine, err := pipeline.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	results, cancel := engine.Subscribe(256)
	defer cancel()
	for i, r := range reports {
		if err := engine.Ingest(r); err != nil {
			return nil, nil, fmt.Errorf("ingest report %d: %w", i, err)
		}
	}
	engine.Close()
	golden := map[int]WindowOutcome{}
	deadline := time.After(sc.Timeout)
	for {
		select {
		case res, ok := <-results:
			if !ok {
				if len(golden) == 0 {
					return nil, nil, errors.New("produced no windows")
				}
				var blob []byte
				if ledger != nil {
					if blob, err = ledger.MarshalBinary(); err != nil {
						return nil, nil, err
					}
				}
				return golden, blob, nil
			}
			out, err := outcome(res, truth)
			if err != nil {
				return nil, nil, err
			}
			golden[out.Seq] = out
		case <-deadline:
			return nil, nil, errors.New("timed out collecting windows")
		}
	}
}

// outcome scores one window result against the ground truth.
func outcome(res *pipeline.WindowResult, truth *corrupt.Result) (WindowOutcome, error) {
	n, slots := truth.Faulty.Dims()
	if res.EndSlot > slots {
		return WindowOutcome{}, fmt.Errorf("window [%d,%d) exceeds ground truth width %d",
			res.StartSlot, res.EndSlot, slots)
	}
	f, err := truth.Faulty.Slice(0, n, res.StartSlot, res.EndSlot)
	if err != nil {
		return WindowOutcome{}, err
	}
	ex, err := truth.Existence.Slice(0, n, res.StartSlot, res.EndSlot)
	if err != nil {
		return WindowOutcome{}, err
	}
	conf, err := metrics.Compare(res.Output.Detection, f, ex)
	if err != nil {
		return WindowOutcome{}, err
	}
	return WindowOutcome{
		Seq:       res.Seq,
		StartSlot: res.StartSlot,
		EndSlot:   res.EndSlot,
		Flags:     res.Flags,
		F1:        conf.F1(),
	}, nil
}

// verifyWindows checks the per-window F1/flag equality invariant.
func verifyWindows(golden, recovered map[int]WindowOutcome) []string {
	var v []string
	if len(recovered) != len(golden) {
		v = append(v, fmt.Sprintf("recovered %d windows, golden %d", len(recovered), len(golden)))
	}
	for seq, g := range golden {
		got, ok := recovered[seq]
		if !ok {
			v = append(v, fmt.Sprintf("window seq %d missing after recovery", seq))
			continue
		}
		if got.StartSlot != g.StartSlot || got.EndSlot != g.EndSlot {
			v = append(v, fmt.Sprintf("window seq %d spans [%d,%d), golden [%d,%d)",
				seq, got.StartSlot, got.EndSlot, g.StartSlot, g.EndSlot))
			continue
		}
		if !flagsEqual(got.Flags, g.Flags) {
			v = append(v, fmt.Sprintf("window seq %d flags diverge: %d flagged vs golden %d",
				seq, len(got.Flags), len(g.Flags)))
		}
		if math.Float64bits(got.F1) != math.Float64bits(g.F1) {
			v = append(v, fmt.Sprintf("window seq %d F1 %.6f != golden %.6f", seq, got.F1, g.F1))
		}
	}
	return v
}

func flagsEqual(a, b []pipeline.CellFlag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package sim

import (
	"flag"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"itscs/internal/fault"
	"itscs/internal/wal"
)

// The suite is steerable from the command line without recompiling:
//
//	go test ./internal/sim -args -seed=42 -scenarios=torn-writes -chaos-seeds=10
var (
	baseSeed   = flag.Int64("seed", 1, "base seed for the scenario suite")
	scenarios  = flag.String("scenarios", "", "comma-separated scenario names to run (default all)")
	chaosSeeds = flag.Int("chaos-seeds", 3, "number of seeds for TestChaos")
)

// normalize strips the run directory from fault records so two runs of the
// same scenario in different temp dirs compare equal.
func normalize(recs []fault.Record) []fault.Record {
	out := make([]fault.Record, len(recs))
	for i, r := range recs {
		r.Name = filepath.Base(r.Name)
		out[i] = r
	}
	return out
}

func selected(name string) bool {
	if *scenarios == "" {
		return true
	}
	for _, want := range strings.Split(*scenarios, ",") {
		if strings.TrimSpace(want) == name {
			return true
		}
	}
	return false
}

// TestScenarios runs the standing chaos suite at the base seed. Run itself
// checks every invariant — no acked loss, metrics conservation, per-window
// F1/flag equality with the golden run — so a nil error is the assertion.
func TestScenarios(t *testing.T) {
	for _, sc := range DefaultScenarios(*baseSeed) {
		if !selected(sc.Name) {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(t.TempDir(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.CrashAt) > 0 && res.Crashes < len(sc.CrashAt) {
				t.Errorf("crashed %d times, scheduled %d", res.Crashes, len(sc.CrashAt))
			}
			if res.Lives != res.Crashes+1 {
				t.Errorf("%d lives after %d crashes", res.Lives, res.Crashes)
			}
			if res.Acked != uint64(res.Engine.Ingested+res.Engine.Rejected) && res.Crashes == 0 {
				t.Errorf("acked %d but final life saw %d attempts",
					res.Acked, res.Engine.Ingested+res.Engine.Rejected)
			}
			t.Logf("%s: %d lives, %d crashes, %d faults injected, %d checkpoint errors, %d windows",
				sc.Name, res.Lives, res.Crashes, len(res.Faults), res.CheckpointErrs, len(res.Recovered))
		})
	}
}

// TestDeterminism replays the stormiest scenario twice and demands the runs
// match bit for bit: same injected faults in the same order, same crash
// count, same acks, and identical per-window outcomes. This is the
// reproduce-from-one-integer guarantee the chaos suite rests on.
func TestDeterminism(t *testing.T) {
	var sc Scenario
	for _, c := range DefaultScenarios(*baseSeed) {
		if c.Name == "mixed-weather" {
			sc = c
		}
	}
	if sc.Name == "" {
		t.Fatal("mixed-weather scenario missing from DefaultScenarios")
	}
	a, err := Run(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := normalize(a.Faults), normalize(b.Faults); !reflect.DeepEqual(fa, fb) {
		t.Errorf("fault sequences diverge:\n  run A: %v\n  run B: %v", fa, fb)
	}
	if a.Lives != b.Lives || a.Crashes != b.Crashes || a.Acked != b.Acked {
		t.Errorf("lifecycle diverges: lives %d/%d, crashes %d/%d, acked %d/%d",
			a.Lives, b.Lives, a.Crashes, b.Crashes, a.Acked, b.Acked)
	}
	if !reflect.DeepEqual(a.Recovered, b.Recovered) {
		t.Error("recovered window outcomes diverge between identical runs")
	}
	if a.CheckpointErrs != b.CheckpointErrs {
		t.Errorf("checkpoint errors diverge: %d vs %d", a.CheckpointErrs, b.CheckpointErrs)
	}
}

// TestFaultFreeBaseline checks the harness itself is honest: with no fault
// plan and no crashes, the stormy path is just the durable path, and must
// report one life, no faults, and full golden agreement.
func TestFaultFreeBaseline(t *testing.T) {
	res, err := Run(t.TempDir(), Scenario{Name: "baseline", Seed: *baseSeed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lives != 1 || res.Crashes != 0 || len(res.Faults) != 0 {
		t.Fatalf("baseline not quiet: %d lives, %d crashes, %d faults",
			res.Lives, res.Crashes, len(res.Faults))
	}
	if len(res.Recovered) == 0 {
		t.Fatal("baseline produced no windows")
	}
}

// TestReputationFsyncPolicies pins the ledger-durability claim by name:
// after two crashes and recoveries the trust ledger must be bit-identical
// to the golden run's under both fsync policies the daemon ships (Run
// itself performs the equality check; a nil error is the assertion).
func TestReputationFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"always", wal.SyncAlways},
		{"interval", wal.SyncInterval},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(t.TempDir(), Scenario{
				Name: "rep-fsync-" + tc.name, Seed: *baseSeed,
				Reputation: true, Sync: tc.sync, CrashAt: []int{60, 180},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashes < 2 {
				t.Errorf("crashed %d times, scheduled 2", res.Crashes)
			}
			if res.Reputation == nil || res.Reputation.Folded == 0 {
				t.Fatalf("final ledger is empty: %+v", res.Reputation)
			}
		})
	}
}

// TestChaos sweeps seeds: every seed gets the full default suite, and every
// run must hold every invariant. CI runs this with -chaos-seeds=10; locally
// the default keeps it quick. -short trims to a single seed.
func TestChaos(t *testing.T) {
	seeds := *chaosSeeds
	if testing.Short() && seeds > 1 {
		seeds = 1
	}
	for s := 0; s < seeds; s++ {
		seed := *baseSeed + int64(s)*7919 // spread seeds apart; 7919 is just a prime
		for _, sc := range DefaultScenarios(seed) {
			if !selected(sc.Name) {
				continue
			}
			sc := sc
			t.Run(sc.Name+"/seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
				if _, err := Run(t.TempDir(), sc); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

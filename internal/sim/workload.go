package sim

import (
	"fmt"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
)

// FleetWorkload is one fleet's deterministic synthetic stream: the
// corrupted reports in transport delivery order plus the ground truth to
// score detections against. Cluster tests build one per fleet (distinct
// seeds) and stream them through routers and backends, then compare
// per-window outcomes to a single-node golden run with VerifyWindows.
type FleetWorkload struct {
	Fleet   string
	Reports []mcs.Report
	Truth   *corrupt.Result
}

// BuildWorkload generates the scenario's fleet under the given name. The
// same scenario and name always produce the same bytes.
func BuildWorkload(fleet string, sc Scenario) (*FleetWorkload, error) {
	sc.fillDefaults()
	if (sc.Slots-sc.WindowSlots)%sc.HopSlots != 0 {
		return nil, fmt.Errorf("sim: slots %d not aligned to window %d + k·hop %d",
			sc.Slots, sc.WindowSlots, sc.HopSlots)
	}
	reports, truth, err := buildStream(sc)
	if err != nil {
		return nil, err
	}
	for i := range reports {
		reports[i].Fleet = fleet
	}
	return &FleetWorkload{Fleet: fleet, Reports: reports, Truth: truth}, nil
}

// Outcome scores one window result against the workload's ground truth.
func Outcome(res *pipeline.WindowResult, truth *corrupt.Result) (WindowOutcome, error) {
	return outcome(res, truth)
}

// VerifyWindows checks two runs of the same workload window for window —
// same spans, bitwise-equal flags and F1 — returning human-readable
// violations (empty means identical).
func VerifyWindows(golden, got map[int]WindowOutcome) []string {
	return verifyWindows(golden, got)
}

// GoldenRun streams the workload through a fresh deterministic single-node
// engine (one worker, deep queue — the configuration under which window
// order, warm-start chains, and therefore results are reproducible) and
// returns every window's outcome keyed by sequence number.
func GoldenRun(w *FleetWorkload, sc Scenario) (map[int]WindowOutcome, error) {
	sc.fillDefaults()
	golden, _, err := goldenRun(sc, w.Reports, w.Truth)
	return golden, err
}

// EngineConfig exposes the deterministic engine shape GoldenRun uses, so a
// cluster test can give its backends the exact same configuration.
func EngineConfig(sc Scenario) pipeline.Config {
	sc.fillDefaults()
	return engineConfig(sc, nil)
}

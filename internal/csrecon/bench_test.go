package csrecon

import (
	"fmt"
	"math"
	"testing"

	"itscs/internal/corrupt"
	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/trace"
)

// benchFixture builds a corrupted fleet with an oracle trust mask (exactly
// the clean observed cells) so reconstruction quality is isolated from
// detection quality.
type benchFixture struct {
	truthX *mat.Dense
	s      *mat.Dense
	b      *mat.Dense
	avgV   *mat.Dense
}

func newBenchFixture(b *testing.B, alpha, beta float64) *benchFixture {
	b.Helper()
	cfg := trace.DefaultConfig()
	cfg.Participants = 60
	cfg.Slots = 120
	fleet, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = alpha
	plan.FaultyRatio = beta
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		b.Fatal(err)
	}
	n, t := fleet.X.Dims()
	trust := mat.New(n, t)
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if res.Existence.At(i, j) == 1 && res.Faulty.At(i, j) == 0 {
				trust.Set(i, j, 1)
			}
		}
	}
	return &benchFixture{
		truthX: fleet.X,
		s:      res.SX,
		b:      trust,
		avgV:   motion.AverageVelocity(fleet.VX),
	}
}

func (f *benchFixture) mae(rec *mat.Dense) float64 {
	n, t := f.truthX.Dims()
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if f.b.At(i, j) == 0 {
				sum += math.Abs(f.truthX.At(i, j) - rec.At(i, j))
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// BenchmarkReconstructVariants measures time and accuracy of the three
// objective variants on the same workload.
func BenchmarkReconstructVariants(b *testing.B) {
	f := newBenchFixture(b, 0.2, 0.2)
	for _, variant := range []Variant{VariantBasic, VariantTemporal, VariantVelocityTemporal} {
		b.Run(variant.String(), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Variant = variant
			var avgV *mat.Dense
			if variant == VariantVelocityTemporal {
				avgV = f.avgV
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := Reconstruct(f.s, f.b, avgV, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(f.mae(rec), "MAE_m")
				}
			}
		})
	}
}

// BenchmarkWarmStartVsRandom is the DESIGN.md ablation for §III-C.4: the
// nearest-fill + SVD warm start against random initialization, at the same
// iteration budget.
func BenchmarkWarmStartVsRandom(b *testing.B) {
	f := newBenchFixture(b, 0.3, 0.2)
	for _, random := range []bool{false, true} {
		name := "warm"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			opt := DefaultOptions()
			opt.Variant = VariantVelocityTemporal
			opt.RandomInit = random
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ReconstructDetailed(f.s, f.b, f.avgV, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(f.mae(res.SHat), "MAE_m")
					b.ReportMetric(float64(res.Iterations), "sweeps")
					b.ReportMetric(res.ObjectiveTrace[0], "initial_objective")
				}
			}
		})
	}
}

// BenchmarkRankSweep is the DESIGN.md rank-bound ablation: reconstruction
// quality and cost as the factorization rank grows past the automatic
// energy-based choice.
func BenchmarkRankSweep(b *testing.B) {
	f := newBenchFixture(b, 0.2, 0.2)
	for _, rank := range []int{4, 8, 16, 32} {
		b.Run(rankName(rank), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Variant = VariantVelocityTemporal
			opt.Rank = rank
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := Reconstruct(f.s, f.b, f.avgV, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(f.mae(rec), "MAE_m")
				}
			}
		})
	}
}

func rankName(r int) string {
	return fmt.Sprintf("rank%02d", r)
}

// sweepFixture builds a problem and warm factors for the raw ASD sweep
// benchmarks. RandomInit sidesteps the O(min(n,t)³) SVD warm start, which
// is not what these benchmarks measure.
func sweepFixture(b *testing.B, n, t, rank int) (*problem, *mat.Dense, *mat.Dense) {
	b.Helper()
	x, v := lowRankFixture(n, t, 7)
	mask := dropCells(n, t, n*t/5, 8)
	s, err := x.Hadamard(mask)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Variant = VariantVelocityTemporal
	opt.Rank = rank
	opt.RandomInit = true
	prob, err := newProblem(s, mask, motion.AverageVelocity(v), opt, n, t)
	if err != nil {
		b.Fatal(err)
	}
	l, r, err := initFactors(s, mask, opt)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: allocate the workspace so the timed loop is steady state.
	if _, err := prob.step(l, r, true); err != nil {
		b.Fatal(err)
	}
	if _, err := prob.step(l, r, false); err != nil {
		b.Fatal(err)
	}
	return prob, l, r
}

// BenchmarkASDSweep measures one full L+R ASD sweep at paper scale
// (158×240, the SUVnet evaluation dimensions) and fleet scale (1000×960)
// across worker budgets. ReportAllocs backs the zero-allocation claim: at
// workers=1 the steady-state sweep must report 0 B/op.
func BenchmarkASDSweep(b *testing.B) {
	scales := []struct {
		name    string
		n, t    int
		workers []int
	}{
		{"paper158x240", 158, 240, []int{1, 2, 4, 8}},
		{"fleet1000x960", 1000, 960, []int{1, 2, 4, 8}},
	}
	for _, sc := range scales {
		if sc.n >= 1000 && testing.Short() {
			continue
		}
		prob, l, r := sweepFixture(b, sc.n, sc.t, 16)
		for _, workers := range sc.workers {
			b.Run(fmt.Sprintf("%s/workers%d", sc.name, workers), func(b *testing.B) {
				defer mat.SetParallelism(mat.SetParallelism(workers))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prob.step(l, r, true); err != nil {
						b.Fatal(err)
					}
					if _, err := prob.step(l, r, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLineSearchVsFixedStep is the DESIGN.md ablation over the ASD
// step-size rule: the exact analytic line search against hand-tuned fixed
// steps at the same sweep budget. The exact search needs no tuning and
// converges in fewer sweeps.
func BenchmarkLineSearchVsFixedStep(b *testing.B) {
	f := newBenchFixture(b, 0.2, 0.2)
	cases := []struct {
		name string
		step float64
	}{
		{"exact", 0},
		{"fixed1e-7", 1e-7},
		{"fixed1e-6", 1e-6},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			opt := DefaultOptions()
			opt.Variant = VariantVelocityTemporal
			opt.FixedStepSize = c.step
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ReconstructDetailed(f.s, f.b, f.avgV, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(f.mae(res.SHat), "MAE_m")
					b.ReportMetric(float64(res.Iterations), "sweeps")
				}
			}
		})
	}
}

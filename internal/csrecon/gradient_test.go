package csrecon

import (
	"math"
	"testing"
	"time"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

// numericalGradient estimates ∂f/∂M(i,j) by central differences.
func numericalGradient(f func() float64, m *mat.Dense, h float64) *mat.Dense {
	n, t := m.Dims()
	grad := mat.New(n, t)
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			orig := m.At(i, j)
			m.Set(i, j, orig+h)
			fp := f()
			m.Set(i, j, orig-h)
			fm := f()
			m.Set(i, j, orig)
			grad.Set(i, j, (fp-fm)/(2*h))
		}
	}
	return grad
}

// gradientFixture builds a small randomized problem for a variant.
func gradientFixture(t *testing.T, variant Variant) (*problem, *mat.Dense, *mat.Dense) {
	t.Helper()
	const n, tt, rank = 4, 6, 2
	rng := stat.NewRNG(3)
	s := mat.New(n, tt)
	b := mat.New(n, tt)
	avgV := mat.New(n, tt)
	for i := 0; i < n; i++ {
		for j := 0; j < tt; j++ {
			s.Set(i, j, rng.Uniform(-5, 5))
			if rng.Bool(0.7) {
				b.Set(i, j, 1)
			}
			avgV.Set(i, j, rng.Uniform(-1, 1))
		}
	}
	opt := DefaultOptions()
	opt.Variant = variant
	opt.Lambda1 = 0.05
	opt.Lambda2 = 0.7
	opt.Tau = 2 * time.Second
	var av *mat.Dense
	if variant == VariantVelocityTemporal {
		av = avgV
	}
	prob, err := newProblem(s, b, av, opt, n, tt)
	if err != nil {
		t.Fatal(err)
	}
	l := mat.New(n, rank)
	r := mat.New(tt, rank)
	l.Apply(func(int, int, float64) float64 { return rng.NormFloat64() })
	r.Apply(func(int, int, float64) float64 { return rng.NormFloat64() })
	return prob, l, r
}

// TestGradientsMatchFiniteDifferences verifies the analytic ∇L and ∇R of
// every objective variant against central differences.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	for _, variant := range []Variant{VariantBasic, VariantTemporal, VariantVelocityTemporal} {
		t.Run(variant.String(), func(t *testing.T) {
			prob, l, r := gradientFixture(t, variant)
			e1, g, err := prob.residuals(l, r)
			if err != nil {
				t.Fatal(err)
			}
			gradL, err := prob.gradL(l, r, e1, g)
			if err != nil {
				t.Fatal(err)
			}
			gradR, err := prob.gradR(l, r, e1, g)
			if err != nil {
				t.Fatal(err)
			}
			obj := func() float64 { return prob.objective(l, r) }
			const h = 1e-5
			numL := numericalGradient(obj, l, h)
			numR := numericalGradient(obj, r, h)
			if !gradL.Equal(numL, 1e-4) {
				t.Fatalf("∇L mismatch:\nanalytic %v\nnumeric  %v", gradL, numL)
			}
			if !gradR.Equal(numR, 1e-4) {
				t.Fatalf("∇R mismatch:\nanalytic %v\nnumeric  %v", gradR, numR)
			}
		})
	}
}

// TestLineSearchIsExactMinimizer verifies the closed-form α*: the objective
// at α* must be below nearby step sizes, and the predicted decrease
// num²/den must match the realized decrease.
func TestLineSearchIsExactMinimizer(t *testing.T) {
	for _, variant := range []Variant{VariantBasic, VariantVelocityTemporal} {
		t.Run(variant.String(), func(t *testing.T) {
			prob, l, r := gradientFixture(t, variant)
			e1, g, err := prob.residuals(l, r)
			if err != nil {
				t.Fatal(err)
			}
			grad, err := prob.gradR(l, r, e1, g)
			if err != nil {
				t.Fatal(err)
			}
			num, den, err := prob.lineStats(l, r, grad, e1, g, false)
			if err != nil {
				t.Fatal(err)
			}
			if den <= 0 {
				t.Fatal("degenerate line-search denominator")
			}
			alpha := num / den
			objAt := func(a float64) float64 {
				rTrial := r.Clone()
				if err := rTrial.AxpyInPlace(-a, grad); err != nil {
					t.Fatal(err)
				}
				return prob.objective(l, rTrial)
			}
			f0 := prob.objective(l, r)
			fStar := objAt(alpha)
			// Exactness: perturbed steps cannot beat α*.
			for _, a := range []float64{alpha * 0.5, alpha * 0.9, alpha * 1.1, alpha * 2} {
				if objAt(a) < fStar-1e-9 {
					t.Fatalf("step %v beats the exact minimizer %v", a, alpha)
				}
			}
			// Predicted decrease (α·num) matches the realized one.
			predicted := alpha * num
			realized := f0 - fStar
			if math.Abs(predicted-realized) > 1e-6*math.Max(1, realized) {
				t.Fatalf("predicted decrease %v vs realized %v", predicted, realized)
			}
		})
	}
}

package csrecon

import (
	"math"
	"testing"

	"itscs/internal/mat"
	"itscs/internal/trace"
)

// slidingWindows generates a fleet trace and cuts two overlapping windows
// out of it, with a deterministic sprinkling of untrusted cells, mimicking
// the streaming engine's hop from one window to the next.
func slidingWindows(t testing.TB, participants, slots, window, hop int) (s1, b1, s2, b2 *mat.Dense) {
	t.Helper()
	tc := trace.DefaultConfig()
	tc.Participants = participants
	tc.Slots = slots
	tc.Seed = 11
	fleet, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	cut := func(c0, c1 int) (*mat.Dense, *mat.Dense) {
		s, err := fleet.X.Slice(0, participants, c0, c1)
		if err != nil {
			t.Fatal(err)
		}
		b := mat.Ones(participants, c1-c0)
		for i := 0; i < participants; i++ {
			for j := (i*3 + c0) % 7; j < c1-c0; j += 7 {
				b.Set(i, j, 0) // ~14% untrusted, pattern shifts with the window
			}
		}
		return s, b
	}
	s1, b1 = cut(0, window)
	s2, b2 = cut(hop, hop+window)
	return s1, b1, s2, b2
}

func warmTestOptions() Options {
	opt := DefaultOptions()
	opt.Variant = VariantTemporal
	opt.Rank = 8
	opt.MaxIters = 2000
	// Looser than the evaluation default so both paths reach the stopping
	// criterion rather than the sweep cap, making sweep counts comparable.
	opt.TerminateRatio = 1e-5
	return opt
}

// remask flips one trusted/untrusted cell per row — the kind of small
// detection-mask refinement the DETECT→CORRECT→CHECK loop produces between
// consecutive CORRECT rounds over the same (fully overlapping) window.
func remask(b *mat.Dense) *mat.Dense {
	out := b.Clone()
	n, t := out.Dims()
	for i := 0; i < n; i++ {
		j := (i * 13) % t
		out.Set(i, j, 1-out.At(i, j))
	}
	return out
}

// TestWarmStartConvergesFasterOnOverlappingWindow is the streaming-engine
// contract: when a window is re-solved with a refined trust mask (the
// fully-overlapping window of the next DETECT→CORRECT→CHECK round), seeding
// ASD with the previous round's factors must reach the stopping criterion
// in far fewer sweeps than the truncated-SVD cold start, while landing on
// the same solution within tolerance.
//
// Note the deliberate scenario choice: on strongly nonstationary fleet
// traces, factors carried across a *slid* window (new time slots) do not
// beat the data-adaptive SVD init in sweep count, because the participant
// subspace itself rotates and subspace rotation is ASD's slowest mode; what
// the carry buys there is skipping the O(n·t²) SVD init. The re-masked
// window is where the sweep savings are large and robust.
func TestWarmStartConvergesFasterOnOverlappingWindow(t *testing.T) {
	s1, b1, _, _ := slidingWindows(t, 40, 200, 120, 40)
	opt := warmTestOptions()

	prev, err := ReconstructDetailed(s1, b1, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if prev.WarmStarted {
		t.Fatal("cold reconstruction reported WarmStarted")
	}

	b2 := remask(b1)
	cold, err := ReconstructDetailed(s1, b2, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ReconstructWarm(s1, b2, nil, &prev.Factors, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm reconstruction did not consume the provided factors")
	}
	t.Logf("cold: %d sweeps, objective %.6g", cold.Iterations, cold.Objective)
	t.Logf("warm: %d sweeps, objective %.6g", warm.Iterations, warm.Objective)
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d sweeps, cold %d; want fewer", warm.Iterations, cold.Iterations)
	}

	// Same solution within tolerance: objectives within 1% and the
	// reconstructions within a few meters on a kilometers-scale signal.
	if relDiff(warm.Objective, cold.Objective) > 0.01 {
		t.Errorf("objectives diverge: warm %.6g vs cold %.6g", warm.Objective, cold.Objective)
	}
	if mad := meanAbsDiff(warm.SHat, cold.SHat); mad > 10 {
		t.Errorf("reconstructions diverge: mean abs diff %.2f m", mad)
	}
}

// TestWarmStartFallsBackOnIncompatibleFactors verifies the silent cold
// fallback on every shape/rank mismatch a streaming caller can produce.
func TestWarmStartFallsBackOnIncompatibleFactors(t *testing.T) {
	s1, b1, _, _ := slidingWindows(t, 20, 120, 80, 40)
	opt := warmTestOptions()
	opt.Rank = 4
	base, err := ReconstructDetailed(s1, b1, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s1.Dims()
	cases := map[string]*Factors{
		"nil factors":   nil,
		"zero value":    {},
		"missing R":     {L: base.Factors.L},
		"wrong rows":    {L: mat.New(n+1, 4), R: base.Factors.R},
		"rank mismatch": {L: mat.New(n, 5), R: mat.New(80, 5)},
		"ragged ranks":  {L: mat.New(n, 4), R: mat.New(80, 3)},
	}
	for name, warm := range cases {
		res, err := ReconstructWarm(s1, b1, nil, warm, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.WarmStarted {
			t.Errorf("%s: expected cold fallback, got warm start", name)
		}
	}
}

// TestWarmStartDoesNotMutateCallerFactors guards the clone-on-entry: the
// previous window's result must stay intact while the next window sweeps.
func TestWarmStartDoesNotMutateCallerFactors(t *testing.T) {
	s1, b1, s2, b2 := slidingWindows(t, 20, 120, 80, 40)
	opt := warmTestOptions()
	prev, err := ReconstructDetailed(s1, b1, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	lCopy := prev.Factors.L.Clone()
	rCopy := prev.Factors.R.Clone()
	if _, err := ReconstructWarm(s2, b2, nil, &prev.Factors, opt); err != nil {
		t.Fatal(err)
	}
	if !prev.Factors.L.Equal(lCopy, 0) || !prev.Factors.R.Equal(rCopy, 0) {
		t.Error("warm start mutated the caller's factors")
	}
}

// BenchmarkWarmVsCold measures the savings the streaming engine gets from
// carrying factors into the next CORRECT round of the same window (the
// re-masked, fully overlapping case that dominates the outer loop).
func BenchmarkWarmVsCold(b *testing.B) {
	s1, b1, _, _ := slidingWindows(b, 80, 300, 240, 60)
	opt := warmTestOptions()
	prev, err := ReconstructDetailed(s1, b1, nil, opt)
	if err != nil {
		b.Fatal(err)
	}
	b2 := remask(b1)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReconstructDetailed(s1, b2, nil, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReconstructWarm(s1, b2, nil, &prev.Factors, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func meanAbsDiff(a, b *mat.Dense) float64 {
	n, t := a.Dims()
	var sum float64
	for i := 0; i < n; i++ {
		ar, br := a.RowView(i), b.RowView(i)
		for j := 0; j < t; j++ {
			sum += math.Abs(ar[j] - br[j])
		}
	}
	return sum / float64(n*t)
}

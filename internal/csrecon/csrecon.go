// Package csrecon implements the CORRECT stage of I(TS,CS): low-rank
// matrix completion of the sensory matrices via an L·Rᵀ factorization
// minimized with Alternating Steepest Descent (paper Algorithm 2,
// following Tanner & Wei's ASD).
//
// Three objective variants mirror the paper's evaluation:
//
//	Basic             min ‖(LRᵀ)∘B − S‖²F + λ₁(‖L‖²F + ‖R‖²F)                    (Eq. 20)
//	Temporal          … + λ₂‖LRᵀ·𝕋'‖²F                                           (temporal stability only)
//	VelocityTemporal  … + λ₂‖LRᵀ·𝕋' − τ·V̄'‖²F                                    (Eq. 23)
//
// where 𝕋' is the difference operator of Eq. (24) with its first column
// dropped: Eq. (24) as printed maps the first slot to itself rather than to
// a difference, which would wrongly penalize the absolute position of the
// first slot (and, in the velocity variant, compare a position against a
// velocity). Dropping that column applies the constraint exactly to the
// t−1 slot-to-slot transitions the paper reasons about.
package csrecon

import (
	"fmt"
	"math"
	"time"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

// Variant selects the reconstruction objective.
type Variant int

const (
	// VariantBasic is plain regularized matrix completion (Eq. 20).
	VariantBasic Variant = iota + 1
	// VariantTemporal adds the temporal-stability term without velocity.
	VariantTemporal
	// VariantVelocityTemporal is the full velocity-improved objective (Eq. 23).
	VariantVelocityTemporal
)

// String implements fmt.Stringer for diagnostics and reports.
func (v Variant) String() string {
	switch v {
	case VariantBasic:
		return "CS"
	case VariantTemporal:
		return "CS+T"
	case VariantVelocityTemporal:
		return "CS+VT"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures CS_Reconstruct.
type Options struct {
	// Rank is the factorization rank bound r. Zero selects the rank
	// automatically: the smallest rank whose singular values capture
	// AutoRankEnergy of the nearest-filled matrix's spectral mass — the
	// paper's Fig. 4(a) energy criterion ("determined by experiment").
	Rank int
	// AutoRankEnergy is the spectral mass fraction for automatic rank
	// selection; only consulted when Rank == 0. Zero means 0.95.
	AutoRankEnergy float64
	// Lambda1 weighs the nuclear-norm surrogate (rank minimization).
	Lambda1 float64
	// Lambda2 weighs the temporal/velocity stability term; ignored by
	// VariantBasic.
	Lambda2 float64
	// Tau is the slot duration τ used to convert velocities to distances.
	Tau time.Duration
	// MaxIters bounds the ASD iterations.
	MaxIters int
	// TerminateRatio stops ASD when the relative objective improvement of
	// a full L+R sweep falls below it (Algorithm 2's ratio).
	TerminateRatio float64
	// Variant selects the objective.
	Variant Variant
	// Seed drives the random fallback initialization used when the SVD
	// warm start is disabled or fails.
	Seed int64
	// RandomInit skips the SVD warm start (used by the ablation bench).
	RandomInit bool
	// FixedStepSize replaces the exact analytic line search with a fixed
	// step size (used by the ablation bench). Zero selects the exact
	// line search, which is both faster to converge and parameter-free.
	FixedStepSize float64
}

// DefaultOptions returns the configuration used in the evaluation.
//
// Lambda1 is kept tiny: the factors carry position-scale (10⁴–10⁵ m)
// values, so even a small weight regularizes effectively. Lambda2 is set
// so that absorbing a kilometers-scale fault into the factors costs more
// in stability penalty than rejecting it saves in fitting error — at
// λ₂ ≥ ~0.5 a spike of size ε adds ≈2λ₂ε² of stability penalty against
// the ε² of fitting gain, so faults that leak past detection cannot bend
// the reconstruction toward themselves.
func DefaultOptions() Options {
	return Options{
		Rank:           0, // automatic, via the spectral-energy rule below
		AutoRankEnergy: 0.985,
		Lambda1:        1e-6,
		Lambda2:        3.0,
		Tau:            30 * time.Second,
		MaxIters:       250,
		TerminateRatio: 1e-7,
		Variant:        VariantVelocityTemporal,
		Seed:           1,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Rank < 0:
		return fmt.Errorf("csrecon: rank must be >= 0, got %d", o.Rank)
	case o.AutoRankEnergy < 0 || o.AutoRankEnergy > 1:
		return fmt.Errorf("csrecon: auto-rank energy %v outside [0,1]", o.AutoRankEnergy)
	case o.Lambda1 < 0 || o.Lambda2 < 0:
		return fmt.Errorf("csrecon: negative lambda (%v, %v)", o.Lambda1, o.Lambda2)
	case o.Tau <= 0:
		return fmt.Errorf("csrecon: tau must be positive, got %v", o.Tau)
	case o.MaxIters < 1:
		return fmt.Errorf("csrecon: max iters must be >= 1, got %d", o.MaxIters)
	case o.TerminateRatio <= 0:
		return fmt.Errorf("csrecon: terminate ratio must be positive, got %v", o.TerminateRatio)
	case o.FixedStepSize < 0:
		return fmt.Errorf("csrecon: negative fixed step size %v", o.FixedStepSize)
	}
	switch o.Variant {
	case VariantBasic, VariantTemporal, VariantVelocityTemporal:
	default:
		return fmt.Errorf("csrecon: unknown variant %d", int(o.Variant))
	}
	return nil
}

// Reconstruct completes one axis of the dataset.
//
// s is the sensory matrix, b the Generalized Binary Index Matrix (1 where a
// value is observed AND currently trusted), and avgV the Average Velocity
// Matrix V̄ for this axis — required by VariantVelocityTemporal and ignored
// otherwise (may be nil).
//
// It returns the dense reconstruction Ŝ = L·Rᵀ.
func Reconstruct(s, b, avgV *mat.Dense, opt Options) (*mat.Dense, error) {
	result, err := ReconstructDetailed(s, b, avgV, opt)
	if err != nil {
		return nil, err
	}
	return result.SHat, nil
}

// Result carries the reconstruction with convergence diagnostics.
type Result struct {
	// SHat is the reconstructed matrix L·Rᵀ.
	SHat *mat.Dense
	// Factors holds the final factorization (SHat = L·Rᵀ). It can be fed
	// back into ReconstructWarm to warm-start a later reconstruction of an
	// overlapping or re-masked problem.
	Factors Factors
	// WarmStarted reports whether the sweeps started from caller-provided
	// factors rather than the truncated-SVD (or random) initialization.
	WarmStarted bool
	// Iterations is the number of ASD sweeps performed.
	Iterations int
	// Objective is the final value of the optimization objective.
	Objective float64
	// ObjectiveTrace records the objective after every sweep.
	ObjectiveTrace []float64
}

// Factors is an L·Rᵀ factorization: L is n×r, R is t×r. The zero value
// means "no factors" and always falls back to a cold start.
type Factors struct {
	L, R *mat.Dense
}

// usableFor reports whether the factors can seed an n×t reconstruction
// under opt: both present, shapes consistent, and the rank compatible with
// an explicitly requested opt.Rank. A mismatch is not an error — streaming
// callers hit it whenever the fleet roster, window size, or configured rank
// changes — so the caller falls back to the cold initialization instead.
func (f Factors) usableFor(n, t int, opt Options) bool {
	if f.L == nil || f.R == nil {
		return false
	}
	ln, lr := f.L.Dims()
	rt, rr := f.R.Dims()
	if ln != n || rt != t || lr != rr || lr < 1 || lr > minInt(n, t) {
		return false
	}
	if opt.Rank > 0 && lr != opt.Rank {
		return false
	}
	return true
}

// ReconstructDetailed is Reconstruct with convergence diagnostics.
func ReconstructDetailed(s, b, avgV *mat.Dense, opt Options) (*Result, error) {
	return ReconstructWarm(s, b, avgV, nil, opt)
}

// ReconstructWarm is ReconstructDetailed with an optional warm start: when
// warm holds factors of a compatible shape, the ASD sweeps start from a
// copy of them instead of the truncated-SVD initialization, which lets a
// sliding-window caller reuse the previous window's factorization. On any
// shape or rank incompatibility (or nil warm) it silently falls back to
// the cold initialization; Result.WarmStarted reports which path ran.
func ReconstructWarm(s, b, avgV *mat.Dense, warm *Factors, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, t := s.Dims()
	if n == 0 || t == 0 {
		return nil, fmt.Errorf("csrecon: empty sensory matrix")
	}
	if br, bc := b.Dims(); br != n || bc != t {
		return nil, fmt.Errorf("csrecon: B is %dx%d, want %dx%d", br, bc, n, t)
	}
	prob, err := newProblem(s, b, avgV, opt, n, t)
	if err != nil {
		return nil, err
	}
	var l, r *mat.Dense
	warmStarted := false
	if warm != nil && warm.usableFor(n, t, opt) {
		// The sweeps mutate the factors in place; copy so the caller's
		// previous-window result stays intact.
		l, r = warm.L.Clone(), warm.R.Clone()
		warmStarted = true
	} else {
		l, r, err = initFactors(s, b, opt)
		if err != nil {
			return nil, err
		}
	}
	res, err := prob.run(l, r, opt)
	if err != nil {
		return nil, err
	}
	res.WarmStarted = warmStarted
	return res, nil
}

// problem precomputes the constant pieces of the objective.
type problem struct {
	s, b *mat.Dense
	// sMasked = s∘b: the trusted observations.
	sMasked *mat.Dense
	// useStability records whether the 𝕋' term is active (false for
	// VariantBasic or single-column input). The operator itself is applied
	// via the O(n·t) kernels applyDiff/applyDiffAdjoint rather than a
	// materialized matrix.
	useStability bool
	// target is τ·V̄ restricted to the transition columns (n×(t−1));
	// all zeros for VariantTemporal.
	target  *mat.Dense
	lambda1 float64
	lambda2 float64
	// fixedStep, when positive, replaces the exact line search.
	fixedStep float64
	// ws is the scratch workspace shared by every sweep; allocated once
	// per factorization rank so steady-state ASD performs no heap
	// allocations.
	ws *workspace
}

// workspace holds every intermediate matrix the ASD sweeps need, sized
// once for the problem's n×t and the factorization rank. Buffers are
// reused across sweeps; the residual buffers (m, e1, g) are invalidated by
// each residuals call and the line-search buffers (dm, p1, p3) by each
// lineStats call.
type workspace struct {
	rank int
	// m = L·Rᵀ, e1 = (LRᵀ−S)∘B, dm = D·Rᵀ (or L·Dᵀ), p1 = dm∘B: all n×t.
	m, e1, dm, p1 *mat.Dense
	// gl = ∇_L f (n×r), gr = ∇_R f (t×r).
	gl, gr *mat.Dense
	// Stability-term scratch, nil when the 𝕋' term is inactive:
	// g = LRᵀ·𝕋'−target and p3 = dm·𝕋' (n×(t−1)), adj = G·𝕋'ᵀ (n×t),
	// tl (n×r) and tr (t×r) hold the λ₂ gradient contributions.
	g, p3, adj *mat.Dense
	tl, tr     *mat.Dense
}

// ensure returns the workspace for factorization rank r.Cols(), allocating
// it on first use or when the rank changes (which happens only between
// reconstructions, never inside the sweep loop).
func (p *problem) ensure(r *mat.Dense) *workspace {
	rank := r.Cols()
	if p.ws != nil && p.ws.rank == rank {
		return p.ws
	}
	n, t := p.s.Dims()
	ws := &workspace{
		rank: rank,
		m:    mat.New(n, t),
		e1:   mat.New(n, t),
		dm:   mat.New(n, t),
		p1:   mat.New(n, t),
		gl:   mat.New(n, rank),
		gr:   mat.New(t, rank),
	}
	if p.useStability {
		ws.g = mat.New(n, t-1)
		ws.p3 = mat.New(n, t-1)
		ws.adj = mat.New(n, t)
		ws.tl = mat.New(n, rank)
		ws.tr = mat.New(t, rank)
	}
	p.ws = ws
	return ws
}

func newProblem(s, b, avgV *mat.Dense, opt Options, n, t int) (*problem, error) {
	sMasked, err := s.Hadamard(b)
	if err != nil {
		return nil, fmt.Errorf("csrecon: mask sensory matrix: %w", err)
	}
	p := &problem{
		s:         s,
		b:         b,
		sMasked:   sMasked,
		lambda1:   opt.Lambda1,
		lambda2:   opt.Lambda2,
		fixedStep: opt.FixedStepSize,
	}
	if opt.Variant == VariantBasic || t < 2 {
		return p, nil
	}
	p.useStability = true
	p.target = mat.New(n, t-1)
	if opt.Variant == VariantVelocityTemporal {
		if avgV == nil {
			return nil, fmt.Errorf("csrecon: %v requires the average velocity matrix", opt.Variant)
		}
		if vr, vc := avgV.Dims(); vr != n || vc != t {
			return nil, fmt.Errorf("csrecon: V̄ is %dx%d, want %dx%d", vr, vc, n, t)
		}
		tau := opt.Tau.Seconds()
		for i := 0; i < n; i++ {
			vrow := avgV.RowView(i)
			trow := p.target.RowView(i)
			for j := 1; j < t; j++ {
				trow[j-1] = vrow[j] * tau
			}
		}
	}
	return p, nil
}

// applyDiff computes M·𝕋' in O(n·t), where 𝕋' is Eq. (24)'s operator with
// the first column dropped: column j of the result is the transition
// m(i,j+1) − m(i,j), aligned with +τ·V̄(i,j+1). The sign is irrelevant for
// the pure temporal penalty but must match the velocity target in the full
// variant.
func applyDiff(m *mat.Dense) *mat.Dense {
	n, t := m.Dims()
	out := mat.New(n, t-1)
	applyDiffInto(out, m)
	return out
}

// applyDiffInto is the allocation-free form of applyDiff; out must be
// pre-sized to n×(t−1).
func applyDiffInto(out, m *mat.Dense) {
	n, t := m.Dims()
	for i := 0; i < n; i++ {
		src := m.RowView(i)
		dst := out.RowView(i)
		for j := 0; j < t-1; j++ {
			dst[j] = src[j+1] - src[j]
		}
	}
}

// applyDiffAdjoint computes G·𝕋'ᵀ in O(n·t):
// (G·𝕋'ᵀ)(i,j) = g(i,j−1) − g(i,j) with out-of-range terms zero.
func applyDiffAdjoint(g *mat.Dense) *mat.Dense {
	n, tm1 := g.Dims()
	out := mat.New(n, tm1+1)
	applyDiffAdjointInto(out, g)
	return out
}

// applyDiffAdjointInto is the allocation-free form of applyDiffAdjoint;
// out must be pre-sized to n×(t) for a n×(t−1) input.
func applyDiffAdjointInto(out, g *mat.Dense) {
	n, tm1 := g.Dims()
	t := tm1 + 1
	for i := 0; i < n; i++ {
		src := g.RowView(i)
		dst := out.RowView(i)
		for j := 0; j < t; j++ {
			var v float64
			if j-1 >= 0 && j-1 < tm1 {
				v += src[j-1]
			}
			if j < tm1 {
				v -= src[j]
			}
			dst[j] = v
		}
	}
}

// initFactors produces the ASD starting point: nearest-value fill of the
// missing cells followed by a truncated SVD (Algorithm 2 lines 2-8), or a
// small random factorization when RandomInit is set. When opt.Rank is zero
// the rank is chosen by the spectral-energy criterion.
func initFactors(s, b *mat.Dense, opt Options) (l, r *mat.Dense, err error) {
	n, t := s.Dims()
	maxRank := minInt(n, t)
	if opt.RandomInit {
		rank := opt.Rank
		if rank == 0 {
			// No spectrum to consult without the warm start; a quarter of
			// the minimal dimension is a generous over-parameterization
			// that the regularizers rein in.
			rank = maxInt(2, maxRank/4)
		}
		if rank > maxRank {
			rank = maxRank
		}
		rng := stat.NewRNG(opt.Seed).Child("asd-init")
		scale := s.MaxAbs()
		if scale == 0 {
			scale = 1
		}
		scale = math.Sqrt(scale / float64(rank))
		l = mat.New(n, rank)
		r = mat.New(t, rank)
		l.Apply(func(int, int, float64) float64 { return rng.NormFloat64() * scale })
		r.Apply(func(int, int, float64) float64 { return rng.NormFloat64() * scale })
		return l, r, nil
	}
	filled := nearestFill(s, b)
	full, err := mat.SVD(filled)
	if err != nil {
		return nil, nil, fmt.Errorf("csrecon: warm start SVD: %w", err)
	}
	rank := opt.Rank
	if rank == 0 {
		energy := opt.AutoRankEnergy
		if energy == 0 {
			energy = 0.95
		}
		rank = maxInt(2, full.RankForEnergy(energy))
	}
	if rank > maxRank {
		rank = maxRank
	}
	l = mat.New(n, rank)
	r = mat.New(t, rank)
	for k := 0; k < rank; k++ {
		root := math.Sqrt(full.S[k])
		for i := 0; i < n; i++ {
			l.Set(i, k, full.U.At(i, k)*root)
		}
		for j := 0; j < t; j++ {
			r.Set(j, k, full.V.At(j, k)*root)
		}
	}
	return l, r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// nearestFill replaces untrusted cells (b == 0) with the nearest trusted
// value in the same row (ties resolve to the left neighbour). Rows with no
// trusted cells are filled with the column means of trusted cells in other
// rows, or zero if the whole matrix is untrusted. Rows are independent
// once the column stats are in, so the fill runs row-block parallel with
// per-worker index scratch.
func nearestFill(s, b *mat.Dense) *mat.Dense {
	n, t := s.Dims()
	out := s.Clone()
	colSum := make([]float64, t)
	colCount := make([]float64, t)
	for i := 0; i < n; i++ {
		brow := b.RowView(i)
		srow := s.RowView(i)
		for j := 0; j < t; j++ {
			if brow[j] != 0 {
				colSum[j] += srow[j]
				colCount[j]++
			}
		}
	}
	mat.ParallelRows(n, 4*t, func(lo, hi int) {
		left := make([]int, t)
		right := make([]int, t)
		for i := lo; i < hi; i++ {
			brow := b.RowView(i)
			srow := s.RowView(i)
			orow := out.RowView(i)
			// Nearest trusted index on each side of every cell.
			idx := -1
			for j := 0; j < t; j++ {
				if brow[j] != 0 {
					idx = j
				}
				left[j] = idx
			}
			idx = -1
			for j := t - 1; j >= 0; j-- {
				if brow[j] != 0 {
					idx = j
				}
				right[j] = idx
			}
			for j := 0; j < t; j++ {
				if brow[j] != 0 {
					continue
				}
				switch {
				case left[j] < 0 && right[j] < 0:
					// Fully untrusted row: fall back to the column mean.
					if colCount[j] > 0 {
						orow[j] = colSum[j] / colCount[j]
					} else {
						orow[j] = 0
					}
				case left[j] < 0:
					orow[j] = srow[right[j]]
				case right[j] < 0:
					orow[j] = srow[left[j]]
				case right[j]-j < j-left[j]:
					orow[j] = srow[right[j]]
				default:
					orow[j] = srow[left[j]]
				}
			}
		}
	})
	return out
}

// reconcileEvery is the sweep interval at which the incrementally tracked
// objective is replaced by an exact recomputation. The incremental update
// `next = obj − dropL − dropR` accumulates floating-point drift over
// hundreds of sweeps; an exact evaluation costs one residual pass — cheap
// relative to the K sweeps it anchors — and keeps the reported trace
// trustworthy.
const reconcileEvery = 25

// run performs the ASD sweeps (Algorithm 2 lines 9-18).
//
// The objective is tracked incrementally: along a fixed direction every
// term is quadratic in the step size, so the exact line search that yields
// α* = num/den also yields the new objective f(α*) = f(0) − num²/den.
// This avoids a third residual evaluation per sweep. The tracked value is
// reconciled with an exact evaluation every reconcileEvery sweeps and once
// at exit.
//
// Termination requires a small *non-negative* relative improvement: with a
// fixed step size a sweep can increase the objective (negative drop), and
// a negative ratio must read as "not converged", not as "converged". A
// zero objective (already at the optimum) terminates immediately.
func (p *problem) run(l, r *mat.Dense, opt Options) (*Result, error) {
	obj := p.objective(l, r)
	trace := make([]float64, 0, opt.MaxIters+1)
	trace = append(trace, obj)
	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		dropL, err := p.step(l, r, true)
		if err != nil {
			return nil, err
		}
		dropR, err := p.step(l, r, false)
		if err != nil {
			return nil, err
		}
		next := obj - dropL - dropR
		if (iters+1)%reconcileEvery == 0 {
			next = p.objective(l, r)
		}
		trace = append(trace, next)
		if improved := obj - next; improved >= 0 {
			rel := 0.0
			if obj > 0 {
				rel = improved / obj
			}
			if rel < opt.TerminateRatio {
				obj = next
				iters++
				break
			}
		}
		obj = next
	}
	// Reconcile once at exit so Result.Objective is the exact objective at
	// the final factors, not the drifted incremental estimate.
	obj = p.objective(l, r)
	trace[len(trace)-1] = obj
	sHat, err := l.MulT(r)
	if err != nil {
		return nil, fmt.Errorf("csrecon: assemble reconstruction: %w", err)
	}
	return &Result{
		SHat:           sHat,
		Factors:        Factors{L: l, R: r},
		Iterations:     iters,
		Objective:      obj,
		ObjectiveTrace: trace,
	}, nil
}

// residuals computes E1 = (LRᵀ − S)∘B and, when the stability term is
// active, G = LRᵀ·𝕋' − target. The returned matrices are workspace
// buffers, valid until the next residuals call on this problem.
func (p *problem) residuals(l, r *mat.Dense) (e1, g *mat.Dense, err error) {
	ws := p.ensure(r)
	if err := l.MulTInto(ws.m, r); err != nil {
		return nil, nil, err
	}
	if err := ws.m.HadamardInto(ws.e1, p.b); err != nil {
		return nil, nil, err
	}
	if err := ws.e1.SubInPlace(p.sMasked); err != nil {
		return nil, nil, err
	}
	if !p.useStability {
		return ws.e1, nil, nil
	}
	applyDiffInto(ws.g, ws.m)
	if err := ws.g.SubInPlace(p.target); err != nil {
		return nil, nil, err
	}
	return ws.e1, ws.g, nil
}

// objective evaluates Eq. (23) (or its reduced variants) at (L, R).
func (p *problem) objective(l, r *mat.Dense) float64 {
	e1, g, err := p.residuals(l, r)
	if err != nil {
		// Shapes are validated at construction; failure here is a bug.
		panic(fmt.Sprintf("csrecon: objective residuals: %v", err))
	}
	obj := e1.FrobeniusNorm2() + p.lambda1*(l.FrobeniusNorm2()+r.FrobeniusNorm2())
	if g != nil {
		obj += p.lambda2 * g.FrobeniusNorm2()
	}
	return obj
}

// step performs one steepest-descent update on L (updateL) or R with the
// exact analytic line search: every objective term is quadratic in the step
// size α along a fixed direction, so α* has a closed form. It returns the
// exact objective decrease num²/den achieved by the step.
func (p *problem) step(l, r *mat.Dense, updateL bool) (drop float64, err error) {
	e1, g, err := p.residuals(l, r)
	if err != nil {
		return 0, err
	}
	var grad *mat.Dense
	if updateL {
		grad, err = p.gradL(l, r, e1, g)
	} else {
		grad, err = p.gradR(l, r, e1, g)
	}
	if err != nil {
		return 0, err
	}
	if grad.MaxAbs() == 0 {
		return 0, nil
	}
	num, den, err := p.lineStats(l, r, grad, e1, g, updateL)
	if err != nil {
		return 0, err
	}
	if den <= 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 0, nil
	}
	alpha := num / den
	if p.fixedStep > 0 {
		alpha = p.fixedStep
	}
	if alpha == 0 {
		return 0, nil
	}
	// Exact objective change along the quadratic: f(0) − f(α) = 2α·num − α²·den
	// (num²/den at the exact minimizer; possibly negative for a fixed step).
	drop = 2*alpha*num - alpha*alpha*den
	if updateL {
		return drop, l.AxpyInPlace(-alpha, grad)
	}
	return drop, r.AxpyInPlace(-alpha, grad)
}

// gradL computes ∇_L f = 2·E1·R + 2λ₁·L + 2λ₂·G·𝕋'ᵀ·R into the workspace
// buffer ws.gl, valid until the next gradL call on this problem.
func (p *problem) gradL(l, r, e1, g *mat.Dense) (*mat.Dense, error) {
	ws := p.ensure(r)
	if err := e1.MulInto(ws.gl, r); err != nil {
		return nil, err
	}
	ws.gl.Scale(2)
	if err := ws.gl.AxpyInPlace(2*p.lambda1, l); err != nil {
		return nil, err
	}
	if g != nil {
		applyDiffAdjointInto(ws.adj, g)
		if err := ws.adj.MulInto(ws.tl, r); err != nil { // (G·𝕋'ᵀ)·R : n×r
			return nil, err
		}
		if err := ws.gl.AxpyInPlace(2*p.lambda2, ws.tl); err != nil {
			return nil, err
		}
	}
	return ws.gl, nil
}

// gradR computes ∇_R f = 2·E1ᵀ·L + 2λ₁·R + 2λ₂·𝕋'·Gᵀ·L into the workspace
// buffer ws.gr, valid until the next gradR call on this problem.
func (p *problem) gradR(l, r, e1, g *mat.Dense) (*mat.Dense, error) {
	ws := p.ensure(r)
	if err := e1.TMulInto(ws.gr, l); err != nil { // E1ᵀ·L : t×r
		return nil, err
	}
	ws.gr.Scale(2)
	if err := ws.gr.AxpyInPlace(2*p.lambda1, r); err != nil {
		return nil, err
	}
	if g != nil {
		// 𝕋'·Gᵀ·L = (G·𝕋'ᵀ)ᵀ·L, with the adjoint applied in O(n·t).
		applyDiffAdjointInto(ws.adj, g)
		if err := ws.adj.TMulInto(ws.tr, l); err != nil { // t×r
			return nil, err
		}
		if err := ws.gr.AxpyInPlace(2*p.lambda2, ws.tr); err != nil {
			return nil, err
		}
	}
	return ws.gr, nil
}

// lineStats computes the quadratic coefficients of f along −grad:
// f(α) = f(0) − 2α·num + α²·den, so the exact minimizer is α* = num/den.
//
// For the L step with direction D: P1 = (D·Rᵀ)∘B, P3 = D·Rᵀ·𝕋',
// num = ⟨E1,P1⟩ + λ₁⟨L,D⟩ + λ₂⟨G,P3⟩, den = ‖P1‖² + λ₁‖D‖² + λ₂‖P3‖²,
// and symmetrically for the R step with P1 = (L·Dᵀ)∘B, P3 = L·Dᵀ·𝕋'.
func (p *problem) lineStats(l, r, grad, e1, g *mat.Dense, updateL bool) (num, den float64, err error) {
	ws := p.ensure(r)
	if updateL {
		err = grad.MulTInto(ws.dm, r) // D·Rᵀ : n×t
	} else {
		err = l.MulTInto(ws.dm, grad) // L·Dᵀ : n×t
	}
	if err != nil {
		return 0, 0, err
	}
	if err := ws.dm.HadamardInto(ws.p1, p.b); err != nil {
		return 0, 0, err
	}
	num, err = e1.Dot(ws.p1)
	if err != nil {
		return 0, 0, err
	}
	den = ws.p1.FrobeniusNorm2()

	var anchor *mat.Dense
	if updateL {
		anchor = l
	} else {
		anchor = r
	}
	dotAnchor, err := anchor.Dot(grad)
	if err != nil {
		return 0, 0, err
	}
	num += p.lambda1 * dotAnchor
	den += p.lambda1 * grad.FrobeniusNorm2()

	if g != nil {
		applyDiffInto(ws.p3, ws.dm)
		dotG, err := g.Dot(ws.p3)
		if err != nil {
			return 0, 0, err
		}
		num += p.lambda2 * dotG
		den += p.lambda2 * ws.p3.FrobeniusNorm2()
	}
	return num, den, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package csrecon

import (
	"math"
	"testing"
	"time"

	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/stat"
)

// lowRankFixture builds an exactly rank-2 "coordinate" matrix (constant
// velocity per participant, paper Eq. 13) plus its velocity matrix.
func lowRankFixture(n, t int, seed int64) (x, v *mat.Dense) {
	rng := stat.NewRNG(seed)
	x = mat.New(n, t)
	v = mat.New(n, t)
	tau := 30.0
	for i := 0; i < n; i++ {
		start := rng.Uniform(10_000, 90_000)
		vel := rng.Uniform(-25, 25)
		for j := 0; j < t; j++ {
			x.Set(i, j, start+vel*tau*float64(j))
			v.Set(i, j, vel)
		}
	}
	return x, v
}

// dropCells returns a mask with nDrop random zeros.
func dropCells(n, t, nDrop int, seed int64) *mat.Dense {
	b := mat.Ones(n, t)
	rng := stat.NewRNG(seed)
	for _, cell := range rng.Perm(n * t)[:nDrop] {
		b.Set(cell/t, cell%t, 0)
	}
	return b
}

// maskedMAE is the mean absolute error over masked (b == 0) cells.
func maskedMAE(truth, rec, b *mat.Dense) float64 {
	n, t := truth.Dims()
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if b.At(i, j) == 0 {
				sum += math.Abs(truth.At(i, j) - rec.At(i, j))
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func testOptions(variant Variant) Options {
	opt := DefaultOptions()
	opt.Variant = variant
	opt.Rank = 4
	return opt
}

func TestReconstructExactLowRankBasic(t *testing.T) {
	x, _ := lowRankFixture(20, 40, 1)
	b := dropCells(20, 40, 200, 2) // 25% missing
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantBasic)
	opt.Rank = 2 // the fixture is exactly rank 2
	rec, err := Reconstruct(s, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if mae := maskedMAE(x, rec, b); mae > 1 {
		t.Fatalf("rank-2 completion MAE = %.2f m, want < 1 m", mae)
	}
}

func TestReconstructOverRankOverfitsWithoutStability(t *testing.T) {
	// Design-choice regression: with an over-specified rank, plain
	// completion overfits the observed cells and leaks error into missing
	// ones, while the velocity-temporal term suppresses the spurious rank
	// directions. This is the paper's rationale for the Eq. (23) extension.
	x, v := lowRankFixture(20, 40, 1)
	b := dropCells(20, 40, 200, 2)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := Reconstruct(s, b, nil, testOptions(VariantBasic)) // rank 4
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantVelocityTemporal)
	opt.MaxIters = 2000
	full, err := Reconstruct(s, b, motion.AverageVelocity(v), opt)
	if err != nil {
		t.Fatal(err)
	}
	maeBasic := maskedMAE(x, basic, b)
	maeFull := maskedMAE(x, full, b)
	if maeFull >= maeBasic {
		t.Fatalf("stability term should beat over-ranked basic CS: basic %.1f vs full %.1f", maeBasic, maeFull)
	}
	if maeFull > 5 {
		t.Fatalf("full variant MAE = %.2f m, want < 5 m", maeFull)
	}
}

func TestReconstructVelocityTemporalBeatsBasicUnderHeavyLoss(t *testing.T) {
	x, v := lowRankFixture(20, 40, 3)
	b := dropCells(20, 40, 400, 4) // 50% missing
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	avgV := motion.AverageVelocity(v)

	basic, err := Reconstruct(s, b, nil, testOptions(VariantBasic))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Reconstruct(s, b, avgV, testOptions(VariantVelocityTemporal))
	if err != nil {
		t.Fatal(err)
	}
	maeBasic := maskedMAE(x, basic, b)
	maeFull := maskedMAE(x, full, b)
	if maeFull > maeBasic*1.5 {
		t.Fatalf("velocity variant should not be much worse: basic %.1f vs full %.1f", maeBasic, maeFull)
	}
	if maeFull > 100 {
		t.Fatalf("full variant MAE = %.1f m under 50%% loss, want < 100 m", maeFull)
	}
}

func TestReconstructTemporalVariant(t *testing.T) {
	x, _ := lowRankFixture(15, 30, 5)
	b := dropCells(15, 30, 100, 6)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(s, b, nil, testOptions(VariantTemporal))
	if err != nil {
		t.Fatal(err)
	}
	if mae := maskedMAE(x, rec, b); mae > 150 {
		t.Fatalf("temporal variant MAE = %.1f m, want < 150 m", mae)
	}
}

func TestReconstructPreservesObservedCells(t *testing.T) {
	x, v := lowRankFixture(10, 20, 7)
	b := dropCells(10, 20, 40, 8)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(s, b, motion.AverageVelocity(v), testOptions(VariantVelocityTemporal))
	if err != nil {
		t.Fatal(err)
	}
	// Observed cells should be fit closely (the objective's fitting term).
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			if b.At(i, j) == 1 {
				if diff := math.Abs(rec.At(i, j) - x.At(i, j)); diff > 100 {
					t.Fatalf("observed cell (%d,%d) off by %.1f m", i, j, diff)
				}
			}
		}
	}
}

func TestReconstructDetailedDiagnostics(t *testing.T) {
	x, _ := lowRankFixture(10, 20, 9)
	b := dropCells(10, 20, 30, 10)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReconstructDetailed(s, b, nil, testOptions(VariantBasic))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Fatal("expected at least one ASD sweep")
	}
	if len(res.ObjectiveTrace) != res.Iterations+1 {
		t.Fatalf("trace length %d for %d iterations", len(res.ObjectiveTrace), res.Iterations)
	}
	for i := 1; i < len(res.ObjectiveTrace); i++ {
		if res.ObjectiveTrace[i] > res.ObjectiveTrace[i-1]*(1+1e-9) {
			t.Fatalf("objective increased at sweep %d: %v -> %v", i, res.ObjectiveTrace[i-1], res.ObjectiveTrace[i])
		}
	}
	if res.Objective != res.ObjectiveTrace[len(res.ObjectiveTrace)-1] {
		t.Fatal("Objective must equal the last trace entry")
	}
}

func TestReconstructRandomInitStillConverges(t *testing.T) {
	x, _ := lowRankFixture(12, 24, 11)
	b := dropCells(12, 24, 50, 12)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantBasic)
	opt.RandomInit = true
	opt.Rank = 2
	opt.MaxIters = 10_000
	rec, err := Reconstruct(s, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if mae := maskedMAE(x, rec, b); mae > 50 {
		t.Fatalf("random init MAE = %.1f m, want < 50 m", mae)
	}
}

func TestWarmStartBeatsRandomInitInIterations(t *testing.T) {
	// The ablation the paper motivates in §III-C.4: the SVD warm start
	// alleviates local optima and converges faster.
	x, _ := lowRankFixture(15, 30, 13)
	b := dropCells(15, 30, 90, 14)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ReconstructDetailed(s, b, nil, testOptions(VariantBasic))
	if err != nil {
		t.Fatal(err)
	}
	optRand := testOptions(VariantBasic)
	optRand.RandomInit = true
	cold, err := ReconstructDetailed(s, b, nil, optRand)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ObjectiveTrace[0] < cold.ObjectiveTrace[0] == false {
		t.Fatalf("warm start should begin at a lower objective: warm %.3g vs cold %.3g",
			warm.ObjectiveTrace[0], cold.ObjectiveTrace[0])
	}
}

func TestReconstructDeterministic(t *testing.T) {
	x, v := lowRankFixture(10, 20, 15)
	b := dropCells(10, 20, 40, 16)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	avgV := motion.AverageVelocity(v)
	a, err := Reconstruct(s, b, avgV, testOptions(VariantVelocityTemporal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Reconstruct(s, b, avgV, testOptions(VariantVelocityTemporal))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(c, 0) {
		t.Fatal("reconstruction must be deterministic")
	}
}

func TestReconstructInputsNotMutated(t *testing.T) {
	x, v := lowRankFixture(8, 16, 17)
	b := dropCells(8, 16, 20, 18)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	avgV := motion.AverageVelocity(v)
	sC, bC, vC := s.Clone(), b.Clone(), avgV.Clone()
	if _, err := Reconstruct(s, b, avgV, testOptions(VariantVelocityTemporal)); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(sC, 0) || !b.Equal(bC, 0) || !avgV.Equal(vC, 0) {
		t.Fatal("Reconstruct must not mutate inputs")
	}
}

func TestReconstructRankClamped(t *testing.T) {
	x, _ := lowRankFixture(5, 8, 19)
	b := mat.Ones(5, 8)
	opt := testOptions(VariantBasic)
	opt.Rank = 100 // exceeds min(n,t); must clamp, not error
	rec, err := Reconstruct(x, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(x, 1) {
		t.Fatal("full-rank reconstruction of complete data should match input")
	}
}

func TestReconstructValidation(t *testing.T) {
	s := mat.Ones(4, 6)
	b := mat.Ones(4, 6)
	bad := []Options{
		{Rank: -1, Lambda1: 1, Lambda2: 1, Tau: time.Second, MaxIters: 1, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, AutoRankEnergy: 1.5, Lambda1: 1, Lambda2: 1, Tau: time.Second, MaxIters: 1, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, Lambda1: -1, Lambda2: 1, Tau: time.Second, MaxIters: 1, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, Lambda1: 1, Lambda2: -1, Tau: time.Second, MaxIters: 1, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, Lambda1: 1, Lambda2: 1, Tau: 0, MaxIters: 1, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, Lambda1: 1, Lambda2: 1, Tau: time.Second, MaxIters: 0, TerminateRatio: 1e-3, Variant: VariantBasic},
		{Rank: 2, Lambda1: 1, Lambda2: 1, Tau: time.Second, MaxIters: 1, TerminateRatio: 0, Variant: VariantBasic},
		{Rank: 2, Lambda1: 1, Lambda2: 1, Tau: time.Second, MaxIters: 1, TerminateRatio: 1e-3, Variant: Variant(99)},
	}
	for i, opt := range bad {
		if _, err := Reconstruct(s, b, nil, opt); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
	if _, err := Reconstruct(s, mat.New(2, 2), nil, testOptions(VariantBasic)); err == nil {
		t.Fatal("mismatched B should be rejected")
	}
	if _, err := Reconstruct(mat.New(0, 0), mat.New(0, 0), nil, testOptions(VariantBasic)); err == nil {
		t.Fatal("empty input should be rejected")
	}
	if _, err := Reconstruct(s, b, nil, testOptions(VariantVelocityTemporal)); err == nil {
		t.Fatal("velocity variant without V̄ should be rejected")
	}
	if _, err := Reconstruct(s, b, mat.New(2, 2), testOptions(VariantVelocityTemporal)); err == nil {
		t.Fatal("mismatched V̄ should be rejected")
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		VariantBasic:            "CS",
		VariantTemporal:         "CS+T",
		VariantVelocityTemporal: "CS+VT",
		Variant(42):             "Variant(42)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("Variant(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestApplyDiff(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{{1, 3, 6, 10}})
	prod := applyDiff(x)
	if prod.Rows() != 1 || prod.Cols() != 3 {
		t.Fatalf("dims = %dx%d", prod.Rows(), prod.Cols())
	}
	want := []float64{2, 3, 4}
	for j, w := range want {
		if prod.At(0, j) != w {
			t.Fatalf("diff[%d] = %v, want %v", j, prod.At(0, j), w)
		}
	}
}

func TestApplyDiffAdjointMatchesExplicitOperator(t *testing.T) {
	// The adjoint kernel must agree with multiplying by the materialized
	// t×(t−1) operator's transpose.
	tt := 6
	op := mat.New(tt, tt-1)
	for j := 0; j < tt-1; j++ {
		op.Set(j, j, -1)
		op.Set(j+1, j, 1)
	}
	g, _ := mat.NewFromRows([][]float64{
		{1, 2, 3, 4, 5},
		{-1, 0, 1, 0, -1},
	})
	want, err := g.MulT(op)
	if err != nil {
		t.Fatal(err)
	}
	got := applyDiffAdjoint(g)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("adjoint kernel disagrees:\n%v\nvs\n%v", got, want)
	}
	// ⟨M·𝕋', G⟩ must equal ⟨M, G·𝕋'ᵀ⟩ (adjoint property).
	m, _ := mat.NewFromRows([][]float64{
		{0, 2, 1, 5, 3, 3},
		{9, 8, 7, 6, 5, 4},
	})
	lhs, err := applyDiff(m).Dot(g)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := m.Dot(applyDiffAdjoint(g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

func TestNearestFill(t *testing.T) {
	s, _ := mat.NewFromRows([][]float64{
		{10, 0, 0, 40},
		{0, 20, 0, 0},
		{0, 0, 0, 0},
	})
	b, _ := mat.NewFromRows([][]float64{
		{1, 0, 0, 1},
		{0, 1, 0, 0},
		{0, 0, 0, 0},
	})
	filled := nearestFill(s, b)
	// Row 0: left neighbour wins ties, right wins when strictly closer.
	if filled.At(0, 1) != 10 { // dist 1 left vs 2 right
		t.Fatalf("(0,1) = %v, want 10", filled.At(0, 1))
	}
	if filled.At(0, 2) != 40 { // dist 2 left vs 1 right
		t.Fatalf("(0,2) = %v, want 40", filled.At(0, 2))
	}
	// Row 1: only one trusted value, fills everywhere.
	for j := 0; j < 4; j++ {
		if filled.At(1, j) != 20 {
			t.Fatalf("(1,%d) = %v, want 20", j, filled.At(1, j))
		}
	}
	// Row 2: fully untrusted, falls back to column means of trusted cells.
	if filled.At(2, 0) != 10 || filled.At(2, 1) != 20 || filled.At(2, 3) != 40 {
		t.Fatalf("column-mean fallback wrong: %v %v %v",
			filled.At(2, 0), filled.At(2, 1), filled.At(2, 3))
	}
	if filled.At(2, 2) != 0 { // no trusted cell anywhere in column 2
		t.Fatalf("(2,2) = %v, want 0", filled.At(2, 2))
	}
	// Original untouched.
	if s.At(0, 1) != 0 {
		t.Fatal("nearestFill must not mutate input")
	}
}

func TestNearestFillTieBreaksLeft(t *testing.T) {
	s, _ := mat.NewFromRows([][]float64{{5, 0, 9}})
	b, _ := mat.NewFromRows([][]float64{{1, 0, 1}})
	filled := nearestFill(s, b)
	if filled.At(0, 1) != 5 {
		t.Fatalf("tie should resolve left: got %v", filled.At(0, 1))
	}
}

func TestReconstructSingleColumn(t *testing.T) {
	// Degenerate single-slot input: temporal term is skipped, plain
	// completion still works.
	s := mat.Filled(5, 1, 100)
	b := mat.Ones(5, 1)
	b.Set(2, 0, 0)
	s.Set(2, 0, 0)
	opt := testOptions(VariantTemporal)
	rec, err := Reconstruct(s, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := rec.Dims(); r != 5 || c != 1 {
		t.Fatalf("dims = %dx%d", r, c)
	}
}

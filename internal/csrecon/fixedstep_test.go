package csrecon

import (
	"testing"
)

func TestFixedStepStillDescends(t *testing.T) {
	x, _ := lowRankFixture(10, 20, 21)
	b := dropCells(10, 20, 40, 22)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantBasic)
	opt.Rank = 2
	// Data magnitude ~1e5 ⇒ gradients ~1e10; a tiny step keeps descent
	// stable without the line search.
	opt.FixedStepSize = 1e-12
	opt.MaxIters = 50
	res, err := ReconstructDetailed(s, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := res.ObjectiveTrace[0]
	last := res.Objective
	if last >= first {
		t.Fatalf("fixed-step ASD did not descend: %v -> %v", first, last)
	}
}

func TestFixedStepSlowerThanExact(t *testing.T) {
	x, _ := lowRankFixture(10, 20, 23)
	b := dropCells(10, 20, 40, 24)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	base := testOptions(VariantBasic)
	base.Rank = 2
	base.MaxIters = 30
	exact, err := ReconstructDetailed(s, b, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	fixed := base
	fixed.FixedStepSize = 1e-12
	slow, err := ReconstructDetailed(s, b, nil, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Objective < exact.Objective {
		t.Fatalf("fixed step should not beat the exact line search at equal budget: %v vs %v",
			slow.Objective, exact.Objective)
	}
}

func TestFixedStepValidation(t *testing.T) {
	opt := DefaultOptions()
	opt.FixedStepSize = -1
	if err := opt.Validate(); err == nil {
		t.Fatal("negative fixed step should be rejected")
	}
}

package csrecon

import (
	"testing"

	"itscs/internal/mat"
	"itscs/internal/motion"
)

// TestSteadyStateSweepsAllocationFree asserts the workspace rewrite's core
// claim: once the scratch buffers exist, a full L+R ASD sweep performs
// zero heap allocations (with the kernels pinned to the sequential path —
// the parallel fork/join is the one remaining allocation source).
func TestSteadyStateSweepsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	defer mat.SetParallelism(mat.SetParallelism(1))
	x, v := lowRankFixture(20, 40, 41)
	b := dropCells(20, 40, 100, 42)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantVelocityTemporal)
	prob, err := newProblem(s, b, motion.AverageVelocity(v), opt, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	l, r, err := initFactors(s, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up once so the workspace is allocated.
	if _, err := prob.step(l, r, true); err != nil {
		t.Fatal(err)
	}
	if _, err := prob.step(l, r, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := prob.step(l, r, true); err != nil {
			t.Fatal(err)
		}
		if _, err := prob.step(l, r, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ASD sweep allocates %v objects, want 0", allocs)
	}
}

// TestFixedStepObjectiveIncreaseDoesNotTerminate is the regression test
// for the premature-termination bug: with a fixed step size large enough
// to overshoot, a sweep *increases* the objective; the old code read the
// resulting negative relative improvement as convergence and stopped after
// the first bad sweep.
func TestFixedStepObjectiveIncreaseDoesNotTerminate(t *testing.T) {
	x, _ := lowRankFixture(12, 24, 31)
	b := dropCells(12, 24, 60, 32)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantBasic)
	opt.Rank = 2

	// Find the exact first-step size α*, then overshoot it 10×: the drop
	// 2α·num − α²·den is firmly negative there, so sweep 1 must increase
	// the objective.
	prob, err := newProblem(s, b, nil, opt, 12, 24)
	if err != nil {
		t.Fatal(err)
	}
	l, r, err := initFactors(s, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	e1, g, err := prob.residuals(l, r)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := prob.gradL(l, r, e1, g)
	if err != nil {
		t.Fatal(err)
	}
	num, den, err := prob.lineStats(l, r, grad, e1, g, true)
	if err != nil {
		t.Fatal(err)
	}
	if num <= 0 || den <= 0 {
		t.Fatalf("degenerate line search (num=%v den=%v); fixture unusable", num, den)
	}

	opt.FixedStepSize = 10 * num / den
	opt.MaxIters = 6
	res, err := ReconstructDetailed(s, b, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectiveTrace[1] <= res.ObjectiveTrace[0] {
		t.Fatalf("fixture did not overshoot: sweep 1 went %v -> %v",
			res.ObjectiveTrace[0], res.ObjectiveTrace[1])
	}
	if res.Iterations <= 1 {
		t.Fatalf("run terminated after the objective-increasing sweep (iterations=%d); negative improvement must not read as convergence", res.Iterations)
	}
}

// TestZeroObjectiveTerminatesImmediately is the regression test for the
// `obj > 0` guard: a problem that starts at objective zero is converged,
// and must not burn MaxIters no-op sweeps.
func TestZeroObjectiveTerminatesImmediately(t *testing.T) {
	const n, tt = 6, 9
	opt := testOptions(VariantBasic)
	opt.Rank = 2
	opt.MaxIters = 50
	prob, err := newProblem(mat.New(n, tt), mat.Ones(n, tt), nil, opt, n, tt)
	if err != nil {
		t.Fatal(err)
	}
	l := mat.New(n, 2)
	r := mat.New(tt, 2)
	res, err := prob.run(l, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatalf("objective = %v, want 0", res.Objective)
	}
	if res.Iterations != 1 {
		t.Fatalf("zero-objective run took %d sweeps, want termination after 1", res.Iterations)
	}
}

// TestObjectiveReconciledAtExit asserts the drift fix: Result.Objective is
// the exact objective at the final factors, not the incrementally tracked
// estimate.
func TestObjectiveReconciledAtExit(t *testing.T) {
	x, v := lowRankFixture(15, 30, 51)
	b := dropCells(15, 30, 90, 52)
	s, err := x.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(VariantVelocityTemporal)
	opt.MaxIters = 60
	opt.TerminateRatio = 1e-12
	prob, err := newProblem(s, b, motion.AverageVelocity(v), opt, 15, 30)
	if err != nil {
		t.Fatal(err)
	}
	l, r, err := initFactors(s, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.run(l, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	// run mutates l and r in place, so the exact objective at the final
	// factors is recomputable directly.
	exact := prob.objective(l, r)
	if res.Objective != exact {
		t.Fatalf("Result.Objective = %v, want exact objective %v", res.Objective, exact)
	}
	if last := res.ObjectiveTrace[len(res.ObjectiveTrace)-1]; last != exact {
		t.Fatalf("trace tail = %v, want exact objective %v", last, exact)
	}
}

package obs

import (
	"fmt"
	"strconv"
	"sync"
)

// TraceStage is one hop in a report's end-to-end journey through the
// system: the stage name, when it happened, and an optional detail (the
// wal_commit stage carries "replay" when the hop was a recovery replay
// rather than a live append).
type TraceStage struct {
	Name        string `json:"name"`
	AtUnixMicro int64  `json:"at_us"`
	Detail      string `json:"detail,omitempty"`
}

// Trace is the linked record of one stamped report's trip: ingest at a
// front door, WAL commit, the window close that consumed it, detection and
// publication. It is addressable by the propagated trace ID.
type Trace struct {
	// ID is the trace ID in fixed-width hex, as clients quote it.
	ID string `json:"id"`
	// Fleet, Participant and Slot identify the report the trace follows.
	Fleet       string `json:"fleet"`
	Participant int    `json:"participant"`
	Slot        int    `json:"slot"`
	// Origin names the door that stamped the report (direct, router).
	Origin string `json:"origin"`
	// WindowSeq is the sequence number of the first closed window that
	// consumed the report's slot; -1 while the report still waits in the
	// open ring.
	WindowSeq int `json:"window_seq"`
	// Stages is the hop list in arrival order:
	// ingest → wal_commit → window_close → detect → publish.
	Stages []TraceStage `json:"stages"`
}

// TraceIDString renders a trace ID the way every surface quotes it:
// 16 hex digits, zero-padded.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses the hex form TraceIDString produces (leading zeros
// optional).
func ParseTraceID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return id, nil
}

// TraceTable is a bounded, concurrency-safe table of live traces keyed by
// trace ID. When full, Begin evicts the oldest trace FIFO — the same
// retention contract as the span Ring. A nil table ignores every call, so
// tracing stays optional without call-site guards.
type TraceTable struct {
	mu      sync.Mutex
	cap     int
	order   []uint64 // insertion order; order[head:] are live
	head    int
	byID    map[uint64]*Trace
	evicted uint64
}

// NewTraceTable returns a table retaining up to depth traces (≤ 0 retains
// none, and every method is a no-op).
func NewTraceTable(depth int) *TraceTable {
	if depth <= 0 {
		return &TraceTable{}
	}
	return &TraceTable{cap: depth, byID: make(map[uint64]*Trace, depth)}
}

// Begin opens (or reopens, after replay re-delivers a record) the trace
// for id with its ingest stage. atUnixMicro is the door's ingest stamp.
func (t *TraceTable) Begin(id uint64, fleet string, participant, slot int, origin string, atUnixMicro int64) {
	if t == nil || t.cap == 0 || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; ok {
		// Replay of a record whose trace is still retained: keep the
		// original, already-linked trace rather than resetting it.
		return
	}
	for len(t.byID) >= t.cap {
		t.evictOldest()
	}
	t.byID[id] = &Trace{
		ID:          TraceIDString(id),
		Fleet:       fleet,
		Participant: participant,
		Slot:        slot,
		Origin:      origin,
		WindowSeq:   -1,
		Stages:      []TraceStage{{Name: "ingest", AtUnixMicro: atUnixMicro}},
	}
	t.order = append(t.order, id)
	t.compact()
}

// evictOldest drops the oldest live trace. Caller holds t.mu.
func (t *TraceTable) evictOldest() {
	for t.head < len(t.order) {
		id := t.order[t.head]
		t.head++
		if _, ok := t.byID[id]; ok {
			delete(t.byID, id)
			t.evicted++
			return
		}
	}
}

// compact reclaims the consumed prefix of the order slice once it
// dominates the backlog. Caller holds t.mu.
func (t *TraceTable) compact() {
	if t.head > t.cap && t.head*2 > len(t.order) {
		t.order = append(t.order[:0:0], t.order[t.head:]...)
		t.head = 0
	}
}

// Stage appends a stage to the trace for id, if retained.
func (t *TraceTable) Stage(id uint64, name, detail string, atUnixMicro int64) {
	if t == nil || t.cap == 0 || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.byID[id]; ok {
		tr.Stages = append(tr.Stages, TraceStage{Name: name, AtUnixMicro: atUnixMicro, Detail: detail})
	}
}

// StageWindow links a window close to every retained trace whose slot
// falls in [startSlot, endSlot) and that no earlier window has claimed,
// setting WindowSeq and appending the named stage. It returns the linked
// trace IDs (callers pick an exemplar for the window span). Only the first
// claiming window links: with overlapping hops a slot belongs to several
// windows, but freshness is defined against the first close that could
// have detected on the report.
func (t *TraceTable) StageWindow(seq, startSlot, endSlot int, name string, atUnixMicro int64) []uint64 {
	if t == nil || t.cap == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var linked []uint64
	for id, tr := range t.byID {
		if tr.WindowSeq >= 0 || tr.Slot < startSlot || tr.Slot >= endSlot {
			continue
		}
		tr.WindowSeq = seq
		tr.Stages = append(tr.Stages, TraceStage{Name: name, AtUnixMicro: atUnixMicro})
		linked = append(linked, id)
	}
	return linked
}

// StageSeq appends a stage to every retained trace claimed by window seq.
func (t *TraceTable) StageSeq(seq int, name, detail string, atUnixMicro int64) {
	if t == nil || t.cap == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.byID {
		if tr.WindowSeq == seq {
			tr.Stages = append(tr.Stages, TraceStage{Name: name, AtUnixMicro: atUnixMicro, Detail: detail})
		}
	}
}

// Lookup returns a deep copy of the trace for id, if retained.
func (t *TraceTable) Lookup(id uint64) (Trace, bool) {
	if t == nil || t.cap == 0 {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	if !ok {
		return Trace{}, false
	}
	return copyTrace(tr), true
}

// Snapshot copies the retained traces, newest first.
func (t *TraceTable) Snapshot() []Trace {
	if t == nil || t.cap == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.byID))
	for i := len(t.order) - 1; i >= t.head; i-- {
		if tr, ok := t.byID[t.order[i]]; ok {
			out = append(out, copyTrace(tr))
		}
	}
	return out
}

// Len reports how many traces the table currently retains.
func (t *TraceTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// Evicted reports how many traces retention has dropped so far.
func (t *TraceTable) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

func copyTrace(tr *Trace) Trace {
	out := *tr
	out.Stages = append([]TraceStage(nil), tr.Stages...)
	return out
}

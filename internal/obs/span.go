package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Span is the trace record of one window's trip through the streaming
// engine: identity, what the detector saw, how the outer loop behaved, and
// where the wall-clock time went (queue residence plus the per-phase
// DETECT/CORRECT/CHECK split the paper's evaluation is framed around).
type Span struct {
	Fleet string `json:"fleet"`
	Seq   int    `json:"seq"`
	// StartSlot (inclusive) and EndSlot (exclusive) bound the window on the
	// stream's absolute slot timeline.
	StartSlot int `json:"start_slot"`
	EndSlot   int `json:"end_slot"`
	// Observed counts reported cells, Flagged the cells judged faulty.
	Observed int `json:"observed"`
	Flagged  int `json:"flagged"`
	// Iterations counts outer DETECT→CORRECT→CHECK rounds; Sweeps the ASD
	// sweeps summed over both axes and all rounds (the dominant cost).
	Iterations int  `json:"iterations"`
	Sweeps     int  `json:"sweeps"`
	Converged  bool `json:"converged"`
	// WarmStarted reports whether CORRECT consumed the previous window's
	// factorization (warm) or fell back to the SVD init (cold).
	WarmStarted bool `json:"warm_started"`
	// QueueWaitMS is the dispatch-queue residence time; DetectMS, CorrectMS
	// and CheckMS split the detection loop by phase; RunMS is the whole loop.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	DetectMS    float64 `json:"detect_ms"`
	CorrectMS   float64 `json:"correct_ms"`
	CheckMS     float64 `json:"check_ms"`
	RunMS       float64 `json:"run_ms"`
	// CompletedAt stamps when the worker finished the window.
	CompletedAt time.Time `json:"completed_at"`
	// TraceID is an exemplar: the hex trace ID of one stamped report this
	// window consumed, linking the window span to its end-to-end Trace.
	// Empty when the window held no traced reports.
	TraceID string `json:"trace_id,omitempty"`
}

// TotalMS is the window's end-to-end latency: queue wait plus detection.
func (s Span) TotalMS() float64 { return s.QueueWaitMS + s.RunMS }

// LogValue renders the span as a structured group, so a logger can attach
// the whole record with one attr.
func (s Span) LogValue() slog.Value {
	return slog.GroupValue(
		slog.String("fleet", s.Fleet),
		slog.Int("seq", s.Seq),
		slog.Int("start_slot", s.StartSlot),
		slog.Int("end_slot", s.EndSlot),
		slog.Int("observed", s.Observed),
		slog.Int("flagged", s.Flagged),
		slog.Int("iterations", s.Iterations),
		slog.Int("sweeps", s.Sweeps),
		slog.Bool("converged", s.Converged),
		slog.Bool("warm_started", s.WarmStarted),
		slog.Float64("queue_wait_ms", s.QueueWaitMS),
		slog.Float64("detect_ms", s.DetectMS),
		slog.Float64("correct_ms", s.CorrectMS),
		slog.Float64("check_ms", s.CheckMS),
		slog.Float64("run_ms", s.RunMS),
		slog.String("trace_id", s.TraceID),
	)
}

// Ring is a bounded, concurrency-safe buffer of the most recent spans. A
// zero-capacity ring retains nothing; Add never blocks or allocates beyond
// the fixed buffer.
type Ring struct {
	mu   sync.Mutex
	buf  []Span
	next int // index the next Add writes
	n    int // live spans, ≤ len(buf)
}

// NewRing returns a ring retaining up to depth spans (≤ 0 retains none).
func NewRing(depth int) *Ring {
	if depth < 0 {
		depth = 0
	}
	return &Ring{buf: make([]Span, depth)}
}

// Add records a span, evicting the oldest when full.
func (r *Ring) Add(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Snapshot copies the retained spans, newest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[((r.next-1-i)%len(r.buf)+len(r.buf))%len(r.buf)]
	}
	return out
}

// Len reports how many spans the ring currently retains.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Observer receives pipeline window lifecycle events. Implementations must
// be cheap and non-blocking — callbacks run on the engine's ingest and
// worker goroutines — and must not call back into the engine.
type Observer interface {
	// WindowProcessed fires after a window completes the detection loop.
	WindowProcessed(Span)
	// WindowDropped fires when backpressure evicts a queued window (or a
	// crash-style Abort discards one): data acked at ingest that will never
	// be detected on. queueDepth is the dispatch queue's occupancy at the
	// time of the drop.
	WindowDropped(fleet string, seq, queueDepth int)
	// WindowFailed fires when the detection loop refuses a window.
	WindowFailed(fleet string, seq int, err error)
}

// LogObserver is the production Observer: every event becomes a structured
// log line. Processed windows log at debug, or at warn with message
// "slow window" once queue wait plus run time reaches SlowWindow (0
// disables the threshold). Drops and failures always log at warn and error.
type LogObserver struct {
	Log *slog.Logger
	// SlowWindow is the end-to-end latency at which a processed window is
	// escalated from debug to warn.
	SlowWindow time.Duration
}

// WindowProcessed implements Observer.
func (o *LogObserver) WindowProcessed(s Span) {
	lvl, msg := slog.LevelDebug, "window processed"
	if o.SlowWindow > 0 && s.TotalMS() >= float64(o.SlowWindow)/1e6 {
		lvl, msg = slog.LevelWarn, "slow window"
	}
	o.Log.LogAttrs(context.Background(), lvl, msg, slog.Any("window", s))
}

// WindowDropped implements Observer.
func (o *LogObserver) WindowDropped(fleet string, seq, queueDepth int) {
	o.Log.LogAttrs(context.Background(), slog.LevelWarn, "window dropped under backpressure",
		slog.String("fleet", fleet), slog.Int("seq", seq), slog.Int("queue_depth", queueDepth))
}

// WindowFailed implements Observer.
func (o *LogObserver) WindowFailed(fleet string, seq int, err error) {
	o.Log.LogAttrs(context.Background(), slog.LevelError, "window failed",
		slog.String("fleet", fleet), slog.Int("seq", seq), slog.String("err", err.Error()))
}

package obs

import (
	"strings"
	"testing"
)

func TestLintAcceptsValidExposition(t *testing.T) {
	good := `# HELP up Whether the scrape worked.
# TYPE up gauge
up 1
# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{code="200",path="/metrics"} 1027
http_requests_total{code="500",path="/metrics"} 3
# HELP rpc_seconds RPC latency.
# TYPE rpc_seconds histogram
rpc_seconds_bucket{le="0.1"} 2
rpc_seconds_bucket{le="1"} 5
rpc_seconds_bucket{le="+Inf"} 6
rpc_seconds_sum 4.5
rpc_seconds_count 6
untyped_metric 3.14 1700000000
`
	if err := LintExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"bad metric name": "9up 1\n",
		"bad value":       "up one\n",
		"bad type":        "# TYPE up speedometer\n",
		"duplicate TYPE":  "# TYPE up gauge\n# TYPE up gauge\nup 1\n",
		"TYPE after samples": `up 1
# TYPE up gauge
`,
		"duplicate series": "up{a=\"1\"} 1\nup{a=\"1\"} 2\n",
		"counter not _total": `# TYPE hits counter
hits 3
`,
		"negative counter": `# TYPE hits_total counter
hits_total -1
`,
		"unquoted label":    `up{a=1} 1` + "\n",
		"bad escape":        `up{a="\q"} 1` + "\n",
		"unterminated set":  `up{a="1" 1` + "\n",
		"label name __meta": `up{__a="1"} 1` + "\n",
		"bucket without le": `# TYPE h histogram
h_bucket 1
h_sum 0
h_count 1
`,
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 1
h_sum 0
h_count 1
`,
		"non-cumulative buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 0
h_count 5
`,
		"count mismatch": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 0
h_count 4
`,
		"missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 5
`,
		"stray histogram sample": `# TYPE h histogram
h 5
`,
	}
	for name, in := range cases {
		if err := LintExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

func TestLintHistogramPerLabelSet(t *testing.T) {
	// Two phases of the same histogram must be validated independently.
	in := `# TYPE h histogram
h_bucket{phase="a",le="1"} 1
h_bucket{phase="a",le="+Inf"} 2
h_sum{phase="a"} 1.5
h_count{phase="a"} 2
h_bucket{phase="b",le="1"} 0
h_bucket{phase="b",le="+Inf"} 0
h_sum{phase="b"} 0
h_count{phase="b"} 0
`
	if err := LintExposition([]byte(in)); err != nil {
		t.Fatalf("labeled histogram rejected: %v", err)
	}
	broken := strings.Replace(in, `h_count{phase="b"} 0`, `h_count{phase="b"} 9`, 1)
	if err := LintExposition([]byte(broken)); err == nil {
		t.Error("per-label-set count mismatch accepted")
	}
}

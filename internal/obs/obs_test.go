package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "fleet", "cab")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", buf.String(), err)
	}
	if rec["msg"] != "hello" || rec["fleet"] != "cab" {
		t.Errorf("record = %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("below level")
	lg.Warn("visible", "seq", 3)
	out := buf.String()
	if strings.Contains(out, "below level") {
		t.Error("info line leaked through warn level")
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "seq=3") {
		t.Errorf("text output = %q", out)
	}

	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "json", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestDiscardLoggerSilent(t *testing.T) {
	// Must not panic and must not write anywhere observable.
	Discard().Error("dropped")
}

// Package obstest holds observability conformance checks shared by the
// daemons' test suites, so itscs-serve and itscs-router cannot drift apart
// on the /metrics contract: Content-Type negotiation, ?format=json and
// Accept parity, and a lint-clean Prometheus text exposition.
package obstest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"itscs/internal/obs"
)

// CheckMetricsConformance scrapes baseURL's /metrics endpoint every way a
// client legitimately can and verifies the shared contract:
//
//   - default GET serves the Prometheus text exposition with the exact
//     version 0.0.4 Content-Type, and the body passes the format linter;
//   - ?format=json serves an application/json object;
//   - Accept: application/json (including as a non-first media type and as
//     a repeated header) serves the same JSON object;
//   - an unrelated Accept still serves Prometheus text.
//
// It returns the first violation found, nil when conformant.
func CheckMetricsConformance(baseURL string) error {
	url := strings.TrimRight(baseURL, "/") + "/metrics"

	body, ct, err := get(url, nil)
	if err != nil {
		return err
	}
	if ct != obs.PromContentType {
		return fmt.Errorf("default /metrics Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.LintExposition(body); err != nil {
		return fmt.Errorf("default /metrics exposition: %w", err)
	}

	jsonCases := []struct {
		name   string
		url    string
		header http.Header
	}{
		{"?format=json", url + "?format=json", nil},
		{"Accept: application/json", url, http.Header{"Accept": {"application/json"}}},
		{"Accept with q-list", url, http.Header{"Accept": {"text/html, application/json;q=0.9"}}},
		{"repeated Accept", url, http.Header{"Accept": {"text/html", "application/json"}}},
	}
	for _, c := range jsonCases {
		body, ct, err := get(c.url, c.header)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		if !strings.HasPrefix(ct, "application/json") {
			return fmt.Errorf("%s Content-Type = %q, want application/json", c.name, ct)
		}
		var payload map[string]json.RawMessage
		if err := json.Unmarshal(body, &payload); err != nil {
			return fmt.Errorf("%s body is not a JSON object: %w", c.name, err)
		}
	}

	body, ct, err = get(url, http.Header{"Accept": {"text/plain"}})
	if err != nil {
		return fmt.Errorf("Accept text/plain: %w", err)
	}
	if ct != obs.PromContentType {
		return fmt.Errorf("Accept text/plain Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.LintExposition(body); err != nil {
		return fmt.Errorf("Accept text/plain exposition: %w", err)
	}
	return nil
}

// SeriesNames extracts every declared series from a Prometheus text
// exposition as sorted "name kind" lines, one per # TYPE declaration. This
// is the drift-gate fingerprint: values and labels vary run to run, but the
// set of series names a binary exports is part of its operational contract.
func SeriesNames(exposition []byte) []string {
	var names []string
	for _, line := range strings.Split(string(exposition), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			names = append(names, fields[2]+" "+fields[3])
		}
	}
	sort.Strings(names)
	return names
}

// CheckGoldenSeries compares the exposition's series fingerprint against
// the golden list at goldenPath (one "name kind" per line). With update set
// it rewrites the golden instead of comparing — the documented path for an
// intentional metrics change: go test ./cmd/<binary>/ -run TestMetricsDrift -update.
// Renamed or silently dropped series fail with a line-level diff.
func CheckGoldenSeries(goldenPath string, exposition []byte, update bool) error {
	got := SeriesNames(exposition)
	if update {
		data := strings.Join(got, "\n") + "\n"
		if err := os.MkdirAll(strings.TrimSuffix(goldenPath, "/"+lastSegment(goldenPath)), 0o755); err != nil {
			return err
		}
		return os.WriteFile(goldenPath, []byte(data), 0o644)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("reading golden series list (run with -update to create it): %w", err)
	}
	var want []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			want = append(want, line)
		}
	}
	gotSet, wantSet := toSet(got), toSet(want)
	var diff []string
	for _, name := range want {
		if !gotSet[name] {
			diff = append(diff, "- "+name+" (dropped or renamed)")
		}
	}
	for _, name := range got {
		if !wantSet[name] {
			diff = append(diff, "+ "+name+" (new, not in golden)")
		}
	}
	if len(diff) > 0 {
		return fmt.Errorf("metric series drift against %s — if intentional, re-run with -update and review the diff:\n%s",
			goldenPath, strings.Join(diff, "\n"))
	}
	return nil
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func get(url string, header http.Header) (body []byte, contentType string, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return body, resp.Header.Get("Content-Type"), nil
}

package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-format (version 0.0.4)
// exposition the way `promtool check metrics` would, without the
// dependency: syntax of comment and sample lines, metric/label name
// charsets, TYPE-before-samples ordering, duplicate series, counter naming,
// and histogram integrity (cumulative le buckets ending in +Inf whose count
// matches <name>_count, with <name>_sum present). It returns the first
// violation found, or nil for a clean exposition.
func LintExposition(data []byte) error {
	typed := make(map[string]string)       // metric name → declared type
	sampled := make(map[string]bool)       // base names that have emitted samples
	series := make(map[string]bool)        // duplicate-series detection
	hists := make(map[string]*histSamples) // histogram accumulation by base name

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, lineNo, typed, sampled); err != nil {
				return err
			}
			continue
		}
		name, labels, value, err := parseSample(line, lineNo)
		if err != nil {
			return err
		}
		key := name + "{" + canonLabels(labels) + "}"
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true

		base, suffix := splitHistName(name, typed)
		sampled[base] = true
		typ := typed[base]
		if typ == "counter" {
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter %q should end in _total", lineNo, name)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %q has negative value %v", lineNo, name, value)
			}
		}
		if typ == "histogram" {
			h := hists[base]
			if h == nil {
				h = &histSamples{buckets: make(map[string][]lePair), sums: make(map[string]bool), counts: make(map[string]float64)}
				hists[base] = h
			}
			if err := h.add(suffix, labels, value, lineNo, name); err != nil {
				return err
			}
		}
	}
	for base, h := range hists {
		if err := h.check(base); err != nil {
			return err
		}
	}
	return nil
}

// lintComment validates a # HELP / # TYPE line (other comments pass).
func lintComment(line string, lineNo int, typed map[string]string, sampled map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("line %d: second TYPE line for %s", lineNo, name)
		}
		if sampled[name] {
			return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
		}
		typed[name] = typ
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]` into parts.
func parseSample(line string, lineNo int) (name string, labels []Label, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("line %d: invalid metric name in %q", lineNo, line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("line %d: unterminated label set in %q", lineNo, line)
		}
		labels, err = parseLabels(rest[1:end], lineNo)
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("line %d: want `value [timestamp]` after series, got %q", lineNo, rest)
	}
	value, err = strconv.ParseFloat(strings.TrimPrefix(fields[0], "+"), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("line %d: bad sample value %q", lineNo, fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
		}
	}
	return name, labels, value, nil
}

// findLabelsEnd locates the closing brace, honoring quoted label values.
func findLabelsEnd(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// parseLabels splits `a="x",b="y"` into pairs, validating names and escapes.
func parseLabels(s string, lineNo int) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("line %d: label without value in %q", lineNo, s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("line %d: unquoted value for label %q", lineNo, name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("line %d: dangling escape in label %q", lineNo, name)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("line %d: bad escape \\%c in label %q", lineNo, s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("line %d: unterminated value for label %q", lineNo, name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// histSamples accumulates one histogram's series, keyed by its non-le
// label sets.
type histSamples struct {
	buckets map[string][]lePair
	sums    map[string]bool
	counts  map[string]float64
}

type lePair struct {
	le  float64
	val float64
}

func (h *histSamples) add(suffix string, labels []Label, value float64, lineNo int, name string) error {
	var rest []Label
	le := ""
	for _, l := range labels {
		if l.Name == "le" {
			le = l.Value
			continue
		}
		rest = append(rest, l)
	}
	key := canonLabels(rest)
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("line %d: %s without an le label", lineNo, name)
		}
		bound, err := strconv.ParseFloat(strings.TrimPrefix(le, "+"), 64)
		if err != nil {
			return fmt.Errorf("line %d: unparseable le %q on %s", lineNo, le, name)
		}
		h.buckets[key] = append(h.buckets[key], lePair{le: bound, val: value})
	case "_sum":
		h.sums[key] = true
	case "_count":
		h.counts[key] = value
	default:
		return fmt.Errorf("line %d: histogram sample %s must end in _bucket, _sum or _count", lineNo, name)
	}
	return nil
}

// check enforces histogram integrity per label set.
func (h *histSamples) check(base string) error {
	for key, pairs := range h.buckets {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].le < pairs[j].le })
		prev := -1.0
		haveInf := false
		var infVal float64
		for _, p := range pairs {
			if p.val < prev {
				return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative at le=%v", base, key, p.le)
			}
			prev = p.val
			if p.le > 1e308 { // +Inf
				haveInf = true
				infVal = p.val
			}
		}
		if !haveInf {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", base, key)
		}
		count, ok := h.counts[key]
		if !ok {
			return fmt.Errorf("histogram %s{%s}: missing %s_count", base, key, base)
		}
		if count != infVal {
			return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", base, key, count, infVal)
		}
		if !h.sums[key] {
			return fmt.Errorf("histogram %s{%s}: missing %s_sum", base, key, base)
		}
	}
	return nil
}

// splitHistName maps a sample name onto its TYPE-declared base: for a
// declared histogram, `x_bucket` belongs to `x`. Returns the base name and
// the histogram suffix ("" for plain samples).
func splitHistName(name string, typed map[string]string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b := strings.TrimSuffix(name, suf); b != name && typed[b] == "histogram" {
			return b, suf
		}
	}
	return name, ""
}

// canonLabels serializes labels order-independently for dedup keys.
func canonLabels(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c == '_' || c == ':':
		return true
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

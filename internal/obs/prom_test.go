package obs

import (
	"strings"
	"testing"
	"time"

	"itscs/internal/metrics"
)

func TestPromCountersAndGauges(t *testing.T) {
	p := NewProm()
	p.Counter("itscs_reports_ingested_total", "Accepted reports.", 42)
	p.Counter("itscs_fleet_windows_dropped_total", "Drops by fleet.", 3, Label{"fleet", "cab"})
	p.Counter("itscs_fleet_windows_dropped_total", "Drops by fleet.", 1, Label{"fleet", `we"ird\fleet`})
	p.Gauge("itscs_queue_depth", "Queue occupancy.", 7)
	out := string(p.Bytes())

	for _, want := range []string{
		"# HELP itscs_reports_ingested_total Accepted reports.\n",
		"# TYPE itscs_reports_ingested_total counter\n",
		"itscs_reports_ingested_total 42\n",
		`itscs_fleet_windows_dropped_total{fleet="cab"} 3` + "\n",
		`itscs_fleet_windows_dropped_total{fleet="we\"ird\\fleet"} 1` + "\n",
		"# TYPE itscs_queue_depth gauge\n",
		"itscs_queue_depth 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The shared-name counter must emit its header exactly once.
	if n := strings.Count(out, "# TYPE itscs_fleet_windows_dropped_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
	if err := LintExposition(p.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestPromHistogram(t *testing.T) {
	var h metrics.Histogram
	h.Observe(500 * time.Microsecond) // le 1 ms bucket
	h.Observe(3 * time.Millisecond)   // le 4 ms bucket
	h.Observe(90 * time.Second)       // overflow

	p := NewProm()
	p.Histogram("itscs_phase_latency_seconds", "Per-phase latency.", h.Snapshot(), Label{"phase", "detect"})
	out := string(p.Bytes())

	for _, want := range []string{
		"# TYPE itscs_phase_latency_seconds histogram",
		`itscs_phase_latency_seconds_bucket{phase="detect",le="0.001"} 1`,
		`itscs_phase_latency_seconds_bucket{phase="detect",le="0.004"} 2`,
		`itscs_phase_latency_seconds_bucket{phase="detect",le="32.768"} 2`,
		`itscs_phase_latency_seconds_bucket{phase="detect",le="+Inf"} 3`,
		`itscs_phase_latency_seconds_count{phase="detect"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `itscs_phase_latency_seconds_sum{phase="detect"} 90.00`) {
		t.Errorf("sum not in seconds:\n%s", out)
	}
	if err := LintExposition(p.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}

	// An empty histogram still renders the full shape-stable bucket scheme.
	p = NewProm()
	p.Histogram("x_seconds", "Empty.", metrics.HistogramSnapshot{Buckets: map[int64]uint64{}})
	if got := strings.Count(string(p.Bytes()), "x_seconds_bucket"); got != len(metrics.HistBuckets)+1 {
		t.Errorf("empty histogram rendered %d buckets, want %d", got, len(metrics.HistBuckets)+1)
	}
	if err := LintExposition(p.Bytes()); err != nil {
		t.Errorf("empty histogram lint: %v", err)
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		0: "0", 42: "42", 0.001: "0.001", 1.5: "1.5",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"

	"itscs/internal/metrics"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair. Values are escaped on render.
type Label struct {
	Name, Value string
}

// Prom accumulates a Prometheus text-format exposition. It is not safe for
// concurrent use; build one per scrape from metric snapshots. The first
// sample of each metric name emits the # HELP / # TYPE header; later
// samples of the same name (other label sets) append beneath it, so calls
// for one name must be contiguous to produce a valid exposition.
type Prom struct {
	buf   bytes.Buffer
	typed map[string]string
}

// NewProm returns an empty exposition builder.
func NewProm() *Prom {
	return &Prom{typed: make(map[string]string)}
}

// Counter appends one sample of a monotonically increasing metric. By
// convention the name should end in _total.
func (p *Prom) Counter(name, help string, value float64, labels ...Label) {
	p.header(name, help, "counter")
	p.sample(name, labels, value)
}

// Gauge appends one sample of a point-in-time metric.
func (p *Prom) Gauge(name, help string, value float64, labels ...Label) {
	p.header(name, help, "gauge")
	p.sample(name, labels, value)
}

// Histogram renders a metrics.Histogram snapshot as a native Prometheus
// histogram. The snapshot's bucket bounds are milliseconds; the exposition
// follows the Prometheus convention of seconds, so a 64 ms bound renders as
// le="0.064". Buckets are cumulative and always include the full fixed
// scheme plus le="+Inf", so scrapes are shape-stable even when empty.
func (p *Prom) Histogram(name, help string, s metrics.HistogramSnapshot, labels ...Label) {
	p.HistogramBounds(name, help, metrics.HistBuckets[:], s, labels...)
}

// HistogramBounds renders a histogram snapshot over an explicit
// millisecond bucket scheme (metrics.BoundedHistogram snapshots pair with
// the bounds they were built over, e.g. metrics.AgeBuckets for the
// freshness histograms). Unit conversion and shape stability match
// Histogram.
func (p *Prom) HistogramBounds(name, help string, boundsMS []int64, s metrics.HistogramSnapshot, labels ...Label) {
	p.header(name, help, "histogram")
	var cum uint64
	for _, boundMS := range boundsMS {
		cum += s.Buckets[boundMS]
		p.sample(name+"_bucket", withLabel(labels, "le", formatFloat(float64(boundMS)/1000)), float64(cum))
	}
	cum += s.Buckets[-1] // the snapshot keys its overflow bucket as -1
	p.sample(name+"_bucket", withLabel(labels, "le", "+Inf"), float64(cum))
	p.sample(name+"_sum", labels, s.SumMS/1000)
	p.sample(name+"_count", labels, float64(s.Count))
}

// HistogramRaw renders a pre-aggregated histogram whose bounds are already
// in seconds. counts holds one entry per bound plus a trailing overflow
// bucket; sumS is the observation sum in seconds. The runtime self-metrics
// (GC pause histogram) use it because their source data never passes
// through a metrics.Histogram.
func (p *Prom) HistogramRaw(name, help string, boundsS []float64, counts []uint64, sumS float64, count uint64, labels ...Label) {
	p.header(name, help, "histogram")
	var cum uint64
	for i, bound := range boundsS {
		if i < len(counts) {
			cum += counts[i]
		}
		p.sample(name+"_bucket", withLabel(labels, "le", formatFloat(bound)), float64(cum))
	}
	if len(counts) > len(boundsS) {
		cum += counts[len(boundsS)]
	}
	p.sample(name+"_bucket", withLabel(labels, "le", "+Inf"), float64(cum))
	p.sample(name+"_sum", labels, sumS)
	p.sample(name+"_count", labels, float64(count))
}

// Bytes returns the exposition built so far.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }

// header writes # HELP and # TYPE once per metric name. A name re-used
// with a different type keeps its first registration: the exposition stays
// parseable and the mistake shows up in the lint test, not as a panic in
// the serving path.
func (p *Prom) header(name, help, typ string) {
	if _, ok := p.typed[name]; ok {
		return
	}
	p.typed[name] = typ
	p.buf.WriteString("# HELP ")
	p.buf.WriteString(name)
	p.buf.WriteByte(' ')
	p.buf.WriteString(escapeHelp(help))
	p.buf.WriteByte('\n')
	p.buf.WriteString("# TYPE ")
	p.buf.WriteString(name)
	p.buf.WriteByte(' ')
	p.buf.WriteString(typ)
	p.buf.WriteByte('\n')
}

// sample writes one `name{labels} value` line.
func (p *Prom) sample(name string, labels []Label, value float64) {
	p.buf.WriteString(name)
	if len(labels) > 0 {
		p.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.buf.WriteByte(',')
			}
			p.buf.WriteString(l.Name)
			p.buf.WriteString(`="`)
			p.buf.WriteString(escapeLabel(l.Value))
			p.buf.WriteByte('"')
		}
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
	p.buf.WriteString(formatFloat(value))
	p.buf.WriteByte('\n')
}

// withLabel appends one label without aliasing the caller's slice.
func withLabel(labels []Label, name, value string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Name: name, Value: value})
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with the spellings +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}

// escapeHelp escapes a help string (quotes stay literal there).
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

package obs

import (
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
)

// gcPauseBoundsS are the GC pause histogram bounds in seconds: sub-100 µs
// pauses are the Go collector's healthy regime, tens of milliseconds mean
// the stop-the-world phases are interfering with window deadlines.
var gcPauseBoundsS = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

// Runtime accumulates Go runtime self-metrics for a daemon's /metrics
// exposition: goroutine count, heap shape, GC cycles, and a cumulative GC
// pause histogram. Safe for concurrent use; one instance per process.
//
// The pause histogram has to be folded incrementally: runtime.MemStats
// only retains the last 256 pauses, so Emit tracks the newest GC cycle it
// has seen and folds only the pauses that happened since, keeping the
// exposed histogram monotone across scrapes no matter the scrape interval.
type Runtime struct {
	mu          sync.Mutex
	lastNumGC   uint32
	pauseCounts []uint64 // len(gcPauseBoundsS)+1, overflow last
	pauseSumS   float64
	pauseN      uint64
}

// NewRuntime returns a runtime self-metrics accumulator.
func NewRuntime() *Runtime {
	return &Runtime{pauseCounts: make([]uint64, len(gcPauseBoundsS)+1)}
}

// Emit folds the runtime state since the previous call and appends the
// self-metric series to p, each named with the given prefix (for example
// "itscs_" yields itscs_go_goroutines).
func (rt *Runtime) Emit(p *Prom, prefix string) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)

	rt.mu.Lock()
	// Fold pauses for GC cycles (lastNumGC, NumGC]; PauseNs is a ring
	// indexed by (cycle-1)%256, and cycles more than 256 back are gone.
	from := rt.lastNumGC + 1
	if m.NumGC > 256 && from < m.NumGC-255 {
		from = m.NumGC - 255
	}
	for k := from; k <= m.NumGC; k++ {
		pauseS := float64(m.PauseNs[(k+255)%256]) / 1e9
		i := 0
		for ; i < len(gcPauseBoundsS); i++ {
			if pauseS <= gcPauseBoundsS[i] {
				break
			}
		}
		rt.pauseCounts[i]++
		rt.pauseSumS += pauseS
		rt.pauseN++
	}
	rt.lastNumGC = m.NumGC
	counts := append([]uint64(nil), rt.pauseCounts...)
	sumS, n := rt.pauseSumS, rt.pauseN
	rt.mu.Unlock()

	p.Gauge(prefix+"go_goroutines", "Current number of goroutines.", float64(runtime.NumGoroutine()))
	p.Gauge(prefix+"go_heap_alloc_bytes", "Heap bytes allocated and still in use.", float64(m.HeapAlloc))
	p.Gauge(prefix+"go_heap_sys_bytes", "Heap bytes obtained from the OS.", float64(m.HeapSys))
	p.Gauge(prefix+"go_heap_objects", "Number of allocated heap objects.", float64(m.HeapObjects))
	p.Counter(prefix+"go_gc_cycles_total", "Completed GC cycles.", float64(m.NumGC))
	p.HistogramRaw(prefix+"go_gc_pause_seconds", "Stop-the-world GC pause durations.",
		gcPauseBoundsS, counts, sumS, n)
}

// BuildInfoAttrs returns the module path, version, Go toolchain and VCS
// revision as slog attrs, for the startup banner both daemons emit. Values
// default to "unknown" when the binary was built without module or VCS
// metadata, so the banner's shape is stable.
func BuildInfoAttrs() []slog.Attr {
	module, version, revision := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	return []slog.Attr{
		slog.String("module", module),
		slog.String("version", version),
		slog.String("revision", revision),
		slog.String("go", runtime.Version()),
	}
}

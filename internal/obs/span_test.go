package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingRetainsNewestFirst(t *testing.T) {
	r := NewRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for seq := 0; seq < 5; seq++ {
		r.Add(Span{Seq: seq})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	for i, want := range []int{4, 3, 2} {
		if got[i].Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
}

func TestRingZeroDepth(t *testing.T) {
	for _, depth := range []int{0, -4} {
		r := NewRing(depth)
		r.Add(Span{Seq: 1})
		if r.Len() != 0 || len(r.Snapshot()) != 0 {
			t.Errorf("depth %d ring retained spans", depth)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Span{Seq: g*100 + i})
				r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
}

func TestLogObserverSlowWindowEscalates(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", "warn") // warn level: debug lines invisible
	if err != nil {
		t.Fatal(err)
	}
	o := &LogObserver{Log: lg, SlowWindow: 100 * time.Millisecond}

	o.WindowProcessed(Span{Fleet: "cab", Seq: 1, QueueWaitMS: 1, RunMS: 5})
	if buf.Len() != 0 {
		t.Errorf("fast window logged above debug: %q", buf.String())
	}

	o.WindowProcessed(Span{Fleet: "cab", Seq: 2, QueueWaitMS: 60, RunMS: 50})
	out := buf.String()
	if !strings.Contains(out, "slow window") || !strings.Contains(out, "level=WARN") {
		t.Errorf("slow window not warned: %q", out)
	}
	if !strings.Contains(out, "fleet=cab") || !strings.Contains(out, "seq=2") {
		t.Errorf("span fields missing: %q", out)
	}

	buf.Reset()
	o.WindowDropped("cab", 7, 16)
	if out := buf.String(); !strings.Contains(out, "dropped") || !strings.Contains(out, "seq=7") {
		t.Errorf("drop log = %q", out)
	}

	buf.Reset()
	o.WindowFailed("cab", 9, fmt.Errorf("boom"))
	if out := buf.String(); !strings.Contains(out, "level=ERROR") || !strings.Contains(out, "boom") {
		t.Errorf("failure log = %q", out)
	}
}

func TestLogObserverZeroThresholdNeverWarns(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	o := &LogObserver{Log: lg} // SlowWindow 0: threshold disabled
	o.WindowProcessed(Span{Fleet: "cab", RunMS: 1e9})
	if buf.Len() != 0 {
		t.Errorf("disabled threshold still warned: %q", buf.String())
	}
}

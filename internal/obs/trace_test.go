package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := TraceIDString(id)
		if len(s) != 16 {
			t.Errorf("TraceIDString(%d) = %q, want 16 hex digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %d, %v; want %d", s, got, err, id)
		}
	}
	// Leading zeros are optional on input.
	if got, err := ParseTraceID("ff"); err != nil || got != 255 {
		t.Errorf("ParseTraceID(ff) = %d, %v", got, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
	if _, err := ParseTraceID(""); err == nil {
		t.Error("ParseTraceID accepted the empty string")
	}
}

func TestTraceTableLifecycle(t *testing.T) {
	tab := NewTraceTable(8)
	tab.Begin(7, "cab", 3, 5, "direct", 1000)
	tab.Stage(7, "wal_commit", "", 1500)

	// A window whose range misses the slot links nothing.
	if linked := tab.StageWindow(0, 10, 20, "window_close", 2000); len(linked) != 0 {
		t.Errorf("out-of-range window linked %v", linked)
	}
	// The covering window claims the trace and returns its id.
	linked := tab.StageWindow(1, 0, 10, "window_close", 2500)
	if len(linked) != 1 || linked[0] != 7 {
		t.Fatalf("linked = %v, want [7]", linked)
	}
	// A later overlapping window must not claim it again: freshness is
	// defined against the first close that could detect on the report.
	if linked := tab.StageWindow(2, 0, 10, "window_close", 3000); len(linked) != 0 {
		t.Errorf("second window re-claimed %v", linked)
	}
	tab.StageSeq(1, "detect", "flagged=2", 3500)
	tab.StageSeq(1, "publish", "", 4000)
	tab.StageSeq(9, "detect", "", 9999) // unrelated seq: no-op

	tr, ok := tab.Lookup(7)
	if !ok {
		t.Fatal("trace 7 not retained")
	}
	if tr.WindowSeq != 1 || tr.Fleet != "cab" || tr.Origin != "direct" {
		t.Errorf("trace = %+v", tr)
	}
	want := []string{"ingest", "wal_commit", "window_close", "detect", "publish"}
	if len(tr.Stages) != len(want) {
		t.Fatalf("stages = %+v, want %v", tr.Stages, want)
	}
	for i, s := range tr.Stages {
		if s.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, want[i])
		}
	}

	// Reopening a retained id (replay) keeps the linked original.
	tab.Begin(7, "cab", 3, 5, "direct", 777)
	tr, _ = tab.Lookup(7)
	if tr.WindowSeq != 1 || tr.Stages[0].AtUnixMicro != 1000 {
		t.Errorf("replay Begin reset the trace: %+v", tr)
	}

	// Lookup returns a deep copy: mutating it must not leak back.
	tr.Stages[0].Name = "tampered"
	if again, _ := tab.Lookup(7); again.Stages[0].Name != "ingest" {
		t.Error("Lookup returned a shared slice")
	}
}

func TestTraceTableEviction(t *testing.T) {
	tab := NewTraceTable(4)
	for id := uint64(1); id <= 10; id++ {
		tab.Begin(id, "cab", 0, int(id), "direct", int64(id))
	}
	if got := tab.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tab.Evicted(); got != 6 {
		t.Errorf("Evicted = %d, want 6", got)
	}
	for id := uint64(1); id <= 6; id++ {
		if _, ok := tab.Lookup(id); ok {
			t.Errorf("evicted trace %d still retained", id)
		}
	}
	snap := tab.Snapshot()
	if len(snap) != 4 || snap[0].ID != TraceIDString(10) || snap[3].ID != TraceIDString(7) {
		t.Errorf("snapshot = %+v, want ids 10..7 newest first", snap)
	}

	// Depth 0 disables retention entirely.
	off := NewTraceTable(0)
	off.Begin(1, "cab", 0, 0, "direct", 1)
	if off.Len() != 0 {
		t.Error("disabled table retained a trace")
	}
	// And a nil table ignores everything.
	var nilTab *TraceTable
	nilTab.Begin(1, "x", 0, 0, "direct", 1)
	nilTab.Stage(1, "s", "", 2)
	if nilTab.Len() != 0 || nilTab.Evicted() != 0 || nilTab.Snapshot() != nil {
		t.Error("nil table misbehaved")
	}
}

// TestTraceTableConcurrentWindowCloses hammers one table from many
// goroutines playing the engine's roles at once — doors beginning traces,
// shards closing overlapping windows, stage appends, and readers
// snapshotting mid-eviction. Run under -race (CI does) this pins the
// locking; the invariant checked here is single-claim: every trace is
// linked by exactly one window even when closes race.
func TestTraceTableConcurrentWindowCloses(t *testing.T) {
	const (
		writers = 8
		perW    = 200
		depth   = 64
	)
	tab := NewTraceTable(depth)
	var wg sync.WaitGroup
	claims := make([][]uint64, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := uint64(g*perW + i + 1)
				slot := int(id % 50)
				tab.Begin(id, fmt.Sprintf("fleet-%d", g), g, slot, "router", int64(id))
				tab.Stage(id, "wal_commit", "", int64(id)+1)
				// Overlapping closes: [0,50) from every goroutine, racing to
				// claim whatever is currently unclaimed.
				claims[g] = append(claims[g], tab.StageWindow(g, 0, 50, "window_close", int64(id)+2)...)
				tab.StageSeq(g, "detect", "", int64(id)+3)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tab.Snapshot()
			tab.Lookup(uint64(i))
			tab.Len()
			tab.Evicted()
		}
	}()
	wg.Wait()
	<-done

	// No trace was claimed twice across all racing closes.
	seen := map[uint64]int{}
	for g := range claims {
		for _, id := range claims[g] {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("trace %d claimed by %d windows", id, n)
		}
	}
	if tab.Len() != depth {
		t.Errorf("Len = %d, want %d after sustained eviction", tab.Len(), depth)
	}
	if want := uint64(writers*perW - depth); tab.Evicted() != want {
		t.Errorf("Evicted = %d, want %d", tab.Evicted(), want)
	}
	// Every retained trace is internally consistent: stages in time order,
	// and a window_close stage iff the trace was claimed.
	for _, tr := range tab.Snapshot() {
		hasClose := false
		for i, s := range tr.Stages {
			if s.Name == "window_close" {
				hasClose = true
			}
			if i > 0 && s.AtUnixMicro < tr.Stages[i-1].AtUnixMicro {
				t.Errorf("trace %s stages out of order: %+v", tr.ID, tr.Stages)
				break
			}
		}
		if hasClose != (tr.WindowSeq >= 0) {
			t.Errorf("trace %s: window_close stage %v but seq %d", tr.ID, hasClose, tr.WindowSeq)
		}
	}
}

package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// WantsJSON reports whether a request for a dual-format endpoint asked for
// the JSON form: either ?format=json or any Accept header value naming
// application/json. The default (no preference) is the Prometheus text
// exposition, so a stock scrape config works unconfigured. itscs-serve and
// itscs-router share this so their /metrics negotiation cannot drift.
func WantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		if strings.Contains(accept, "application/json") {
			return true
		}
	}
	return false
}

// WriteJSON writes v as an indented application/json response, the one
// JSON shape both daemons serve.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Package obs is the serving stack's observability layer: structured
// logging (log/slog construction shared by the daemon and the examples), a
// dependency-free Prometheus text-format exposition builder plus a matching
// lint pass, and per-window trace spans with a bounded retention ring.
//
// The package deliberately owns no global state: the daemon constructs a
// Logger, hands the pipeline an Observer, and renders /metrics from
// snapshots. Everything here is safe for concurrent use unless noted.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFormats lists the values NewLogger accepts for format.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a leveled slog.Logger writing to w. format selects the
// handler ("text" for human-readable key=value lines, "json" for one JSON
// object per line); level is one of "debug", "info", "warn", "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// ParseLevel maps the daemon's -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Discard returns a logger that drops everything; it stands in wherever a
// component requires a non-nil logger but the caller wants silence (tests,
// library use of the pipeline without a daemon around it).
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"itscs/internal/fault"
	"itscs/internal/mat"
)

// Checkpoint file layout ("checkpoint-<hex LogIndex>.ckpt"):
//
//	8 bytes  magic "ITSCSCKP"
//	u32      version (3; version-1 files end after the shards and load
//	         with a nil Reputation blob, version-2 files lack the TS ring
//	         and load with a nil TS — the engine then rebuilds a zero
//	         stamp ring and freshness restarts unstamped)
//	body     (CRC32C-protected):
//	  u64    LogIndex — replay origin: every record with index below this
//	         is reflected in the shard snapshots
//	  u32×3  Participants, WindowSlots, HopSlots — engine shape guard
//	  u32    shard count, then per shard:
//	    u32+bytes  fleet ID
//	    u64        Start (open window's first slot)
//	    u64        Seq (sequence the open window will get)
//	    u64        WarmSeq+1 (0 encodes "no warm state yet")
//	    5×matrix   SX SY VX VY EX rings (mat binary framing)
//	    matrix     (version ≥ 3) TS ingest-stamp ring (unix micros)
//	    u8         warm-present flag, then 4×matrix L/R factors per axis
//	  u32+bytes  (version ≥ 2) opaque reputation-ledger blob; the WAL
//	             layer never interprets it, it just carries the bytes so
//	             the trust ledger shares the shards' crash consistency
//	u32      CRC32C of the body
//
// Files are written to a temp name, fsynced, renamed into place, and the
// directory fsynced — a crash mid-write leaves either the old checkpoint
// set or the new one, never a half file under the real name.

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	ckptMagic  = "ITSCSCKP"
	// ckptVersionV1 files predate the reputation section; ckptVersionV2
	// files predate the TS ingest-stamp ring. Both still load, degraded as
	// the layout comment describes. ckptVersion is what new files are
	// written as.
	ckptVersionV1 = 1
	ckptVersionV2 = 2
	ckptVersion   = 3
	// maxReputationBlob bounds the reputation section's claimed size before
	// allocation, like maxShards and maxFleetNameLen bound theirs.
	maxReputationBlob = 1 << 26
)

// ErrNoCheckpoint is returned by LatestCheckpoint when the directory holds
// no loadable checkpoint.
var ErrNoCheckpoint = errors.New("wal: no usable checkpoint")

// ShardCheckpoint is one fleet's frozen stream state: the ring-buffered
// sensory matrices, the open window's position, and the warm-start factors
// carried from the newest processed window.
type ShardCheckpoint struct {
	Fleet   string
	Start   int
	Seq     int
	WarmSeq int // -1 when no window has completed yet

	// SX, SY, VX, VY, EX are the Participants×(W+H) ring buffers.
	SX, SY, VX, VY, EX *mat.Dense

	// TS is the ingest-stamp ring (unix microseconds as float64, exact
	// below 2⁵³): the same shape as EX, zero where a cell is unstamped.
	// Nil when loaded from a pre-v3 file; the engine restores a zero ring.
	TS *mat.Dense

	// WarmLX/WarmRX and WarmLY/WarmRY are the per-axis L·Rᵀ factors; all
	// nil when the fleet has no warm state.
	WarmLX, WarmRX, WarmLY, WarmRY *mat.Dense
}

// Checkpoint is a consistent snapshot of the streaming engine's durable
// state. Records with log index >= LogIndex must be replayed on top of it;
// records below are already reflected in the shards (replaying them anyway
// is safe — they surface as duplicate-report rejections).
type Checkpoint struct {
	LogIndex     uint64
	Participants int
	WindowSlots  int
	HopSlots     int
	Shards       []ShardCheckpoint

	// Reputation is the trust ledger's serialized state, carried opaquely
	// (the WAL layer neither produces nor interprets it — the daemon fills
	// it from reputation.Ledger.MarshalBinary after Engine.Checkpoint and
	// restores it after Engine.Restore). Nil for version-1 files and for
	// engines running without a ledger; restoring nil resets the ledger,
	// which then rebuilds from the replayed WAL tail onward.
	Reputation []byte
}

// CheckpointPath names the file a checkpoint at the given log index is
// stored under.
func CheckpointPath(dir string, logIndex uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, logIndex, ckptSuffix))
}

// WriteCheckpoint atomically persists ck into dir and returns its path.
func WriteCheckpoint(dir string, ck *Checkpoint) (string, error) {
	return WriteCheckpointFS(fault.OS(), dir, ck)
}

// WriteCheckpointFS is WriteCheckpoint through an explicit filesystem seam,
// so the fault harness can tear or fail any step of the atomic protocol.
func WriteCheckpointFS(fsys fault.FS, dir string, ck *Checkpoint) (string, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	tmp, err := fsys.CreateTemp(dir, ".tmp-checkpoint-*")
	if err != nil {
		return "", fmt.Errorf("wal: checkpoint temp: %w", err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after the rename succeeds

	if err := writeCheckpointTo(tmp, ck); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("wal: checkpoint close: %w", err)
	}
	path := CheckpointPath(dir, ck.LogIndex)
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		return "", err
	}
	return path, nil
}

// crcWriter tees writes through a CRC32C.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	return n, err
}

func writeCheckpointTo(w io.Writer, ck *Checkpoint) error {
	return writeCheckpointVersioned(w, ck, ckptVersion)
}

// writeCheckpointVersioned writes ck in an explicit format version.
// Production always writes ckptVersion; the older layouts exist so the
// compatibility tests can produce genuine v1/v2 files.
func writeCheckpointVersioned(w io.Writer, ck *Checkpoint, version uint32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := make([]byte, 0, len(ckptMagic)+4)
	hdr = append(hdr, ckptMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	cw := &crcWriter{w: bw, crc: crc32.New(castagnoli)}

	writeU64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	writeU32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}

	if err := writeU64(ck.LogIndex); err != nil {
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	for _, v := range [...]int{ck.Participants, ck.WindowSlots, ck.HopSlots, len(ck.Shards)} {
		if err := writeU32(uint32(v)); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
	}
	for i := range ck.Shards {
		sc := &ck.Shards[i]
		if err := writeU32(uint32(len(sc.Fleet))); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
		if _, err := io.WriteString(cw, sc.Fleet); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
		for _, v := range [...]uint64{uint64(sc.Start), uint64(sc.Seq), uint64(sc.WarmSeq + 1)} {
			if err := writeU64(v); err != nil {
				return fmt.Errorf("wal: checkpoint write: %w", err)
			}
		}
		for _, m := range [...]*mat.Dense{sc.SX, sc.SY, sc.VX, sc.VY, sc.EX} {
			if err := mat.WriteBinary(cw, m); err != nil {
				return fmt.Errorf("wal: checkpoint matrix: %w", err)
			}
		}
		if version >= ckptVersion {
			ts := sc.TS
			if ts == nil {
				// A shard snapshotted without stamps still writes a full ring
				// so the v3 layout stays positionally fixed.
				rows, cols := sc.EX.Dims()
				ts = mat.New(rows, cols)
			}
			if err := mat.WriteBinary(cw, ts); err != nil {
				return fmt.Errorf("wal: checkpoint stamp matrix: %w", err)
			}
		}
		warm := sc.WarmLX != nil
		flag := byte(0)
		if warm {
			flag = 1
		}
		if _, err := cw.Write([]byte{flag}); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
		if warm {
			for _, m := range [...]*mat.Dense{sc.WarmLX, sc.WarmRX, sc.WarmLY, sc.WarmRY} {
				if err := mat.WriteBinary(cw, m); err != nil {
					return fmt.Errorf("wal: checkpoint warm matrix: %w", err)
				}
			}
		}
	}
	if version >= ckptVersionV2 {
		if len(ck.Reputation) > maxReputationBlob {
			return fmt.Errorf("wal: reputation blob %d bytes exceeds limit", len(ck.Reputation))
		}
		if err := writeU32(uint32(len(ck.Reputation))); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
		if _, err := cw.Write(ck.Reputation); err != nil {
			return fmt.Errorf("wal: checkpoint write: %w", err)
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("wal: checkpoint trailer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wal: checkpoint flush: %w", err)
	}
	return nil
}

// crcReader tees reads through a CRC32C.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	return n, err
}

// ReadCheckpoint loads and verifies one checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	return ReadCheckpointFS(fault.OS(), path)
}

// ReadCheckpointFS is ReadCheckpoint through an explicit filesystem seam.
func ReadCheckpointFS(fsys fault.FS, path string) (*Checkpoint, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint open: %w", err)
	}
	defer f.Close()
	return readCheckpointFrom(f, path)
}

// readCheckpointFrom decodes and verifies a checkpoint from a raw byte
// stream. Factored out of the file path so the fuzz target can feed it
// arbitrary bytes directly; path is only used in error messages.
func readCheckpointFrom(r io.Reader, path string) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(ckptMagic)+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("wal: checkpoint header: %w", err)
	}
	if string(hdr[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic in %s", path)
	}
	version := binary.LittleEndian.Uint32(hdr[len(ckptMagic):])
	if version < ckptVersionV1 || version > ckptVersion {
		return nil, fmt.Errorf("wal: checkpoint version %d unsupported", version)
	}
	cr := &crcReader{r: br, crc: crc32.New(castagnoli)}
	var err error

	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}

	ck := &Checkpoint{}
	if ck.LogIndex, err = readU64(); err != nil {
		return nil, fmt.Errorf("wal: checkpoint body: %w", err)
	}
	var shape [4]uint32
	for i := range shape {
		if shape[i], err = readU32(); err != nil {
			return nil, fmt.Errorf("wal: checkpoint body: %w", err)
		}
	}
	ck.Participants, ck.WindowSlots, ck.HopSlots = int(shape[0]), int(shape[1]), int(shape[2])
	nShards := int(shape[3])
	const maxShards = 1 << 20
	if nShards > maxShards {
		return nil, fmt.Errorf("wal: implausible shard count %d", nShards)
	}
	for s := 0; s < nShards; s++ {
		var sc ShardCheckpoint
		flen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint shard: %w", err)
		}
		if flen > maxFleetNameLen {
			return nil, fmt.Errorf("wal: implausible fleet name length %d", flen)
		}
		name := make([]byte, flen)
		if _, err := io.ReadFull(cr, name); err != nil {
			return nil, fmt.Errorf("wal: checkpoint shard: %w", err)
		}
		sc.Fleet = string(name)
		var nums [3]uint64
		for i := range nums {
			if nums[i], err = readU64(); err != nil {
				return nil, fmt.Errorf("wal: checkpoint shard: %w", err)
			}
		}
		if nums[0] > math.MaxInt32 || nums[1] > math.MaxInt32 || nums[2] > math.MaxInt32+1 {
			return nil, fmt.Errorf("wal: implausible shard positions in %s", path)
		}
		sc.Start, sc.Seq, sc.WarmSeq = int(nums[0]), int(nums[1]), int(nums[2])-1
		mats := [...]**mat.Dense{&sc.SX, &sc.SY, &sc.VX, &sc.VY, &sc.EX}
		for _, mp := range mats {
			if *mp, err = mat.ReadBinary(cr); err != nil {
				return nil, fmt.Errorf("wal: checkpoint matrix: %w", err)
			}
		}
		if version >= ckptVersion {
			if sc.TS, err = mat.ReadBinary(cr); err != nil {
				return nil, fmt.Errorf("wal: checkpoint stamp matrix: %w", err)
			}
		}
		var flag [1]byte
		if _, err := io.ReadFull(cr, flag[:]); err != nil {
			return nil, fmt.Errorf("wal: checkpoint shard: %w", err)
		}
		if flag[0] == 1 {
			warm := [...]**mat.Dense{&sc.WarmLX, &sc.WarmRX, &sc.WarmLY, &sc.WarmRY}
			for _, mp := range warm {
				if *mp, err = mat.ReadBinary(cr); err != nil {
					return nil, fmt.Errorf("wal: checkpoint warm matrix: %w", err)
				}
			}
		} else if flag[0] != 0 {
			return nil, fmt.Errorf("wal: bad warm flag %d", flag[0])
		}
		ck.Shards = append(ck.Shards, sc)
	}
	if version >= ckptVersionV2 {
		blobLen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint reputation: %w", err)
		}
		if blobLen > maxReputationBlob {
			return nil, fmt.Errorf("wal: implausible reputation blob length %d", blobLen)
		}
		if blobLen > 0 {
			ck.Reputation = make([]byte, blobLen)
			if _, err := io.ReadFull(cr, ck.Reputation); err != nil {
				return nil, fmt.Errorf("wal: checkpoint reputation: %w", err)
			}
		}
	}
	sum := cr.crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("wal: checkpoint trailer: %w", err)
	}
	if want := binary.LittleEndian.Uint32(trailer[:]); want != sum {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch in %s", path)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("wal: trailing garbage after checkpoint in %s", path)
	}
	return ck, nil
}

// maxFleetNameLen mirrors the binary report codec's fleet-ID bound.
const maxFleetNameLen = 1 << 10

// listCheckpoints returns checkpoint paths sorted newest-first (the name
// embeds the zero-padded hex log index).
func listCheckpoints(fsys fault.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix) {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths, nil
}

// LatestCheckpoint loads the newest valid checkpoint in dir, skipping (and
// counting) corrupt ones. It returns ErrNoCheckpoint when none loads.
func LatestCheckpoint(dir string) (ck *Checkpoint, skippedCorrupt int, err error) {
	return LatestCheckpointFS(fault.OS(), dir)
}

// LatestCheckpointFS is LatestCheckpoint through an explicit filesystem seam.
func LatestCheckpointFS(fsys fault.FS, dir string) (ck *Checkpoint, skippedCorrupt int, err error) {
	paths, err := listCheckpoints(fsys, dir)
	if err != nil {
		return nil, 0, err
	}
	for _, p := range paths {
		ck, err := ReadCheckpointFS(fsys, p)
		if err != nil {
			skippedCorrupt++
			continue
		}
		return ck, skippedCorrupt, nil
	}
	return nil, skippedCorrupt, ErrNoCheckpoint
}

// PruneCheckpoints removes all but the newest `keep` checkpoints and
// returns how many were deleted. Old checkpoints are pure redundancy once
// a newer one exists, but keeping one spare guards against the newest
// being born corrupt.
func PruneCheckpoints(dir string, keep int) (int, error) {
	return PruneCheckpointsFS(fault.OS(), dir, keep)
}

// PruneCheckpointsFS is PruneCheckpoints through an explicit filesystem seam.
func PruneCheckpointsFS(fsys fault.FS, dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	paths, err := listCheckpoints(fsys, dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, p := range paths[minInt(keep, len(paths)):] {
		if err := fsys.Remove(p); err != nil {
			return removed, fmt.Errorf("wal: prune checkpoint: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(fsys, dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

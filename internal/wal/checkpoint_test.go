package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"itscs/internal/fault"
	"itscs/internal/mat"
)

// fixtureCheckpoint builds a two-shard checkpoint with distinctive values.
func fixtureCheckpoint() *Checkpoint {
	ring := func(seed float64) *mat.Dense {
		m := mat.New(3, 6)
		m.Apply(func(i, j int, _ float64) float64 { return seed + float64(10*i+j) })
		return m
	}
	factors := func(seed float64) *mat.Dense {
		m := mat.New(3, 2)
		m.Apply(func(i, j int, _ float64) float64 { return seed * float64(i+j+1) })
		return m
	}
	return &Checkpoint{
		LogIndex:     1234,
		Participants: 3,
		WindowSlots:  4,
		HopSlots:     2,
		Shards: []ShardCheckpoint{
			{
				Fleet: "cab", Start: 8, Seq: 4, WarmSeq: 3,
				SX: ring(1), SY: ring(2), VX: ring(3), VY: ring(4), EX: ring(0),
				TS:     ring(1e6),
				WarmLX: factors(1.5), WarmRX: factors(2.5),
				WarmLY: factors(3.5), WarmRY: factors(4.5),
			},
			{
				// No warm state yet, empty fleet name (the default fleet).
				Fleet: "", Start: 0, Seq: 0, WarmSeq: -1,
				SX: ring(9), SY: ring(8), VX: ring(7), VY: ring(6), EX: ring(5),
			},
		},
	}
}

func matEqual(a, b *mat.Dense) bool {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := fixtureCheckpoint()
	path, err := WriteCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("checkpoint written outside dir: %s", path)
	}
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.LogIndex != ck.LogIndex || back.Participants != ck.Participants ||
		back.WindowSlots != ck.WindowSlots || back.HopSlots != ck.HopSlots {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Shards) != len(ck.Shards) {
		t.Fatalf("shards = %d, want %d", len(back.Shards), len(ck.Shards))
	}
	for i := range ck.Shards {
		want, got := &ck.Shards[i], &back.Shards[i]
		if got.Fleet != want.Fleet || got.Start != want.Start || got.Seq != want.Seq || got.WarmSeq != want.WarmSeq {
			t.Fatalf("shard %d scalars = %+v", i, got)
		}
		pairs := [][2]*mat.Dense{
			{got.SX, want.SX}, {got.SY, want.SY}, {got.VX, want.VX},
			{got.VY, want.VY}, {got.EX, want.EX},
		}
		for k, p := range pairs {
			if !matEqual(p[0], p[1]) {
				t.Fatalf("shard %d ring %d mismatch", i, k)
			}
		}
		// A nil TS ring writes (and reads back) as all-zero, same shape.
		wantTS := want.TS
		if wantTS == nil {
			wantTS = mat.New(3, 6)
		}
		if got.TS == nil || !matEqual(got.TS, wantTS) {
			t.Fatalf("shard %d TS ring mismatch", i)
		}
		if want.WarmLX == nil {
			if got.WarmLX != nil {
				t.Fatalf("shard %d grew warm state", i)
			}
			continue
		}
		warm := [][2]*mat.Dense{
			{got.WarmLX, want.WarmLX}, {got.WarmRX, want.WarmRX},
			{got.WarmLY, want.WarmLY}, {got.WarmRY, want.WarmRY},
		}
		for k, p := range warm {
			if !matEqual(p[0], p[1]) {
				t.Fatalf("shard %d warm factor %d mismatch", i, k)
			}
		}
	}
}

// TestCheckpointReputationRoundTrip pins the version-2 section: the opaque
// ledger blob survives the write/read cycle byte for byte.
func TestCheckpointReputationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := fixtureCheckpoint()
	ck.Reputation = []byte("ITSCSREP-opaque-ledger-bytes\x00\x01\x02")
	path, err := WriteCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Reputation) != string(ck.Reputation) {
		t.Fatalf("reputation blob = %q, want %q", back.Reputation, ck.Reputation)
	}
	// An empty blob reads back nil (the no-ledger daemon's checkpoints).
	ck.Reputation = nil
	path, err = WriteCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	if back, err = ReadCheckpoint(path); err != nil || back.Reputation != nil {
		t.Fatalf("nil blob round trip: rep=%v err=%v", back.Reputation, err)
	}
}

// writeVersioned produces a genuine old-format checkpoint file through the
// versioned writer, for the compatibility tests.
func writeVersioned(t *testing.T, dir string, ck *Checkpoint, version uint32) string {
	t.Helper()
	path := CheckpointPath(dir, ck.LogIndex)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointVersioned(f, ck, version); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckpointV1Compat writes a genuine version-1 file — the format
// before the reputation and stamp-ring sections existed — and checks it
// still loads, with a nil blob and a nil TS ring.
func TestCheckpointV1Compat(t *testing.T) {
	ck := fixtureCheckpoint()
	ck.Reputation = []byte("dropped-by-v1") // v1 has no section to carry it
	path := writeVersioned(t, t.TempDir(), ck, ckptVersionV1)
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("version-1 checkpoint no longer loads: %v", err)
	}
	if back.Reputation != nil {
		t.Fatalf("version-1 checkpoint grew a reputation blob: %v", back.Reputation)
	}
	if back.LogIndex != ck.LogIndex || len(back.Shards) != len(ck.Shards) {
		t.Fatalf("version-1 body mismatch: %+v", back)
	}
	for i := range back.Shards {
		if back.Shards[i].TS != nil {
			t.Fatalf("version-1 shard %d grew a TS ring", i)
		}
	}
}

// TestCheckpointV2Compat writes a genuine version-2 file — reputation blob
// but no stamp rings — and checks the blob survives while TS stays nil.
func TestCheckpointV2Compat(t *testing.T) {
	ck := fixtureCheckpoint()
	ck.Reputation = []byte("ITSCSREP-v2-ledger")
	path := writeVersioned(t, t.TempDir(), ck, ckptVersionV2)
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("version-2 checkpoint no longer loads: %v", err)
	}
	if string(back.Reputation) != string(ck.Reputation) {
		t.Fatalf("version-2 reputation blob = %q, want %q", back.Reputation, ck.Reputation)
	}
	for i := range back.Shards {
		if back.Shards[i].TS != nil {
			t.Fatalf("version-2 shard %d grew a TS ring", i)
		}
	}
}

func TestLatestCheckpointPicksNewestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	old := fixtureCheckpoint()
	old.LogIndex = 100
	if _, err := WriteCheckpoint(dir, old); err != nil {
		t.Fatal(err)
	}
	newer := fixtureCheckpoint()
	newer.LogIndex = 200
	newPath, err := WriteCheckpoint(dir, newer)
	if err != nil {
		t.Fatal(err)
	}

	ck, skipped, err := LatestCheckpoint(dir)
	if err != nil || skipped != 0 || ck.LogIndex != 200 {
		t.Fatalf("latest = %v skipped %d err %v, want index 200", ck, skipped, err)
	}

	// Corrupt the newest: recovery must fall back to the older one.
	data, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, skipped, err = LatestCheckpoint(dir)
	if err != nil || skipped != 1 || ck.LogIndex != 100 {
		t.Fatalf("fallback = %v skipped %d err %v, want index 100 skipped 1", ck, skipped, err)
	}

	// A truncated file is also just skipped.
	if err := os.Truncate(newPath, 40); err != nil {
		t.Fatal(err)
	}
	if _, skipped, err = LatestCheckpoint(dir); err != nil || skipped != 1 {
		t.Fatalf("truncated skip = %d err %v", skipped, err)
	}
}

func TestLatestCheckpointEmpty(t *testing.T) {
	if _, _, err := LatestCheckpoint(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	// A directory that does not exist yet is the same as an empty one.
	if _, _, err := LatestCheckpoint(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir err = %v, want ErrNoCheckpoint", err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for _, idx := range []uint64{10, 20, 30, 40} {
		ck := fixtureCheckpoint()
		ck.LogIndex = idx
		if _, err := WriteCheckpoint(dir, ck); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneCheckpoints(dir, 2)
	if err != nil || removed != 2 {
		t.Fatalf("removed = %d err %v, want 2", removed, err)
	}
	paths, err := listCheckpoints(fault.OS(), dir)
	if err != nil || len(paths) != 2 {
		t.Fatalf("paths = %v err %v", paths, err)
	}
	ck, _, err := LatestCheckpoint(dir)
	if err != nil || ck.LogIndex != 40 {
		t.Fatalf("latest after prune = %v err %v", ck, err)
	}
	// No temp files may linger.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

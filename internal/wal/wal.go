// Package wal gives the streaming engine a durable spine: a segmented,
// CRC32C-framed write-ahead log of accepted location reports plus atomic
// checkpoints of per-fleet shard state, so a crashed itscs-serve restarts
// from its newest checkpoint and replays only the log tail instead of
// silently losing every open window (participants on a 30 s upload cadence
// cannot re-send history).
//
// Log layout: a data directory holds numbered segment files
// ("wal-<hex>.seg"), each beginning with a 20-byte header (magic, version,
// and the global index of its first record) followed by frames of
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//
// where the payload is one binary-encoded mcs.Report. Appends flow through
// a single committer goroutine that batches concurrent writers into one
// write (group commit) and applies the configured fsync policy: SyncAlways
// makes every Append durable before it returns, SyncInterval bounds data
// loss to a time window, SyncNever leaves flushing to the OS. Recovery
// truncates a torn tail off the final segment and skips (and counts) the
// damaged remainder of any earlier segment rather than refusing to start.
// Compact drops segments wholly behind the newest checkpoint.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/metrics"
)

// Errors returned by the log.
var (
	// ErrClosed is returned by Append and Sync once the log is closed.
	ErrClosed = errors.New("wal: log closed")
)

// Sync policies for the append path.
type SyncPolicy int

const (
	// SyncAlways fsyncs every group commit before acknowledging it: an
	// acked report survives any crash. Slowest, strongest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncEvery: a crash loses
	// at most that window of acked reports.
	SyncInterval
	// SyncNever leaves flushing to the operating system: a process crash
	// loses nothing, a machine crash loses whatever the OS had buffered.
	SyncNever
)

// ParseSyncPolicy maps the daemon's -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options parameterizes a Log.
type Options struct {
	// Sync selects the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the flush cadence under SyncInterval (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). Only whole closed segments can be compacted away.
	SegmentBytes int64
	// Logger, when set, receives structured warnings for the recovery
	// events that otherwise only move counters: quarantined segments, torn
	// tails truncated at open, and damaged regions skipped during replay.
	// nil keeps the log silent.
	Logger *slog.Logger
	// FS is the filesystem seam (default the real OS). The fault-injection
	// harness swaps in a seeded injector; production never sets it.
	FS fault.FS
	// Clock drives the SyncInterval ticker and fsync latency accounting
	// (default the wall clock).
	Clock fault.Clock
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{Sync: SyncAlways, SyncEvery: 100 * time.Millisecond, SegmentBytes: 8 << 20}
}

func (o *Options) fillDefaults() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FS == nil {
		o.FS = fault.OS()
	}
	if o.Clock == nil {
		o.Clock = fault.RealClock()
	}
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	segMagic   = "ITSCSWAL"
	segVersion = 1
	segHdrLen  = len(segMagic) + 4 + 8 // magic | u32 version | u64 firstIndex
	frameHdr   = 8                     // u32 length | u32 crc32c
	// maxPayload bounds a frame's claimed payload so a corrupt length
	// cannot drive a huge allocation; binary reports are tens of bytes.
	maxPayload = 1 << 20
)

// castagnoli is the CRC32C table; the Castagnoli polynomial has hardware
// support on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segInfo is one on-disk segment: its path and the global index of its
// first record. A segment's records end where the next segment's begin.
type segInfo struct {
	path  string
	first uint64
}

// appendReq is one writer waiting on the committer. A nil payload is a sync
// barrier: the committer fsyncs regardless of policy before acknowledging.
type appendReq struct {
	payload []byte
	done    chan error
}

// Log is the durable report log. All methods are safe for concurrent use.
type Log struct {
	dir string
	opt Options

	// lifeMu orders Append/Sync against Close, exactly like the pipeline's
	// ingest gate: senders hold the read side across their channel send so
	// the request channel only closes once no sender is in flight.
	lifeMu sync.RWMutex
	closed bool

	reqs chan appendReq
	done chan struct{}

	// segMu guards the segment list (committer appends on rotation,
	// Compact removes from the front, Replay snapshots it).
	segMu sync.Mutex
	segs  []segInfo

	// committer-owned state.
	active    fault.File
	activeLen int64
	nextIdx   uint64 // index the next appended record will get
	dirty     bool   // bytes written since the last fsync
	lastSync  time.Time

	appended atomic.Uint64 // committed record count (== next index)

	st struct {
		records      atomic.Uint64
		bytes        atomic.Uint64
		batches      atomic.Uint64
		fsyncs       atomic.Uint64
		rotations    atomic.Uint64
		compacted    atomic.Uint64
		corruptSegs  atomic.Uint64
		truncatedB   atomic.Uint64
		replayed     atomic.Uint64
		replaySkips  atomic.Uint64
		lastAppendUS atomic.Int64
		lastFsyncUS  atomic.Int64
		fsyncLatency metrics.Histogram
	}
}

// Stats is a point-in-time snapshot of the log's instrumentation.
type Stats struct {
	// Dir and Policy echo the configuration.
	Dir    string `json:"dir"`
	Policy string `json:"fsync_policy"`
	// Records and Bytes count appended records and frame bytes; Batches
	// counts group commits (Records/Batches is the mean batch size).
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes_appended"`
	Batches uint64 `json:"batches"`
	// Fsyncs counts file syncs; FsyncLatency is their latency histogram.
	Fsyncs       uint64                    `json:"fsyncs"`
	FsyncLatency metrics.HistogramSnapshot `json:"fsync_latency_ms"`
	// Segments is the live segment count; Rotations and Compacted count
	// segments opened after the first and removed by compaction.
	Segments  int    `json:"segments"`
	Rotations uint64 `json:"rotations"`
	Compacted uint64 `json:"compacted_segments"`
	// CorruptSegments counts segments whose damaged remainder recovery or
	// replay skipped; TruncatedBytes is the torn tail cut off the final
	// segment at open; ReplaySkipped counts records lost inside damaged
	// regions during replay.
	CorruptSegments uint64 `json:"corrupt_segments"`
	TruncatedBytes  uint64 `json:"truncated_bytes"`
	Replayed        uint64 `json:"replayed_records"`
	ReplaySkipped   uint64 `json:"replay_skipped_records"`
	// LastAppendUnixMicro and LastFsyncUnixMicro stamp the newest committed
	// append and the newest fsync (zero until the first of each), the
	// recency signals the /status overview surfaces: a log whose last
	// append is recent but whose last fsync is not is accumulating
	// unsynced risk under the interval policy.
	LastAppendUnixMicro int64 `json:"last_append_us,omitempty"`
	LastFsyncUnixMicro  int64 `json:"last_fsync_us,omitempty"`
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.segMu.Lock()
	segs := len(l.segs)
	l.segMu.Unlock()
	return Stats{
		Dir:             l.dir,
		Policy:          l.opt.Sync.String(),
		Records:         l.st.records.Load(),
		Bytes:           l.st.bytes.Load(),
		Batches:         l.st.batches.Load(),
		Fsyncs:          l.st.fsyncs.Load(),
		FsyncLatency:    l.st.fsyncLatency.Snapshot(),
		Segments:        segs,
		Rotations:       l.st.rotations.Load(),
		Compacted:       l.st.compacted.Load(),
		CorruptSegments: l.st.corruptSegs.Load(),
		TruncatedBytes:  l.st.truncatedB.Load(),
		Replayed:        l.st.replayed.Load(),
		ReplaySkipped:   l.st.replaySkips.Load(),

		LastAppendUnixMicro: l.st.lastAppendUS.Load(),
		LastFsyncUnixMicro:  l.st.lastFsyncUS.Load(),
	}
}

// Open opens (or creates) the log in dir, recovering from whatever a crash
// left behind: the final segment's torn tail is truncated, and a damaged
// region inside an earlier segment marks it corrupt without aborting.
func Open(dir string, opt Options) (*Log, error) {
	opt.fillDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:  dir,
		opt:  opt,
		reqs: make(chan appendReq, 256),
		done: make(chan struct{}),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	l.lastSync = opt.Clock.Now()
	go l.commit()
	return l, nil
}

// logger returns the configured logger, or a disabled fallback, so log
// call sites need no nil checks.
func (l *Log) logger() *slog.Logger {
	if l.opt.Logger != nil {
		return l.opt.Logger
	}
	return discardLogger
}

// discardLogger drops everything (its level sits above slog.LevelError).
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// segPath names the i-th segment created over the log's lifetime.
func (l *Log) segPath(created uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, created, segSuffix))
}

// listSegments returns the segment paths in dir, sorted by creation order
// (the zero-padded hex name).
func listSegments(fsys fault.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// segCreation extracts the creation number from a segment path.
func segCreation(path string) uint64 {
	name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), segPrefix), segSuffix)
	n, _ := strconv.ParseUint(name, 16, 64)
	return n
}

// scan inventories the existing segments, repairs the tail, and opens the
// active segment for appending. Segments with an unreadable header are
// quarantined (renamed aside); a damaged interior segment is kept for
// whatever Replay can still read out of it, because the next segment's
// header re-anchors the index sequence; the final segment is truncated to
// its last whole frame (the torn tail a crash mid-write leaves behind).
func (l *Log) scan() error {
	paths, err := listSegments(l.opt.FS, l.dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return l.createSegment(0, 0)
	}
	type scanned struct {
		path     string
		first    uint64
		valid    uint64
		validEnd int64
		err      error
	}
	var infos []scanned
	for _, p := range paths {
		first, valid, validEnd, serr := scanSegment(l.opt.FS, p)
		if first == ^uint64(0) {
			l.st.corruptSegs.Add(1)
			l.logger().Warn("wal: quarantining segment with unreadable header",
				"segment", p, "err", serr)
			if rerr := l.opt.FS.Rename(p, p+".corrupt"); rerr != nil {
				return fmt.Errorf("wal: quarantine %s: %w", p, rerr)
			}
			continue
		}
		infos = append(infos, scanned{path: p, first: first, valid: valid, validEnd: validEnd, err: serr})
	}
	if len(infos) == 0 {
		return l.createSegment(segCreation(paths[len(paths)-1])+1, 0)
	}
	for _, in := range infos[:len(infos)-1] {
		if in.err != nil {
			l.st.corruptSegs.Add(1)
			l.logger().Warn("wal: interior segment damaged; replay will skip its remainder",
				"segment", in.path, "first_index", in.first, "valid_records", in.valid, "err", in.err)
		}
		l.segs = append(l.segs, segInfo{path: in.path, first: in.first})
	}
	last := infos[len(infos)-1]
	if last.err != nil {
		var torn int64
		if fi, statErr := l.opt.FS.Stat(last.path); statErr == nil && fi.Size() > last.validEnd {
			torn = fi.Size() - last.validEnd
			l.st.truncatedB.Add(uint64(torn))
		}
		if terr := l.opt.FS.Truncate(last.path, last.validEnd); terr != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", last.path, terr)
		}
		l.logger().Warn("wal: truncated torn tail of final segment",
			"segment", last.path, "truncated_bytes", torn, "err", last.err)
	}
	l.segs = append(l.segs, segInfo{path: last.path, first: last.first})
	return l.openActive(last.path, last.first+last.valid)
}

// openActive opens path for appending and seeds the committer state.
func (l *Log) openActive(path string, nextIdx uint64) error {
	f, err := l.opt.FS.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat active segment: %w", err)
	}
	l.active = f
	l.activeLen = fi.Size()
	l.nextIdx = nextIdx
	l.appended.Store(nextIdx)
	return nil
}

// createSegment starts segment file number `created` whose first record
// will carry global index firstIdx, and makes it the active segment.
func (l *Log) createSegment(created, firstIdx uint64) error {
	path := l.segPath(created)
	f, err := l.opt.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHdrLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[len(segMagic):], segVersion)
	binary.LittleEndian.PutUint64(hdr[len(segMagic)+4:], firstIdx)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := syncDir(l.opt.FS, l.dir); err != nil {
		f.Close()
		return err
	}
	l.segMu.Lock()
	l.segs = append(l.segs, segInfo{path: path, first: firstIdx})
	l.segMu.Unlock()
	l.active = f
	l.activeLen = int64(segHdrLen)
	l.nextIdx = firstIdx
	l.appended.Store(firstIdx)
	return nil
}

// scanSegment walks a segment's frames. It returns the header's first
// index (^0 if the header itself is unreadable), the count of valid
// records, the file offset just past the last valid frame, and the error
// that stopped the scan (nil for a clean segment).
func scanSegment(fsys fault.FS, path string) (first uint64, valid uint64, validEnd int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return ^uint64(0), 0, 0, err
	}
	defer f.Close()
	hdr := make([]byte, segHdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return ^uint64(0), 0, 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return ^uint64(0), 0, 0, fmt.Errorf("wal: bad segment magic in %s", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(segMagic):]); v != segVersion {
		return ^uint64(0), 0, 0, fmt.Errorf("wal: segment version %d unsupported", v)
	}
	first = binary.LittleEndian.Uint64(hdr[len(segMagic)+4:])
	validEnd = int64(segHdrLen)
	fh := make([]byte, frameHdr)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, fh); err != nil {
			if errors.Is(err, io.EOF) {
				return first, valid, validEnd, nil
			}
			return first, valid, validEnd, fmt.Errorf("wal: torn frame header: %w", err)
		}
		plen := binary.LittleEndian.Uint32(fh)
		want := binary.LittleEndian.Uint32(fh[4:])
		if plen == 0 || plen > maxPayload {
			return first, valid, validEnd, fmt.Errorf("wal: implausible frame length %d", plen)
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return first, valid, validEnd, fmt.Errorf("wal: torn frame payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return first, valid, validEnd, fmt.Errorf("wal: frame checksum mismatch")
		}
		valid++
		validEnd += int64(frameHdr) + int64(plen)
	}
}

// Append encodes the report as one frame and hands it to the committer,
// returning once the record is written (and, under SyncAlways, fsynced).
// Concurrent appenders are batched into a single write and at most one
// fsync — group commit.
func (l *Log) Append(r mcs.Report) error {
	payload := r.AppendBinary(make([]byte, 0, 64))
	req := appendReq{payload: payload, done: make(chan error, 1)}
	l.lifeMu.RLock()
	if l.closed {
		l.lifeMu.RUnlock()
		return ErrClosed
	}
	l.reqs <- req
	l.lifeMu.RUnlock()
	return <-req.done
}

// Sync forces an fsync of everything appended so far, regardless of
// policy. Checkpoint writers call it so a checkpoint never references log
// records less durable than itself.
func (l *Log) Sync() error {
	req := appendReq{done: make(chan error, 1)}
	l.lifeMu.RLock()
	if l.closed {
		l.lifeMu.RUnlock()
		return ErrClosed
	}
	l.reqs <- req
	l.lifeMu.RUnlock()
	return <-req.done
}

// AppendedIndex reports how many records have been committed: the next
// append receives this index. Checkpoints capture it as their replay
// origin.
func (l *Log) AppendedIndex() uint64 { return l.appended.Load() }

// Close drains pending appends, fsyncs, and closes the active segment.
func (l *Log) Close() error {
	l.lifeMu.Lock()
	if l.closed {
		l.lifeMu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.lifeMu.Unlock()
	close(l.reqs)
	<-l.done
	var err error
	if l.dirty {
		err = l.fsync()
	}
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// commit is the single committer goroutine: it batches queued appends into
// one write, applies the fsync policy, and acknowledges every waiter.
func (l *Log) commit() {
	defer close(l.done)
	var tick <-chan time.Time
	if l.opt.Sync == SyncInterval {
		ticker := l.opt.Clock.NewTicker(l.opt.SyncEvery)
		defer ticker.Stop()
		tick = ticker.C()
	}
	for {
		select {
		case req, ok := <-l.reqs:
			if !ok {
				return
			}
			batch := []appendReq{req}
			// Group commit: everything already queued joins this batch.
		drain:
			for len(batch) < 4096 {
				select {
				case more, ok := <-l.reqs:
					if !ok {
						break drain
					}
					batch = append(batch, more)
				default:
					break drain
				}
			}
			l.commitBatch(batch)
		case <-tick:
			if l.dirty {
				_ = l.fsync()
			}
		}
	}
}

// commitBatch writes every queued frame in one write call, rotates and
// fsyncs per policy, and fans the outcome back to the waiters.
func (l *Log) commitBatch(batch []appendReq) {
	var buf []byte
	records := 0
	forceSync := false
	for _, req := range batch {
		if req.payload == nil {
			forceSync = true
			continue
		}
		var fh [frameHdr]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(req.payload)))
		binary.LittleEndian.PutUint32(fh[4:], crc32.Checksum(req.payload, castagnoli))
		buf = append(buf, fh[:]...)
		buf = append(buf, req.payload...)
		records++
	}
	err := l.writeAndSync(buf, records, forceSync)
	if err == nil && records > 0 {
		l.nextIdx += uint64(records)
		l.appended.Store(l.nextIdx)
		l.st.records.Add(uint64(records))
		l.st.bytes.Add(uint64(len(buf)))
		l.st.batches.Add(1)
		l.st.lastAppendUS.Store(l.opt.Clock.Now().UnixMicro())
	}
	for _, req := range batch {
		req.done <- err
	}
}

func (l *Log) writeAndSync(buf []byte, records int, forceSync bool) error {
	if records > 0 && l.activeLen >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if records > 0 {
		if _, err := l.active.Write(buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		l.activeLen += int64(len(buf))
		l.dirty = true
	}
	switch {
	case forceSync, l.opt.Sync == SyncAlways:
		if l.dirty {
			return l.fsync()
		}
	case l.opt.Sync == SyncInterval:
		if l.dirty && l.opt.Clock.Since(l.lastSync) >= l.opt.SyncEvery {
			return l.fsync()
		}
	}
	return nil
}

// fsync syncs the active segment and observes the latency.
func (l *Log) fsync() error {
	began := l.opt.Clock.Now()
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.st.fsyncs.Add(1)
	l.st.fsyncLatency.Observe(l.opt.Clock.Since(began))
	l.dirty = false
	l.lastSync = l.opt.Clock.Now()
	l.st.lastFsyncUS.Store(l.lastSync.UnixMicro())
	return nil
}

// rotate closes the active segment (fsynced, so a closed segment is always
// durable) and starts the next one.
func (l *Log) rotate() error {
	if l.dirty {
		if err := l.fsync(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.segMu.Lock()
	created := segCreation(l.segs[len(l.segs)-1].path) + 1
	l.segMu.Unlock()
	if err := l.createSegment(created, l.nextIdx); err != nil {
		return err
	}
	l.st.rotations.Add(1)
	return nil
}

// Compact removes closed segments whose every record index is below
// `before` (typically the newest checkpoint's LogIndex): recovery never
// needs them again. The active segment is never removed. It returns the
// number of segments deleted.
func (l *Log) Compact(before uint64) (int, error) {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	removed := 0
	for len(l.segs) >= 2 && l.segs[1].first <= before {
		if err := l.opt.FS.Remove(l.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		l.st.compacted.Add(uint64(removed))
		if err := syncDir(l.opt.FS, l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Replay streams every decodable record with index >= from, in order, to
// fn. Damaged regions are skipped and counted, not fatal; an fn error
// aborts the replay and is returned. It reads the on-disk state and may be
// called on a freshly opened log before ingestion starts (the recovery
// path) or on a quiesced one.
func (l *Log) Replay(from uint64, fn func(idx uint64, r mcs.Report) error) (replayed uint64, err error) {
	l.segMu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.segMu.Unlock()
	end := l.AppendedIndex()
	for i, seg := range segs {
		// A segment is skippable when the next one starts at or below
		// `from`; the final segment always gets scanned.
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		n, serr := l.replaySegment(seg, from, end, fn)
		replayed += n
		if serr != nil {
			return replayed, serr
		}
	}
	l.st.replayed.Add(replayed)
	return replayed, nil
}

// replaySegment scans one segment, invoking fn for records in [from, end).
func (l *Log) replaySegment(seg segInfo, from, end uint64, fn func(uint64, mcs.Report) error) (uint64, error) {
	f, err := l.opt.FS.Open(seg.path)
	if err != nil {
		// The file may have been compacted away between snapshot and open.
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(int64(segHdrLen), io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: replay seek: %w", err)
	}
	var replayed uint64
	idx := seg.first
	fh := make([]byte, frameHdr)
	var payload []byte
	for idx < end {
		if _, err := io.ReadFull(f, fh); err != nil {
			if errors.Is(err, io.EOF) {
				return replayed, nil
			}
			l.skipDamaged(seg, idx, end)
			return replayed, nil
		}
		plen := binary.LittleEndian.Uint32(fh)
		want := binary.LittleEndian.Uint32(fh[4:])
		if plen == 0 || plen > maxPayload {
			l.skipDamaged(seg, idx, end)
			return replayed, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			l.skipDamaged(seg, idx, end)
			return replayed, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			l.skipDamaged(seg, idx, end)
			return replayed, nil
		}
		if idx >= from {
			r, n, derr := mcs.DecodeBinary(payload)
			if derr != nil || n != len(payload) {
				// The frame survived its CRC but the payload does not parse:
				// count it and keep walking frames.
				l.st.replaySkips.Add(1)
			} else if err := fn(idx, r); err != nil {
				return replayed, err
			} else {
				replayed++
			}
		}
		idx++
	}
	return replayed, nil
}

// skipDamaged accounts for the records lost in a segment's damaged
// remainder: everything from idx to the next segment's first index (or the
// committed end for the final segment).
func (l *Log) skipDamaged(seg segInfo, idx, end uint64) {
	l.st.corruptSegs.Add(1)
	segEnd := end
	l.segMu.Lock()
	for i, s := range l.segs {
		if s.path == seg.path && i+1 < len(l.segs) {
			segEnd = l.segs[i+1].first
			break
		}
	}
	l.segMu.Unlock()
	var lost uint64
	if segEnd > idx {
		lost = segEnd - idx
		l.st.replaySkips.Add(lost)
	}
	l.logger().Warn("wal: skipping damaged region during replay",
		"segment", seg.path, "from_index", idx, "records_lost", lost)
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(fsys fault.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

package wal

import (
	"bytes"
	"math"
	"testing"

	"itscs/internal/mat"
	"itscs/internal/mcs"
)

// FuzzDecodeRecord checks that the binary report decoder never panics on
// arbitrary bytes and that whatever it accepts round-trips through the
// encoder bit-exactly.
func FuzzDecodeRecord(f *testing.F) {
	seed := func(r mcs.Report) { f.Add(r.AppendBinary(nil)) }
	seed(mcs.Report{Fleet: "cab", Participant: 3, Slot: 17, X: 1.5, Y: -2.5, VX: 0.25, VY: -0.125})
	seed(mcs.Report{}) // empty fleet, zero everything
	seed(mcs.Report{Fleet: "x", X: math.NaN(), Y: math.Inf(1), VX: math.Inf(-1), VY: -0.0})
	seed(mcs.Report{Fleet: "fleet-with-a-long-name", Participant: 1 << 20, Slot: 1 << 20, X: 1e308})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge uvarint
	f.Add([]byte{0x03, 'c', 'a'})                                             // truncated fleet

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := mcs.DecodeBinary(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := r.AppendBinary(nil)
		back, m, err := mcs.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if m != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", m, len(enc))
		}
		if back.Fleet != r.Fleet || back.Participant != r.Participant || back.Slot != r.Slot {
			t.Fatalf("round trip changed identity: %+v -> %+v", r, back)
		}
		pairs := [4][2]float64{{r.X, back.X}, {r.Y, back.Y}, {r.VX, back.VX}, {r.VY, back.VY}}
		for i, p := range pairs {
			// Bit-exact comparison: NaN payloads and signed zeros must survive.
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("round trip changed value %d: %x -> %x", i, math.Float64bits(p[0]), math.Float64bits(p[1]))
			}
		}
	})
}

// FuzzReadCheckpoint checks that the checkpoint decoder never panics or
// over-allocates on arbitrary bytes — a half-written or bit-flipped
// checkpoint file must come back as an error, never take the recovery
// path down — and that accepted checkpoints round-trip structurally.
func FuzzReadCheckpoint(f *testing.F) {
	smallMat := func(v float64) *mat.Dense { return mat.Filled(2, 3, v) }
	ck := &Checkpoint{
		LogIndex:     42,
		Participants: 2,
		WindowSlots:  2,
		HopSlots:     1,
		Shards: []ShardCheckpoint{{
			Fleet: "cab", Start: 4, Seq: 2, WarmSeq: 1,
			SX: smallMat(1), SY: smallMat(2), VX: smallMat(3), VY: smallMat(4), EX: smallMat(1),
			WarmLX: smallMat(5), WarmRX: smallMat(6), WarmLY: smallMat(7), WarmRY: smallMat(8),
		}, {
			Fleet: "", Start: 0, Seq: 0, WarmSeq: -1,
			SX: smallMat(0), SY: smallMat(0), VX: smallMat(0), VY: smallMat(0), EX: smallMat(0),
		}},
	}
	var buf bytes.Buffer
	if err := writeCheckpointTo(&buf, ck); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])             // torn write
	f.Add(append([]byte{}, good[:12]...)) // header only
	f.Add([]byte("ITSCSCKP"))             // magic, no version
	f.Add([]byte{})
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // checksum must catch this

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := readCheckpointFrom(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := writeCheckpointTo(&buf, ck); err != nil {
			t.Fatalf("re-encode accepted checkpoint: %v", err)
		}
		back, err := readCheckpointFrom(&buf, "fuzz-reencode")
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if back.LogIndex != ck.LogIndex || len(back.Shards) != len(ck.Shards) ||
			back.Participants != ck.Participants || back.WindowSlots != ck.WindowSlots ||
			back.HopSlots != ck.HopSlots {
			t.Fatalf("round trip changed structure: %+v -> %+v", ck, back)
		}
		for i := range ck.Shards {
			if back.Shards[i].Fleet != ck.Shards[i].Fleet ||
				back.Shards[i].Seq != ck.Shards[i].Seq ||
				back.Shards[i].WarmSeq != ck.Shards[i].WarmSeq {
				t.Fatalf("round trip changed shard %d", i)
			}
		}
	})
}

package wal

import (
	"math"
	"testing"

	"itscs/internal/mcs"
)

// FuzzDecodeRecord checks that the binary report decoder never panics on
// arbitrary bytes and that whatever it accepts round-trips through the
// encoder bit-exactly.
func FuzzDecodeRecord(f *testing.F) {
	seed := func(r mcs.Report) { f.Add(r.AppendBinary(nil)) }
	seed(mcs.Report{Fleet: "cab", Participant: 3, Slot: 17, X: 1.5, Y: -2.5, VX: 0.25, VY: -0.125})
	seed(mcs.Report{}) // empty fleet, zero everything
	seed(mcs.Report{Fleet: "x", X: math.NaN(), Y: math.Inf(1), VX: math.Inf(-1), VY: -0.0})
	seed(mcs.Report{Fleet: "fleet-with-a-long-name", Participant: 1 << 20, Slot: 1 << 20, X: 1e308})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge uvarint
	f.Add([]byte{0x03, 'c', 'a'})                                             // truncated fleet

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := mcs.DecodeBinary(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := r.AppendBinary(nil)
		back, m, err := mcs.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if m != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", m, len(enc))
		}
		if back.Fleet != r.Fleet || back.Participant != r.Participant || back.Slot != r.Slot {
			t.Fatalf("round trip changed identity: %+v -> %+v", r, back)
		}
		pairs := [4][2]float64{{r.X, back.X}, {r.Y, back.Y}, {r.VX, back.VX}, {r.VY, back.VY}}
		for i, p := range pairs {
			// Bit-exact comparison: NaN payloads and signed zeros must survive.
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("round trip changed value %d: %x -> %x", i, math.Float64bits(p[0]), math.Float64bits(p[1]))
			}
		}
	})
}

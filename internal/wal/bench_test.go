package wal

import (
	"fmt"
	"sync"
	"testing"

	"itscs/internal/mcs"
)

func benchReport(i int) mcs.Report {
	return mcs.Report{
		Fleet:       "cab",
		Participant: i % 1000,
		Slot:        i / 1000,
		X:           float64(i) * 0.25,
		Y:           float64(i) * -0.5,
		VX:          1.25,
		VY:          -2.5,
	}
}

// BenchmarkAppend measures single-writer ingest throughput per fsync policy.
func BenchmarkAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Sync = policy
			log, err := Open(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := log.Append(benchReport(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendParallel measures group-commit throughput with many
// concurrent producers, the shape the TCP ingest path generates.
func BenchmarkAppendParallel(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Sync = policy
			log, err := Open(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			var seq sync.Mutex
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					seq.Lock()
					i := next
					next++
					seq.Unlock()
					if err := log.Append(benchReport(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkReplay measures recovery-side log replay throughput.
func BenchmarkReplay(b *testing.B) {
	// 960_000 is the fleet-scale shape (1000 participants × 960 slots).
	for _, records := range []int{100_000, 960_000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			opt := DefaultOptions()
			opt.Sync = SyncNever
			log, err := Open(dir, opt)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if err := log.Append(benchReport(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				log, err := Open(dir, opt)
				if err != nil {
					b.Fatal(err)
				}
				got, err := log.Replay(0, func(_ uint64, _ mcs.Report) error {
					return nil
				})
				if err != nil || got != uint64(records) {
					b.Fatalf("replayed %d of %d, err %v", got, records, err)
				}
				if err := log.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"itscs/internal/fault"
	"itscs/internal/mcs"
)

func testReport(p, slot int) mcs.Report {
	return mcs.Report{
		Fleet:       "cab",
		Participant: p,
		Slot:        slot,
		X:           float64(100*p + slot),
		Y:           -float64(slot),
		VX:          0.5,
		VY:          -0.25,
	}
}

func openTestLog(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log, from uint64) []mcs.Report {
	t.Helper()
	var out []mcs.Report
	if _, err := l.Replay(from, func(_ uint64, r mcs.Report) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, DefaultOptions())
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(testReport(i%5, i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := l.AppendedIndex(); got != n {
		t.Fatalf("AppendedIndex = %d, want %d", got, n)
	}
	got := collect(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r != testReport(i%5, i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, testReport(i%5, i))
		}
	}
	// Replay from an offset delivers only the tail.
	if tail := collect(t, l, n-7); len(tail) != 7 {
		t.Fatalf("tail replay = %d records, want 7", len(tail))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testReport(0, 99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}

	// Reopen: the index and contents survive.
	l2 := openTestLog(t, dir, DefaultOptions())
	defer l2.Close()
	if got := l2.AppendedIndex(); got != n {
		t.Fatalf("reopened AppendedIndex = %d, want %d", got, n)
	}
	if got := collect(t, l2, 0); len(got) != n {
		t.Fatalf("reopened replay = %d records, want %d", len(got), n)
	}
	if err := l2.Append(testReport(1, 500)); err != nil {
		t.Fatal(err)
	}
	if got := l2.AppendedIndex(); got != n+1 {
		t.Fatalf("post-reopen AppendedIndex = %d, want %d", got, n+1)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			opt := DefaultOptions()
			opt.Sync = policy
			opt.SyncEvery = 10 * time.Millisecond
			l := openTestLog(t, t.TempDir(), opt)
			for i := 0; i < 10; i++ {
				if err := l.Append(testReport(0, i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			st := l.Stats()
			if st.Records != 10 {
				t.Errorf("records = %d, want 10", st.Records)
			}
			switch policy {
			case SyncAlways:
				if st.Fsyncs < 10 {
					t.Errorf("always: fsyncs = %d, want >= 10", st.Fsyncs)
				}
			case SyncNever:
				// Only the explicit Sync barrier (if anything was dirty).
				if st.Fsyncs > 1 {
					t.Errorf("never: fsyncs = %d, want <= 1", st.Fsyncs)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	l := openTestLog(t, t.TempDir(), DefaultOptions())
	defer l.Close()
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(testReport(w, i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*per {
		t.Fatalf("records = %d, want %d", st.Records, writers*per)
	}
	// Every record must replay intact; per-writer slot order is preserved
	// because each writer's appends are sequential.
	seen := make(map[int]int) // participant -> next expected slot
	for _, r := range collect(t, l, 0) {
		if r.Slot != seen[r.Participant] {
			t.Fatalf("writer %d: slot %d out of order (want %d)", r.Participant, r.Slot, seen[r.Participant])
		}
		seen[r.Participant]++
	}
	if st.Batches == 0 || st.Batches > st.Records {
		t.Errorf("batches = %d records = %d", st.Batches, st.Records)
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	opt := DefaultOptions()
	opt.SegmentBytes = 256 // tiny: a few records per segment
	dir := t.TempDir()
	l := openTestLog(t, dir, opt)
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(testReport(i%3, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want several (rotation broken)", st.Segments)
	}
	if st.Rotations == 0 {
		t.Error("no rotations counted")
	}

	// Compact everything behind record 50: early segments disappear, and
	// replay from 50 still yields exactly the tail.
	removed, err := l.Compact(50)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("compaction removed nothing")
	}
	tail := collect(t, l, 50)
	if len(tail) != n-50 {
		t.Fatalf("post-compaction tail = %d records, want %d", len(tail), n-50)
	}
	if tail[0] != testReport(50%3, 50) {
		t.Fatalf("tail starts at %+v, want slot 50", tail[0])
	}
	// The active segment never goes away, even for an absurd horizon.
	if _, err := l.Compact(1 << 60); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 1 {
		t.Fatal("active segment compacted away")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after compaction: indices still line up with the surviving
	// segment headers.
	l2 := openTestLog(t, dir, opt)
	defer l2.Close()
	if got := l2.AppendedIndex(); got != n {
		t.Fatalf("AppendedIndex after compacted reopen = %d, want %d", got, n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, DefaultOptions())
	for i := 0; i < 10; i++ {
		if err := l.Append(testReport(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fault.OS(), dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	// Tear the tail: append half a frame, as a crash mid-write would.
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openTestLog(t, dir, DefaultOptions())
	defer l2.Close()
	st := l2.Stats()
	if st.TruncatedBytes != 6 {
		t.Errorf("truncated bytes = %d, want 6", st.TruncatedBytes)
	}
	if got := l2.AppendedIndex(); got != 10 {
		t.Fatalf("AppendedIndex = %d, want 10", got)
	}
	// The log keeps working where the tear was cut off.
	if err := l2.Append(testReport(1, 100)); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2, 0)
	if len(got) != 11 || got[10] != testReport(1, 100) {
		t.Fatalf("replay after tear = %d records (last %+v)", len(got), got[len(got)-1])
	}
}

func TestCorruptInteriorSegmentSkippedAndCounted(t *testing.T) {
	opt := DefaultOptions()
	opt.SegmentBytes = 256
	dir := t.TempDir()
	l := openTestLog(t, dir, opt)
	const n = 60
	for i := 0; i < n; i++ {
		if err := l.Append(testReport(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip payload bytes in the middle of the second segment: its tail is
	// damaged but the following segments must still replay.
	victim := segs[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0xFF
	data[mid+1] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir, opt)
	defer l2.Close()
	if st := l2.Stats(); st.CorruptSegments == 0 {
		t.Error("corrupt segment not counted at open")
	}
	got := collect(t, l2, 0)
	if len(got) >= n || len(got) == 0 {
		t.Fatalf("replay after interior corruption = %d records, want (0,%d)", len(got), n)
	}
	// Slots must stay strictly increasing across the damage gap: the next
	// segment's header re-anchors the sequence, no record is duplicated.
	for i := 1; i < len(got); i++ {
		if got[i].Slot <= got[i-1].Slot {
			t.Fatalf("slot order broken across gap: %d then %d", got[i-1].Slot, got[i].Slot)
		}
	}
	if st := l2.Stats(); st.ReplaySkipped == 0 {
		t.Error("damaged records not counted as skipped")
	}
	// The tail after the corrupt segment still appends and replays.
	if err := l2.Append(testReport(9, 999)); err != nil {
		t.Fatal(err)
	}
	after := collect(t, l2, l2.AppendedIndex()-1)
	if len(after) != 1 || after[0] != testReport(9, 999) {
		t.Fatalf("tail after corruption = %+v", after)
	}
}

func TestUnreadableHeaderSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, DefaultOptions())
	for i := 0; i < 5; i++ {
		if err := l.Append(testReport(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(fault.OS(), dir)
	if err := os.WriteFile(segs[0], []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, dir, DefaultOptions())
	defer l2.Close()
	if st := l2.Stats(); st.CorruptSegments == 0 {
		t.Error("quarantined segment not counted")
	}
	// The log starts over (nothing recoverable) but keeps the damaged file
	// aside for forensics.
	if err := l2.Append(testReport(3, 3)); err != nil {
		t.Fatal(err)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil || len(quarantined) != 1 {
		t.Errorf("quarantined files = %v (err %v)", quarantined, err)
	}
}

func TestSegmentNaming(t *testing.T) {
	l := &Log{dir: "/tmp/x"}
	p := l.segPath(7)
	if got := segCreation(p); got != 7 {
		t.Errorf("segCreation(%q) = %d, want 7", p, got)
	}
	if base := filepath.Base(p); base != fmt.Sprintf("wal-%016x.seg", 7) {
		t.Errorf("segment name = %q", base)
	}
}

package wal

import (
	"testing"
	"time"

	"itscs/internal/fault"
	"itscs/internal/mcs"
)

// TestSyncIntervalVirtualClock drives the interval-sync committer with a
// virtual clock: appends alone must not fsync, and one virtual tick must.
// The test owns time completely — it passes at any real-time speed and
// never sleeps through a wall-clock flush cadence.
func TestSyncIntervalVirtualClock(t *testing.T) {
	vc := fault.NewVirtualClock(time.Unix(0, 0))
	opt := DefaultOptions()
	opt.Sync = SyncInterval
	opt.SyncEvery = time.Hour // far beyond the test's real runtime
	opt.Clock = vc
	l, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	base := l.Stats().Fsyncs
	for i := 0; i < 5; i++ {
		if err := l.Append(mcs.Report{Fleet: "cab", Participant: i, Slot: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Fsyncs; got != base {
		t.Fatalf("interval mode fsynced on append: %d -> %d", base, got)
	}

	// One virtual hour elapses; the committer's ticker fires and flushes
	// the dirty log. The bounded wait below is for the committer goroutine
	// to run, not for time to pass.
	vc.Advance(time.Hour)
	deadline := time.Now().Add(10 * time.Second)
	for l.Stats().Fsyncs == base {
		if time.Now().After(deadline) {
			t.Fatal("virtual tick did not trigger an interval fsync")
		}
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Records != 5 {
		t.Fatalf("records = %d, want 5", l.Stats().Records)
	}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestPointAdd(t *testing.T) {
	p := Point{X: 1, Y: 2}.Add(3, -1)
	if p.X != 4 || p.Y != 1 {
		t.Fatalf("add = %+v", p)
	}
}

func TestVec(t *testing.T) {
	v := Vec{VX: 3, VY: 4}
	if v.Speed() != 5 {
		t.Fatalf("speed = %v", v.Speed())
	}
	s := v.Scale(2)
	if s.VX != 6 || s.VY != 8 {
		t.Fatalf("scale = %+v", s)
	}
}

func TestShanghaiLikeRegion(t *testing.T) {
	r := ShanghaiLike()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.WidthMeters != 110_000 || r.HeightMeters != 140_000 {
		t.Fatalf("extent = %vx%v", r.WidthMeters, r.HeightMeters)
	}
	c := r.Center()
	if c.X != 55_000 || c.Y != 70_000 {
		t.Fatalf("center = %+v", c)
	}
}

func TestContainsAndClamp(t *testing.T) {
	r := ShanghaiLike()
	if !r.Contains(Point{X: 0, Y: 0}) || !r.Contains(r.Center()) {
		t.Fatal("region must contain origin and center")
	}
	if r.Contains(Point{X: -1, Y: 0}) || r.Contains(Point{X: 0, Y: 1e9}) {
		t.Fatal("region must exclude outside points")
	}
	cl := r.Clamp(Point{X: -500, Y: 1e9})
	if cl.X != 0 || cl.Y != r.HeightMeters {
		t.Fatalf("clamp = %+v", cl)
	}
	if !r.Contains(cl) {
		t.Fatal("clamped point must be contained")
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	r := ShanghaiLike()
	f := func(fx, fy float64) bool {
		p := Point{
			X: math.Abs(math.Mod(fx, 1)) * r.WidthMeters,
			Y: math.Abs(math.Mod(fy, 1)) * r.HeightMeters,
		}
		lat, lon := r.ToLatLon(p)
		back := r.FromLatLon(lat, lon)
		return back.DistanceTo(p) < 0.01 // sub-centimeter round trip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatLonScale(t *testing.T) {
	r := ShanghaiLike()
	// Moving 111,195 m north ≈ 1 degree of latitude.
	lat0, _ := r.ToLatLon(Point{})
	lat1, _ := r.ToLatLon(Point{Y: 111_195})
	if math.Abs((lat1-lat0)-1) > 0.01 {
		t.Fatalf("1 degree latitude should be ~111.2 km, got %v deg", lat1-lat0)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Region{
		{WidthMeters: 0, HeightMeters: 10},
		{WidthMeters: 10, HeightMeters: -1},
		{OriginLat: 91, WidthMeters: 1, HeightMeters: 1},
		{OriginLon: -181, WidthMeters: 1, HeightMeters: 1},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestSpeedConversions(t *testing.T) {
	if KmH(36) != 10 {
		t.Fatalf("KmH(36) = %v", KmH(36))
	}
	if ToKmH(10) != 36 {
		t.Fatalf("ToKmH(10) = %v", ToKmH(10))
	}
	if math.Abs(ToKmH(KmH(72.5))-72.5) > 1e-12 {
		t.Fatal("conversions must round-trip")
	}
}

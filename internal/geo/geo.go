// Package geo provides the planar coordinate model used by the synthetic
// Shanghai-like trace generator and the evaluation harness.
//
// The paper works with GPS coordinates projected onto a local planar frame
// (errors are reported in meters, and the study region spans 110 × 140 km).
// This package mirrors that: all positions are meters east/north of a region
// origin, with helpers to convert to and from WGS-84-style lat/lon using an
// equirectangular projection, which is accurate to well under the paper's
// ~200 m reconstruction error at city scale.
package geo

import (
	"fmt"
	"math"
)

// earthRadiusMeters is the mean Earth radius used by the local projection.
const earthRadiusMeters = 6371000.0

// Point is a planar position in meters within a Region's local frame.
type Point struct {
	X float64 // meters east of the region origin
	Y float64 // meters north of the region origin
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// DistanceTo returns the Euclidean distance in meters to q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Vec is a planar velocity in meters/second.
type Vec struct {
	VX float64
	VY float64
}

// Speed returns the scalar speed in meters/second.
func (v Vec) Speed() float64 { return math.Hypot(v.VX, v.VY) }

// Scale returns the vector scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{VX: v.VX * s, VY: v.VY * s} }

// Region is a rectangular study area with a geographic anchor.
type Region struct {
	// OriginLat and OriginLon anchor the local frame's (0,0) corner.
	OriginLat float64
	OriginLon float64
	// WidthMeters and HeightMeters give the rectangular extent.
	WidthMeters  float64
	HeightMeters float64
}

// ShanghaiLike returns a region matching the paper's SUVnet study area:
// 110 km × 140 km anchored near Shanghai (31.0°N, 121.0°E).
func ShanghaiLike() Region {
	return Region{
		OriginLat:    31.0,
		OriginLon:    121.0,
		WidthMeters:  110_000,
		HeightMeters: 140_000,
	}
}

// Contains reports whether p lies within the region (inclusive of edges).
func (r Region) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.WidthMeters && p.Y >= 0 && p.Y <= r.HeightMeters
}

// Clamp returns p moved to the nearest point inside the region.
func (r Region) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), r.WidthMeters),
		Y: math.Min(math.Max(p.Y, 0), r.HeightMeters),
	}
}

// Center returns the region's central point.
func (r Region) Center() Point {
	return Point{X: r.WidthMeters / 2, Y: r.HeightMeters / 2}
}

// ToLatLon converts a local point to latitude/longitude degrees using an
// equirectangular projection around the origin latitude.
func (r Region) ToLatLon(p Point) (lat, lon float64) {
	lat = r.OriginLat + (p.Y/earthRadiusMeters)*(180/math.Pi)
	lon = r.OriginLon + (p.X/(earthRadiusMeters*math.Cos(r.OriginLat*math.Pi/180)))*(180/math.Pi)
	return lat, lon
}

// FromLatLon converts latitude/longitude degrees to a local point.
func (r Region) FromLatLon(lat, lon float64) Point {
	return Point{
		X: (lon - r.OriginLon) * (math.Pi / 180) * earthRadiusMeters * math.Cos(r.OriginLat*math.Pi/180),
		Y: (lat - r.OriginLat) * (math.Pi / 180) * earthRadiusMeters,
	}
}

// Validate reports configuration errors.
func (r Region) Validate() error {
	if r.WidthMeters <= 0 || r.HeightMeters <= 0 {
		return fmt.Errorf("geo: non-positive region extent %vx%v", r.WidthMeters, r.HeightMeters)
	}
	if r.OriginLat < -90 || r.OriginLat > 90 {
		return fmt.Errorf("geo: origin latitude %v outside [-90,90]", r.OriginLat)
	}
	if r.OriginLon < -180 || r.OriginLon > 180 {
		return fmt.Errorf("geo: origin longitude %v outside [-180,180]", r.OriginLon)
	}
	return nil
}

// KmH converts kilometers/hour to meters/second.
func KmH(kmh float64) float64 { return kmh / 3.6 }

// ToKmH converts meters/second to kilometers/hour.
func ToKmH(ms float64) float64 { return ms * 3.6 }

package mcs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"itscs/internal/fault"
	"itscs/internal/stat"
)

// ErrClientClosed is returned by Send after Close.
var ErrClientClosed = errors.New("mcs: client closed")

// ClientOptions parameterizes a Client. The zero value is usable: every
// field has a production default.
type ClientOptions struct {
	// QueueDepth bounds the send buffer (default 1024). When full the
	// oldest queued report is evicted and counted — the same drop-oldest
	// policy the pipeline's dispatch queue uses, chosen for the same
	// reason: a dead or slow backend degrades to data loss at the tail,
	// never to unbounded memory or a blocked producer.
	QueueDepth int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each report write (default 10s).
	WriteTimeout time.Duration
	// AckTimeout bounds the wait for each acknowledgement line (default
	// 30s). A swallowed write or a hung peer surfaces here and triggers a
	// reconnect instead of pinning the sender forever.
	AckTimeout time.Duration
	// BackoffMin and BackoffMax bound the capped exponential reconnect
	// backoff (defaults 50ms and 5s). Each delay is the doubled base
	// scaled by a seeded jitter draw in [0.5, 1], so a fleet of clients
	// losing one backend does not redial in lockstep.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed drives the jitter draw; clients with distinct seeds desynchronize.
	Seed int64
	// Clock supplies the backoff waits (default the wall clock). The fault
	// harness swaps in a virtual clock; connection I/O deadlines always use
	// wall time because net.Conn deadlines do.
	Clock fault.Clock
	// Dial is the transport seam (default a net.Dialer bounded by
	// DialTimeout). Tests inject in-memory pipes or fault.FlakyConn here.
	Dial func(addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 30 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 5 * time.Second
		if o.BackoffMax < o.BackoffMin {
			o.BackoffMax = o.BackoffMin
		}
	}
	if o.Clock == nil {
		o.Clock = fault.RealClock()
	}
	return o
}

// ClientStats snapshots a client's counters. They conserve: Enqueued =
// Acked + Rejected + Dropped + QueueDepth + in-flight (0 or 1).
type ClientStats struct {
	// Enqueued counts reports accepted by Send; Dropped the subset evicted
	// from the full queue or abandoned by Close before delivery.
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	// Sent counts wire writes including retries; Acked reports the server
	// answered "ok", Rejected those it answered "err ..." (duplicates, range
	// errors — delivered but refused, never retried).
	Sent     uint64 `json:"sent"`
	Acked    uint64 `json:"acked"`
	Rejected uint64 `json:"rejected"`
	// Retries counts re-sends after a transport failure mid-report.
	Retries uint64 `json:"retries"`
	// Dials counts connection attempts, DialFailures the failed subset, and
	// Reconnects established connections torn down and replaced.
	Dials        uint64 `json:"dials"`
	DialFailures uint64 `json:"dial_failures"`
	Reconnects   uint64 `json:"reconnects"`
	// QueueDepth and QueueCapacity describe the send buffer right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// Client maintains one report stream to an mcs server, surviving the
// transport: it dials lazily, reconnects with capped exponential backoff
// plus seeded jitter, retries the in-flight report after a connection loss
// (the server's duplicate rejection makes the retry idempotent), and
// buffers sends in a bounded drop-oldest queue so a dead backend never
// blocks the producer. Send never blocks; Flush waits for the buffer to
// drain. All methods are safe for concurrent use.
type Client struct {
	addr string
	opt  ClientOptions
	rng  *stat.RNG

	queue chan Report
	qmu   sync.Mutex // serializes the send-or-drop-oldest dance
	stop  chan struct{}
	done  chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when pending reaches 0 or the client closes
	closed  bool
	pending int // enqueued reports not yet acked/rejected/dropped
	conn    net.Conn

	c struct {
		enqueued, dropped, sent, acked, rejected uint64
		retries, dials, dialFailures, reconnects uint64
	}
}

// NewClient starts a client for the given server address. The connection is
// dialed lazily on the first Send; the caller must Close the client.
func NewClient(addr string, opt ClientOptions) *Client {
	opt = opt.withDefaults()
	c := &Client{
		addr:  addr,
		opt:   opt,
		rng:   stat.NewRNG(opt.Seed).Child("mcs-client"),
		queue: make(chan Report, opt.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if c.opt.Dial == nil {
		c.opt.Dial = func(addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: opt.DialTimeout}
			return d.Dial("tcp", addr)
		}
	}
	c.cond = sync.NewCond(&c.mu)
	go c.loop()
	return c
}

// Send buffers one report for delivery. It never blocks: when the queue is
// full the oldest buffered report is evicted and counted under Dropped
// (the report just handed in is accepted). The only error is ErrClientClosed.
func (c *Client) Send(r Report) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.c.enqueued++
	c.pending++
	c.mu.Unlock()

	evicted := 0
	c.qmu.Lock()
	for {
		select {
		case c.queue <- r:
			c.qmu.Unlock()
			if evicted > 0 {
				c.settle(evicted, func() { c.c.dropped += uint64(evicted) })
			}
			return nil
		default:
		}
		select {
		case <-c.queue:
			evicted++
		default:
		}
	}
}

// Flush blocks until every buffered report has reached a terminal state
// (acked, rejected, or dropped) or the context ends. With the backend down
// the in-flight report retries indefinitely, so callers bound Flush with a
// deadline.
func (c *Client) Flush(ctx context.Context) error {
	wake := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer wake()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.pending > 0 && ctx.Err() == nil && !c.closed {
		c.cond.Wait()
	}
	if ctx.Err() != nil {
		return fmt.Errorf("mcs: flush: %w", ctx.Err())
	}
	if c.pending > 0 {
		return ErrClientClosed
	}
	return nil
}

// Close stops the client, severs the connection, and counts every report
// still buffered (or in flight) as dropped. It is idempotent. Callers that
// need delivery guarantees Flush first.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()

	close(c.stop)
	if conn != nil {
		_ = conn.Close() // unblock a read or write in flight
	}
	<-c.done

	// Abandon whatever never reached the wire.
	abandoned := 0
drain:
	for {
		select {
		case <-c.queue:
			abandoned++
		default:
			break drain
		}
	}
	c.mu.Lock()
	c.c.dropped += uint64(abandoned)
	c.pending = 0
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Enqueued:      c.c.enqueued,
		Dropped:       c.c.dropped,
		Sent:          c.c.sent,
		Acked:         c.c.acked,
		Rejected:      c.c.rejected,
		Retries:       c.c.retries,
		Dials:         c.c.dials,
		DialFailures:  c.c.dialFailures,
		Reconnects:    c.c.reconnects,
		QueueDepth:    len(c.queue),
		QueueCapacity: cap(c.queue),
	}
}

// settle moves n reports out of pending, applies the counter update, and
// wakes Flush waiters when the client goes idle.
func (c *Client) settle(n int, update func()) {
	c.mu.Lock()
	update()
	c.pending -= n
	if c.pending <= 0 {
		c.pending = 0
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// loop is the single delivery goroutine: it owns the connection and drains
// the queue in FIFO order, one report at a time, so per-fleet slot order is
// preserved end to end.
func (c *Client) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case r := <-c.queue:
			switch c.deliver(r) {
			case deliveredAck:
				c.settle(1, func() { c.c.acked++ })
			case deliveredErr:
				c.settle(1, func() { c.c.rejected++ })
			case aborted:
				c.settle(1, func() { c.c.dropped++ })
				return
			}
		}
	}
}

type deliverOutcome int

const (
	deliveredAck deliverOutcome = iota
	deliveredErr
	aborted
)

// deliver pushes one report through the wire until the server answers or
// the client closes. A transport failure mid-report tears the connection
// down and retries the same report on a fresh one; the server's first-write-
// wins duplicate rejection makes the at-least-once retry harmless.
func (c *Client) deliver(r Report) deliverOutcome {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.c.retries++
			c.mu.Unlock()
			if !c.sleep(c.backoff(attempt - 1)) {
				return aborted
			}
		}
		cs := c.ensureConn()
		if cs == nil {
			return aborted
		}
		c.mu.Lock()
		c.c.sent++
		c.mu.Unlock()
		ok, _, err := cs.exchange(r, c.opt.WriteTimeout, c.opt.AckTimeout)
		if err != nil {
			c.dropConn()
			continue
		}
		if ok {
			return deliveredAck
		}
		return deliveredErr
	}
}

// ensureConn returns the live connection, dialing with backoff until one is
// established. nil means the client is closing.
func (c *Client) ensureConn() *clientConn {
	c.mu.Lock()
	if cc, ok := c.conn.(*clientConn); ok {
		c.mu.Unlock()
		return cc
	}
	c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		select {
		case <-c.stop:
			return nil
		default:
		}
		c.mu.Lock()
		c.c.dials++
		c.mu.Unlock()
		conn, err := c.opt.Dial(c.addr)
		if err == nil {
			cc := newClientConn(conn)
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				_ = conn.Close()
				return nil
			}
			c.conn = cc
			c.mu.Unlock()
			return cc
		}
		c.mu.Lock()
		c.c.dialFailures++
		c.mu.Unlock()
		if !c.sleep(c.backoff(attempt)) {
			return nil
		}
	}
}

// dropConn closes and forgets the current connection after a transport
// failure.
func (c *Client) dropConn() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	if conn != nil {
		c.c.reconnects++
	}
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// backoff computes the delay before retry `attempt` (0-based): the base
// doubled per attempt, capped at BackoffMax, scaled by a seeded jitter draw
// in [0.5, 1].
func (c *Client) backoff(attempt int) time.Duration {
	return backoffDelay(attempt, c.opt.BackoffMin, c.opt.BackoffMax, c.rng)
}

// backoffDelay is the pure backoff schedule: lo·2^attempt capped at hi,
// jittered to [0.5, 1]× by the rng. Exponent overflow saturates at hi.
func backoffDelay(attempt int, lo, hi time.Duration, rng *stat.RNG) time.Duration {
	d := hi
	if attempt < 62 {
		if shifted := lo << uint(attempt); shifted > 0 && shifted < hi {
			d = shifted
		}
	}
	d = time.Duration(rng.Uniform(0.5, 1) * float64(d))
	if d < lo/2 {
		d = lo / 2
	}
	return d
}

// sleep waits d on the configured clock, returning false if the client
// closed first. The wait rides a one-shot ticker so a virtual clock can
// drive it deterministically.
func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := c.opt.Clock.NewTicker(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-c.stop:
		return false
	}
}

// clientConn bundles a connection with its buffered reader so ack lines
// survive across exchanges.
type clientConn struct {
	net.Conn
	fr *frame
}

func newClientConn(conn net.Conn) *clientConn {
	return &clientConn{Conn: conn, fr: newFrame(conn)}
}

// exchange writes one report line and reads its acknowledgement, each under
// its own wall-clock deadline.
func (cs *clientConn) exchange(r Report, writeTimeout, ackTimeout time.Duration) (ok bool, reason string, err error) {
	if err := cs.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return false, "", err
	}
	if err := cs.fr.writeReport(r); err != nil {
		return false, "", err
	}
	if err := cs.SetReadDeadline(time.Now().Add(ackTimeout)); err != nil {
		return false, "", err
	}
	return cs.fr.readAck()
}

package mcs

import (
	"context"
	"fmt"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

// StreamPlan configures a fleet replay.
type StreamPlan struct {
	// LossRatio is the probability that a report is dropped in transit —
	// the transport-level mechanism behind the paper's missing values.
	// Valid range is [0, 1): every report lost would leave nothing to
	// reconstruct from, so Validate rejects 1 and above.
	LossRatio float64
	// Seed drives the deterministic loss draw.
	Seed int64
	// Participants restricts the replay to the given participant indices;
	// empty means all.
	Participants []int
}

// Validate reports plan errors.
func (p StreamPlan) Validate() error {
	if p.LossRatio < 0 || p.LossRatio >= 1 {
		return fmt.Errorf("mcs: loss ratio %v outside [0,1)", p.LossRatio)
	}
	return nil
}

// Streamer replays coordinate/velocity matrices as a slot-ordered report
// stream, simulating a fleet of devices uploading in real time.
type Streamer struct {
	x, y, vx, vy *mat.Dense
	plan         StreamPlan
}

// NewStreamer builds a replay over the given matrices (participants ×
// slots, all the same shape).
func NewStreamer(x, y, vx, vy *mat.Dense, plan StreamPlan) (*Streamer, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n, t := x.Dims()
	for name, m := range map[string]*mat.Dense{"Y": y, "VX": vx, "VY": vy} {
		if mr, mc := m.Dims(); mr != n || mc != t {
			return nil, fmt.Errorf("mcs: %s is %dx%d, want %dx%d", name, mr, mc, n, t)
		}
	}
	for _, p := range plan.Participants {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("mcs: participant %d outside [0,%d)", p, n)
		}
	}
	return &Streamer{x: x, y: y, vx: vx, vy: vy, plan: plan}, nil
}

// Reports materializes the full replay: reports ordered by slot then
// participant, with lossy cells removed.
func (s *Streamer) Reports() []Report {
	n, t := s.x.Dims()
	participants := s.plan.Participants
	if len(participants) == 0 {
		participants = make([]int, n)
		for i := range participants {
			participants[i] = i
		}
	}
	rng := stat.NewRNG(s.plan.Seed).Child("stream-loss")
	out := make([]Report, 0, len(participants)*t)
	for slot := 0; slot < t; slot++ {
		for _, p := range participants {
			if s.plan.LossRatio > 0 && rng.Bool(s.plan.LossRatio) {
				continue
			}
			out = append(out, Report{
				Participant: p,
				Slot:        slot,
				X:           s.x.At(p, slot),
				Y:           s.y.At(p, slot),
				VX:          s.vx.At(p, slot),
				VY:          s.vy.At(p, slot),
			})
		}
	}
	return out
}

// Stream sends the replay to a channel, honouring context cancellation.
// It closes out when the replay completes and returns ctx.Err() if
// cancelled early.
func (s *Streamer) Stream(ctx context.Context, out chan<- Report) error {
	defer close(out)
	for _, r := range s.Reports() {
		select {
		case out <- r:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

package mcs

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary report encoding, used as the payload of one write-ahead-log frame.
// Two layouts share the wire (all little-endian):
//
// v1 — an unstamped report:
//
//	uvarint  fleet length, then that many bytes of fleet ID
//	uvarint  participant
//	uvarint  slot
//	8 bytes  X   (IEEE-754 bits)
//	8 bytes  Y
//	8 bytes  VX
//	8 bytes  VY
//
// v2 — a report carrying a freshness stamp:
//
//	0xFF 0x7F  version sentinel (see below)
//	uvarint    format version (2)
//	…v1 body…
//	uvarint    IngestUnixMicro
//	1 byte     Origin
//	8 bytes    TraceID
//
// The sentinel makes the two layouts unambiguous: read as a v1 fleet
// length, the bytes {0xFF, 0x7F} decode to 16383, which exceeds
// maxFleetLen, so no valid v1 frame can begin with them. Unstamped reports
// still encode as plain v1, so pre-upgrade logs, fuzz corpora and mixed
// clusters keep byte-identical round trips, and old decoders keep reading
// everything a stamp-free writer produces. Old v1 frames decode with a
// zero stamp.
//
// The encoding is self-delimiting, so frames need only protect it with a
// length and checksum. Payload values round-trip bit-exactly, including the
// non-finite ones ingestion rejects: the log is a transport, not a
// validator, and replay pushes records back through the same Ingest checks
// the live path applies.

// maxFleetLen bounds the fleet-ID length a decoder will accept, mirroring
// what any sane deployment would configure and keeping a corrupt length
// byte from driving a huge allocation.
const maxFleetLen = 1 << 10

// binVersionStamped is the wire version of the stamped (v2) layout.
const binVersionStamped = 2

// binSentinel prefixes every versioned (v2+) frame.
var binSentinel = [2]byte{0xFF, 0x7F}

// AppendBinary appends the report's binary encoding to dst and returns the
// extended slice. Unstamped reports use the v1 layout; a report with any
// stamp field set uses v2.
func (r Report) AppendBinary(dst []byte) []byte {
	if r.IngestUnixMicro == 0 && r.Origin == OriginUnknown && r.TraceID == 0 {
		return r.appendBodyV1(dst)
	}
	dst = append(dst, binSentinel[0], binSentinel[1])
	dst = binary.AppendUvarint(dst, binVersionStamped)
	dst = r.appendBodyV1(dst)
	dst = binary.AppendUvarint(dst, uint64(r.IngestUnixMicro))
	dst = append(dst, byte(r.Origin))
	dst = binary.LittleEndian.AppendUint64(dst, r.TraceID)
	return dst
}

func (r Report) appendBodyV1(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Fleet)))
	dst = append(dst, r.Fleet...)
	dst = binary.AppendUvarint(dst, uint64(r.Participant))
	dst = binary.AppendUvarint(dst, uint64(r.Slot))
	for _, v := range [...]float64{r.X, r.Y, r.VX, r.VY} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeBinary parses one binary-encoded report from the front of b,
// returning the number of bytes consumed. It accepts both layouts — v1
// frames yield a zero stamp — and rejects unknown future versions. It
// never panics on malformed input and rejects trailing garbage only
// implicitly (callers compare n to the frame's payload length).
func DecodeBinary(b []byte) (r Report, n int, err error) {
	if len(b) >= 2 && b[0] == binSentinel[0] && b[1] == binSentinel[1] {
		return decodeStamped(b)
	}
	return decodeBodyV1(b)
}

func decodeStamped(b []byte) (r Report, n int, err error) {
	n = 2 // sentinel
	v, k := binary.Uvarint(b[n:])
	if k <= 0 {
		return Report{}, 0, fmt.Errorf("mcs: bad version in binary report")
	}
	if v != binVersionStamped {
		return Report{}, 0, fmt.Errorf("mcs: unsupported binary report version %d", v)
	}
	n += k
	r, k, err = decodeBodyV1(b[n:])
	if err != nil {
		return Report{}, 0, err
	}
	n += k

	us, k := binary.Uvarint(b[n:])
	if k <= 0 {
		return Report{}, 0, fmt.Errorf("mcs: bad ingest stamp in binary report")
	}
	r.IngestUnixMicro = int64(us)
	n += k
	if len(b)-n < 1+8 {
		return Report{}, 0, fmt.Errorf("mcs: truncated stamp in binary report")
	}
	r.Origin = Origin(b[n])
	n++
	r.TraceID = binary.LittleEndian.Uint64(b[n:])
	n += 8
	return r, n, nil
}

func decodeBodyV1(b []byte) (r Report, n int, err error) {
	flen, k := binary.Uvarint(b)
	if k <= 0 || flen > maxFleetLen {
		return Report{}, 0, fmt.Errorf("mcs: bad fleet length in binary report")
	}
	n += k
	if uint64(len(b)-n) < flen {
		return Report{}, 0, fmt.Errorf("mcs: truncated fleet in binary report")
	}
	r.Fleet = string(b[n : n+int(flen)])
	n += int(flen)

	p, k := binary.Uvarint(b[n:])
	if k <= 0 || p > math.MaxInt32 {
		return Report{}, 0, fmt.Errorf("mcs: bad participant in binary report")
	}
	r.Participant = int(p)
	n += k
	s, k := binary.Uvarint(b[n:])
	if k <= 0 || s > math.MaxInt32 {
		return Report{}, 0, fmt.Errorf("mcs: bad slot in binary report")
	}
	r.Slot = int(s)
	n += k

	if len(b)-n < 32 {
		return Report{}, 0, fmt.Errorf("mcs: truncated values in binary report")
	}
	vals := [4]float64{}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		n += 8
	}
	r.X, r.Y, r.VX, r.VY = vals[0], vals[1], vals[2], vals[3]
	return r, n, nil
}

package mcs

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary report encoding, used as the payload of one write-ahead-log frame.
// Layout (all little-endian):
//
//	uvarint  fleet length, then that many bytes of fleet ID
//	uvarint  participant
//	uvarint  slot
//	8 bytes  X   (IEEE-754 bits)
//	8 bytes  Y
//	8 bytes  VX
//	8 bytes  VY
//
// The encoding is self-delimiting, so frames need only protect it with a
// length and checksum. Payload values round-trip bit-exactly, including the
// non-finite ones ingestion rejects: the log is a transport, not a
// validator, and replay pushes records back through the same Ingest checks
// the live path applies.

// maxFleetLen bounds the fleet-ID length a decoder will accept, mirroring
// what any sane deployment would configure and keeping a corrupt length
// byte from driving a huge allocation.
const maxFleetLen = 1 << 10

// AppendBinary appends the report's binary encoding to dst and returns the
// extended slice.
func (r Report) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Fleet)))
	dst = append(dst, r.Fleet...)
	dst = binary.AppendUvarint(dst, uint64(r.Participant))
	dst = binary.AppendUvarint(dst, uint64(r.Slot))
	for _, v := range [...]float64{r.X, r.Y, r.VX, r.VY} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeBinary parses one binary-encoded report from the front of b,
// returning the number of bytes consumed. It never panics on malformed
// input and rejects trailing garbage only implicitly (callers compare n to
// the frame's payload length).
func DecodeBinary(b []byte) (r Report, n int, err error) {
	flen, k := binary.Uvarint(b)
	if k <= 0 || flen > maxFleetLen {
		return Report{}, 0, fmt.Errorf("mcs: bad fleet length in binary report")
	}
	n += k
	if uint64(len(b)-n) < flen {
		return Report{}, 0, fmt.Errorf("mcs: truncated fleet in binary report")
	}
	r.Fleet = string(b[n : n+int(flen)])
	n += int(flen)

	p, k := binary.Uvarint(b[n:])
	if k <= 0 || p > math.MaxInt32 {
		return Report{}, 0, fmt.Errorf("mcs: bad participant in binary report")
	}
	r.Participant = int(p)
	n += k
	s, k := binary.Uvarint(b[n:])
	if k <= 0 || s > math.MaxInt32 {
		return Report{}, 0, fmt.Errorf("mcs: bad slot in binary report")
	}
	r.Slot = int(s)
	n += k

	if len(b)-n < 32 {
		return Report{}, 0, fmt.Errorf("mcs: truncated values in binary report")
	}
	vals := [4]float64{}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		n += 8
	}
	r.X, r.Y, r.VX, r.VY = vals[0], vals[1], vals[2], vals[3]
	return r, n, nil
}

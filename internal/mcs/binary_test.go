package mcs

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	reports := []Report{
		{Fleet: "cab", Participant: 7, Slot: 42, X: 1.5, Y: -2.25, VX: 0.5, VY: -0.125},
		{}, // empty fleet, all zero
		{Fleet: "f", Participant: 1 << 20, Slot: 1 << 20, X: 1e308, Y: -1e308},
		{Fleet: "weird", X: math.NaN(), Y: math.Inf(1), VX: math.Inf(-1), VY: math.Copysign(0, -1)},
	}
	var buf []byte
	for _, r := range reports {
		buf = r.AppendBinary(buf)
	}
	for i, want := range reports {
		got, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		buf = buf[n:]
		if got.Fleet != want.Fleet || got.Participant != want.Participant || got.Slot != want.Slot {
			t.Fatalf("record %d identity: %+v != %+v", i, got, want)
		}
		pairs := [4][2]float64{{want.X, got.X}, {want.Y, got.Y}, {want.VX, got.VX}, {want.VY, got.VY}}
		for k, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Fatalf("record %d value %d: bits %x != %x", i, k, math.Float64bits(p[1]), math.Float64bits(p[0]))
			}
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
}

func TestDecodeBinaryMalformed(t *testing.T) {
	good := Report{Fleet: "cab", Participant: 1, Slot: 2, X: 3}.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":             {},
		"huge fleet length": {0xFF, 0xFF, 0xFF, 0x7F},
		"truncated fleet":   {0x05, 'c', 'a'},
		"truncated values":  good[:len(good)-5],
		"oversized participant": append(
			[]byte{0x00},                                               // empty fleet
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, // > MaxInt32
		),
	}
	for name, b := range cases {
		if _, _, err := DecodeBinary(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckFiniteRejectsNonFinite(t *testing.T) {
	bad := []Report{
		{X: math.NaN()},
		{Y: math.Inf(1)},
		{VX: math.Inf(-1)},
		{VY: math.NaN()},
	}
	for i, r := range bad {
		if err := r.CheckFinite(); !errors.Is(err, ErrNonFinite) {
			t.Errorf("report %d: err = %v, want ErrNonFinite", i, err)
		}
	}
	ok := Report{X: 1e308, Y: -1e308, VX: 0, VY: math.Copysign(0, -1)}
	if err := ok.CheckFinite(); err != nil {
		t.Errorf("finite report rejected: %v", err)
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	r := Report{Fleet: "cab", Participant: 0, Slot: 0, X: math.NaN()}
	err := r.Validate(10, 10)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Validate err = %v, want ErrNonFinite", err)
	}
	if !strings.Contains(err.Error(), "participant 0") {
		t.Errorf("error should identify the report: %v", err)
	}
}

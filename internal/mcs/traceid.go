package mcs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// Trace IDs are 64-bit, nonzero, and unique per process with overwhelming
// probability across processes: a crypto/rand base xored with a mixed
// atomic counter. Mixing (splitmix64's finalizer) spreads consecutive
// counter values across the full word so IDs from one process don't share
// a prefix and truncated displays stay distinguishable.

var (
	traceBase    = randomTraceBase()
	traceCounter atomic.Uint64
)

func randomTraceBase() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded but functional: IDs stay process-unique via the counter.
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// NextTraceID returns a fresh nonzero trace ID. Safe for concurrent use.
func NextTraceID() uint64 {
	for {
		if id := mix64(traceBase + traceCounter.Add(1)); id != 0 {
			return id
		}
	}
}

// mix64 is splitmix64's output permutation: a bijection on uint64 with
// strong avalanche, so sequential inputs yield well-spread outputs.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

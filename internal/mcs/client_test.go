package mcs

import (
	"context"
	"net"
	"testing"
	"time"

	"itscs/internal/fault"
	"itscs/internal/stat"
)

// fastClientOptions keeps test reconnect loops snappy.
func fastClientOptions() ClientOptions {
	return ClientOptions{
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		AckTimeout: 2 * time.Second,
	}
}

func TestClientDeliversAndCounts(t *testing.T) {
	c, err := NewCollector(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	cl := NewClient(addr, fastClientOptions())
	defer cl.Close()

	for s := 0; s < 4; s++ {
		if err := cl.Send(Report{Participant: 1, Slot: s, X: 1, Y: 2}); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate and an out-of-range report: delivered, refused, counted.
	if err := cl.Send(Report{Participant: 1, Slot: 0, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Report{Participant: 99, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Acked != 4 || st.Rejected != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 4 acked / 2 rejected / 0 dropped", st)
	}
	if st.Enqueued != st.Acked+st.Rejected+st.Dropped {
		t.Fatalf("counters do not conserve: %+v", st)
	}
	if got := c.Snapshot().Accepted; got != 4 {
		t.Fatalf("server accepted %d, want 4", got)
	}
}

// TestClientReconnectsAcrossServerRestart is the reconnect contract: a
// backend that dies mid-stream and comes back on the same address receives
// the rest of the stream with no report lost.
func TestClientReconnectsAcrossServerRestart(t *testing.T) {
	c1, err := NewCollector(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(c1)
	addr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve() }()

	cl := NewClient(addr.String(), fastClientOptions())
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for s := 0; s < 10; s++ {
		if err := cl.Send(Report{Participant: 0, Slot: s, X: 1, Y: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the backend; the next sends pile into the client's queue while it
	// redials with backoff.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	for s := 10; s < 20; s++ {
		if err := cl.Send(Report{Participant: 0, Slot: s, X: 1, Y: 1}); err != nil {
			t.Fatal(err)
		}
	}

	// Restart on the same address; the client must find it and drain.
	c2, err := NewCollector(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(c2)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve() }()
	t.Cleanup(func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close srv2: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("serve srv2: %v", err)
		}
	})

	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Acked != 20 || st.Dropped != 0 {
		t.Fatalf("stats after restart = %+v, want 20 acked / 0 dropped", st)
	}
	if st.Dials < 2 {
		t.Errorf("dials = %d, want at least 2 (one per server life)", st.Dials)
	}
	if got := c2.Snapshot().Accepted; got != 10 {
		t.Fatalf("second life accepted %d, want 10", got)
	}
}

// TestClientRetriesAfterMidStreamCut severs the connection mid-stream with
// the fault harness: the client must reconnect and re-send the unacked
// report, and the server's duplicate rejection absorbs any double delivery.
func TestClientRetriesAfterMidStreamCut(t *testing.T) {
	c, err := NewCollector(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)

	opt := fastClientOptions()
	dials := 0
	opt.Dial = func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			// First connection dies after ~6 report lines.
			return fault.WrapConn(conn, fault.ConnPlan{Seed: 1, CutAfterBytes: 300}), nil
		}
		return conn, nil
	}
	cl := NewClient(addr, opt)
	defer cl.Close()

	const n = 40
	for s := 0; s < n; s++ {
		if err := cl.Send(Report{Participant: 1, Slot: s, X: 3, Y: 4}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Acked+st.Rejected != n || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d delivered / 0 dropped", st, n)
	}
	if st.Reconnects < 1 || st.Retries < 1 {
		t.Errorf("stats = %+v, want at least one reconnect and retry", st)
	}
	// Every slot must have landed exactly once regardless of retries.
	if got := c.Snapshot().Accepted; got != n {
		t.Fatalf("server accepted %d, want %d", got, n)
	}
}

func TestClientDropsOldestWhenQueueFull(t *testing.T) {
	// No server: nothing drains the queue, so sends beyond the depth evict.
	opt := fastClientOptions()
	opt.QueueDepth = 4
	opt.DialTimeout = 50 * time.Millisecond
	cl := NewClient("127.0.0.1:1", opt) // reserved port: dials fail fast
	defer cl.Close()

	const n = 20
	for s := 0; s < n; s++ {
		if err := cl.Send(Report{Participant: 0, Slot: s}); err != nil {
			t.Fatal(err)
		}
	}
	st := cl.Stats()
	// The queue holds 4 and at most one report is in flight; everything
	// else must have been evicted oldest-first, not blocked on.
	if st.Enqueued != n {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, n)
	}
	if st.Dropped < uint64(n-opt.QueueDepth-1) {
		t.Fatalf("dropped = %d, want at least %d", st.Dropped, n-opt.QueueDepth-1)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	st = cl.Stats()
	if st.Acked+st.Rejected+st.Dropped != st.Enqueued {
		t.Fatalf("counters do not conserve after close: %+v", st)
	}
}

func TestClientSendAfterClose(t *testing.T) {
	cl := NewClient("127.0.0.1:1", fastClientOptions())
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Report{}); err != ErrClientClosed {
		t.Fatalf("Send after Close = %v, want ErrClientClosed", err)
	}
	// Flush on a closed client returns immediately: everything the client
	// ever held reached a terminal state (dropped) when Close abandoned it.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := cl.Flush(ctx); err != nil {
		t.Fatalf("Flush after Close = %v, want nil", err)
	}
}

// TestBackoffDelaySchedule pins the pure backoff curve: exponential growth
// from the floor, a hard cap, and jitter confined to [0.5, 1]× the nominal
// delay.
func TestBackoffDelaySchedule(t *testing.T) {
	const lo, hi = 50 * time.Millisecond, 5 * time.Second
	rng := stat.NewRNG(42).Child("test")
	for attempt := 0; attempt < 40; attempt++ {
		nominal := lo << uint(attempt)
		if attempt >= 62 || nominal <= 0 || nominal > hi {
			nominal = hi
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(attempt, lo, hi, rng)
			if d < lo/2 || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo/2, hi)
			}
			if d > nominal {
				t.Fatalf("attempt %d: delay %v above nominal %v", attempt, d, nominal)
			}
			if d < nominal/2 {
				t.Fatalf("attempt %d: delay %v below half of nominal %v", attempt, d, nominal)
			}
		}
	}
}

// TestClientBackoffWaitsOnClockSeam proves the reconnect waits ride the
// injected clock: with a virtual clock that never advances, a failing dial
// parks the client in its backoff sleep instead of hot-looping.
func TestClientBackoffWaitsOnClockSeam(t *testing.T) {
	vc := fault.NewVirtualClock(time.Unix(0, 0))
	opt := fastClientOptions()
	opt.Clock = vc
	opt.BackoffMin = time.Minute
	opt.BackoffMax = time.Hour
	dials := make(chan struct{}, 64)
	opt.Dial = func(addr string) (net.Conn, error) {
		dials <- struct{}{}
		return nil, net.ErrClosed
	}
	cl := NewClient("unused", opt)
	defer cl.Close()
	if err := cl.Send(Report{Participant: 0, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	// First dial happens immediately.
	select {
	case <-dials:
	case <-time.After(5 * time.Second):
		t.Fatal("client never dialed")
	}
	// With virtual time frozen there must be no second dial.
	select {
	case <-dials:
		t.Fatal("client redialed without the clock advancing")
	case <-time.After(100 * time.Millisecond):
	}
	// Advancing the clock past the max backoff releases exactly the wait.
	vc.Advance(2 * time.Hour)
	select {
	case <-dials:
	case <-time.After(5 * time.Second):
		t.Fatal("client did not redial after the clock advanced")
	}
}

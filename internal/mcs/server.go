package mcs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// immediatePast returns a deadline that cancels blocking I/O immediately.
func immediatePast() time.Time { return time.Unix(1, 0) }

// DefaultIdleTimeout is the per-connection idle limit applied by NewServer:
// a client that delivers no complete report line for this long is
// disconnected, so dead clients cannot hold goroutines and connection
// slots forever.
const DefaultIdleTimeout = 2 * time.Minute

// Server exposes an Ingestor (a batch Collector or the streaming pipeline)
// over line-delimited JSON on TCP. Each connection may stream any number of
// reports; the server replies to every line with "ok\n" or "err <reason>\n",
// giving participants upload acknowledgement as in a real MCS backend.
//
// Start the server with Serve (usually in a goroutine) and stop it with
// Close, which stops accepting, closes live connections, and waits for the
// connection handlers to drain.
type Server struct {
	ingestor Ingestor

	// IdleTimeout bounds how long a connection may sit without delivering a
	// complete report line before it is dropped. Zero disables the limit.
	// Set it before Serve; NewServer initializes it to DefaultIdleTimeout.
	IdleTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps an ingestor.
func NewServer(c Ingestor) *Server {
	return &Server{
		ingestor:    c,
		IdleTimeout: DefaultIdleTimeout,
		conns:       make(map[net.Conn]struct{}),
	}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and returns the
// bound address, useful with port 0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mcs: listen: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		_ = ln.Close()
		return nil, errors.New("mcs: server closed")
	}
	s.listener = ln
	return ln.Addr(), nil
}

// Serve accepts connections until Close is called. It returns nil on
// graceful shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("mcs: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("mcs: accept: %w", err)
		}
		if !s.track(conn) {
			_ = conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// Close stops the listener, closes live connections, and waits for
// handlers to finish. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	_ = conn.Close()
}

// ServeConn runs the report-stream protocol over a single caller-supplied
// connection, blocking until the peer disconnects or stalls past
// IdleTimeout. It is the seam the fault-injection harness uses to drive a
// handler over an in-memory or flaky transport without a listener; Serve
// uses the same code path for accepted TCP connections.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track(conn) {
		_ = conn.Close()
		return
	}
	defer s.untrack(conn)
	s.handle(conn)
}

// handle processes one connection's report stream.
func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for {
		// Refresh the read deadline before every line: a client must keep
		// delivering complete reports within IdleTimeout or be dropped, so a
		// stalled or dead peer cannot pin its handler goroutine forever.
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		if !sc.Scan() {
			break
		}
		var r Report
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			writeLine(w, "err bad json")
			continue
		}
		if err := s.ingestor.Ingest(r); err != nil {
			writeLine(w, "err "+err.Error())
			continue
		}
		writeLine(w, "ok")
	}
	// Scanner errors (timeouts and closed connections included) end the
	// stream; the participant will reconnect and retry in a real deployment.
}

func writeLine(w *bufio.Writer, line string) {
	_, _ = w.WriteString(line)
	_ = w.WriteByte('\n')
	_ = w.Flush()
}

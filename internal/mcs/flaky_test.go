package mcs

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"itscs/internal/fault"
)

// TestServeConnMidFrameCut severs the transport in the middle of the second
// report line and checks the server keeps everything that arrived whole: the
// partial frame is discarded, the handler exits cleanly, and no goroutine or
// connection slot leaks.
func TestServeConnMidFrameCut(t *testing.T) {
	c, err := NewCollector(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(server)
		close(done)
	}()

	line1, err := json.Marshal(Report{Participant: 0, Slot: 0, X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	line2, err := json.Marshal(Report{Participant: 1, Slot: 0, X: 3, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append(line1, '\n'), line2...)
	payload = append(payload, '\n')
	// Cut inside the second line: the first report arrives whole, the
	// second is a torn frame followed by EOF.
	cut := len(line1) + 1 + len(line2)/2
	fc := fault.WrapConn(client, fault.ConnPlan{Seed: 5, CutAfterBytes: int64(cut)})

	if n, err := fc.Write(payload); err == nil || n != cut {
		t.Fatalf("write across the cut: n=%d err=%v, want n=%d and an injected error", n, err, cut)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not exit after the transport was cut")
	}
	if got := c.Snapshot().Accepted; got != 1 {
		t.Fatalf("accepted %d reports, want exactly the one delivered before the cut", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after cut connection: %v", err)
	}
}

// TestServeConnIdleStall checks the idle timeout reaps a client that goes
// silent mid-stream, so a stalled uplink cannot pin its handler forever.
func TestServeConnIdleStall(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c)
	srv.IdleTimeout = 50 * time.Millisecond
	client, server := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(server)
		close(done)
	}()

	// Deliver one good report, then stall: the handler must exit on its own.
	line, err := json.Marshal(Report{Participant: 0, Slot: 0, X: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle timeout did not reap the stalled connection")
	}
	if got := c.Snapshot().Accepted; got != 1 {
		t.Fatalf("accepted %d, want 1", got)
	}
}

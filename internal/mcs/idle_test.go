package mcs

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// startIdleServer is startServer with a custom idle timeout.
func startIdleServer(t *testing.T, c *Collector, idle time.Duration) string {
	t.Helper()
	srv := NewServer(c)
	srv.IdleTimeout = idle
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return addr.String()
}

// TestServerDropsStalledConnection verifies that a client that connects and
// then goes silent is disconnected after the idle timeout instead of
// pinning its handler goroutine and connection slot forever.
func TestServerDropsStalledConnection(t *testing.T) {
	c, err := NewCollector(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	addr := startIdleServer(t, c, 100*time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One good report first: the timeout must reset per line, not cap the
	// connection's total lifetime.
	if err := json.NewEncoder(conn).Encode(Report{Participant: 0, Slot: 0, X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line != "ok\n" {
		t.Fatalf("ack = %q, want ok", line)
	}

	// Now stall. The server must close the connection, which surfaces to the
	// client as EOF (or a reset) well before the generous read deadline.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("expected the server to drop the stalled connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("client read deadline fired first: server never dropped the connection")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("drop took %v, want well under the client deadline", waited)
	}
}

// TestServerIdleTimeoutDisabled pins the opt-out: with IdleTimeout zero a
// silent connection stays open (bounded here by a short observation
// window, not forever, obviously).
func TestServerIdleTimeoutDisabled(t *testing.T) {
	c, err := NewCollector(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	addr := startIdleServer(t, c, 0)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("expected the client deadline to fire on a still-open connection, got %v", err)
	}
}

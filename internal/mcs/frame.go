package mcs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
)

// frame is the client side of the report-stream wire protocol: one JSON
// report per line out, one "ok" / "err <reason>" line back per report. It
// is the single home of that framing — Client, SendReports, and the
// examples all speak through it instead of hand-rolling encoders and
// scanners per call site.
type frame struct {
	w  *bufio.Writer
	sc *bufio.Scanner
}

// newFrame wraps a connection (or any duplex stream) in the line protocol.
func newFrame(conn io.ReadWriter) *frame {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &frame{w: bufio.NewWriter(conn), sc: sc}
}

// writeReport sends one report as a JSON line and flushes it to the wire.
func (f *frame) writeReport(r Report) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("mcs: encode: %w", err)
	}
	if _, err := f.w.Write(b); err != nil {
		return fmt.Errorf("mcs: send: %w", err)
	}
	if err := f.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("mcs: send: %w", err)
	}
	if err := f.w.Flush(); err != nil {
		return fmt.Errorf("mcs: send: %w", err)
	}
	return nil
}

// readAck reads one acknowledgement line. ok reports acceptance; reason
// carries the server's rejection text when ok is false. err is a transport
// failure (EOF, timeout), after which the stream is unusable.
func (f *frame) readAck() (ok bool, reason string, err error) {
	if !f.sc.Scan() {
		if serr := f.sc.Err(); serr != nil {
			return false, "", fmt.Errorf("mcs: read ack: %w", serr)
		}
		return false, "", io.ErrUnexpectedEOF
	}
	line := f.sc.Text()
	if line == "ok" {
		return true, "", nil
	}
	return false, strings.TrimPrefix(line, "err "), nil
}

// SendReports connects to a collector server and uploads the reports in
// order, one JSON line each, waiting for each acknowledgement. It returns
// the number of reports acknowledged "ok" and the first transport error
// encountered. Server-side rejections ("err ..." replies) are counted but
// do not abort the stream: a live fleet keeps reporting even when some
// uploads are rejected.
//
// SendReports is the one-shot path: a single connection, no retries. Fleets
// that must survive backend restarts use Client, which reconnects and
// retries under the same framing.
func SendReports(ctx context.Context, addr string, reports []Report) (acked int, err error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("mcs: dial: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("mcs: close: %w", cerr)
		}
	}()
	// Cancel blocking I/O when the context ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(immediatePast())
		case <-stop:
		}
	}()

	fr := newFrame(conn)
	for _, r := range reports {
		if err := ctx.Err(); err != nil {
			return acked, err
		}
		if err := fr.writeReport(r); err != nil {
			return acked, err
		}
		ok, _, err := fr.readAck()
		if err != nil {
			return acked, err
		}
		if ok {
			acked++
		}
	}
	return acked, nil
}

package mcs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"itscs/internal/mat"
)

func TestCollectorIngest(t *testing.T) {
	c, err := NewCollector(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := Report{Participant: 1, Slot: 2, X: 10, Y: 20, VX: 1, VY: -1}
	if err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}
	b := c.Snapshot()
	if b.SX.At(1, 2) != 10 || b.SY.At(1, 2) != 20 {
		t.Fatal("coordinates not slotted")
	}
	if b.VX.At(1, 2) != 1 || b.VY.At(1, 2) != -1 {
		t.Fatal("velocities not slotted")
	}
	if b.Existence.At(1, 2) != 1 || b.Existence.At(0, 0) != 0 {
		t.Fatal("existence mask wrong")
	}
	if b.Accepted != 1 || b.Rejected != 0 {
		t.Fatalf("counters = %d/%d", b.Accepted, b.Rejected)
	}
}

func TestCollectorRejectsDuplicates(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := Report{Participant: 0, Slot: 0, X: 5}
	if err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}
	r.X = 99
	err = c.Ingest(r)
	if !errors.Is(err, ErrDuplicateReport) {
		t.Fatalf("want ErrDuplicateReport, got %v", err)
	}
	// First write wins.
	if got := c.Snapshot().SX.At(0, 0); got != 5 {
		t.Fatalf("duplicate overwrote value: %v", got)
	}
	if c.Snapshot().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestCollectorRejectsOutOfRange(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Report{
		{Participant: -1, Slot: 0},
		{Participant: 2, Slot: 0},
		{Participant: 0, Slot: -1},
		{Participant: 0, Slot: 2},
	}
	for _, r := range bad {
		if err := c.Ingest(r); err == nil {
			t.Fatalf("report %+v should be rejected", r)
		}
	}
	if c.Snapshot().Rejected != len(bad) {
		t.Fatal("rejections not counted")
	}
}

func TestCollectorShapeValidation(t *testing.T) {
	if _, err := NewCollector(0, 5); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := NewCollector(5, 0); err == nil {
		t.Fatal("want shape error")
	}
}

func TestCollectorSnapshotIsolated(t *testing.T) {
	c, err := NewCollector(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := c.Snapshot()
	b.SX.Set(0, 0, 42)
	if c.Snapshot().SX.At(0, 0) != 0 {
		t.Fatal("snapshot must not share storage")
	}
}

func TestCollectorMissingRatio(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MissingRatio() != 1 {
		t.Fatalf("empty collector ratio = %v", c.MissingRatio())
	}
	_ = c.Ingest(Report{Participant: 0, Slot: 0})
	if c.MissingRatio() != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", c.MissingRatio())
	}
	p, s := c.Shape()
	if p != 2 || s != 2 {
		t.Fatalf("shape = %dx%d", p, s)
	}
}

func TestCollectorConcurrentIngest(t *testing.T) {
	const n, slots = 8, 50
	c, err := NewCollector(n, slots)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := 0; s < slots; s++ {
				_ = c.Ingest(Report{Participant: p, Slot: s, X: float64(p), Y: float64(s)})
			}
		}(p)
	}
	wg.Wait()
	b := c.Snapshot()
	if b.Accepted != n*slots {
		t.Fatalf("accepted %d of %d", b.Accepted, n*slots)
	}
	if b.Existence.Sum() != float64(n*slots) {
		t.Fatal("existence mask incomplete")
	}
}

func newTestMatrices(n, t int) (x, y, vx, vy *mat.Dense) {
	x = mat.New(n, t)
	y = mat.New(n, t)
	vx = mat.New(n, t)
	vy = mat.New(n, t)
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			x.Set(i, j, float64(100*i+j))
			y.Set(i, j, float64(200*i+j))
			vx.Set(i, j, 1)
			vy.Set(i, j, 2)
		}
	}
	return x, y, vx, vy
}

func TestStreamerFullReplay(t *testing.T) {
	x, y, vx, vy := newTestMatrices(3, 4)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{})
	if err != nil {
		t.Fatal(err)
	}
	reports := s.Reports()
	if len(reports) != 12 {
		t.Fatalf("got %d reports, want 12", len(reports))
	}
	// Slot-major ordering.
	if reports[0].Slot != 0 || reports[3].Slot != 1 {
		t.Fatal("reports must be ordered by slot")
	}
	if reports[1].X != 100 || reports[1].Y != 200 {
		t.Fatalf("report content wrong: %+v", reports[1])
	}
}

func TestStreamerLoss(t *testing.T) {
	x, y, vx, vy := newTestMatrices(10, 50)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{LossRatio: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := len(s.Reports())
	want := int(0.7 * 500)
	if got < want-50 || got > want+50 {
		t.Fatalf("survived %d of 500 reports, want ~%d", got, want)
	}
	// Deterministic under the same seed.
	s2, _ := NewStreamer(x, y, vx, vy, StreamPlan{LossRatio: 0.3, Seed: 1})
	if len(s2.Reports()) != got {
		t.Fatal("same seed must reproduce the loss pattern")
	}
}

func TestStreamerParticipantFilter(t *testing.T) {
	x, y, vx, vy := newTestMatrices(5, 4)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{Participants: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Reports() {
		if r.Participant != 1 && r.Participant != 3 {
			t.Fatalf("unexpected participant %d", r.Participant)
		}
	}
	if len(s.Reports()) != 8 {
		t.Fatalf("got %d reports, want 8", len(s.Reports()))
	}
}

func TestStreamerValidation(t *testing.T) {
	x, y, vx, vy := newTestMatrices(2, 2)
	if _, err := NewStreamer(x, y, vx, vy, StreamPlan{LossRatio: 1}); err == nil {
		t.Fatal("loss ratio 1 should be rejected")
	}
	if _, err := NewStreamer(x, y, vx, vy, StreamPlan{LossRatio: -0.1}); err == nil {
		t.Fatal("negative loss should be rejected")
	}
	if _, err := NewStreamer(x, y, vx, vy, StreamPlan{Participants: []int{5}}); err == nil {
		t.Fatal("out-of-range participant should be rejected")
	}
	if _, err := NewStreamer(x, mat.New(1, 1), vx, vy, StreamPlan{}); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
}

func TestStreamerStreamCancellation(t *testing.T) {
	x, y, vx, vy := newTestMatrices(10, 100)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Report)
	errc := make(chan error, 1)
	go func() { errc <- s.Stream(ctx, ch) }()
	<-ch // take one report, then cancel
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stream did not honour cancellation")
	}
}

func TestStreamerStreamDeliversAll(t *testing.T) {
	x, y, vx, vy := newTestMatrices(2, 3)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Report)
	errc := make(chan error, 1)
	go func() { errc <- s.Stream(context.Background(), ch) }()
	var got int
	for range ch {
		got++
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("received %d reports, want 6", got)
	}
}

// Package mcs implements the mobile-crowdsensing collection substrate the
// paper assumes: participants periodically upload their location to a
// centralized server, which assembles the slotted sensory matrices that
// I(TS,CS) consumes (paper §II-A).
//
// The package provides three pieces:
//
//   - Collector: a thread-safe in-memory sink that slots reports into
//     sensory and velocity matrices plus the existence mask;
//   - Server / SendReports: a line-delimited JSON-over-TCP transport for
//     running the collector as a network service;
//   - Streamer: a replay engine that feeds a recorded (or synthetic) fleet
//     through the transport slot by slot, with configurable report loss —
//     the mechanism behind the paper's missing values.
package mcs

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"itscs/internal/mat"
)

// Report is a single location upload from one participant for one slot.
type Report struct {
	// Fleet names the shard the report belongs to. The batch Collector
	// ignores it; the streaming pipeline routes on it. Empty selects the
	// receiver's default fleet for embedded sinks, but the network front
	// doors (itscs-serve, itscs-router) refuse it — see CheckIdentity.
	Fleet string `json:"fleet,omitempty"`
	// Participant is the uploader's dense identifier in [0, participants).
	Participant int `json:"participant"`
	// Slot is the time-slot index in [0, slots). Streaming sinks accept any
	// non-negative slot and treat it as an absolute position on the
	// timeline.
	Slot int `json:"slot"`
	// X, Y are the reported coordinates in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// VX, VY are the reported instantaneous velocity components in m/s.
	VX float64 `json:"vx"`
	VY float64 `json:"vy"`

	// IngestUnixMicro is the freshness stamp: the wall-clock instant
	// (microseconds since the Unix epoch) at which the report first crossed
	// a network front door. Zero means unstamped — a pre-upgrade frame or an
	// embedded sink that bypassed the doors. The doors stamp exactly once
	// (StampIngest is a no-op on a stamped report), so replaying a durable
	// record preserves the original instant and freshness accounting never
	// double-counts queueing or recovery time.
	IngestUnixMicro int64 `json:"ingest_us,omitempty"`
	// Origin records which door stamped the report (OriginDirect for the
	// itscs-serve ingest listener, OriginRouter for the itscs-router
	// forwarder); OriginUnknown when unstamped.
	Origin Origin `json:"origin,omitempty"`
	// TraceID links the report to its end-to-end trace (ingest →
	// wal-commit → window close → detect → publish). Zero means untraced.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Origin identifies the network front door that stamped a report.
type Origin uint8

// Origin values, in wire order. New doors append; never renumber.
const (
	OriginUnknown Origin = iota
	OriginDirect         // stamped by the itscs-serve ingest listener
	OriginRouter         // stamped by the itscs-router forwarder
)

// String names the origin for statuses and traces.
func (o Origin) String() string {
	switch o {
	case OriginDirect:
		return "direct"
	case OriginRouter:
		return "router"
	}
	return "unknown"
}

// Stamped reports whether the report carries an ingest freshness stamp.
func (r Report) Stamped() bool { return r.IngestUnixMicro != 0 }

// StampIngest fills the freshness stamp and origin, and assigns a trace ID
// if the report has none. It is a no-op on an already-stamped report, which
// is what keeps stamps exactly-once across door hops (router → serve) and
// across WAL replay.
func StampIngest(r *Report, now time.Time, origin Origin) {
	if r.IngestUnixMicro != 0 {
		return
	}
	r.IngestUnixMicro = now.UnixMicro()
	r.Origin = origin
	if r.TraceID == 0 {
		r.TraceID = NextTraceID()
	}
}

// Validate reports range errors against a collector of the given shape and
// rejects non-finite payloads (see CheckFinite).
func (r Report) Validate(participants, slots int) error {
	if r.Participant < 0 || r.Participant >= participants {
		return fmt.Errorf("mcs: participant %d outside [0,%d)", r.Participant, participants)
	}
	if r.Slot < 0 || r.Slot >= slots {
		return fmt.Errorf("mcs: slot %d outside [0,%d)", r.Slot, slots)
	}
	return r.CheckFinite()
}

// ErrNonFinite is returned for a report carrying NaN or ±Inf coordinates or
// velocities. Such values must never reach a sensory matrix: a single NaN
// poisons the median filter's window and the ASD objective, silently
// disabling detection for every participant sharing the subspace.
var ErrNonFinite = errors.New("mcs: non-finite report value")

// CheckFinite errors unless all four payload values are finite.
func (r Report) CheckFinite() error {
	for _, v := range [...]float64{r.X, r.Y, r.VX, r.VY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: participant %d slot %d (x=%v y=%v vx=%v vy=%v)",
				ErrNonFinite, r.Participant, r.Slot, r.X, r.Y, r.VX, r.VY)
		}
	}
	return nil
}

// ErrInvalidIdentity is returned for a report whose identity fields cannot
// route or be attributed: an empty fleet name or a negative participant id.
// Such rows would either land in an implicit default fleet (unroutable in a
// sharded cluster, where fleet names drive placement) or credit no
// participant at all (invisible to the reputation ledger). The network
// front doors — the itscs-serve ingest listener and the itscs-router
// forwarder — refuse them with a counted invalid_identity rejection;
// embedded single-fleet sinks may still choose a default fleet themselves.
var ErrInvalidIdentity = errors.New("mcs: invalid report identity")

// CheckIdentity errors unless the report names a routable, attributable
// identity: a non-empty fleet and a non-negative participant.
func (r Report) CheckIdentity() error {
	if r.Fleet == "" || r.Participant < 0 {
		return fmt.Errorf("%w: fleet %q participant %d", ErrInvalidIdentity, r.Fleet, r.Participant)
	}
	return nil
}

// ErrDuplicateReport is returned when a (participant, slot) cell already
// holds a report. The first write wins; later uploads are rejected so a
// malicious participant cannot overwrite accepted data.
var ErrDuplicateReport = errors.New("mcs: duplicate report")

// Ingestor consumes location reports. Collector implements it for one-shot
// batch collection; the streaming pipeline implements it for continuous
// sliding-window detection. Implementations must be safe for concurrent
// use — Server calls Ingest from one goroutine per connection.
type Ingestor interface {
	Ingest(Report) error
}

// Collector assembles reports into the matrices the framework consumes.
// It is safe for concurrent use.
type Collector struct {
	mu sync.Mutex

	participants, slots int
	sx, sy              *mat.Dense
	vx, vy              *mat.Dense
	existence           *mat.Dense
	accepted            int
	rejected            int
}

// NewCollector returns a collector for the given matrix shape.
func NewCollector(participants, slots int) (*Collector, error) {
	if participants <= 0 || slots <= 0 {
		return nil, fmt.Errorf("mcs: invalid collector shape %dx%d", participants, slots)
	}
	return &Collector{
		participants: participants,
		slots:        slots,
		sx:           mat.New(participants, slots),
		sy:           mat.New(participants, slots),
		vx:           mat.New(participants, slots),
		vy:           mat.New(participants, slots),
		existence:    mat.New(participants, slots),
	}, nil
}

// Ingest slots one report. It returns ErrDuplicateReport for an
// already-filled cell and a range error for an out-of-shape report;
// both are counted as rejected.
func (c *Collector) Ingest(r Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := r.Validate(c.participants, c.slots); err != nil {
		c.rejected++
		return err
	}
	if c.existence.At(r.Participant, r.Slot) != 0 {
		c.rejected++
		return fmt.Errorf("%w: participant %d slot %d", ErrDuplicateReport, r.Participant, r.Slot)
	}
	c.sx.Set(r.Participant, r.Slot, r.X)
	c.sy.Set(r.Participant, r.Slot, r.Y)
	c.vx.Set(r.Participant, r.Slot, r.VX)
	c.vy.Set(r.Participant, r.Slot, r.VY)
	c.existence.Set(r.Participant, r.Slot, 1)
	c.accepted++
	return nil
}

// Batch is a point-in-time copy of the collector state, shaped exactly
// like the framework's input matrices.
type Batch struct {
	SX, SY    *mat.Dense
	VX, VY    *mat.Dense
	Existence *mat.Dense
	Accepted  int
	Rejected  int
}

// Snapshot copies the current state. The copy shares no storage with the
// collector, so the caller may run the framework while ingestion continues.
func (c *Collector) Snapshot() *Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Batch{
		SX:        c.sx.Clone(),
		SY:        c.sy.Clone(),
		VX:        c.vx.Clone(),
		VY:        c.vy.Clone(),
		Existence: c.existence.Clone(),
		Accepted:  c.accepted,
		Rejected:  c.rejected,
	}
}

// Shape reports the collector's matrix dimensions.
func (c *Collector) Shape() (participants, slots int) {
	return c.participants, c.slots
}

// MissingRatio reports the fraction of cells still empty.
func (c *Collector) MissingRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.participants * c.slots
	return 1 - float64(c.accepted)/float64(total)
}

package mcs

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up a loopback server and returns its address and a
// cleanup-registered shutdown.
func startServer(t *testing.T, c *Collector) string {
	t.Helper()
	srv := NewServer(c)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return addr.String()
}

func TestServerIngestsReports(t *testing.T) {
	c, err := NewCollector(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	reports := []Report{
		{Participant: 0, Slot: 0, X: 1, Y: 2, VX: 0.5, VY: -0.5},
		{Participant: 1, Slot: 0, X: 3, Y: 4},
		{Participant: 0, Slot: 1, X: 5, Y: 6},
	}
	acked, err := SendReports(context.Background(), addr, reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked != 3 {
		t.Fatalf("acked %d of 3", acked)
	}
	b := c.Snapshot()
	if b.Accepted != 3 {
		t.Fatalf("collector accepted %d", b.Accepted)
	}
	if b.SX.At(0, 1) != 5 || b.SY.At(1, 0) != 4 {
		t.Fatal("report content lost in transport")
	}
}

func TestServerRejectsWithoutAborting(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	reports := []Report{
		{Participant: 0, Slot: 0, X: 1},
		{Participant: 0, Slot: 0, X: 2}, // duplicate
		{Participant: 9, Slot: 0},       // out of range
		{Participant: 1, Slot: 1, X: 3}, // fine
	}
	acked, err := SendReports(context.Background(), addr, reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked != 2 {
		t.Fatalf("acked %d, want 2", acked)
	}
	b := c.Snapshot()
	if b.Accepted != 2 || b.Rejected != 2 {
		t.Fatalf("counters = %d/%d", b.Accepted, b.Rejected)
	}
}

func TestServerHandlesBadJSON(t *testing.T) {
	c, err := NewCollector(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not json at all\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "err") {
		t.Fatalf("want error reply, got %q", reply)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	const clients = 8
	const slots = 20
	c, err := NewCollector(clients, slots)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for p := 0; p < clients; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			reports := make([]Report, slots)
			for s := 0; s < slots; s++ {
				reports[s] = Report{Participant: p, Slot: s, X: float64(p), Y: float64(s)}
			}
			if _, err := SendReports(context.Background(), addr, reports); err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Snapshot().Accepted; got != clients*slots {
		t.Fatalf("accepted %d of %d", got, clients*slots)
	}
}

func TestSendReportsContextCancel(t *testing.T) {
	c, err := NewCollector(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SendReports(ctx, addr, []Report{{Participant: 0, Slot: 0}}); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestSendReportsDialFailure(t *testing.T) {
	if _, err := SendReports(context.Background(), "127.0.0.1:1", nil); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	c, err := NewCollector(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	// Prove the accept loop is live with a real round-trip instead of
	// sleeping: an acknowledged upload means a handler ran.
	if _, err := SendReports(context.Background(), addr.String(), []Report{{Participant: 0, Slot: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Serve(); err == nil {
		t.Fatal("Serve before Listen should fail")
	}
}

func TestEndToEndStreamerThroughServer(t *testing.T) {
	// Full substrate integration: synthetic matrices → streamer with loss
	// → TCP transport → collector → batch whose missing ratio matches.
	const n, slots = 6, 30
	x, y, vx, vy := newTestMatrices(n, slots)
	s, err := NewStreamer(x, y, vx, vy, StreamPlan{LossRatio: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(n, slots)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, c)
	reports := s.Reports()
	acked, err := SendReports(context.Background(), addr, reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked != len(reports) {
		t.Fatalf("acked %d of %d", acked, len(reports))
	}
	b := c.Snapshot()
	wantMissing := 1 - float64(len(reports))/float64(n*slots)
	gotMissing := 1 - b.Existence.Sum()/float64(n*slots)
	if gotMissing != wantMissing {
		t.Fatalf("missing ratio %v, want %v", gotMissing, wantMissing)
	}
}

package metrics

import (
	"math"
	"testing"

	"itscs/internal/mat"
)

// TestRatesAreTotalFunctions pins the zero-denominator contract for every
// one-sided confusion: each rate resolves to its finite vacuous value,
// never NaN, so per-window rates can be averaged without filtering.
func TestRatesAreTotalFunctions(t *testing.T) {
	cases := []struct {
		name          string
		c             Confusion
		p, r, f1, fpr float64
	}{
		{"empty", Confusion{}, 1, 1, 1, 0},
		{"only TN", Confusion{TN: 5}, 1, 1, 1, 0},
		{"only TP", Confusion{TP: 4}, 1, 1, 1, 0},
		{"only FP", Confusion{FP: 3}, 0, 1, 0, 1},
		{"only FN", Confusion{FN: 2}, 1, 0, 0, 0},
	}
	for _, tc := range cases {
		got := [...]float64{tc.c.Precision(), tc.c.Recall(), tc.c.F1(), tc.c.FalsePositiveRate()}
		want := [...]float64{tc.p, tc.r, tc.f1, tc.fpr}
		names := [...]string{"precision", "recall", "F1", "FPR"}
		for i := range got {
			if math.IsNaN(got[i]) {
				t.Errorf("%s: %s is NaN", tc.name, names[i])
				continue
			}
			if got[i] != want[i] {
				t.Errorf("%s: %s = %v, want %v", tc.name, names[i], got[i], want[i])
			}
		}
	}
}

// TestCompareAllMissingMask checks an all-zero existence matrix: no cell
// carries data to judge, so the confusion is empty and the rates are the
// vacuous ones — not NaN — even though truth says every cell is faulty.
func TestCompareAllMissingMask(t *testing.T) {
	d := mat.Ones(3, 4)
	f := mat.Ones(3, 4)
	e := mat.New(3, 4)
	c, err := Compare(d, f, e)
	if err != nil {
		t.Fatal(err)
	}
	if c != (Confusion{}) {
		t.Fatalf("confusion over all-missing mask = %+v, want zero", c)
	}
	if c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 || c.FalsePositiveRate() != 0 {
		t.Errorf("vacuous rates = P %v R %v F1 %v FPR %v, want 1/1/1/0",
			c.Precision(), c.Recall(), c.F1(), c.FalsePositiveRate())
	}
}

// TestMAEAllMissingMask checks the opposite denominator: with every cell
// missing, every cell qualifies for Eq. (29).
func TestMAEAllMissingMask(t *testing.T) {
	x := mat.New(1, 2)
	y := mat.New(1, 2)
	xh, _ := mat.NewFromRows([][]float64{{3, 0}})
	yh, _ := mat.NewFromRows([][]float64{{4, 0}})
	e := mat.New(1, 2)
	d := mat.New(1, 2)
	got, err := MAE(x, y, xh, yh, e, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 { // errors 5 and 0 over both cells
		t.Fatalf("MAE = %v, want 2.5", got)
	}
}

// TestMAEZeroSizeMatrices pins the documented 0-not-NaN result for empty
// shapes, for both the masked and the every-cell variant.
func TestMAEZeroSizeMatrices(t *testing.T) {
	for _, z := range []*mat.Dense{mat.New(0, 3), mat.New(3, 0)} {
		if got, err := MAE(z, z, z, z, z, z); err != nil || got != 0 {
			t.Errorf("MAE on empty shape = %v, err %v, want 0, nil", got, err)
		}
		if got, err := MAEAll(z, z, z, z); err != nil || got != 0 {
			t.Errorf("MAEAll on empty shape = %v, err %v, want 0, nil", got, err)
		}
	}
}

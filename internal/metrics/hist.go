package metrics

import (
	"sync/atomic"
	"time"
)

// HistBuckets are the upper bounds (inclusive) of the latency histogram
// buckets in milliseconds, doubling from 1 ms; a final overflow bucket
// catches everything slower. Power-of-two bounds keep Observe cheap and the
// JSON rendering compact. Both the streaming pipeline (per-phase detection
// latency) and the WAL (fsync latency) instrument themselves with this one
// histogram, so /metrics exposes a single consistent bucket scheme.
var HistBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// The zero value is ready to use.
type Histogram struct {
	counts [len(HistBuckets) + 1]atomic.Uint64
	sumNS  atomic.Int64
	n      atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for ; i < len(HistBuckets); i++ {
		if ms <= HistBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a latency histogram,
// expvar-style JSON friendly.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// SumMS is the total observed latency in milliseconds; a Prometheus
	// histogram exposition needs the exact sum alongside the mean.
	SumMS float64 `json:"sum_ms"`
	// MeanMS is the arithmetic-mean latency in milliseconds.
	MeanMS float64 `json:"mean_ms"`
	// Buckets maps each bucket's upper bound in milliseconds to its count;
	// the overflow bucket is keyed -1. Empty buckets are omitted.
	Buckets map[int64]uint64 `json:"buckets"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make(map[int64]uint64)}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		bound := int64(-1)
		if i < len(HistBuckets) {
			bound = HistBuckets[i]
		}
		s.Buckets[bound] = c
	}
	s.Count = h.n.Load()
	s.SumMS = float64(h.sumNS.Load()) / 1e6
	if s.Count > 0 {
		s.MeanMS = s.SumMS / float64(s.Count)
	}
	return s
}

package metrics

import (
	"math"
	"testing"

	"itscs/internal/mat"
)

func TestCompareCounts(t *testing.T) {
	d, _ := mat.NewFromRows([][]float64{{1, 1, 0, 0}})
	f, _ := mat.NewFromRows([][]float64{{1, 0, 1, 0}})
	c, err := Compare(d, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Fatalf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1())
	}
	if c.FalsePositiveRate() != 0.5 {
		t.Fatalf("FPR = %v", c.FalsePositiveRate())
	}
}

func TestCompareSkipsMissing(t *testing.T) {
	d, _ := mat.NewFromRows([][]float64{{1, 1}})
	f, _ := mat.NewFromRows([][]float64{{0, 1}})
	e, _ := mat.NewFromRows([][]float64{{0, 1}})
	c, err := Compare(d, f, e)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 0 || c.FN != 0 || c.TN != 0 {
		t.Fatalf("missing cell not skipped: %+v", c)
	}
}

func TestCompareShapeErrors(t *testing.T) {
	d := mat.New(2, 2)
	if _, err := Compare(d, mat.New(1, 1), nil); err == nil {
		t.Fatal("want truth shape error")
	}
	if _, err := Compare(d, mat.New(2, 2), mat.New(1, 1)); err == nil {
		t.Fatal("want existence shape error")
	}
}

func TestDegenerateRates(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Fatal("empty confusion should report perfect rates")
	}
	if c.F1() != 1 {
		t.Fatalf("F1 of perfect rates = %v", c.F1())
	}
	if c.FalsePositiveRate() != 0 {
		t.Fatal("FPR with no clean cells must be 0")
	}
	zero := Confusion{FP: 1, FN: 1}
	if zero.F1() != 0 {
		t.Fatalf("all-wrong F1 = %v", zero.F1())
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	if c.String() == "" {
		t.Fatal("String must render")
	}
}

func TestMAE(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{{0, 0, 0}})
	y, _ := mat.NewFromRows([][]float64{{0, 0, 0}})
	xh, _ := mat.NewFromRows([][]float64{{3, 5, 100}})
	yh, _ := mat.NewFromRows([][]float64{{4, 12, 100}})
	e, _ := mat.NewFromRows([][]float64{{0, 1, 1}}) // cell 0 missing
	d, _ := mat.NewFromRows([][]float64{{0, 1, 0}}) // cell 1 detected
	// Cells 0 and 1 qualify: errors 5 and 13 → mean 9. Cell 2 excluded.
	got, err := MAE(x, y, xh, yh, e, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("MAE = %v, want 9", got)
	}
}

func TestMAENoQualifyingCells(t *testing.T) {
	m := mat.Ones(2, 2)
	e := mat.Ones(2, 2)
	d := mat.New(2, 2)
	got, err := MAE(m, m, m, m, e, d)
	if err != nil || got != 0 {
		t.Fatalf("MAE = %v, err = %v", got, err)
	}
}

func TestMAEShapeError(t *testing.T) {
	m := mat.Ones(2, 2)
	if _, err := MAE(m, mat.New(1, 1), m, m, m, m); err == nil {
		t.Fatal("want shape error")
	}
}

func TestMAEAll(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{{0, 0}})
	y, _ := mat.NewFromRows([][]float64{{0, 0}})
	xh, _ := mat.NewFromRows([][]float64{{3, 0}})
	yh, _ := mat.NewFromRows([][]float64{{4, 0}})
	got, err := MAEAll(x, y, xh, yh)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("MAEAll = %v, want 2.5", got)
	}
	if _, err := MAEAll(x, y, xh, mat.New(3, 3)); err == nil {
		t.Fatal("want shape error")
	}
	empty := mat.New(0, 0)
	if v, err := MAEAll(empty, empty, empty, empty); err != nil || v != 0 {
		t.Fatalf("empty MAEAll = %v, err %v", v, err)
	}
}

// Package metrics implements the evaluation measures of the paper's §IV-A:
// detection precision/recall against the ground-truth faulty matrix, and
// the reconstruction Mean Absolute Error of Eq. (29) over the cells that
// were missing or detected as faulty.
//
// Every derived measure is a total function: a zero denominator resolves
// to its vacuous value — precision and recall 1 (no chance to be wrong,
// none missed), false-positive rate 0 (no clean cell to misflag), MAE 0
// (no qualifying cell) — never NaN. Streaming consumers aggregate these
// rates across many windows, including degenerate ones (all-missing masks,
// fault-free windows), so they must be safe to average without filtering
// non-finite values.
package metrics

import (
	"fmt"
	"math"

	"itscs/internal/mat"
)

// Confusion counts detection outcomes against ground truth.
type Confusion struct {
	TP int // flagged and truly faulty
	FP int // flagged but clean
	FN int // missed faulty
	TN int // correctly left alone
}

// Compare tallies detection d against ground truth f, ignoring cells that
// were never observed (e == 0): an unobserved cell carries no data to judge.
// Pass e == nil to evaluate every cell.
func Compare(d, f, e *mat.Dense) (Confusion, error) {
	n, t := d.Dims()
	if fr, fc := f.Dims(); fr != n || fc != t {
		return Confusion{}, fmt.Errorf("metrics: truth is %dx%d, want %dx%d", fr, fc, n, t)
	}
	if e != nil {
		if er, ec := e.Dims(); er != n || ec != t {
			return Confusion{}, fmt.Errorf("metrics: existence is %dx%d, want %dx%d", er, ec, n, t)
		}
	}
	var c Confusion
	for i := 0; i < n; i++ {
		dRow := d.RowView(i)
		fRow := f.RowView(i)
		for j := 0; j < t; j++ {
			if e != nil && e.At(i, j) == 0 {
				continue
			}
			flagged := dRow[j] != 0
			faulty := fRow[j] != 0
			switch {
			case flagged && faulty:
				c.TP++
			case flagged && !faulty:
				c.FP++
			case !flagged && faulty:
				c.FN++
			default:
				c.TN++
			}
		}
	}
	return c, nil
}

// Precision returns TP / (TP + FP); 1 when nothing was flagged (no false
// alarms were raised).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN); 1 when there was nothing to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP / (FP + TN); 0 when no clean cells exist.
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the confusion counts with the derived rates.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d (P=%.4f R=%.4f)",
		c.TP, c.FP, c.FN, c.TN, c.Precision(), c.Recall())
}

// MAE computes the reconstruction Mean Absolute Error of Eq. (29): the mean
// Euclidean distance between truth and reconstruction over the cells that
// were missing (e == 0) or detected faulty (d == 1). It returns 0 when no
// cell qualifies.
func MAE(x, y, xHat, yHat, e, d *mat.Dense) (float64, error) {
	n, t := x.Dims()
	for name, m := range map[string]*mat.Dense{"Y": y, "X̂": xHat, "Ŷ": yHat, "E": e, "D": d} {
		if mr, mc := m.Dims(); mr != n || mc != t {
			return 0, fmt.Errorf("metrics: %s is %dx%d, want %dx%d", name, mr, mc, n, t)
		}
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if e.At(i, j) != 0 && d.At(i, j) == 0 {
				continue
			}
			ex := x.At(i, j) - xHat.At(i, j)
			ey := y.At(i, j) - yHat.At(i, j)
			sum += math.Hypot(ex, ey)
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}

// MAEAll computes the mean Euclidean error over every cell — a stricter
// variant used in diagnostics and ablations.
func MAEAll(x, y, xHat, yHat *mat.Dense) (float64, error) {
	n, t := x.Dims()
	for name, m := range map[string]*mat.Dense{"Y": y, "X̂": xHat, "Ŷ": yHat} {
		if mr, mc := m.Dims(); mr != n || mc != t {
			return 0, fmt.Errorf("metrics: %s is %dx%d, want %dx%d", name, mr, mc, n, t)
		}
	}
	if n*t == 0 {
		return 0, nil
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			sum += math.Hypot(x.At(i, j)-xHat.At(i, j), y.At(i, j)-yHat.At(i, j))
		}
	}
	return sum / float64(n*t), nil
}

package metrics

import (
	"sync/atomic"
	"time"
)

// AgeBuckets are the upper bounds (inclusive), in milliseconds, of the
// freshness histograms: report age at window close and ingest→result
// latency. Freshness spans a far wider range than phase latency — a report
// can legitimately sit most of a window length before its window closes,
// and recovery replay can surface hours-old records — so the scheme runs
// from 50 ms to 4 h rather than reusing HistBuckets.
var AgeBuckets = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 30_000,
	60_000, 120_000, 300_000, 600_000, 1_800_000,
	3_600_000, 7_200_000, 14_400_000,
}

// BoundedHistogram is a latency histogram over an explicit bucket scheme,
// safe for concurrent use. It complements Histogram (whose scheme is fixed
// at HistBuckets) for quantities with different dynamic range. A nil
// receiver ignores observations and snapshots empty, so optional
// instrumentation needs no call-site guards.
type BoundedHistogram struct {
	bounds []int64 // upper bounds in ms, ascending
	counts []atomic.Uint64
	sumNS  atomic.Int64
	n      atomic.Uint64
}

// NewBoundedHistogram returns a histogram over the given millisecond
// bounds, which must be ascending. The slice is retained, not copied.
func NewBoundedHistogram(boundsMS []int64) *BoundedHistogram {
	return &BoundedHistogram{bounds: boundsMS, counts: make([]atomic.Uint64, len(boundsMS)+1)}
}

// Observe records one duration. Negative durations (clock skew between the
// stamping door and this node) clamp to zero rather than poisoning the sum.
func (h *BoundedHistogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ms := d.Milliseconds()
	i := 0
	for ; i < len(h.bounds); i++ {
		if ms <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Snapshot copies the histogram's current state, in the same shape
// Histogram.Snapshot produces (overflow keyed -1).
func (h *BoundedHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make(map[int64]uint64)}
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		bound := int64(-1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets[bound] = c
	}
	s.Count = h.n.Load()
	s.SumMS = float64(h.sumNS.Load()) / 1e6
	if s.Count > 0 {
		s.MeanMS = s.SumMS / float64(s.Count)
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of a snapshot taken over
// the given bucket bounds, in milliseconds, by linear interpolation within
// the containing bucket — the same estimate Prometheus's histogram_quantile
// computes. An empty histogram yields 0; observations in the overflow
// bucket clamp to the top bound, so the estimate never extrapolates past
// the scheme.
func Quantile(s HistogramSnapshot, boundsMS []int64, q float64) float64 {
	if s.Count == 0 || len(boundsMS) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := float64(0)
	for _, bound := range boundsMS {
		c := s.Buckets[bound]
		if float64(cum+c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			return lower + frac*(float64(bound)-lower)
		}
		cum += c
		lower = float64(bound)
	}
	return float64(boundsMS[len(boundsMS)-1])
}

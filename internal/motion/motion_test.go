package motion

import (
	"math"
	"testing"
	"time"

	"itscs/internal/mat"
)

func TestAverageVelocity(t *testing.T) {
	v, _ := mat.NewFromRows([][]float64{
		{2, 4, 6},
		{1, 1, 1},
	})
	avg := AverageVelocity(v)
	want := [][]float64{
		{2, 3, 5},
		{1, 1, 1},
	}
	for i := range want {
		for j := range want[i] {
			if avg.At(i, j) != want[i][j] {
				t.Fatalf("avg(%d,%d) = %v, want %v", i, j, avg.At(i, j), want[i][j])
			}
		}
	}
}

func TestAverageVelocitySingleColumn(t *testing.T) {
	v, _ := mat.NewFromRows([][]float64{{7}})
	avg := AverageVelocity(v)
	if avg.At(0, 0) != 7 {
		t.Fatalf("single-column average = %v", avg.At(0, 0))
	}
}

func TestTemporalDiff(t *testing.T) {
	tt := TemporalDiff(4)
	if tt.Rows() != 4 || tt.Cols() != 4 {
		t.Fatalf("dims = %dx%d", tt.Rows(), tt.Cols())
	}
	// X·𝕋 must equal per-column differences.
	x, _ := mat.NewFromRows([][]float64{{1, 3, 6, 10}})
	prod, err := x.Mul(tt)
	if err != nil {
		t.Fatal(err)
	}
	// (X·T)(0,j) = x(j) − x(j+1)·(−1 shifted): with our T, column j gets
	// x(j) − x(j−1) for j>0 via superdiagonal −1 in column j from row j−1.
	want := []float64{1, 3 - 1, 6 - 3, 10 - 6}
	for j, w := range want {
		if math.Abs(prod.At(0, j)-w) > 1e-12 {
			t.Fatalf("(X·T)(0,%d) = %v, want %v", j, prod.At(0, j), w)
		}
	}
}

func TestTemporalDiffZeroForConstantRows(t *testing.T) {
	x := mat.Filled(3, 5, 42)
	prod, err := x.Mul(TemporalDiff(5))
	if err != nil {
		t.Fatal(err)
	}
	// All columns except the first must vanish for a constant signal.
	for i := 0; i < 3; i++ {
		for j := 1; j < 5; j++ {
			if prod.At(i, j) != 0 {
				t.Fatalf("difference of constant row not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestStability(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{
		{0, 10, 5},
		{1, 1, 4},
	})
	d := Stability(x)
	want := []float64{10, 5, 0, 3}
	if len(d) != len(want) {
		t.Fatalf("len = %d, want %d", len(d), len(want))
	}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("d[%d] = %v, want %v", i, d[i], w)
		}
	}
	if Stability(mat.New(3, 1)) != nil {
		t.Fatal("single-column matrix has no stability values")
	}
}

func TestVelocityStabilityExplainsMotion(t *testing.T) {
	// Positions move +30 m per slot with τ = 30 s and v = 1 m/s constant:
	// the velocity term should explain the motion exactly.
	x, _ := mat.NewFromRows([][]float64{{0, 30, 60, 90}})
	v := mat.Filled(1, 4, 1)
	avg := AverageVelocity(v)
	d, err := VelocityStability(x, avg, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, val := range d {
		if math.Abs(val) > 1e-9 {
			t.Fatalf("residual[%d] = %v, want 0", i, val)
		}
	}
}

func TestVelocityStabilityResidual(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{{0, 40}})
	v := mat.Filled(1, 2, 1) // explains 30 m of the 40 m move
	d, err := VelocityStability(x, AverageVelocity(v), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-10) > 1e-9 {
		t.Fatalf("residual = %v, want 10", d[0])
	}
}

func TestVelocityStabilityShapeError(t *testing.T) {
	x := mat.New(2, 3)
	v := mat.New(2, 2)
	if _, err := VelocityStability(x, v, time.Second); err == nil {
		t.Fatal("want shape error")
	}
}

func TestVelocityStabilityShortMatrix(t *testing.T) {
	d, err := VelocityStability(mat.New(2, 1), mat.New(2, 1), time.Second)
	if err != nil || d != nil {
		t.Fatalf("short matrix should yield nil, got %v, %v", d, err)
	}
}

// Package motion implements the velocity and temporal-stability primitives
// shared by the detection and reconstruction stages of I(TS,CS):
//
//   - the Average Velocity Matrix V̄ of paper Eq. (11),
//   - the temporal difference operator 𝕋 of Eq. (24),
//   - the temporal-stability measures Δ (Eq. 21) and velocity-improved
//     Δᵥ (Eq. 22) used in the Fig. 4(b) analysis.
package motion

import (
	"fmt"
	"math"
	"time"

	"itscs/internal/mat"
)

// AverageVelocity computes the Average Velocity Matrix V̄ from instantaneous
// velocities V per paper Eq. (11):
//
//	V̄(i,1) = v(i,1)
//	V̄(i,j) = (v(i,j−1) + v(i,j)) / 2   for j > 1
//
// V̄(i,j) estimates the mean velocity over the interval from slot j−1 to
// slot j (the paper's convention v(i,0) = v(i,1) makes the first column the
// instantaneous value).
func AverageVelocity(v *mat.Dense) *mat.Dense {
	n, t := v.Dims()
	out := mat.New(n, t)
	for i := 0; i < n; i++ {
		row := v.RowView(i)
		dst := out.RowView(i)
		if t > 0 {
			dst[0] = row[0]
		}
		for j := 1; j < t; j++ {
			dst[j] = (row[j-1] + row[j]) / 2
		}
	}
	return out
}

// TemporalDiff returns the t×t upper-bidiagonal difference operator 𝕋 of
// paper Eq. (24): ones on the diagonal and −1 on the superdiagonal, so that
// (X·𝕋)(i,j) = x(i,j) − x(i,j−1) for j > 1 and (X·𝕋)(i,1) = x(i,1).
func TemporalDiff(t int) *mat.Dense {
	m := mat.New(t, t)
	for i := 0; i < t; i++ {
		m.Set(i, i, 1)
		if i+1 < t {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

// Stability computes the temporal-stability values Δx(i,j) of Eq. (21) for
// j ≥ 1 (0-indexed: columns 1..t−1): |x(i,j) − x(i,j−1)| flattened row by
// row. It returns an empty slice for matrices with fewer than two columns.
func Stability(x *mat.Dense) []float64 {
	n, t := x.Dims()
	if t < 2 {
		return nil
	}
	out := make([]float64, 0, n*(t-1))
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := 1; j < t; j++ {
			out = append(out, math.Abs(row[j]-row[j-1]))
		}
	}
	return out
}

// VelocityStability computes the velocity-improved temporal-stability
// values Δᵥx(i,j) of Eq. (22): |x(i,j) − x(i,j−1) − V̄(i,j)·τ|, i.e. the
// part of the positional change the reported velocity fails to explain.
//
// Note the paper prints |x − x'| − V̄τ; taking the magnitude of the residual
// (as done here and in the original figure, where values are non-negative)
// is the meaningful quantity.
func VelocityStability(x, avgV *mat.Dense, tau time.Duration) ([]float64, error) {
	n, t := x.Dims()
	vn, vt := avgV.Dims()
	if vn != n || vt != t {
		return nil, fmt.Errorf("motion: velocity %dx%d does not match positions %dx%d", vn, vt, n, t)
	}
	if t < 2 {
		return nil, nil
	}
	sec := tau.Seconds()
	out := make([]float64, 0, n*(t-1))
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		vrow := avgV.RowView(i)
		for j := 1; j < t; j++ {
			out = append(out, math.Abs(row[j]-row[j-1]-vrow[j]*sec))
		}
	}
	return out, nil
}

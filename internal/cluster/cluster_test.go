package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/cluster/clustertest"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/sim"
)

// testConfig is a small deterministic engine shape shared by the backends.
func testConfig() pipeline.Config {
	return sim.EngineConfig(sim.Scenario{Seed: 1})
}

func startBackends(t *testing.T, n int) []*clustertest.Backend {
	t.Helper()
	backends := make([]*clustertest.Backend, n)
	for i := range backends {
		b, err := clustertest.Start(clustertest.Options{Config: testConfig()})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = b
		t.Cleanup(func() { _ = b.Close() })
	}
	return backends
}

func specs(backends []*clustertest.Backend) []cluster.Backend {
	out := make([]cluster.Backend, len(backends))
	for i, b := range backends {
		out[i] = b.Spec()
	}
	return out
}

// TestProberLifecycle drives admit → eject → readmit through /readyz
// transitions with explicit sweeps, no wall-clock waits.
func TestProberLifecycle(t *testing.T) {
	backends := startBackends(t, 2)
	backends[1].SetReady(false)

	var changes []string
	p := cluster.NewProber(specs(backends), cluster.ProberOptions{
		OnChange: func(b cluster.Backend, ready bool) {
			changes = append(changes, fmt.Sprintf("%s=%v", b.Name, ready))
		},
	})
	defer p.Close()
	ctx := context.Background()

	p.Sweep(ctx)
	if !p.Ready(backends[0].Spec().Name) || p.Ready(backends[1].Spec().Name) {
		t.Fatalf("after first sweep: ready=%v,%v, want true,false",
			p.Ready(backends[0].Spec().Name), p.Ready(backends[1].Spec().Name))
	}
	if p.ReadyCount() != 1 {
		t.Fatalf("ready count %d, want 1", p.ReadyCount())
	}

	// The unready backend finishes "recovery" and is admitted next sweep.
	backends[1].SetReady(true)
	p.Sweep(ctx)
	if p.ReadyCount() != 2 {
		t.Fatalf("ready count %d after recovery, want 2", p.ReadyCount())
	}

	// Kill backend 0: probes fail, the gate closes.
	if err := backends[0].Kill(); err != nil {
		t.Fatal(err)
	}
	p.Sweep(ctx)
	if p.Ready(backends[0].Spec().Name) {
		t.Fatal("killed backend still admitted after a sweep")
	}

	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	if snap[0].Ejections != 1 || snap[0].LastErr == "" {
		t.Errorf("killed backend status = %+v, want 1 ejection and an error", snap[0])
	}
	if snap[1].Readmissions != 0 {
		// First admission after StartUnready is not a readmission.
		t.Errorf("backend 1 readmissions = %d, want 0", snap[1].Readmissions)
	}
	want := []string{
		backends[0].Spec().Name + "=true",
		backends[1].Spec().Name + "=true",
		backends[0].Spec().Name + "=false",
	}
	if len(changes) != len(want) {
		t.Fatalf("changes = %v, want %v", changes, want)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("changes = %v, want %v", changes, want)
		}
	}
}

// TestForwarderRoutesByFleet checks the data plane: every report lands on
// exactly the ring-designated backend, and each fleet lives whole on one.
func TestForwarderRoutesByFleet(t *testing.T) {
	backends := startBackends(t, 3)
	ring := cluster.NewRing(64)
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{})
	defer fwd.Close()

	const fleets, perFleet = 12, 5
	for fi := 0; fi < fleets; fi++ {
		for s := 0; s < perFleet; s++ {
			r := mcs.Report{Fleet: fmt.Sprintf("fleet-%d", fi), Participant: 0, Slot: s, X: 1, Y: 1}
			if err := fwd.Ingest(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st := fwd.Stats()
	if st.Forwarded != fleets*perFleet || st.Unroutable != 0 {
		t.Fatalf("stats = %+v, want %d forwarded", st, fleets*perFleet)
	}
	total := uint64(0)
	for fi := 0; fi < fleets; fi++ {
		fleet := fmt.Sprintf("fleet-%d", fi)
		owner, ok := fwd.Owner(fleet)
		if !ok {
			t.Fatalf("no owner for %s", fleet)
		}
		hosts := 0
		for _, b := range backends {
			for _, got := range b.Engine().Fleets() {
				if got == fleet {
					hosts++
					if b.Spec().Name != owner {
						t.Errorf("fleet %s materialized on %s, ring owner %s",
							fleet, b.Spec().Name, owner)
					}
				}
			}
		}
		if hosts != 1 {
			t.Errorf("fleet %s lives on %d backends, want exactly 1", fleet, hosts)
		}
	}
	for _, b := range backends {
		total += b.Engine().Stats().Ingested
	}
	if total != fleets*perFleet {
		t.Fatalf("backends ingested %d reports, want %d", total, fleets*perFleet)
	}
	// Non-finite reports are refused at the router's door, counted.
	nan := mcs.Report{Fleet: "fleet-0", Participant: 0, Slot: 99, X: nanValue()}
	if err := fwd.Ingest(nan); err == nil {
		t.Fatal("non-finite report accepted")
	}
	if got := fwd.Stats().NonFinite; got != 1 {
		t.Fatalf("non_finite = %d, want 1", got)
	}
}

// TestForwarderUnroutableCounted: with the owner's gate closed, reports
// for its fleets are refused with ErrNoBackend and counted — never
// silently dropped, never remapped to another backend.
func TestForwarderUnroutableCounted(t *testing.T) {
	backends := startBackends(t, 2)
	ring := cluster.NewRing(64)
	ejected := map[string]bool{}
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{
		Ready: func(name string) bool { return !ejected[name] },
	})
	defer fwd.Close()

	owner, _ := fwd.Owner("doomed")
	ejected[owner] = true

	for s := 0; s < 4; s++ {
		err := fwd.Ingest(mcs.Report{Fleet: "doomed", Participant: 0, Slot: s, X: 1, Y: 1})
		if !errors.Is(err, cluster.ErrNoBackend) {
			t.Fatalf("ingest with ejected owner = %v, want ErrNoBackend", err)
		}
	}
	st := fwd.Stats()
	if st.Unroutable != 4 || st.Forwarded != 0 {
		t.Fatalf("stats = %+v, want 4 unroutable / 0 forwarded", st)
	}
	for _, b := range backends {
		if n := b.Engine().Stats().Ingested; n != 0 {
			t.Fatalf("backend %s ingested %d reports of an unroutable fleet", b.Spec().Name, n)
		}
	}

	// Gate reopens: the same fleet flows again, to the same owner.
	ejected[owner] = false
	if err := fwd.Ingest(mcs.Report{Fleet: "doomed", Participant: 0, Slot: 10, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	again, _ := fwd.Owner("doomed")
	if again != owner {
		t.Fatalf("owner moved %s -> %s across an eject/readmit", owner, again)
	}
}

// TestQueryPlane exercises the scatter-gather reads: owner-routed result
// proxying with status passthrough, fleet-list union, metrics aggregation.
func TestQueryPlane(t *testing.T) {
	backends := startBackends(t, 3)
	ring := cluster.NewRing(64)
	// Deep enough that no backend's send buffer can overflow (drop-oldest)
	// even if placement lands every fleet on one backend.
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{
		Client: mcs.ClientOptions{QueueDepth: 8192},
	})
	defer fwd.Close()

	sc := sim.Scenario{Seed: 7}
	fleets := []string{"alpha", "beta", "gamma", "delta"}
	totalReports := 0
	for _, fleet := range fleets {
		w, err := sim.BuildWorkload(fleet, sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range w.Reports {
			if err := fwd.Ingest(r); err != nil {
				t.Fatal(err)
			}
		}
		totalReports += len(w.Reports)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain every backend so each fleet has completed windows.
	for _, b := range backends {
		for _, fleet := range b.Engine().Fleets() {
			if err := b.Engine().Flush(fleet); err != nil {
				t.Fatal(err)
			}
		}
	}

	q := cluster.NewQuery(specs(backends), ring, nil, nil)

	list := q.Fleets(ctx)
	if len(list.Errors) != 0 {
		t.Fatalf("fleet list errors: %v", list.Errors)
	}
	if len(list.Fleets) != len(fleets) {
		t.Fatalf("fleet list = %v, want the %d streamed fleets", list.Fleets, len(fleets))
	}

	for _, fleet := range fleets {
		deadline := time.Now().Add(time.Minute)
		for {
			resp, err := q.Result(ctx, fleet)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status == 200 {
				owner, _ := fwd.Owner(fleet)
				if resp.Backend != owner {
					t.Fatalf("fleet %s answered by %s, owner is %s", fleet, resp.Backend, owner)
				}
				break
			}
			if resp.Status != 204 {
				t.Fatalf("result status %d for %s", resp.Status, fleet)
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet %s never produced a window result", fleet)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if resp, err := q.Result(ctx, "no-such-fleet"); err != nil || resp.Status != 404 {
		t.Fatalf("unknown fleet proxied as %v/%v, want 404", resp, err)
	}

	cm := q.Metrics(ctx)
	if len(cm.Backends) != 3 {
		t.Fatalf("metrics cover %d backends", len(cm.Backends))
	}
	for _, bm := range cm.Backends {
		if bm.Err != "" {
			t.Fatalf("backend %s metrics error: %s", bm.Backend, bm.Err)
		}
	}
	if cm.Aggregate.Ingested != uint64(totalReports) {
		t.Fatalf("aggregate ingested %d, want %d", cm.Aggregate.Ingested, totalReports)
	}
	if cm.Aggregate.Fleets != len(fleets) {
		t.Fatalf("aggregate fleets %d, want %d", cm.Aggregate.Fleets, len(fleets))
	}
	run := cm.Aggregate.PhaseLatency["run"]
	if run.Count != cm.Aggregate.WindowsProcessed || run.Count == 0 {
		t.Fatalf("aggregate run histogram count %d vs processed %d",
			run.Count, cm.Aggregate.WindowsProcessed)
	}
}

func nanValue() float64 {
	var zero float64
	return zero / zero
}

package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/cluster/clustertest"
	"itscs/internal/mcs"
	"itscs/internal/reputation"
	"itscs/internal/sim"
)

// startRepBackends boots n backends with a trust ledger wired into each
// engine, sharing the deterministic test engine shape.
func startRepBackends(t *testing.T, n int) []*clustertest.Backend {
	t.Helper()
	rep := reputation.DefaultConfig()
	backends := make([]*clustertest.Backend, n)
	for i := range backends {
		b, err := clustertest.Start(clustertest.Options{Config: testConfig(), Reputation: &rep})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = b
		t.Cleanup(func() { _ = b.Close() })
	}
	return backends
}

// waitQuiet blocks until every backend has pushed each closed window all
// the way through its worker — the point at which every ledger fold that
// will happen has happened.
func waitQuiet(t *testing.T, backends []*clustertest.Backend) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		quiet := true
		for _, b := range backends {
			st := b.Engine().Stats()
			if st.WindowsClosed != st.WindowsEmpty+st.WindowsDropped+st.WindowsProcessed+st.WindowsFailed {
				quiet = false
			}
		}
		if quiet {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("backends did not drain their window queues")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReputationScatterGatherParity pins the router's merged reputation
// view to the backends' own ledgers: because fleets shard whole, the
// scatter-gather union must equal the per-owner truth exactly — same fleet
// snapshots, same census, same counters — and the fleet- and
// participant-scoped proxies must answer from the ring owner.
func TestReputationScatterGatherParity(t *testing.T) {
	backends := startRepBackends(t, 3)
	ring := cluster.NewRing(64)
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{
		Client: mcs.ClientOptions{QueueDepth: 8192},
	})
	defer fwd.Close()

	fleets := make([]string, 5)
	offered := 0
	for i := range fleets {
		fleets[i] = fmt.Sprintf("rep-%d", i)
		w, err := sim.BuildWorkload(fleets[i], sim.Scenario{Seed: int64(500 + i)})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range w.Reports {
			offered++
			if err := fwd.Ingest(r); err != nil {
				t.Fatalf("ingest for %s: %v", r.Fleet, err)
			}
		}
	}
	// Reports without a routable identity are refused at the router's door —
	// an empty fleet would ring-hash somewhere arbitrary — and counted.
	for _, r := range []mcs.Report{
		{Fleet: "", Participant: 0, Slot: 0, X: 1, Y: 1},
		{Fleet: "rep-0", Participant: -1, Slot: 0, X: 1, Y: 1},
	} {
		offered++
		if err := fwd.Ingest(r); err == nil {
			t.Fatalf("invalid identity %+v forwarded", r)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	fst := fwd.Stats()
	if fst.InvalidIdentity != 2 {
		t.Fatalf("invalid_identity = %d, want 2", fst.InvalidIdentity)
	}
	if fst.Forwarded+fst.Unroutable+fst.NonFinite+fst.InvalidIdentity != uint64(offered) {
		t.Fatalf("conservation broken: %d+%d+%d+%d != %d offered",
			fst.Forwarded, fst.Unroutable, fst.NonFinite, fst.InvalidIdentity, offered)
	}

	// Drain: close every open window and let the workers fold them.
	for _, b := range backends {
		for _, fleet := range b.Engine().Fleets() {
			if err := b.Engine().Flush(fleet); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitQuiet(t, backends)

	// The per-owner truth: each fleet's snapshot from the ledger that owns it.
	want := map[string]reputation.FleetSnapshot{}
	var wantStats reputation.LedgerStats
	wantStates := map[string]int{}
	for _, b := range backends {
		snap := b.Ledger().Snapshot()
		for _, fs := range snap.Fleets {
			if _, dup := want[fs.Fleet]; dup {
				t.Fatalf("fleet %s present on two backends — sharding is broken", fs.Fleet)
			}
			want[fs.Fleet] = fs
		}
		wantStats.Fleets += snap.Stats.Fleets
		wantStats.Folded += snap.Stats.Folded
		wantStats.Skipped += snap.Stats.Skipped
		for state, n := range snap.Stats.States {
			wantStates[state] += n
		}
	}
	if wantStats.Folded == 0 {
		t.Fatal("no windows folded anywhere — the parity check would be vacuous")
	}

	q := cluster.NewQuery(specs(backends), ring, nil, nil)
	got := q.Reputation(ctx)
	if len(got.Errors) != 0 {
		t.Fatalf("scatter-gather errors: %v", got.Errors)
	}
	if len(got.Fleets) != len(want) {
		t.Fatalf("merged %d fleets, want %d", len(got.Fleets), len(want))
	}
	for _, fs := range got.Fleets {
		if !reflect.DeepEqual(fs, want[fs.Fleet]) {
			t.Errorf("merged fleet %s diverges from its owner's ledger:\n got %+v\nwant %+v",
				fs.Fleet, fs, want[fs.Fleet])
		}
	}
	if got.Stats.Fleets != wantStats.Fleets || got.Stats.Folded != wantStats.Folded ||
		got.Stats.Skipped != wantStats.Skipped {
		t.Errorf("merged stats = %+v, want fleets %d folded %d skipped %d",
			got.Stats, wantStats.Fleets, wantStats.Folded, wantStats.Skipped)
	}
	for state, n := range wantStates {
		if got.Stats.States[state] != n {
			t.Errorf("merged census %s = %d, want %d", state, got.Stats.States[state], n)
		}
	}

	// Fleet- and participant-scoped reads proxy to the ring owner and match
	// the owner's ledger byte for byte.
	for _, fleet := range fleets {
		owner, ok := fwd.Owner(fleet)
		if !ok {
			t.Fatalf("no owner for %s", fleet)
		}
		pr, err := q.ReputationFleet(ctx, fleet)
		if err != nil || pr.Status != http.StatusOK {
			t.Fatalf("ReputationFleet(%s): status %d err %v", fleet, pr.Status, err)
		}
		if pr.Backend != owner {
			t.Errorf("ReputationFleet(%s) answered by %s, want owner %s", fleet, pr.Backend, owner)
		}
		var fs reputation.FleetSnapshot
		if err := json.Unmarshal(pr.Body, &fs); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fs, want[fleet]) {
			t.Errorf("proxied fleet %s diverges from the owner's ledger", fleet)
		}
	}
	pr, err := q.ReputationParticipant(ctx, "rep-0", "0")
	if err != nil || pr.Status != http.StatusOK {
		t.Fatalf("ReputationParticipant: status %d err %v", pr.Status, err)
	}
	var ps reputation.ParticipantSnapshot
	if err := json.Unmarshal(pr.Body, &ps); err != nil {
		t.Fatal(err)
	}
	if ps.Participant != 0 || ps.Windows == 0 {
		t.Errorf("proxied participant snapshot = %+v", ps)
	}

	// Admission conservation holds summed across the cluster: every ingested
	// report was admitted clean or tagged, never dropped.
	var ingested, clean, tq, tp uint64
	for _, b := range backends {
		st := b.Engine().Stats()
		ingested += st.Ingested
		clean += st.AdmittedClean
		tq += st.TaggedQuarantined
		tp += st.TaggedProbation
	}
	if clean+tq+tp != ingested {
		t.Errorf("gate counters do not conserve: %d+%d+%d != %d ingested", clean, tq, tp, ingested)
	}
}

// TestChaosReputationLedgerRecovery is the reputation durability drill: a
// durable backend is killed mid-stream (no final checkpoint — its
// in-memory ledger dies with it), restarted on the same directory, and fed
// the whole stream again at-least-once. After a graceful close its ledger
// must be bit-identical to a never-crashed golden backend's: the
// checkpointed blob plus deterministic WAL-replay re-folds (with the seq
// frontier absorbing overlap) reconstruct every trust row exactly.
func TestChaosReputationLedgerRecovery(t *testing.T) {
	rep := reputation.DefaultConfig()
	sc := sim.Scenario{Seed: 42}
	w, err := sim.BuildWorkload("ledger", sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Golden: the same stream through an undamaged reputation backend.
	golden, err := clustertest.Start(clustertest.Options{
		Config: sim.EngineConfig(sc), Reputation: &rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := mcs.SendReports(ctx, golden.IngestAddr(), w.Reports); err != nil || acked != len(w.Reports) {
		t.Fatalf("golden acked %d of %d, err %v", acked, len(w.Reports), err)
	}
	if err := golden.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := golden.Ledger().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if golden.Ledger().Stats().Folded == 0 {
		t.Fatal("golden run folded nothing — the drill would be vacuous")
	}

	// Life 1: a third of the stream, a mid-stream checkpoint (the ledger
	// blob rides along), another third, then a kill — abrupt, no checkpoint.
	dir := t.TempDir()
	third := len(w.Reports) / 3
	b1, err := clustertest.Start(clustertest.Options{
		Config: sim.EngineConfig(sc), Reputation: &rep, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := mcs.SendReports(ctx, b1.IngestAddr(), w.Reports[:third]); err != nil || acked != third {
		t.Fatalf("life-1 phase-1 acked %d of %d, err %v", acked, third, err)
	}
	waitQuiet(t, []*clustertest.Backend{b1})
	if err := b1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if acked, err := mcs.SendReports(ctx, b1.IngestAddr(), w.Reports[third:2*third]); err != nil || acked != third {
		t.Fatalf("life-1 phase-2 acked %d of %d, err %v", acked, third, err)
	}
	if err := b1.Kill(); err != nil {
		t.Fatal(err)
	}

	// Life 2: recovery restores the checkpointed ledger and re-folds the
	// replayed tail; the client re-delivers the whole stream (at least once —
	// the engine's late/duplicate rejection nacks the overlap).
	b2, err := clustertest.Start(clustertest.Options{
		Config: sim.EngineConfig(sc), Reputation: &rep, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := mcs.SendReports(ctx, b2.IngestAddr(), w.Reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked < len(w.Reports)-2*third {
		t.Fatalf("life-2 acked %d, want at least the %d undelivered reports",
			acked, len(w.Reports)-2*third)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := b2.Ledger().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered ledger differs from golden:\nwant %d bytes\ngot  %d bytes", len(want), len(got))
	}

	// Life 3: the graceful close wrote a final checkpoint; a fresh start
	// restores the identical ledger without replaying anything.
	b3, err := clustertest.Start(clustertest.Options{
		Config: sim.EngineConfig(sc), Reputation: &rep, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := b3.Ledger().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, restored) {
		t.Fatal("ledger restored from the final checkpoint differs from golden")
	}
	if err := b3.Close(); err != nil {
		t.Fatal(err)
	}
}

package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"itscs/internal/fault"
	"itscs/internal/obs"
)

// ProbeFunc checks one backend's readiness; nil means ready.
type ProbeFunc func(ctx context.Context, b Backend) error

// HTTPReadyProbe probes GET /readyz on the backend's HTTP sidecar,
// treating any status but 200 as not ready. A recovering itscs-serve
// answers 503 there until its checkpoint restore and WAL replay finish, so
// the router withholds traffic the backend would only queue behind
// recovery. client nil uses a default with no timeout of its own — the
// prober's per-probe context supplies the deadline.
func HTTPReadyProbe(client *http.Client) ProbeFunc {
	if client == nil {
		client = &http.Client{}
	}
	return func(ctx context.Context, b Backend) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+b.HTTP+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("readyz status %d", resp.StatusCode)
		}
		return nil
	}
}

// ProberOptions parameterizes a Prober; zero values take defaults.
type ProberOptions struct {
	// Interval is the sweep cadence (default 2s); Timeout bounds each
	// individual probe (default 1s).
	Interval time.Duration
	Timeout  time.Duration
	// FailAfter consecutive probe failures eject a backend; RiseAfter
	// consecutive successes readmit it (both default 1: a dead TCP port
	// refuses instantly and a recovering backend answers 503 decisively, so
	// the gate follows the first honest answer).
	FailAfter int
	RiseAfter int
	// Clock supplies the sweep ticker (default wall clock); the fault
	// harness swaps in a virtual clock. Probe I/O deadlines always use wall
	// time.
	Clock fault.Clock
	// Probe checks one backend (default HTTPReadyProbe(nil)).
	Probe ProbeFunc
	// OnChange, if set, fires on every eject and readmit, after the gate
	// has moved. It runs on the sweep goroutine; keep it cheap.
	OnChange func(b Backend, ready bool)
	// Log receives eject/readmit events (nil discards).
	Log *slog.Logger
}

// BackendStatus is one backend's health as the prober sees it.
type BackendStatus struct {
	Backend Backend `json:"backend"`
	Ready   bool    `json:"ready"`
	// LastErr is the most recent probe failure ("" after a success).
	LastErr string `json:"last_err,omitempty"`
	// Probes counts sweeps that touched this backend; Ejections and
	// Readmissions count gate transitions.
	Probes       uint64 `json:"probes"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
}

// Prober sweeps every backend's readiness on a fixed cadence and maintains
// the traffic gate the Forwarder and Query consult. Backends start
// unready; Start's immediate first sweep admits the live ones before any
// traffic is routed, so a router pointed at a dead backend never forwards
// into the void.
type Prober struct {
	backends []Backend
	opt      ProberOptions

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool // set by Start before the goroutine exists

	mu    sync.Mutex
	state map[string]*probeState
}

type probeState struct {
	status   BackendStatus
	fails    int // consecutive failures
	oks      int // consecutive successes
	everseen bool
}

// NewProber builds a prober over the backend list. Call Start to begin
// sweeping, or Sweep directly for deterministic tests.
func NewProber(backends []Backend, opt ProberOptions) *Prober {
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = time.Second
	}
	if opt.FailAfter <= 0 {
		opt.FailAfter = 1
	}
	if opt.RiseAfter <= 0 {
		opt.RiseAfter = 1
	}
	if opt.Clock == nil {
		opt.Clock = fault.RealClock()
	}
	if opt.Probe == nil {
		opt.Probe = HTTPReadyProbe(nil)
	}
	if opt.Log == nil {
		opt.Log = obs.Discard()
	}
	p := &Prober{
		backends: backends,
		opt:      opt,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		state:    make(map[string]*probeState, len(backends)),
	}
	for _, b := range backends {
		p.state[b.Name] = &probeState{status: BackendStatus{Backend: b}}
	}
	return p
}

// Start launches the sweep loop: one immediate sweep, then one per
// interval until Close.
func (p *Prober) Start() {
	p.started = true
	go func() {
		defer close(p.done)
		p.Sweep(context.Background())
		t := p.opt.Clock.NewTicker(p.opt.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C():
				p.Sweep(context.Background())
			}
		}
	}()
}

// Close stops the sweep loop and waits for it. Safe to call without Start
// and idempotent.
func (p *Prober) Close() {
	p.once.Do(func() { close(p.stop) })
	if p.started {
		<-p.done
	}
}

// Sweep probes every backend once, sequentially, and moves the gates.
// Exported so tests can drive health transitions deterministically instead
// of waiting out probe intervals.
func (p *Prober) Sweep(ctx context.Context) {
	for _, b := range p.backends {
		pctx, cancel := context.WithTimeout(ctx, p.opt.Timeout)
		err := p.opt.Probe(pctx, b)
		cancel()
		p.record(b, err)
	}
}

// record applies one probe outcome to the backend's gate.
func (p *Prober) record(b Backend, err error) {
	p.mu.Lock()
	st := p.state[b.Name]
	st.status.Probes++
	var flipped, nowReady, readmit bool
	if err != nil {
		st.status.LastErr = err.Error()
		st.fails++
		st.oks = 0
		if st.status.Ready && st.fails >= p.opt.FailAfter {
			st.status.Ready = false
			st.status.Ejections++
			flipped, nowReady = true, false
		}
	} else {
		st.status.LastErr = ""
		st.oks++
		st.fails = 0
		if !st.status.Ready && st.oks >= p.opt.RiseAfter {
			st.status.Ready = true
			if st.everseen {
				st.status.Readmissions++
				readmit = true
			}
			flipped, nowReady = true, true
		}
		st.everseen = true
	}
	p.mu.Unlock()
	if !flipped {
		return
	}
	switch {
	case readmit:
		p.opt.Log.Info("backend readmitted", "backend", b.Name, "http", b.HTTP)
	case nowReady:
		p.opt.Log.Info("backend admitted", "backend", b.Name, "http", b.HTTP)
	default:
		p.opt.Log.Warn("backend ejected", "backend", b.Name, "http", b.HTTP, "err", err)
	}
	if p.opt.OnChange != nil {
		p.opt.OnChange(b, nowReady)
	}
}

// Ready reports whether the named backend currently passes probes. Unknown
// names are never ready.
func (p *Prober) Ready(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[name]
	return st != nil && st.status.Ready
}

// ReadyCount returns how many backends are currently admitted.
func (p *Prober) ReadyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.state {
		if st.status.Ready {
			n++
		}
	}
	return n
}

// Snapshot returns every backend's status in the configured order.
func (p *Prober) Snapshot() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackendStatus, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, p.state[b.Name].status)
	}
	return out
}

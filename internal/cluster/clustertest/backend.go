// Package clustertest runs miniature itscs-serve backends in-process for
// cluster tests: the real pipeline engine behind the real mcs TCP ingest
// and an HTTP sidecar with the daemon's read surface (/healthz, /readyz,
// /results, /results/{fleet}, /metrics, /reputation...). Tests get the
// daemon's observable contract — including a gateable /readyz — without
// forking binaries, and can kill a backend abruptly or restart it on the
// same addresses. With DataDir set the backend is durable the way the
// daemon is: acked reports go through the WAL, Checkpoint persists shard
// state plus the reputation ledger, and Start recovers both before the
// listeners open.
package clustertest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"itscs/internal/cluster"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/wal"
)

// Options shapes one backend.
type Options struct {
	// Config is the pipeline engine configuration (required).
	Config pipeline.Config
	// IngestAddr and HTTPAddr default to 127.0.0.1:0; restarts pass the
	// previously bound addresses to come back where the router expects.
	IngestAddr string
	HTTPAddr   string
	// StartUnready leaves /readyz at 503 until SetReady(true), modelling a
	// backend still in startup recovery.
	StartUnready bool
	// Reputation, when non-nil, wires a trust ledger into the engine as the
	// admission gate and window-fold observer, exposed under /reputation.
	Reputation *reputation.Config
	// DataDir, when non-empty, makes the backend durable: acked reports are
	// WAL-framed, Checkpoint/Close persist state, and Start recovers it.
	DataDir string
	// WAL overrides the log options when durable; nil uses DefaultOptions
	// with SyncAlways, so a Kill loses nothing that was acked.
	WAL *wal.Options
}

// Backend is one in-process mini itscs-serve.
type Backend struct {
	engine *pipeline.Engine
	ledger *reputation.Ledger
	log    *wal.Log
	dir    string
	ingest *mcs.Server
	http   *http.Server
	httpLn net.Listener

	ingestAddr net.Addr
	httpAddr   net.Addr
	ready      atomic.Bool

	mu     sync.Mutex
	closed bool
	serve  sync.WaitGroup
}

// Start boots a backend: engine, TCP ingest, HTTP sidecar. A durable
// backend first recovers the newest checkpoint (shards and ledger) and
// replays the log tail, exactly like the daemon, before listening.
func Start(opt Options) (*Backend, error) {
	if opt.IngestAddr == "" {
		opt.IngestAddr = "127.0.0.1:0"
	}
	if opt.HTTPAddr == "" {
		opt.HTTPAddr = "127.0.0.1:0"
	}
	cfg := opt.Config
	b := &Backend{dir: opt.DataDir}
	if opt.Reputation != nil {
		ledger, err := reputation.New(*opt.Reputation)
		if err != nil {
			return nil, err
		}
		b.ledger = ledger
		cfg.Gate = ledger
		cfg.OnResult = ledger.Fold
	}
	if opt.DataDir != "" {
		wopt := wal.DefaultOptions()
		wopt.Sync = wal.SyncAlways
		if opt.WAL != nil {
			wopt = *opt.WAL
		}
		log, err := wal.Open(opt.DataDir, wopt)
		if err != nil {
			return nil, err
		}
		b.log = log
		cfg.Log = log
	}
	engine, err := pipeline.New(cfg)
	if err != nil {
		if b.log != nil {
			_ = b.log.Close()
		}
		return nil, err
	}
	b.engine = engine
	if b.log != nil {
		if err := b.recover(); err != nil {
			engine.Abort()
			_ = b.log.Close()
			return nil, err
		}
	}
	b.ingest = mcs.NewServer(engine)
	b.ready.Store(!opt.StartUnready)
	if b.ingestAddr, err = b.ingest.Listen(opt.IngestAddr); err != nil {
		engine.Close()
		if b.log != nil {
			_ = b.log.Close()
		}
		return nil, err
	}
	if b.httpLn, err = net.Listen("tcp", opt.HTTPAddr); err != nil {
		_ = b.ingest.Close()
		engine.Close()
		if b.log != nil {
			_ = b.log.Close()
		}
		return nil, fmt.Errorf("clustertest: http listen: %w", err)
	}
	b.httpAddr = b.httpLn.Addr()
	b.http = &http.Server{Handler: b.mux()}
	b.serve.Add(2)
	go func() {
		defer b.serve.Done()
		_ = b.ingest.Serve()
	}()
	go func() {
		defer b.serve.Done()
		_ = b.http.Serve(b.httpLn)
	}()
	return b, nil
}

// recover restores the newest checkpoint into the engine and ledger and
// replays the log tail, mirroring the daemon's startup.
func (b *Backend) recover() error {
	var fromIndex uint64
	ck, _, err := wal.LatestCheckpoint(b.dir)
	switch {
	case err == nil:
		if rerr := b.engine.Restore(ck); rerr != nil {
			return fmt.Errorf("clustertest: restore checkpoint: %w", rerr)
		}
		if b.ledger != nil {
			if rerr := b.ledger.Restore(ck.Reputation); rerr != nil {
				return fmt.Errorf("clustertest: restore ledger: %w", rerr)
			}
		}
		fromIndex = ck.LogIndex
	case errors.Is(err, wal.ErrNoCheckpoint):
		if b.ledger != nil {
			if rerr := b.ledger.Restore(nil); rerr != nil {
				return rerr
			}
		}
	default:
		return err
	}
	_, err = b.log.Replay(fromIndex, func(_ uint64, r mcs.Report) error {
		_ = b.engine.Replay(r) // rejects (late, duplicate) are expected on overlap
		return nil
	})
	return err
}

// Checkpoint persists the engine's shard state plus the ledger blob and
// compacts the log behind it. Only valid on a durable backend.
func (b *Backend) Checkpoint() error {
	if b.log == nil {
		return errors.New("clustertest: backend is not durable")
	}
	ck, err := b.engine.Checkpoint()
	if err != nil {
		return err
	}
	if b.ledger != nil {
		if ck.Reputation, err = b.ledger.MarshalBinary(); err != nil {
			return err
		}
	}
	if _, err := wal.WriteCheckpoint(b.dir, ck); err != nil {
		return err
	}
	if _, err := wal.PruneCheckpoints(b.dir, 2); err != nil {
		return err
	}
	_, err = b.log.Compact(ck.LogIndex)
	return err
}

// Engine exposes the backend's pipeline engine for direct assertions.
func (b *Backend) Engine() *pipeline.Engine { return b.engine }

// Ledger exposes the backend's trust ledger (nil unless Options.Reputation
// was set).
func (b *Backend) Ledger() *reputation.Ledger { return b.ledger }

// IngestAddr and HTTPAddr return the bound listener addresses.
func (b *Backend) IngestAddr() string { return b.ingestAddr.String() }
func (b *Backend) HTTPAddr() string   { return b.httpAddr.String() }

// Spec describes the backend the way the router's -backends flag would.
func (b *Backend) Spec() cluster.Backend {
	return cluster.Backend{Name: b.IngestAddr(), Ingest: b.IngestAddr(), HTTP: b.HTTPAddr()}
}

// SetReady moves /readyz between 200 and 503.
func (b *Backend) SetReady(ready bool) { b.ready.Store(ready) }

// Close shuts the backend down gracefully: the transport first so no
// report arrives after the engine stops, then the engine (draining every
// open window through detection). A durable backend writes a final
// checkpoint so a restart replays nothing.
func (b *Backend) Close() error { return b.stop(true) }

// Kill shuts the backend down abruptly — listeners torn down, engine
// aborted with queued windows discarded, no final checkpoint — the
// observable shape of a crashed process. Under SyncAlways everything acked
// is already on disk, so a restart recovers exactly the acked prefix.
func (b *Backend) Kill() error { return b.stop(false) }

func (b *Backend) stop(graceful bool) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.ingest.Close()
	if herr := b.http.Close(); err == nil && !errors.Is(herr, http.ErrServerClosed) {
		err = herr
	}
	if graceful {
		b.engine.Close()
		if b.log != nil {
			if ckErr := b.Checkpoint(); err == nil {
				err = ckErr
			}
		}
	} else {
		b.engine.Abort()
	}
	if b.log != nil {
		if lerr := b.log.Close(); err == nil {
			err = lerr
		}
	}
	b.serve.Wait()
	return err
}

func (b *Backend) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !b.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"fleets": b.engine.Fleets()})
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		res, err := b.engine.Latest(r.PathValue("fleet"))
		switch {
		case errors.Is(err, pipeline.ErrNoResult):
			w.WriteHeader(http.StatusNoContent)
		case err != nil:
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		default:
			writeJSON(w, http.StatusOK, res)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.engine.Stats())
	})
	mux.HandleFunc("GET /trace/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		fleet := r.PathValue("fleet")
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := obs.ParseTraceID(idStr)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
				return
			}
			tr, ok := b.engine.FindTrace(fleet, id)
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such trace"})
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"fleet": fleet, "traces": []obs.Trace{tr}})
			return
		}
		traces, err := b.engine.Traces(fleet)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		spans, _ := b.engine.Trace(fleet)
		writeJSON(w, http.StatusOK, map[string]any{"fleet": fleet, "traces": traces, "spans": spans})
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		st := b.engine.Stats()
		freshness := map[string]any{
			"age_at_close":     pipeline.SummarizeFreshness(st.AgeAtClose),
			"ingest_to_result": pipeline.SummarizeFreshness(st.IngestToResult),
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"ready":     b.ready.Load(),
			"engine":    st,
			"freshness": freshness,
		})
	})
	mux.HandleFunc("GET /reputation", func(w http.ResponseWriter, r *http.Request) {
		if b.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		writeJSON(w, http.StatusOK, b.ledger.Snapshot())
	})
	mux.HandleFunc("GET /reputation/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		if b.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		fs, ok := b.ledger.Fleet(r.PathValue("fleet"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown fleet: " + r.PathValue("fleet")})
			return
		}
		writeJSON(w, http.StatusOK, fs)
	})
	mux.HandleFunc("GET /reputation/{fleet}/{participant}", func(w http.ResponseWriter, r *http.Request) {
		if b.ledger == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "reputation ledger disabled"})
			return
		}
		part, err := strconv.Atoi(r.PathValue("participant"))
		if err != nil || part < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "participant must be a non-negative integer"})
			return
		}
		ps, ok := b.ledger.Participant(r.PathValue("fleet"), part)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "no trust row"})
			return
		}
		writeJSON(w, http.StatusOK, ps)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

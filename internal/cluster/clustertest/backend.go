// Package clustertest runs miniature itscs-serve backends in-process for
// cluster tests: the real pipeline engine behind the real mcs TCP ingest
// and an HTTP sidecar with the daemon's read surface (/healthz, /readyz,
// /results, /results/{fleet}, /metrics). Tests get the daemon's observable
// contract — including a gateable /readyz — without forking binaries, and
// can kill a backend abruptly or restart it on the same addresses.
package clustertest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"itscs/internal/cluster"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
)

// Options shapes one backend.
type Options struct {
	// Config is the pipeline engine configuration (required).
	Config pipeline.Config
	// IngestAddr and HTTPAddr default to 127.0.0.1:0; restarts pass the
	// previously bound addresses to come back where the router expects.
	IngestAddr string
	HTTPAddr   string
	// StartUnready leaves /readyz at 503 until SetReady(true), modelling a
	// backend still in startup recovery.
	StartUnready bool
}

// Backend is one in-process mini itscs-serve.
type Backend struct {
	engine *pipeline.Engine
	ingest *mcs.Server
	http   *http.Server
	httpLn net.Listener

	ingestAddr net.Addr
	httpAddr   net.Addr
	ready      atomic.Bool

	mu     sync.Mutex
	closed bool
	serve  sync.WaitGroup
}

// Start boots a backend: engine, TCP ingest, HTTP sidecar.
func Start(opt Options) (*Backend, error) {
	if opt.IngestAddr == "" {
		opt.IngestAddr = "127.0.0.1:0"
	}
	if opt.HTTPAddr == "" {
		opt.HTTPAddr = "127.0.0.1:0"
	}
	engine, err := pipeline.New(opt.Config)
	if err != nil {
		return nil, err
	}
	b := &Backend{engine: engine, ingest: mcs.NewServer(engine)}
	b.ready.Store(!opt.StartUnready)
	if b.ingestAddr, err = b.ingest.Listen(opt.IngestAddr); err != nil {
		engine.Close()
		return nil, err
	}
	if b.httpLn, err = net.Listen("tcp", opt.HTTPAddr); err != nil {
		_ = b.ingest.Close()
		engine.Close()
		return nil, fmt.Errorf("clustertest: http listen: %w", err)
	}
	b.httpAddr = b.httpLn.Addr()
	b.http = &http.Server{Handler: b.mux()}
	b.serve.Add(2)
	go func() {
		defer b.serve.Done()
		_ = b.ingest.Serve()
	}()
	go func() {
		defer b.serve.Done()
		_ = b.http.Serve(b.httpLn)
	}()
	return b, nil
}

// Engine exposes the backend's pipeline engine for direct assertions.
func (b *Backend) Engine() *pipeline.Engine { return b.engine }

// IngestAddr and HTTPAddr return the bound listener addresses.
func (b *Backend) IngestAddr() string { return b.ingestAddr.String() }
func (b *Backend) HTTPAddr() string   { return b.httpAddr.String() }

// Spec describes the backend the way the router's -backends flag would.
func (b *Backend) Spec() cluster.Backend {
	return cluster.Backend{Name: b.IngestAddr(), Ingest: b.IngestAddr(), HTTP: b.HTTPAddr()}
}

// SetReady moves /readyz between 200 and 503.
func (b *Backend) SetReady(ready bool) { b.ready.Store(ready) }

// Close shuts the backend down gracefully: the transport first so no
// report arrives after the engine stops, then the engine (draining every
// open window through detection).
func (b *Backend) Close() error { return b.stop(true) }

// Kill shuts the backend down abruptly — listeners torn down, engine
// aborted with queued windows discarded — the observable shape of a
// crashed process.
func (b *Backend) Kill() error { return b.stop(false) }

func (b *Backend) stop(graceful bool) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.ingest.Close()
	if herr := b.http.Close(); err == nil && !errors.Is(herr, http.ErrServerClosed) {
		err = herr
	}
	if graceful {
		b.engine.Close()
	} else {
		b.engine.Abort()
	}
	b.serve.Wait()
	return err
}

func (b *Backend) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !b.ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"fleets": b.engine.Fleets()})
	})
	mux.HandleFunc("GET /results/{fleet}", func(w http.ResponseWriter, r *http.Request) {
		res, err := b.engine.Latest(r.PathValue("fleet"))
		switch {
		case errors.Is(err, pipeline.ErrNoResult):
			w.WriteHeader(http.StatusNoContent)
		case err != nil:
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		default:
			writeJSON(w, http.StatusOK, res)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.engine.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

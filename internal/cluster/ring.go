package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVnodes is the virtual-node count per member when NewRing is given
// zero. 64 points per member keeps the load spread within a few percent of
// uniform for small clusters while the ring stays tiny (a few KB).
const DefaultVnodes = 64

// lookupProbes is the number of hash probes Owner tries per key, keeping
// the member whose ring point follows a probe most closely. Single-probe
// lookup inherits the exponential arc-length variance of the point
// placement (relative load spread ~1/sqrt(vnodes), ~12% at 64 — outside
// the 15%-of-uniform bound the cluster tests demand); multi-probe lookup
// biases keys toward short arcs, flattening the spread to a few percent at
// the same point count.
const lookupProbes = 16

// Ring is a consistent-hash ring mapping fleet IDs to member names. Each
// member contributes vnodes points placed by a deterministic FNV-based
// hash, so the same member list always produces the same placement — a
// router restart, or a second router in front of the same backends, routes
// every fleet identically. Adding or removing one member moves only fleets
// to or from that member (~1/N of the keyspace); everything else stays
// put, which is what keeps per-fleet window state pinned through topology
// edits. (Removing points only lengthens probe distances, so a key whose
// winning point survives keeps it; adding points only shortens them, so a
// key moves only when the new member's point wins.)
//
// All methods are safe for concurrent use; lookups take a read lock only.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]bool
	points  []ringPoint // sorted by (hash, member)
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing creates an empty ring with the given virtual-node count per
// member (DefaultVnodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(member, i), member: member})
	}
	sortPoints(r.points)
}

// Remove deletes a member and its points; removing an absent member is a
// no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members lists the current members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.members))
	for name := range r.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Owner maps a fleet ID to the member owning it. Each of lookupProbes
// derived hashes finds its clockwise-next ring point; the point closest to
// its probe wins, ties going to the earliest probe so placement is a pure
// function of the member set. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	base := keyHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	bestDist := ^uint64(0)
	for j := 0; j < lookupProbes; j++ {
		h := mix64(base + uint64(j)*0x9e3779b97f4a7c15)
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
		if i == len(r.points) {
			i = 0
		}
		// Unsigned subtraction wraps, giving the clockwise distance even
		// across the top of the ring.
		if d := r.points[i].hash - h; d < bestDist {
			bestDist = d
			member = r.points[i].member
		}
	}
	return member, true
}

// sortPoints orders the ring by hash, breaking the (astronomically rare)
// hash tie by member name so placement stays deterministic regardless of
// insertion order.
func sortPoints(points []ringPoint) {
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].member < points[j].member
	})
}

// keyHash places a fleet ID on the ring: FNV-64a for byte mixing, then a
// splitmix64-style finalizer. Raw FNV of short similar strings (fleet-1,
// fleet-2, ...) leaves the low bits correlated, which clusters the ring
// points; the finalizer's avalanche spreads them uniformly, which is what
// the 15%-of-uniform balance bound in the tests depends on.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// vnodeHash places virtual node i of a member.
func vnodeHash(member string, i int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(i)))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

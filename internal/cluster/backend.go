// Package cluster shards the streaming detection service across multiple
// itscs-serve backends. Fleets are the unit of placement: every window of a
// fleet is cut from that fleet's own stream, so the DETECT→CORRECT→CHECK
// loop never mixes state across fleets and a fleet can live wholly on one
// backend with results identical to a single-node run.
//
// The pieces compose into the itscs-router binary: a consistent-hash Ring
// maps fleet IDs to backends, a Forwarder streams each report to its
// owner's mcs ingest port through a reconnecting mcs.Client, a Prober
// watches every backend's /readyz and gates traffic on the result, and a
// Query fans HTTP reads out — /results/{fleet} to the owner,
// /metrics to everyone with the answers merged.
//
// Ring membership is static (the operator's backend list); health is a
// traffic gate, not a membership change. Ejecting a dead backend does NOT
// remap its fleets elsewhere — their window state (ring buffers, warm
// factors, WAL) lives only on the owner, and moving mid-stream would split
// a fleet's matrices across two engines. Reports for an ejected owner are
// refused and counted instead, and flow again the moment the owner's
// /readyz recovers.
package cluster

import (
	"fmt"
	"strings"
)

// Backend identifies one itscs-serve instance: its mcs report ingest
// address and its HTTP sidecar address. Name is the stable identity used
// for ring placement and health bookkeeping; ParseBackends uses the ingest
// address, which is unique per backend by construction.
type Backend struct {
	Name   string `json:"name"`
	Ingest string `json:"ingest"`
	HTTP   string `json:"http"`
}

// ParseBackends parses the router's -backends flag: a comma-separated list
// of ingest=http address pairs, e.g.
//
//	10.0.0.1:7070=10.0.0.1:8080,10.0.0.2:7070=10.0.0.2:8080
func ParseBackends(s string) ([]Backend, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty backend list")
	}
	seen := make(map[string]bool)
	var backends []Backend
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ingest, httpAddr, ok := strings.Cut(part, "=")
		ingest, httpAddr = strings.TrimSpace(ingest), strings.TrimSpace(httpAddr)
		if !ok || ingest == "" || httpAddr == "" {
			return nil, fmt.Errorf("cluster: backend %q not of the form ingest=http", part)
		}
		if seen[ingest] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", ingest)
		}
		seen[ingest] = true
		backends = append(backends, Backend{Name: ingest, Ingest: ingest, HTTP: httpAddr})
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: empty backend list")
	}
	return backends, nil
}

package cluster

import (
	"fmt"
	"testing"
)

// fleetIDs generates n synthetic fleet identifiers shaped like production
// ones: short, sequential, highly similar — the adversarial case for a weak
// placement hash.
func fleetIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("fleet-%04d", i)
	}
	return ids
}

func ringWith(vnodes int, members ...string) *Ring {
	r := NewRing(vnodes)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func ownerCounts(t *testing.T, r *Ring, ids []string) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	for _, id := range ids {
		owner, ok := r.Owner(id)
		if !ok {
			t.Fatalf("no owner for %q", id)
		}
		counts[owner]++
	}
	return counts
}

// TestRingBalance is the distribution satellite: across 1k synthetic fleet
// IDs every backend's share stays within 15% of uniform at >= 64 vnodes.
func TestRingBalance(t *testing.T) {
	ids := fleetIDs(1000)
	for _, tc := range []struct {
		members int
		vnodes  int
	}{
		{2, 64}, {3, 64}, {3, 128}, {5, 64}, {8, 128},
	} {
		name := fmt.Sprintf("%dmembers_%dvnodes", tc.members, tc.vnodes)
		t.Run(name, func(t *testing.T) {
			members := make([]string, tc.members)
			for i := range members {
				members[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
			}
			counts := ownerCounts(t, ringWith(tc.vnodes, members...), ids)
			uniform := float64(len(ids)) / float64(tc.members)
			for _, m := range members {
				dev := (float64(counts[m]) - uniform) / uniform
				if dev < -0.15 || dev > 0.15 {
					t.Errorf("member %s owns %d fleets, %.1f%% from uniform %.0f (limit 15%%)",
						m, counts[m], 100*dev, uniform)
				}
			}
		})
	}
}

// TestRingRemapFraction pins the consistent-hashing contract: adding or
// removing one of N members remaps only ~1/N of the fleets, and every
// remapped fleet moves to or from the changed member — never between two
// unchanged ones.
func TestRingRemapFraction(t *testing.T) {
	ids := fleetIDs(1000)
	members := []string{"a:7070", "b:7070", "c:7070", "d:7070"}
	r := ringWith(128, members...)
	before := make(map[string]string, len(ids))
	for _, id := range ids {
		before[id], _ = r.Owner(id)
	}

	t.Run("add", func(t *testing.T) {
		r := ringWith(128, members...)
		r.Add("e:7070")
		moved := 0
		for _, id := range ids {
			after, _ := r.Owner(id)
			if after == before[id] {
				continue
			}
			moved++
			if after != "e:7070" {
				t.Errorf("fleet %s moved %s -> %s, neither the new member", id, before[id], after)
			}
		}
		// Ideal is 1/(N+1) = 20%; allow [10%, 35%].
		if frac := float64(moved) / float64(len(ids)); frac < 0.10 || frac > 0.35 {
			t.Errorf("adding 1 of 5 members remapped %.1f%% of fleets, want ~20%%", 100*frac)
		}
	})

	t.Run("remove", func(t *testing.T) {
		r := ringWith(128, members...)
		r.Remove("b:7070")
		moved := 0
		for _, id := range ids {
			after, _ := r.Owner(id)
			if after == before[id] {
				continue
			}
			moved++
			if before[id] != "b:7070" {
				t.Errorf("fleet %s moved %s -> %s though its owner stayed in the ring",
					id, before[id], after)
			}
		}
		// Ideal is 1/N = 25%; allow [12%, 40%].
		if frac := float64(moved) / float64(len(ids)); frac < 0.12 || frac > 0.40 {
			t.Errorf("removing 1 of 4 members remapped %.1f%% of fleets, want ~25%%", 100*frac)
		}
	})
}

// TestRingDeterminism: placement is a pure function of the member set, not
// of insertion order or ring instance.
func TestRingDeterminism(t *testing.T) {
	ids := fleetIDs(200)
	a := ringWith(64, "x:1", "y:2", "z:3")
	b := ringWith(64, "z:3", "x:1", "y:2")
	for _, id := range ids {
		oa, _ := a.Owner(id)
		ob, _ := b.Owner(id)
		if oa != ob {
			t.Fatalf("fleet %s: owner %s vs %s across insertion orders", id, oa, ob)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0) // defaults
	if _, ok := r.Owner("fleet"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.Add("only:7070")
	r.Add("only:7070") // idempotent
	if got := len(r.Members()); got != 1 {
		t.Fatalf("members = %d, want 1", got)
	}
	owner, ok := r.Owner("fleet")
	if !ok || owner != "only:7070" {
		t.Fatalf("owner = %q/%v, want the sole member", owner, ok)
	}
	r.Remove("absent:7070") // no-op
	r.Remove("only:7070")
	if _, ok := r.Owner("fleet"); ok {
		t.Fatal("emptied ring returned an owner")
	}
}

func TestParseBackends(t *testing.T) {
	got, err := ParseBackends("10.0.0.1:7070=10.0.0.1:8080, 10.0.0.2:7070=10.0.0.2:8080")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Ingest != "10.0.0.1:7070" || got[0].HTTP != "10.0.0.1:8080" ||
		got[1].Name != "10.0.0.2:7070" {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{"", "  ", "a:1", "a:1=", "=b:2", "a:1=b:2,a:1=c:3"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q) accepted", bad)
		}
	}
}

package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/cluster/clustertest"
	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/sim"
)

// TestChaosBackendDeathMidStream is the cluster failure drill: several
// fleets stream through the forwarder, one backend is killed mid-stream
// (its process aborts, in-flight work lost), and the prober ejects it.
// The invariants mirror the single-node chaos suite:
//
//   - conservation: every report offered to the router is forwarded or
//     refused with a counted reason (unroutable, non-finite, invalid
//     identity) — never silently lost
//   - the dead owner's fleets are refused with counted err acks, and their
//     placement does not move (re-sharding would split per-fleet state)
//   - surviving fleets lose nothing: their per-window flags and F1 stay
//     bitwise identical to a single-node golden run of the same workload,
//     even though a transport cut forces one client to reconnect and retry
//     mid-stream (duplicate-rejection absorbs the replays)
func TestChaosBackendDeathMidStream(t *testing.T) {
	backends := startBackends(t, 3)
	ring := cluster.NewRing(64)

	// A flaky dial: the second connection established anywhere in the
	// cluster is cut mid-write after 2KB, exercising the client's
	// reconnect-and-retry path during the storm.
	var dials atomic.Int64
	flakyDial := func(addr string) (net.Conn, error) {
		conn, err := (&net.Dialer{Timeout: 5 * time.Second}).Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 2 {
			return fault.WrapConn(conn, fault.ConnPlan{Seed: 11, CutAfterBytes: 2048}), nil
		}
		return conn, nil
	}

	prober := cluster.NewProber(specs(backends), cluster.ProberOptions{})
	defer prober.Close()
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{
		Client: mcs.ClientOptions{
			Dial:       flakyDial,
			QueueDepth: 8192, // no drop-oldest: the drill measures loss elsewhere
			BackoffMin: time.Millisecond,
			BackoffMax: 20 * time.Millisecond,
		},
		Ready: prober.Ready,
	})
	defer fwd.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	prober.Sweep(ctx)
	if prober.ReadyCount() != 3 {
		t.Fatalf("ready %d of 3 backends", prober.ReadyCount())
	}

	// Six fleets, distinct seeds, golden-run each on a single node.
	type fleetState struct {
		workload *sim.FleetWorkload
		golden   map[int]sim.WindowOutcome
		owner    string
	}
	fleets := map[string]*fleetState{}
	var victimName string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("storm-%d", i)
		sc := sim.Scenario{Seed: int64(300 + i)}
		w, err := sim.BuildWorkload(name, sc)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := sim.GoldenRun(w, sc)
		if err != nil {
			t.Fatal(err)
		}
		owner, ok := fwd.Owner(name)
		if !ok {
			t.Fatalf("no owner for %s", name)
		}
		fleets[name] = &fleetState{workload: w, golden: golden, owner: owner}
		if victimName == "" {
			victimName = owner // kill the first fleet's owner
		}
	}
	var victim *clustertest.Backend
	for _, b := range backends {
		if b.Spec().Name == victimName {
			victim = b
		}
	}
	victimFleets, survivorFleets := 0, 0
	for _, st := range fleets {
		if st.owner == victimName {
			victimFleets++
		} else {
			survivorFleets++
		}
	}
	if survivorFleets == 0 {
		t.Fatal("placement put every fleet on the victim; widen the fleet set")
	}

	// Subscribe to the survivors before any report flows.
	type subscription struct {
		backend *clustertest.Backend
		ch      <-chan *pipeline.WindowResult
	}
	var subs []subscription
	for _, b := range backends {
		if b == victim {
			continue
		}
		ch, cancelSub := b.Engine().Subscribe(512)
		defer cancelSub()
		subs = append(subs, subscription{b, ch})
	}

	// Phase 1: the first half of every fleet's stream, fully delivered.
	offered, refused := 0, 0
	half := func(w *sim.FleetWorkload) int { return len(w.Reports) / 2 }
	for _, st := range fleets {
		for _, r := range st.workload.Reports[:half(st.workload)] {
			offered++
			if err := fwd.Ingest(r); err != nil {
				t.Fatalf("phase-1 ingest for %s: %v", r.Fleet, err)
			}
		}
	}
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// The backend dies mid-stream; the next sweep ejects it.
	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}
	prober.Sweep(ctx)
	if prober.Ready(victimName) {
		t.Fatal("dead backend still admitted after a sweep")
	}

	// Phase 2: the rest of the storm. The victim's fleets are refused with
	// ErrNoBackend — the err ack the participant sees — and counted.
	for _, st := range fleets {
		for _, r := range st.workload.Reports[half(st.workload):] {
			offered++
			err := fwd.Ingest(r)
			if st.owner == victimName {
				if !errors.Is(err, cluster.ErrNoBackend) {
					t.Fatalf("victim fleet %s ingest = %v, want ErrNoBackend", r.Fleet, err)
				}
				refused++
			} else if err != nil {
				t.Fatalf("survivor fleet %s ingest: %v", r.Fleet, err)
			}
		}
	}
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Conservation at the router's door.
	fst := fwd.Stats()
	if fst.Unroutable != uint64(refused) || refused == 0 {
		t.Fatalf("unroutable = %d, want %d", fst.Unroutable, refused)
	}
	if fst.Forwarded+fst.Unroutable+fst.NonFinite+fst.InvalidIdentity != uint64(offered) {
		t.Fatalf("conservation broken: %d+%d+%d+%d != %d offered",
			fst.Forwarded, fst.Unroutable, fst.NonFinite, fst.InvalidIdentity, offered)
	}
	// Placement never moved during the outage.
	for name, st := range fleets {
		if owner, _ := fwd.Owner(name); owner != st.owner {
			t.Fatalf("fleet %s remapped %s -> %s mid-storm", name, st.owner, owner)
		}
	}
	// The transport cut really happened and was healed by retry.
	cutRetries, cutReconnects := uint64(0), uint64(0)
	for _, cs := range fst.Backends {
		cutRetries += cs.Retries
		cutReconnects += cs.Reconnects
	}
	if cutReconnects == 0 {
		t.Error("the injected connection cut never forced a reconnect")
	}
	_ = cutRetries // a cut between reports reconnects without a resend

	// No acked-report loss on survivors: every report forwarded to a live
	// backend is in its engine (duplicate-rejected retries excluded).
	var ingested uint64
	for _, b := range backends {
		if b != victim {
			ingested += b.Engine().Stats().Ingested
		}
	}
	var survivorReports uint64
	for _, st := range fleets {
		if st.owner != victimName {
			survivorReports += uint64(len(st.workload.Reports))
		}
	}
	if ingested != survivorReports {
		t.Fatalf("survivors ingested %d reports, want %d — acked reports lost",
			ingested, survivorReports)
	}

	// Drain the survivors and pin their windows to the golden runs.
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[string]map[int]sim.WindowOutcome{}
	for _, s := range subs {
		wg.Add(1)
		go func(s subscription) {
			defer wg.Done()
			for res := range s.ch {
				st := fleets[res.Fleet]
				if st == nil {
					t.Errorf("result for unknown fleet %q", res.Fleet)
					continue
				}
				out, err := sim.Outcome(res, st.workload.Truth)
				if err != nil {
					t.Error(err)
					continue
				}
				mu.Lock()
				if got[res.Fleet] == nil {
					got[res.Fleet] = map[int]sim.WindowOutcome{}
				}
				got[res.Fleet][out.Seq] = out
				mu.Unlock()
			}
		}(s)
	}
	for _, s := range subs {
		if err := s.backend.Close(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for name, st := range fleets {
		if st.owner == victimName {
			continue
		}
		if violations := sim.VerifyWindows(st.golden, got[name]); len(violations) > 0 {
			t.Errorf("surviving fleet %s diverged from its golden run:\n  %v", name, violations)
		}
	}
}

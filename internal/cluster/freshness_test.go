package cluster_test

import (
	"context"
	"testing"
	"time"

	"itscs/internal/cluster"
	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/pipeline"
)

// TestForwarderStampsIngest: the router's forwarder is an ingest door, so it
// stamps every report it accepts — origin router, ingest time from its clock —
// and the stamp survives the wire to the backend engine. Reports that arrive
// already stamped (a proxy hop, a replayed frame) pass through untouched.
func TestForwarderStampsIngest(t *testing.T) {
	backends := startBackends(t, 2)
	ring := cluster.NewRing(64)
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := fault.NewVirtualClock(t0)
	fwd := cluster.NewForwarder(specs(backends), ring, cluster.ForwarderOptions{Clock: clock})
	defer fwd.Close()

	if err := fwd.Ingest(mcs.Report{Fleet: "stampy", Participant: 0, Slot: 0, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}

	// A report stamped upstream keeps its original door and instant.
	earlier := t0.Add(-time.Minute)
	pre := mcs.Report{Fleet: "stampy", Participant: 1, Slot: 0, X: 2, Y: 2}
	mcs.StampIngest(&pre, earlier, mcs.OriginDirect)
	if err := fwd.Ingest(pre); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fwd.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	owner, _ := fwd.Owner("stampy")
	var engine *pipeline.Engine
	for _, b := range backends {
		if b.Spec().Name == owner {
			engine = b.Engine()
		}
	}
	if engine == nil {
		t.Fatal("no backend owns the fleet")
	}
	st := engine.Stats()
	if st.Ingested != 2 || st.ReportsStamped != 2 || st.ReportsUnstamped != 0 {
		t.Fatalf("backend stats = ingested %d stamped %d unstamped %d, want 2/2/0",
			st.Ingested, st.ReportsStamped, st.ReportsUnstamped)
	}
	traces, err := engine.Traces("stampy")
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("backend retained %d traces, want 2", len(traces))
	}
	byPart := map[int]int{}
	for i, tr := range traces {
		byPart[tr.Participant] = i
	}
	routed := traces[byPart[0]]
	if routed.Origin != mcs.OriginRouter.String() {
		t.Errorf("forwarded report origin = %q, want router", routed.Origin)
	}
	if got := routed.Stages[0].AtUnixMicro; got != t0.UnixMicro() {
		t.Errorf("forwarded report stamped at %d, want the forwarder clock %d", got, t0.UnixMicro())
	}
	kept := traces[byPart[1]]
	if kept.Origin != mcs.OriginDirect.String() {
		t.Errorf("pre-stamped report origin = %q, want direct (forwarder must not restamp)", kept.Origin)
	}
	if got := kept.Stages[0].AtUnixMicro; got != earlier.UnixMicro() {
		t.Errorf("pre-stamped report instant = %d, want the original %d", got, earlier.UnixMicro())
	}
	if kept.ID != obs.TraceIDString(pre.TraceID) {
		t.Errorf("trace id %s, want the pre-assigned %s", kept.ID, obs.TraceIDString(pre.TraceID))
	}
}

// TestMergeStatsFreshness pins the aggregation the router's /metrics and
// /status depend on: stamped counters sum, freshness histograms merge
// bucket-wise, and the per-fleet map unions (fleets shard whole).
func TestMergeStatsFreshness(t *testing.T) {
	snap := func(count uint64, sumMS float64, buckets map[int64]uint64) pipeline.HistogramSnapshot {
		return pipeline.HistogramSnapshot{Count: count, SumMS: sumMS, Buckets: buckets}
	}
	dst := pipeline.Stats{
		Ingested: 10, ReportsStamped: 7, ReportsUnstamped: 3,
		AgeAtClose:     snap(4, 400, map[int64]uint64{100: 3, 500: 1}),
		IngestToResult: snap(4, 480, map[int64]uint64{500: 4}),
		Freshness: map[string]pipeline.FleetFreshness{
			"alpha": {WatermarkSlot: 16, NextSeq: 4, LatestSeq: 3,
				AgeAtClose: snap(4, 400, map[int64]uint64{100: 3, 500: 1})},
		},
	}
	src := pipeline.Stats{
		Ingested: 5, ReportsStamped: 5,
		AgeAtClose:     snap(2, 9000, map[int64]uint64{500: 1, -1: 1}),
		IngestToResult: snap(2, 9100, map[int64]uint64{-1: 2}),
		Freshness: map[string]pipeline.FleetFreshness{
			"beta": {WatermarkSlot: 8, NextSeq: 2, LatestSeq: 1,
				AgeAtClose: snap(2, 9000, map[int64]uint64{500: 1, -1: 1})},
		},
	}
	cluster.MergeStats(&dst, src)

	if dst.Ingested != 15 || dst.ReportsStamped != 12 || dst.ReportsUnstamped != 3 {
		t.Fatalf("counters = %d/%d/%d, want 15/12/3",
			dst.Ingested, dst.ReportsStamped, dst.ReportsUnstamped)
	}
	age := dst.AgeAtClose
	if age.Count != 6 || age.SumMS != 9400 {
		t.Fatalf("merged age histogram = count %d sum %g, want 6/9400", age.Count, age.SumMS)
	}
	wantBuckets := map[int64]uint64{100: 3, 500: 2, -1: 1}
	for bound, n := range wantBuckets {
		if age.Buckets[bound] != n {
			t.Errorf("bucket %d = %d, want %d", bound, age.Buckets[bound], n)
		}
	}
	if dst.IngestToResult.Count != 6 || dst.IngestToResult.SumMS != 9580 {
		t.Fatalf("merged ingest-to-result = %+v", dst.IngestToResult)
	}
	if len(dst.Freshness) != 2 {
		t.Fatalf("freshness union has %d fleets, want 2", len(dst.Freshness))
	}
	if ff := dst.Freshness["beta"]; ff.WatermarkSlot != 8 || ff.AgeAtClose.Count != 2 {
		t.Errorf("beta freshness = %+v", ff)
	}
	if ff := dst.Freshness["alpha"]; ff.AgeAtClose.SumMS != 400 {
		t.Errorf("alpha freshness = %+v", ff)
	}

	// The quantile summary the status plane serves stays coherent on the
	// merged histogram: counts carry, quantiles are ordered.
	sum := pipeline.SummarizeFreshness(dst.AgeAtClose)
	if sum.Count != 6 {
		t.Fatalf("summary count = %d, want 6", sum.Count)
	}
	if sum.P50MS > sum.P90MS || sum.P90MS > sum.P99MS {
		t.Errorf("summary quantiles not monotone: %+v", sum)
	}
}

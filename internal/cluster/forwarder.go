package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync/atomic"

	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/obs"
)

// ErrNoBackend rejects a report whose fleet's owner is ejected (or the
// ring is empty). The transport acks it "err ...", so the participant
// knows the upload was refused — counted, never silently dropped — and
// retries once the owner readmits. Remapping the fleet to a live backend
// instead would split its window state (ring buffers, warm factors, WAL)
// across two engines.
var ErrNoBackend = errors.New("cluster: fleet owner unavailable")

// ForwarderOptions parameterizes a Forwarder.
type ForwarderOptions struct {
	// Client templates the per-backend mcs.Client; each client derives its
	// jitter seed from Client.Seed plus the backend's position so a lost
	// backend's redials desynchronize across the fleet of clients.
	Client mcs.ClientOptions
	// Ready gates traffic per backend name (usually Prober.Ready). nil
	// admits everyone.
	Ready func(name string) bool
	// Log receives unroutable-report events (nil discards).
	Log *slog.Logger
	// Clock supplies the ingest freshness stamps the forwarder applies at
	// the router's door (default Client.Clock, else the wall clock).
	Clock fault.Clock
}

// ForwarderStats snapshots the forwarding data plane. Forwarded +
// Unroutable + NonFinite + InvalidIdentity equals the reports offered to
// Ingest.
type ForwarderStats struct {
	// Forwarded counts reports accepted into a backend client's queue;
	// Unroutable those refused because the owner was ejected; NonFinite
	// those refused at the door for NaN/Inf coordinates; InvalidIdentity
	// those refused for an empty fleet or negative participant — an empty
	// fleet name would otherwise ring-hash to some arbitrary owner's
	// default fleet, unreachable by any scatter-gather query.
	Forwarded       uint64 `json:"forwarded"`
	Unroutable      uint64 `json:"unroutable"`
	NonFinite       uint64 `json:"non_finite"`
	InvalidIdentity uint64 `json:"invalid_identity"`
	// Backends maps backend name to its transport client's counters.
	Backends map[string]mcs.ClientStats `json:"backends"`
}

// Forwarder is the router's ingest data plane: it implements mcs.Ingestor,
// so the router's mcs.Server feeds it straight from participant uploads.
// Each report is routed by fleet through the ring and handed to the
// owner's mcs.Client, which buffers, reconnects, and retries. The router's
// "ok" ack therefore means accepted for forwarding (store-and-forward, at
// least once — the backend's duplicate rejection absorbs retry overlap),
// not yet applied on the owner; Flush gives batch callers the stronger
// guarantee.
type Forwarder struct {
	ring    *Ring
	ready   func(string) bool
	log     *slog.Logger
	clock   fault.Clock
	clients map[string]*mcs.Client

	forwarded       atomic.Uint64
	unroutable      atomic.Uint64
	nonFinite       atomic.Uint64
	invalidIdentity atomic.Uint64
}

// NewForwarder builds the data plane over the backend list, populating the
// ring with every backend and dialing one mcs.Client per backend (lazily —
// connections happen on first send).
func NewForwarder(backends []Backend, ring *Ring, opt ForwarderOptions) *Forwarder {
	f := &Forwarder{
		ring:    ring,
		ready:   opt.Ready,
		log:     opt.Log,
		clock:   opt.Clock,
		clients: make(map[string]*mcs.Client, len(backends)),
	}
	if f.ready == nil {
		f.ready = func(string) bool { return true }
	}
	if f.log == nil {
		f.log = obs.Discard()
	}
	if f.clock == nil {
		f.clock = opt.Client.Clock
	}
	if f.clock == nil {
		f.clock = fault.RealClock()
	}
	for i, b := range backends {
		ring.Add(b.Name)
		copt := opt.Client
		copt.Seed = opt.Client.Seed + int64(i)
		f.clients[b.Name] = mcs.NewClient(b.Ingest, copt)
	}
	return f
}

// Ingest routes one report to its fleet's owner. It never blocks: the
// owner's client buffers (drop-oldest under sustained outage, counted).
func (f *Forwarder) Ingest(r mcs.Report) error {
	if err := r.CheckFinite(); err != nil {
		f.nonFinite.Add(1)
		return err
	}
	if err := r.CheckIdentity(); err != nil {
		f.invalidIdentity.Add(1)
		return err
	}
	owner, ok := f.ring.Owner(r.Fleet)
	if !ok {
		f.unroutable.Add(1)
		return fmt.Errorf("%w: empty ring", ErrNoBackend)
	}
	if !f.ready(owner) {
		f.unroutable.Add(1)
		f.log.Debug("report unroutable", "fleet", r.Fleet, "owner", owner)
		return fmt.Errorf("%w: fleet %q owner %s ejected", ErrNoBackend, r.Fleet, owner)
	}
	// Stamp at the door: freshness is measured from the moment the system
	// first accepted the report. StampIngest no-ops on an already-stamped
	// report, so a relay hop never resets the clock.
	mcs.StampIngest(&r, f.clock.Now(), mcs.OriginRouter)
	if err := f.clients[owner].Send(r); err != nil {
		f.unroutable.Add(1)
		return err
	}
	f.forwarded.Add(1)
	return nil
}

// Owner exposes the ring placement for the query plane and diagnostics.
func (f *Forwarder) Owner(fleet string) (string, bool) {
	return f.ring.Owner(fleet)
}

// Flush drains every backend client's send buffer or fails with the
// context. With an owner down its in-flight report retries until the
// deadline, so callers bound Flush.
func (f *Forwarder) Flush(ctx context.Context) error {
	for name, cl := range f.clients {
		if err := cl.Flush(ctx); err != nil {
			return fmt.Errorf("cluster: flush %s: %w", name, err)
		}
	}
	return nil
}

// Close shuts every backend client down, abandoning (and counting)
// whatever is still queued. Flush first for delivery guarantees.
func (f *Forwarder) Close() error {
	var err error
	for _, cl := range f.clients {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats snapshots the data plane, with per-backend client counters keyed
// by backend name (iterate sorted for stable output: see SortedBackends).
func (f *Forwarder) Stats() ForwarderStats {
	s := ForwarderStats{
		Forwarded:       f.forwarded.Load(),
		Unroutable:      f.unroutable.Load(),
		NonFinite:       f.nonFinite.Load(),
		InvalidIdentity: f.invalidIdentity.Load(),
		Backends:        make(map[string]mcs.ClientStats, len(f.clients)),
	}
	for name, cl := range f.clients {
		s.Backends[name] = cl.Stats()
	}
	return s
}

// SortedBackends lists the stats' backend names in stable order.
func (s ForwarderStats) SortedBackends() []string {
	names := make([]string, 0, len(s.Backends))
	for name := range s.Backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

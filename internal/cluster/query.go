package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"itscs/internal/pipeline"
	"itscs/internal/reputation"
)

// Query is the cluster's read path. Fleet-scoped reads go to the one
// backend owning the fleet; cluster-scoped reads fan out to every backend
// concurrently and merge the answers, so one scrape of the router sees the
// whole cluster.
type Query struct {
	backends []Backend
	byName   map[string]Backend
	ring     *Ring
	ready    func(string) bool
	client   *http.Client
}

// NewQuery builds the read path. ready gates fleet-scoped proxying
// (usually Prober.Ready; nil admits everyone); client nil uses a default
// whose deadlines come from the per-request context.
func NewQuery(backends []Backend, ring *Ring, ready func(string) bool, client *http.Client) *Query {
	if ready == nil {
		ready = func(string) bool { return true }
	}
	if client == nil {
		client = &http.Client{}
	}
	byName := make(map[string]Backend, len(backends))
	for _, b := range backends {
		byName[b.Name] = b
	}
	return &Query{backends: backends, byName: byName, ring: ring, ready: ready, client: client}
}

// ProxyResponse is one backend's verbatim HTTP answer, relayed with its
// status so 204 no-result-yet and 404 unknown-fleet survive the hop.
type ProxyResponse struct {
	Backend     string
	Status      int
	ContentType string
	Body        []byte
}

// Result proxies GET /results/{fleet} to the fleet's owner. It fails with
// ErrNoBackend when the owner is ejected: the state exists only there, so
// no other backend can answer.
func (q *Query) Result(ctx context.Context, fleet string) (*ProxyResponse, error) {
	return q.proxyToOwner(ctx, fleet, "/results/"+fleet)
}

// ReputationFleet proxies GET /reputation/{fleet} to the fleet's owner:
// fleets shard whole, so the owner's ledger is the authoritative (and
// only) trust state for the fleet.
func (q *Query) ReputationFleet(ctx context.Context, fleet string) (*ProxyResponse, error) {
	return q.proxyToOwner(ctx, fleet, "/reputation/"+fleet)
}

// ReputationParticipant proxies GET /reputation/{fleet}/{participant} to
// the fleet's owner.
func (q *Query) ReputationParticipant(ctx context.Context, fleet, participant string) (*ProxyResponse, error) {
	return q.proxyToOwner(ctx, fleet, "/reputation/"+fleet+"/"+participant)
}

// proxyToOwner relays one fleet-scoped GET to the fleet's ring owner,
// failing with ErrNoBackend when the owner is ejected.
func (q *Query) proxyToOwner(ctx context.Context, fleet, path string) (*ProxyResponse, error) {
	owner, ok := q.ring.Owner(fleet)
	if !ok {
		return nil, fmt.Errorf("%w: empty ring", ErrNoBackend)
	}
	if !q.ready(owner) {
		return nil, fmt.Errorf("%w: fleet %q owner %s ejected", ErrNoBackend, fleet, owner)
	}
	return q.proxy(ctx, owner, path)
}

// proxy relays one GET to one backend.
func (q *Query) proxy(ctx context.Context, name, path string) (*ProxyResponse, error) {
	b, ok := q.byName[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown backend %q", name)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+b.HTTP+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := q.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: backend %s: %w", name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("cluster: backend %s: read: %w", name, err)
	}
	return &ProxyResponse{
		Backend:     name,
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	}, nil
}

// FleetList is the merged answer to GET /results across the cluster.
type FleetList struct {
	// Fleets is the union of every reachable backend's fleet list, sorted.
	Fleets []string `json:"fleets"`
	// Errors maps backends that could not answer to the reason; readers
	// see a partial list is partial instead of mistaking it for complete.
	Errors map[string]string `json:"errors,omitempty"`
}

// Fleets fans GET /results out to every ready backend and unions the
// results. Ejected backends are skipped (their fleets are unreachable
// anyway) and noted under Errors.
func (q *Query) Fleets(ctx context.Context) FleetList {
	out := FleetList{Fleets: []string{}}
	seen := make(map[string]bool)
	for _, r := range q.fanout(ctx, "/results", true) {
		if r.err != nil {
			out.setErr(r.backend, r.err.Error())
			continue
		}
		var payload struct {
			Fleets []string `json:"fleets"`
		}
		if err := json.Unmarshal(r.body, &payload); err != nil {
			out.setErr(r.backend, "bad /results payload: "+err.Error())
			continue
		}
		for _, fleet := range payload.Fleets {
			if !seen[fleet] {
				seen[fleet] = true
				out.Fleets = append(out.Fleets, fleet)
			}
		}
	}
	sort.Strings(out.Fleets)
	return out
}

func (fl *FleetList) setErr(backend, msg string) {
	if fl.Errors == nil {
		fl.Errors = make(map[string]string)
	}
	fl.Errors[backend] = msg
}

// BackendMetrics is one backend's engine stats, or the reason they are
// missing.
type BackendMetrics struct {
	Backend string          `json:"backend"`
	Err     string          `json:"err,omitempty"`
	Stats   *pipeline.Stats `json:"stats,omitempty"`
}

// ClusterMetrics is the merged answer to GET /metrics across the cluster:
// each backend's engine stats plus their sum. Counters add; histograms
// merge bucket-wise; per-fleet drop maps union (a fleet lives on one
// backend, so keys never collide).
type ClusterMetrics struct {
	Backends  []BackendMetrics `json:"backends"`
	Aggregate pipeline.Stats   `json:"aggregate"`
}

// Metrics fans GET /metrics?format=json out to every backend — ejected
// ones included, since a recovering backend's stats are exactly what an
// operator wants during an incident — and aggregates what answers.
func (q *Query) Metrics(ctx context.Context) ClusterMetrics {
	var out ClusterMetrics
	for _, r := range q.fanout(ctx, "/metrics?format=json", false) {
		bm := BackendMetrics{Backend: r.backend}
		switch {
		case r.err != nil:
			bm.Err = r.err.Error()
		default:
			var stats pipeline.Stats
			if err := json.Unmarshal(r.body, &stats); err != nil {
				bm.Err = "bad /metrics payload: " + err.Error()
			} else {
				bm.Stats = &stats
				MergeStats(&out.Aggregate, stats)
			}
		}
		out.Backends = append(out.Backends, bm)
	}
	return out
}

// ClusterReputation is the merged answer to GET /reputation across the
// cluster: the union of every backend's fleet ledgers (fleets shard whole,
// so snapshots union without key collisions) plus the summed aggregate
// counters.
type ClusterReputation struct {
	Fleets []reputation.FleetSnapshot `json:"fleets"`
	Stats  reputation.LedgerStats     `json:"stats"`
	// Errors maps backends that could not answer (ejected, unreachable, or
	// running with the ledger disabled) to the reason.
	Errors map[string]string `json:"errors,omitempty"`
}

// Reputation fans GET /reputation out to every ready backend and merges
// the ledgers. The merge is consistent because each fleet's trust state
// lives wholly on its ring owner — no row is ever split or double-counted.
func (q *Query) Reputation(ctx context.Context) ClusterReputation {
	out := ClusterReputation{
		Fleets: []reputation.FleetSnapshot{},
		Stats:  reputation.LedgerStats{States: map[string]int{}},
	}
	for _, r := range q.fanout(ctx, "/reputation", true) {
		if r.err != nil {
			out.setErr(r.backend, r.err.Error())
			continue
		}
		var snap reputation.Snapshot
		if err := json.Unmarshal(r.body, &snap); err != nil {
			out.setErr(r.backend, "bad /reputation payload: "+err.Error())
			continue
		}
		out.Fleets = append(out.Fleets, snap.Fleets...)
		mergeLedgerStats(&out.Stats, snap.Stats)
	}
	sort.Slice(out.Fleets, func(i, j int) bool { return out.Fleets[i].Fleet < out.Fleets[j].Fleet })
	return out
}

func (cr *ClusterReputation) setErr(backend, msg string) {
	if cr.Errors == nil {
		cr.Errors = make(map[string]string)
	}
	cr.Errors[backend] = msg
}

// mergeLedgerStats sums src into dst: scalar counters add, the per-state
// census adds per state, and transition edges merge by (from, to).
func mergeLedgerStats(dst *reputation.LedgerStats, src reputation.LedgerStats) {
	dst.Fleets += src.Fleets
	dst.Folded += src.Folded
	dst.Skipped += src.Skipped
	for state, n := range src.States {
		if dst.States == nil {
			dst.States = make(map[string]int)
		}
		dst.States[state] += n
	}
	for _, tr := range src.Transitions {
		merged := false
		for i := range dst.Transitions {
			if dst.Transitions[i].From == tr.From && dst.Transitions[i].To == tr.To {
				dst.Transitions[i].Count += tr.Count
				merged = true
				break
			}
		}
		if !merged {
			dst.Transitions = append(dst.Transitions, tr)
		}
	}
	sort.Slice(dst.Transitions, func(i, j int) bool {
		if dst.Transitions[i].From != dst.Transitions[j].From {
			return dst.Transitions[i].From < dst.Transitions[j].From
		}
		return dst.Transitions[i].To < dst.Transitions[j].To
	})
}

// BackendTraces is one backend's /trace answer (verbatim JSON), or the
// reason it is missing.
type BackendTraces struct {
	Backend string          `json:"backend"`
	Err     string          `json:"err,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// ClusterTraces is the merged answer to GET /trace/{fleet} across the
// cluster, each backend's contribution attributed. The fleet's ring owner
// holds the live traces, but after a ring move (or with an ID retained only
// pre-move) another backend may still hold the record, so the lookup asks
// everyone rather than trusting placement.
type ClusterTraces struct {
	Fleet    string          `json:"fleet"`
	Backends []BackendTraces `json:"backends"`
}

// TraceFleet fans GET /trace/{fleet} (with the given raw query, e.g.
// "id=74b1…") out to every backend and returns the attributed answers. A
// backend that does not know the fleet (404) or retains no such trace is
// reported under Err rather than failing the merge.
func (q *Query) TraceFleet(ctx context.Context, fleet, rawQuery string) ClusterTraces {
	path := "/trace/" + fleet
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	out := ClusterTraces{Fleet: fleet}
	for _, r := range q.fanout(ctx, path, false) {
		bt := BackendTraces{Backend: r.backend}
		if r.err != nil {
			bt.Err = r.err.Error()
		} else {
			bt.Payload = json.RawMessage(r.body)
		}
		out.Backends = append(out.Backends, bt)
	}
	return out
}

// StatusReport is one backend's /status answer (verbatim JSON), or the
// reason it is missing. (BackendStatus is the prober's health record.)
type StatusReport struct {
	Backend string          `json:"backend"`
	Err     string          `json:"err,omitempty"`
	Status  json.RawMessage `json:"status,omitempty"`
}

// Status fans GET /status out to every backend — ejected ones included,
// since an unhealthy backend's self-description is exactly what an operator
// wants during an incident — and returns the attributed answers.
func (q *Query) Status(ctx context.Context) []StatusReport {
	var out []StatusReport
	for _, r := range q.fanout(ctx, "/status", false) {
		bs := StatusReport{Backend: r.backend}
		if r.err != nil {
			bs.Err = r.err.Error()
		} else {
			bs.Status = json.RawMessage(r.body)
		}
		out = append(out, bs)
	}
	return out
}

type fanResult struct {
	backend string
	body    []byte
	err     error
}

// fanout GETs path on the backends concurrently, in configured order.
// onlyReady skips ejected backends, reporting them as errors.
func (q *Query) fanout(ctx context.Context, path string, onlyReady bool) []fanResult {
	results := make([]fanResult, len(q.backends))
	var wg sync.WaitGroup
	for i, b := range q.backends {
		results[i].backend = b.Name
		if onlyReady && !q.ready(b.Name) {
			results[i].err = ErrNoBackend
			continue
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resp, err := q.proxy(ctx, name, path)
			if err != nil {
				results[i].err = err
				return
			}
			if resp.Status != http.StatusOK {
				results[i].err = fmt.Errorf("cluster: backend %s: status %d", name, resp.Status)
				return
			}
			results[i].body = resp.Body
		}(i, b.Name)
	}
	wg.Wait()
	return results
}

// MergeStats folds src into dst: counters and gauges sum, histograms merge
// bucket-wise with the mean recomputed, and the per-fleet drop breakdown
// unions.
func MergeStats(dst *pipeline.Stats, src pipeline.Stats) {
	dst.Ingested += src.Ingested
	dst.Replayed += src.Replayed
	dst.Rejected += src.Rejected
	dst.Late += src.Late
	dst.Duplicates += src.Duplicates
	dst.NonFinite += src.NonFinite
	dst.ReportsStamped += src.ReportsStamped
	dst.ReportsUnstamped += src.ReportsUnstamped
	dst.AdmittedClean += src.AdmittedClean
	dst.TaggedQuarantined += src.TaggedQuarantined
	dst.TaggedProbation += src.TaggedProbation
	dst.WindowsClosed += src.WindowsClosed
	dst.WindowsEmpty += src.WindowsEmpty
	dst.WindowsSkipped += src.WindowsSkipped
	dst.WindowsDropped += src.WindowsDropped
	dst.WindowsProcessed += src.WindowsProcessed
	dst.WindowsFailed += src.WindowsFailed
	dst.WarmStarts += src.WarmStarts
	dst.ColdStarts += src.ColdStarts
	dst.SubscriberDrops += src.SubscriberDrops
	dst.QueueDepth += src.QueueDepth
	dst.QueueCapacity += src.QueueCapacity
	dst.Fleets += src.Fleets
	for fleet, n := range src.WindowsDroppedByFleet {
		if dst.WindowsDroppedByFleet == nil {
			dst.WindowsDroppedByFleet = make(map[string]uint64)
		}
		dst.WindowsDroppedByFleet[fleet] += n
	}
	for phase, h := range src.PhaseLatency {
		if dst.PhaseLatency == nil {
			dst.PhaseLatency = make(map[string]pipeline.HistogramSnapshot)
		}
		dst.PhaseLatency[phase] = mergeHistogram(dst.PhaseLatency[phase], h)
	}
	dst.AgeAtClose = mergeHistogram(dst.AgeAtClose, src.AgeAtClose)
	dst.IngestToResult = mergeHistogram(dst.IngestToResult, src.IngestToResult)
	// Fleets shard whole, so per-fleet freshness unions without collisions
	// (after a ring move both owners may briefly report the fleet; the
	// merge keeps whichever answered last, a transient either way).
	for fleet, ff := range src.Freshness {
		if dst.Freshness == nil {
			dst.Freshness = make(map[string]pipeline.FleetFreshness)
		}
		dst.Freshness[fleet] = ff
	}
}

// mergeHistogram sums two snapshots of the shared fixed-bucket scheme.
func mergeHistogram(a, b pipeline.HistogramSnapshot) pipeline.HistogramSnapshot {
	out := pipeline.HistogramSnapshot{
		Count:   a.Count + b.Count,
		SumMS:   a.SumMS + b.SumMS,
		Buckets: make(map[int64]uint64, len(a.Buckets)+len(b.Buckets)),
	}
	for bound, n := range a.Buckets {
		out.Buckets[bound] += n
	}
	for bound, n := range b.Buckets {
		out.Buckets[bound] += n
	}
	if out.Count > 0 {
		out.MeanMS = out.SumMS / float64(out.Count)
	}
	return out
}

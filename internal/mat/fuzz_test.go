package mat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that the decoder never panics and that whatever it
// accepts round-trips through the encoder.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"1,2,3\n4,5,6\n",
		"1\n",
		"",
		"NaN,2\n3,4\n",
		"1e308,-1e308\n0,-0\n",
		"  1 , 2 \n\n3,4\n",
		"a,b\n",
		"1,2\n3\n",
		strings.Repeat("1,", 100) + "1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, m); err != nil {
			t.Fatalf("encode accepted matrix: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if br, bc := back.Dims(); br != m.Rows() || bc != m.Cols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows(), m.Cols(), br, bc)
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				a, b := m.At(i, j), back.At(i, j)
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("round trip changed (%d,%d): %v -> %v", i, j, a, b)
				}
			}
		}
	})
}

package mat

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV checks that the decoder never panics and that whatever it
// accepts round-trips through the encoder.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"1,2,3\n4,5,6\n",
		"1\n",
		"",
		"NaN,2\n3,4\n",
		"1e308,-1e308\n0,-0\n",
		"  1 , 2 \n\n3,4\n",
		"a,b\n",
		"1,2\n3\n",
		strings.Repeat("1,", 100) + "1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, m); err != nil {
			t.Fatalf("encode accepted matrix: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if br, bc := back.Dims(); br != m.Rows() || bc != m.Cols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows(), m.Cols(), br, bc)
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				a, b := m.At(i, j), back.At(i, j)
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("round trip changed (%d,%d): %v -> %v", i, j, a, b)
				}
			}
		}
	})
}

// FuzzReadBinary checks that the binary matrix decoder never panics or
// over-allocates on arbitrary bytes, and that whatever it accepts
// round-trips through the encoder bit-exactly (NaN payloads included).
func FuzzReadBinary(f *testing.F) {
	seed := func(m *Dense) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	small, _ := NewFromSlice(2, 3, []float64{1, -2.5, math.NaN(), math.Inf(1), -0.0, 1e308})
	seed(small)
	seed(New(0, 0))
	seed(New(1, 0))
	seed(Ones(3, 3))
	f.Add([]byte{})
	f.Add([]byte("MATB")) // magic only
	f.Add(append([]byte("MATB"),
		0xFF, 0xFF, 0xFF, 0xFF, // absurd rows
		0xFF, 0xFF, 0xFF, 0xFF)) // absurd cols

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and OOMs are not
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatalf("encode accepted matrix: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if br, bc := back.Dims(); br != m.Rows() || bc != m.Cols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows(), m.Cols(), br, bc)
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if math.Float64bits(m.At(i, j)) != math.Float64bits(back.At(i, j)) {
					t.Fatalf("round trip changed (%d,%d): %x -> %x",
						i, j, math.Float64bits(m.At(i, j)), math.Float64bits(back.At(i, j)))
				}
			}
		}
	})
}

package mat

import (
	"fmt"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ,
// where A is r×c, U is r×k, V is c×k and S has k = min(r, c) entries in
// non-increasing order.
type SVDResult struct {
	U *Dense    // left singular vectors, r×k
	S []float64 // singular values, length k, descending
	V *Dense    // right singular vectors, c×k
}

// SVD computes the thin singular value decomposition of m using one-sided
// Jacobi rotations. The method is slower than Golub–Kahan bidiagonalization
// but is simple, numerically robust, and exact to machine precision at the
// matrix sizes used in this project (hundreds × hundreds).
//
// For matrices with more columns than rows the decomposition of the
// transpose is computed and the factors swapped, so the iteration always
// runs on the tall orientation.
func SVD(m *Dense) (*SVDResult, error) {
	if m.IsEmpty() {
		return nil, fmt.Errorf("%w: SVD of empty matrix", ErrShape)
	}
	if m.rows < m.cols {
		res, err := SVD(m.T())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
	}

	// One-sided Jacobi on A (tall): orthogonalize the columns of a working
	// copy W = A·V by plane rotations accumulated into V. At convergence the
	// columns of W are σ_i·u_i.
	n := m.cols
	w := m.Clone()
	v := Identity(n)

	const (
		maxSweeps = 60
		tol       = 1e-13
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		offDiag := jacobiSweep(w, v, tol)
		if offDiag {
			continue
		}
		break
	}

	// Extract singular values as column norms of W, normalize columns into U.
	type colSV struct {
		sigma float64
		idx   int
	}
	svs := make([]colSV, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < w.rows; i++ {
			val := w.data[i*w.cols+j]
			s += val * val
		}
		svs[j] = colSV{sigma: math.Sqrt(s), idx: j}
	}
	sort.Slice(svs, func(a, b int) bool { return svs[a].sigma > svs[b].sigma })

	u := New(m.rows, n)
	vOut := New(n, n)
	sOut := make([]float64, n)
	for rank, sv := range svs {
		sOut[rank] = sv.sigma
		if sv.sigma > 0 {
			inv := 1 / sv.sigma
			for i := 0; i < m.rows; i++ {
				u.data[i*n+rank] = w.data[i*w.cols+sv.idx] * inv
			}
		}
		for i := 0; i < n; i++ {
			vOut.data[i*n+rank] = v.data[i*n+sv.idx]
		}
	}
	return &SVDResult{U: u, S: sOut, V: vOut}, nil
}

// jacobiSweep performs one full sweep of one-sided Jacobi rotations over all
// column pairs of w, accumulating rotations into v. It reports whether any
// pair exceeded the orthogonality tolerance (i.e. another sweep is needed).
func jacobiSweep(w, v *Dense, tol float64) bool {
	n := w.cols
	rotated := false
	for p := 0; p < n-1; p++ {
		for q := p + 1; q < n; q++ {
			// Compute the 2x2 Gram entries for columns p, q.
			var app, aqq, apq float64
			for i := 0; i < w.rows; i++ {
				wp := w.data[i*w.cols+p]
				wq := w.data[i*w.cols+q]
				app += wp * wp
				aqq += wq * wq
				apq += wp * wq
			}
			if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
				continue
			}
			rotated = true
			// Standard Jacobi rotation zeroing the off-diagonal Gram entry.
			zeta := (aqq - app) / (2 * apq)
			var t float64
			if zeta >= 0 {
				t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
			} else {
				t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
			}
			c := 1 / math.Sqrt(1+t*t)
			s := c * t
			applyRotation(w, p, q, c, s)
			applyRotation(v, p, q, c, s)
		}
	}
	return rotated
}

// applyRotation applies the plane rotation [c s; -s c] to columns p, q of m.
func applyRotation(m *Dense, p, q int, c, s float64) {
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		xp := m.data[base+p]
		xq := m.data[base+q]
		m.data[base+p] = c*xp - s*xq
		m.data[base+q] = s*xp + c*xq
	}
}

// TruncatedSVD returns the rank-r truncation (U_r, S_r, V_r) of m's SVD.
// If r exceeds min(rows, cols) it is clamped.
func TruncatedSVD(m *Dense, r int) (*SVDResult, error) {
	full, err := SVD(m)
	if err != nil {
		return nil, err
	}
	k := len(full.S)
	if r > k {
		r = k
	}
	if r < 1 {
		return nil, fmt.Errorf("%w: truncation rank %d", ErrShape, r)
	}
	u, err := full.U.Slice(0, full.U.rows, 0, r)
	if err != nil {
		return nil, err
	}
	v, err := full.V.Slice(0, full.V.rows, 0, r)
	if err != nil {
		return nil, err
	}
	s := make([]float64, r)
	copy(s, full.S[:r])
	return &SVDResult{U: u, S: s, V: v}, nil
}

// Reconstruct multiplies the factors back into U·diag(S)·Vᵀ.
func (r *SVDResult) Reconstruct() (*Dense, error) {
	us := r.U.Clone()
	for i := 0; i < us.rows; i++ {
		for j := 0; j < us.cols; j++ {
			us.data[i*us.cols+j] *= r.S[j]
		}
	}
	return us.MulT(r.V)
}

// EnergyCDF returns, for each prefix length i, the cumulative fraction
// Σ_{k≤i} σ_k / Σ σ_k. Used for the Fig. 4(a) low-rank analysis.
func (r *SVDResult) EnergyCDF() []float64 {
	out := make([]float64, len(r.S))
	var total float64
	for _, s := range r.S {
		total += s
	}
	if total == 0 {
		return out
	}
	var run float64
	for i, s := range r.S {
		run += s
		out[i] = run / total
	}
	return out
}

// RankForEnergy returns the smallest rank whose singular-value prefix
// captures at least frac of the total singular-value mass.
func (r *SVDResult) RankForEnergy(frac float64) int {
	cdf := r.EnergyCDF()
	for i, c := range cdf {
		if c >= frac {
			return i + 1
		}
	}
	return len(cdf)
}

// EffectiveRank estimates numerical rank: the number of singular values
// above relTol times the largest.
func (r *SVDResult) EffectiveRank(relTol float64) int {
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0
	}
	threshold := relTol * r.S[0]
	n := 0
	for _, s := range r.S {
		if s > threshold {
			n++
		}
	}
	return n
}

// NuclearNorm returns Σ σ_i of m.
func NuclearNorm(m *Dense) (float64, error) {
	res, err := SVD(m)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, s := range res.S {
		sum += s
	}
	return sum, nil
}

package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of worker goroutines the row-block driver may
// use. It defaults to GOMAXPROCS at package init and is read atomically so
// tests and tools can retune it concurrently with running kernels.
var parallelism atomic.Int64

func init() {
	parallelism.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets the worker-goroutine budget for the parallel kernels
// and returns the previous value. n <= 0 resets to GOMAXPROCS. A budget of
// 1 forces every kernel onto the caller's goroutine, which also makes the
// hot paths allocation-free (the fork/join bookkeeping is the only
// allocation the parallel path performs).
func SetParallelism(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism reports the current worker-goroutine budget.
func Parallelism() int { return int(parallelism.Load()) }

// minParallelFlops is the approximate amount of arithmetic below which the
// row-block driver stays sequential: at roughly 1–2 µs of goroutine
// fork/join overhead per block and ~1 flop/ns per core, splitting less
// than ~64k flops costs more than it saves. Paper-scale factor products
// (158×240×rank) sit comfortably above the cutoff; the small per-sweep
// vector ops stay below it and run inline.
const minParallelFlops = 1 << 16

// ParallelRows partitions rows [0, n) into contiguous blocks and invokes
// fn(lo, hi) for each, concurrently when the estimated total work
// (n·flopsPerRow) justifies the goroutine overhead and the parallelism
// budget allows it. fn must be safe to run concurrently on disjoint row
// ranges. The partition is deterministic but the execution order is not;
// callers needing bit-identical results across budgets must ensure each
// row's computation is independent of the others (all kernels in this
// package preserve their sequential per-element accumulation order, so
// their results are bit-identical at any parallelism level).
func ParallelRows(n, flopsPerRow int, fn func(lo, hi int)) {
	if !parallelWorthwhile(n, flopsPerRow) {
		fn(0, n)
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelWorthwhile reports whether splitting n rows of flopsPerRow work
// each across goroutines pays for the fork/join overhead. The in-package
// kernels check it *before* building their closure so the sequential hot
// path stays allocation-free (a func literal that captures variables is a
// heap allocation even if the work ends up running inline).
func parallelWorthwhile(n, flopsPerRow int) bool {
	return Parallelism() > 1 && n > 1 && n*flopsPerRow >= minParallelFlops
}

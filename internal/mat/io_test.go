package mat

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1.5, -2.25, 3e10},
		{0, 1e-9, -7},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m, 0) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", back, m)
	}
}

func TestCSVRoundTripNaN(t *testing.T) {
	m := New(1, 3)
	m.Set(0, 1, math.NaN())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.At(0, 1)) {
		t.Fatal("NaN must survive the round trip")
	}
	if back.At(0, 0) != 0 || back.At(0, 2) != 0 {
		t.Fatal("zeros must survive the round trip")
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.At(1, 1) != 4 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n")); err == nil {
		t.Fatal("bad field should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestReadCSVWhitespaceTolerant(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("  1 , 2 \n 3 ,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("parsed %v", m)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1.5, -2.25, 3e10},
		{0, math.NaN(), math.Inf(-1)},
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if br, bc := back.Dims(); br != 2 || bc != 3 {
		t.Fatalf("shape changed: %dx%d", br, bc)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a, b := m.At(i, j), back.At(i, j)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("(%d,%d): %v -> %v", i, j, a, b)
			}
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, New(2, 2)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadBinary(strings.NewReader("JUNKJUNKJUNKJUNK")); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated data should error")
	}
	// A header advertising an absurd shape must be rejected before any
	// allocation proportional to it happens.
	huge := append([]byte(nil), good[:4]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("oversized dims should error")
	}
}

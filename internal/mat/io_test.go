package mat

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1.5, -2.25, 3e10},
		{0, 1e-9, -7},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m, 0) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", back, m)
	}
}

func TestCSVRoundTripNaN(t *testing.T) {
	m := New(1, 3)
	m.Set(0, 1, math.NaN())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.At(0, 1)) {
		t.Fatal("NaN must survive the round trip")
	}
	if back.At(0, 0) != 0 || back.At(0, 2) != 0 {
		t.Fatal("zeros must survive the round trip")
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.At(1, 1) != 4 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n")); err == nil {
		t.Fatal("bad field should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestReadCSVWhitespaceTolerant(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("  1 , 2 \n 3 ,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("parsed %v", m)
	}
}

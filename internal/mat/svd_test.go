package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// orthonormalColumns reports whether m's columns are orthonormal within tol.
func orthonormalColumns(m *Dense, tol float64) bool {
	g, err := m.TMul(m)
	if err != nil {
		return false
	}
	id := Identity(m.Cols())
	return g.Equal(id, tol)
}

func TestSVDReconstructsTall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 12, 6)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := res.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a, 1e-9) {
		t.Fatal("U·S·Vᵀ does not reconstruct A")
	}
	if !orthonormalColumns(res.U, 1e-9) {
		t.Fatal("U columns not orthonormal")
	}
	if !orthonormalColumns(res.V, 1e-9) {
		t.Fatal("V columns not orthonormal")
	}
}

func TestSVDReconstructsWide(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 5, 11)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Rows() != 5 || res.V.Rows() != 11 || len(res.S) != 5 {
		t.Fatalf("thin SVD shapes wrong: U %dx%d V %dx%d k=%d",
			res.U.Rows(), res.U.Cols(), res.V.Rows(), res.V.Cols(), len(res.S))
	}
	back, err := res.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a, 1e-9) {
		t.Fatal("wide SVD reconstruction failed")
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 9, 9)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
		if res.S[i] < 0 {
			t.Fatalf("negative singular value: %v", res.S)
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(res.S[i], w, 1e-10) {
			t.Fatalf("σ%d = %v, want %v", i, res.S[i], w)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-2 matrix: outer-product construction like the paper's Eq. 13
	// (constant-velocity coordinate matrix has rank 2).
	n, tt := 10, 14
	alpha := make([]float64, n)
	vel := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	for i := range alpha {
		alpha[i] = rng.Float64() * 1000
		vel[i] = rng.Float64() * 20
	}
	x := New(n, tt)
	for i := 0; i < n; i++ {
		for j := 0; j < tt; j++ {
			x.Set(i, j, alpha[i]+float64(j)*vel[i])
		}
	}
	res, err := SVD(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EffectiveRank(1e-9); got != 2 {
		t.Fatalf("constant-velocity matrix rank = %d, want 2 (σ=%v)", got, res.S[:4])
	}
}

func TestSVDEmptyMatrix(t *testing.T) {
	if _, err := SVD(New(0, 0)); err == nil {
		t.Fatal("want error for empty matrix")
	}
}

func TestTruncatedSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 8, 6)
	res, err := TruncatedSVD(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Cols() != 3 || res.V.Cols() != 3 || len(res.S) != 3 {
		t.Fatalf("truncated shapes wrong: %d %d %d", res.U.Cols(), res.V.Cols(), len(res.S))
	}
	// Eckart–Young: rank-3 truncation error equals sqrt of tail σ².
	full, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := res.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	diff, err := a.SubMat(back)
	if err != nil {
		t.Fatal(err)
	}
	var tail float64
	for _, s := range full.S[3:] {
		tail += s * s
	}
	if !almostEqual(diff.FrobeniusNorm2(), tail, 1e-6*math.Max(1, tail)) {
		t.Fatalf("Eckart–Young violated: err²=%v tail=%v", diff.FrobeniusNorm2(), tail)
	}
	if _, err := TruncatedSVD(a, 0); err == nil {
		t.Fatal("want error for rank 0")
	}
	over, err := TruncatedSVD(a, 99)
	if err != nil || len(over.S) != 6 {
		t.Fatalf("over-truncation should clamp: %v, %v", over, err)
	}
}

func TestEnergyCDF(t *testing.T) {
	res := &SVDResult{S: []float64{6, 3, 1}}
	cdf := res.EnergyCDF()
	want := []float64{0.6, 0.9, 1.0}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-12) {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if res.RankForEnergy(0.85) != 2 {
		t.Fatalf("RankForEnergy(0.85) = %d, want 2", res.RankForEnergy(0.85))
	}
	if res.RankForEnergy(0.95) != 3 {
		t.Fatalf("RankForEnergy(0.95) = %d, want 3", res.RankForEnergy(0.95))
	}
	zero := &SVDResult{S: []float64{0, 0}}
	if cdf := zero.EnergyCDF(); cdf[0] != 0 || cdf[1] != 0 {
		t.Fatal("zero matrix CDF must be all zeros")
	}
	if (&SVDResult{S: nil}).EffectiveRank(1e-9) != 0 {
		t.Fatal("empty spectrum rank must be 0")
	}
}

func TestNuclearNorm(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 4)
	nn, err := NuclearNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(nn, 7, 1e-10) {
		t.Fatalf("nuclear norm = %v, want 7", nn)
	}
	if _, err := NuclearNorm(New(0, 0)); err == nil {
		t.Fatal("want error for empty matrix")
	}
}

// Property: singular values are invariant under transposition.
func TestPropertySVDTransposeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2+local.Intn(7), 2+local.Intn(7))
		ra, err1 := SVD(a)
		rt, err2 := SVD(a.T())
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range ra.S {
			if !almostEqual(ra.S[i], rt.S[i], 1e-8*math.Max(1, ra.S[0])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖²F = Σσ².
func TestPropertyFrobeniusEqualsSigmaSum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2+local.Intn(6), 2+local.Intn(6))
		res, err := SVD(a)
		if err != nil {
			return false
		}
		var ss float64
		for _, s := range res.S {
			ss += s * s
		}
		return almostEqual(ss, a.FrobeniusNorm2(), 1e-8*math.Max(1, ss))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQRFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomDense(rng, 10, 4)
	qr, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !orthonormalColumns(qr.Q, 1e-10) {
		t.Fatal("Q columns not orthonormal")
	}
	back, err := qr.Q.Mul(qr.R)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a, 1e-10) {
		t.Fatal("Q·R != A")
	}
	// R upper triangular.
	for i := 1; i < qr.R.Rows(); i++ {
		for j := 0; j < i; j++ {
			if math.Abs(qr.R.At(i, j)) > 1e-12 {
				t.Fatalf("R(%d,%d) = %v not zero", i, j, qr.R.At(i, j))
			}
		}
	}
	if _, err := QR(New(2, 5)); err == nil {
		t.Fatal("want error for wide matrix")
	}
	if _, err := QR(New(0, 0)); err == nil {
		t.Fatal("want error for empty matrix")
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomDense(rng, 30, 3)
	truth := []float64{2, -1, 0.5}
	b := make([]float64, 30)
	for i := 0; i < 30; i++ {
		for j, c := range truth {
			b[i] += a.At(i, j) * c
		}
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range truth {
		if !almostEqual(x[j], c, 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], c)
		}
	}
	if _, err := LeastSquares(a, make([]float64, 2)); err == nil {
		t.Fatal("want shape error for wrong rhs")
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r, _ := NewFromRows([][]float64{{2, 1}, {0, 4}})
	x, err := SolveUpperTriangular(r, []float64{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[1], 2, 1e-12) || !almostEqual(x[0], 1.5, 1e-12) {
		t.Fatalf("solution = %v", x)
	}
	sing, _ := NewFromRows([][]float64{{1, 1}, {0, 0}})
	if _, err := SolveUpperTriangular(sing, []float64{1, 1}); err == nil {
		t.Fatal("want singularity error")
	}
	if _, err := SolveUpperTriangular(New(2, 3), []float64{1, 1}); err == nil {
		t.Fatal("want shape error for non-square")
	}
	if _, err := SolveUpperTriangular(Identity(2), []float64{1}); err == nil {
		t.Fatal("want shape error for rhs")
	}
}

package mat

import (
	"fmt"
	"math"
)

// QRResult holds the thin QR factorization A = Q·R of an r×c matrix with
// r ≥ c: Q is r×c with orthonormal columns and R is c×c upper triangular.
type QRResult struct {
	Q *Dense
	R *Dense
}

// QR computes the thin QR factorization of m via modified Gram–Schmidt with
// one re-orthogonalization pass ("twice is enough"), which is stable for the
// well-conditioned, moderate-size matrices this project handles.
// It returns ErrShape if m has more columns than rows or is empty.
func QR(m *Dense) (*QRResult, error) {
	if m.IsEmpty() {
		return nil, fmt.Errorf("%w: QR of empty matrix", ErrShape)
	}
	if m.rows < m.cols {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m.rows, m.cols)
	}
	n, c := m.rows, m.cols
	q := m.Clone()
	r := New(c, c)

	colDot := func(a, b int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += q.data[i*c+a] * q.data[i*c+b]
		}
		return s
	}
	for j := 0; j < c; j++ {
		// Two MGS passes against all previous columns.
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				proj := colDot(k, j)
				r.data[k*c+j] += proj
				for i := 0; i < n; i++ {
					q.data[i*c+j] -= proj * q.data[i*c+k]
				}
			}
		}
		norm := math.Sqrt(colDot(j, j))
		r.data[j*c+j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < n; i++ {
				q.data[i*c+j] *= inv
			}
		}
	}
	return &QRResult{Q: q, R: r}, nil
}

// SolveUpperTriangular solves R·x = b for upper-triangular R by back
// substitution. It returns ErrShape for non-square R or mismatched b, and
// an error when R is numerically singular.
func SolveUpperTriangular(r *Dense, b []float64) ([]float64, error) {
	if r.rows != r.cols {
		return nil, fmt.Errorf("%w: triangular solve with %dx%d", ErrShape, r.rows, r.cols)
	}
	if len(b) != r.rows {
		return nil, fmt.Errorf("%w: rhs length %d for %d unknowns", ErrShape, len(b), r.rows)
	}
	n := r.rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= r.data[i*n+j] * x[j]
		}
		diag := r.data[i*n+i]
		if math.Abs(diag) < 1e-300 {
			return nil, fmt.Errorf("mat: singular triangular system at row %d", i)
		}
		x[i] = sum / diag
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via thin QR.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("%w: rhs length %d for %d rows", ErrShape, len(b), a.rows)
	}
	qr, err := QR(a)
	if err != nil {
		return nil, err
	}
	// qtb = Qᵀ b
	qtb := make([]float64, a.cols)
	for j := 0; j < a.cols; j++ {
		var s float64
		for i := 0; i < a.rows; i++ {
			s += qr.Q.data[i*a.cols+j] * b[i]
		}
		qtb[j] = s
	}
	return SolveUpperTriangular(qr.R, qtb)
}

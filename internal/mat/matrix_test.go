package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewClampsNegativeDims(t *testing.T) {
	m := New(-1, -5)
	if !m.IsEmpty() {
		t.Fatal("negative dims should produce an empty matrix")
	}
}

func TestNewFromSlice(t *testing.T) {
	m, err := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("row-major layout broken: %v", m)
	}
	if _, err := NewFromSlice(2, 3, []float64{1}); err == nil {
		t.Fatal("want shape error for short slice")
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %v", m)
	}
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want shape error for ragged rows")
	}
	empty, err := NewFromRows(nil)
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("empty input should yield empty matrix, got %v, %v", empty, err)
	}
}

func TestIdentityAndOnes(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
	ones := Ones(2, 2)
	if ones.Sum() != 4 {
		t.Fatalf("Ones sum = %v", ones.Sum())
	}
	filled := Filled(2, 3, 2.5)
	if filled.Sum() != 15 {
		t.Fatalf("Filled sum = %v", filled.Sum())
	}
}

func TestSetGetRowCol(t *testing.T) {
	m := New(2, 3)
	if err := m.SetRow(1, []float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCol(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Row(1); got[0] != 2 || got[2] != 9 {
		t.Fatalf("Row(1) = %v", got)
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("Col(0) = %v", got)
	}
	if err := m.SetRow(5, []float64{1, 2, 3}); err == nil {
		t.Fatal("want index error")
	}
	if err := m.SetRow(0, []float64{1}); err == nil {
		t.Fatal("want shape error")
	}
	if err := m.SetCol(9, []float64{1, 2}); err == nil {
		t.Fatal("want index error")
	}
	if err := m.SetCol(0, []float64{1}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestRowViewAliases(t *testing.T) {
	m := New(2, 2)
	rv := m.RowView(0)
	rv[1] = 42
	if m.At(0, 1) != 42 {
		t.Fatal("RowView must alias matrix storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Ones(2, 2)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	dst := New(2, 2)
	src := Ones(2, 2)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if dst.Sum() != 4 {
		t.Fatalf("CopyFrom result sum = %v", dst.Sum())
	}
	if err := dst.CopyFrom(New(3, 3)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 0) != 3 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose content wrong: %v", tr)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	sum, err := a.AddMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 12 {
		t.Fatalf("sum = %v", sum)
	}
	diff, err := b.SubMat(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0) != 4 {
		t.Fatalf("diff = %v", diff)
	}
	if _, err := a.AddMat(New(1, 1)); err == nil {
		t.Fatal("want shape error on add")
	}
	if _, err := a.SubMat(New(1, 1)); err == nil {
		t.Fatal("want shape error on sub")
	}
	s := a.Scaled(2)
	if s.At(1, 0) != 6 || a.At(1, 0) != 3 {
		t.Fatal("Scaled must not mutate receiver")
	}
	a.Scale(10)
	if a.At(0, 0) != 10 {
		t.Fatal("Scale must mutate in place")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := Ones(2, 2)
	b := Filled(2, 2, 2)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("AddInPlace got %v", a.At(0, 0))
	}
	if err := a.SubInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 {
		t.Fatalf("SubInPlace got %v", a.At(0, 0))
	}
	if err := a.AxpyInPlace(3, b); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 7 {
		t.Fatalf("AxpyInPlace got %v", a.At(1, 1))
	}
	if err := a.HadamardInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 14 {
		t.Fatalf("HadamardInPlace got %v", a.At(0, 0))
	}
	wrong := New(1, 1)
	if err := a.AddInPlace(wrong); err == nil {
		t.Fatal("want shape error")
	}
	if err := a.SubInPlace(wrong); err == nil {
		t.Fatal("want shape error")
	}
	if err := a.AxpyInPlace(1, wrong); err == nil {
		t.Fatal("want shape error")
	}
	if err := a.HadamardInPlace(wrong); err == nil {
		t.Fatal("want shape error")
	}
}

func TestHadamard(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{2, 0}, {1, 3}})
	h, err := a.Hadamard(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {3, 12}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if h.At(i, j) != want[i][j] {
				t.Fatalf("hadamard(%d,%d) = %v, want %v", i, j, h.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Hadamard(New(1, 1)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := NewFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("mul(%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("want shape error for 2x3 * 2x3")
	}
}

func TestMulInto(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := Identity(2)
	dst := New(2, 2)
	if err := a.MulInto(dst, b); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(a, 0) {
		t.Fatalf("A*I != A: %v", dst)
	}
	if err := a.MulInto(New(3, 3), b); err == nil {
		t.Fatal("want shape error for wrong dst")
	}
	if err := a.MulInto(a, b); err == nil {
		t.Fatal("want aliasing error")
	}
	if err := a.MulInto(dst, New(3, 2)); err == nil {
		t.Fatal("want shape error for wrong operand")
	}
}

func TestMulTAndTMulAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDense(rng, 5, 3)
	b := randomDense(rng, 4, 3)
	got, err := a.MulT(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Mul(b.T())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulT disagrees with explicit transpose")
	}

	c := randomDense(rng, 5, 4)
	got2, err := a.TMul(c)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := a.T().Mul(c)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want2, 1e-12) {
		t.Fatal("TMul disagrees with explicit transpose")
	}

	if _, err := a.MulT(New(2, 9)); err == nil {
		t.Fatal("want shape error in MulT")
	}
	if _, err := a.TMul(New(9, 2)); err == nil {
		t.Fatal("want shape error in TMul")
	}
}

func TestNorms(t *testing.T) {
	m, _ := NewFromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("‖m‖F = %v", m.FrobeniusNorm())
	}
	if !almostEqual(m.FrobeniusNorm2(), 25, 1e-12) {
		t.Fatalf("‖m‖F² = %v", m.FrobeniusNorm2())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	huge := Filled(2, 2, 1e200)
	if math.IsInf(huge.FrobeniusNorm(), 1) {
		t.Fatal("FrobeniusNorm overflowed for large values")
	}
}

func TestDot(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 70 {
		t.Fatalf("dot = %v, want 70", d)
	}
	if _, err := a.Dot(New(1, 1)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestReductionHelpers(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, -2}, {3, 4}})
	if m.Sum() != 6 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 1.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if n := m.CountIf(func(v float64) bool { return v > 0 }); n != 3 {
		t.Fatalf("CountIf = %d", n)
	}
	if New(0, 0).Mean() != 0 {
		t.Fatal("Mean of empty must be 0")
	}
}

func TestApplyAndMap(t *testing.T) {
	m := Ones(2, 2)
	m.Apply(func(i, j int, v float64) float64 { return v + float64(i*10+j) })
	if m.At(1, 1) != 12 {
		t.Fatalf("Apply got %v", m.At(1, 1))
	}
	doubled := m.Map(func(v float64) float64 { return 2 * v })
	if doubled.At(1, 1) != 24 || m.At(1, 1) != 12 {
		t.Fatal("Map must not mutate receiver")
	}
}

func TestSlice(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s, err := m.Slice(1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 2 || s.Cols() != 2 || s.At(0, 0) != 4 || s.At(1, 1) != 8 {
		t.Fatalf("slice = %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 4 {
		t.Fatal("Slice must copy")
	}
	if _, err := m.Slice(0, 4, 0, 1); err == nil {
		t.Fatal("want index error")
	}
}

func TestEqual(t *testing.T) {
	a := Ones(2, 2)
	b := Ones(2, 2)
	b.Set(0, 0, 1.0000001)
	if !a.Equal(b, 1e-3) {
		t.Fatal("matrices within tolerance must compare equal")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("matrices beyond tolerance must compare unequal")
	}
	if a.Equal(New(1, 1), 1) {
		t.Fatal("different shapes must compare unequal")
	}
}

func TestStringRendering(t *testing.T) {
	small := Ones(2, 2)
	if got := small.String(); got == "" {
		t.Fatal("small matrix should render elements")
	}
	big := Ones(50, 50)
	if got := big.String(); len(got) > 200 {
		t.Fatalf("large matrix should render a summary, got %d bytes", len(got))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	New(1, 1).At(2, 0)
}

// Property: (AᵀBᵀ)ᵀ = B·A for random matrices.
func TestPropertyTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := 2 + local.Intn(6)
		k := 2 + local.Intn(6)
		c := 2 + local.Intn(6)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, c)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		return ab.T().Equal(btat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖²F equals ⟨A, A⟩.
func TestPropertyNormMatchesSelfDot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 1+local.Intn(8), 1+local.Intn(8))
		d, err := a.Dot(a)
		if err != nil {
			return false
		}
		return almostEqual(d, a.FrobeniusNorm2(), 1e-9*math.Max(1, d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hadamard product is commutative.
func TestPropertyHadamardCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r, c := 1+local.Intn(6), 1+local.Intn(6)
		a := randomDense(rng, r, c)
		b := randomDense(rng, r, c)
		ab, err1 := a.Hadamard(b)
		ba, err2 := b.Hadamard(a)
		return err1 == nil && err2 == nil && ab.Equal(ba, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package mat

import (
	"math/rand"
	"runtime"
	"testing"
)

// sparseRandom returns an r×c matrix with ~20% exact zeros so the kernels'
// zero-skip branches are exercised by the parity tests.
func sparseRandom(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.data {
		if rng.Intn(5) == 0 {
			continue
		}
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// TestParallelKernelsBitIdenticalToSequential verifies that Mul, MulT and
// TMul produce bit-identical results at every parallelism level: the
// row-block split never reorders any per-element accumulation.
func TestParallelKernelsBitIdenticalToSequential(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 7, 5},   // single-row edge
		{5, 7, 1},   // single-column edge
		{1, 300, 1}, // both edges, above the flop cutoff per row
		{3, 2, 4},
		{64, 33, 17},
		{158, 240, 40}, // paper scale
		{130, 3, 129},
	}
	for _, sh := range shapes {
		a := sparseRandom(sh.m, sh.k, int64(sh.m*1000+sh.k))
		bb := sparseRandom(sh.k, sh.n, int64(sh.k*1000+sh.n))
		bt := sparseRandom(sh.n, sh.k, int64(sh.n*1000+sh.k+1))
		at := sparseRandom(sh.k, sh.m, int64(sh.k*1000+sh.m+2))

		SetParallelism(1)
		seqMul, err := a.Mul(bb)
		if err != nil {
			t.Fatal(err)
		}
		seqMulT, err := a.MulT(bt)
		if err != nil {
			t.Fatal(err)
		}
		seqTMul, err := at.TMul(bb)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{2, 3, 8} {
			SetParallelism(workers)
			parMul, err := a.Mul(bb)
			if err != nil {
				t.Fatal(err)
			}
			if !parMul.Equal(seqMul, 0) {
				t.Fatalf("Mul %dx%dx%d: %d-worker result differs from sequential", sh.m, sh.k, sh.n, workers)
			}
			parMulT, err := a.MulT(bt)
			if err != nil {
				t.Fatal(err)
			}
			if !parMulT.Equal(seqMulT, 0) {
				t.Fatalf("MulT %dx%dx%d: %d-worker result differs from sequential", sh.m, sh.k, sh.n, workers)
			}
			parTMul, err := at.TMul(bb)
			if err != nil {
				t.Fatal(err)
			}
			if !parTMul.Equal(seqTMul, 0) {
				t.Fatalf("TMul %dx%dx%d: %d-worker result differs from sequential", sh.m, sh.k, sh.n, workers)
			}
		}
	}
}

// TestIntoKernelsMatchAllocatingForms verifies every *Into variant against
// its allocating counterpart, including reuse of a dirty destination.
func TestIntoKernelsMatchAllocatingForms(t *testing.T) {
	a := sparseRandom(13, 21, 1)
	bb := sparseRandom(21, 9, 2)
	bt := sparseRandom(9, 21, 3)
	same := sparseRandom(13, 21, 4)

	mulWant, _ := a.Mul(bb)
	dst := Filled(13, 9, 42) // dirty destination must be fully overwritten
	if err := a.MulInto(dst, bb); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(mulWant, 0) {
		t.Fatal("MulInto disagrees with Mul")
	}

	mulTWant, _ := a.MulT(bt)
	dst = Filled(13, 9, 42)
	if err := a.MulTInto(dst, bt); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(mulTWant, 0) {
		t.Fatal("MulTInto disagrees with MulT")
	}

	tMulWant, _ := a.TMul(same)
	dst = Filled(21, 21, 42)
	if err := a.TMulInto(dst, same); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(tMulWant, 0) {
		t.Fatal("TMulInto disagrees with TMul")
	}

	hadWant, _ := a.Hadamard(same)
	dst = Filled(13, 21, 42)
	if err := a.HadamardInto(dst, same); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(hadWant, 0) {
		t.Fatal("HadamardInto disagrees with Hadamard")
	}

	subWant, _ := a.SubMat(same)
	dst = Filled(13, 21, 42)
	if err := a.SubInto(dst, same); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(subWant, 0) {
		t.Fatal("SubInto disagrees with SubMat")
	}

	axpyWant := a.Clone()
	if err := axpyWant.AxpyInPlace(-2.5, same); err != nil {
		t.Fatal(err)
	}
	dst = Filled(13, 21, 42)
	if err := a.AxpyInto(dst, -2.5, same); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(axpyWant, 0) {
		t.Fatal("AxpyInto disagrees with AxpyInPlace")
	}

	// Element-wise Into ops allow aliasing the destination with an operand.
	aliased := a.Clone()
	if err := aliased.HadamardInto(aliased, same); err != nil {
		t.Fatal(err)
	}
	if !aliased.Equal(hadWant, 0) {
		t.Fatal("aliased HadamardInto disagrees with Hadamard")
	}
}

// TestIntoKernelsRejectBadShapesAndAliases covers the error paths of the
// non-allocating kernels.
func TestIntoKernelsRejectBadShapesAndAliases(t *testing.T) {
	a := New(4, 6)
	b := New(6, 3)
	if err := a.MulTInto(New(4, 4), b); err == nil {
		t.Fatal("MulTInto with mismatched inner dims must fail")
	}
	c := New(4, 6)
	if err := a.MulTInto(New(3, 3), c); err == nil {
		t.Fatal("MulTInto with wrong dst shape must fail")
	}
	if err := a.MulTInto(a, c); err == nil {
		t.Fatal("MulTInto with aliased dst must fail")
	}
	if err := a.TMulInto(New(2, 2), c); err == nil {
		t.Fatal("TMulInto with wrong dst shape must fail")
	}
	if err := a.TMulInto(a, c); err == nil {
		t.Fatal("TMulInto with aliased dst must fail")
	}
	if err := a.HadamardInto(New(4, 6), b); err == nil {
		t.Fatal("HadamardInto with mismatched operands must fail")
	}
	if err := a.SubInto(New(2, 2), c); err == nil {
		t.Fatal("SubInto with wrong dst shape must fail")
	}
	if err := a.AxpyInto(New(2, 2), 1, c); err == nil {
		t.Fatal("AxpyInto with wrong dst shape must fail")
	}
}

// TestSetParallelism covers the knob semantics: previous value returned,
// non-positive resets to GOMAXPROCS.
func TestSetParallelism(t *testing.T) {
	orig := Parallelism()
	defer SetParallelism(orig)
	if prev := SetParallelism(3); prev != orig {
		t.Fatalf("SetParallelism returned %d, want previous value %d", prev, orig)
	}
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism() after reset = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

package mat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes m as comma-separated rows with full float64 precision.
func WriteCSV(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return fmt.Errorf("write csv: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return fmt.Errorf("write csv: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	return nil
}

// ReadCSV parses a matrix from comma-separated rows. Blank lines are
// skipped; all rows must have the same number of fields.
func ReadCSV(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rows [][]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("read csv line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("read csv: %w", ErrEmptyInput)
	}
	m, err := NewFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	return m, nil
}

package mat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV writes m as comma-separated rows with full float64 precision.
func WriteCSV(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return fmt.Errorf("write csv: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return fmt.Errorf("write csv: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	return nil
}

// ReadCSV parses a matrix from comma-separated rows. Blank lines are
// skipped; all rows must have the same number of fields.
func ReadCSV(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rows [][]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("read csv line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("read csv: %w", ErrEmptyInput)
	}
	m, err := NewFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	return m, nil
}

// Binary matrix framing: "MATB" magic, uint32 rows, uint32 cols, then
// rows*cols float64 values row-major, all little-endian. The format carries
// no checksum of its own — durable containers (the WAL checkpoint) wrap it
// in their own CRC.
var binaryMagic = [4]byte{'M', 'A', 'T', 'B'}

// maxBinaryDim bounds each dimension a binary header may claim, so a
// corrupted header cannot drive a multi-gigabyte allocation before the
// caller's integrity check gets a chance to run.
const maxBinaryDim = 1 << 24

// WriteBinary writes m in the binary matrix framing.
func WriteBinary(w io.Writer, m *Dense) error {
	hdr := make([]byte, 12)
	copy(hdr, binaryMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.cols))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("write binary: %w", err)
	}
	buf := make([]byte, 8*m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("write binary: %w", err)
		}
	}
	return nil
}

// ReadBinary parses one binary-framed matrix from r, leaving the reader
// positioned immediately after it.
func ReadBinary(r io.Reader) (*Dense, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("read binary header: %w", err)
	}
	if [4]byte(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("read binary: bad magic %q", hdr[:4])
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows > maxBinaryDim || cols > maxBinaryDim {
		return nil, fmt.Errorf("read binary: implausible shape %dx%d", rows, cols)
	}
	// Grow storage row by row rather than trusting the header with one big
	// up-front allocation: a corrupted header can claim a petabyte-scale
	// shape, and the bytes behind it are the only credible witness.
	data := make([]float64, 0, min(rows*cols, 1<<16))
	buf := make([]byte, 8*cols)
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("read binary row %d: %w", i, err)
		}
		for j := 0; j < cols; j++ {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:])))
		}
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

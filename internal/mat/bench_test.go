package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(r, c int) *Dense {
	rng := rand.New(rand.NewSource(1))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMul158x240(b *testing.B) {
	a := benchMatrix(158, 240)
	bb := benchMatrix(240, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Mul(bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulT158x240(b *testing.B) {
	l := benchMatrix(158, 40)
	r := benchMatrix(240, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.MulT(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVDPaperScale(b *testing.B) {
	m := benchMatrix(158, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrobeniusNorm(b *testing.B) {
	m := benchMatrix(158, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.FrobeniusNorm2()
	}
}

package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchMatrix(r, c int) *Dense {
	rng := rand.New(rand.NewSource(1))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMul158x240(b *testing.B) {
	a := benchMatrix(158, 240)
	bb := benchMatrix(240, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Mul(bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulT158x240(b *testing.B) {
	l := benchMatrix(158, 40)
	r := benchMatrix(240, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.MulT(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelsFleetScale measures the three factor-product kernels at
// fleet scale (1000 participants × 960 slots, rank 40) across worker
// budgets, via the allocation-free Into forms. Row-block scaling should be
// near linear up to the core count.
func BenchmarkKernelsFleetScale(b *testing.B) {
	if testing.Short() {
		b.Skip("fleet-scale kernels skipped in short mode")
	}
	const n, t, rank = 1000, 960, 40
	l := benchMatrix(n, rank)
	r := benchMatrix(t, rank)
	e := benchMatrix(n, t)
	kernels := []struct {
		name string
		dst  *Dense
		run  func(dst *Dense) error
	}{
		{"MulT_nxt", New(n, t), func(dst *Dense) error { return l.MulTInto(dst, r) }},    // L·Rᵀ
		{"Mul_nxr", New(n, rank), func(dst *Dense) error { return e.MulInto(dst, r) }},   // E·R
		{"TMul_txr", New(t, rank), func(dst *Dense) error { return e.TMulInto(dst, l) }}, // Eᵀ·L
	}
	for _, k := range kernels {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", k.name, workers), func(b *testing.B) {
				defer SetParallelism(SetParallelism(workers))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := k.run(k.dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSVDPaperScale(b *testing.B) {
	m := benchMatrix(158, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrobeniusNorm(b *testing.B) {
	m := benchMatrix(158, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.FrobeniusNorm2()
	}
}

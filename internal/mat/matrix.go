// Package mat provides the dense linear-algebra substrate used throughout
// the I(TS,CS) reproduction: a row-major dense matrix of float64 with the
// arithmetic, norms, and factorizations (QR, one-sided Jacobi SVD) that the
// compressive-sensing reconstruction and the evaluation harness require.
//
// The package is deliberately self-contained (standard library only) and
// tuned for the paper's scale — hundreds of rows and columns — where simple
// cache-friendly loops beat sophisticated blocking.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Common argument errors returned by matrix operations.
var (
	// ErrShape indicates that operand dimensions are incompatible.
	ErrShape = errors.New("mat: incompatible matrix shapes")
	// ErrIndex indicates an out-of-range element access.
	ErrIndex = errors.New("mat: index out of range")
	// ErrEmptyInput indicates that a decoder received no data.
	ErrEmptyInput = errors.New("mat: empty input")
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. All mutating methods operate
// in place on the receiver; constructors and derived-value methods return
// fresh matrices that share no storage with their inputs.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized r×c matrix.
// It panics only via make on absurd sizes; negative dimensions are clamped
// to zero to keep the zero value semantics.
func New(r, c int) *Dense {
	if r < 0 {
		r = 0
	}
	if c < 0 {
		c = 0
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r×c matrix that copies the provided row-major data.
// It returns ErrShape if len(data) != r*c.
func NewFromSlice(r, c int, data []float64) (*Dense, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("%w: %d values for %dx%d", ErrShape, len(data), r, c)
	}
	m := New(r, c)
	copy(m.data, data)
	return m, nil
}

// NewFromRows builds a matrix from a slice of equally sized rows.
// It returns ErrShape when rows are ragged or empty in a way that prevents
// inferring the column count.
func NewFromRows(rows [][]float64) (*Dense, error) {
	r := len(rows)
	if r == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d values, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Ones returns an r×c matrix filled with 1.
func Ones(r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = 1
	}
	return m
}

// Filled returns an r×c matrix with every element set to v.
func Filled(r, c int, v float64) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = v
	}
	return m
}

// Dims reports the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows reports the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Dense) Cols() int { return m.cols }

// IsEmpty reports whether the matrix has no elements.
func (m *Dense) IsEmpty() bool { return m.rows == 0 || m.cols == 0 }

// At returns the element at row i, column j.
// Access outside the matrix bounds panics, mirroring slice semantics:
// such access is a programming error, not a recoverable condition.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds delta to the element at row i, column j.
func (m *Dense) Add(i, j int, delta float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += delta
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns the backing slice of row i without copying.
// The caller must not grow the slice; writes mutate the matrix.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies vals into row i. It returns ErrShape on length mismatch.
func (m *Dense) SetRow(i int, vals []float64) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("%w: row %d of %d", ErrIndex, i, m.rows)
	}
	if len(vals) != m.cols {
		return fmt.Errorf("%w: %d values for %d columns", ErrShape, len(vals), m.cols)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
	return nil
}

// SetCol copies vals into column j. It returns ErrShape on length mismatch.
func (m *Dense) SetCol(j int, vals []float64) error {
	if j < 0 || j >= m.cols {
		return fmt.Errorf("%w: col %d of %d", ErrIndex, j, m.cols)
	}
	if len(vals) != m.rows {
		return fmt.Errorf("%w: %d values for %d rows", ErrShape, len(vals), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = vals[i]
	}
	return nil
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src.
// It returns ErrShape when dimensions differ.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: copy %dx%d into %dx%d", ErrShape, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() { m.Fill(0) }

// Apply replaces every element with f(i, j, value).
func (m *Dense) Apply(f func(i, j int, v float64) float64) {
	idx := 0
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			m.data[idx] = f(i, j, m.data[idx])
			idx++
		}
	}
}

// Map returns a new matrix whose elements are f applied to m's elements.
func (m *Dense) Map(f func(v float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[base+j]
		}
	}
	return out
}

// Scale multiplies every element in place by s and returns m for chaining.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Scaled returns a new matrix equal to s*m.
func (m *Dense) Scaled(s float64) *Dense {
	out := m.Clone()
	out.Scale(s)
	return out
}

// AddMat returns m + other as a new matrix.
func (m *Dense) AddMat(other *Dense) (*Dense, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + other.data[i]
	}
	return out, nil
}

// SubMat returns m - other as a new matrix.
func (m *Dense) SubMat(other *Dense) (*Dense, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - other.data[i]
	}
	return out, nil
}

// AddInPlace adds other into m element-wise.
func (m *Dense) AddInPlace(other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: add %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] += other.data[i]
	}
	return nil
}

// SubInPlace subtracts other from m element-wise.
func (m *Dense) SubInPlace(other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: sub %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] -= other.data[i]
	}
	return nil
}

// SubInto computes dst = m - other without allocating. All three matrices
// must share the same shape; dst may alias either operand.
func (m *Dense) SubInto(dst, other *Dense) error {
	if err := sameShape3(dst, m, other, "sub"); err != nil {
		return err
	}
	for i := range m.data {
		dst.data[i] = m.data[i] - other.data[i]
	}
	return nil
}

// AxpyInto computes dst = m + alpha*other without allocating. All three
// matrices must share the same shape; dst may alias either operand.
func (m *Dense) AxpyInto(dst *Dense, alpha float64, other *Dense) error {
	if err := sameShape3(dst, m, other, "axpy"); err != nil {
		return err
	}
	for i := range m.data {
		dst.data[i] = m.data[i] + alpha*other.data[i]
	}
	return nil
}

// sameShape3 validates that dst, a and b all share one shape.
func sameShape3(dst, a, b *Dense, op string) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: %s %dx%d and %dx%d", ErrShape, op, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != a.cols {
		return fmt.Errorf("%w: %s dst %dx%d, want %dx%d", ErrShape, op, dst.rows, dst.cols, a.rows, a.cols)
	}
	return nil
}

// AxpyInPlace computes m += alpha*other element-wise.
func (m *Dense) AxpyInPlace(alpha float64, other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: axpy %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] += alpha * other.data[i]
	}
	return nil
}

// Hadamard returns the element-wise product m ∘ other.
func (m *Dense) Hadamard(other *Dense) (*Dense, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: hadamard %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] * other.data[i]
	}
	return out, nil
}

// HadamardInPlace multiplies m element-wise by other.
func (m *Dense) HadamardInPlace(other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: hadamard %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] *= other.data[i]
	}
	return nil
}

// HadamardInto computes dst = m ∘ other without allocating. All three
// matrices must share the same shape; dst may alias either operand.
func (m *Dense) HadamardInto(dst, other *Dense) error {
	if err := sameShape3(dst, m, other, "hadamard"); err != nil {
		return err
	}
	for i := range m.data {
		dst.data[i] = m.data[i] * other.data[i]
	}
	return nil
}

// Mul returns the matrix product m·other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, other.cols)
	mulInto(out, m, other)
	return out, nil
}

// MulInto computes dst = m·other without allocating; dst must be
// pre-sized to m.rows × other.cols and distinct from both operands.
func (m *Dense) MulInto(dst, other *Dense) error {
	if m.cols != other.rows {
		return fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	if dst.rows != m.rows || dst.cols != other.cols {
		return fmt.Errorf("%w: dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, m.rows, other.cols)
	}
	if dst == m || dst == other {
		return fmt.Errorf("%w: dst must not alias an operand", ErrShape)
	}
	mulInto(dst, m, other)
	return nil
}

// mulInto is the ikj-order kernel: cache friendly for row-major storage.
// Output rows are independent, so the work is split into row blocks; the
// per-element accumulation order matches the sequential loop exactly, so
// results are bit-identical at any parallelism level. The sequential
// branch avoids the closure so the hot path stays allocation-free.
func mulInto(dst, a, b *Dense) {
	if !parallelWorthwhile(a.rows, a.cols*b.cols) {
		mulIntoBlock(dst, a, b, 0, a.rows)
		return
	}
	ParallelRows(a.rows, a.cols*b.cols, func(lo, hi int) {
		mulIntoBlock(dst, a, b, lo, hi)
	})
}

func mulIntoBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			// Re-slice to len(drow) so the compiler can prove drow[j] is
			// in bounds (b.cols == dst.cols is the caller's contract, but
			// invisible here).
			brow := b.data[k*b.cols:][:len(drow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulT returns m·otherᵀ without materializing the transpose.
func (m *Dense) MulT(other *Dense) (*Dense, error) {
	if m.cols != other.cols {
		return nil, fmt.Errorf("%w: mulT %dx%d by (%dx%d)ᵀ", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, other.rows)
	mulTInto(out, m, other)
	return out, nil
}

// MulTInto computes dst = m·otherᵀ without allocating; dst must be
// pre-sized to m.rows × other.rows and distinct from both operands.
func (m *Dense) MulTInto(dst, other *Dense) error {
	if m.cols != other.cols {
		return fmt.Errorf("%w: mulT %dx%d by (%dx%d)ᵀ", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	if dst.rows != m.rows || dst.cols != other.rows {
		return fmt.Errorf("%w: dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, m.rows, other.rows)
	}
	if dst == m || dst == other {
		return fmt.Errorf("%w: dst must not alias an operand", ErrShape)
	}
	mulTInto(dst, m, other)
	return nil
}

// mulTInto is the dot-product kernel for a·bᵀ, row-block parallel over the
// output rows.
func mulTInto(dst, a, b *Dense) {
	if !parallelWorthwhile(a.rows, a.cols*b.rows) {
		mulTIntoBlock(dst, a, b, 0, a.rows)
		return
	}
	ParallelRows(a.rows, a.cols*b.rows, func(lo, hi int) {
		mulTIntoBlock(dst, a, b, lo, hi)
	})
}

func mulTIntoBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := 0; j < b.rows; j++ {
			// Re-slice to len(arow) so the compiler can prove brow[k] is
			// in bounds (a.cols == b.cols is the caller's contract, but
			// invisible here).
			brow := b.data[j*b.cols:][:len(arow)]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// TMul returns mᵀ·other without materializing the transpose.
func (m *Dense) TMul(other *Dense) (*Dense, error) {
	if m.rows != other.rows {
		return nil, fmt.Errorf("%w: tmul (%dx%d)ᵀ by %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.cols, other.cols)
	tMulInto(out, m, other)
	return out, nil
}

// TMulInto computes dst = mᵀ·other without allocating; dst must be
// pre-sized to m.cols × other.cols and distinct from both operands.
func (m *Dense) TMulInto(dst, other *Dense) error {
	if m.rows != other.rows {
		return fmt.Errorf("%w: tmul (%dx%d)ᵀ by %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	if dst.rows != m.cols || dst.cols != other.cols {
		return fmt.Errorf("%w: dst %dx%d, want %dx%d", ErrShape, dst.rows, dst.cols, m.cols, other.cols)
	}
	if dst == m || dst == other {
		return fmt.Errorf("%w: dst must not alias an operand", ErrShape)
	}
	tMulInto(dst, m, other)
	return nil
}

// tMulInto accumulates aᵀ·b. The output is partitioned by rows (columns of
// a); every block scans all rows of a and b, so the k-order of the
// accumulation — and therefore the floating-point result — is identical to
// the sequential loop.
func tMulInto(dst, a, b *Dense) {
	if !parallelWorthwhile(a.cols, a.rows*b.cols) {
		tMulIntoBlock(dst, a, b, 0, a.cols)
		return
	}
	ParallelRows(a.cols, a.rows*b.cols, func(lo, hi int) {
		tMulIntoBlock(dst, a, b, lo, hi)
	})
}

func tMulIntoBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := range drow {
			drow[j] = 0
		}
	}
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			// Re-slice to len(brow) so the compiler can prove drow[j] is
			// in bounds (dst.cols == b.cols is the caller's contract, but
			// invisible here).
			drow := dst.data[i*dst.cols:][:len(brow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Dense) FrobeniusNorm() float64 {
	// Scaled accumulation avoids overflow for large values.
	var scale, ssq float64 = 0, 1
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobeniusNorm2 returns ‖m‖²_F (the plain sum of squares).
func (m *Dense) FrobeniusNorm2() float64 {
	var sum float64
	for _, v := range m.data {
		sum += v * v
	}
	return sum
}

// Dot returns the Frobenius inner product ⟨m, other⟩ = Σ m_ij·other_ij.
func (m *Dense) Dot(other *Dense) (float64, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return 0, fmt.Errorf("%w: dot %dx%d and %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	var sum float64
	for i := range m.data {
		sum += m.data[i] * other.data[i]
	}
	return sum, nil
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	var best float64
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var sum float64
	for _, v := range m.data {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Dense) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// CountIf returns how many elements satisfy pred.
func (m *Dense) CountIf(pred func(v float64) bool) int {
	var n int
	for _, v := range m.data {
		if pred(v) {
			n++
		}
	}
	return n
}

// Equal reports whether the matrices have identical shape and all elements
// within tol of each other.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// Slice returns a copy of the sub-matrix rows [r0,r1) × cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) (*Dense, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 > r1 || c0 > c1 {
		return nil, fmt.Errorf("%w: slice [%d:%d, %d:%d] of %dx%d", ErrIndex, r0, r1, c0, c1, m.rows, m.cols)
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out, nil
}

// RawData returns the backing slice. The caller must not resize it;
// mutations are visible in the matrix. Intended for hot loops in-package
// consumers and encoders.
func (m *Dense) RawData() []float64 { return m.data }

// String renders small matrices fully and large ones as a summary.
func (m *Dense) String() string {
	const maxRender = 12
	if m.rows > maxRender || m.cols > maxRender {
		return fmt.Sprintf("Dense(%dx%d, ‖·‖F=%.4g)", m.rows, m.cols, m.FrobeniusNorm())
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(m.data[i*m.cols+j], 'g', 6, 64))
		}
	}
	return b.String()
}

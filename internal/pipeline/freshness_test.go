package pipeline

import (
	"testing"
	"time"

	"itscs/internal/fault"
	"itscs/internal/mcs"
	"itscs/internal/metrics"
)

// freshCfg is a small engine configuration driven by a virtual clock, so
// freshness tests control every timestamp the histograms observe.
func freshCfg(clock fault.Clock) Config {
	cfg := DefaultConfig()
	cfg.Participants = 3
	cfg.WindowSlots = 4
	cfg.HopSlots = 4
	cfg.Workers = 1
	cfg.Clock = clock
	return cfg
}

// stamped builds a report stamped at the clock's current instant, the way
// the serve daemon's ingest door would.
func stamped(clock fault.Clock, fleet string, p, slot int) mcs.Report {
	r := mcs.Report{Fleet: fleet, Participant: p, Slot: slot, X: 1, Y: 2}
	mcs.StampIngest(&r, clock.Now(), mcs.OriginDirect)
	return r
}

// drain closes the engine and collects every published result.
func drain(t *testing.T, e *Engine, ch <-chan *WindowResult) []*WindowResult {
	t.Helper()
	e.Close()
	var out []*WindowResult
	deadline := time.After(30 * time.Second)
	for {
		select {
		case res, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, res)
		case <-deadline:
			t.Fatal("timed out draining results")
		}
	}
}

// TestFreshnessAccounting streams a corrupted synthetic fleet through one
// full detection window on a virtual clock, advancing 100ms per slot, and
// checks the whole freshness surface: the stamped/unstamped partition, the
// age-at-close and ingest-to-result histograms (engine-wide and per fleet),
// the per-fleet lag fields, and the end-to-end trace chain addressable by
// the propagated trace ID.
func TestFreshnessAccounting(t *testing.T) {
	const (
		n = 16
		w = 60
	)
	clock := fault.NewVirtualClock(time.Unix(1_700_000_000, 0))
	cfg := freshCfg(clock)
	cfg.Participants = n
	cfg.WindowSlots = w
	cfg.HopSlots = w
	cfg.TraceDepth = 2048 // retain every trace; eviction is tested in obs
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := e.Subscribe(16)
	defer cancel()

	fleet, res := fixture(t, n, w+1, 0.1, 0.1)
	reports := fixtureReports("cab", fleet, res)
	// Stamp everything except participant n-1's reports (an unstamped
	// legacy feed), advancing the clock one tick per slot so every stamp is
	// distinct and ages are exactly computable.
	const tick = 100 * time.Millisecond
	var (
		first        mcs.Report // first stamped slot-0 report
		slot         = 0
		stampedSent  uint64
		stampedInWin uint64
		wantSumMS    float64
	)
	closeUS := int64(w) * tick.Milliseconds() // close instant, ms after T
	for i := range reports {
		r := &reports[i]
		if r.Slot != slot {
			clock.Advance(time.Duration(r.Slot-slot) * tick)
			slot = r.Slot
		}
		if r.Participant == n-1 {
			continue
		}
		mcs.StampIngest(r, clock.Now(), mcs.OriginDirect)
		stampedSent++
		if r.Slot < w {
			stampedInWin++
			wantSumMS += float64(closeUS - int64(r.Slot)*tick.Milliseconds())
		}
		if first.TraceID == 0 && r.Slot == 0 {
			first = *r
		}
	}
	for _, r := range reports {
		if err := e.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	results := drain(t, e, ch)
	if len(results) == 0 {
		t.Fatal("no window results")
	}

	st := e.Stats()
	if st.ReportsStamped != stampedSent {
		t.Errorf("stamped = %d, want %d", st.ReportsStamped, stampedSent)
	}
	if st.ReportsStamped+st.ReportsUnstamped != st.Ingested {
		t.Errorf("stamped %d + unstamped %d != ingested %d", st.ReportsStamped, st.ReportsUnstamped, st.Ingested)
	}
	if st.ReportsUnstamped == 0 {
		t.Error("no unstamped reports counted; partition untested")
	}
	// Every stamped report is observed exactly once: window [0,w) cells at
	// its close, the slot-w stragglers when Close flushes the partial
	// window at the same (frozen) instant, aged 0.
	if st.AgeAtClose.Count != stampedSent {
		t.Errorf("age_at_close count = %d, want %d", st.AgeAtClose.Count, stampedSent)
	}
	if st.AgeAtClose.SumMS < wantSumMS-1 || st.AgeAtClose.SumMS > wantSumMS+1 {
		t.Errorf("age_at_close sum = %.0fms, want %.0fms", st.AgeAtClose.SumMS, wantSumMS)
	}
	// Ingest→result is observed per processed window; the full window must
	// have processed, and the clock does not move during detection, so each
	// observed latency equals the age at close.
	if st.IngestToResult.Count < stampedInWin {
		t.Errorf("ingest_to_result count = %d, want >= %d", st.IngestToResult.Count, stampedInWin)
	}

	ff, ok := st.Freshness["cab"]
	if !ok {
		t.Fatal("no per-fleet freshness for cab")
	}
	if ff.AgeAtClose.Count != st.AgeAtClose.Count {
		t.Errorf("fleet age_at_close count = %d, want %d", ff.AgeAtClose.Count, st.AgeAtClose.Count)
	}
	// Close flushed the partial [w,2w) window, so the watermark sits at 2w.
	if ff.WatermarkSlot != 2*w {
		t.Errorf("watermark slot = %d, want %d", ff.WatermarkSlot, 2*w)
	}
	if lag := ff.NextSeq - 1 - ff.LatestSeq; lag < 0 {
		t.Errorf("window lag = %d, want >= 0", lag)
	}
	sum := SummarizeFreshness(ff.AgeAtClose)
	if sum.Count != ff.AgeAtClose.Count || sum.P50MS <= 0 || sum.P99MS < sum.P50MS {
		t.Errorf("freshness summary = %+v, want monotone positive quantiles", sum)
	}

	// The first report's trace chains ingest → window_close → detect →
	// publish (no WAL in this engine) and is addressable by its trace ID.
	tr, ok := e.FindTrace("cab", first.TraceID)
	if !ok {
		t.Fatalf("trace %016x not retained", first.TraceID)
	}
	if tr.WindowSeq != 0 || tr.Origin != "direct" {
		t.Errorf("trace seq %d origin %q, want 0 direct", tr.WindowSeq, tr.Origin)
	}
	wantStages := []string{"ingest", "window_close", "detect", "publish"}
	if len(tr.Stages) != len(wantStages) {
		t.Fatalf("trace stages = %+v, want %v", tr.Stages, wantStages)
	}
	for i, s := range tr.Stages {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if i > 0 && s.AtUnixMicro < tr.Stages[i-1].AtUnixMicro {
			t.Errorf("stage %q at %d precedes %q", s.Name, s.AtUnixMicro, tr.Stages[i-1].Name)
		}
	}
	// The window span carries the exemplar trace ID, linking the two planes.
	spans, err := e.Trace("cab")
	if err != nil {
		t.Fatal(err)
	}
	linked := false
	for _, sp := range spans {
		if sp.Seq == 0 && sp.TraceID != "" {
			linked = true
		}
	}
	if !linked {
		t.Error("window 0's span carries no trace ID exemplar")
	}
}

// TestFreshnessReplayNoRestamp pins the replay contract: recovery replay
// re-delivers reports with their original stamps, so the stamped/unstamped
// partition is conserved and ages are measured against first contact — a
// replayed hour-old report ages an hour, it is not re-stamped young.
func TestFreshnessReplayNoRestamp(t *testing.T) {
	clock := fault.NewVirtualClock(time.Unix(1_700_000_000, 0))

	// Stamp the reports "an hour ago", as a prior life's door would have.
	var reps []mcs.Report
	for s := 0; s < 5; s++ {
		reps = append(reps, stamped(clock, "cab", 0, s))
	}
	unstamped := mcs.Report{Fleet: "cab", Participant: 1, Slot: 1, X: 9, Y: 9}
	clock.Advance(time.Hour)

	// A fresh engine — the next life — replays the log tail.
	e, err := New(freshCfg(clock))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := e.Subscribe(16)
	defer cancel()
	// The unstamped record replays before slot 4 arrives; slot 4 would close
	// window [0,4) and turn slot 1 late.
	for _, r := range reps[:4] {
		if err := e.Replay(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Replay(unstamped); err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(reps[4]); err != nil {
		t.Fatal(err)
	}
	drain(t, e, ch)

	st := e.Stats()
	if st.Replayed != 6 {
		t.Errorf("replayed = %d, want 6", st.Replayed)
	}
	if st.ReportsStamped != 5 || st.ReportsUnstamped != 1 {
		t.Errorf("partition after replay = %d stamped + %d unstamped, want 5 + 1",
			st.ReportsStamped, st.ReportsUnstamped)
	}
	if st.ReportsStamped+st.ReportsUnstamped != st.Ingested {
		t.Errorf("stamped %d + unstamped %d != ingested %d — partition broken by replay",
			st.ReportsStamped, st.ReportsUnstamped, st.Ingested)
	}
	// Every replayed report must age ≥ 1h: a re-stamp would register hot.
	if st.AgeAtClose.Count != 5 {
		t.Fatalf("age_at_close count = %d, want 5", st.AgeAtClose.Count)
	}
	hourMS := float64(time.Hour / time.Millisecond)
	if st.AgeAtClose.SumMS < 5*hourMS {
		t.Errorf("age_at_close sum = %.0fms, want >= %.0fms — replay re-stamped ages young",
			st.AgeAtClose.SumMS, 5*hourMS)
	}
	if p50 := metrics.Quantile(st.AgeAtClose, metrics.AgeBuckets, 0.5); p50 < 30*60*1000 {
		t.Errorf("p50 age = %.0fms, want >= 30min — replay re-stamped", p50)
	}

	// The replayed trace keeps its original ingest instant and records the
	// wal_commit hop as a replay.
	tr, ok := e.FindTrace("cab", reps[0].TraceID)
	if !ok {
		t.Fatalf("replayed trace %016x not retained", reps[0].TraceID)
	}
	if tr.Stages[0].Name != "ingest" || tr.Stages[0].AtUnixMicro != reps[0].IngestUnixMicro {
		t.Errorf("ingest stage = %+v, want the original stamp %d", tr.Stages[0], reps[0].IngestUnixMicro)
	}
	foundReplay := false
	for _, s := range tr.Stages {
		if s.Name == "wal_commit" && s.Detail == "replay" {
			foundReplay = true
		}
	}
	if !foundReplay {
		t.Errorf("trace stages %+v missing wal_commit(replay)", tr.Stages)
	}
}

// TestFreshnessConservedAcrossCheckpointRestore runs ingest → checkpoint →
// crash → restore → replay-tail and checks the invariants the sim harness
// asserts per life: the partition holds in the second life and replaying
// records already covered by the checkpoint neither double-counts stamps
// nor re-observes ages.
func TestFreshnessConservedAcrossCheckpointRestore(t *testing.T) {
	clock := fault.NewVirtualClock(time.Unix(1_700_000_000, 0))
	e1, err := New(freshCfg(clock))
	if err != nil {
		t.Fatal(err)
	}
	var reps []mcs.Report
	for s := 0; s < 3; s++ {
		reps = append(reps, stamped(clock, "cab", 0, s))
		clock.Advance(time.Second)
	}
	for _, r := range reps {
		if err := e1.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	e1.Abort() // crash

	// Life 2 restores the checkpoint, then the log tail replays everything
	// from index 0 — the records below the horizon must reject as
	// duplicates without touching the freshness partition.
	e2, err := New(freshCfg(clock))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := e2.Subscribe(16)
	defer cancel()
	if err := e2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		_ = e2.Replay(r) // duplicates of checkpointed cells
	}
	clock.Advance(time.Minute)
	more := stamped(clock, "cab", 0, 4) // closes window [0,4)
	if err := e2.Replay(more); err != nil {
		t.Fatal(err)
	}
	drain(t, e2, ch)

	st := e2.Stats()
	if st.ReportsStamped+st.ReportsUnstamped != st.Ingested {
		t.Errorf("life 2: stamped %d + unstamped %d != ingested %d",
			st.ReportsStamped, st.ReportsUnstamped, st.Ingested)
	}
	if st.ReportsStamped != 1 {
		t.Errorf("life 2 stamped = %d, want 1 (duplicates must not re-count)", st.ReportsStamped)
	}
	// The restored ring preserved the first life's stamps: the close
	// happened at T+63s, the checkpointed reports were stamped at T+0, T+1
	// and T+2, so their ages are 63+62+61 = 186s; the flushed slot-4 report
	// (stamped at the close instant) ages 0.
	if st.AgeAtClose.Count != 4 {
		t.Fatalf("age_at_close count = %d, want 4", st.AgeAtClose.Count)
	}
	if st.AgeAtClose.SumMS < 185_999 || st.AgeAtClose.SumMS > 186_001 {
		t.Errorf("age_at_close sum = %.0fms, want 186000ms (checkpointed stamps preserved)",
			st.AgeAtClose.SumMS)
	}
}

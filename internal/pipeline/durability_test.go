package pipeline

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"itscs/internal/mcs"
)

// fakeLog is an in-memory ReportLog for wiring tests.
type fakeLog struct {
	mu      sync.Mutex
	records []mcs.Report
	syncs   int
	fail    error // next Append returns this
}

func (f *fakeLog) Append(r mcs.Report) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		err := f.fail
		f.fail = nil
		return err
	}
	f.records = append(f.records, r)
	return nil
}

func (f *fakeLog) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	return nil
}

func (f *fakeLog) AppendedIndex() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return uint64(len(f.records))
}

func (f *fakeLog) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.records)
}

func TestIngestRejectsNonFinite(t *testing.T) {
	e, err := New(mechConfig(2, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bad := []mcs.Report{
		{Participant: 0, Slot: 0, X: math.NaN()},
		{Participant: 0, Slot: 0, Y: math.Inf(1)},
		{Participant: 1, Slot: 1, VX: math.Inf(-1)},
		{Participant: 1, Slot: 1, VY: math.NaN()},
	}
	for i, r := range bad {
		if err := e.Ingest(r); !errors.Is(err, mcs.ErrNonFinite) {
			t.Errorf("report %d: err = %v, want ErrNonFinite", i, err)
		}
	}
	// The same cells are still free: rejection must not have touched a ring.
	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 0, X: 1}); err != nil {
		t.Errorf("finite report after rejection: %v", err)
	}
	st := e.Stats()
	if st.NonFinite != uint64(len(bad)) || st.Rejected != uint64(len(bad)) || st.Ingested != 1 {
		t.Errorf("stats = non_finite %d rejected %d ingested %d, want %d/%d/1",
			st.NonFinite, st.Rejected, st.Ingested, len(bad), len(bad))
	}
}

// TestCloseFlushesPartialWindows pins the graceful-shutdown contract: reports
// accepted into a window that has not yet closed must still be detected on
// Close rather than silently discarded.
func TestCloseFlushesPartialWindows(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	cfg := mechConfig(n, w, h)
	fleet, res := fixture(t, n, w/2, 0.1, 0.1)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, cancel := e.Subscribe(4)
	defer cancel()
	streamFixture(t, e, "cab", fleet, res)

	e.Close() // drains: the half-full window must be flushed and processed

	select {
	case r, ok := <-results:
		if !ok {
			t.Fatal("no result before subscription closed")
		}
		if r.StartSlot != 0 || r.EndSlot != w || r.Observed == 0 {
			t.Errorf("flushed window = [%d,%d) observed %d", r.StartSlot, r.EndSlot, r.Observed)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("partial window never processed")
	}
	if st := e.Stats(); st.WindowsProcessed < 1 {
		t.Errorf("windows processed = %d, want >= 1", st.WindowsProcessed)
	}
}

func TestIngestWritesAheadToLog(t *testing.T) {
	log := &fakeLog{}
	cfg := mechConfig(2, 4, 2)
	cfg.Log = log
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 0, X: 1}); err != nil {
		t.Fatal(err)
	}
	// A duplicate is rejected by the shard but still logged first: the log
	// saw it before the shard ruled, and replaying it is harmless.
	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 0, X: 2}); !errors.Is(err, mcs.ErrDuplicateReport) {
		t.Fatalf("duplicate err = %v", err)
	}
	if log.len() != 2 {
		t.Fatalf("log holds %d records, want 2 (write-ahead includes rejected)", log.len())
	}
	// Reports rejected before the shard is involved never reach the log.
	if err := e.Ingest(mcs.Report{Participant: 9, Slot: 0}); err == nil || log.len() != 2 {
		t.Fatalf("out-of-range report logged (err %v, %d records)", err, log.len())
	}
	if err := e.Ingest(mcs.Report{Participant: 1, Slot: 0, X: math.NaN()}); err == nil || log.len() != 2 {
		t.Fatalf("non-finite report logged (err %v, %d records)", err, log.len())
	}

	// An append failure refuses the report: not durable, not acked.
	wantErr := errors.New("disk full")
	log.mu.Lock()
	log.fail = wantErr
	log.mu.Unlock()
	if err := e.Ingest(mcs.Report{Participant: 1, Slot: 1, X: 3}); !errors.Is(err, wantErr) {
		t.Fatalf("append failure err = %v, want %v", err, wantErr)
	}
	// The refused report must not have reached the ring either: the same
	// cell accepts a fresh report.
	if err := e.Ingest(mcs.Report{Participant: 1, Slot: 1, X: 4}); err != nil {
		t.Fatalf("cell poisoned by refused report: %v", err)
	}

	// Replay must not re-append.
	before := log.len()
	if err := e.Replay(mcs.Report{Participant: 1, Slot: 2, X: 5}); err != nil {
		t.Fatal(err)
	}
	if log.len() != before {
		t.Error("replay re-appended to the log")
	}
	if st := e.Stats(); st.Replayed != 1 {
		t.Errorf("replayed = %d, want 1", st.Replayed)
	}
}

func TestOnWindowCloseHook(t *testing.T) {
	var calls []uint64
	cfg := mechConfig(2, 4, 2)
	cfg.OnWindowClose = func(total uint64) { calls = append(calls, total) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 0, X: 1}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 0 {
		t.Fatalf("hook fired with no window closed: %v", calls)
	}
	// Slot 4 passes the far edge of [0,4): one close, even though the
	// window held data and the close dispatched a job.
	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 4, X: 2}); err != nil {
		t.Fatal(err)
	}
	// Slot 12 fast-forwards: several windows close at once, one call.
	if err := e.Ingest(mcs.Report{Participant: 0, Slot: 12, X: 3}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] <= calls[0] {
		t.Fatalf("hook calls = %v, want [1, >1]", calls)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	log := &fakeLog{}
	cfg := mechConfig(3, 6, 2)
	cfg.Log = log
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Two fleets, one of them slid past its first window.
	for s := 0; s < 7; s++ {
		if err := e.Ingest(mcs.Report{Fleet: "a", Participant: 0, Slot: s, X: float64(100 + s)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ingest(mcs.Report{Fleet: "b", Participant: 1, Slot: 3, X: 7}); err != nil {
		t.Fatal(err)
	}

	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.LogIndex != 8 {
		t.Errorf("checkpoint log index = %d, want 8", ck.LogIndex)
	}
	if log.syncs == 0 {
		t.Error("checkpoint did not sync the log")
	}
	if len(ck.Shards) != 2 {
		t.Fatalf("checkpoint shards = %d, want 2", len(ck.Shards))
	}

	r, err := New(mechConfig(3, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Restore(ck); err != nil {
		t.Fatal(err)
	}
	// Fleet a slid to start=2: a slot-1 report is late, slot 6 (held in the
	// ring) is a duplicate, and a fresh slot is accepted — the restored
	// stream state is indistinguishable from the original's.
	if err := r.Ingest(mcs.Report{Fleet: "a", Participant: 0, Slot: 1, X: 1}); !errors.Is(err, ErrLateReport) {
		t.Errorf("slot 1 err = %v, want ErrLateReport", err)
	}
	if err := r.Ingest(mcs.Report{Fleet: "a", Participant: 0, Slot: 6, X: 1}); !errors.Is(err, mcs.ErrDuplicateReport) {
		t.Errorf("slot 6 err = %v, want ErrDuplicateReport", err)
	}
	if err := r.Ingest(mcs.Report{Fleet: "a", Participant: 1, Slot: 7, X: 1}); err != nil {
		t.Errorf("fresh slot rejected: %v", err)
	}
	if err := r.Ingest(mcs.Report{Fleet: "b", Participant: 1, Slot: 3, X: 1}); !errors.Is(err, mcs.ErrDuplicateReport) {
		t.Errorf("fleet b duplicate err = %v, want ErrDuplicateReport", err)
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	e, err := New(mechConfig(3, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Shape mismatch.
	other, err := New(mechConfig(4, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Restore(ck); !errors.Is(err, ErrNotRestorable) {
		t.Errorf("shape mismatch err = %v, want ErrNotRestorable", err)
	}

	// Engine already has live shards.
	used, err := New(mechConfig(3, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer used.Close()
	if err := used.Ingest(mcs.Report{Participant: 0, Slot: 0, X: 1}); err != nil {
		t.Fatal(err)
	}
	full, err := e.Checkpoint() // empty checkpoint restores fine, so use any
	if err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(full); !errors.Is(err, ErrNotRestorable) {
		t.Errorf("non-fresh engine err = %v, want ErrNotRestorable", err)
	}

	// Closed engine.
	closed, err := New(mechConfig(3, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if err := closed.Restore(ck); !errors.Is(err, ErrClosed) {
		t.Errorf("closed engine err = %v, want ErrClosed", err)
	}
}

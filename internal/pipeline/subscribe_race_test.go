package pipeline

import (
	"sync"
	"testing"
	"time"
)

// TestSubscribeCancelCloseRace hammers Subscribe/cancel/publish/Close from
// many goroutines at once. It asserts nothing beyond termination: under
// -race (CI runs the suite with the detector on) it pins that the
// subscription registry has no data races and that Close cannot deadlock
// against concurrent subscribers, and without -race it still catches
// double-close panics on subscription channels.
func TestSubscribeCancelCloseRace(t *testing.T) {
	e, err := New(mechConfig(2, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				ch, cancel := e.Subscribe(1)
				if i%2 == 0 {
					// Drain whatever arrived so far without blocking.
					select {
					case <-ch:
					default:
					}
				}
				cancel()
				cancel() // idempotent even when racing engine Close
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			e.publish(&WindowResult{Seq: i})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		e.Close()
	}()
	close(start)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatal("subscribe/cancel/close race deadlocked")
	}

	// Post-Close subscriptions are born closed; cancel stays a no-op.
	ch, cancel := e.Subscribe(4)
	if _, open := <-ch; open {
		t.Error("post-close subscription open")
	}
	cancel()
}

// TestPublishNeverBlocksWorkers pins the non-blocking fan-out end to end: a
// subscriber whose buffer is permanently full must not stall the worker
// pool, so windows keep completing and the undeliverable results are
// counted. (TestPublishDropsSlowSubscriber covers the unit path; this
// covers the workers' path through process → publish.)
func TestPublishNeverBlocksWorkers(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	cfg := mechConfig(n, w, h)
	cfg.Workers = 1
	fleet, res := fixture(t, n, w+2*h+1, 0.1, 0.1)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe with the minimum buffer and never read: after one result
	// the channel is full and every later publish must drop, not block.
	_, cancel := e.Subscribe(1)
	defer cancel()

	streamFixture(t, e, "cab", fleet, res)

	done := make(chan struct{})
	go func() {
		e.Close() // drains the queue through the (possibly stalled) workers
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("worker pool stalled behind a full subscriber")
	}

	st := e.Stats()
	if st.WindowsProcessed < 2 {
		t.Fatalf("windows processed = %d, want >= 2", st.WindowsProcessed)
	}
	if st.SubscriberDrops == 0 {
		t.Error("no subscriber drops counted despite a full buffer")
	}
}

package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLatestCloseAbortRace hammers Engine.Latest from many goroutines while
// the engine ingests and then shuts down — gracefully (Close drains the
// queue, so latest results keep landing during the race) and abruptly
// (Abort discards queued windows mid-flight). It pins two things under
// -race (CI runs the suite with the detector on): the shard registry and
// the per-shard latest pointer have no data races with ingest or shutdown,
// and the Latest contract holds at every instant — the result is non-nil
// exactly when the error is nil, and the error is always ErrUnknownFleet
// or ErrNoResult, never anything torn.
func TestLatestCloseAbortRace(t *testing.T) {
	const (
		n = 16
		w = 60
		h = 20
	)
	fleet, res := fixture(t, n, w+3*h, 0.1, 0.1)
	for _, tc := range []struct {
		name string
		stop func(e *Engine)
	}{
		{"close", func(e *Engine) { e.Close() }},
		{"abort", func(e *Engine) { e.Abort() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := mechConfig(n, w, h)
			cfg.Workers = 2
			cfg.QueueDepth = 64
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			stopReaders := make(chan struct{})
			var sawResult atomic.Bool
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stopReaders:
							return
						default:
						}
						// "cab" crosses unknown → no-result → result while
						// the readers watch; any other error is a torn read.
						r, err := e.Latest("cab")
						switch {
						case err == nil && r == nil:
							t.Error(`Latest("cab") returned nil result with nil error`)
							return
						case err == nil:
							sawResult.Store(true)
						case !errors.Is(err, ErrUnknownFleet) && !errors.Is(err, ErrNoResult):
							t.Errorf(`Latest("cab"): %v`, err)
							return
						}
						if _, err := e.Latest("ghost"); !errors.Is(err, ErrUnknownFleet) {
							t.Errorf(`Latest("ghost"): %v`, err)
							return
						}
					}
				}()
			}

			streamFixture(t, e, "cab", fleet, res)

			done := make(chan struct{})
			go func() { tc.stop(e); close(done) }()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				t.Fatalf("%s deadlocked against concurrent Latest readers", tc.name)
			}
			// Keep reading briefly after shutdown returned: Latest must stay
			// safe and honest on a dead engine.
			time.Sleep(10 * time.Millisecond)
			close(stopReaders)
			wg.Wait()

			if tc.name == "close" {
				// Close drains every closed window through the workers, so
				// the fleet must end with a retained latest result.
				if r, err := e.Latest("cab"); err != nil || r == nil {
					t.Errorf("Latest after Close = %v, %v; want a result", r, err)
				}
				if !sawResult.Load() {
					t.Error("no reader ever observed a completed result")
				}
			}
		})
	}
}

package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"itscs"
	"itscs/internal/corrupt"
	"itscs/internal/mat"
	"itscs/internal/mcs"
	"itscs/internal/metrics"
	"itscs/internal/trace"
)

// TestEndToEndStreamMatchesBatch is the acceptance test for the streaming
// engine: a corrupted synthetic fleet is uploaded report by report through
// the real TCP ingest path into itscs-serve's engine, and every closed
// window's detection quality must match the one-shot batch framework run on
// exactly the same window of data. At least one window must warm-start.
func TestEndToEndStreamMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("streams several full-scale detection windows")
	}
	const (
		n     = 40
		w     = 120
		h     = 40
		slots = w + 3*h // three windows close while streaming
	)
	fleet, res := fixture(t, n, slots, 0.15, 0.15)

	cfg := mechConfig(n, w, h)
	cfg.Workers = 1 // process windows in order so later ones can warm-start
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	results, cancel := e.Subscribe(8)
	defer cancel()

	srv := mcs.NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})

	reports := fixtureReports("suv", fleet, res)
	acked, err := mcs.SendReports(context.Background(), addr.String(), reports)
	if err != nil {
		t.Fatal(err)
	}
	if acked != len(reports) {
		t.Fatalf("acked %d of %d reports", acked, len(reports))
	}

	var got []*WindowResult
	deadline := time.After(4 * time.Minute)
	for len(got) < 3 {
		select {
		case r, ok := <-results:
			if !ok {
				t.Fatal("subscription closed early")
			}
			got = append(got, r)
		case <-deadline:
			t.Fatalf("timed out with %d of 3 window results", len(got))
		}
	}

	warm := 0
	for _, r := range got {
		if r.WarmStarted {
			warm++
		}
		streamF1 := windowF1(t, r.Output.Detection, res, r.StartSlot, r.EndSlot)
		batchF1 := batchWindowF1(t, fleet, res, r.StartSlot, r.EndSlot)
		if diff := math.Abs(streamF1 - batchF1); diff > 0.02 {
			t.Errorf("window [%d,%d): streaming F1 %.4f vs batch F1 %.4f (|Δ| = %.4f > 0.02)",
				r.StartSlot, r.EndSlot, streamF1, batchF1, diff)
		}
	}
	if warm == 0 {
		t.Error("no window warm-started")
	}

	st := e.Stats()
	if st.WarmStarts < 1 {
		t.Errorf("warm-start counter = %d, want >= 1", st.WarmStarts)
	}
	if st.WindowsProcessed < 3 {
		t.Errorf("windows processed = %d, want >= 3", st.WindowsProcessed)
	}
	if st.Ingested != uint64(len(reports)) {
		t.Errorf("ingested = %d, want %d", st.Ingested, len(reports))
	}
}

// windowF1 scores a detection matrix against the ground-truth corruption of
// the window [start, end).
func windowF1(t *testing.T, d *mat.Dense, res *corrupt.Result, start, end int) float64 {
	t.Helper()
	n, _ := res.Faulty.Dims()
	f, err := res.Faulty.Slice(0, n, start, end)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := res.Existence.Slice(0, n, start, end)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := metrics.Compare(d, f, ex)
	if err != nil {
		t.Fatal(err)
	}
	return conf.F1()
}

// batchWindowF1 runs the public one-shot framework on exactly the data the
// streaming engine saw for the window [start, end) and scores it.
func batchWindowF1(t *testing.T, fleet *trace.Fleet, res *corrupt.Result, start, end int) float64 {
	t.Helper()
	n, _ := res.SX.Dims()
	w := end - start
	ds := itscs.Dataset{
		X: make([][]float64, n), Y: make([][]float64, n),
		VX: make([][]float64, n), VY: make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		x, y := make([]float64, w), make([]float64, w)
		vx, vy := make([]float64, w), make([]float64, w)
		for j := 0; j < w; j++ {
			if res.Existence.At(i, start+j) == 0 {
				x[j], y[j] = math.NaN(), math.NaN()
				vx[j], vy[j] = math.NaN(), math.NaN()
				continue
			}
			x[j], y[j] = res.SX.At(i, start+j), res.SY.At(i, start+j)
			vx[j], vy[j] = fleet.VX.At(i, start+j), fleet.VY.At(i, start+j)
		}
		ds.X[i], ds.Y[i], ds.VX[i], ds.VY[i] = x, y, vx, vy
	}
	out, err := itscs.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	d := mat.New(n, w)
	for i, row := range out.Faulty {
		for j, faulty := range row {
			if faulty {
				d.Set(i, j, 1)
			}
		}
	}
	return windowF1(t, d, res, start, end)
}

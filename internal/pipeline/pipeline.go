// Package pipeline turns the one-shot I(TS,CS) batch loop into a continuous
// streaming service: it sits between the mcs collection substrate and the
// core DETECT→CORRECT→CHECK engine, assembling per-fleet sliding windows
// from individual location reports and running detection on every window as
// it closes.
//
// Reports are routed by fleet ID into per-fleet ring buffers holding the
// four sensory matrices (X, Y, VX, VY) plus the existence mask. When a
// report's slot passes the open window's far edge the window [start,
// start+WindowSlots) is snapshotted, the buffer slides forward by HopSlots,
// and the snapshot is dispatched to a bounded worker pool. Workers run the
// full core loop and warm-start CORRECT with the fleet's previous window
// factorization (consecutive windows overlap by WindowSlots−HopSlots
// columns, and even where the carried subspace has rotated the warm start
// still skips the O(n·t²) SVD init). Backpressure is drop-oldest: when the
// dispatch queue is full the stalest window is discarded and counted, so a
// slow detector degrades to coarser coverage instead of unbounded memory.
// Results fan out through a subscription API and are retained per fleet for
// polling; Stats exposes counters and per-phase latency histograms.
package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"itscs/internal/core"
	"itscs/internal/csrecon"
	"itscs/internal/fault"
	"itscs/internal/mat"
	"itscs/internal/metrics"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/wal"
)

// Errors reported by Ingest and the result accessors.
var (
	// ErrClosed is returned once the engine has been Closed.
	ErrClosed = errors.New("pipeline: engine closed")
	// ErrLateReport marks a report whose slot falls before its fleet's
	// current window start; the window it belonged to has already closed.
	ErrLateReport = errors.New("pipeline: late report")
	// ErrTooManyFleets is returned when a report names a fleet that would
	// exceed Config.MaxFleets.
	ErrTooManyFleets = errors.New("pipeline: too many fleets")
	// ErrUnknownFleet is returned by Latest, Trace and Flush for a fleet
	// that has never reported.
	ErrUnknownFleet = errors.New("pipeline: unknown fleet")
	// ErrNoResult is returned by Latest for a known fleet none of whose
	// windows has completed detection yet — distinct from ErrUnknownFleet so
	// callers (and the daemon's HTTP layer) can answer "not yet" instead of
	// "no such fleet".
	ErrNoResult = errors.New("pipeline: no completed window yet")
	// ErrNotRestorable is returned by Restore on an engine that has already
	// ingested reports or been closed, or for a checkpoint whose shape does
	// not match the configuration.
	ErrNotRestorable = errors.New("pipeline: engine not restorable")
)

// ReportLog is the durability hook: when Config.Log is set, every accepted
// report is appended (and per the log's policy fsynced) before it mutates a
// shard, so an acked upload survives a crash. wal.Log implements it.
type ReportLog interface {
	// Append durably records one report.
	Append(mcs.Report) error
	// Sync forces everything appended so far to disk.
	Sync() error
	// AppendedIndex reports how many records have been committed; a
	// checkpoint captures it as its replay origin.
	AppendedIndex() uint64
}

// Admission is an AdmissionGate's verdict for one accepted report.
type Admission int

const (
	// AdmitClean is the default verdict: the submitter is in good standing
	// (or no gate is configured).
	AdmitClean Admission = iota
	// AdmitQuarantined tags a report from a quarantined participant. The
	// report is still ingested — its cells keep feeding detection, which is
	// the only path back to trust — but the tag count lets operators weigh
	// how much quarantined data a window saw.
	AdmitQuarantined
	// AdmitProbation tags a report from a participant on probation
	// (readmitted from quarantine but not yet back to trusted).
	AdmitProbation
)

// AdmissionGate classifies each accepted report by its submitter's current
// reputation standing. The gate tags, it never drops: rejecting a
// quarantined participant's uploads would freeze their trust score at its
// low-water mark with no evidence to recover on, and would silently starve
// the window of observations. Implementations must be safe for concurrent
// use and cheap — Admit runs on the ingest hot path inside the engine's
// ingestion gate. The reputation.Ledger is the production implementation.
type AdmissionGate interface {
	Admit(fleet string, participant int) Admission
}

// maxCatchUpCloses bounds how many windows a single report may close before
// the shard fast-forwards past the gap, so one far-future slot cannot stall
// its ingest goroutine snapshotting hundreds of (mostly empty) windows.
const maxCatchUpCloses = 8

// Config parameterizes the streaming engine.
type Config struct {
	// Participants is the fixed row count of every fleet's matrices.
	Participants int
	// WindowSlots is the width W of each detection window in slots.
	WindowSlots int
	// HopSlots is the stride H between consecutive windows, 0 < H ≤ W.
	// Consecutive windows overlap by W−H slots.
	HopSlots int
	// Workers is the size of the detection worker pool (default 2; the
	// core loop already parallelizes internally across row blocks).
	Workers int
	// QueueDepth bounds the dispatch queue between window close and the
	// worker pool (default 16). When full, the oldest queued window is
	// dropped and counted.
	QueueDepth int
	// MaxFleets bounds how many fleet shards may be materialized
	// (default 64); each shard holds five Participants×(W+H) matrices.
	MaxFleets int
	// DisableWarmStart makes every window cold-start CORRECT from the SVD
	// init instead of carrying the previous window's factorization.
	DisableWarmStart bool
	// Log, when set, makes ingestion write-ahead: a report is appended to
	// the log before it mutates any shard, and an append failure rejects
	// the report (durability refused is ingestion refused).
	Log ReportLog
	// OnWindowClose, when set, is called after windows are cut from a
	// stream with the cumulative closed-window count. The daemon uses it to
	// pace checkpoints. It runs on the ingest goroutine inside the engine's
	// ingestion gate, so it must be cheap and must not call back into the
	// engine (signal a channel instead).
	OnWindowClose func(totalClosed uint64)
	// OnResult, when set, receives every completed WindowResult after the
	// fleet's warm state and latest result have been updated, outside all
	// engine locks and before the window is counted under
	// Stats.WindowsProcessed — so a drain that waits on that counter
	// observes every delivery. It runs on worker goroutines: it must be
	// cheap and must not call back into the engine. The reputation ledger
	// uses it to fold each window's verdicts into per-participant trust.
	OnResult func(*WindowResult)
	// Gate, when set, classifies each accepted report's submitter at ingest
	// time; the verdict only moves counters (see Admission — the gate tags,
	// it never refuses). Queried after all rejection checks, so tagged
	// counts partition Stats.Ingested exactly.
	Gate AdmissionGate
	// Obs, when set, receives window lifecycle events: a trace span for
	// every processed window, plus drop and failure notifications that
	// would otherwise only move counters. Callbacks run on engine
	// goroutines — they must be cheap and must not call back into the
	// engine. obs.LogObserver is the production implementation.
	Obs obs.Observer
	// TraceDepth bounds the per-fleet ring of recent window trace spans
	// served by Trace (default 64; negative retains none).
	TraceDepth int
	// Clock supplies the timestamps behind queue-wait and run-duration
	// accounting (default the wall clock). The fault harness swaps in a
	// virtual clock so timing-sensitive tests need never sleep.
	Clock fault.Clock
	// Core configures the per-window DETECT→CORRECT→CHECK loop.
	Core core.Config
}

// DefaultConfig streams the paper's evaluation shape: 158 participants,
// 2-hour windows of 30-second slots (240), sliding by 30 minutes (60).
func DefaultConfig() Config {
	return Config{
		Participants: 158,
		WindowSlots:  240,
		HopSlots:     60,
		Workers:      2,
		QueueDepth:   16,
		MaxFleets:    64,
		Core:         core.DefaultConfig(),
	}
}

// clock returns the configured clock, defaulting to the wall clock so code
// paths reached without New's defaulting (shard-level tests) stay safe.
func (c Config) clock() fault.Clock {
	if c.Clock == nil {
		return fault.RealClock()
	}
	return c.Clock
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Participants <= 0:
		return fmt.Errorf("pipeline: participants must be positive, got %d", c.Participants)
	case c.WindowSlots <= 0:
		return fmt.Errorf("pipeline: window must be positive, got %d", c.WindowSlots)
	case c.HopSlots <= 0 || c.HopSlots > c.WindowSlots:
		return fmt.Errorf("pipeline: hop %d outside (0,%d]", c.HopSlots, c.WindowSlots)
	case c.Workers <= 0:
		return fmt.Errorf("pipeline: workers must be positive, got %d", c.Workers)
	case c.QueueDepth <= 0:
		return fmt.Errorf("pipeline: queue depth must be positive, got %d", c.QueueDepth)
	case c.MaxFleets <= 0:
		return fmt.Errorf("pipeline: max fleets must be positive, got %d", c.MaxFleets)
	}
	return c.Core.Validate()
}

// CellFlag locates one faulty cell in a window result, with Slot on the
// stream's absolute timeline.
type CellFlag struct {
	Participant int `json:"participant"`
	Slot        int `json:"slot"`
}

// WindowResult is the detection outcome for one closed window.
type WindowResult struct {
	// Fleet and Seq identify the window: Seq counts windows cut from this
	// fleet's stream (including skipped ones), so gaps in the sequence
	// observed by a subscriber correspond to dropped or empty windows.
	Fleet string `json:"fleet"`
	Seq   int    `json:"seq"`
	// StartSlot (inclusive) and EndSlot (exclusive) bound the window on
	// the absolute slot timeline.
	StartSlot int `json:"start_slot"`
	EndSlot   int `json:"end_slot"`
	// Observed counts reported cells in the window; Flagged counts cells
	// the framework judged faulty.
	Observed int `json:"observed"`
	Flagged  int `json:"flagged"`
	// Iterations and Converged describe the outer loop; Sweeps totals the
	// ASD sweeps CORRECT ran across rounds and axes; WarmStarted reports
	// whether CORRECT consumed the previous window's factors.
	Iterations  int  `json:"iterations"`
	Sweeps      int  `json:"sweeps"`
	Converged   bool `json:"converged"`
	WarmStarted bool `json:"warm_started"`
	// QueueWaitMS and RunMS are this window's queue residence and
	// detection wall-clock times.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RunMS       float64 `json:"run_ms"`
	// Flags lists the faulty cells.
	Flags []CellFlag `json:"flags"`
	// Output and Input carry the full matrices for in-process consumers;
	// they are withheld from JSON.
	Output *core.Output `json:"-"`
	Input  core.Input   `json:"-"`
}

// job is one snapshotted window awaiting a worker.
type job struct {
	sh       *shard
	seq      int
	start    int
	observed int
	in       core.Input
	// stamps snapshots the window's ingest stamps (unix micros, 0 for
	// unstamped cells) so the worker can observe ingest→result latency;
	// traceID is the exemplar trace linked at window close (0 if none).
	stamps   *mat.Dense
	traceID  uint64
	enqueued time.Time
}

// shard is one fleet's ring-buffered stream state. The rings are
// Participants×(W+H); a slot lives at column slot%(W+H). Because writes are
// confined to [start, start+W) and the outgoing hop is zeroed on every
// slide, distinct live slots never collide modulo the capacity.
type shard struct {
	fleet string

	mu    sync.Mutex
	start int // first slot of the open window
	seq   int // sequence number the open window will get

	sx, sy, vx, vy, ex *mat.Dense

	// ts mirrors the rings with each cell's ingest stamp in unix micros
	// (as float64 — exact until 2255), 0 where unstamped. It slides and
	// zeroes with the other five and is checkpointed alongside them, so
	// freshness accounting survives crash/recovery without re-stamping.
	ts *mat.Dense

	// warm carries the factors of the newest processed window (guarded by
	// mu; warmSeq orders concurrent workers), latest the newest result.
	warm    *core.WarmState
	warmSeq int
	latest  *WindowResult

	// dropped counts this fleet's windows evicted under backpressure;
	// spans retains the fleet's most recent trace records and traces the
	// end-to-end stage records of recent stamped reports.
	dropped atomic.Uint64
	spans   *obs.Ring
	traces  *obs.TraceTable

	// ageAtClose and ingestToResult are the fleet-local freshness
	// histograms (the engine-wide pair lives in counters).
	ageAtClose     *metrics.BoundedHistogram
	ingestToResult *metrics.BoundedHistogram
}

// Engine is the streaming detection engine. It implements mcs.Ingestor, so
// an mcs.Server can feed it directly from the TCP transport. All methods
// are safe for concurrent use.
type Engine struct {
	cfg Config

	// lifeMu orders Ingest/Flush against Close: ingestion holds the read
	// side for its full critical path so the dispatch queue can only be
	// closed once no sender is in flight.
	lifeMu sync.RWMutex
	closed bool

	shardMu sync.Mutex
	shards  map[string]*shard

	queue chan job
	qmu   sync.Mutex // serializes the send-or-drop-oldest dance
	wg    sync.WaitGroup

	subMu      sync.Mutex
	subs       map[int]chan *WindowResult
	nextSub    int
	subsClosed bool

	c    counters
	hist struct {
		detect, correct, check, run, wait histogram
	}
}

// New validates the configuration and starts the worker pool. The caller
// must Close the engine to stop the workers and drain the queue.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxFleets == 0 {
		cfg.MaxFleets = 64
	}
	if cfg.TraceDepth == 0 {
		cfg.TraceDepth = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = fault.RealClock()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		shards: make(map[string]*shard),
		queue:  make(chan job, cfg.QueueDepth),
		subs:   make(map[int]chan *WindowResult),
	}
	e.c.ageAtClose = metrics.NewBoundedHistogram(metrics.AgeBuckets)
	e.c.ingestToResult = metrics.NewBoundedHistogram(metrics.AgeBuckets)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e, nil
}

// Ingest routes one report into its fleet's ring buffer, closing and
// dispatching any windows the report's slot has passed. It is the
// mcs.Ingestor entry point: rejections are returned (and counted) so the
// transport can acknowledge each upload honestly. With Config.Log set the
// report is appended to the write-ahead log before any shard state
// changes, so every acked report is as durable as the log's fsync policy.
func (e *Engine) Ingest(r mcs.Report) error {
	return e.ingest(r, false)
}

// Replay is Ingest for WAL recovery: the record is already in the log, so
// it is not re-appended, and acceptance is counted under Stats.Replayed.
// Rejections (duplicates of cells the checkpoint already holds, slots
// behind a restored watermark) are expected and harmless.
func (e *Engine) Replay(r mcs.Report) error {
	return e.ingest(r, true)
}

func (e *Engine) ingest(r mcs.Report, replay bool) error {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	if e.closed {
		e.c.rejected.Add(1)
		return ErrClosed
	}
	if r.Participant < 0 || r.Participant >= e.cfg.Participants {
		e.c.rejected.Add(1)
		return fmt.Errorf("pipeline: participant %d outside [0,%d)", r.Participant, e.cfg.Participants)
	}
	if r.Slot < 0 {
		e.c.rejected.Add(1)
		return fmt.Errorf("pipeline: negative slot %d", r.Slot)
	}
	if err := r.CheckFinite(); err != nil {
		e.c.rejected.Add(1)
		e.c.nonFinite.Add(1)
		return err
	}
	sh, err := e.shard(r.Fleet)
	if err != nil {
		e.c.rejected.Add(1)
		return err
	}
	if e.cfg.Log != nil && !replay {
		// Write-ahead: the log sees the report before the shard does. A
		// record logged but rejected below (duplicate, late) just repeats
		// that rejection on replay; a record applied but not logged would
		// be silently lost on crash, so this order is the safe one.
		if err := e.cfg.Log.Append(r); err != nil {
			e.c.rejected.Add(1)
			return fmt.Errorf("pipeline: wal append: %w", err)
		}
	}
	closedBefore := e.c.windowsClosed.Load()
	jobs, err := sh.ingest(r, e.cfg, &e.c)
	for _, j := range jobs {
		e.enqueue(j)
	}
	if e.cfg.OnWindowClose != nil {
		if closedAfter := e.c.windowsClosed.Load(); closedAfter != closedBefore {
			e.cfg.OnWindowClose(closedAfter)
		}
	}
	if err != nil {
		e.c.rejected.Add(1)
		return err
	}
	e.c.ingested.Add(1)
	if r.Stamped() {
		e.c.stamped.Add(1)
		// Open (or on replay, re-find) the report's end-to-end trace. The
		// ingest stage carries the door's stamp time, not ours; the engine
		// never stamps, so replay re-delivers the original timeline.
		sh.traces.Begin(r.TraceID, r.Fleet, r.Participant, r.Slot, r.Origin.String(), r.IngestUnixMicro)
		if e.cfg.Log != nil || replay {
			detail := ""
			if replay {
				detail = "replay"
			}
			sh.traces.Stage(r.TraceID, "wal_commit", detail, e.cfg.Clock.Now().UnixMicro())
		}
	} else {
		e.c.unstamped.Add(1)
	}
	if e.cfg.Gate == nil {
		e.c.admittedClean.Add(1)
	} else {
		switch e.cfg.Gate.Admit(r.Fleet, r.Participant) {
		case AdmitQuarantined:
			e.c.taggedQuarantined.Add(1)
		case AdmitProbation:
			e.c.taggedProbation.Add(1)
		default:
			e.c.admittedClean.Add(1)
		}
	}
	if replay {
		e.c.replayed.Add(1)
	}
	return nil
}

// Flush closes the fleet's open window early — regardless of how far it has
// filled — and dispatches it if it holds any observations. It lets a
// shutdown or a test drain a stream that will not receive further reports.
func (e *Engine) Flush(fleet string) error {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.shardMu.Lock()
	sh := e.shards[fleet]
	e.shardMu.Unlock()
	if sh == nil {
		return fmt.Errorf("%w: %q", ErrUnknownFleet, fleet)
	}
	sh.mu.Lock()
	j, ok := sh.closeWindow(e.cfg, &e.c)
	sh.mu.Unlock()
	e.c.windowsClosed.Add(1)
	if !ok {
		e.c.windowsEmpty.Add(1)
		return nil
	}
	e.enqueue(j)
	return nil
}

// Close stops ingestion, flushes every fleet's still-open partial window
// through the detection loop, lets the workers drain the queue, and then
// closes all subscription channels: a graceful shutdown loses no accepted
// report. It is idempotent and safe to call concurrently with Ingest. See
// Abort for the non-draining variant.
func (e *Engine) Close() {
	e.shutdown(true)
}

// Abort stops the engine without flushing open windows or draining the
// dispatch queue — the fate of a process that crashed. Tests use it to
// simulate a SIGKILL before exercising WAL recovery.
func (e *Engine) Abort() {
	e.shutdown(false)
}

func (e *Engine) shutdown(drain bool) {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.lifeMu.Unlock()
	if drain {
		// Flush each shard's open partial window; its reports were accepted
		// (and possibly acked durable) so dropping them on shutdown would
		// betray the transport's acknowledgements.
		for _, sh := range e.allShards() {
			sh.mu.Lock()
			j, ok := sh.closeWindow(e.cfg, &e.c)
			sh.mu.Unlock()
			e.c.windowsClosed.Add(1)
			if ok {
				e.enqueue(j)
			} else {
				e.c.windowsEmpty.Add(1)
			}
		}
	} else {
		// Crash semantics: discard whatever is queued so workers exit at
		// once; the WAL (when configured) already holds the reports.
	drop:
		for {
			select {
			case j := <-e.queue:
				e.noteDropped(j)
			default:
				break drop
			}
		}
	}
	close(e.queue)
	e.wg.Wait()
	e.subMu.Lock()
	e.subsClosed = true
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
	e.subMu.Unlock()
}

// allShards snapshots the shard list.
func (e *Engine) allShards() []*shard {
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	shards := make([]*shard, 0, len(e.shards))
	for _, sh := range e.shards {
		shards = append(shards, sh)
	}
	return shards
}

// Checkpoint freezes the engine's durable state: every shard's ring
// buffers, window position, and warm-start factors, stamped with the log
// index the snapshot is consistent with. When a ReportLog is configured it
// is synced first, so the checkpoint never references records less durable
// than itself. Recovery = Restore(checkpoint) + Replay of log records from
// Checkpoint.LogIndex on. Checkpointing a Closed engine is allowed — the
// daemon writes a final checkpoint after its shutdown drain so a clean
// restart replays nothing.
func (e *Engine) Checkpoint() (*wal.Checkpoint, error) {
	// Quiesce ingestion for an instant: with the write lock held no report
	// is between its log append and its shard apply, so AppendedIndex is a
	// true lower bound for the shard snapshots taken after release (records
	// applied in between simply replay as duplicates).
	e.lifeMu.Lock()
	var logIdx uint64
	if e.cfg.Log != nil {
		logIdx = e.cfg.Log.AppendedIndex()
	}
	e.lifeMu.Unlock()
	if e.cfg.Log != nil {
		if err := e.cfg.Log.Sync(); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint sync: %w", err)
		}
	}
	ck := &wal.Checkpoint{
		LogIndex:     logIdx,
		Participants: e.cfg.Participants,
		WindowSlots:  e.cfg.WindowSlots,
		HopSlots:     e.cfg.HopSlots,
	}
	for _, sh := range e.allShards() {
		sh.mu.Lock()
		sc := wal.ShardCheckpoint{
			Fleet:   sh.fleet,
			Start:   sh.start,
			Seq:     sh.seq,
			WarmSeq: sh.warmSeq,
			SX:      sh.sx.Clone(),
			SY:      sh.sy.Clone(),
			VX:      sh.vx.Clone(),
			VY:      sh.vy.Clone(),
			EX:      sh.ex.Clone(),
			TS:      sh.ts.Clone(),
		}
		if sh.warm != nil {
			sc.WarmLX, sc.WarmRX = sh.warm.X.L.Clone(), sh.warm.X.R.Clone()
			sc.WarmLY, sc.WarmRY = sh.warm.Y.L.Clone(), sh.warm.Y.R.Clone()
		}
		sh.mu.Unlock()
		ck.Shards = append(ck.Shards, sc)
	}
	return ck, nil
}

// Restore rebuilds the engine's shards from a checkpoint. It must run on a
// fresh engine — before any report has been ingested — and the checkpoint's
// shape must match the configuration. After Restore, replay the log tail
// through Replay and resume normal ingestion.
func (e *Engine) Restore(ck *wal.Checkpoint) error {
	if ck.Participants != e.cfg.Participants || ck.WindowSlots != e.cfg.WindowSlots || ck.HopSlots != e.cfg.HopSlots {
		return fmt.Errorf("%w: checkpoint shape %d/%d/%d vs config %d/%d/%d",
			ErrNotRestorable, ck.Participants, ck.WindowSlots, ck.HopSlots,
			e.cfg.Participants, e.cfg.WindowSlots, e.cfg.HopSlots)
	}
	n, capSlots := e.cfg.Participants, e.cfg.WindowSlots+e.cfg.HopSlots
	for i := range ck.Shards {
		sc := &ck.Shards[i]
		for name, m := range map[string]*mat.Dense{
			"SX": sc.SX, "SY": sc.SY, "VX": sc.VX, "VY": sc.VY, "EX": sc.EX,
		} {
			if m == nil {
				return fmt.Errorf("%w: shard %q missing ring %s", ErrNotRestorable, sc.Fleet, name)
			}
			if mr, mc := m.Dims(); mr != n || mc != capSlots {
				return fmt.Errorf("%w: shard %q ring %s is %dx%d, want %dx%d",
					ErrNotRestorable, sc.Fleet, name, mr, mc, n, capSlots)
			}
		}
		// TS is absent from pre-v3 checkpoints; a nil stamp ring restores as
		// all-unstamped rather than failing recovery of otherwise-good state.
		if sc.TS != nil {
			if mr, mc := sc.TS.Dims(); mr != n || mc != capSlots {
				return fmt.Errorf("%w: shard %q ring TS is %dx%d, want %dx%d",
					ErrNotRestorable, sc.Fleet, mr, mc, n, capSlots)
			}
		}
	}
	if len(ck.Shards) > e.cfg.MaxFleets {
		return fmt.Errorf("%w: checkpoint holds %d shards, max-fleets is %d",
			ErrNotRestorable, len(ck.Shards), e.cfg.MaxFleets)
	}
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	if len(e.shards) != 0 {
		return fmt.Errorf("%w: %d shards already live", ErrNotRestorable, len(e.shards))
	}
	for i := range ck.Shards {
		sc := &ck.Shards[i]
		sh := &shard{
			fleet:          sc.Fleet,
			start:          sc.Start,
			seq:            sc.Seq,
			warmSeq:        sc.WarmSeq,
			sx:             sc.SX,
			sy:             sc.SY,
			vx:             sc.VX,
			vy:             sc.VY,
			ex:             sc.EX,
			ts:             sc.TS,
			spans:          obs.NewRing(e.cfg.TraceDepth),
			traces:         obs.NewTraceTable(e.cfg.TraceDepth),
			ageAtClose:     metrics.NewBoundedHistogram(metrics.AgeBuckets),
			ingestToResult: metrics.NewBoundedHistogram(metrics.AgeBuckets),
		}
		if sh.ts == nil {
			sh.ts = mat.New(n, capSlots)
		}
		if sc.WarmLX != nil {
			sh.warm = &core.WarmState{
				X: csrecon.Factors{L: sc.WarmLX, R: sc.WarmRX},
				Y: csrecon.Factors{L: sc.WarmLY, R: sc.WarmRY},
			}
		}
		e.shards[sh.fleet] = sh
	}
	return nil
}

// Subscribe registers a result channel with the given buffer (minimum 1).
// A subscriber that falls behind loses results rather than stalling the
// workers: each undeliverable result is counted in Stats.SubscriberDrops.
// The channel closes on cancel or engine Close; cancel is idempotent.
func (e *Engine) Subscribe(buffer int) (<-chan *WindowResult, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan *WindowResult, buffer)
	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.subsClosed {
		close(ch)
		return ch, func() {}
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	cancel := func() {
		e.subMu.Lock()
		defer e.subMu.Unlock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(ch)
		}
	}
	return ch, cancel
}

// Latest returns the newest completed window result for the fleet. It
// returns ErrUnknownFleet for a fleet that has never reported and
// ErrNoResult for a known fleet with no completed window yet; the result is
// non-nil exactly when the error is nil.
func (e *Engine) Latest(fleet string) (*WindowResult, error) {
	e.shardMu.Lock()
	sh := e.shards[fleet]
	e.shardMu.Unlock()
	if sh == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFleet, fleet)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.latest == nil {
		return nil, fmt.Errorf("%w: fleet %q", ErrNoResult, fleet)
	}
	return sh.latest, nil
}

// Trace returns the fleet's retained window trace spans, newest first (up
// to Config.TraceDepth). An empty slice means the fleet exists but no
// window has completed recently; an unknown fleet is an error.
func (e *Engine) Trace(fleet string) ([]obs.Span, error) {
	e.shardMu.Lock()
	sh := e.shards[fleet]
	e.shardMu.Unlock()
	if sh == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFleet, fleet)
	}
	return sh.spans.Snapshot(), nil
}

// Traces returns the fleet's retained end-to-end report traces, newest
// first (up to Config.TraceDepth). Only stamped reports are traced, so a
// fleet fed exclusively by unstamped sources returns an empty slice.
func (e *Engine) Traces(fleet string) ([]obs.Trace, error) {
	e.shardMu.Lock()
	sh := e.shards[fleet]
	e.shardMu.Unlock()
	if sh == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFleet, fleet)
	}
	return sh.traces.Snapshot(), nil
}

// FindTrace looks up one retained trace by fleet and trace ID.
func (e *Engine) FindTrace(fleet string, id uint64) (obs.Trace, bool) {
	e.shardMu.Lock()
	sh := e.shards[fleet]
	e.shardMu.Unlock()
	if sh == nil {
		return obs.Trace{}, false
	}
	return sh.traces.Lookup(id)
}

// Fleets lists the materialized fleet IDs, sorted.
func (e *Engine) Fleets() []string {
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	names := make([]string, 0, len(e.shards))
	for name := range e.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots the engine's instrumentation.
func (e *Engine) Stats() Stats {
	s := Stats{
		Ingested:          e.c.ingested.Load(),
		AdmittedClean:     e.c.admittedClean.Load(),
		TaggedQuarantined: e.c.taggedQuarantined.Load(),
		TaggedProbation:   e.c.taggedProbation.Load(),
		Replayed:          e.c.replayed.Load(),
		Rejected:          e.c.rejected.Load(),
		Late:              e.c.late.Load(),
		Duplicates:        e.c.duplicates.Load(),
		NonFinite:         e.c.nonFinite.Load(),
		ReportsStamped:    e.c.stamped.Load(),
		ReportsUnstamped:  e.c.unstamped.Load(),
		WindowsClosed:     e.c.windowsClosed.Load(),
		WindowsEmpty:      e.c.windowsEmpty.Load(),
		WindowsSkipped:    e.c.windowsSkipped.Load(),
		WindowsDropped:    e.c.windowsDropped.Load(),
		WindowsProcessed:  e.c.windowsDone.Load(),
		WindowsFailed:     e.c.windowsFailed.Load(),
		WarmStarts:        e.c.warmStarts.Load(),
		ColdStarts:        e.c.coldStarts.Load(),
		SubscriberDrops:   e.c.subscriberDrops.Load(),
		QueueDepth:        len(e.queue),
		QueueCapacity:     cap(e.queue),
		PhaseLatency: map[string]HistogramSnapshot{
			"detect":  e.hist.detect.Snapshot(),
			"correct": e.hist.correct.Snapshot(),
			"check":   e.hist.check.Snapshot(),
			"run":     e.hist.run.Snapshot(),
			"wait":    e.hist.wait.Snapshot(),
		},
		AgeAtClose:     e.c.ageAtClose.Snapshot(),
		IngestToResult: e.c.ingestToResult.Snapshot(),
	}
	for _, sh := range e.allShards() {
		if n := sh.dropped.Load(); n != 0 {
			if s.WindowsDroppedByFleet == nil {
				s.WindowsDroppedByFleet = make(map[string]uint64)
			}
			s.WindowsDroppedByFleet[sh.fleet] = n
		}
		ff := FleetFreshness{
			LatestSeq:      -1,
			AgeAtClose:     sh.ageAtClose.Snapshot(),
			IngestToResult: sh.ingestToResult.Snapshot(),
		}
		sh.mu.Lock()
		ff.WatermarkSlot = sh.start
		ff.NextSeq = sh.seq
		if sh.latest != nil {
			ff.LatestSeq = sh.latest.Seq
		}
		sh.mu.Unlock()
		if s.Freshness == nil {
			s.Freshness = make(map[string]FleetFreshness)
		}
		s.Freshness[sh.fleet] = ff
		s.Fleets++
	}
	return s
}

// shard returns the fleet's shard, materializing it on first sight.
func (e *Engine) shard(fleet string) (*shard, error) {
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	if sh, ok := e.shards[fleet]; ok {
		return sh, nil
	}
	if len(e.shards) >= e.cfg.MaxFleets {
		return nil, fmt.Errorf("%w: %d shards live, fleet %q refused", ErrTooManyFleets, len(e.shards), fleet)
	}
	n, capSlots := e.cfg.Participants, e.cfg.WindowSlots+e.cfg.HopSlots
	sh := &shard{
		fleet:          fleet,
		warmSeq:        -1,
		sx:             mat.New(n, capSlots),
		sy:             mat.New(n, capSlots),
		vx:             mat.New(n, capSlots),
		vy:             mat.New(n, capSlots),
		ex:             mat.New(n, capSlots),
		ts:             mat.New(n, capSlots),
		spans:          obs.NewRing(e.cfg.TraceDepth),
		traces:         obs.NewTraceTable(e.cfg.TraceDepth),
		ageAtClose:     metrics.NewBoundedHistogram(metrics.AgeBuckets),
		ingestToResult: metrics.NewBoundedHistogram(metrics.AgeBuckets),
	}
	e.shards[fleet] = sh
	return sh, nil
}

// enqueue places a job on the dispatch queue, evicting the oldest queued
// window when full. qmu admits one producer at a time, so after at most one
// eviction the send succeeds (workers only ever make room). Evictions are
// accounted after qmu is released so an Observer callback cannot stall a
// competing producer.
func (e *Engine) enqueue(j job) {
	var evicted []job
	e.qmu.Lock()
	for {
		select {
		case e.queue <- j:
			e.qmu.Unlock()
			for _, old := range evicted {
				e.noteDropped(old)
			}
			return
		default:
		}
		select {
		case old := <-e.queue:
			evicted = append(evicted, old)
		default:
		}
	}
}

// noteDropped records one evicted window: the global and per-fleet drop
// counters move, and the observer hears which fleet lost which window —
// these are fully ingested (and, when durable, WAL-acked) windows whose
// disappearance used to be a bare counter bump.
func (e *Engine) noteDropped(j job) {
	e.c.windowsDropped.Add(1)
	fleet := ""
	if j.sh != nil {
		j.sh.dropped.Add(1)
		fleet = j.sh.fleet
	}
	if e.cfg.Obs != nil {
		e.cfg.Obs.WindowDropped(fleet, j.seq, len(e.queue))
	}
}

// ingest stores one report, first closing every window the slot has passed.
// It returns the closed windows ready for dispatch together with the
// report's own acceptance error, if any: a late or duplicate report still
// advances the stream's watermark.
func (sh *shard) ingest(r mcs.Report, cfg Config, c *counters) ([]job, error) {
	w, h := cfg.WindowSlots, cfg.HopSlots
	capSlots := w + h
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.Slot < sh.start {
		c.late.Add(1)
		return nil, fmt.Errorf("%w: slot %d precedes window start %d", ErrLateReport, r.Slot, sh.start)
	}
	var jobs []job
	for closes := 0; r.Slot >= sh.start+w; closes++ {
		if closes >= maxCatchUpCloses {
			// Fast-forward past the gap: skip whole hops until the slot
			// fits the open window again. Only live columns need zeroing,
			// and writes are confined to [start, start+w).
			k := (r.Slot-(sh.start+w))/h + 1
			sh.zeroCols(sh.start, minInt(k*h, w), capSlots)
			sh.start += k * h
			sh.seq += k
			c.windowsSkipped.Add(uint64(k))
			break
		}
		j, ok := sh.closeWindow(cfg, c)
		c.windowsClosed.Add(1)
		if ok {
			jobs = append(jobs, j)
		} else {
			c.windowsEmpty.Add(1)
		}
	}
	col := r.Slot % capSlots
	if sh.ex.At(r.Participant, col) != 0 {
		c.duplicates.Add(1)
		return jobs, fmt.Errorf("%w: participant %d slot %d", mcs.ErrDuplicateReport, r.Participant, r.Slot)
	}
	sh.sx.Set(r.Participant, col, r.X)
	sh.sy.Set(r.Participant, col, r.Y)
	sh.vx.Set(r.Participant, col, r.VX)
	sh.vy.Set(r.Participant, col, r.VY)
	sh.ex.Set(r.Participant, col, 1)
	sh.ts.Set(r.Participant, col, float64(r.IngestUnixMicro))
	return jobs, nil
}

// closeWindow snapshots the open window into a fresh core.Input, slides the
// ring forward one hop, and reports whether the window held any
// observations. Every stamped cell's age (close time − ingest stamp) is
// observed into the shard and engine freshness histograms, and the window
// claims its still-unclaimed traces. Callers hold sh.mu.
func (sh *shard) closeWindow(cfg Config, c *counters) (job, bool) {
	w, h := cfg.WindowSlots, cfg.HopSlots
	capSlots := w + h
	n := cfg.Participants
	in := core.Input{
		SX: mat.New(n, w), SY: mat.New(n, w),
		VX: mat.New(n, w), VY: mat.New(n, w),
		Existence: mat.New(n, w),
	}
	stamps := mat.New(n, w)
	closedAt := cfg.clock().Now()
	closedUS := closedAt.UnixMicro()
	observed := 0
	for i := 0; i < n; i++ {
		sxr, syr := sh.sx.RowView(i), sh.sy.RowView(i)
		vxr, vyr, exr := sh.vx.RowView(i), sh.vy.RowView(i), sh.ex.RowView(i)
		tsr := sh.ts.RowView(i)
		dx, dy := in.SX.RowView(i), in.SY.RowView(i)
		dvx, dvy, de := in.VX.RowView(i), in.VY.RowView(i), in.Existence.RowView(i)
		dts := stamps.RowView(i)
		for t := 0; t < w; t++ {
			src := (sh.start + t) % capSlots
			if exr[src] == 0 {
				continue
			}
			dx[t], dy[t] = sxr[src], syr[src]
			dvx[t], dvy[t] = vxr[src], vyr[src]
			de[t] = 1
			observed++
			if st := tsr[src]; st > 0 {
				dts[t] = st
				age := time.Duration(closedUS-int64(st)) * time.Microsecond
				sh.ageAtClose.Observe(age)
				if c != nil {
					c.ageAtClose.Observe(age)
				}
			}
		}
	}
	// Link the close into the traces of every report this window is the
	// first to consume; the first linked trace becomes the window's
	// exemplar, surfaced on its span.
	var traceID uint64
	if linked := sh.traces.StageWindow(sh.seq, sh.start, sh.start+w, "window_close", closedUS); len(linked) > 0 {
		traceID = linked[0]
	}
	j := job{
		sh:       sh,
		seq:      sh.seq,
		start:    sh.start,
		observed: observed,
		in:       in,
		stamps:   stamps,
		traceID:  traceID,
		enqueued: closedAt,
	}
	sh.zeroCols(sh.start, h, capSlots)
	sh.start += h
	sh.seq++
	if observed == 0 {
		return job{}, false
	}
	return j, true
}

// zeroCols clears count ring columns starting at absolute slot from.
func (sh *shard) zeroCols(from, count, capSlots int) {
	n, _ := sh.ex.Dims()
	mats := [...]*mat.Dense{sh.sx, sh.sy, sh.vx, sh.vy, sh.ex, sh.ts}
	for i := 0; i < n; i++ {
		for _, m := range mats {
			row := m.RowView(i)
			for t := 0; t < count; t++ {
				row[(from+t)%capSlots] = 0
			}
		}
	}
}

// worker drains the dispatch queue until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.process(j)
	}
}

// process runs the detection loop on one window, updates the fleet's warm
// state and latest result, and publishes to subscribers.
func (e *Engine) process(j job) {
	e.hist.wait.Observe(e.cfg.Clock.Since(j.enqueued))
	var warm *core.WarmState
	if !e.cfg.DisableWarmStart {
		j.sh.mu.Lock()
		warm = j.sh.warm
		j.sh.mu.Unlock()
	}
	began := e.cfg.Clock.Now()
	out, err := core.RunWarm(e.cfg.Core, j.in, warm)
	if err != nil {
		// A window the core refuses (it validated shapes we built, so this
		// is effectively unreachable) is dropped but visible in the stats
		// and reported to the observer instead of vanishing silently.
		e.c.windowsFailed.Add(1)
		if e.cfg.Obs != nil {
			e.cfg.Obs.WindowFailed(j.sh.fleet, j.seq, err)
		}
		return
	}
	runDur := e.cfg.Clock.Since(began)
	e.hist.run.Observe(runDur)
	e.hist.detect.Observe(out.DetectDuration)
	e.hist.correct.Observe(out.CorrectDuration)
	e.hist.check.Observe(out.CheckDuration)
	if out.WarmStarted {
		e.c.warmStarts.Add(1)
	} else {
		e.c.coldStarts.Add(1)
	}

	res := &WindowResult{
		Fleet:       j.sh.fleet,
		Seq:         j.seq,
		StartSlot:   j.start,
		EndSlot:     j.start + e.cfg.WindowSlots,
		Observed:    j.observed,
		Iterations:  out.Iterations,
		Sweeps:      out.Sweeps,
		Converged:   out.Converged,
		WarmStarted: out.WarmStarted,
		QueueWaitMS: float64(began.Sub(j.enqueued)) / 1e6,
		RunMS:       float64(runDur) / 1e6,
		Flags:       collectFlags(out.Detection, j.start),
		Output:      out,
		Input:       j.in,
	}
	res.Flagged = len(res.Flags)

	completedAt := e.cfg.Clock.Now()
	// Ingest→result: every stamped cell in the window has now traveled the
	// full path from its front-door stamp to a published detection verdict.
	if j.stamps != nil {
		completedUS := completedAt.UnixMicro()
		n, w := j.stamps.Dims()
		for i := 0; i < n; i++ {
			row := j.stamps.RowView(i)
			for t := 0; t < w; t++ {
				if st := row[t]; st > 0 {
					lat := time.Duration(completedUS-int64(st)) * time.Microsecond
					j.sh.ingestToResult.Observe(lat)
					e.c.ingestToResult.Observe(lat)
				}
			}
		}
		j.sh.traces.StageSeq(j.seq, "detect", fmt.Sprintf("flagged=%d", res.Flagged), completedUS)
	}

	span := obs.Span{
		Fleet:       res.Fleet,
		Seq:         res.Seq,
		StartSlot:   res.StartSlot,
		EndSlot:     res.EndSlot,
		Observed:    res.Observed,
		Flagged:     res.Flagged,
		Iterations:  res.Iterations,
		Sweeps:      res.Sweeps,
		Converged:   res.Converged,
		WarmStarted: res.WarmStarted,
		QueueWaitMS: res.QueueWaitMS,
		DetectMS:    float64(out.DetectDuration) / 1e6,
		CorrectMS:   float64(out.CorrectDuration) / 1e6,
		CheckMS:     float64(out.CheckDuration) / 1e6,
		RunMS:       res.RunMS,
		CompletedAt: completedAt,
	}
	if j.traceID != 0 {
		span.TraceID = obs.TraceIDString(j.traceID)
	}
	j.sh.spans.Add(span)
	if e.cfg.Obs != nil {
		e.cfg.Obs.WindowProcessed(span)
	}

	j.sh.mu.Lock()
	// Workers may finish out of order; only newer windows advance the warm
	// state and the published latest result.
	if out.Warm != nil && j.seq > j.sh.warmSeq {
		j.sh.warm = out.Warm
		j.sh.warmSeq = j.seq
	}
	if j.sh.latest == nil || j.seq > j.sh.latest.Seq {
		j.sh.latest = res
	}
	j.sh.mu.Unlock()

	if e.cfg.OnResult != nil {
		e.cfg.OnResult(res)
	}
	e.c.windowsDone.Add(1)
	e.publish(res)
	j.sh.traces.StageSeq(j.seq, "publish", "", e.cfg.Clock.Now().UnixMicro())
}

// publish fans a result out to every subscriber without blocking.
func (e *Engine) publish(r *WindowResult) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, ch := range e.subs {
		select {
		case ch <- r:
		default:
			e.c.subscriberDrops.Add(1)
		}
	}
}

// collectFlags lists the raised cells of a detection matrix with slots
// shifted onto the absolute timeline.
func collectFlags(d *mat.Dense, startSlot int) []CellFlag {
	var flags []CellFlag
	n, w := d.Dims()
	for i := 0; i < n; i++ {
		row := d.RowView(i)
		for t := 0; t < w; t++ {
			if row[t] != 0 {
				flags = append(flags, CellFlag{Participant: i, Slot: startSlot + t})
			}
		}
	}
	return flags
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package pipeline

import (
	"testing"
	"time"

	"itscs/internal/mcs"
	"itscs/internal/wal"
)

// TestCrashRecoveryMatchesUninterrupted is the durability acceptance test:
// a fleet is streamed through a WAL-backed engine that is killed mid-stream
// (Abort: no flush, queue discarded), then a fresh engine is rebuilt from
// the newest checkpoint plus a log-tail replay and fed the rest of the
// stream. Every window's F1 must be identical to an uninterrupted run over
// the same reports, and recovery must replay exactly the records appended
// after the checkpoint.
func TestCrashRecoveryMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("streams several full-scale detection windows twice")
	}
	const (
		n     = 40
		w     = 120
		h     = 40
		slots = w + 3*h
	)
	fleet, res := fixture(t, n, slots, 0.15, 0.15)
	reports := fixtureReports("cab", fleet, res)

	// Cut points on the slot timeline: checkpoint after window 0 has closed
	// (slot 120) but before window 1 does (slot 160); crash before window 1
	// closes, so every window past the first is recovered from disk.
	idxCkpt, idxCrash := -1, -1
	for i, r := range reports {
		if idxCkpt < 0 && r.Slot >= 130 {
			idxCkpt = i
		}
		if idxCrash < 0 && r.Slot >= 150 {
			idxCrash = i
		}
	}
	if idxCkpt < 0 || idxCrash <= idxCkpt {
		t.Fatalf("bad cut points %d/%d", idxCkpt, idxCrash)
	}

	newEngine := func(log ReportLog) (*Engine, <-chan *WindowResult, func()) {
		cfg := mechConfig(n, w, h)
		cfg.Workers = 1 // in-order processing so warm state is deterministic
		cfg.Log = log
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, cancel := e.Subscribe(16)
		return e, results, cancel
	}
	// drain collects every buffered result after the engine has closed the
	// subscription channel.
	drain := func(results <-chan *WindowResult, into map[int]float64) {
		deadline := time.After(4 * time.Minute)
		for {
			select {
			case r, ok := <-results:
				if !ok {
					return
				}
				into[r.Seq] = windowF1(t, r.Output.Detection, res, r.StartSlot, r.EndSlot)
			case <-deadline:
				t.Fatal("timed out draining results")
			}
		}
	}

	// Uninterrupted baseline. Close flushes the final partial window, so
	// the recovered run must do the same to match window for window.
	base, baseResults, _ := newEngine(nil)
	for _, r := range reports {
		if err := base.Ingest(r); err != nil {
			t.Fatalf("baseline ingest slot %d: %v", r.Slot, err)
		}
	}
	base.Close()
	baseline := map[int]float64{}
	drain(baseResults, baseline)
	if len(baseline) < 3 {
		t.Fatalf("baseline produced %d windows, want >= 3", len(baseline))
	}

	// Phase A: durable engine, checkpoint mid-stream, then crash.
	dir := t.TempDir()
	log1, err := wal.Open(dir, wal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e1, results1, _ := newEngine(log1)
	for _, r := range reports[:idxCkpt] {
		if err := e1.Ingest(r); err != nil {
			t.Fatalf("phase A ingest slot %d: %v", r.Slot, err)
		}
	}
	// Wait for window 0's result so its warm factors are in the shard (and
	// therefore in the checkpoint) — with one worker results are in order.
	recovered := map[int]float64{}
	select {
	case r := <-results1:
		recovered[r.Seq] = windowF1(t, r.Output.Detection, res, r.StartSlot, r.EndSlot)
	case <-time.After(4 * time.Minute):
		t.Fatal("window 0 never processed before checkpoint")
	}
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.LogIndex != uint64(idxCkpt) {
		t.Fatalf("checkpoint log index = %d, want %d", ck.LogIndex, idxCkpt)
	}
	if _, err := wal.WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[idxCkpt:idxCrash] {
		if err := e1.Ingest(r); err != nil {
			t.Fatalf("phase A ingest slot %d: %v", r.Slot, err)
		}
	}
	e1.Abort() // SIGKILL stand-in: no flush, queued windows discarded
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase B: recover from disk and stream the rest.
	log2, err := wal.Open(dir, wal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	latest, skipped, err := wal.LatestCheckpoint(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("latest checkpoint: %v (skipped %d)", err, skipped)
	}
	e2, results2, _ := newEngine(log2)
	if err := e2.Restore(latest); err != nil {
		t.Fatal(err)
	}
	replayed, err := log2.Replay(latest.LogIndex, func(_ uint64, r mcs.Report) error {
		if err := e2.Replay(r); err != nil {
			t.Fatalf("replay rejected slot %d: %v", r.Slot, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery replays only the records appended after the last checkpoint.
	if want := uint64(idxCrash - idxCkpt); replayed != want {
		t.Fatalf("replayed %d records, want %d (log tail past checkpoint)", replayed, want)
	}
	if got := e2.Stats().Replayed; got != uint64(idxCrash-idxCkpt) {
		t.Fatalf("engine replayed counter = %d, want %d", got, idxCrash-idxCkpt)
	}
	for _, r := range reports[idxCrash:] {
		if err := e2.Ingest(r); err != nil {
			t.Fatalf("phase B ingest slot %d: %v", r.Slot, err)
		}
	}
	e2.Close()
	drain(results2, recovered)

	if len(recovered) != len(baseline) {
		t.Fatalf("recovered %d windows, baseline %d: %v vs %v",
			len(recovered), len(baseline), recovered, baseline)
	}
	for seq, want := range baseline {
		got, ok := recovered[seq]
		if !ok {
			t.Errorf("window seq %d missing after recovery", seq)
			continue
		}
		if got != want {
			t.Errorf("window seq %d: recovered F1 %.6f != uninterrupted F1 %.6f", seq, got, want)
		}
	}
}

package pipeline

import (
	"sync/atomic"
	"time"
)

// histBuckets are the upper bounds (inclusive) of the latency histogram
// buckets in milliseconds, doubling from 1 ms; a final overflow bucket
// catches everything slower. Power-of-two bounds keep Observe cheap and the
// JSON rendering compact.
var histBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	counts [len(histBuckets) + 1]atomic.Uint64
	sumNS  atomic.Int64
	n      atomic.Uint64
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for ; i < len(histBuckets); i++ {
		if ms <= histBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a latency histogram,
// expvar-style JSON friendly.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// MeanMS is the arithmetic-mean latency in milliseconds.
	MeanMS float64 `json:"mean_ms"`
	// Buckets maps each bucket's upper bound in milliseconds to its count;
	// the overflow bucket is keyed -1. Empty buckets are omitted.
	Buckets map[int64]uint64 `json:"buckets"`
}

func (h *histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make(map[int64]uint64)}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		bound := int64(-1)
		if i < len(histBuckets) {
			bound = histBuckets[i]
		}
		s.Buckets[bound] = c
	}
	s.Count = h.n.Load()
	if s.Count > 0 {
		s.MeanMS = float64(h.sumNS.Load()) / float64(s.Count) / 1e6
	}
	return s
}

// counters aggregates the engine's monotonic event counts.
type counters struct {
	ingested        atomic.Uint64
	rejected        atomic.Uint64
	late            atomic.Uint64
	duplicates      atomic.Uint64
	windowsClosed   atomic.Uint64
	windowsEmpty    atomic.Uint64
	windowsSkipped  atomic.Uint64
	windowsDropped  atomic.Uint64
	windowsDone     atomic.Uint64
	windowsFailed   atomic.Uint64
	warmStarts      atomic.Uint64
	coldStarts      atomic.Uint64
	subscriberDrops atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine's instrumentation; it
// marshals directly to the daemon's /metrics JSON.
type Stats struct {
	// Ingested counts accepted reports; Rejected counts refused ones, of
	// which Late arrived below their fleet's retention horizon and
	// Duplicates targeted an already-filled cell.
	Ingested   uint64 `json:"ingested"`
	Rejected   uint64 `json:"rejected"`
	Late       uint64 `json:"late"`
	Duplicates uint64 `json:"duplicates"`
	// WindowsClosed counts windows cut from the streams; WindowsEmpty were
	// discarded for holding no observations, WindowsSkipped were jumped
	// over to catch up after a large slot gap, WindowsDropped fell out of
	// the bounded queue (drop-oldest backpressure), WindowsProcessed ran
	// the detection loop to completion and WindowsFailed errored in it.
	WindowsClosed    uint64 `json:"windows_closed"`
	WindowsEmpty     uint64 `json:"windows_empty"`
	WindowsSkipped   uint64 `json:"windows_skipped"`
	WindowsDropped   uint64 `json:"windows_dropped"`
	WindowsProcessed uint64 `json:"windows_processed"`
	WindowsFailed    uint64 `json:"windows_failed"`
	// WarmStarts and ColdStarts split processed windows by whether CORRECT
	// consumed the previous window's factorization.
	WarmStarts uint64 `json:"warm_starts"`
	ColdStarts uint64 `json:"cold_starts"`
	// SubscriberDrops counts results a slow subscriber failed to receive.
	SubscriberDrops uint64 `json:"subscriber_drops"`
	// QueueDepth and QueueCapacity describe the dispatch queue right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Fleets is the number of shards currently materialized.
	Fleets int `json:"fleets"`
	// PhaseLatency holds per-phase wall-clock histograms: detect, correct,
	// check (cumulative per window across outer rounds), run (one whole
	// DETECT→CORRECT→CHECK loop) and wait (queue residence time).
	PhaseLatency map[string]HistogramSnapshot `json:"phase_latency_ms"`
}

package pipeline

import (
	"sync/atomic"

	"itscs/internal/metrics"
)

// histogram and HistogramSnapshot alias the shared instrumentation types so
// the engine and the WAL report latencies with one bucket scheme.
type histogram = metrics.Histogram

// HistogramSnapshot is a point-in-time copy of a latency histogram.
type HistogramSnapshot = metrics.HistogramSnapshot

// counters aggregates the engine's monotonic event counts. The two
// freshness histograms live here as well so the shard-level window-close
// path can observe into them through the same pointer the engine hands it
// for the counters.
type counters struct {
	ingested          atomic.Uint64
	admittedClean     atomic.Uint64
	taggedQuarantined atomic.Uint64
	taggedProbation   atomic.Uint64
	replayed          atomic.Uint64
	rejected          atomic.Uint64
	late              atomic.Uint64
	duplicates        atomic.Uint64
	nonFinite         atomic.Uint64
	stamped           atomic.Uint64
	unstamped         atomic.Uint64
	windowsClosed     atomic.Uint64
	windowsEmpty      atomic.Uint64
	windowsSkipped    atomic.Uint64
	windowsDropped    atomic.Uint64
	windowsDone       atomic.Uint64
	windowsFailed     atomic.Uint64
	warmStarts        atomic.Uint64
	coldStarts        atomic.Uint64
	subscriberDrops   atomic.Uint64

	// ageAtClose observes report age at window close, ingestToResult the
	// full ingest→result latency; both over metrics.AgeBuckets. Nil in
	// hand-built shard tests — BoundedHistogram tolerates a nil receiver.
	ageAtClose     *metrics.BoundedHistogram
	ingestToResult *metrics.BoundedHistogram
}

// Stats is a point-in-time snapshot of the engine's instrumentation; it
// marshals directly to the daemon's /metrics JSON.
type Stats struct {
	// Ingested counts accepted reports; Replayed counts the subset that
	// arrived through WAL recovery rather than the live transport. Rejected
	// counts refused reports, of which Late arrived below their fleet's
	// retention horizon, Duplicates targeted an already-filled cell, and
	// NonFinite carried NaN or ±Inf coordinates or velocities.
	Ingested uint64 `json:"ingested"`
	// AdmittedClean, TaggedQuarantined and TaggedProbation partition
	// Ingested by the admission gate's verdict on the submitter (see
	// Config.Gate): every accepted report lands in exactly one bucket, so
	// AdmittedClean + TaggedQuarantined + TaggedProbation == Ingested.
	// Without a gate everything is AdmittedClean.
	AdmittedClean     uint64 `json:"admitted_clean"`
	TaggedQuarantined uint64 `json:"tagged_quarantined"`
	TaggedProbation   uint64 `json:"tagged_probation"`
	Replayed          uint64 `json:"replayed"`
	Rejected          uint64 `json:"rejected"`
	Late              uint64 `json:"late"`
	Duplicates        uint64 `json:"duplicates"`
	NonFinite         uint64 `json:"non_finite"`
	// ReportsStamped and ReportsUnstamped partition Ingested by whether the
	// report carried an ingest freshness stamp (a second exact partition,
	// like the admission verdicts): ReportsStamped + ReportsUnstamped ==
	// Ingested, in every life including crashed ones. The engine itself
	// never stamps — stamps are applied at the network front doors and
	// round-trip through the WAL — so replay preserves the partition
	// instead of re-stamping.
	ReportsStamped   uint64 `json:"reports_stamped"`
	ReportsUnstamped uint64 `json:"reports_unstamped"`
	// WindowsClosed counts windows cut from the streams; WindowsEmpty were
	// discarded for holding no observations, WindowsSkipped were jumped
	// over to catch up after a large slot gap, WindowsDropped fell out of
	// the bounded queue (drop-oldest backpressure), WindowsProcessed ran
	// the detection loop to completion and WindowsFailed errored in it.
	WindowsClosed    uint64 `json:"windows_closed"`
	WindowsEmpty     uint64 `json:"windows_empty"`
	WindowsSkipped   uint64 `json:"windows_skipped"`
	WindowsDropped   uint64 `json:"windows_dropped"`
	WindowsProcessed uint64 `json:"windows_processed"`
	WindowsFailed    uint64 `json:"windows_failed"`
	// WindowsDroppedByFleet breaks WindowsDropped down by fleet, so
	// operators can see who is losing data; fleets with no drops are
	// omitted (and the map is nil when nothing has ever been dropped).
	WindowsDroppedByFleet map[string]uint64 `json:"windows_dropped_by_fleet,omitempty"`
	// WarmStarts and ColdStarts split processed windows by whether CORRECT
	// consumed the previous window's factorization.
	WarmStarts uint64 `json:"warm_starts"`
	ColdStarts uint64 `json:"cold_starts"`
	// SubscriberDrops counts results a slow subscriber failed to receive.
	SubscriberDrops uint64 `json:"subscriber_drops"`
	// QueueDepth and QueueCapacity describe the dispatch queue right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Fleets is the number of shards currently materialized.
	Fleets int `json:"fleets"`
	// PhaseLatency holds per-phase wall-clock histograms: detect, correct,
	// check (cumulative per window across outer rounds), run (one whole
	// DETECT→CORRECT→CHECK loop) and wait (queue residence time).
	PhaseLatency map[string]HistogramSnapshot `json:"phase_latency_ms"`
	// AgeAtClose is the distribution of report age — wall-clock time from
	// the front-door ingest stamp to the close of the first window that
	// could detect on the report — and IngestToResult extends it to the
	// moment the window's detection result was published. Both are over
	// metrics.AgeBuckets and observe only stamped reports.
	AgeAtClose     HistogramSnapshot `json:"age_at_close_ms"`
	IngestToResult HistogramSnapshot `json:"ingest_to_result_ms"`
	// Freshness breaks the freshness picture down per fleet, including each
	// stream's watermark position (lag). Nil until a fleet materializes.
	Freshness map[string]FleetFreshness `json:"freshness_by_fleet,omitempty"`
}

// FleetFreshness is one fleet's freshness and lag snapshot.
type FleetFreshness struct {
	// WatermarkSlot is the open window's first slot: every slot below it
	// has been closed (or skipped) for this fleet.
	WatermarkSlot int `json:"watermark_slot"`
	// NextSeq is the sequence number the open window will get; LatestSeq is
	// the newest published result's sequence (-1 before the first). Their
	// gap is the fleet's processing lag in windows.
	NextSeq   int `json:"next_seq"`
	LatestSeq int `json:"latest_seq"`
	// AgeAtClose and IngestToResult are the fleet-local freshness
	// histograms (same definitions as the engine-wide ones).
	AgeAtClose     HistogramSnapshot `json:"age_at_close_ms"`
	IngestToResult HistogramSnapshot `json:"ingest_to_result_ms"`
}

// FreshnessSummary condenses a freshness histogram into the quantiles the
// /status overview serves.
type FreshnessSummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// SummarizeFreshness estimates p50/p90/p99 from a freshness snapshot
// (which must have been observed over metrics.AgeBuckets).
func SummarizeFreshness(s HistogramSnapshot) FreshnessSummary {
	return FreshnessSummary{
		Count:  s.Count,
		MeanMS: s.MeanMS,
		P50MS:  metrics.Quantile(s, metrics.AgeBuckets, 0.50),
		P90MS:  metrics.Quantile(s, metrics.AgeBuckets, 0.90),
		P99MS:  metrics.Quantile(s, metrics.AgeBuckets, 0.99),
	}
}

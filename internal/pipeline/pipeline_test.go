package pipeline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/obs"
	"itscs/internal/trace"
)

// mechConfig is a small configuration for window-mechanics tests that never
// run the detection loop (shard methods are exercised directly).
func mechConfig(n, w, h int) Config {
	cfg := DefaultConfig()
	cfg.Participants = n
	cfg.WindowSlots = w
	cfg.HopSlots = h
	return cfg
}

func report(p, slot int, v float64) mcs.Report {
	return mcs.Report{Participant: p, Slot: slot, X: v, Y: -v, VX: v / 10, VY: -v / 10}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Participants = 0 },
		func(c *Config) { c.WindowSlots = 0 },
		func(c *Config) { c.HopSlots = 0 },
		func(c *Config) { c.HopSlots = c.WindowSlots + 1 },
		func(c *Config) { c.Workers = -1 },
		func(c *Config) { c.QueueDepth = -1 },
		func(c *Config) { c.MaxFleets = -1 },
		func(c *Config) { c.Core.MaxIterations = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

// TestShardWindowSlideAndSnapshot drives a shard directly through two
// window closes and checks the snapshots carry the right cells, including
// the overlap region surviving the slide.
func TestShardWindowSlideAndSnapshot(t *testing.T) {
	cfg := mechConfig(3, 6, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sh, err := e.shard("")
	if err != nil {
		t.Fatal(err)
	}

	// Fill slots 0..5 for participant 0 with x = 100+slot.
	for s := 0; s < 6; s++ {
		if jobs, err := sh.ingest(report(0, s, float64(100+s)), cfg, &e.c); err != nil || len(jobs) != 0 {
			t.Fatalf("slot %d: jobs=%d err=%v", s, len(jobs), err)
		}
	}
	// Slot 6 passes the far edge: window [0,6) closes.
	jobs, err := sh.ingest(report(1, 6, 206), cfg, &e.c)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("close: jobs=%d err=%v", len(jobs), err)
	}
	j := jobs[0]
	if j.seq != 0 || j.start != 0 || j.observed != 6 {
		t.Fatalf("job = seq %d start %d observed %d, want 0/0/6", j.seq, j.start, j.observed)
	}
	for s := 0; s < 6; s++ {
		if got := j.in.SX.At(0, s); got != float64(100+s) {
			t.Errorf("snapshot SX[0,%d] = %v, want %v", s, got, 100+s)
		}
		if got := j.in.Existence.At(0, s); got != 1 {
			t.Errorf("snapshot E[0,%d] = %v, want 1", s, got)
		}
	}
	if j.in.Existence.At(1, 0) != 0 || j.in.Existence.At(2, 3) != 0 {
		t.Error("snapshot marked unreported cells as observed")
	}

	// Next close at slot 8 cuts [2,8): the overlap slots 2..5 must retain
	// participant 0's values, slot 6 participant 1's, and the outgoing hop
	// [0,2) must have been zeroed out of the ring.
	jobs, err = sh.ingest(report(2, 8, 308), cfg, &e.c)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("second close: jobs=%d err=%v", len(jobs), err)
	}
	j = jobs[0]
	if j.seq != 1 || j.start != 2 || j.observed != 5 {
		t.Fatalf("job = seq %d start %d observed %d, want 1/2/5", j.seq, j.start, j.observed)
	}
	for s := 2; s < 6; s++ {
		if got := j.in.SX.At(0, s-2); got != float64(100+s) {
			t.Errorf("overlap SX[0,%d] = %v, want %v", s-2, got, 100+s)
		}
	}
	if got := j.in.SX.At(1, 4); got != 206 {
		t.Errorf("snapshot SX[1,4] = %v, want 206", got)
	}
}

func TestShardLateAndDuplicateReports(t *testing.T) {
	cfg := mechConfig(2, 4, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sh, err := e.shard("")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sh.ingest(report(0, 1, 1), cfg, &e.c); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ingest(report(0, 1, 2), cfg, &e.c); !errors.Is(err, mcs.ErrDuplicateReport) {
		t.Fatalf("duplicate err = %v", err)
	}
	// Slide past slot 1 (close [0,4) at slot 4), then slot 1 is late.
	if _, err := sh.ingest(report(0, 4, 3), cfg, &e.c); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ingest(report(1, 1, 4), cfg, &e.c); !errors.Is(err, ErrLateReport) {
		t.Fatalf("late err = %v", err)
	}
	if got := e.c.duplicates.Load(); got != 1 {
		t.Errorf("duplicates = %d, want 1", got)
	}
	if got := e.c.late.Load(); got != 1 {
		t.Errorf("late = %d, want 1", got)
	}
}

// TestShardFastForward checks a far-future slot skips whole hops instead of
// closing hundreds of windows, and leaves the ring clean for new data.
func TestShardFastForward(t *testing.T) {
	cfg := mechConfig(2, 4, 2)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sh, err := e.shard("")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sh.ingest(report(0, 0, 1), cfg, &e.c); err != nil {
		t.Fatal(err)
	}
	jump := 1000
	jobs, err := sh.ingest(report(0, jump, 2), cfg, &e.c)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first catch-up close holds data; the rest are empty, and the
	// remainder of the gap is skipped wholesale.
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	if got := e.c.windowsClosed.Load(); got != maxCatchUpCloses {
		t.Errorf("windowsClosed = %d, want %d", got, maxCatchUpCloses)
	}
	if e.c.windowsSkipped.Load() == 0 {
		t.Error("no windows skipped")
	}
	if jump < sh.start || jump >= sh.start+cfg.WindowSlots {
		t.Errorf("slot %d outside open window [%d,%d)", jump, sh.start, sh.start+cfg.WindowSlots)
	}
	// The ring must be clean around the landing slot: same participant can
	// fill the neighboring slots without phantom duplicates.
	for s := sh.start; s < sh.start+cfg.WindowSlots; s++ {
		if s == jump {
			continue
		}
		if _, err := sh.ingest(report(0, s, 3), cfg, &e.c); err != nil {
			t.Fatalf("slot %d after fast-forward: %v", s, err)
		}
	}
}

// TestEnqueueDropOldest exercises the backpressure policy on an engine with
// no workers, so the queue cannot drain; evictions must reach the per-fleet
// breakdown and the observer, not just the global counter.
func TestEnqueueDropOldest(t *testing.T) {
	rec := &recordingObserver{}
	cfg := mechConfig(2, 4, 2)
	cfg.Obs = rec
	e := &Engine{
		cfg:    cfg,
		queue:  make(chan job, 2),
		shards: make(map[string]*shard),
	}
	sh, err := e.shard("cab")
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 4; seq++ {
		e.enqueue(job{sh: sh, seq: seq})
	}
	if got := e.c.windowsDropped.Load(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	first, second := <-e.queue, <-e.queue
	if first.seq != 2 || second.seq != 3 {
		t.Fatalf("queue kept seqs %d,%d, want 2,3 (newest)", first.seq, second.seq)
	}
	if got := e.Stats().WindowsDroppedByFleet["cab"]; got != 2 {
		t.Errorf("per-fleet drops = %d, want 2", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.dropped) != 2 || rec.dropped[0] != 0 || rec.dropped[1] != 1 {
		t.Errorf("observer saw drops %v, want [0 1]", rec.dropped)
	}
}

// recordingObserver captures observer callbacks for assertions.
type recordingObserver struct {
	mu        sync.Mutex
	processed []obs.Span
	dropped   []int // evicted window seqs
	failed    []int
}

func (r *recordingObserver) WindowProcessed(s obs.Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.processed = append(r.processed, s)
}

func (r *recordingObserver) WindowDropped(fleet string, seq, queueDepth int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropped = append(r.dropped, seq)
}

func (r *recordingObserver) WindowFailed(fleet string, seq int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed = append(r.failed, seq)
}

func TestIngestValidation(t *testing.T) {
	cfg := mechConfig(2, 4, 2)
	cfg.MaxFleets = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Ingest(mcs.Report{Participant: 2, Slot: 0}); err == nil {
		t.Error("out-of-range participant accepted")
	}
	if err := e.Ingest(mcs.Report{Participant: 0, Slot: -1}); err == nil {
		t.Error("negative slot accepted")
	}
	if err := e.Ingest(mcs.Report{Fleet: "a", Participant: 0, Slot: 0}); err != nil {
		t.Errorf("first fleet rejected: %v", err)
	}
	if err := e.Ingest(mcs.Report{Fleet: "b", Participant: 0, Slot: 0}); !errors.Is(err, ErrTooManyFleets) {
		t.Errorf("second fleet err = %v, want ErrTooManyFleets", err)
	}
	if _, err := e.Latest("nope"); !errors.Is(err, ErrUnknownFleet) {
		t.Errorf("Latest err = %v, want ErrUnknownFleet", err)
	}
	// A known fleet with no completed window is a different condition than
	// an unknown fleet — and never a silent (nil, nil).
	if res, err := e.Latest("a"); !errors.Is(err, ErrNoResult) || res != nil {
		t.Errorf("Latest before first window = (%v, %v), want (nil, ErrNoResult)", res, err)
	}
	if _, err := e.Trace("nope"); !errors.Is(err, ErrUnknownFleet) {
		t.Errorf("Trace err = %v, want ErrUnknownFleet", err)
	}
	if spans, err := e.Trace("a"); err != nil || len(spans) != 0 {
		t.Errorf("Trace before first window = (%v, %v), want empty", spans, err)
	}
	if err := e.Flush("nope"); !errors.Is(err, ErrUnknownFleet) {
		t.Errorf("Flush err = %v, want ErrUnknownFleet", err)
	}

	st := e.Stats()
	if st.Fleets != 1 || st.Ingested != 1 || st.Rejected != 3 {
		t.Errorf("stats = fleets %d ingested %d rejected %d, want 1/1/3", st.Fleets, st.Ingested, st.Rejected)
	}

	e.Close()
	if err := e.Ingest(mcs.Report{Fleet: "a", Participant: 0, Slot: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close err = %v, want ErrClosed", err)
	}
	if err := e.Flush("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestSubscribeCancelAndClose(t *testing.T) {
	e, err := New(mechConfig(2, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	ch1, cancel1 := e.Subscribe(1)
	cancel1()
	cancel1() // idempotent
	if _, open := <-ch1; open {
		t.Error("canceled subscription channel still open")
	}

	ch2, _ := e.Subscribe(1)
	e.Close()
	if _, open := <-ch2; open {
		t.Error("subscription survived engine close")
	}
	ch3, cancel3 := e.Subscribe(1)
	if _, open := <-ch3; open {
		t.Error("post-close subscription not closed")
	}
	cancel3()
}

// TestPublishDropsSlowSubscriber pins the non-blocking fan-out.
func TestPublishDropsSlowSubscriber(t *testing.T) {
	e, err := New(mechConfig(2, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ch, cancel := e.Subscribe(1)
	defer cancel()
	e.publish(&WindowResult{Seq: 0})
	e.publish(&WindowResult{Seq: 1})
	if got := e.c.subscriberDrops.Load(); got != 1 {
		t.Errorf("subscriberDrops = %d, want 1", got)
	}
	if r := <-ch; r.Seq != 0 {
		t.Errorf("delivered seq %d, want 0", r.Seq)
	}
}

// TestEngineProcessesWindows runs the full engine — ingest through worker
// pool to subscription — on a fleet small enough for CI, checking results
// arrive in order with sane contents and the second window warm-starts.
func TestEngineProcessesWindows(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	rec := &recordingObserver{}
	cfg := mechConfig(n, w, h)
	cfg.Workers = 1 // serialize windows so warm state is ready for window 2
	cfg.Obs = rec
	fleet, res := fixture(t, n, w+2*h+1, 0.1, 0.1)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	results, cancel := e.Subscribe(8)
	defer cancel()

	streamFixture(t, e, "cab", fleet, res)

	var got []*WindowResult
	deadline := time.After(2 * time.Minute)
	for len(got) < 2 {
		select {
		case r := <-results:
			got = append(got, r)
		case <-deadline:
			t.Fatalf("timed out with %d results", len(got))
		}
	}

	for i, r := range got {
		if r.Fleet != "cab" {
			t.Errorf("result %d fleet = %q", i, r.Fleet)
		}
		if r.Seq != i || r.StartSlot != i*h || r.EndSlot != i*h+w {
			t.Errorf("result %d = seq %d [%d,%d), want seq %d [%d,%d)",
				i, r.Seq, r.StartSlot, r.EndSlot, i, i*h, i*h+w)
		}
		if r.Observed == 0 || r.Output == nil {
			t.Errorf("result %d empty: observed %d", i, r.Observed)
		}
		if r.Flagged != len(r.Flags) {
			t.Errorf("result %d flagged %d != len(flags) %d", i, r.Flagged, len(r.Flags))
		}
	}
	if got[0].WarmStarted {
		t.Error("first window claims a warm start")
	}
	if !got[1].WarmStarted {
		t.Error("second window did not warm-start")
	}

	latest, err := e.Latest("cab")
	if err != nil || latest == nil {
		t.Fatalf("Latest: %v", err)
	}
	if latest.Seq < 1 {
		t.Errorf("latest seq = %d, want >= 1", latest.Seq)
	}
	st := e.Stats()
	if st.WarmStarts < 1 || st.ColdStarts < 1 {
		t.Errorf("warm/cold = %d/%d, want >= 1 each", st.WarmStarts, st.ColdStarts)
	}
	if st.PhaseLatency["run"].Count < 2 {
		t.Errorf("run histogram count = %d, want >= 2", st.PhaseLatency["run"].Count)
	}
	if fleets := e.Fleets(); len(fleets) != 1 || fleets[0] != "cab" {
		t.Errorf("fleets = %v", fleets)
	}

	// Every processed window must leave a trace span — in the fleet's ring
	// (newest first) and at the observer — carrying the per-phase split.
	spans, err := e.Trace("cab")
	if err != nil || len(spans) < 2 {
		t.Fatalf("Trace = %d spans, err %v; want >= 2", len(spans), err)
	}
	if spans[0].Seq <= spans[1].Seq {
		t.Errorf("spans not newest-first: seqs %d, %d", spans[0].Seq, spans[1].Seq)
	}
	for _, s := range spans {
		if s.Fleet != "cab" || s.EndSlot-s.StartSlot != w {
			t.Errorf("span = %+v", s)
		}
		if s.RunMS <= 0 || s.QueueWaitMS < 0 || s.DetectMS <= 0 || s.CorrectMS <= 0 || s.CheckMS <= 0 {
			t.Errorf("span durations = %+v", s)
		}
		if s.Sweeps <= 0 || s.Iterations <= 0 {
			t.Errorf("span loop stats = %+v", s)
		}
		if s.CompletedAt.IsZero() {
			t.Errorf("span missing completion stamp: %+v", s)
		}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.processed) < 2 {
		t.Errorf("observer saw %d processed windows, want >= 2", len(rec.processed))
	}
	if len(rec.dropped) != 0 || len(rec.failed) != 0 {
		t.Errorf("observer saw drops %v / failures %v on a healthy run", rec.dropped, rec.failed)
	}
	if got[1].Sweeps <= 0 {
		t.Errorf("warm window sweeps = %d, want > 0", got[1].Sweeps)
	}
}

// TestFlushDispatchesPartialWindow checks Flush closes a window that would
// otherwise wait forever for its far edge.
func TestFlushDispatchesPartialWindow(t *testing.T) {
	const (
		n = 24
		w = 60
		h = 20
	)
	cfg := mechConfig(n, w, h)
	fleet, res := fixture(t, n, w/2, 0.1, 0.1)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	results, cancel := e.Subscribe(2)
	defer cancel()

	streamFixture(t, e, "", fleet, res)
	if err := e.Flush(""); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-results:
		if r.StartSlot != 0 || r.EndSlot != w {
			t.Errorf("flushed window [%d,%d), want [0,%d)", r.StartSlot, r.EndSlot, w)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("flushed window never processed")
	}
}

// fixture generates a corrupted synthetic fleet (mirrors the core tests).
func fixture(t testing.TB, n, slots int, alpha, beta float64) (*trace.Fleet, *corrupt.Result) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Participants = n
	cfg.Slots = slots
	fleet, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = alpha
	plan.FaultyRatio = beta
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, res
}

// fixtureReports turns the observed cells of a corrupted fleet into
// slot-ordered reports, as the transport would deliver them.
func fixtureReports(fleetID string, fleet *trace.Fleet, res *corrupt.Result) []mcs.Report {
	n, slots := res.SX.Dims()
	var reports []mcs.Report
	for s := 0; s < slots; s++ {
		for i := 0; i < n; i++ {
			if res.Existence.At(i, s) == 0 {
				continue
			}
			reports = append(reports, mcs.Report{
				Fleet:       fleetID,
				Participant: i,
				Slot:        s,
				X:           res.SX.At(i, s),
				Y:           res.SY.At(i, s),
				VX:          fleet.VX.At(i, s),
				VY:          fleet.VY.At(i, s),
			})
		}
	}
	return reports
}

// streamFixture feeds every observed cell of a corrupted fleet into the
// engine in slot order.
func streamFixture(t testing.TB, e *Engine, fleetID string, fleet *trace.Fleet, res *corrupt.Result) {
	t.Helper()
	for _, r := range fixtureReports(fleetID, fleet, res) {
		if err := e.Ingest(r); err != nil {
			t.Fatalf("ingest participant %d slot %d: %v", r.Participant, r.Slot, err)
		}
	}
}

package core

import (
	"testing"

	"itscs/internal/corrupt"
	"itscs/internal/csrecon"
	"itscs/internal/mat"
	"itscs/internal/metrics"
	"itscs/internal/trace"
)

// fixture generates a small fleet and corrupts it.
func fixture(t testing.TB, n, slots int, alpha, beta float64) (*trace.Fleet, *corrupt.Result) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Participants = n
	cfg.Slots = slots
	fleet, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = alpha
	plan.FaultyRatio = beta
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, res
}

func inputFrom(fleet *trace.Fleet, res *corrupt.Result) Input {
	return Input{
		SX:        res.SX,
		SY:        res.SY,
		Existence: res.Existence,
		VX:        fleet.VX,
		VY:        fleet.VY,
	}
}

func TestRunEndToEndModerateCorruption(t *testing.T) {
	fleet, res := fixture(t, 40, 120, 0.2, 0.2)
	cfg := DefaultConfig()
	out, err := Run(cfg, inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("did not converge in %d iterations", out.Iterations)
	}
	conf, err := metrics.Compare(out.Detection, res.Faulty, res.Existence)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Precision() < 0.9 {
		t.Fatalf("precision = %.4f, want >= 0.9 (%v)", conf.Precision(), conf)
	}
	if conf.Recall() < 0.9 {
		t.Fatalf("recall = %.4f, want >= 0.9 (%v)", conf.Recall(), conf)
	}
	mae, err := metrics.MAE(fleet.X, fleet.Y, out.XHat, out.YHat, res.Existence, out.Detection)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 500 {
		t.Fatalf("reconstruction MAE = %.1f m, want < 500 m", mae)
	}
}

func TestRunConvergesWithinPaperBound(t *testing.T) {
	fleet, res := fixture(t, 30, 100, 0.3, 0.3)
	cfg := DefaultConfig()
	out, err := Run(cfg, inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Iterations > 6 {
		t.Fatalf("converged in %d iterations; paper observes <= 4", out.Iterations)
	}
}

func TestRunKeepsHistory(t *testing.T) {
	fleet, res := fixture(t, 20, 80, 0.2, 0.1)
	cfg := DefaultConfig()
	cfg.KeepHistory = true
	out, err := Run(cfg, inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.History) != out.Iterations {
		t.Fatalf("history has %d entries for %d iterations", len(out.History), out.Iterations)
	}
	last := out.History[len(out.History)-1]
	if last.ChangedFlags != 0 {
		t.Fatal("last snapshot should record convergence (0 changed flags)")
	}
	if !last.Detection.Equal(out.Detection, 0) {
		t.Fatal("last snapshot detection must match final output")
	}
	for _, snap := range out.History {
		if snap.XHat == nil || snap.YHat == nil {
			t.Fatal("snapshots must carry reconstructions")
		}
	}
}

func TestRunNoCorruptionIsClean(t *testing.T) {
	fleet, res := fixture(t, 20, 80, 0, 0)
	out, err := Run(DefaultConfig(), inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	conf, err := metrics.Compare(out.Detection, res.Faulty, res.Existence)
	if err != nil {
		t.Fatal(err)
	}
	if conf.FalsePositiveRate() > 0.02 {
		t.Fatalf("clean data false positive rate = %.4f", conf.FalsePositiveRate())
	}
}

func TestRunDeterministic(t *testing.T) {
	fleet, res := fixture(t, 15, 60, 0.2, 0.2)
	a, err := Run(DefaultConfig(), inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(), inputFrom(fleet, res))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Detection.Equal(b.Detection, 0) || !a.XHat.Equal(b.XHat, 0) {
		t.Fatal("Run must be deterministic")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	fleet, res := fixture(t, 15, 60, 0.2, 0.2)
	in := inputFrom(fleet, res)
	sx, sy := in.SX.Clone(), in.SY.Clone()
	e, vx, vy := in.Existence.Clone(), in.VX.Clone(), in.VY.Clone()
	if _, err := Run(DefaultConfig(), in); err != nil {
		t.Fatal(err)
	}
	if !in.SX.Equal(sx, 0) || !in.SY.Equal(sy, 0) || !in.Existence.Equal(e, 0) ||
		!in.VX.Equal(vx, 0) || !in.VY.Equal(vy, 0) {
		t.Fatal("Run must not mutate its input")
	}
}

func TestRunVariants(t *testing.T) {
	fleet, res := fixture(t, 25, 80, 0.2, 0.2)
	for _, variant := range []csrecon.Variant{
		csrecon.VariantBasic, csrecon.VariantTemporal, csrecon.VariantVelocityTemporal,
	} {
		cfg := DefaultConfig()
		cfg.Reconstruct.Variant = variant
		out, err := Run(cfg, inputFrom(fleet, res))
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		conf, err := metrics.Compare(out.Detection, res.Faulty, res.Existence)
		if err != nil {
			t.Fatal(err)
		}
		// The paper reports near-indistinguishable detection across the
		// I(TS,CS)-like variants (faults are km-scale, reconstruction
		// differences are sub-km).
		if conf.Recall() < 0.85 || conf.Precision() < 0.85 {
			t.Fatalf("%v: P=%.3f R=%.3f below floor", variant, conf.Precision(), conf.Recall())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.Detect.Window = 2 },
		func(c *Config) { c.Reconstruct.Rank = -1 },
		func(c *Config) { c.CheckLowMeters = 0 },
		func(c *Config) { c.CheckHighMeters = c.CheckLowMeters },
		func(c *Config) { c.MaxIterations = 0 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

func TestInputValidation(t *testing.T) {
	good := Input{
		SX: mat.New(2, 3), SY: mat.New(2, 3), Existence: mat.Ones(2, 3),
		VX: mat.New(2, 3), VY: mat.New(2, 3),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Input{
		{},
		{SX: mat.New(2, 3), SY: mat.New(2, 3), Existence: mat.Ones(2, 3), VX: mat.New(2, 3)},
		{SX: mat.New(0, 0), SY: mat.New(0, 0), Existence: mat.New(0, 0), VX: mat.New(0, 0), VY: mat.New(0, 0)},
		{SX: mat.New(2, 3), SY: mat.New(3, 2), Existence: mat.Ones(2, 3), VX: mat.New(2, 3), VY: mat.New(2, 3)},
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
		if _, err := Run(DefaultConfig(), in); err == nil {
			t.Fatalf("case %d should fail Run", i)
		}
	}
}

func TestGBIM(t *testing.T) {
	e, _ := mat.NewFromRows([][]float64{{1, 1, 0, 0}})
	d, _ := mat.NewFromRows([][]float64{{0, 1, 0, 1}})
	b := gbim(e, d)
	want := []float64{1, 0, 0, 0}
	for j, w := range want {
		if b.At(0, j) != w {
			t.Fatalf("B[%d] = %v, want %v", j, b.At(0, j), w)
		}
	}
}

func TestCheckFlipsBothWays(t *testing.T) {
	// thresholds: clear below 300 m, raise above 600 m
	s, _ := mat.NewFromRows([][]float64{{100, 100, 100, 0}})
	sHat, _ := mat.NewFromRows([][]float64{{150, 2000, 100, 100}})
	d, _ := mat.NewFromRows([][]float64{{1, 0, 1, 1}})
	e, _ := mat.NewFromRows([][]float64{{1, 1, 1, 0}})
	out := check(s, sHat, d, e, 300, 600)
	if out.At(0, 0) != 0 {
		t.Fatal("close match must clear the flag")
	}
	if out.At(0, 1) != 1 {
		t.Fatal("large deviation must raise the flag")
	}
	if out.At(0, 2) != 0 {
		t.Fatal("exact match must clear the flag")
	}
	if out.At(0, 3) != 1 {
		t.Fatal("missing cell must be left alone")
	}
	// In-between deviations change nothing.
	s2, _ := mat.NewFromRows([][]float64{{100, 100}})
	h2, _ := mat.NewFromRows([][]float64{{600, 600}})
	d2, _ := mat.NewFromRows([][]float64{{1, 0}})
	e2, _ := mat.NewFromRows([][]float64{{1, 1}})
	out2 := check(s2, h2, d2, e2, 300, 600)
	if out2.At(0, 0) != 1 || out2.At(0, 1) != 0 {
		t.Fatal("deviation between thresholds must leave flags unchanged")
	}
}

func TestDiffAndFlagCount(t *testing.T) {
	a, _ := mat.NewFromRows([][]float64{{1, 0, 1}})
	b, _ := mat.NewFromRows([][]float64{{0, 0, 1}})
	if diffCount(a, b) != 1 {
		t.Fatalf("diffCount = %d", diffCount(a, b))
	}
	e, _ := mat.NewFromRows([][]float64{{1, 1, 0}})
	if flagCount(a, e) != 1 {
		t.Fatalf("flagCount = %d", flagCount(a, e))
	}
}

func TestMaskDetection(t *testing.T) {
	d, _ := mat.NewFromRows([][]float64{{1, 1}})
	e, _ := mat.NewFromRows([][]float64{{1, 0}})
	m := maskDetection(d, e)
	if m.At(0, 0) != 1 || m.At(0, 1) != 0 {
		t.Fatalf("mask = %v", m)
	}
}

package core

import (
	"fmt"

	"itscs/internal/csrecon"
	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/tsdetect"
)

// ScalarInput is a single-matrix dataset for RunScalar: generic sensory
// data (temperature, pollution, signal strength, …) instead of paired
// coordinates. The paper notes I(TS,CS) "can be easily extended to other
// kinds of sensory data" (§I); this is that extension.
type ScalarInput struct {
	// S is the sensory matrix (participants × slots, zeros at missing cells).
	S *mat.Dense
	// Existence marks observed cells.
	Existence *mat.Dense
	// Rate optionally reports the sensed quantity's instantaneous rate of
	// change (the scalar analogue of velocity), in units per second. When
	// nil, the detector falls back to its tolerance floor and the
	// reconstruction to the pure temporal-stability variant.
	Rate *mat.Dense
}

// Validate reports input shape errors.
func (in ScalarInput) Validate() error {
	if in.S == nil || in.Existence == nil {
		return fmt.Errorf("core: sensory and existence matrices are required")
	}
	n, t := in.S.Dims()
	if n == 0 || t == 0 {
		return fmt.Errorf("core: empty sensory matrix")
	}
	if er, ec := in.Existence.Dims(); er != n || ec != t {
		return fmt.Errorf("core: existence is %dx%d, want %dx%d", er, ec, n, t)
	}
	if in.Rate != nil {
		if rr, rc := in.Rate.Dims(); rr != n || rc != t {
			return fmt.Errorf("core: rate is %dx%d, want %dx%d", rr, rc, n, t)
		}
	}
	return nil
}

// ScalarOutput is the RunScalar result.
type ScalarOutput struct {
	// Detection marks observed cells judged faulty.
	Detection *mat.Dense
	// SHat is the final reconstruction.
	SHat *mat.Dense
	// Iterations counts the outer rounds run.
	Iterations int
	// Converged reports whether the flag set stabilized.
	Converged bool
}

// RunScalar executes the I(TS,CS) loop over a single sensory matrix.
// The structure is identical to Run but without the X/Y union: one
// detector pass, one reconstruction, one Check per round.
func RunScalar(cfg Config, in ScalarInput) (*ScalarOutput, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n, t := in.S.Dims()

	rate := in.Rate
	if rate == nil {
		rate = mat.New(n, t)
		// Without rate data the velocity-improved objective degenerates to
		// a zero target, which would penalize all motion as unexplained;
		// the temporal variant is the faithful fallback.
		if cfg.Reconstruct.Variant == csrecon.VariantVelocityTemporal {
			cfg.Reconstruct.Variant = csrecon.VariantTemporal
		}
	}
	avgRate := motion.AverageVelocity(rate)

	d, err := tsdetect.Detect(in.S, nil, avgRate, mat.Ones(n, t), in.Existence, true, cfg.Detect)
	if err != nil {
		return nil, fmt.Errorf("core: first scalar detect: %w", err)
	}

	out := &ScalarOutput{}
	var sHat *mat.Dense
	var prevChecked *mat.Dense
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		b := gbim(in.Existence, d)
		res, err := reconstructAxis(cfg, in.S, b, avgRate, nil)
		if err != nil {
			return nil, fmt.Errorf("core: scalar reconstruct: %w", err)
		}
		sHat = res.SHat

		high := cfg.CheckHighMeters
		if !cfg.DisableAdaptiveCheck {
			high = adaptiveHigh(in.S, sHat, b, cfg.CheckHighMeters)
		}
		next := check(in.S, sHat, d, in.Existence, cfg.CheckLowMeters, high)

		changed := next.Rows() * next.Cols()
		if prevChecked != nil {
			changed = diffCount(prevChecked, next)
		}
		prevChecked = next
		out.Iterations = iter + 1
		d = next
		if changed == 0 {
			out.Converged = true
			break
		}

		d, err = tsdetect.Detect(in.S, sHat, avgRate, d, in.Existence, false, cfg.Detect)
		if err != nil {
			return nil, fmt.Errorf("core: scalar detect: %w", err)
		}
	}

	out.Detection = maskDetection(prevChecked, in.Existence)
	out.SHat = sHat
	return out, nil
}

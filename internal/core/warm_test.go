package core

import (
	"testing"
)

// TestRunWarmCarriesAndReportsFactors exercises the streaming entry point:
// a cold RunWarm publishes factors, a second RunWarm seeded with them
// reports the warm start, and detection quality matches the batch path.
func TestRunWarmCarriesAndReportsFactors(t *testing.T) {
	fleet, res := fixture(t, 30, 90, 0.15, 0.1)
	cfg := DefaultConfig()
	in := inputFrom(fleet, res)

	first, err := RunWarm(cfg, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.WarmStarted {
		t.Error("cold RunWarm reported WarmStarted")
	}
	if first.Warm == nil || first.Warm.X.L == nil || first.Warm.Y.R == nil {
		t.Fatal("RunWarm did not publish factors")
	}
	if first.DetectDuration <= 0 || first.CorrectDuration <= 0 || first.CheckDuration <= 0 {
		t.Errorf("phase durations not recorded: detect=%v correct=%v check=%v",
			first.DetectDuration, first.CorrectDuration, first.CheckDuration)
	}

	second, err := RunWarm(cfg, in, first.Warm)
	if err != nil {
		t.Fatal(err)
	}
	if !second.WarmStarted {
		t.Error("seeded RunWarm did not warm-start")
	}

	// Batch Run on the same input also publishes factors (cold path).
	batch, err := Run(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if batch.WarmStarted {
		t.Error("Run reported WarmStarted")
	}
	if batch.Warm == nil {
		t.Error("Run did not publish factors")
	}

	// The warm-started run must find the same faults as the batch run:
	// faults are kilometers-scale while reconstruction-path differences are
	// tens of meters, so the detection matrices should agree almost
	// everywhere.
	n, slots := batch.Detection.Dims()
	var diff int
	for i := 0; i < n; i++ {
		br := batch.Detection.RowView(i)
		wr := second.Detection.RowView(i)
		for j := 0; j < slots; j++ {
			if br[j] != wr[j] {
				diff++
			}
		}
	}
	if frac := float64(diff) / float64(n*slots); frac > 0.01 {
		t.Errorf("warm and batch detections differ on %.2f%% of cells", 100*frac)
	}
}

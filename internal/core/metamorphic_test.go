package core

import (
	"math/rand"
	"testing"

	"itscs/internal/mat"
	"itscs/internal/tsdetect"
)

// This file holds the metamorphic suite: properties that relate the
// algorithms' outputs under input transformations with known effects.
// Each one is an algebraic consequence of the paper's definitions, so a
// violation is a logic bug, not a tuning issue.

// permuteRows returns a copy of m with row i moved to position perm[i].
func permuteRows(m *mat.Dense, perm []int) *mat.Dense {
	n, t := m.Dims()
	out := mat.New(n, t)
	for i, p := range perm {
		copy(out.RowView(p), m.RowView(i))
	}
	return out
}

// matsEqual reports exact element-wise equality.
func matsEqual(a, b *mat.Dense) bool {
	n, t := a.Dims()
	if bn, bt := b.Dims(); bn != n || bt != t {
		return false
	}
	for i := 0; i < n; i++ {
		ar, br := a.RowView(i), b.RowView(i)
		for j := 0; j < t; j++ {
			if ar[j] != br[j] {
				return false
			}
		}
	}
	return true
}

// TestMetamorphicRowPermutation: participants are exchangeable — the
// framework never looks at row order, so permuting the fleet must permute
// the detection matrix and nothing else. DETECT is row-local by
// construction; CORRECT's factorization is permutation-equivariant.
func TestMetamorphicRowPermutation(t *testing.T) {
	fleet, res := fixture(t, 12, 60, 0.15, 0.15)
	in := inputFrom(fleet, res)
	cfg := DefaultConfig()
	base, err := Run(cfg, in)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	n, _ := in.SX.Dims()
	perm := rng.Perm(n)
	permuted := Input{
		SX:        permuteRows(in.SX, perm),
		SY:        permuteRows(in.SY, perm),
		Existence: permuteRows(in.Existence, perm),
		VX:        permuteRows(in.VX, perm),
		VY:        permuteRows(in.VY, perm),
	}
	got, err := Run(cfg, permuted)
	if err != nil {
		t.Fatal(err)
	}
	if !matsEqual(got.Detection, permuteRows(base.Detection, perm)) {
		t.Fatal("row permutation changed the detection verdicts")
	}
}

// TestMetamorphicTranslationInvariance: TS_Detect compares each point to
// its window median, so shifting the whole coordinate frame by a constant
// must not change a single verdict — faults are relative, not absolute.
func TestMetamorphicTranslationInvariance(t *testing.T) {
	_, res := fixture(t, 10, 48, 0.2, 0.2)
	n, slots := res.SX.Dims()
	avgV := mat.Filled(n, slots, 5)
	opt := tsdetect.DefaultOptions()
	ones := mat.Ones(n, slots)

	base, err := tsdetect.Detect(res.SX, nil, avgV, ones, res.Existence, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []float64{1024, -65536, 1 << 20} {
		shifted := res.SX.Map(func(v float64) float64 { return v + shift })
		got, err := tsdetect.Detect(shifted, nil, avgV, ones, res.Existence, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !matsEqual(got, base) {
			t.Fatalf("translating the frame by %v changed detection", shift)
		}
	}
}

// TestMetamorphicDetectClearOnly: a DETECT pass may only clear flags, never
// raise them — the low-false-negative contract of Algorithm 1. Feeding it a
// detection matrix must yield an element-wise subset.
func TestMetamorphicDetectClearOnly(t *testing.T) {
	_, res := fixture(t, 8, 40, 0.2, 0.3)
	n, slots := res.SX.Dims()
	avgV := mat.Filled(n, slots, 3)
	rng := rand.New(rand.NewSource(17))
	d := mat.New(n, slots)
	d.Apply(func(i, j int, v float64) float64 {
		if rng.Float64() < 0.5 {
			return 1
		}
		return 0
	})
	got, err := tsdetect.Detect(res.SX, nil, avgV, d, res.Existence, true, tsdetect.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dr, gr := d.RowView(i), got.RowView(i)
		for j := 0; j < slots; j++ {
			if gr[j] > dr[j] {
				t.Fatalf("detect raised flag at (%d,%d): %v -> %v", i, j, dr[j], gr[j])
			}
		}
	}
}

// TestMetamorphicCheckMonotone: Check() is monotone in the detection
// matrix. Cells that agree with the reconstruction come out 0, cells that
// strongly disagree come out 1, and the band between passes the input
// through — so d1 ≤ d2 implies check(d1) ≤ check(d2), element-wise.
func TestMetamorphicCheckMonotone(t *testing.T) {
	const n, slots = 9, 30
	rng := rand.New(rand.NewSource(23))
	s := mat.New(n, slots)
	sHat := mat.New(n, slots)
	e := mat.New(n, slots)
	d2 := mat.New(n, slots)
	d1 := mat.New(n, slots)
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			sHat.Set(i, j, rng.Float64()*1e4)
			// Spread residuals across clear / keep / raise bands.
			s.Set(i, j, sHat.At(i, j)+rng.Float64()*1200-600)
			if rng.Float64() < 0.8 {
				e.Set(i, j, 1)
			}
			if rng.Float64() < 0.5 {
				d2.Set(i, j, 1)
				if rng.Float64() < 0.5 {
					d1.Set(i, j, 1) // d1 is a random subset of d2
				}
			}
		}
	}
	c1 := check(s, sHat, d1, e, 300, 600)
	c2 := check(s, sHat, d2, e, 300, 600)
	for i := 0; i < n; i++ {
		r1, r2 := c1.RowView(i), c2.RowView(i)
		for j := 0; j < slots; j++ {
			if r1[j] > r2[j] {
				t.Fatalf("check not monotone at (%d,%d): subset input flagged, superset clean", i, j)
			}
		}
	}
	// Missing cells must pass through untouched: no sensory value, no verdict.
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			if e.At(i, j) == 0 && c2.At(i, j) != d2.At(i, j) {
				t.Fatalf("check flipped a missing cell at (%d,%d)", i, j)
			}
		}
	}
}

// TestMetamorphicGBIMProperties: the Generalized Binary Index Matrix of
// Definition 7 trusts exactly the observed-and-unflagged cells, so B ∧ D
// is empty and B ≤ E, for any detection matrix.
func TestMetamorphicGBIMProperties(t *testing.T) {
	const n, slots = 7, 25
	rng := rand.New(rand.NewSource(29))
	e := mat.New(n, slots)
	d := mat.New(n, slots)
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			if rng.Float64() < 0.7 {
				e.Set(i, j, 1)
			}
			if rng.Float64() < 0.4 {
				d.Set(i, j, 1)
			}
		}
	}
	b := gbim(e, d)
	for i := 0; i < n; i++ {
		br, dr, er := b.RowView(i), d.RowView(i), e.RowView(i)
		for j := 0; j < slots; j++ {
			if br[j] == 1 && dr[j] == 1 {
				t.Fatalf("B trusts a flagged cell at (%d,%d)", i, j)
			}
			if br[j] > er[j] {
				t.Fatalf("B trusts an unobserved cell at (%d,%d)", i, j)
			}
			if er[j] == 1 && dr[j] == 0 && br[j] != 1 {
				t.Fatalf("B distrusts a clean observed cell at (%d,%d)", i, j)
			}
		}
	}
}

// TestMetamorphicMaskIdempotent: masking detection to observed cells is
// idempotent and zeroes exactly the unobserved entries.
func TestMetamorphicMaskIdempotent(t *testing.T) {
	const n, slots = 6, 20
	rng := rand.New(rand.NewSource(31))
	e := mat.New(n, slots)
	d := mat.New(n, slots)
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			if rng.Float64() < 0.6 {
				e.Set(i, j, 1)
			}
			if rng.Float64() < 0.5 {
				d.Set(i, j, 1)
			}
		}
	}
	once := maskDetection(d, e)
	twice := maskDetection(once, e)
	if !matsEqual(once, twice) {
		t.Fatal("maskDetection is not idempotent")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			switch {
			case e.At(i, j) == 0 && once.At(i, j) != 0:
				t.Fatalf("mask kept a flag on an unobserved cell (%d,%d)", i, j)
			case e.At(i, j) == 1 && once.At(i, j) != d.At(i, j):
				t.Fatalf("mask altered an observed cell (%d,%d)", i, j)
			}
		}
	}
}

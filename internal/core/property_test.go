package core

import (
	"testing"
	"testing/quick"

	"itscs/internal/metrics"
)

// TestPropertyDetectionInvariants drives the full loop over random small
// corruptions and checks structural invariants of the output:
//
//   - the detection matrix is binary,
//   - no unobserved cell is ever reported as detected,
//   - reconstructions are finite and shaped like the input,
//   - iteration count respects the configured bound.
func TestPropertyDetectionInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("property loop is expensive")
	}
	f := func(seedRaw uint8, aRaw, bRaw uint8) bool {
		alpha := float64(aRaw%35) / 100
		beta := float64(bRaw%35) / 100
		fleet, res := fixture(t, 12, 50, alpha, beta)
		cfg := DefaultConfig()
		cfg.MaxIterations = 6
		out, err := Run(cfg, inputFrom(fleet, res))
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		if out.Iterations > cfg.MaxIterations {
			return false
		}
		n, tt := res.SX.Dims()
		dr, dc := out.Detection.Dims()
		if dr != n || dc != tt {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < tt; j++ {
				d := out.Detection.At(i, j)
				if d != 0 && d != 1 {
					return false
				}
				if d == 1 && res.Existence.At(i, j) == 0 {
					return false
				}
				if isBad(out.XHat.At(i, j)) || isBad(out.YHat.At(i, j)) {
					return false
				}
			}
		}
		// Derived metrics must be well-defined.
		if _, err := metrics.Compare(out.Detection, res.Faulty, res.Existence); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func isBad(v float64) bool {
	return v != v || v > 1e12 || v < -1e12
}

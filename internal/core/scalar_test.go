package core

import (
	"math"
	"testing"

	"itscs/internal/csrecon"
	"itscs/internal/mat"
	"itscs/internal/stat"
)

// scalarFixture builds a low-rank scalar field (e.g. a temperature grid:
// shared diurnal pattern with per-sensor offset and gain) with injected
// missing cells and spike faults.
func scalarFixture(t *testing.T, n, slots int, alpha, beta float64) (truth, s, e, faulty *mat.Dense) {
	t.Helper()
	rng := stat.NewRNG(5)
	truth = mat.New(n, slots)
	for i := 0; i < n; i++ {
		offset := rng.Uniform(15, 25)
		gain := rng.Uniform(3, 8)
		phase := rng.Uniform(0, 0.5)
		for j := 0; j < slots; j++ {
			cycle := math.Sin(2*math.Pi*float64(j)/float64(slots) + phase)
			truth.Set(i, j, offset+gain*cycle+0.05*rng.NormFloat64())
		}
	}
	s = truth.Clone()
	e = mat.Ones(n, slots)
	faulty = mat.New(n, slots)
	total := n * slots
	perm := rng.Perm(total)
	nMissing := int(alpha * float64(total))
	nFaulty := int(beta * float64(total))
	for k, cell := range perm[:nMissing+nFaulty] {
		i, j := cell/slots, cell%slots
		if k < nMissing {
			e.Set(i, j, 0)
			s.Set(i, j, 0)
			continue
		}
		faulty.Set(i, j, 1)
		s.Add(i, j, rng.Sign()*rng.Uniform(30, 80)) // spikes far outside the diurnal range
	}
	return truth, s, e, faulty
}

// scalarConfig rescales the meter-calibrated defaults to temperature units.
func scalarConfig() Config {
	cfg := DefaultConfig()
	cfg.Detect.MinToleranceMeters = 3 // degrees, despite the field name
	cfg.CheckLowMeters = 2
	cfg.CheckHighMeters = 10
	return cfg
}

func TestRunScalarDetectsSpikes(t *testing.T) {
	_, s, e, faulty := scalarFixture(t, 20, 80, 0.15, 0.15)
	out, err := RunScalar(scalarConfig(), ScalarInput{S: s, Existence: e})
	if err != nil {
		t.Fatal(err)
	}
	conf := confusion(out.Detection, faulty, e)
	if conf.prec() < 0.9 || conf.rec() < 0.9 {
		t.Fatalf("scalar detection P=%.3f R=%.3f", conf.prec(), conf.rec())
	}
}

func TestRunScalarReconstructs(t *testing.T) {
	truth, s, e, _ := scalarFixture(t, 20, 80, 0.2, 0.1)
	out, err := RunScalar(scalarConfig(), ScalarInput{S: s, Existence: e})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var cnt int
	for i := 0; i < 20; i++ {
		for j := 0; j < 80; j++ {
			if e.At(i, j) == 0 {
				sum += math.Abs(truth.At(i, j) - out.SHat.At(i, j))
				cnt++
			}
		}
	}
	if mae := sum / float64(cnt); mae > 2 {
		t.Fatalf("scalar reconstruction MAE = %.2f degrees", mae)
	}
}

func TestRunScalarNilRateFallsBackToTemporal(t *testing.T) {
	_, s, e, _ := scalarFixture(t, 10, 40, 0.1, 0.1)
	cfg := scalarConfig()
	cfg.Reconstruct.Variant = csrecon.VariantVelocityTemporal
	// Must not error despite the velocity variant having no rate data.
	out, err := RunScalar(cfg, ScalarInput{S: s, Existence: e})
	if err != nil {
		t.Fatal(err)
	}
	if out.SHat == nil {
		t.Fatal("missing reconstruction")
	}
}

func TestRunScalarWithRate(t *testing.T) {
	truth, s, e, faulty := scalarFixture(t, 15, 60, 0.15, 0.15)
	// Rate = discrete derivative of the truth (per second over 30 s slots).
	rate := mat.New(15, 60)
	for i := 0; i < 15; i++ {
		for j := 1; j < 60; j++ {
			rate.Set(i, j, (truth.At(i, j)-truth.At(i, j-1))/30)
		}
	}
	out, err := RunScalar(scalarConfig(), ScalarInput{S: s, Existence: e, Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	conf := confusion(out.Detection, faulty, e)
	if conf.rec() < 0.9 {
		t.Fatalf("rate-assisted recall = %.3f", conf.rec())
	}
}

func TestRunScalarValidation(t *testing.T) {
	cases := []ScalarInput{
		{},
		{S: mat.New(0, 0), Existence: mat.New(0, 0)},
		{S: mat.New(2, 3), Existence: mat.New(1, 1)},
		{S: mat.New(2, 3), Existence: mat.Ones(2, 3), Rate: mat.New(1, 1)},
	}
	for i, in := range cases {
		if _, err := RunScalar(DefaultConfig(), in); err == nil {
			t.Fatalf("case %d should be rejected", i)
		}
	}
	bad := DefaultConfig()
	bad.MaxIterations = 0
	if _, err := RunScalar(bad, ScalarInput{S: mat.New(2, 3), Existence: mat.Ones(2, 3)}); err == nil {
		t.Fatal("bad config should be rejected")
	}
}

// confusion is a tiny local tally to avoid importing metrics into core's
// white-box tests twice.
type confusionCount struct{ tp, fp, fn int }

func confusion(d, f, e *mat.Dense) confusionCount {
	var c confusionCount
	n, t := d.Dims()
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if e.At(i, j) == 0 {
				continue
			}
			flagged := d.At(i, j) != 0
			truth := f.At(i, j) != 0
			switch {
			case flagged && truth:
				c.tp++
			case flagged:
				c.fp++
			case truth:
				c.fn++
			}
		}
	}
	return c
}

func (c confusionCount) prec() float64 {
	if c.tp+c.fp == 0 {
		return 1
	}
	return float64(c.tp) / float64(c.tp+c.fp)
}

func (c confusionCount) rec() float64 {
	if c.tp+c.fn == 0 {
		return 1
	}
	return float64(c.tp) / float64(c.tp+c.fn)
}

// Package core implements the I(TS,CS) framework itself: the iterative
// DETECT-and-CORRECT loop of the paper's Fig. 2 that couples the
// time-series outlier detector (internal/tsdetect) with compressive-sensing
// reconstruction (internal/csrecon) and the Check() reconciliation of
// Algorithm 3, iterating until the detection matrix stabilizes.
package core

import (
	"fmt"
	"sync"
	"time"

	"itscs/internal/csrecon"
	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/stat"
	"itscs/internal/tsdetect"
)

// Config assembles the framework parameters.
type Config struct {
	// Detect configures the Optimized Local Median Method.
	Detect tsdetect.Options
	// Reconstruct configures CS reconstruction; its Variant selects
	// between I(TS,CS), I(TS,CS)-without-V and I(TS,CS)-without-VT.
	Reconstruct csrecon.Options
	// CheckLowMeters clears a flag when the sensory value sits within this
	// distance of the reconstruction (Algorithm 3's thres_l).
	CheckLowMeters float64
	// CheckHighMeters raises a flag when the sensory value deviates from
	// the reconstruction by more than this (Algorithm 3's thres_u).
	CheckHighMeters float64
	// MaxIterations bounds the outer loop; the paper observes convergence
	// within 4 iterations even at α = β = 40 %.
	MaxIterations int
	// KeepHistory retains per-iteration snapshots for convergence studies.
	KeepHistory bool
	// DisableAdaptiveCheck pins Check() to the fixed thresholds above.
	// By default the raise threshold adapts upward to the reconstruction's
	// own residual level on trusted cells (its 99th percentile, with
	// headroom), so datasets whose low-rank truncation floor exceeds
	// CheckHighMeters do not drown in false positives. The paper notes the
	// faulty-data threshold is "system-specific" (Definition 4); this is
	// the corresponding automation.
	DisableAdaptiveCheck bool
}

// DefaultConfig returns the evaluation configuration. The Check thresholds
// sit between the reconstruction error scale (≈200 m) and the fault bias
// scale (kilometers): flags are cleared below 300 m and raised above 600 m.
func DefaultConfig() Config {
	return Config{
		Detect:          tsdetect.DefaultOptions(),
		Reconstruct:     csrecon.DefaultOptions(),
		CheckLowMeters:  300,
		CheckHighMeters: 600,
		MaxIterations:   15,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Detect.Validate(); err != nil {
		return err
	}
	if err := c.Reconstruct.Validate(); err != nil {
		return err
	}
	switch {
	case c.CheckLowMeters <= 0:
		return fmt.Errorf("core: check low threshold must be positive, got %v", c.CheckLowMeters)
	case c.CheckHighMeters <= c.CheckLowMeters:
		return fmt.Errorf("core: check high threshold %v must exceed low %v", c.CheckHighMeters, c.CheckLowMeters)
	case c.MaxIterations < 1:
		return fmt.Errorf("core: max iterations must be >= 1, got %d", c.MaxIterations)
	}
	return nil
}

// Input is one corrupted dataset to repair.
type Input struct {
	// SX, SY are the sensory matrices (zeros at missing cells).
	SX, SY *mat.Dense
	// Existence marks observed cells (Definition 3).
	Existence *mat.Dense
	// VX, VY are the reported instantaneous velocities. They drive both
	// the adaptive detection tolerance and (for the full variant) the
	// reconstruction's velocity term.
	VX, VY *mat.Dense
}

// Validate reports input shape errors.
func (in Input) Validate() error {
	if in.SX == nil || in.SY == nil || in.Existence == nil || in.VX == nil || in.VY == nil {
		return fmt.Errorf("core: all input matrices are required")
	}
	n, t := in.SX.Dims()
	if n == 0 || t == 0 {
		return fmt.Errorf("core: empty sensory matrices")
	}
	for name, m := range map[string]*mat.Dense{
		"SY": in.SY, "E": in.Existence, "VX": in.VX, "VY": in.VY,
	} {
		if mr, mc := m.Dims(); mr != n || mc != t {
			return fmt.Errorf("core: %s is %dx%d, want %dx%d", name, mr, mc, n, t)
		}
	}
	return nil
}

// Snapshot captures the framework state after one outer iteration.
type Snapshot struct {
	// Detection is the detection matrix after Check().
	Detection *mat.Dense
	// XHat, YHat are the reconstructions of this iteration.
	XHat, YHat *mat.Dense
	// FlagCount is the number of raised detection flags (over observed cells).
	FlagCount int
	// ChangedFlags counts detection entries that differ from the previous
	// iteration (the convergence criterion is ChangedFlags == 0).
	ChangedFlags int
}

// WarmState carries the per-axis CORRECT factorizations of a completed run
// so a later run over overlapping data (e.g. the next sliding window) can
// warm-start its reconstructions instead of cold-starting from SVD.
type WarmState struct {
	X, Y csrecon.Factors
}

// Output is the framework result.
type Output struct {
	// Detection is the final Detection Matrix D restricted to observed
	// cells: 1 marks data judged faulty.
	Detection *mat.Dense
	// XHat, YHat are the final Reconstructed Matrices.
	XHat, YHat *mat.Dense
	// Iterations is the number of outer DETECT→CORRECT→CHECK rounds run.
	Iterations int
	// Converged reports whether D stabilized before MaxIterations.
	Converged bool
	// History holds per-iteration snapshots when Config.KeepHistory is set.
	History []Snapshot
	// Warm holds the final CORRECT factorizations, ready to seed RunWarm on
	// the next overlapping window.
	Warm *WarmState
	// WarmStarted reports whether the first CORRECT round consumed the
	// caller-provided warm state (false when it fell back to cold SVD init,
	// e.g. on a shape or rank change).
	WarmStarted bool
	// DetectDuration, CorrectDuration and CheckDuration are the cumulative
	// wall-clock times spent in each phase across all outer rounds.
	DetectDuration  time.Duration
	CorrectDuration time.Duration
	CheckDuration   time.Duration
	// Sweeps is the total number of ASD sweeps the CORRECT phases ran,
	// summed over both axes and all outer rounds — the dominant cost term,
	// and the number a warm start is supposed to shrink.
	Sweeps int
	// RowFlips counts, per participant row, the detection entries the
	// CHECK phases flipped (cleared or raised) across all outer rounds. A
	// high flip count marks a participant whose data sat in the ambiguous
	// band between the clear and raise thresholds — a reliability signal
	// the reputation layer folds into its trust score.
	RowFlips []int
}

// Run executes I(TS,CS) on the input. Every CORRECT round cold-starts its
// reconstructions; see RunWarm for the streaming entry point.
func Run(cfg Config, in Input) (*Output, error) {
	return run(cfg, in, nil, false)
}

// RunWarm executes I(TS,CS) with warm-started reconstructions: the first
// CORRECT round seeds ASD from warm (when compatible; pass nil to cold-start
// the first round), and every later round within the run seeds from the
// previous round's factors — the detection mask changes only slightly
// between rounds, so the previous factorization is close to the new
// optimum. Output.Warm carries the final factors for the next window.
func RunWarm(cfg Config, in Input, warm *WarmState) (*Output, error) {
	return run(cfg, in, warm, true)
}

func run(cfg Config, in Input, warm *WarmState, carry bool) (*Output, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n, t := in.SX.Dims()

	avgVX := motion.AverageVelocity(in.VX)
	avgVY := motion.AverageVelocity(in.VY)

	// DETECT, first pass: D starts all ones; the detector clears what
	// tests normal, minimizing false negatives (Algorithm 1).
	phaseStart := time.Now()
	ones := mat.Ones(n, t)
	dx, err := tsdetect.Detect(in.SX, nil, avgVX, ones, in.Existence, true, cfg.Detect)
	if err != nil {
		return nil, fmt.Errorf("core: first detect X: %w", err)
	}
	dy, err := tsdetect.Detect(in.SY, nil, avgVY, ones, in.Existence, true, cfg.Detect)
	if err != nil {
		return nil, fmt.Errorf("core: first detect Y: %w", err)
	}
	d, err := tsdetect.Union(dx, dy)
	if err != nil {
		return nil, fmt.Errorf("core: union detections: %w", err)
	}

	out := &Output{RowFlips: make([]int, n)}
	out.DetectDuration += time.Since(phaseStart)
	// Per-axis warm factors: seeded from the caller's state, then (in the
	// carry mode of RunWarm) refreshed with each round's result.
	var warmX, warmY *csrecon.Factors
	if warm != nil {
		warmX, warmY = &warm.X, &warm.Y
	}
	var xHat, yHat *mat.Dense
	var prevChecked *mat.Dense
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// CORRECT: reconstruct from the trusted cells B = E ∧ ¬D.
		// The two axes are independent; run them concurrently.
		phaseStart = time.Now()
		b := gbim(in.Existence, d)
		var resX, resY *csrecon.Result
		var errX, errY error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			resX, errX = reconstructAxis(cfg, in.SX, b, avgVX, warmX)
		}()
		go func() {
			defer wg.Done()
			resY, errY = reconstructAxis(cfg, in.SY, b, avgVY, warmY)
		}()
		wg.Wait()
		if errX != nil {
			return nil, fmt.Errorf("core: reconstruct X: %w", errX)
		}
		if errY != nil {
			return nil, fmt.Errorf("core: reconstruct Y: %w", errY)
		}
		xHat, yHat = resX.SHat, resY.SHat
		out.Sweeps += resX.Iterations + resY.Iterations
		if iter == 0 {
			out.WarmStarted = resX.WarmStarted || resY.WarmStarted
		}
		out.Warm = &WarmState{X: resX.Factors, Y: resY.Factors}
		if carry {
			warmX, warmY = &out.Warm.X, &out.Warm.Y
		}
		out.CorrectDuration += time.Since(phaseStart)

		// CHECK: reconcile flags against the reconstruction (Algorithm 3),
		// per axis, then union — a cell stays flagged if either axis
		// disagrees with the reconstruction.
		phaseStart = time.Now()
		highX, highY := cfg.CheckHighMeters, cfg.CheckHighMeters
		if !cfg.DisableAdaptiveCheck {
			highX = adaptiveHigh(in.SX, xHat, b, cfg.CheckHighMeters)
			highY = adaptiveHigh(in.SY, yHat, b, cfg.CheckHighMeters)
		}
		cx := check(in.SX, xHat, d, in.Existence, cfg.CheckLowMeters, highX)
		cy := check(in.SY, yHat, d, in.Existence, cfg.CheckLowMeters, highY)
		next, err := tsdetect.Union(cx, cy)
		if err != nil {
			return nil, fmt.Errorf("core: union checks: %w", err)
		}
		accumulateRowFlips(out.RowFlips, d, next)

		// The paper's convergence criterion is "D never changes again":
		// compare the post-Check detection against the previous round's.
		changed := next.Rows() * next.Cols()
		if prevChecked != nil {
			changed = diffCount(prevChecked, next)
		}
		prevChecked = next
		out.Iterations = iter + 1
		if cfg.KeepHistory {
			out.History = append(out.History, Snapshot{
				Detection:    maskDetection(next, in.Existence),
				XHat:         xHat.Clone(),
				YHat:         yHat.Clone(),
				FlagCount:    flagCount(next, in.Existence),
				ChangedFlags: changed,
			})
		}
		d = next
		out.CheckDuration += time.Since(phaseStart)
		if changed == 0 {
			out.Converged = true
			break
		}

		// DETECT again with the reconstruction standing in for missing
		// values (Algorithm 1 lines 1-5).
		phaseStart = time.Now()
		dx, err = tsdetect.Detect(in.SX, xHat, avgVX, d, in.Existence, false, cfg.Detect)
		if err != nil {
			return nil, fmt.Errorf("core: detect X: %w", err)
		}
		dy, err = tsdetect.Detect(in.SY, yHat, avgVY, d, in.Existence, false, cfg.Detect)
		if err != nil {
			return nil, fmt.Errorf("core: detect Y: %w", err)
		}
		d, err = tsdetect.Union(dx, dy)
		if err != nil {
			return nil, fmt.Errorf("core: union detections: %w", err)
		}
		out.DetectDuration += time.Since(phaseStart)
	}

	// prevChecked holds the last post-Check detection — the framework's
	// answer even when the loop exhausted MaxIterations (d may have been
	// advanced by a trailing TS_Detect pass).
	out.Detection = maskDetection(prevChecked, in.Existence)
	out.XHat = xHat
	out.YHat = yHat
	return out, nil
}

// reconstructAxis runs CS reconstruction for one axis, passing the average
// velocity only to the variant that uses it.
func reconstructAxis(cfg Config, s, b, avgV *mat.Dense, warm *csrecon.Factors) (*csrecon.Result, error) {
	if cfg.Reconstruct.Variant != csrecon.VariantVelocityTemporal {
		avgV = nil
	}
	return csrecon.ReconstructWarm(s, b, avgV, warm, cfg.Reconstruct)
}

// gbim computes the Generalized Binary Index Matrix of Definition 7:
// B(i,j) = 1 iff the cell was observed and is not currently flagged.
func gbim(e, d *mat.Dense) *mat.Dense {
	n, t := e.Dims()
	b := mat.New(n, t)
	for i := 0; i < n; i++ {
		eRow := e.RowView(i)
		dRow := d.RowView(i)
		bRow := b.RowView(i)
		for j := 0; j < t; j++ {
			if eRow[j] == 1 && dRow[j] == 0 {
				bRow[j] = 1
			}
		}
	}
	return b
}

// adaptiveHigh widens the raise threshold to sit above the
// reconstruction's own error level: the 99th percentile of |S−Ŝ| over
// currently-trusted cells, with 25 % headroom, floored at the configured
// threshold. Trusted cells are overwhelmingly clean, so this tracks the
// truncation/noise floor rather than the faults.
func adaptiveHigh(s, sHat, b *mat.Dense, floor float64) float64 {
	n, t := s.Dims()
	residuals := make([]float64, 0, n*t)
	for i := 0; i < n; i++ {
		sRow := s.RowView(i)
		hRow := sHat.RowView(i)
		bRow := b.RowView(i)
		for j := 0; j < t; j++ {
			if bRow[j] == 1 {
				diff := sRow[j] - hRow[j]
				if diff < 0 {
					diff = -diff
				}
				residuals = append(residuals, diff)
			}
		}
	}
	q, err := stat.Quantile(residuals, 0.99)
	if err != nil {
		return floor
	}
	if adaptive := 1.25 * q; adaptive > floor {
		return adaptive
	}
	return floor
}

// check implements Algorithm 3 for one axis: clear flags whose sensory
// value now agrees with the reconstruction (|S−Ŝ| < low), raise flags that
// strongly disagree (|S−Ŝ| > high). Missing cells are skipped — they hold
// no sensory value to compare, and flapping them would prevent convergence
// (implementation note; the paper iterates over all of S but a missing
// cell's stored zero is an encoding artifact, not data).
func check(s, sHat, d, e *mat.Dense, low, high float64) *mat.Dense {
	n, t := s.Dims()
	out := d.Clone()
	for i := 0; i < n; i++ {
		sRow := s.RowView(i)
		hRow := sHat.RowView(i)
		dRow := d.RowView(i)
		eRow := e.RowView(i)
		oRow := out.RowView(i)
		for j := 0; j < t; j++ {
			if eRow[j] == 0 {
				continue
			}
			diff := sRow[j] - hRow[j]
			if diff < 0 {
				diff = -diff
			}
			switch {
			case diff < low && dRow[j] == 1:
				oRow[j] = 0
			case diff > high && dRow[j] == 0:
				oRow[j] = 1
			}
		}
	}
	return out
}

// accumulateRowFlips adds the per-row count of entries CHECK flipped
// (pre-check detection vs post-check) into acc. Check only touches
// observed cells, so the diff is automatically restricted to them.
func accumulateRowFlips(acc []int, pre, post *mat.Dense) {
	n, t := pre.Dims()
	for i := 0; i < n; i++ {
		pr := pre.RowView(i)
		qr := post.RowView(i)
		for j := 0; j < t; j++ {
			if pr[j] != qr[j] {
				acc[i]++
			}
		}
	}
}

// diffCount counts elements that differ between two binary matrices.
func diffCount(a, b *mat.Dense) int {
	n, t := a.Dims()
	var cnt int
	for i := 0; i < n; i++ {
		ar := a.RowView(i)
		br := b.RowView(i)
		for j := 0; j < t; j++ {
			if ar[j] != br[j] {
				cnt++
			}
		}
	}
	return cnt
}

// flagCount counts raised flags over observed cells.
func flagCount(d, e *mat.Dense) int {
	n, t := d.Dims()
	var cnt int
	for i := 0; i < n; i++ {
		dr := d.RowView(i)
		er := e.RowView(i)
		for j := 0; j < t; j++ {
			if dr[j] != 0 && er[j] != 0 {
				cnt++
			}
		}
	}
	return cnt
}

// maskDetection zeroes detection entries at unobserved cells: a cell with
// no observation cannot be a detected fault. TS_Detect leaves such cells
// flagged on the first pass as a bookkeeping artifact.
func maskDetection(d, e *mat.Dense) *mat.Dense {
	n, t := d.Dims()
	out := d.Clone()
	for i := 0; i < n; i++ {
		er := e.RowView(i)
		or := out.RowView(i)
		for j := 0; j < t; j++ {
			if er[j] == 0 {
				or[j] = 0
			}
		}
	}
	return out
}

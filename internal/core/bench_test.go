package core

import (
	"fmt"
	"testing"

	"itscs/internal/metrics"
)

// benchWorkload adapts the test fixture for benchmarks.
func benchWorkload(b *testing.B, n, slots int, alpha, beta float64) (Input, func(*Output) (float64, float64, float64)) {
	b.Helper()
	fleet, res := fixture(b, n, slots, alpha, beta)
	score := func(out *Output) (precision, recall, mae float64) {
		conf, err := metrics.Compare(out.Detection, res.Faulty, res.Existence)
		if err != nil {
			b.Fatal(err)
		}
		v, err := metrics.MAE(fleet.X, fleet.Y, out.XHat, out.YHat, res.Existence, out.Detection)
		if err != nil {
			b.Fatal(err)
		}
		return conf.Precision(), conf.Recall(), v
	}
	return inputFrom(fleet, res), score
}

// BenchmarkRunFramework measures the end-to-end loop at a moderate load.
func BenchmarkRunFramework(b *testing.B) {
	in, score := benchWorkload(b, 40, 120, 0.2, 0.2)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Run(cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p, r, mae := score(out)
			b.ReportMetric(p, "precision")
			b.ReportMetric(r, "recall")
			b.ReportMetric(mae, "MAE_m")
			b.ReportMetric(float64(out.Iterations), "outer_iters")
		}
	}
}

// BenchmarkRunPaperScale measures the end-to-end loop at the paper's
// SUVnet evaluation dimensions (158 taxis × 240 slots), the scale the
// speedup targets are quoted against.
func BenchmarkRunPaperScale(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale end-to-end run skipped in short mode")
	}
	in, score := benchWorkload(b, 158, 240, 0.2, 0.2)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Run(cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p, r, mae := score(out)
			b.ReportMetric(p, "precision")
			b.ReportMetric(r, "recall")
			b.ReportMetric(mae, "MAE_m")
			b.ReportMetric(float64(out.Iterations), "outer_iters")
		}
	}
}

// BenchmarkCheckThresholds is the DESIGN.md ablation over Algorithm 3's
// clear/raise thresholds: too tight a pair flaps and over-flags, too loose
// a pair lets faults leak into the trusted set.
func BenchmarkCheckThresholds(b *testing.B) {
	in, score := benchWorkload(b, 40, 120, 0.3, 0.3)
	for _, th := range []struct{ lo, hi float64 }{
		{100, 300}, {300, 800}, {600, 1600},
	} {
		b.Run(fmt.Sprintf("lo%03.0f_hi%04.0f", th.lo, th.hi), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.CheckLowMeters = th.lo
			cfg.CheckHighMeters = th.hi
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := Run(cfg, in)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					p, r, mae := score(out)
					b.ReportMetric(p, "precision")
					b.ReportMetric(r, "recall")
					b.ReportMetric(mae, "MAE_m")
				}
			}
		})
	}
}

package reputation_test

import (
	"bytes"
	"math"
	"testing"

	"itscs/internal/core"
	"itscs/internal/mat"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
)

// window synthesizes a completed WindowResult: every cell observed, the
// reconstruction agreeing exactly with the sensory values (zero residual),
// no CHECK flips, and per-row flagged fractions as given — so a row's
// badness is exactly its flagged fraction.
func window(fleet string, seq, n, w int, flagged map[int]float64) *pipeline.WindowResult {
	sx, sy := mat.New(n, w), mat.New(n, w)
	ex, d := mat.New(n, w), mat.New(n, w)
	for i := 0; i < n; i++ {
		k := int(math.Round(flagged[i] * float64(w)))
		for j := 0; j < w; j++ {
			sx.Set(i, j, float64(100*i+j))
			sy.Set(i, j, float64(200*i-j))
			ex.Set(i, j, 1)
			if j < k {
				d.Set(i, j, 1)
			}
		}
	}
	return &pipeline.WindowResult{
		Fleet: fleet,
		Seq:   seq,
		Input: core.Input{SX: sx, SY: sy, Existence: ex},
		Output: &core.Output{
			Detection: d,
			XHat:      sx.Clone(),
			YHat:      sy.Clone(),
			RowFlips:  make([]int, n),
		},
	}
}

func mustLedger(t *testing.T, cfg reputation.Config) *reputation.Ledger {
	t.Helper()
	l, err := reputation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func rowState(t *testing.T, l *reputation.Ledger, fleet string, part int) string {
	t.Helper()
	ps, ok := l.Participant(fleet, part)
	if !ok {
		t.Fatalf("participant %d of %q has no snapshot", part, fleet)
	}
	return ps.State
}

// TestStateMachineLifecycle walks one participant around the full cycle
// trusted → suspect → quarantined → probation → trusted while a clean
// sibling in the same fleet never leaves trusted.
func TestStateMachineLifecycle(t *testing.T) {
	l := mustLedger(t, reputation.DefaultConfig())
	const fleet = "alpha"
	seq := 0
	fold := func(badFrac float64) {
		l.Fold(window(fleet, seq, 2, 20, map[int]float64{1: badFrac}))
		seq++
	}

	sawSuspect, sawQuarantine, sawProbation := false, false, false
	for i := 0; i < 12 && !sawQuarantine; i++ {
		fold(0.8)
		switch rowState(t, l, fleet, 1) {
		case "suspect":
			sawSuspect = true
		case "quarantined":
			sawQuarantine = true
		}
	}
	if !sawSuspect || !sawQuarantine {
		t.Fatalf("80%%-faulty row never reached quarantine (suspect=%v quarantined=%v)",
			sawSuspect, sawQuarantine)
	}
	if l.Admit(fleet, 1) != pipeline.AdmitQuarantined {
		t.Fatalf("Admit(quarantined row) = %v, want AdmitQuarantined", l.Admit(fleet, 1))
	}

	for i := 0; i < 60 && rowState(t, l, fleet, 1) != "trusted"; i++ {
		fold(0)
		if rowState(t, l, fleet, 1) == "probation" {
			sawProbation = true
			if l.Admit(fleet, 1) != pipeline.AdmitProbation {
				t.Fatalf("Admit(probation row) = %v, want AdmitProbation", l.Admit(fleet, 1))
			}
		}
	}
	if !sawProbation {
		t.Fatal("recovery skipped probation — hysteresis broken")
	}
	if got := rowState(t, l, fleet, 1); got != "trusted" {
		t.Fatalf("row never readmitted: final state %s", got)
	}
	if got := rowState(t, l, fleet, 0); got != "trusted" {
		t.Fatalf("clean sibling left trusted: %s", got)
	}
	if l.Admit(fleet, 0) != pipeline.AdmitClean {
		t.Fatal("clean row not admitted clean")
	}

	// Every edge of the cycle was counted.
	want := map[[2]string]bool{
		{"trusted", "suspect"}:       true,
		{"suspect", "quarantined"}:   true,
		{"quarantined", "probation"}: true,
		{"probation", "trusted"}:     true,
	}
	for _, tr := range l.Stats().Transitions {
		delete(want, [2]string{tr.From, tr.To})
	}
	if len(want) != 0 {
		t.Fatalf("uncounted transitions: %v (got %+v)", want, l.Stats().Transitions)
	}
}

// TestFoldFrontierIdempotent re-delivers windows (replay after restore) and
// delivers one out of order; both are skipped and counted, never folded
// twice.
func TestFoldFrontierIdempotent(t *testing.T) {
	l := mustLedger(t, reputation.DefaultConfig())
	w0 := window("f", 0, 1, 10, map[int]float64{0: 0.5})
	w1 := window("f", 1, 1, 10, nil)
	l.Fold(w0)
	l.Fold(w1)
	blob1, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	l.Fold(w0) // replayed duplicate
	l.Fold(w1) // replayed duplicate
	st := l.Stats()
	if st.Folded != 2 || st.Skipped != 2 {
		t.Fatalf("folded=%d skipped=%d, want 2/2", st.Folded, st.Skipped)
	}
	// Skips move the skip counter but not the trust state.
	blob2, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(blob1, blob2) {
		t.Fatal("skip counter did not serialize")
	}
	ps1, _ := l.Participant("f", 0)
	l.Fold(window("f", 1, 1, 10, map[int]float64{0: 1})) // out of order vs frontier
	ps2, _ := l.Participant("f", 0)
	if ps1.Score != ps2.Score || ps1.Weight != ps2.Weight {
		t.Fatal("behind-frontier fold mutated trust state")
	}
}

// TestPermutationEquivariance is the metamorphic invariant the chaos suite
// leans on: permuting participant rows permutes the resulting scores.
func TestPermutationEquivariance(t *testing.T) {
	const n, w = 5, 24
	frac := map[int]float64{0: 0.1, 1: 0.9, 2: 0, 3: 0.4, 4: 0.65}
	perm := []int{3, 0, 4, 2, 1} // permuted row i carries original row perm[i]
	permFrac := map[int]float64{}
	for i, src := range perm {
		permFrac[i] = frac[src]
	}
	a := mustLedger(t, reputation.DefaultConfig())
	b := mustLedger(t, reputation.DefaultConfig())
	for seq := 0; seq < 8; seq++ {
		a.Fold(window("f", seq, n, w, frac))
		b.Fold(window("f", seq, n, w, permFrac))
	}
	for i, src := range perm {
		pa, okA := a.Participant("f", src)
		pb, okB := b.Participant("f", i)
		if !okA || !okB {
			t.Fatalf("missing snapshot for row %d/%d", src, i)
		}
		if pa.Score != pb.Score || pa.LowerBound != pb.LowerBound || pa.State != pb.State {
			t.Fatalf("row %d: original %+v vs permuted %+v", i, pa, pb)
		}
	}
}

// TestCodecRoundTrip pins the determinism contract: marshal → restore →
// marshal is byte-identical, and equal-state ledgers produce equal blobs.
func TestCodecRoundTrip(t *testing.T) {
	l := mustLedger(t, reputation.DefaultConfig())
	for seq := 0; seq < 6; seq++ {
		l.Fold(window("beta", seq, 3, 16, map[int]float64{1: 0.75}))
		l.Fold(window("alpha", seq, 2, 16, map[int]float64{0: 0.3}))
	}
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := mustLedger(t, reputation.DefaultConfig())
	if err := fresh.Restore(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restore+marshal not byte-identical")
	}
	// The restored ledger continues folding identically.
	next := window("alpha", 6, 2, 16, map[int]float64{0: 0.3})
	l.Fold(next)
	fresh.Fold(next)
	b1, _ := l.MarshalBinary()
	b2, _ := fresh.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("ledgers diverged after a post-restore fold")
	}
}

// TestCodecRejectsDamage feeds the strict reader malformed blobs.
func TestCodecRejectsDamage(t *testing.T) {
	l := mustLedger(t, reputation.DefaultConfig())
	l.Fold(window("f", 0, 2, 8, map[int]float64{1: 0.5}))
	blob, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":     blob[:len(blob)-3],
		"bad magic":     append([]byte("NOTAREPB"), blob[8:]...),
		"trailing junk": append(append([]byte{}, blob...), 0xFF),
	}
	badVersion := append([]byte{}, blob...)
	badVersion[8], badVersion[9] = 0xFF, 0xFF
	cases["bad version"] = badVersion
	for name, b := range cases {
		fresh := mustLedger(t, reputation.DefaultConfig())
		if err := fresh.Restore(b); err == nil {
			t.Errorf("%s blob restored without error", name)
		}
	}
	// Empty blob is the documented v1-checkpoint degraded mode: reset.
	if err := l.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Folded != 0 || st.Fleets != 0 {
		t.Fatalf("nil restore did not reset: %+v", st)
	}
}

// TestConfigValidation exercises the threshold-ordering guard.
func TestConfigValidation(t *testing.T) {
	bad := []func(*reputation.Config){
		func(c *reputation.Config) { c.Decay = 1 },
		func(c *reputation.Config) { c.Decay = 0 },
		func(c *reputation.Config) { c.SuspectBelow = c.QuarantineBelow - 0.01 },
		func(c *reputation.Config) { c.ReadmitAbove = c.SuspectBelow },
		func(c *reputation.Config) { c.ProbationAbove = c.QuarantineBelow },
		func(c *reputation.Config) { c.MinWeight = 0 },
		func(c *reputation.Config) { c.ResidualScaleMeters = 0 },
		func(c *reputation.Config) { c.Z = 0 },
		func(c *reputation.Config) { c.MissingWeight = -1 },
	}
	for i, mutate := range bad {
		cfg := reputation.DefaultConfig()
		mutate(&cfg)
		if _, err := reputation.New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := reputation.New(reputation.DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestMissingAndFlipEvidence checks the secondary badness terms move the
// score without any flagged cell.
func TestMissingAndFlipEvidence(t *testing.T) {
	l := mustLedger(t, reputation.DefaultConfig())
	res := window("f", 0, 2, 20, nil)
	// Row 1: half the cells missing, and every observed cell flipped once.
	for j := 10; j < 20; j++ {
		res.Input.Existence.Set(1, j, 0)
	}
	res.Output.RowFlips[1] = 10
	l.Fold(res)
	p0, _ := l.Participant("f", 0)
	p1, _ := l.Participant("f", 1)
	if p1.Score >= p0.Score {
		t.Fatalf("missing+flip evidence did not lower score: clean %.3f vs noisy %.3f",
			p0.Score, p1.Score)
	}
	if p1.Flips != 10 || p1.Observed != 10 {
		t.Fatalf("cumulative counters wrong: %+v", p1)
	}
}

package reputation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// The ledger blob rides inside the shard checkpoint format (wal.Checkpoint
// version 2 carries it as an opaque length-prefixed section), so it needs
// the same properties as the checkpoint body: fully deterministic bytes —
// fleets sorted by name, floats via Float64bits — and a strict reader.
// Determinism is what makes the crash-recovery invariant checkable as
// plain byte equality: restore + WAL replay must reproduce the exact blob
// the uninterrupted run would have written.

const (
	blobMagic   = "ITSCSREP"
	blobVersion = 1
)

// ErrBadBlob is wrapped by every Restore decoding error.
var ErrBadBlob = errors.New("reputation: bad ledger blob")

// MarshalBinary serializes the ledger deterministically: two ledgers with
// equal state produce byte-identical blobs, so equality checks (and the
// sim's crash-recovery invariant) compare blobs directly.
func (l *Ledger) MarshalBinary() ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	buf := make([]byte, 0, 64)
	buf = append(buf, blobMagic...)
	buf = binary.BigEndian.AppendUint16(buf, blobVersion)
	buf = binary.BigEndian.AppendUint64(buf, l.folded)
	buf = binary.BigEndian.AppendUint64(buf, l.skipped)
	buf = append(buf, numStates)
	for from := 0; from < numStates; from++ {
		for to := 0; to < numStates; to++ {
			buf = binary.BigEndian.AppendUint64(buf, l.transitions[from][to])
		}
	}
	names := make([]string, 0, len(l.fleets))
	for name := range l.fleets {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		fl := l.fleets[name]
		if len(name) > math.MaxUint16 {
			return nil, fmt.Errorf("reputation: fleet name %d bytes exceeds format limit", len(name))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(fl.lastSeq)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(fl.parts)))
		for i := range fl.parts {
			p := &fl.parts[i]
			buf = append(buf, byte(p.state))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.weight))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.faultMass))
			buf = binary.BigEndian.AppendUint64(buf, p.windows)
			buf = binary.BigEndian.AppendUint64(buf, p.observed)
			buf = binary.BigEndian.AppendUint64(buf, p.flagged)
			buf = binary.BigEndian.AppendUint64(buf, p.flips)
		}
	}
	return buf, nil
}

// blobReader is a strict cursor over the blob.
type blobReader struct {
	b   []byte
	off int
}

func (r *blobReader) take(n int) ([]byte, error) {
	if r.off+n > len(r.b) {
		return nil, fmt.Errorf("%w: truncated at offset %d (need %d of %d bytes)",
			ErrBadBlob, r.off, n, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *blobReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *blobReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *blobReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *blobReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Restore replaces the ledger's state with the blob's. The configuration is
// not serialized: the blob restores onto a ledger built with the same
// Config, which the daemon guarantees by deriving both from its flags. An
// empty or nil blob resets the ledger (the state a version-1 checkpoint,
// written before the reputation section existed, restores to — folds then
// rebuild from the replayed WAL tail onward).
func (l *Ledger) Restore(blob []byte) error {
	if len(blob) == 0 {
		l.mu.Lock()
		l.fleets = make(map[string]*fleetLedger)
		l.transitions = [numStates][numStates]uint64{}
		l.folded, l.skipped = 0, 0
		l.mu.Unlock()
		return nil
	}
	r := &blobReader{b: blob}
	magic, err := r.take(len(blobMagic))
	if err != nil {
		return err
	}
	if string(magic) != blobMagic {
		return fmt.Errorf("%w: magic %q", ErrBadBlob, magic)
	}
	version, err := r.u16()
	if err != nil {
		return err
	}
	if version != blobVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadBlob, version, blobVersion)
	}
	folded, err := r.u64()
	if err != nil {
		return err
	}
	skipped, err := r.u64()
	if err != nil {
		return err
	}
	states, err := r.u8()
	if err != nil {
		return err
	}
	if states != numStates {
		return fmt.Errorf("%w: %d states, want %d", ErrBadBlob, states, numStates)
	}
	var transitions [numStates][numStates]uint64
	for from := 0; from < numStates; from++ {
		for to := 0; to < numStates; to++ {
			if transitions[from][to], err = r.u64(); err != nil {
				return err
			}
		}
	}
	fleetCount, err := r.u32()
	if err != nil {
		return err
	}
	fleets := make(map[string]*fleetLedger, fleetCount)
	for f := uint32(0); f < fleetCount; f++ {
		nameLen, err := r.u16()
		if err != nil {
			return err
		}
		nameBytes, err := r.take(int(nameLen))
		if err != nil {
			return err
		}
		name := string(nameBytes)
		if _, dup := fleets[name]; dup {
			return fmt.Errorf("%w: duplicate fleet %q", ErrBadBlob, name)
		}
		lastSeqBits, err := r.u64()
		if err != nil {
			return err
		}
		partCount, err := r.u32()
		if err != nil {
			return err
		}
		// Bound the allocation by what the blob can actually hold (53
		// bytes per row) instead of trusting the header.
		if int(partCount) > len(blob)/53+1 {
			return fmt.Errorf("%w: fleet %q claims %d rows in a %d-byte blob",
				ErrBadBlob, name, partCount, len(blob))
		}
		fl := &fleetLedger{
			lastSeq: int(int64(lastSeqBits)),
			parts:   make([]participant, partCount),
		}
		for i := range fl.parts {
			p := &fl.parts[i]
			st, err := r.u8()
			if err != nil {
				return err
			}
			if st >= numStates {
				return fmt.Errorf("%w: fleet %q row %d state %d", ErrBadBlob, name, i, st)
			}
			p.state = State(st)
			wBits, err := r.u64()
			if err != nil {
				return err
			}
			fBits, err := r.u64()
			if err != nil {
				return err
			}
			p.weight = math.Float64frombits(wBits)
			p.faultMass = math.Float64frombits(fBits)
			if math.IsNaN(p.weight) || math.IsInf(p.weight, 0) ||
				math.IsNaN(p.faultMass) || math.IsInf(p.faultMass, 0) {
				return fmt.Errorf("%w: fleet %q row %d non-finite masses", ErrBadBlob, name, i)
			}
			if p.windows, err = r.u64(); err != nil {
				return err
			}
			if p.observed, err = r.u64(); err != nil {
				return err
			}
			if p.flagged, err = r.u64(); err != nil {
				return err
			}
			if p.flips, err = r.u64(); err != nil {
				return err
			}
		}
		fleets[name] = fl
	}
	if r.off != len(blob) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadBlob, len(blob)-r.off)
	}
	l.mu.Lock()
	l.fleets = fleets
	l.transitions = transitions
	l.folded, l.skipped = folded, skipped
	l.mu.Unlock()
	return nil
}

// Package reputation maintains a per-fleet, per-participant trust ledger on
// top of the streaming pipeline: every completed detection window folds each
// participant's row of the detection matrix D — flagged-cell fraction,
// missing fraction, CHECK flip count and reconstruction residual — into an
// exponentially-decayed trust score with a Wilson-style lower confidence
// bound. Hysteresis thresholds on that bound drive a four-state machine
//
//	trusted → suspect → quarantined → probation → trusted
//
// whose transitions are all counted and observable. The ledger implements
// pipeline.AdmissionGate, so ingest tags (never drops) reports from
// quarantined or probation participants, and it serializes to a
// deterministic binary blob carried inside the shard checkpoint format —
// crash recovery restores the blob and replays the WAL tail, reproducing
// the ledger bit for bit under the harness's deterministic conditions
// (single worker, drained checkpoints; the same contract the per-window-F1
// identity invariant already relies on).
//
// The design follows the MCS quality literature the paper brackets out:
// truth-discovery systems weight workers by inferred reliability without
// ground truth, and location-fraud detectors profile submitters over time.
// Here the per-window verdicts of I(TS,CS) are the (noisy) reliability
// signal, and the decayed fold turns them into a persistent one.
package reputation

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"itscs/internal/pipeline"
)

// State is a participant's standing in the quarantine state machine.
type State uint8

const (
	// Trusted is the default standing; reports are admitted untagged.
	Trusted State = iota
	// Suspect marks a participant whose trust lower bound dipped below
	// Config.SuspectBelow — still admitted untagged, but one step from
	// quarantine.
	Suspect
	// Quarantined marks a participant whose lower bound fell below
	// Config.QuarantineBelow; their reports are admitted-and-tagged.
	Quarantined
	// Probation marks a quarantined participant whose bound recovered past
	// Config.ProbationAbove but has not yet reached Config.ReadmitAbove;
	// reports remain tagged (distinctly) until full readmission.
	Probation

	numStates = 4
)

// String names the state for JSON snapshots and metric labels.
func (s State) String() string {
	switch s {
	case Trusted:
		return "trusted"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// StateNames lists every state label in machine order, for metric exposition.
func StateNames() [numStates]string {
	return [numStates]string{"trusted", "suspect", "quarantined", "probation"}
}

// Config parameterizes the trust fold and the state machine. The threshold
// ordering QuarantineBelow < ProbationAbove < SuspectBelow < ReadmitAbove
// is what makes the machine hysteretic: a participant must climb strictly
// higher to leave a bad state than it fell to enter it, so a score
// hovering at a threshold cannot flap states every window.
type Config struct {
	// Decay is the per-window exponential decay of the evidence masses,
	// in (0,1). At 0.9 the effective memory is ~1/(1−Decay) = 10 windows.
	Decay float64
	// SuspectBelow demotes trusted → suspect when the Wilson lower bound
	// falls below it.
	SuspectBelow float64
	// QuarantineBelow demotes suspect → quarantined (and probation →
	// quarantined) below it.
	QuarantineBelow float64
	// ProbationAbove promotes quarantined → probation at or above it.
	ProbationAbove float64
	// ReadmitAbove promotes suspect → trusted and probation → trusted at
	// or above it.
	ReadmitAbove float64
	// MinWeight is the minimum decayed evidence mass before any transition
	// fires, so one bad first window cannot quarantine a newcomer. The
	// Wilson bound is loose at small mass — a clean newcomer's bound sits
	// ~0.25 under its score at weight 3 but only ~0.15 under it at weight
	// 5 — so MinWeight also sets how much slack newcomers get.
	MinWeight float64
	// MissingWeight scales the missing-cell fraction's contribution to a
	// window's badness; missing data is weak evidence of misbehaviour
	// (radio shadow looks the same), so it weighs less than a flag.
	MissingWeight float64
	// FlipWeight scales the CHECK flip fraction: cells CHECK flipped sat in
	// the ambiguous band between the clear and raise thresholds.
	FlipWeight float64
	// ResidualWeight scales the normalized reconstruction residual.
	ResidualWeight float64
	// ResidualScaleMeters normalizes the mean |S−Ŝ| residual; residuals at
	// or beyond it contribute the full ResidualWeight. The scale must sit
	// well above ordinary reconstruction error (hundreds of meters on clean
	// urban traces) and at the kilometers-scale deviations the paper
	// attributes to faulty data, or clean participants accrue fault mass
	// from normal matrix-completion noise.
	ResidualScaleMeters float64
	// Z is the Wilson interval's normal quantile. The default 1.0 is a
	// one-sided ~84% bound — enough skepticism to hold newcomers near
	// their score without dragging long-lived clean participants (whose
	// decayed mass asymptotes at 1/(1−Decay)) below the suspect line.
	Z float64
}

// DefaultConfig returns thresholds tuned for the default decay: a clean
// participant's bound asymptotes near 1/(1+Z²(1−Decay)) ≈ 0.91, a
// half-faulty participant's sinks below 0.35.
func DefaultConfig() Config {
	return Config{
		Decay:               0.9,
		SuspectBelow:        0.70,
		QuarantineBelow:     0.45,
		ProbationAbove:      0.55,
		ReadmitAbove:        0.75,
		MinWeight:           5,
		MissingWeight:       0.25,
		FlipWeight:          0.5,
		ResidualWeight:      0.5,
		ResidualScaleMeters: 5_000,
		Z:                   1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Decay <= 0 || c.Decay >= 1:
		return fmt.Errorf("reputation: decay %v outside (0,1)", c.Decay)
	case c.QuarantineBelow <= 0 || c.ReadmitAbove >= 1:
		return fmt.Errorf("reputation: thresholds must sit inside (0,1)")
	case !(c.QuarantineBelow < c.ProbationAbove &&
		c.ProbationAbove < c.SuspectBelow &&
		c.SuspectBelow < c.ReadmitAbove):
		return fmt.Errorf("reputation: need quarantine %v < probation %v < suspect %v < readmit %v",
			c.QuarantineBelow, c.ProbationAbove, c.SuspectBelow, c.ReadmitAbove)
	case c.MinWeight < 1:
		return fmt.Errorf("reputation: min weight %v must be >= 1", c.MinWeight)
	case c.MissingWeight < 0 || c.FlipWeight < 0 || c.ResidualWeight < 0:
		return fmt.Errorf("reputation: badness weights must be non-negative")
	case c.ResidualScaleMeters <= 0:
		return fmt.Errorf("reputation: residual scale %v must be positive", c.ResidualScaleMeters)
	case c.Z <= 0:
		return fmt.Errorf("reputation: z %v must be positive", c.Z)
	}
	return nil
}

// participant is one row of the ledger.
type participant struct {
	weight    float64 // decayed evidence mass
	faultMass float64 // decayed badness mass
	state     State
	windows   uint64 // windows with observations folded
	observed  uint64 // cumulative observed cells
	flagged   uint64 // cumulative flagged cells
	flips     uint64 // cumulative CHECK flips
}

// fleetLedger is one fleet's rows plus its fold frontier.
type fleetLedger struct {
	lastSeq int // highest folded window seq; folds must arrive in order
	parts   []participant
}

// Ledger is the cross-window trust store. All methods are safe for
// concurrent use. Fold is wired to pipeline.Config.OnResult and Admit to
// pipeline.Config.Gate; both run on engine goroutines and never call back
// into the engine.
type Ledger struct {
	cfg Config

	mu          sync.RWMutex
	fleets      map[string]*fleetLedger
	transitions [numStates][numStates]uint64
	folded      uint64 // windows folded into the ledger
	skipped     uint64 // folds refused by the monotone-seq frontier
}

// New validates the configuration and returns an empty ledger.
func New(cfg Config) (*Ledger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ledger{cfg: cfg, fleets: make(map[string]*fleetLedger)}, nil
}

// Fold merges one completed window into the ledger. Folds are keyed on the
// window's (fleet, seq): a seq at or below the fleet's frontier is skipped
// and counted, which makes replay after a checkpoint restore idempotent —
// re-delivered windows fold exactly once. The frontier is monotone, so
// under a multi-worker engine an out-of-order completion is also skipped
// (and counted); the deterministic harness runs a single worker, where
// completions arrive in seq order and nothing is lost.
func (l *Ledger) Fold(res *pipeline.WindowResult) {
	if res == nil || res.Output == nil || res.Output.Detection == nil ||
		res.Input.Existence == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fl := l.fleets[res.Fleet]
	if fl == nil {
		n, _ := res.Output.Detection.Dims()
		fl = &fleetLedger{lastSeq: -1, parts: make([]participant, n)}
		l.fleets[res.Fleet] = fl
	}
	if res.Seq <= fl.lastSeq {
		l.skipped++
		return
	}
	fl.lastSeq = res.Seq
	l.folded++

	n, w := res.Output.Detection.Dims()
	if n > len(fl.parts) {
		fl.parts = append(fl.parts, make([]participant, n-len(fl.parts))...)
	}
	for i := 0; i < n; i++ {
		obs, flags, resid := rowEvidence(res, i, w)
		if obs == 0 {
			continue // no observations: no evidence either way
		}
		flips := 0
		if i < len(res.Output.RowFlips) {
			flips = res.Output.RowFlips[i]
		}
		p := &fl.parts[i]
		p.windows++
		p.observed += uint64(obs)
		p.flagged += uint64(flags)
		p.flips += uint64(flips)

		badness := l.badness(obs, flags, flips, w, resid)
		p.weight = p.weight*l.cfg.Decay + 1
		p.faultMass = p.faultMass*l.cfg.Decay + badness
		l.step(p)
	}
}

// rowEvidence extracts one participant row's window verdict: observed cell
// count, flagged cell count, and the mean reconstruction residual in meters
// over observed cells (averaged across the two axes).
func rowEvidence(res *pipeline.WindowResult, i, w int) (obs, flags int, resid float64) {
	eRow := res.Input.Existence.RowView(i)
	dRow := res.Output.Detection.RowView(i)
	var haveHat bool
	var sxRow, syRow, xhRow, yhRow []float64
	if res.Input.SX != nil && res.Input.SY != nil &&
		res.Output.XHat != nil && res.Output.YHat != nil {
		haveHat = true
		sxRow, syRow = res.Input.SX.RowView(i), res.Input.SY.RowView(i)
		xhRow, yhRow = res.Output.XHat.RowView(i), res.Output.YHat.RowView(i)
	}
	var residSum float64
	for j := 0; j < w; j++ {
		if eRow[j] == 0 {
			continue
		}
		obs++
		if dRow[j] != 0 {
			flags++
		}
		if haveHat {
			residSum += (math.Abs(sxRow[j]-xhRow[j]) + math.Abs(syRow[j]-yhRow[j])) / 2
		}
	}
	if obs > 0 && haveHat {
		resid = residSum / float64(obs)
	}
	return obs, flags, resid
}

// badness scores one window's evidence against a participant in [0,1]:
// the flagged fraction plus down-weighted missing, flip and residual terms.
func (l *Ledger) badness(obs, flags, flips, w int, resid float64) float64 {
	flaggedFrac := float64(flags) / float64(obs)
	missingFrac := float64(w-obs) / float64(w)
	flipFrac := math.Min(float64(flips)/float64(obs), 1)
	residNorm := math.Min(resid/l.cfg.ResidualScaleMeters, 1)
	b := flaggedFrac +
		l.cfg.MissingWeight*missingFrac +
		l.cfg.FlipWeight*flipFrac +
		l.cfg.ResidualWeight*residNorm
	return math.Min(b, 1)
}

// score is the decayed trust estimate in [0,1].
func (p *participant) score() float64 {
	if p.weight == 0 {
		return 1
	}
	return 1 - p.faultMass/p.weight
}

// wilsonLower is the Wilson score interval's lower bound with the decayed
// evidence mass standing in for the trial count: skeptical at low mass,
// converging to the raw score as evidence accumulates.
func (l *Ledger) wilsonLower(p *participant) float64 {
	if p.weight == 0 {
		return 1
	}
	n, phat, z := p.weight, p.score(), l.cfg.Z
	z2 := z * z
	denom := 1 + z2/n
	center := phat + z2/(2*n)
	margin := z * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	return (center - margin) / denom
}

// step advances the participant's state machine after a fold. Callers hold
// l.mu.
func (l *Ledger) step(p *participant) {
	if p.weight < l.cfg.MinWeight {
		return
	}
	lower := l.wilsonLower(p)
	next := p.state
	switch p.state {
	case Trusted:
		if lower < l.cfg.SuspectBelow {
			next = Suspect
		}
	case Suspect:
		switch {
		case lower < l.cfg.QuarantineBelow:
			next = Quarantined
		case lower >= l.cfg.ReadmitAbove:
			next = Trusted
		}
	case Quarantined:
		if lower >= l.cfg.ProbationAbove {
			next = Probation
		}
	case Probation:
		switch {
		case lower < l.cfg.QuarantineBelow:
			next = Quarantined
		case lower >= l.cfg.ReadmitAbove:
			next = Trusted
		}
	}
	if next != p.state {
		l.transitions[p.state][next]++
		p.state = next
	}
}

// Admit implements pipeline.AdmissionGate: reports from quarantined
// participants are tagged AdmitQuarantined, probation participants
// AdmitProbation, everyone else (including never-seen fleets or rows)
// admitted clean. It never refuses.
func (l *Ledger) Admit(fleet string, part int) pipeline.Admission {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fl := l.fleets[fleet]
	if fl == nil || part < 0 || part >= len(fl.parts) {
		return pipeline.AdmitClean
	}
	switch fl.parts[part].state {
	case Quarantined:
		return pipeline.AdmitQuarantined
	case Probation:
		return pipeline.AdmitProbation
	}
	return pipeline.AdmitClean
}

// ParticipantSnapshot is one ledger row, shaped for the HTTP API.
type ParticipantSnapshot struct {
	Participant int     `json:"participant"`
	State       string  `json:"state"`
	Score       float64 `json:"score"`
	LowerBound  float64 `json:"lower_bound"`
	Weight      float64 `json:"weight"`
	Windows     uint64  `json:"windows"`
	Observed    uint64  `json:"observed_cells"`
	Flagged     uint64  `json:"flagged_cells"`
	Flips       uint64  `json:"check_flips"`
}

// FleetSnapshot is one fleet's ledger: every participant with folded
// evidence, plus the per-state census (rows without evidence are omitted
// from both — an inactive fleet slot is not a trusted participant).
type FleetSnapshot struct {
	Fleet        string                `json:"fleet"`
	LastSeq      int                   `json:"last_seq"`
	States       map[string]int        `json:"states"`
	Participants []ParticipantSnapshot `json:"participants"`
}

// TransitionCount is one observed state-machine edge.
type TransitionCount struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count uint64 `json:"count"`
}

// LedgerStats summarizes the ledger for /metrics.
type LedgerStats struct {
	Fleets      int               `json:"fleets"`
	Folded      uint64            `json:"windows_folded"`
	Skipped     uint64            `json:"folds_skipped"`
	States      map[string]int    `json:"participants_by_state"`
	Transitions []TransitionCount `json:"transitions,omitempty"`
}

// Snapshot is the whole ledger, shaped for the HTTP API and the router's
// scatter-gather merge (fleets are sharded whole, so per-backend snapshots
// union without key collisions).
type Snapshot struct {
	Fleets []FleetSnapshot `json:"fleets"`
	Stats  LedgerStats     `json:"stats"`
}

// Snapshot copies the ledger, fleets sorted by name.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.fleets))
	for name := range l.fleets {
		names = append(names, name)
	}
	sort.Strings(names)
	s := Snapshot{Stats: l.statsLocked()}
	for _, name := range names {
		s.Fleets = append(s.Fleets, l.fleetSnapshotLocked(name))
	}
	return s
}

// Fleet returns one fleet's snapshot; ok is false for an unknown fleet.
func (l *Ledger) Fleet(name string) (FleetSnapshot, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.fleets[name] == nil {
		return FleetSnapshot{}, false
	}
	return l.fleetSnapshotLocked(name), true
}

// Participant returns one row's snapshot; ok is false when the fleet is
// unknown or the row has no folded evidence.
func (l *Ledger) Participant(fleet string, part int) (ParticipantSnapshot, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	fl := l.fleets[fleet]
	if fl == nil || part < 0 || part >= len(fl.parts) || fl.parts[part].windows == 0 {
		return ParticipantSnapshot{}, false
	}
	return l.participantSnapshotLocked(fl, part), true
}

// Stats snapshots the ledger's aggregate counters.
func (l *Ledger) Stats() LedgerStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.statsLocked()
}

func (l *Ledger) statsLocked() LedgerStats {
	st := LedgerStats{
		Fleets:  len(l.fleets),
		Folded:  l.folded,
		Skipped: l.skipped,
		States:  map[string]int{},
	}
	for _, name := range StateNames() {
		st.States[name] = 0
	}
	for _, fl := range l.fleets {
		for i := range fl.parts {
			if fl.parts[i].windows > 0 {
				st.States[fl.parts[i].state.String()]++
			}
		}
	}
	names := StateNames()
	for from := 0; from < numStates; from++ {
		for to := 0; to < numStates; to++ {
			if n := l.transitions[from][to]; n != 0 {
				st.Transitions = append(st.Transitions, TransitionCount{
					From: names[from], To: names[to], Count: n,
				})
			}
		}
	}
	return st
}

func (l *Ledger) fleetSnapshotLocked(name string) FleetSnapshot {
	fl := l.fleets[name]
	fs := FleetSnapshot{Fleet: name, LastSeq: fl.lastSeq, States: map[string]int{}}
	for _, sn := range StateNames() {
		fs.States[sn] = 0
	}
	for i := range fl.parts {
		if fl.parts[i].windows == 0 {
			continue
		}
		fs.States[fl.parts[i].state.String()]++
		fs.Participants = append(fs.Participants, l.participantSnapshotLocked(fl, i))
	}
	return fs
}

func (l *Ledger) participantSnapshotLocked(fl *fleetLedger, i int) ParticipantSnapshot {
	p := &fl.parts[i]
	return ParticipantSnapshot{
		Participant: i,
		State:       p.state.String(),
		Score:       p.score(),
		LowerBound:  l.wilsonLower(p),
		Weight:      p.weight,
		Windows:     p.windows,
		Observed:    p.observed,
		Flagged:     p.flagged,
		Flips:       p.flips,
	}
}

package reputation_test

import (
	"testing"

	"itscs/internal/corrupt"
	"itscs/internal/mcs"
	"itscs/internal/pipeline"
	"itscs/internal/reputation"
	"itscs/internal/trace"
)

// rateBands is the per-participant fault-rate ladder of the quarantine
// experiment: 16 clean rows and 2 rows at each injected rate. A "persistent
// faulter" in the EXPERIMENTS.md sense is a row at rate ≥ 0.5.
var rateBands = []struct {
	rate float64
	rows int
}{
	{0.0, 16},
	{0.1, 2},
	{0.3, 2},
	{0.5, 2},
	{0.8, 2},
}

// TestQuarantineExperiment reproduces the EXPERIMENTS.md reputation table:
// per-participant fault rates injected with corrupt.ApplyParticipants are
// streamed through a ledger-gated engine across three seeds, and the final
// quarantine census is scored against the injected ground truth. The hard
// assertions are the table's headline: recall 1.0 on persistent faulters
// (rate ≥ 0.5) and precision 1.0 in the sense that no clean row (rate 0)
// is ever quarantined — or even reaches probation.
func TestQuarantineExperiment(t *testing.T) {
	const (
		n, w, h = 24, 60, 20
		slots   = 60 + 20*8
	)
	rates := map[int]float64{}
	row := 0
	rateOf := make([]float64, n)
	for _, band := range rateBands {
		for i := 0; i < band.rows; i++ {
			if band.rate > 0 {
				rates[row] = band.rate
			}
			rateOf[row] = band.rate
			row++
		}
	}
	if row != n {
		t.Fatalf("rate ladder covers %d rows, want %d", row, n)
	}

	type cell struct{ quarantined, total int }
	byRate := map[float64]*cell{}
	for _, band := range rateBands {
		byRate[band.rate] = &cell{}
	}
	var faulters, caught, cleanQuarantined int
	for seed := int64(1); seed <= 3; seed++ {
		tcfg := trace.DefaultConfig()
		tcfg.Participants = n
		tcfg.Slots = slots
		tcfg.Seed = seed
		gen, err := trace.Generate(tcfg)
		if err != nil {
			t.Fatal(err)
		}
		plan := corrupt.DefaultParticipantPlan()
		plan.MissingRatio = 0.1
		plan.Rates = rates
		plan.Seed = seed
		res, err := corrupt.ApplyParticipants(plan, gen.X, gen.Y)
		if err != nil {
			t.Fatal(err)
		}

		ledger, err := reputation.New(reputation.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.Participants = n
		cfg.WindowSlots = w
		cfg.HopSlots = h
		cfg.Workers = 1
		cfg.Gate = ledger
		cfg.OnResult = ledger.Fold
		engine, err := pipeline.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < slots; s++ {
			for i := 0; i < n; i++ {
				if res.Existence.At(i, s) == 0 {
					continue
				}
				if err := engine.Ingest(mcs.Report{
					Fleet: "exp", Participant: i, Slot: s,
					X: res.SX.At(i, s), Y: res.SY.At(i, s),
					VX: gen.VX.At(i, s), VY: gen.VY.At(i, s),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		engine.Close()

		fs, ok := ledger.Fleet("exp")
		if !ok || len(fs.Participants) != n {
			t.Fatalf("seed %d: fleet snapshot missing or short: %v", seed, ok)
		}
		for _, ps := range fs.Participants {
			rate := rateOf[ps.Participant]
			c := byRate[rate]
			c.total++
			if ps.State == "quarantined" {
				c.quarantined++
			}
			if rate >= 0.5 {
				faulters++
				if ps.State == "quarantined" {
					caught++
				}
			}
			if rate == 0 && (ps.State == "quarantined" || ps.State == "probation") {
				cleanQuarantined++
				t.Errorf("seed %d: clean participant %d reached %s (score %.3f, lower %.3f)",
					seed, ps.Participant, ps.State, ps.Score, ps.LowerBound)
			}
		}
	}

	t.Logf("quarantine census across 3 seeds (rate: quarantined/total):")
	for _, band := range rateBands {
		c := byRate[band.rate]
		t.Logf("  rate %.1f: %d/%d", band.rate, c.quarantined, c.total)
	}
	recall := float64(caught) / float64(faulters)
	t.Logf("persistent-faulter recall (rate >= 0.5): %d/%d = %.3f", caught, faulters, recall)
	t.Logf("clean rows quarantined or on probation: %d", cleanQuarantined)
	if caught != faulters {
		t.Errorf("recall on persistent faulters = %.3f, want 1.0", recall)
	}
}

package stat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianOdd(t *testing.T) {
	m, err := Median([]float64{3, 1, 2})
	if err != nil || m != 2 {
		t.Fatalf("median = %v, err = %v", m, err)
	}
}

func TestMedianEven(t *testing.T) {
	m, err := Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("median = %v, err = %v", m, err)
	}
}

func TestMedianSingle(t *testing.T) {
	m, err := Median([]float64{42})
	if err != nil || m != 42 {
		t.Fatalf("median = %v, err = %v", m, err)
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, err := Median(nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := MedianInPlace(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, 4, 2, 3}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("Median mutated input: %v", in)
		}
	}
}

func TestMedianWithDuplicates(t *testing.T) {
	m, err := Median([]float64{2, 2, 2, 2})
	if err != nil || m != 2 {
		t.Fatalf("median = %v", m)
	}
	m, err = Median([]float64{1, 2, 2, 3, 3})
	if err != nil || m != 2 {
		t.Fatalf("median = %v", m)
	}
}

// Property: Median agrees with the sort-based definition.
func TestPropertyMedianMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		got, err := Median(vals)
		if err != nil {
			return false
		}
		sorted := make([]float64, n)
		copy(sorted, vals)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(vals, c.q)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v (err %v)", c.q, got, c.want, err)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := Quantile(vals, 1.5); err == nil {
		t.Fatal("want error for out-of-range q")
	}
	one, err := Quantile([]float64{7}, 0.3)
	if err != nil || one != 7 {
		t.Fatalf("single-element quantile = %v", one)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil || math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(vals) != 5 {
		t.Fatalf("mean = %v", Mean(vals))
	}
	if math.Abs(StdDev(vals)-2) > 1e-12 {
		t.Fatalf("stddev = %v", StdDev(vals))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || minV != -1 || maxV != 7 {
		t.Fatalf("minmax = (%v,%v), err %v", minV, maxV, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if p := c.P(2); p != 0.5 {
		t.Fatalf("P(2) = %v, want 0.5", p)
	}
	if p := c.P(0); p != 0 {
		t.Fatalf("P(0) = %v, want 0", p)
	}
	if p := c.P(10); p != 1 {
		t.Fatalf("P(10) = %v, want 1", p)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := c.Quantile(0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("want error for empty sample")
	}
}

// Property: CDF.P is monotone and Quantile is its rough inverse.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		c, err := NewCDF(vals)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.5 {
			p := c.P(x)
			if p < prev {
				return false
			}
			prev = p
		}
		// Quantile at q should have P >= q (within a sample-size granularity).
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v := c.Quantile(q)
			if c.P(v) < q-1.0/float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		r.Observe(v)
	}
	if r.N() != len(vals) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", r.Mean())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("extrema = (%v,%v)", r.Min(), r.Max())
	}
	var empty Running
	if empty.Var() != 0 || empty.Mean() != 0 {
		t.Fatal("empty Running must report zeros")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGChildIndependence(t *testing.T) {
	root := NewRNG(1)
	c1 := root.Child("trace")
	c2 := root.Child("corrupt")
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("children look correlated: %d/50 equal draws", same)
	}
	// Same label must reproduce the same stream.
	d1 := NewRNG(1).Child("trace")
	d2 := NewRNG(1).Child("trace")
	for i := 0; i < 20; i++ {
		if d1.Float64() != d2.Float64() {
			t.Fatal("same child label must reproduce the stream")
		}
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 100; i++ {
		u := g.Uniform(10, 20)
		if u < 10 || u >= 20 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		s := g.Sign()
		if s != 1 && s != -1 {
			t.Fatalf("Sign = %v", s)
		}
		if n := g.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	if g.Int63() < 0 {
		t.Fatal("Int63 must be non-negative")
	}
	trueCount := 0
	for i := 0; i < 1000; i++ {
		if g.Bool(0.3) {
			trueCount++
		}
	}
	if trueCount < 200 || trueCount > 400 {
		t.Fatalf("Bool(0.3) fired %d/1000 times", trueCount)
	}
}

func TestSampleIndices(t *testing.T) {
	g := NewRNG(9)
	idx := g.SampleIndices(10, 4)
	if len(idx) != 4 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad or duplicate index %d in %v", i, idx)
		}
		seen[i] = true
	}
	all := g.SampleIndices(3, 99)
	if len(all) != 3 {
		t.Fatalf("oversampling should clamp, got %d", len(all))
	}
	if len(g.Perm(5)) != 5 {
		t.Fatal("Perm length wrong")
	}
}

// Package stat provides the small statistical toolkit used by the I(TS,CS)
// pipeline: order statistics (median, quantiles), empirical CDFs, running
// summaries, and a deterministic splittable random source so every
// experiment in the repository is reproducible from a single seed.
package stat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by order statistics on empty inputs.
var ErrEmpty = errors.New("stat: empty input")

// Median returns the median of vals without mutating the input.
// For an even count it returns the mean of the two middle values.
func Median(vals []float64) (float64, error) {
	n := len(vals)
	if n == 0 {
		return 0, ErrEmpty
	}
	buf := make([]float64, n)
	copy(buf, vals)
	return medianInPlace(buf), nil
}

// MedianInPlace returns the median of vals, reordering vals as a side
// effect. Use it on scratch buffers in hot loops to avoid allocation.
func MedianInPlace(vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, ErrEmpty
	}
	return medianInPlace(vals), nil
}

func medianInPlace(buf []float64) float64 {
	n := len(buf)
	mid := n / 2
	if n%2 == 1 {
		return quickSelect(buf, mid)
	}
	hi := quickSelect(buf, mid)
	// After selecting index mid, elements left of mid are <= buf[mid];
	// the lower middle is the max of that prefix.
	lo := buf[0]
	for _, v := range buf[1:mid] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

// quickSelect returns the k-th smallest element (0-based), partially
// reordering buf. Median-of-three pivoting keeps it linear on the
// near-sorted windows produced by location time series.
func quickSelect(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		p := partition(buf, lo, hi)
		switch {
		case k == p:
			return buf[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return buf[k]
}

func partition(buf []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order lo, mid, hi then use mid as pivot.
	if buf[mid] < buf[lo] {
		buf[mid], buf[lo] = buf[lo], buf[mid]
	}
	if buf[hi] < buf[lo] {
		buf[hi], buf[lo] = buf[lo], buf[hi]
	}
	if buf[hi] < buf[mid] {
		buf[hi], buf[mid] = buf[mid], buf[hi]
	}
	pivot := buf[mid]
	buf[mid], buf[hi-0] = buf[hi-0], buf[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if buf[i] < pivot {
			buf[i], buf[store] = buf[store], buf[i]
			store++
		}
	}
	buf[store], buf[hi] = buf[hi], buf[store]
	return store
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of vals using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(vals []float64, q float64) (float64, error) {
	n := len(vals)
	if n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stat: quantile %v outside [0,1]", q)
	}
	buf := make([]float64, n)
	copy(buf, vals)
	sort.Float64s(buf)
	if n == 1 {
		return buf[0], nil
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return buf[lo], nil
	}
	frac := pos - float64(lo)
	return buf[lo]*(1-frac) + buf[hi]*frac, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// StdDev returns the population standard deviation (0 for <2 values).
func StdDev(vals []float64) float64 {
	n := len(vals)
	if n < 2 {
		return 0
	}
	m := Mean(vals)
	var s float64
	for _, v := range vals {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MinMax returns the extrema of vals.
func MinMax(vals []float64) (minV, maxV float64, err error) {
	if len(vals) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, nil
}

// CDF is an empirical cumulative distribution built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over vals (copied, then sorted).
func NewCDF(vals []float64) (*CDF, error) {
	if len(vals) == 0 {
		return nil, ErrEmpty
	}
	buf := make([]float64, len(vals))
	copy(buf, vals)
	sort.Float64s(buf)
	return &CDF{sorted: buf}, nil
}

// P returns the empirical probability P(X ≤ x).
func (c *CDF) P(x float64) float64 {
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value below which fraction q of the sample lies.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Len reports the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Running accumulates a streaming mean/variance/extrema summary
// (Welford's algorithm).
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe folds x into the summary.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N reports how many values were observed.
func (r *Running) N() int { return r.n }

// Mean reports the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Var reports the running population variance.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev reports the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Min reports the smallest observation (0 before any observation).
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation (0 before any observation).
func (r *Running) Max() float64 { return r.max }

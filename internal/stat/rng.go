package stat

import "math/rand"

// RNG is a deterministic random source with cheap derivation of independent
// child streams. Every stochastic component in the repository (trace
// generation, corruption injection, ASD initialization fallbacks) draws from
// an RNG derived from the experiment seed, so a run is reproducible from a
// single integer.
type RNG struct {
	r *rand.Rand
	// seed retained so children can be derived deterministically.
	seed int64
}

// NewRNG returns a deterministic source for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Child derives an independent stream labelled by name. The derivation uses
// an FNV-1a hash of the label mixed with the parent seed, so adding a new
// consumer never perturbs the streams of existing ones.
func (g *RNG) Child(name string) *RNG {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(g.seed)
	h *= prime64
	return NewRNG(int64(h))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Sign returns +1 or -1 with equal probability.
func (g *RNG) Sign() float64 {
	if g.r.Intn(2) == 0 {
		return 1
	}
	return -1
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// SampleIndices returns k distinct indices drawn uniformly from [0,n).
// If k >= n all indices are returned (shuffled).
func (g *RNG) SampleIndices(n, k int) []int {
	if k > n {
		k = n
	}
	perm := g.r.Perm(n)
	return perm[:k]
}

package experiment

import (
	"testing"
)

// tinyConfig keeps harness tests fast: the goal here is correctness of the
// plumbing, not paper-scale numbers (those are the benchmarks' job).
func tinyConfig() Config {
	return DefaultConfig(Scale{Participants: 20, Slots: 60})
}

func TestFig1Stats(t *testing.T) {
	stats, err := Fig1(tinyConfig(), 0.11, 0.28)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RealizedMissing < 0.08 || stats.RealizedMissing > 0.14 {
		t.Fatalf("realized missing = %v, want ~0.11", stats.RealizedMissing)
	}
	if stats.RealizedFaulty < 0.25 || stats.RealizedFaulty > 0.31 {
		t.Fatalf("realized faulty = %v, want ~0.28", stats.RealizedFaulty)
	}
	if stats.MeanBiasMeters < 2000 {
		t.Fatalf("mean bias = %v, want kilometers-scale", stats.MeanBiasMeters)
	}
	if stats.MaxStepMeters <= stats.CleanStepP95 {
		t.Fatal("corrupted steps must dwarf clean steps")
	}
}

func TestFig4aEnergyConcentration(t *testing.T) {
	points, err := Fig4a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 20 { // min(participants, slots)
		t.Fatalf("got %d spectrum points", len(points))
	}
	last := points[len(points)-1]
	if last.EnergyX < 0.999 || last.EnergyY < 0.999 {
		t.Fatal("energy CDF must reach 1")
	}
	// Monotone non-decreasing CDF.
	for i := 1; i < len(points); i++ {
		if points[i].EnergyX < points[i-1].EnergyX {
			t.Fatal("X energy CDF not monotone")
		}
	}
	// Low-rank: 95% of energy well before 60% of the spectrum.
	for _, p := range points {
		if p.EnergyX >= 0.95 {
			if p.NormalizedIndex > 0.6 {
				t.Fatalf("X needs %.0f%% of spectrum for 95%% energy", p.NormalizedIndex*100)
			}
			break
		}
	}
}

func TestFig4bVelocityImproves(t *testing.T) {
	rows, err := Fig4b(tinyConfig(), []float64{0.5, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	p95 := rows[1]
	if p95.DVX >= p95.DX || p95.DVY >= p95.DY {
		t.Fatalf("velocity must tighten the p95: raw (%.0f, %.0f) vs improved (%.0f, %.0f)",
			p95.DX, p95.DY, p95.DVX, p95.DVY)
	}
}

func TestFig5ShapeAndOrdering(t *testing.T) {
	points, err := Fig5(tinyConfig(), []float64{0.2}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	// 1 TMM + 3 framework variants.
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byMethod := map[Method]DetectionPoint{}
	for _, p := range points {
		byMethod[p.Method] = p
	}
	full, ok := byMethod[MethodITSCS]
	if !ok {
		t.Fatal("missing full framework point")
	}
	if full.Recall < 0.9 {
		t.Fatalf("framework recall = %v", full.Recall)
	}
	tmm, ok := byMethod[MethodTMM]
	if !ok {
		t.Fatal("missing TMM point")
	}
	// The paper's headline: the framework dominates TMM under missingness.
	if tmm.Recall > full.Recall && tmm.Precision > full.Precision {
		t.Fatalf("TMM unexpectedly dominates: TMM P=%.3f R=%.3f vs full P=%.3f R=%.3f",
			tmm.Precision, tmm.Recall, full.Precision, full.Recall)
	}
}

func TestFig6ShapeCSDegrades(t *testing.T) {
	points, err := Fig6(tinyConfig(), []float64{0.2}, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// 2 beta values × 4 methods.
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	get := func(beta float64, m Method) float64 {
		for _, p := range points {
			if p.Beta == beta && p.Method == m {
				return p.MAE
			}
		}
		t.Fatalf("missing point beta=%v method=%s", beta, m)
		return 0
	}
	// Plain CS must degrade sharply once faults appear; the framework must not.
	csClean, csFaulty := get(0, MethodPlainCS), get(0.3, MethodPlainCS)
	fullClean, fullFaulty := get(0, MethodITSCS), get(0.3, MethodITSCS)
	if csFaulty < 2*csClean {
		t.Fatalf("plain CS should degrade sharply with faults: %.0f -> %.0f", csClean, csFaulty)
	}
	if fullFaulty > 3*fullClean+200 {
		t.Fatalf("framework should resist faults: %.0f -> %.0f", fullClean, fullFaulty)
	}
	if fullFaulty > csFaulty {
		t.Fatal("framework must beat plain CS under faults")
	}
}

func TestFig7VelocityRobustness(t *testing.T) {
	points, err := Fig7(tinyConfig(), []float64{0.2}, []float64{0.2}, []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// 1 reference + 2 gamma points.
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	if points[0].Method != MethodITSCSNoV {
		t.Fatal("first point must be the no-velocity reference")
	}
	var clean, corrupted float64
	for _, p := range points[1:] {
		if p.Gamma == 0 {
			clean = p.MAE
		} else {
			corrupted = p.MAE
		}
	}
	// Corrupted velocity should not be catastrophically worse than clean.
	if corrupted > 3*clean+300 {
		t.Fatalf("40%% faulty velocity blew up the error: %.0f vs %.0f", corrupted, clean)
	}
}

func TestFig8ConvergenceTrace(t *testing.T) {
	points, err := Fig8(tinyConfig(), []struct{ Alpha, Beta float64 }{{0.2, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no convergence points")
	}
	last := points[len(points)-1]
	if last.Changed != 0 {
		t.Fatalf("final iteration should report stability, changed=%d", last.Changed)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Iteration != points[i-1].Iteration+1 {
			t.Fatal("iterations must be consecutive")
		}
	}
}

func TestVariantForUnknownMethod(t *testing.T) {
	if _, err := variantFor(MethodTMM); err == nil {
		t.Fatal("TMM has no framework variant")
	}
	if _, err := variantFor(Method("bogus")); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := newWorkload(cfg, 0.2, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newWorkload(cfg, 0.2, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.cor.SX.Equal(b.cor.SX, 0) || !a.vx.Equal(b.vx, 0) {
		t.Fatal("workloads must be reproducible from the seed")
	}
}

// Package experiment reproduces every figure of the paper's evaluation
// (§IV): workload generation, corruption sweeps, all four compared methods,
// and the per-figure result tables. Each runner is deterministic in its
// seed and scale so results can be regenerated exactly.
package experiment

import (
	"fmt"
	"time"

	"itscs/internal/core"
	"itscs/internal/corrupt"
	"itscs/internal/csrecon"
	"itscs/internal/mat"
	"itscs/internal/metrics"
	"itscs/internal/motion"
	"itscs/internal/trace"
	"itscs/internal/tsdetect"
)

// Scale sizes the evaluation workload.
type Scale struct {
	Participants int
	Slots        int
}

// PaperScale is the SUVnet subset size used throughout the paper's §IV.
var PaperScale = Scale{Participants: 158, Slots: 240}

// QuickScale is a reduced size for CI and the Go benchmark harness; the
// qualitative shapes (who wins, where the crossovers fall) are preserved.
var QuickScale = Scale{Participants: 60, Slots: 120}

// Config parameterizes a run.
type Config struct {
	Scale Scale
	// Seed drives fleet generation and corruption draws.
	Seed int64
	// Framework is the base framework configuration; per-method runners
	// override only the reconstruction variant.
	Framework core.Config
}

// DefaultConfig returns the evaluation defaults at the given scale.
func DefaultConfig(scale Scale) Config {
	return Config{Scale: scale, Seed: 1, Framework: core.DefaultConfig()}
}

// Method identifies one of the compared approaches.
type Method string

const (
	// MethodTMM is the fixed-threshold two-sided median baseline.
	MethodTMM Method = "TMM"
	// MethodITSCS is the full framework.
	MethodITSCS Method = "I(TS,CS)"
	// MethodITSCSNoV drops velocity from the reconstruction.
	MethodITSCSNoV Method = "I(TS,CS) w/o V"
	// MethodITSCSNoVT drops both stability terms from the reconstruction.
	MethodITSCSNoVT Method = "I(TS,CS) w/o VT"
	// MethodPlainCS is reconstruction-only modified compressive sensing
	// (no detection loop), the Fig. 6 baseline.
	MethodPlainCS Method = "CS"
)

// variantFor maps framework methods to reconstruction variants.
func variantFor(m Method) (csrecon.Variant, error) {
	switch m {
	case MethodITSCS:
		return csrecon.VariantVelocityTemporal, nil
	case MethodITSCSNoV:
		return csrecon.VariantTemporal, nil
	case MethodITSCSNoVT:
		return csrecon.VariantBasic, nil
	default:
		return 0, fmt.Errorf("experiment: method %q has no framework variant", m)
	}
}

// workload bundles one generated-and-corrupted dataset.
type workload struct {
	fleet *trace.Fleet
	cor   *corrupt.Result
	// vx, vy are the velocities handed to the framework (possibly
	// corrupted for the Fig. 7 study).
	vx, vy *mat.Dense
}

// newWorkload generates a fleet and corrupts it. gamma is the velocity
// fault ratio (0 outside the Fig. 7 study).
func newWorkload(cfg Config, alpha, beta, gamma float64) (*workload, error) {
	tc := trace.DefaultConfig()
	tc.Participants = cfg.Scale.Participants
	tc.Slots = cfg.Scale.Slots
	tc.Seed = cfg.Seed
	fleet, err := trace.Generate(tc)
	if err != nil {
		return nil, fmt.Errorf("experiment: generate fleet: %w", err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = alpha
	plan.FaultyRatio = beta
	plan.Seed = cfg.Seed + 1000
	cor, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		return nil, fmt.Errorf("experiment: corrupt fleet: %w", err)
	}
	w := &workload{fleet: fleet, cor: cor, vx: fleet.VX, vy: fleet.VY}
	if gamma > 0 {
		w.vx, w.vy, err = corrupt.CorruptVelocity(fleet.VX, fleet.VY, gamma, cfg.Seed+2000)
		if err != nil {
			return nil, fmt.Errorf("experiment: corrupt velocity: %w", err)
		}
	}
	return w, nil
}

// input assembles the framework input for a workload.
func (w *workload) input() core.Input {
	return core.Input{
		SX:        w.cor.SX,
		SY:        w.cor.SY,
		Existence: w.cor.Existence,
		VX:        w.vx,
		VY:        w.vy,
	}
}

// runFramework executes one framework variant over the workload.
func runFramework(cfg Config, w *workload, m Method, keepHistory bool) (*core.Output, error) {
	variant, err := variantFor(m)
	if err != nil {
		return nil, err
	}
	fc := cfg.Framework
	fc.Reconstruct.Variant = variant
	fc.KeepHistory = keepHistory
	out, err := core.Run(fc, w.input())
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", m, err)
	}
	return out, nil
}

// runTMM executes the TMM baseline detection over the workload.
func runTMM(cfg Config, w *workload) (*mat.Dense, error) {
	opt := tsdetect.DefaultTMMOptions()
	opt.Window = cfg.Framework.Detect.Window
	dx, err := tsdetect.TMM(w.cor.SX, w.cor.Existence, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: TMM X: %w", err)
	}
	dy, err := tsdetect.TMM(w.cor.SY, w.cor.Existence, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: TMM Y: %w", err)
	}
	d, err := tsdetect.Union(dx, dy)
	if err != nil {
		return nil, fmt.Errorf("experiment: TMM union: %w", err)
	}
	return d, nil
}

// runPlainCS reconstructs without any detection: B = E (every observed
// cell trusted, faults included), the paper's Fig. 6 "CS" baseline.
func runPlainCS(cfg Config, w *workload) (xHat, yHat *mat.Dense, err error) {
	opt := cfg.Framework.Reconstruct
	opt.Variant = csrecon.VariantVelocityTemporal
	xHat, err = csrecon.Reconstruct(w.cor.SX, w.cor.Existence, motion.AverageVelocity(w.vx), opt)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: plain CS X: %w", err)
	}
	yHat, err = csrecon.Reconstruct(w.cor.SY, w.cor.Existence, motion.AverageVelocity(w.vy), opt)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: plain CS Y: %w", err)
	}
	return xHat, yHat, nil
}

// mae evaluates Eq. (29) for a reconstruction and detection.
func (w *workload) mae(xHat, yHat, detection *mat.Dense) (float64, error) {
	return metrics.MAE(w.fleet.X, w.fleet.Y, xHat, yHat, w.cor.Existence, detection)
}

// DetectionPoint is one (α, β, method) cell of the Fig. 5 family.
type DetectionPoint struct {
	Alpha, Beta float64
	Method      Method
	Precision   float64
	Recall      float64
	Iterations  int
	Elapsed     time.Duration
}

// Fig5 reproduces the detection-performance study (Fig. 5(a)–(f)):
// precision and recall of TMM and the three framework variants across the
// (α, β) grid.
func Fig5(cfg Config, alphas, betas []float64) ([]DetectionPoint, error) {
	var out []DetectionPoint
	for _, alpha := range alphas {
		for _, beta := range betas {
			w, err := newWorkload(cfg, alpha, beta, 0)
			if err != nil {
				return nil, err
			}
			// TMM baseline.
			start := time.Now()
			d, err := runTMM(cfg, w)
			if err != nil {
				return nil, err
			}
			conf, err := metrics.Compare(d, w.cor.Faulty, w.cor.Existence)
			if err != nil {
				return nil, err
			}
			out = append(out, DetectionPoint{
				Alpha: alpha, Beta: beta, Method: MethodTMM,
				Precision: conf.Precision(), Recall: conf.Recall(),
				Elapsed: time.Since(start),
			})
			// Framework variants.
			for _, m := range []Method{MethodITSCSNoVT, MethodITSCSNoV, MethodITSCS} {
				start := time.Now()
				res, err := runFramework(cfg, w, m, false)
				if err != nil {
					return nil, err
				}
				conf, err := metrics.Compare(res.Detection, w.cor.Faulty, w.cor.Existence)
				if err != nil {
					return nil, err
				}
				out = append(out, DetectionPoint{
					Alpha: alpha, Beta: beta, Method: m,
					Precision: conf.Precision(), Recall: conf.Recall(),
					Iterations: res.Iterations, Elapsed: time.Since(start),
				})
			}
		}
	}
	return out, nil
}

// ReconstructionPoint is one (α, β, method) cell of the Fig. 6 family.
type ReconstructionPoint struct {
	Alpha, Beta float64
	Method      Method
	MAE         float64
	Elapsed     time.Duration
}

// Fig6 reproduces the reconstruction-error study (Fig. 6(a)–(c)): the MAE
// of plain modified CS and the three framework variants across the grid.
func Fig6(cfg Config, alphas, betas []float64) ([]ReconstructionPoint, error) {
	var out []ReconstructionPoint
	for _, alpha := range alphas {
		for _, beta := range betas {
			w, err := newWorkload(cfg, alpha, beta, 0)
			if err != nil {
				return nil, err
			}
			// Plain CS: no detection, evaluate over missing cells only
			// (its detection matrix is empty).
			start := time.Now()
			xHat, yHat, err := runPlainCS(cfg, w)
			if err != nil {
				return nil, err
			}
			empty := mat.New(cfg.Scale.Participants, cfg.Scale.Slots)
			maeCS, err := w.mae(xHat, yHat, empty)
			if err != nil {
				return nil, err
			}
			out = append(out, ReconstructionPoint{
				Alpha: alpha, Beta: beta, Method: MethodPlainCS,
				MAE: maeCS, Elapsed: time.Since(start),
			})
			for _, m := range []Method{MethodITSCSNoVT, MethodITSCSNoV, MethodITSCS} {
				start := time.Now()
				res, err := runFramework(cfg, w, m, false)
				if err != nil {
					return nil, err
				}
				v, err := w.mae(res.XHat, res.YHat, res.Detection)
				if err != nil {
					return nil, err
				}
				out = append(out, ReconstructionPoint{
					Alpha: alpha, Beta: beta, Method: m,
					MAE: v, Elapsed: time.Since(start),
				})
			}
		}
	}
	return out, nil
}

// VelocityFaultPoint is one cell of the Fig. 7 robustness study.
type VelocityFaultPoint struct {
	Alpha, Beta, Gamma float64
	Method             Method
	MAE                float64
}

// Fig7 reproduces the faulty-velocity study (Fig. 7(a)–(b)): the MAE of the
// full framework under velocity corruption γ, against the no-velocity
// variant as the reference.
func Fig7(cfg Config, alphas, betas, gammas []float64) ([]VelocityFaultPoint, error) {
	var out []VelocityFaultPoint
	for _, alpha := range alphas {
		for _, beta := range betas {
			// Reference: the variant that ignores velocity entirely.
			w0, err := newWorkload(cfg, alpha, beta, 0)
			if err != nil {
				return nil, err
			}
			res, err := runFramework(cfg, w0, MethodITSCSNoV, false)
			if err != nil {
				return nil, err
			}
			v, err := w0.mae(res.XHat, res.YHat, res.Detection)
			if err != nil {
				return nil, err
			}
			out = append(out, VelocityFaultPoint{
				Alpha: alpha, Beta: beta, Gamma: 0,
				Method: MethodITSCSNoV, MAE: v,
			})
			for _, gamma := range gammas {
				w, err := newWorkload(cfg, alpha, beta, gamma)
				if err != nil {
					return nil, err
				}
				res, err := runFramework(cfg, w, MethodITSCS, false)
				if err != nil {
					return nil, err
				}
				v, err := w.mae(res.XHat, res.YHat, res.Detection)
				if err != nil {
					return nil, err
				}
				out = append(out, VelocityFaultPoint{
					Alpha: alpha, Beta: beta, Gamma: gamma,
					Method: MethodITSCS, MAE: v,
				})
			}
		}
	}
	return out, nil
}

// ConvergencePoint is one iteration of the Fig. 8 convergence study.
type ConvergencePoint struct {
	Alpha, Beta float64
	Iteration   int
	Precision   float64
	Recall      float64
	MAE         float64
	Changed     int
}

// Fig8 reproduces the convergence study (Fig. 8(a)–(b)): per-iteration
// precision and reconstruction error of the full framework.
func Fig8(cfg Config, points []struct{ Alpha, Beta float64 }) ([]ConvergencePoint, error) {
	var out []ConvergencePoint
	for _, p := range points {
		w, err := newWorkload(cfg, p.Alpha, p.Beta, 0)
		if err != nil {
			return nil, err
		}
		res, err := runFramework(cfg, w, MethodITSCS, true)
		if err != nil {
			return nil, err
		}
		for k, snap := range res.History {
			conf, err := metrics.Compare(snap.Detection, w.cor.Faulty, w.cor.Existence)
			if err != nil {
				return nil, err
			}
			v, err := w.mae(snap.XHat, snap.YHat, snap.Detection)
			if err != nil {
				return nil, err
			}
			out = append(out, ConvergencePoint{
				Alpha: p.Alpha, Beta: p.Beta, Iteration: k + 1,
				Precision: conf.Precision(), Recall: conf.Recall(),
				MAE: v, Changed: snap.ChangedFlags,
			})
		}
	}
	return out, nil
}

package experiment

import (
	"fmt"
	"math"

	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/stat"
	"itscs/internal/trace"
)

// CorruptionStats summarizes an injected corruption, mirroring the Fig. 1
// illustration (a real trace with 28 % faulty points and 11 % missing).
type CorruptionStats struct {
	Alpha, Beta      float64
	RealizedMissing  float64
	RealizedFaulty   float64
	MeanBiasMeters   float64
	MaxStepMeters    float64 // largest slot-to-slot jump in the corrupted trace
	CleanStepP95     float64 // 95th-percentile jump in the clean trace
	Participants     int
	Slots            int
	ObservedFraction float64
}

// Fig1 reproduces the data-quality illustration: corrupt a trace and
// report the realized corruption statistics that make Fig. 1's faulty
// points visually obvious (km-scale jumps against sub-km clean motion).
func Fig1(cfg Config, alpha, beta float64) (*CorruptionStats, error) {
	w, err := newWorkload(cfg, alpha, beta, 0)
	if err != nil {
		return nil, err
	}
	missing, faulty := w.cor.Ratios()
	stats := &CorruptionStats{
		Alpha: alpha, Beta: beta,
		RealizedMissing:  missing,
		RealizedFaulty:   faulty,
		Participants:     cfg.Scale.Participants,
		Slots:            cfg.Scale.Slots,
		ObservedFraction: 1 - missing,
	}
	// Mean injected bias over faulty cells.
	var biasSum float64
	var biasCnt int
	n, t := w.fleet.X.Dims()
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			if w.cor.Faulty.At(i, j) == 1 {
				dx := w.cor.SX.At(i, j) - w.fleet.X.At(i, j)
				dy := w.cor.SY.At(i, j) - w.fleet.Y.At(i, j)
				biasSum += math.Hypot(dx, dy)
				biasCnt++
			}
		}
	}
	if biasCnt > 0 {
		stats.MeanBiasMeters = biasSum / float64(biasCnt)
	}
	// Step statistics: corrupted max vs clean 95th percentile.
	cleanSteps := stepLengths(w.fleet.X, w.fleet.Y)
	if p95, err := stat.Quantile(cleanSteps, 0.95); err == nil {
		stats.CleanStepP95 = p95
	}
	for _, s := range stepLengths(w.cor.SX, w.cor.SY) {
		if s > stats.MaxStepMeters {
			stats.MaxStepMeters = s
		}
	}
	return stats, nil
}

func stepLengths(x, y *mat.Dense) []float64 {
	n, t := x.Dims()
	out := make([]float64, 0, n*(t-1))
	for i := 0; i < n; i++ {
		for j := 1; j < t; j++ {
			out = append(out, math.Hypot(x.At(i, j)-x.At(i, j-1), y.At(i, j)-y.At(i, j-1)))
		}
	}
	return out
}

// SpectrumPoint is one singular value of the Fig. 4(a) energy CDF.
type SpectrumPoint struct {
	// NormalizedIndex is i/min(n,t) in (0, 1].
	NormalizedIndex float64
	// EnergyX, EnergyY are the cumulative singular-value mass of the X and
	// Y coordinate matrices up to this index.
	EnergyX, EnergyY float64
}

// Fig4a reproduces the low-rank analysis: the cumulative singular-value
// energy of the clean coordinate matrices. The paper reports the top
// 9–11 % of singular values carrying 95 % of the energy.
func Fig4a(cfg Config) ([]SpectrumPoint, error) {
	tc := trace.DefaultConfig()
	tc.Participants = cfg.Scale.Participants
	tc.Slots = cfg.Scale.Slots
	tc.Seed = cfg.Seed
	fleet, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	svdX, err := mat.SVD(fleet.X)
	if err != nil {
		return nil, fmt.Errorf("experiment: SVD X: %w", err)
	}
	svdY, err := mat.SVD(fleet.Y)
	if err != nil {
		return nil, fmt.Errorf("experiment: SVD Y: %w", err)
	}
	cdfX := svdX.EnergyCDF()
	cdfY := svdY.EnergyCDF()
	k := len(cdfX)
	out := make([]SpectrumPoint, k)
	for i := 0; i < k; i++ {
		out[i] = SpectrumPoint{
			NormalizedIndex: float64(i+1) / float64(k),
			EnergyX:         cdfX[i],
			EnergyY:         cdfY[i],
		}
	}
	return out, nil
}

// StabilityQuantiles reports the Fig. 4(b) temporal-stability comparison:
// the distribution of raw slot-to-slot differences Δ against the
// velocity-improved residuals Δᵥ, per axis.
type StabilityQuantiles struct {
	Quantile float64
	DX, DY   float64 // raw |Δ| quantile, meters
	DVX, DVY float64 // velocity-improved |Δᵥ| quantile, meters
}

// Fig4b reproduces the temporal-stability analysis: quantiles of Δ and Δᵥ
// over the clean fleet. The paper reports the 95th percentile dropping
// from ≈410 m to ≈210 m when velocity is incorporated.
func Fig4b(cfg Config, quantiles []float64) ([]StabilityQuantiles, error) {
	tc := trace.DefaultConfig()
	tc.Participants = cfg.Scale.Participants
	tc.Slots = cfg.Scale.Slots
	tc.Seed = cfg.Seed
	fleet, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	dx := motion.Stability(fleet.X)
	dy := motion.Stability(fleet.Y)
	dvx, err := motion.VelocityStability(fleet.X, motion.AverageVelocity(fleet.VX), tc.SlotDuration)
	if err != nil {
		return nil, err
	}
	dvy, err := motion.VelocityStability(fleet.Y, motion.AverageVelocity(fleet.VY), tc.SlotDuration)
	if err != nil {
		return nil, err
	}
	out := make([]StabilityQuantiles, 0, len(quantiles))
	for _, q := range quantiles {
		row := StabilityQuantiles{Quantile: q}
		for _, item := range []struct {
			vals []float64
			dst  *float64
		}{
			{dx, &row.DX}, {dy, &row.DY}, {dvx, &row.DVX}, {dvy, &row.DVY},
		} {
			v, err := stat.Quantile(item.vals, q)
			if err != nil {
				return nil, err
			}
			*item.dst = v
		}
		out = append(out, row)
	}
	return out, nil
}

// Package trace generates synthetic urban taxi-fleet mobility traces that
// stand in for the SUVnet Shanghai dataset used by the I(TS,CS) paper
// (the original download link is dead and the data was never redistributed).
//
// The generator reproduces the two structural properties the paper's design
// depends on:
//
//  1. Approximate low-rankness of the coordinate matrices: vehicles move
//     with piecewise-stable velocity along trips, so each row of X and Y is
//     piecewise linear in time and the matrix concentrates its singular
//     value energy in a few components (paper §III-C.1, Fig. 4a).
//  2. Velocity-bounded temporal stability: consecutive positions differ by
//     at most speed × τ, and the reported instantaneous velocities predict
//     most of that difference (paper Eq. 21–22, Fig. 4b).
//
// Vehicles follow trip-based Manhattan routing over an implicit street
// grid: pick a destination, drive axis-aligned legs at a speed regime drawn
// from the trip length (local / arterial / highway), idle briefly, repeat.
// Positions carry GPS noise and velocities carry sensor noise, so the
// matrices are realistically "approximately" low-rank rather than exactly.
package trace

import (
	"fmt"
	"time"

	"itscs/internal/geo"
	"itscs/internal/mat"
	"itscs/internal/stat"
)

// Config controls fleet generation. The zero value is not usable; start
// from DefaultConfig (paper-scale: 158 participants × 240 slots of 30 s).
type Config struct {
	// Participants is the number of vehicles (rows of the matrices).
	Participants int
	// Slots is the number of time slots (columns of the matrices).
	Slots int
	// SlotDuration is the sampling period τ (paper: 30 s).
	SlotDuration time.Duration
	// Region is the study area; vehicles never leave it.
	Region geo.Region
	// Seed makes generation deterministic.
	Seed int64

	// CoreFraction confines trip endpoints to the central fraction of the
	// region (taxis concentrate in the urban core, as in SUVnet).
	CoreFraction float64
	// MinTripMeters and MaxTripMeters bound trip lengths.
	MinTripMeters float64
	MaxTripMeters float64
	// IdleMaxSlots is the maximum pause (in slots) between trips.
	IdleMaxSlots int
	// GPSNoiseMeters is the standard deviation of position noise.
	GPSNoiseMeters float64
	// VelocityNoiseMS is the standard deviation of velocity sensor noise.
	VelocityNoiseMS float64
	// SpeedJitter is the per-substep multiplicative speed perturbation.
	SpeedJitter float64
	// SubstepsPerSlot is the simulation resolution within one slot.
	SubstepsPerSlot int
}

// DefaultConfig returns the paper-scale configuration: 158 taxis observed
// for 240 slots of 30 seconds (2 hours) in a Shanghai-like region.
func DefaultConfig() Config {
	return Config{
		Participants:    158,
		Slots:           240,
		SlotDuration:    30 * time.Second,
		Region:          geo.ShanghaiLike(),
		Seed:            1,
		CoreFraction:    0.35,
		MinTripMeters:   800,
		MaxTripMeters:   6_000,
		IdleMaxSlots:    20,
		GPSNoiseMeters:  6,
		VelocityNoiseMS: 0.6,
		SpeedJitter:     0.02,
		SubstepsPerSlot: 6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Participants <= 0:
		return fmt.Errorf("trace: participants must be positive, got %d", c.Participants)
	case c.Slots <= 0:
		return fmt.Errorf("trace: slots must be positive, got %d", c.Slots)
	case c.SlotDuration <= 0:
		return fmt.Errorf("trace: slot duration must be positive, got %v", c.SlotDuration)
	case c.CoreFraction <= 0 || c.CoreFraction > 1:
		return fmt.Errorf("trace: core fraction %v outside (0,1]", c.CoreFraction)
	case c.MinTripMeters <= 0 || c.MaxTripMeters < c.MinTripMeters:
		return fmt.Errorf("trace: bad trip bounds [%v,%v]", c.MinTripMeters, c.MaxTripMeters)
	case c.IdleMaxSlots < 0:
		return fmt.Errorf("trace: negative idle bound %d", c.IdleMaxSlots)
	case c.GPSNoiseMeters < 0 || c.VelocityNoiseMS < 0 || c.SpeedJitter < 0:
		return fmt.Errorf("trace: negative noise parameter")
	case c.SubstepsPerSlot <= 0:
		return fmt.Errorf("trace: substeps must be positive, got %d", c.SubstepsPerSlot)
	}
	return c.Region.Validate()
}

// Fleet holds the generated ground-truth matrices.
//
// X and Y are the coordinate matrices (meters in the region frame,
// participants × slots). VX and VY are the instantaneous velocity
// components (m/s) reported at each slot boundary, as collected by the
// vehicles' own sensors.
type Fleet struct {
	Config Config
	X, Y   *mat.Dense
	VX, VY *mat.Dense
}

// Generate simulates the fleet described by cfg.
func Generate(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, t := cfg.Participants, cfg.Slots
	fleet := &Fleet{
		Config: cfg,
		X:      mat.New(n, t),
		Y:      mat.New(n, t),
		VX:     mat.New(n, t),
		VY:     mat.New(n, t),
	}
	root := stat.NewRNG(cfg.Seed)
	for i := 0; i < n; i++ {
		rng := root.Child(fmt.Sprintf("vehicle-%d", i))
		simulateVehicle(cfg, rng, i, fleet)
	}
	return fleet, nil
}

// vehicle is the per-simulation mutable state of one taxi.
type vehicle struct {
	pos       geo.Point
	waypoints []geo.Point
	speed     float64 // current cruise speed, m/s
	idleLeft  float64 // remaining idle time, seconds
	heading   geo.Vec // unit direction of travel
}

// simulateVehicle drives one vehicle through all slots, writing its row of
// each fleet matrix.
func simulateVehicle(cfg Config, rng *stat.RNG, row int, fleet *Fleet) {
	core := coreBounds(cfg)
	v := &vehicle{pos: randomPointIn(rng, core)}
	planTrip(cfg, rng, v, core)

	dt := cfg.SlotDuration.Seconds() / float64(cfg.SubstepsPerSlot)
	for j := 0; j < cfg.Slots; j++ {
		for s := 0; s < cfg.SubstepsPerSlot; s++ {
			advance(cfg, rng, v, core, dt)
		}
		recordSlot(cfg, rng, v, row, j, fleet)
	}
}

// coreBounds returns the sub-rectangle where trips start and end.
func coreBounds(cfg Config) geo.Region {
	w := cfg.Region.WidthMeters * cfg.CoreFraction
	h := cfg.Region.HeightMeters * cfg.CoreFraction
	return geo.Region{
		OriginLat:    cfg.Region.OriginLat,
		OriginLon:    cfg.Region.OriginLon,
		WidthMeters:  w,
		HeightMeters: h,
	}
}

// randomPointIn draws a uniform point inside the core rectangle, translated
// so the core sits at the center of the full region.
func randomPointIn(rng *stat.RNG, core geo.Region) geo.Point {
	return geo.Point{
		X: rng.Uniform(0, core.WidthMeters),
		Y: rng.Uniform(0, core.HeightMeters),
	}
}

// coreToRegion translates a core-frame point into the full region frame.
func coreToRegion(cfg Config, core geo.Region, p geo.Point) geo.Point {
	offX := (cfg.Region.WidthMeters - core.WidthMeters) / 2
	offY := (cfg.Region.HeightMeters - core.HeightMeters) / 2
	return geo.Point{X: p.X + offX, Y: p.Y + offY}
}

// planTrip assigns a new destination, Manhattan waypoints, and a cruise
// speed regime drawn from the trip length.
func planTrip(cfg Config, rng *stat.RNG, v *vehicle, core geo.Region) {
	var dest geo.Point
	for attempt := 0; attempt < 32; attempt++ {
		dest = randomPointIn(rng, core)
		d := v.pos.DistanceTo(dest)
		if d >= cfg.MinTripMeters && d <= cfg.MaxTripMeters {
			break
		}
	}
	// Manhattan routing: randomly pick X-first or Y-first corner.
	var corner geo.Point
	if rng.Bool(0.5) {
		corner = geo.Point{X: dest.X, Y: v.pos.Y}
	} else {
		corner = geo.Point{X: v.pos.X, Y: dest.Y}
	}
	v.waypoints = v.waypoints[:0]
	if corner.DistanceTo(v.pos) > 1 {
		v.waypoints = append(v.waypoints, corner)
	}
	v.waypoints = append(v.waypoints, dest)
	v.speed = cruiseSpeed(rng, v.pos.DistanceTo(dest))
	v.idleLeft = 0
}

// cruiseSpeed draws a speed regime from the trip length: short hops stay on
// congested local roads, long hauls reach arterials and elevated roads.
// The ranges model dense urban traffic (the SUVnet fleet operated in 2007
// Shanghai, where taxi speeds rarely exceeded 60-70 km/h).
func cruiseSpeed(rng *stat.RNG, tripMeters float64) float64 {
	switch {
	case tripMeters < 1_500: // congested local roads
		return geo.KmH(rng.Uniform(8, 25))
	case tripMeters < 4_000: // local roads and arterials
		return geo.KmH(rng.Uniform(18, 45))
	default: // arterials and elevated roads
		return geo.KmH(rng.Uniform(30, 70))
	}
}

// advance moves the vehicle for dt seconds of simulated time.
func advance(cfg Config, rng *stat.RNG, v *vehicle, core geo.Region, dt float64) {
	if v.idleLeft > 0 {
		v.idleLeft -= dt
		v.heading = geo.Vec{}
		if v.idleLeft <= 0 {
			planTrip(cfg, rng, v, core)
		}
		return
	}
	if len(v.waypoints) == 0 {
		beginIdleOrTrip(cfg, rng, v, core)
		return
	}
	// Perturb the cruise speed slightly (traffic), then step toward the
	// current waypoint, consuming waypoints as they are reached.
	speed := v.speed * (1 + cfg.SpeedJitter*rng.NormFloat64())
	if speed < 0.5 {
		speed = 0.5
	}
	remaining := speed * dt
	for remaining > 0 && len(v.waypoints) > 0 {
		target := v.waypoints[0]
		d := v.pos.DistanceTo(target)
		if d <= remaining {
			v.pos = target
			remaining -= d
			v.waypoints = v.waypoints[1:]
			continue
		}
		ux := (target.X - v.pos.X) / d
		uy := (target.Y - v.pos.Y) / d
		v.pos = v.pos.Add(ux*remaining, uy*remaining)
		v.heading = geo.Vec{VX: ux * speed, VY: uy * speed}
		remaining = 0
	}
	if len(v.waypoints) == 0 {
		beginIdleOrTrip(cfg, rng, v, core)
	}
}

// beginIdleOrTrip decides what a vehicle does after completing a trip.
func beginIdleOrTrip(cfg Config, rng *stat.RNG, v *vehicle, core geo.Region) {
	if cfg.IdleMaxSlots > 0 && rng.Bool(0.5) {
		slots := 1 + rng.Intn(cfg.IdleMaxSlots)
		v.idleLeft = float64(slots) * cfg.SlotDuration.Seconds()
		v.heading = geo.Vec{}
		return
	}
	planTrip(cfg, rng, v, core)
}

// recordSlot writes the observed position and velocity for slot j.
func recordSlot(cfg Config, rng *stat.RNG, v *vehicle, row, j int, fleet *Fleet) {
	core := coreBounds(cfg)
	p := coreToRegion(cfg, core, v.pos)
	fleet.X.Set(row, j, p.X+cfg.GPSNoiseMeters*rng.NormFloat64())
	fleet.Y.Set(row, j, p.Y+cfg.GPSNoiseMeters*rng.NormFloat64())
	fleet.VX.Set(row, j, v.heading.VX+cfg.VelocityNoiseMS*rng.NormFloat64())
	fleet.VY.Set(row, j, v.heading.VY+cfg.VelocityNoiseMS*rng.NormFloat64())
}

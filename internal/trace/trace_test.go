package trace

import (
	"math"
	"testing"
	"time"

	"itscs/internal/geo"
	"itscs/internal/mat"
	"itscs/internal/motion"
	"itscs/internal/stat"
)

// smallConfig keeps unit tests fast while preserving generator behaviour.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Participants = 12
	cfg.Slots = 60
	return cfg
}

func TestGenerateShapes(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*mat.Dense{"X": fleet.X, "Y": fleet.Y, "VX": fleet.VX, "VY": fleet.VY} {
		if m.Rows() != 12 || m.Cols() != 60 {
			t.Fatalf("%s dims = %dx%d", name, m.Rows(), m.Cols())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 0) || !a.Y.Equal(b.Y, 0) || !a.VX.Equal(b.VX, 0) {
		t.Fatal("same seed must reproduce the fleet exactly")
	}
	cfg := smallConfig()
	cfg.Seed = 999
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.X.Equal(c.X, 1e-6) {
		t.Fatal("different seeds should differ")
	}
}

func TestPositionsInsideRegion(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := fleet.Config.Region
	slack := 5 * fleet.Config.GPSNoiseMeters
	for i := 0; i < fleet.X.Rows(); i++ {
		for j := 0; j < fleet.X.Cols(); j++ {
			x, y := fleet.X.At(i, j), fleet.Y.At(i, j)
			if x < -slack || x > r.WidthMeters+slack || y < -slack || y > r.HeightMeters+slack {
				t.Fatalf("position (%v,%v) outside region at (%d,%d)", x, y, i, j)
			}
		}
	}
}

func TestSpeedsArePhysical(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tau := fleet.Config.SlotDuration.Seconds()
	// Highway ceiling is 110 km/h; allow jitter headroom.
	maxStep := geo.KmH(140) * tau
	for i := 0; i < fleet.X.Rows(); i++ {
		for j := 1; j < fleet.X.Cols(); j++ {
			dx := fleet.X.At(i, j) - fleet.X.At(i, j-1)
			dy := fleet.Y.At(i, j) - fleet.Y.At(i, j-1)
			if step := math.Hypot(dx, dy); step > maxStep {
				t.Fatalf("vehicle %d jumped %.0f m in one slot (max %.0f)", i, step, maxStep)
			}
		}
	}
	for i := 0; i < fleet.VX.Rows(); i++ {
		for j := 0; j < fleet.VX.Cols(); j++ {
			sp := math.Hypot(fleet.VX.At(i, j), fleet.VY.At(i, j))
			if sp > geo.KmH(150) {
				t.Fatalf("reported speed %.1f m/s not physical", sp)
			}
		}
	}
}

func TestVehiclesActuallyMove(t *testing.T) {
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	moving := 0
	for i := 0; i < fleet.X.Rows(); i++ {
		first := geo.Point{X: fleet.X.At(i, 0), Y: fleet.Y.At(i, 0)}
		var far bool
		for j := 1; j < fleet.X.Cols(); j++ {
			p := geo.Point{X: fleet.X.At(i, j), Y: fleet.Y.At(i, j)}
			if first.DistanceTo(p) > 500 {
				far = true
				break
			}
		}
		if far {
			moving++
		}
	}
	if moving < fleet.X.Rows()/2 {
		t.Fatalf("only %d/%d vehicles moved >500 m in 30 min", moving, fleet.X.Rows())
	}
}

func TestLowRankProperty(t *testing.T) {
	// The paper (Fig. 4a) reports that ~9-11% of singular values capture
	// 95% of the energy for the real trace. Our synthetic fleet must show
	// comparable concentration — require 95% energy within 30% of the
	// spectrum (the property CS reconstruction depends on).
	cfg := DefaultConfig()
	cfg.Participants = 60
	cfg.Slots = 120
	fleet, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*mat.Dense{"X": fleet.X, "Y": fleet.Y} {
		res, err := mat.SVD(m)
		if err != nil {
			t.Fatal(err)
		}
		k := res.RankForEnergy(0.95)
		frac := float64(k) / float64(len(res.S))
		if frac > 0.30 {
			t.Fatalf("%s: 95%% energy needs %.0f%% of spectrum; trace is not low-rank enough", name, frac*100)
		}
	}
}

func TestVelocityExplainsMotion(t *testing.T) {
	// Fig. 4(b): the velocity-improved temporal stability must be
	// substantially tighter than the raw one.
	fleet, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := motion.Stability(fleet.X)
	avg := motion.AverageVelocity(fleet.VX)
	improved, err := motion.VelocityStability(fleet.X, avg, fleet.Config.SlotDuration)
	if err != nil {
		t.Fatal(err)
	}
	q95raw, err := stat.Quantile(raw, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	q95imp, err := stat.Quantile(improved, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if q95imp >= q95raw {
		t.Fatalf("velocity must tighten the 95th percentile: raw %.0f m vs improved %.0f m", q95raw, q95imp)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	mutate := []func(*Config){
		func(c *Config) { c.Participants = 0 },
		func(c *Config) { c.Slots = -1 },
		func(c *Config) { c.SlotDuration = 0 },
		func(c *Config) { c.CoreFraction = 0 },
		func(c *Config) { c.CoreFraction = 1.5 },
		func(c *Config) { c.MinTripMeters = 0 },
		func(c *Config) { c.MaxTripMeters = c.MinTripMeters - 1 },
		func(c *Config) { c.IdleMaxSlots = -1 },
		func(c *Config) { c.GPSNoiseMeters = -1 },
		func(c *Config) { c.SubstepsPerSlot = 0 },
		func(c *Config) { c.Region.WidthMeters = 0 },
	}
	for i, f := range mutate {
		cfg := base
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("mutation %d should fail Generate", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

func TestIdlePeriodsExist(t *testing.T) {
	cfg := smallConfig()
	cfg.Slots = 120
	fleet, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Some consecutive positions should be nearly identical (idling taxis).
	idle := 0
	for i := 0; i < fleet.X.Rows(); i++ {
		for j := 1; j < fleet.X.Cols(); j++ {
			dx := fleet.X.At(i, j) - fleet.X.At(i, j-1)
			dy := fleet.Y.At(i, j) - fleet.Y.At(i, j-1)
			if math.Hypot(dx, dy) < 5*cfg.GPSNoiseMeters {
				idle++
			}
		}
	}
	if idle == 0 {
		t.Fatal("expected at least some idle slots in a 1-hour window")
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Participants != 158 || cfg.Slots != 240 || cfg.SlotDuration != 30*time.Second {
		t.Fatalf("default config diverged from the paper: %+v", cfg)
	}
}

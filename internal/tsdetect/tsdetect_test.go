package tsdetect

import (
	"testing"
	"time"

	"itscs/internal/mat"
	"itscs/internal/motion"
)

// constantRowFixture builds a single-participant series at a fixed position
// with one large spike, plus matching all-ones D/E and zero velocity.
func constantRowFixture(t int, spikeAt int, spike float64) (s, d, e, v *mat.Dense) {
	s = mat.Filled(1, t, 1000)
	if spikeAt >= 0 {
		s.Set(0, spikeAt, 1000+spike)
	}
	d = mat.Ones(1, t)
	e = mat.Ones(1, t)
	v = mat.New(1, t)
	return s, d, e, v
}

func TestDetectClearsNormalPoints(t *testing.T) {
	s, d, e, v := constantRowFixture(20, -1, 0)
	out, err := Detect(s, nil, motion.AverageVelocity(v), d, e, true, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Sum(); got != 0 {
		t.Fatalf("all points are normal; %v still flagged", got)
	}
}

func TestDetectFlagsSpike(t *testing.T) {
	s, d, e, v := constantRowFixture(20, 10, 5000)
	out, err := Detect(s, nil, motion.AverageVelocity(v), d, e, true, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 10) != 1 {
		t.Fatal("5 km spike must stay flagged")
	}
	if out.Sum() != 1 {
		t.Fatalf("only the spike should remain flagged, got %v flags", out.Sum())
	}
}

func TestDetectOnlyClearsNeverSets(t *testing.T) {
	// A zero D on input must stay zero even for outliers: TS_Detect only
	// clears flags (Algorithm 1); Check() is the stage that raises them.
	s, _, e, v := constantRowFixture(20, 10, 5000)
	d := mat.New(1, 20) // all clear
	out, err := Detect(s, nil, motion.AverageVelocity(v), d, e, true, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() != 0 {
		t.Fatal("Detect must never raise flags")
	}
}

func TestDetectDynamicToleranceHighwayVsLocal(t *testing.T) {
	// The §III-B motivating example: a 300 m deviation from the window
	// median is normal at highway speed but faulty on a local road.
	const slots = 15
	opt := DefaultOptions()
	tau := opt.Tau.Seconds()

	makeSeries := func(speed float64) (*mat.Dense, *mat.Dense) {
		s := mat.New(1, slots)
		v := mat.New(1, slots)
		for j := 0; j < slots; j++ {
			s.Set(0, j, speed*tau*float64(j))
			v.Set(0, j, speed)
		}
		return s, v
	}

	// Highway: 28 m/s (~100 km/h). A +300 m bump is within one slot's travel.
	sh, vh := makeSeries(28)
	sh.Add(0, 7, 300)
	d := mat.Ones(1, slots)
	e := mat.Ones(1, slots)
	outH, err := Detect(sh, nil, motion.AverageVelocity(vh), d, e, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	if outH.At(0, 7) != 0 {
		t.Fatal("300 m deviation at highway speed should pass")
	}

	// Congested local road: 0.3 m/s crawl (window tolerance ≈ 176 m for
	// the default 13-slot window). The same +300 m bump must be flagged.
	sl, vl := makeSeries(0.3)
	sl.Add(0, 7, 300)
	outL, err := Detect(sl, nil, motion.AverageVelocity(vl), d, e, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	if outL.At(0, 7) != 1 {
		t.Fatal("300 m deviation at crawl speed should be flagged")
	}
}

func TestDetectSkipsMissingOnFirstPass(t *testing.T) {
	s, d, e, v := constantRowFixture(20, -1, 0)
	e.Set(0, 5, 0)
	s.Set(0, 5, 0) // missing cells hold zeros in the sensory matrix
	out, err := Detect(s, nil, motion.AverageVelocity(v), d, e, true, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The missing cell is never examined, so its D entry stays 1...
	if out.At(0, 5) != 1 {
		t.Fatal("missing cell must not be cleared on the first pass")
	}
	// ...and its zero value must not poison neighbours' medians.
	if out.At(0, 4) != 0 || out.At(0, 6) != 0 {
		t.Fatal("neighbours of a missing cell were misjudged")
	}
}

func TestDetectUsesReconstructionOnLaterPasses(t *testing.T) {
	s, d, e, v := constantRowFixture(20, -1, 0)
	e.Set(0, 5, 0)
	s.Set(0, 5, 0)
	sHat := mat.Filled(1, 20, 1000) // reconstruction fills the gap
	out, err := Detect(s, sHat, motion.AverageVelocity(v), d, e, false, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// With the reconstructed value in place the cell now tests as normal.
	if out.At(0, 5) != 0 {
		t.Fatal("reconstructed missing cell should clear on later passes")
	}
}

func TestDetectInputsNotMutated(t *testing.T) {
	s, d, e, v := constantRowFixture(20, 10, 5000)
	e.Set(0, 3, 0)
	sCopy, dCopy, eCopy := s.Clone(), d.Clone(), e.Clone()
	sHat := mat.Filled(1, 20, 1000)
	if _, err := Detect(s, sHat, motion.AverageVelocity(v), d, e, false, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(sCopy, 0) || !d.Equal(dCopy, 0) || !e.Equal(eCopy, 0) {
		t.Fatal("Detect must not mutate its inputs")
	}
}

func TestDetectValidation(t *testing.T) {
	s, d, e, v := constantRowFixture(10, -1, 0)
	avg := motion.AverageVelocity(v)
	bad := []Options{
		{Window: 2, Xi: 1, Tau: time.Second},
		{Window: 4, Xi: 1, Tau: time.Second},
		{Window: 5, Xi: 0, Tau: time.Second},
		{Window: 5, Xi: 1, MinToleranceMeters: -1, Tau: time.Second},
		{Window: 5, Xi: 1, Tau: 0},
		{Window: 99, Xi: 1, Tau: time.Second}, // window larger than series
	}
	for i, opt := range bad {
		if _, err := Detect(s, nil, avg, d, e, true, opt); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
	if _, err := Detect(s, nil, mat.New(2, 2), d, e, true, DefaultOptions()); err == nil {
		t.Fatal("mismatched V̄ should be rejected")
	}
	if _, err := Detect(s, nil, avg, mat.New(2, 2), e, true, DefaultOptions()); err == nil {
		t.Fatal("mismatched D should be rejected")
	}
	if _, err := Detect(s, nil, avg, d, mat.New(2, 2), true, DefaultOptions()); err == nil {
		t.Fatal("mismatched E should be rejected")
	}
	if _, err := Detect(s, nil, avg, d, e, false, DefaultOptions()); err == nil {
		t.Fatal("nil reconstruction on a non-first pass should be rejected")
	}
}

func TestWindowStartClamping(t *testing.T) {
	cases := []struct{ j, w, t, want int }{
		{0, 5, 20, 0},   // left edge
		{1, 5, 20, 0},   // still clamped left
		{10, 5, 20, 8},  // centered
		{19, 5, 20, 15}, // right edge
	}
	for _, c := range cases {
		if got := windowStart(c.j, c.w, c.t); got != c.want {
			t.Fatalf("windowStart(%d,%d,%d) = %d, want %d", c.j, c.w, c.t, got, c.want)
		}
	}
}

func TestToleranceFloor(t *testing.T) {
	opt := DefaultOptions()
	zeroV := make([]float64, 9)
	delta := tolerance(zeroV, 0, 9, 30, opt)
	if delta != opt.MinToleranceMeters {
		t.Fatalf("idle tolerance = %v, want floor %v", delta, opt.MinToleranceMeters)
	}
}

func TestToleranceGrowsWithSpeed(t *testing.T) {
	opt := DefaultOptions()
	slow := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	fast := []float64{20, 20, 20, 20, 20, 20, 20, 20, 20}
	ds := tolerance(slow, 0, 9, 30, opt)
	df := tolerance(fast, 0, 9, 30, opt)
	if df <= ds {
		t.Fatalf("tolerance must grow with speed: slow %v fast %v", ds, df)
	}
	// Fast: ξ·max prefix = 1.5 · 20·30·9 = 8100 m.
	if df != 1.5*20*30*9 {
		t.Fatalf("fast tolerance = %v, want %v", df, 1.5*20*30*9.0)
	}
}

func TestToleranceUsesMaxAbsPrefix(t *testing.T) {
	opt := DefaultOptions()
	opt.MinToleranceMeters = 0
	// Velocity reverses sign: the max |prefix| is hit mid-window.
	v := []float64{10, 10, -10, -10, -10, -10, -10, -10, -10}
	delta := tolerance(v, 0, 9, 30, opt)
	// Prefix sums ·τ: 300, 600, 300, 0, -300, ..., -1500 → max |·| = 1500.
	if delta != 1.5*1500 {
		t.Fatalf("tolerance = %v, want %v", delta, 1.5*1500.0)
	}
}

func TestUnion(t *testing.T) {
	a, _ := mat.NewFromRows([][]float64{{1, 0, 0, 1}})
	b, _ := mat.NewFromRows([][]float64{{0, 0, 1, 1}})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1, 1}
	for j, w := range want {
		if u.At(0, j) != w {
			t.Fatalf("union[%d] = %v, want %v", j, u.At(0, j), w)
		}
	}
	if _, err := Union(a, mat.New(2, 2)); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
}

func TestTMMFlagsLargeDeviation(t *testing.T) {
	s, _, e, _ := constantRowFixture(20, 10, 5000)
	out, err := TMM(s, e, DefaultTMMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 10) != 1 {
		t.Fatal("TMM must flag a 5 km spike")
	}
	if out.Sum() != 1 {
		t.Fatalf("TMM flagged %v points, want 1", out.Sum())
	}
}

func TestTMMFixedThresholdMissesHighwayScaleFaults(t *testing.T) {
	// The failure mode the paper highlights: with a fixed threshold sized
	// for highways, a 500 m fault on a parked vehicle goes undetected.
	s, _, e, _ := constantRowFixture(20, 10, 500)
	out, err := TMM(s, e, DefaultTMMOptions()) // 800 m fixed range
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 10) != 0 {
		t.Fatal("expected TMM to miss the sub-threshold fault")
	}
}

func TestTMMSkipsMissing(t *testing.T) {
	s, _, e, _ := constantRowFixture(20, -1, 0)
	e.Set(0, 5, 0)
	s.Set(0, 5, 0)
	out, err := TMM(s, e, DefaultTMMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() != 0 {
		t.Fatal("missing zeros must not be flagged or poison medians")
	}
}

func TestTMMValidation(t *testing.T) {
	s := mat.New(1, 10)
	e := mat.Ones(1, 10)
	if _, err := TMM(s, e, TMMOptions{Window: 4, ThresholdMeters: 1}); err == nil {
		t.Fatal("even window should be rejected")
	}
	if _, err := TMM(s, e, TMMOptions{Window: 5, ThresholdMeters: 0}); err == nil {
		t.Fatal("zero threshold should be rejected")
	}
	if _, err := TMM(s, mat.New(2, 2), DefaultTMMOptions()); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
	if _, err := TMM(s, e, TMMOptions{Window: 99, ThresholdMeters: 1}); err == nil {
		t.Fatal("oversized window should be rejected")
	}
}

// Package tsdetect implements the DETECT stage of I(TS,CS): the paper's
// Optimized Local Median Method (Algorithm 1) with the velocity-adaptive
// tolerance of Eq. (12), plus the fixed-threshold Two-sided Median Method
// (TMM, Basu & Meckesheimer) used as the evaluation baseline.
package tsdetect

import (
	"fmt"
	"math"
	"sync"
	"time"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

// Options configures the Optimized Local Median Method.
type Options struct {
	// Window is the (odd) number of slots considered around each point.
	Window int
	// Xi is the ξ coefficient of Eq. (12): it scales the velocity-derived
	// maximum travel distance into the outlier tolerance, trading false
	// negatives against false positives.
	Xi float64
	// MinToleranceMeters floors the dynamic tolerance. Idle vehicles report
	// near-zero velocity, which would otherwise drive δ to zero and flag
	// plain GPS noise as faulty. The floor should sit a few σ above the
	// position noise. (Implementation note: the paper does not state a
	// floor but its real trace has the same property.)
	MinToleranceMeters float64
	// Tau is the slot duration τ.
	Tau time.Duration
}

// DefaultOptions returns the configuration used throughout the evaluation:
// a 13-slot window (wide enough to keep a clean majority of observations
// in view even at 40 % missing + 40 % faulty), ξ = 1.5, and a 60 m
// tolerance floor for τ = 30 s.
func DefaultOptions() Options {
	return Options{
		Window:             13,
		Xi:                 1.5,
		MinToleranceMeters: 60,
		Tau:                30 * time.Second,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Window < 3 || o.Window%2 == 0:
		return fmt.Errorf("tsdetect: window must be odd and >= 3, got %d", o.Window)
	case o.Xi <= 0:
		return fmt.Errorf("tsdetect: xi must be positive, got %v", o.Xi)
	case o.MinToleranceMeters < 0:
		return fmt.Errorf("tsdetect: negative tolerance floor %v", o.MinToleranceMeters)
	case o.Tau <= 0:
		return fmt.Errorf("tsdetect: tau must be positive, got %v", o.Tau)
	}
	return nil
}

// Detect runs one pass of the Optimized Local Median Method (Algorithm 1)
// over a single coordinate axis.
//
// Inputs mirror the paper's TS_Detect(S, Ŝ, V̄, D, E, w, ξ):
//
//   - s: the sensory matrix for this axis (missing cells hold zeros);
//   - sHat: the reconstruction from the previous CORRECT phase, used to fill
//     missing cells when first == false (may be nil when first == true);
//   - avgV: the Average Velocity Matrix V̄ for this axis (Eq. 11);
//   - d: the current detection matrix; the pass only clears entries
//     (sets them to 0) for points that test as normal, matching the
//     low-false-negative design of the DETECT phase;
//   - e: the existence matrix; on the first pass missing cells are skipped
//     and excluded from window medians, on later passes they are treated as
//     present with reconstructed values.
//
// It returns a new detection matrix; no input is mutated.
func Detect(s, sHat, avgV, d, e *mat.Dense, first bool, opt Options) (*mat.Dense, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, t := s.Dims()
	if err := sameShape("avgV", avgV, n, t); err != nil {
		return nil, err
	}
	if err := sameShape("D", d, n, t); err != nil {
		return nil, err
	}
	if err := sameShape("E", e, n, t); err != nil {
		return nil, err
	}
	if opt.Window > t {
		return nil, fmt.Errorf("tsdetect: window %d exceeds %d slots", opt.Window, t)
	}

	// Working copy of the series: after the first pass, missing values have
	// been reconstructed and every cell participates (Algorithm 1 lines 1-5).
	work := s.Clone()
	exists := e
	if !first {
		if err := sameShape("sHat", sHat, n, t); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			srcRow := sHat.RowView(i)
			dstRow := work.RowView(i)
			eRow := e.RowView(i)
			for j := 0; j < t; j++ {
				if eRow[j] == 0 {
					dstRow[j] = srcRow[j]
				}
			}
		}
		exists = mat.Ones(n, t)
	}

	// Rows are independent: each worker block owns a contiguous row range
	// of the output and its own window scratch.
	out := d.Clone()
	tau := opt.Tau.Seconds()
	w := opt.Window
	var mu sync.Mutex
	var firstErr error
	mat.ParallelRows(n, t*w, func(lo, hi int) {
		window := make([]float64, 0, w)
		for i := lo; i < hi; i++ {
			row := work.RowView(i)
			eRow := exists.RowView(i)
			vRow := avgV.RowView(i)
			oRow := out.RowView(i)
			for j := 0; j < t; j++ {
				if eRow[j] == 0 {
					continue // first pass: nothing was observed here
				}
				l := windowStart(j, w, t)
				window = window[:0]
				for k := l; k < l+w; k++ {
					if eRow[k] == 1 {
						window = append(window, row[k])
					}
				}
				if len(window) == 0 {
					continue
				}
				m, err := stat.MedianInPlace(window)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tsdetect: window median: %w", err)
					}
					mu.Unlock()
					return
				}
				delta := tolerance(vRow, l, w, tau, opt)
				if math.Abs(row[j]-m) < delta {
					oRow[j] = 0
				}
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// windowStart returns the first index of the w-slot window centered on j,
// clamped to the series (0-indexed version of Eq. 12's l).
func windowStart(j, w, t int) int {
	l := j - (w-1)/2
	if l < 0 {
		l = 0
	}
	if l > t-w {
		l = t - w
	}
	return l
}

// tolerance computes the dynamic δ of Eq. (12): ξ times the largest
// displacement the participant's average velocities can produce across any
// prefix of the window, floored at MinToleranceMeters.
//
// The paper's summand reads V̄(i,j); we follow the evident intent V̄(i,p)
// (the running index), since a constant summand would make the inner sum
// degenerate.
func tolerance(avgVRow []float64, l, w int, tauSeconds float64, opt Options) float64 {
	var prefix, maxDisp float64
	for p := l; p < l+w && p < len(avgVRow); p++ {
		prefix += avgVRow[p] * tauSeconds
		if d := math.Abs(prefix); d > maxDisp {
			maxDisp = d
		}
	}
	delta := opt.Xi * maxDisp
	if delta < opt.MinToleranceMeters {
		delta = opt.MinToleranceMeters
	}
	return delta
}

func sameShape(name string, m *mat.Dense, n, t int) error {
	if m == nil {
		return fmt.Errorf("tsdetect: %s matrix is nil", name)
	}
	if r, c := m.Dims(); r != n || c != t {
		return fmt.Errorf("tsdetect: %s is %dx%d, want %dx%d", name, r, c, n, t)
	}
	return nil
}

// Union returns the element-wise OR of two binary detection matrices,
// implementing the paper's D = D_X ∪ D_Y.
func Union(a, b *mat.Dense) (*mat.Dense, error) {
	n, t := a.Dims()
	if err := sameShape("union operand", b, n, t); err != nil {
		return nil, err
	}
	out := mat.New(n, t)
	for i := 0; i < n; i++ {
		ar := a.RowView(i)
		br := b.RowView(i)
		or := out.RowView(i)
		for j := 0; j < t; j++ {
			if ar[j] != 0 || br[j] != 0 {
				or[j] = 1
			}
		}
	}
	return out, nil
}

// TMMOptions configures the Two-sided Median Method baseline.
type TMMOptions struct {
	// Window is the (odd) number of slots around each point.
	Window int
	// ThresholdMeters is the predefined, fixed outlier range: a point is
	// faulty when it deviates from the window median by more than this.
	ThresholdMeters float64
}

// DefaultTMMOptions matches the detection window of the optimized method
// with a fixed 800 m outlier range — a reasonable middle ground between
// local-road and highway travel per slot, which is exactly the compromise
// the paper criticizes fixed thresholds for.
func DefaultTMMOptions() TMMOptions {
	return TMMOptions{Window: 9, ThresholdMeters: 800}
}

// Validate reports option errors.
func (o TMMOptions) Validate() error {
	if o.Window < 3 || o.Window%2 == 0 {
		return fmt.Errorf("tsdetect: TMM window must be odd and >= 3, got %d", o.Window)
	}
	if o.ThresholdMeters <= 0 {
		return fmt.Errorf("tsdetect: TMM threshold must be positive, got %v", o.ThresholdMeters)
	}
	return nil
}

// TMM runs the fixed-threshold two-sided median baseline over one axis.
// Missing cells (e == 0) are skipped and excluded from window medians; the
// returned matrix holds 1 for detected outliers.
func TMM(s, e *mat.Dense, opt TMMOptions) (*mat.Dense, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, t := s.Dims()
	if err := sameShape("E", e, n, t); err != nil {
		return nil, err
	}
	if opt.Window > t {
		return nil, fmt.Errorf("tsdetect: TMM window %d exceeds %d slots", opt.Window, t)
	}
	out := mat.New(n, t)
	w := opt.Window
	window := make([]float64, 0, w)
	for i := 0; i < n; i++ {
		row := s.RowView(i)
		eRow := e.RowView(i)
		for j := 0; j < t; j++ {
			if eRow[j] == 0 {
				continue
			}
			l := windowStart(j, w, t)
			window = window[:0]
			for k := l; k < l+w; k++ {
				if eRow[k] == 1 {
					window = append(window, row[k])
				}
			}
			if len(window) == 0 {
				continue
			}
			m, err := stat.MedianInPlace(window)
			if err != nil {
				return nil, fmt.Errorf("tsdetect: TMM median: %w", err)
			}
			if math.Abs(row[j]-m) > opt.ThresholdMeters {
				out.Set(i, j, 1)
			}
		}
	}
	return out, nil
}

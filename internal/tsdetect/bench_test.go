package tsdetect

import (
	"testing"

	"itscs/internal/corrupt"
	"itscs/internal/metrics"
	"itscs/internal/motion"
	"itscs/internal/trace"
)

// benchWorkload builds a corrupted fleet for detection benchmarks.
func benchWorkload(b *testing.B, alpha, beta float64) (*trace.Fleet, *corrupt.Result) {
	b.Helper()
	cfg := trace.DefaultConfig()
	cfg.Participants = 60
	cfg.Slots = 120
	fleet, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	plan := corrupt.DefaultPlan()
	plan.MissingRatio = alpha
	plan.FaultyRatio = beta
	res, err := corrupt.Apply(plan, fleet.X, fleet.Y)
	if err != nil {
		b.Fatal(err)
	}
	return fleet, res
}

// BenchmarkDetectFirstPass measures raw detector throughput.
func BenchmarkDetectFirstPass(b *testing.B) {
	fleet, res := benchWorkload(b, 0.2, 0.2)
	avgV := motion.AverageVelocity(fleet.VX)
	d := res.Existence.Map(func(float64) float64 { return 1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(res.SX, nil, avgV, d, res.Existence, true, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaAdaptivity is the DESIGN.md ablation: the velocity-adaptive
// tolerance (Eq. 12) against fixed tolerances at the two speed regimes it
// interpolates between. The adaptive detector should approach the recall
// of the tight threshold without the false positives the tight threshold
// produces on fast vehicles.
func BenchmarkDeltaAdaptivity(b *testing.B) {
	fleet, res := benchWorkload(b, 0, 0.2)
	avgVX := motion.AverageVelocity(fleet.VX)
	avgVY := motion.AverageVelocity(fleet.VY)
	ones := res.Existence.Map(func(float64) float64 { return 1 })

	run := func(opt Options) (precision, recall float64) {
		dx, err := Detect(res.SX, nil, avgVX, ones, res.Existence, true, opt)
		if err != nil {
			b.Fatal(err)
		}
		dy, err := Detect(res.SY, nil, avgVY, ones, res.Existence, true, opt)
		if err != nil {
			b.Fatal(err)
		}
		d, err := Union(dx, dy)
		if err != nil {
			b.Fatal(err)
		}
		conf, err := metrics.Compare(d, res.Faulty, res.Existence)
		if err != nil {
			b.Fatal(err)
		}
		return conf.Precision(), conf.Recall()
	}

	for i := 0; i < b.N; i++ {
		adaptive := DefaultOptions()
		pA, rA := run(adaptive)

		// Fixed tolerance: disable the velocity term by flooring δ at the
		// given level with ξ→0 (the floor becomes the fixed threshold).
		tight := DefaultOptions()
		tight.Xi = 1e-9
		tight.MinToleranceMeters = 170 // local-road scale (paper §III-B)
		pT, rT := run(tight)

		loose := DefaultOptions()
		loose.Xi = 1e-9
		loose.MinToleranceMeters = 850 // highway scale
		pL, rL := run(loose)

		if i == 0 {
			b.ReportMetric(pA, "P_adaptive")
			b.ReportMetric(rA, "R_adaptive")
			b.ReportMetric(pT, "P_fixed170")
			b.ReportMetric(rT, "R_fixed170")
			b.ReportMetric(pL, "P_fixed850")
			b.ReportMetric(rL, "R_fixed850")
		}
	}
}

// BenchmarkTMM measures the baseline's throughput for comparison.
func BenchmarkTMM(b *testing.B) {
	_, res := benchWorkload(b, 0.2, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TMM(res.SX, res.Existence, DefaultTMMOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

package tsdetect

import (
	"testing"

	"itscs/internal/mat"
)

// TestDetectWindowEdges sweeps the window-size boundary: degenerate
// lengths are rejected up front, the minimum legal window works, and a
// window equal to the full series works.
func TestDetectWindowEdges(t *testing.T) {
	const n, slots = 3, 9
	s := mat.Filled(n, slots, 50)
	avgV := mat.Filled(n, slots, 1)
	d := mat.Ones(n, slots)
	e := mat.Ones(n, slots)

	cases := []struct {
		name   string
		window int
		ok     bool
	}{
		{"zero-window", 0, false},
		{"window-one", 1, false},
		{"even-window", 4, false},
		{"negative-window", -3, false},
		{"minimum-window", 3, true},
		{"full-series-window", slots, true},
		{"window-exceeds-series", slots + 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Window = tc.window
			got, err := Detect(s, nil, avgV, d, e, true, opt)
			if (err == nil) != tc.ok {
				t.Fatalf("Detect window=%d: err=%v, want ok=%v", tc.window, err, tc.ok)
			}
			if !tc.ok {
				return
			}
			// A constant series is as normal as data gets: every
			// observation must be cleared.
			for i := 0; i < n; i++ {
				for j := 0; j < slots; j++ {
					if got.At(i, j) != 0 {
						t.Fatalf("constant series left flag at (%d,%d)", i, j)
					}
				}
			}
		})
	}
}

// TestDetectDegenerateData drives the detector over pathological rows: all
// observations faulty, a fully missing row, a single-column matrix, and a
// single surviving observation per window.
func TestDetectDegenerateData(t *testing.T) {
	t.Run("all-faulty-row", func(t *testing.T) {
		// Wild alternating megameter jumps: the window median always
		// coincides with its majority sign, so those points clear, but the
		// minority must stay flagged — the detector cannot wash a row this
		// broken clean.
		const slots = 15
		s := mat.New(1, slots)
		for j := 0; j < slots; j++ {
			if j%2 == 0 {
				s.Set(0, j, 1e6)
			} else {
				s.Set(0, j, -1e6)
			}
		}
		got, err := Detect(s, nil, mat.New(1, slots), mat.Ones(1, slots), mat.Ones(1, slots), true, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for j := 0; j < slots; j++ {
			if got.At(0, j) == 1 {
				flagged++
			}
		}
		if flagged < slots/3 {
			t.Fatalf("only %d of %d wild slots stayed flagged", flagged, slots)
		}
	})

	t.Run("fully-missing-row", func(t *testing.T) {
		// No observation, no verdict: the first pass must leave the
		// detection row exactly as it found it.
		const slots = 13
		s := mat.New(2, slots)
		e := mat.Ones(2, slots)
		for j := 0; j < slots; j++ {
			e.Set(0, j, 0)
		}
		d := mat.Ones(2, slots)
		got, err := Detect(s, nil, mat.New(2, slots), d, e, true, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < slots; j++ {
			if got.At(0, j) != 1 {
				t.Fatalf("missing row's flag changed at slot %d", j)
			}
			if got.At(1, j) != 0 {
				t.Fatalf("observed constant row kept flag at slot %d", j)
			}
		}
	})

	t.Run("single-column", func(t *testing.T) {
		// One slot cannot host the minimum 3-slot window.
		s := mat.Filled(4, 1, 10)
		_, err := Detect(s, nil, mat.New(4, 1), mat.Ones(4, 1), mat.Ones(4, 1), true, DefaultOptions())
		if err == nil {
			t.Fatal("single-column series must be rejected")
		}
	})

	t.Run("lone-observation", func(t *testing.T) {
		// A window holding exactly one observation compares the point to
		// itself: |x − median({x})| = 0 < δ, so it clears.
		const slots = 5
		s := mat.New(1, slots)
		e := mat.New(1, slots)
		s.Set(0, 2, 123456)
		e.Set(0, 2, 1)
		opt := DefaultOptions()
		opt.Window = slots
		got, err := Detect(s, nil, mat.New(1, slots), mat.Ones(1, slots), e, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.At(0, 2) != 0 {
			t.Fatal("lone observation should test normal against itself")
		}
	})
}

// TestTMMEdges mirrors the boundary sweep for the fixed-threshold baseline.
func TestTMMEdges(t *testing.T) {
	const n, slots = 2, 9
	s := mat.Filled(n, slots, 7)
	e := mat.Ones(n, slots)

	for _, tc := range []struct {
		name   string
		window int
		thresh float64
		ok     bool
	}{
		{"window-one", 1, 800, false},
		{"even-window", 6, 800, false},
		{"zero-threshold", 9, 0, false},
		{"minimum", 3, 800, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := TMM(s, e, TMMOptions{Window: tc.window, ThresholdMeters: tc.thresh})
			if (err == nil) != tc.ok {
				t.Fatalf("TMM window=%d thresh=%v: err=%v, want ok=%v", tc.window, tc.thresh, err, tc.ok)
			}
		})
	}

	t.Run("constant-series-clean", func(t *testing.T) {
		got, err := TMM(s, e, DefaultTMMOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < slots; j++ {
				if got.At(i, j) != 0 {
					t.Fatalf("constant series flagged at (%d,%d)", i, j)
				}
			}
		}
	})
}

// TestUnionShapeMismatch rejects incompatible operands.
func TestUnionShapeMismatch(t *testing.T) {
	if _, err := Union(mat.New(2, 3), mat.New(3, 2)); err == nil {
		t.Fatal("union of mismatched shapes must fail")
	}
}

package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestInjectorDeterminism pins the harness's core contract: the same plan
// replayed over the same operation sequence injects the same faults at the
// same positions.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, PWriteErr: 0.3, PSyncErr: 0.2, PTornWrite: 0.5}
	runOnce := func() []Record {
		in := NewInjector(plan)
		for i := 0; i < 200; i++ {
			op := OpWrite
			if i%3 == 0 {
				op = OpSync
			}
			_, _ = in.decide(op, "seg", 64)
		}
		return in.Faults()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("plan injected no faults in 200 operations")
	}
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestInjectorAfterAndCap checks the warm-up window and the fault budget.
func TestInjectorAfterAndCap(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, PWriteErr: 1, After: 10, MaxFaults: 3})
	clean := 0
	for i := 0; i < 10; i++ {
		if err, _ := in.decide(OpWrite, "x", 8); err == nil {
			clean++
		}
	}
	if clean != 10 {
		t.Fatalf("faults injected inside the After window: %d clean of 10", clean)
	}
	faults := 0
	for i := 0; i < 20; i++ {
		if err, _ := in.decide(OpWrite, "x", 8); err != nil {
			faults++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error not marked: %v", err)
			}
		}
	}
	if faults != 3 {
		t.Fatalf("MaxFaults=3 but %d faults injected", faults)
	}
}

// TestInjectFSTornWrite checks a torn write persists a strict prefix and
// that a zero-probability plan is a pass-through.
func TestInjectFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Plan{Seed: 3, PWriteErr: 1, PTornWrite: 1})
	fsys := Inject(OS(), in)
	f, err := fsys.OpenFile(filepath.Join(dir, "seg"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write survived a PWriteErr=1 plan: n=%d err=%v", n, err)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", n, len(payload))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("on-disk %d bytes, write reported %d", len(got), n)
	}

	// Pass-through: the zero plan never interferes.
	clean := Inject(OS(), NewInjector(Plan{}))
	g, err := clean.OpenFile(filepath.Join(dir, "ok"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := g.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("clean write: n=%d err=%v", n, err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualClock drives tickers without sleeping: ticks fire exactly when
// Advance crosses their schedule, and Stop unregisters.
func TestVirtualClock(t *testing.T) {
	start := time.Unix(1000, 0)
	clock := NewVirtualClock(start)
	if got := clock.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	tick := clock.NewTicker(10 * time.Second)

	clock.Advance(9 * time.Second)
	select {
	case ts := <-tick.C():
		t.Fatalf("tick at %v before the period elapsed", ts)
	default:
	}

	clock.Advance(2 * time.Second) // crosses t+10s
	select {
	case ts := <-tick.C():
		if want := start.Add(10 * time.Second); !ts.Equal(want) {
			t.Fatalf("tick at %v, want %v", ts, want)
		}
	default:
		t.Fatal("no tick after crossing the period")
	}

	// A long advance coalesces ticks rather than queueing them (channel
	// capacity 1, like time.Ticker).
	clock.Advance(55 * time.Second)
	<-tick.C()
	select {
	case <-tick.C():
		t.Fatal("coalesced ticks queued more than one delivery")
	default:
	}

	tick.Stop()
	clock.Advance(time.Minute)
	select {
	case <-tick.C():
		t.Fatal("stopped ticker fired")
	default:
	}

	if got, want := clock.Since(start), 9*time.Second+2*time.Second+55*time.Second+time.Minute; got != want {
		t.Fatalf("Since = %v, want %v", got, want)
	}
}

// TestFlakyConnCutAndDrop exercises the mid-frame cut and silent drop over
// a real pipe.
func TestFlakyConnCutAndDrop(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := WrapConn(client, ConnPlan{Seed: 1, CutAfterBytes: 10})

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	n, err := fc.Write([]byte("0123456789abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past the cut: n=%d err=%v", n, err)
	}
	if n != 10 {
		t.Fatalf("delivered %d bytes before the cut, want 10", n)
	}
	if !fc.Cut() {
		t.Fatal("connection not marked cut")
	}
	if b := <-got; string(b) != "0123456789" {
		t.Fatalf("peer saw %q, want the 10-byte prefix", b)
	}
	if _, err := fc.Conn.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still writable after the cut")
	}

	// Dropped writes report success but deliver nothing.
	c2, s2 := net.Pipe()
	defer s2.Close()
	drop := WrapConn(c2, ConnPlan{Seed: 1, PDropWrite: 1})
	if n, err := drop.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("dropped write: n=%d err=%v, want silent success", n, err)
	}
	if drop.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", drop.Drops())
	}
}
